// bftbc_bench — closed-loop multi-client load driver for a live cluster.
//
// The measurement half of the tentpole: real core::Client state machines
// on a net::EventLoop + net::UdpTransport, driving a cluster of bftbcd
// daemons over UDP. Each simulated client is closed-loop (one operation
// outstanding; the completion callback immediately issues the next), the
// standard way to measure a quorum system's per-op latency without
// open-loop queueing artifacts.
//
//   bftbc_bench --config bench/cluster_localhost.json \
//       --clients 4 --ops 200 --warmup 20 --json BENCH_live.json
//
// Sharded clusters need no extra flags: every client is a
// shard::RoutingClient over one protocol leg per replica group listed in
// the config's "shards" array (a legacy single-group config is a
// one-leg router — same code path). Each leg gets its own UDP socket and
// that shard's keystore (cluster.shard_seed), and ops route by object id
// through the shared shard::ShardMap static hash.
//
// Key popularity is a knob: --key-dist fixed pins object 1+(i mod
// objects) per client (the historical behavior, keeps baselines
// comparable), uniform draws a fresh key per op, and zipfian draws from
// a YCSB-style skewed distribution (--theta, default 0.99) so a few hot
// objects dominate — the workload shape that actually exercises routing
// balance and the replicas' resident-object cache.
//
// Phases per client: `warmup` uncounted ops (cache warmup, address
// learning), `ops` measured ops, then uncounted cooldown ops until every
// client has finished measuring — so the load stays constant across the
// whole measurement window instead of draining client by client.
//
// The JSON artifact is the repo's standard schema-v1 bench report
// (scripts/check_bench_json.py validates it): per-op latency summaries
// ("*_ms" with p50/p90/p99/p999), a throughput gauge over the measured
// window, the sig-cache counters, and the transport/client counter folds
// that the --compare ratio tracking reads.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bftbc/client.h"
#include "metrics/bench_report.h"
#include "net/cluster_config.h"
#include "net/event_loop.h"
#include "net/udp_transport.h"
#include "shard/routing_client.h"
#include "util/flags.h"
#include "util/rng.h"
#include "util/zipf.h"

namespace {

using namespace bftbc;

enum class KeyDist { kFixed, kUniform, kZipfian };

struct BenchClient {
  // One socket + protocol client per shard, one router over them.
  std::vector<std::unique_ptr<net::UdpTransport>> transports;
  std::vector<std::unique_ptr<core::Client>> legs;
  std::unique_ptr<shard::RoutingClient> router;
  quorum::ObjectId fixed_object = 0;
  Rng rng{0};
  std::uint64_t done_ops = 0;     // completed, any phase
  std::uint64_t measured = 0;     // completed measured ops
  bool finished_measuring = false;
};

struct Driver {
  net::EventLoop& loop;
  metrics::BenchReport& report;
  std::vector<std::unique_ptr<BenchClient>> clients;

  std::uint64_t warmup_ops = 0;
  std::uint64_t measured_ops = 0;
  double read_fraction = 0.0;
  std::size_t value_bytes = 0;
  KeyDist key_dist = KeyDist::kFixed;
  std::uint64_t n_objects = 1;
  const ZipfGenerator* zipf = nullptr;  // set iff key_dist == kZipfian

  std::uint64_t clients_measuring = 0;  // still inside their window
  std::uint64_t failures = 0;
  sim::Time window_start = 0;
  sim::Time window_end = 0;

  bool all_done() const { return clients_measuring == 0; }

  quorum::ObjectId pick_object(BenchClient& c) {
    switch (key_dist) {
      case KeyDist::kUniform:
        return 1 + c.rng.next_below(n_objects);
      case KeyDist::kZipfian:
        // Rank 0 is the hottest key; ShardMap's mix64 spreads the hot
        // ranks across groups, so skew stresses balance, not one shard.
        return 1 + zipf->next(c.rng);
      case KeyDist::kFixed:
        break;
    }
    return c.fixed_object;
  }

  void start(BenchClient& c) {
    if (all_done()) return;  // cooldown over: stop issuing
    const bool in_warmup = c.done_ops < warmup_ops;
    const bool in_window = !in_warmup && !c.finished_measuring;
    if (in_window && c.measured == 0 && window_start == 0) {
      window_start = loop.now();
    }
    // The very first op must be a write (reads need a written object).
    const bool do_read = c.done_ops > 0 &&
                         read_fraction > 0.0 &&
                         c.rng.next_below(1000) <
                             static_cast<std::uint64_t>(read_fraction * 1000);
    const quorum::ObjectId object = pick_object(c);
    const sim::Time t0 = loop.now();
    auto finish = [this, &c, in_window, do_read, t0](bool ok) {
      const double ms =
          static_cast<double>(loop.now() - t0) / sim::kMillisecond;
      ++c.done_ops;
      if (!ok) ++failures;
      if (in_window) {
        report.summary(do_read ? "client.read.total_ms"
                               : "client.write.total_ms")
            .add(ms);
        if (++c.measured >= measured_ops) {
          c.finished_measuring = true;
          if (--clients_measuring == 0) {
            window_end = loop.now();
            loop.stop();
            return;
          }
        }
      }
      start(c);
    };
    if (do_read) {
      c.router->read(object, [finish](Result<core::Client::ReadResult> r) {
        finish(r.is_ok());
      });
    } else {
      Bytes value(value_bytes, 0);
      for (auto& b : value) b = static_cast<std::uint8_t>(c.rng.next_u64());
      c.router->write(object, std::move(value),
                      [finish](Result<core::Client::WriteResult> r) {
                        finish(r.is_ok());
                      });
    }
  }
};

}  // namespace

int main(int argc, char** argv) {
  metrics::BenchArgs bench_args = metrics::parse_bench_args(argc, argv);

  FlagSet flags;
  auto& config_path =
      flags.add_string("config", "", "path to the cluster JSON file");
  auto& n_clients =
      flags.add_int("clients", 4, "number of closed-loop clients");
  auto& ops = flags.add_int("ops", 200, "measured operations per client");
  auto& warmup = flags.add_int("warmup", 20, "uncounted warmup ops per client");
  auto& value_bytes = flags.add_int("value-bytes", 256, "write payload size");
  auto& objects =
      flags.add_int("objects", 0, "distinct objects (0 = one per client)");
  auto& read_fraction =
      flags.add_double("read-fraction", 0.0, "fraction of ops that are reads");
  auto& key_dist_flag = flags.add_string(
      "key-dist", "fixed",
      "key popularity: fixed (per-client object), uniform, zipfian");
  auto& theta =
      flags.add_double("theta", 0.99, "zipfian skew (0 <= theta < 1)");
  auto& seed = flags.add_u64("seed", 7, "workload rng seed");
  auto& deadline_ms =
      flags.add_int("deadline-ms", 5000, "per-op deadline (0 = none)");
  flags.parse(bench_args.argc, bench_args.argv);

  if ((*config_path).empty()) {
    std::fprintf(stderr, "bftbc_bench: --config is required\n%s",
                 flags.usage("bftbc_bench").c_str());
    return 2;
  }
  KeyDist key_dist = KeyDist::kFixed;
  if (*key_dist_flag == "uniform") {
    key_dist = KeyDist::kUniform;
  } else if (*key_dist_flag == "zipfian") {
    key_dist = KeyDist::kZipfian;
  } else if (*key_dist_flag != "fixed") {
    std::fprintf(stderr, "bftbc_bench: unknown --key-dist '%s'\n",
                 (*key_dist_flag).c_str());
    return 2;
  }
  if (*theta < 0.0 || *theta >= 1.0) {
    std::fprintf(stderr, "bftbc_bench: --theta must be in [0, 1)\n");
    return 2;
  }
  auto loaded = net::ClusterConfig::load(*config_path);
  if (!loaded.is_ok()) {
    std::fprintf(stderr, "bftbc_bench: %s\n",
                 loaded.status().message().c_str());
    return 2;
  }
  const net::ClusterConfig& cluster = loaded.value();
  const std::uint32_t shards = cluster.shard_count();
  const shard::ShardMap shard_map(shards);

  metrics::BenchReport report("bftbc_bench", bench_args);
  // Smoke mode (the CI loopback job): tiny budget, same code path.
  const auto clients_n = static_cast<std::uint32_t>(
      report.smoke() ? 2 : *n_clients);
  const std::uint64_t measured_ops = report.smoke() ? 20 : *ops;
  const std::uint64_t warmup_ops = report.smoke() ? 5 : *warmup;
  if (clients_n == 0 || measured_ops == 0 ||
      clients_n > cluster.max_clients) {
    std::fprintf(stderr,
                 "bftbc_bench: need 1 <= clients <= max_clients (%u) "
                 "and ops >= 1\n",
                 cluster.max_clients);
    return 2;
  }

  // One keystore per shard: certificate signatures are group-local, so a
  // client leg must hold the SAME key material as its group's daemons
  // (bftbcd --shard derives the same per-shard seed).
  std::vector<std::unique_ptr<crypto::Keystore>> keystores;
  std::vector<std::map<sim::NodeId, net::UdpEndpoint>> peers;
  for (std::uint32_t s = 0; s < shards; ++s) {
    keystores.push_back(std::make_unique<crypto::Keystore>(
        cluster.signature_scheme(), cluster.shard_seed(s), cluster.rsa_bits));
    net::register_cluster_principals(cluster, *keystores.back());
    auto group = net::replica_endpoints(cluster, s);
    if (!group.is_ok()) {
      std::fprintf(stderr, "bftbc_bench: %s\n",
                   group.status().message().c_str());
      return 2;
    }
    peers.push_back(std::move(group.value()));
  }
  std::vector<sim::NodeId> replica_nodes;  // in-group ids, same every shard
  for (const auto& [node, ep] : peers.front()) replica_nodes.push_back(node);

  net::EventLoop loop;
  Driver driver{loop, report, {}, warmup_ops, measured_ops,
                *read_fraction, static_cast<std::size_t>(*value_bytes),
                key_dist};

  Rng rng(*seed);
  const auto n_objects =
      static_cast<std::uint64_t>(*objects > 0 ? *objects : clients_n);
  driver.n_objects = n_objects;
  std::unique_ptr<ZipfGenerator> zipf;
  if (key_dist == KeyDist::kZipfian) {
    zipf = std::make_unique<ZipfGenerator>(n_objects, *theta);
    driver.zipf = zipf.get();
  }
  auto bind_any = net::UdpEndpoint::parse("0.0.0.0", 0);
  for (std::uint32_t i = 0; i < clients_n; ++i) {
    auto c = std::make_unique<BenchClient>();
    std::vector<core::Client*> leg_ptrs;
    for (std::uint32_t s = 0; s < shards; ++s) {
      auto transport = std::make_unique<net::UdpTransport>(
          loop, net::client_node(i), *bind_any, peers[s]);
      if (!transport->valid()) {
        std::fprintf(stderr, "bftbc_bench: cannot bind client socket\n");
        return 1;
      }
      core::ClientOptions copts;
      copts.optimized = cluster.optimized();
      copts.strong = cluster.strong();
      copts.mac_auth = cluster.mac_auth();
      copts.op_deadline =
          static_cast<sim::Time>(*deadline_ms) * sim::kMillisecond;
      auto client_rng = Rng(rng.next_u64());
      c->legs.push_back(std::make_unique<core::Client>(
          cluster.quorum(), i, *keystores[s], *transport, loop,
          replica_nodes, client_rng, copts));
      c->transports.push_back(std::move(transport));
      leg_ptrs.push_back(c->legs.back().get());
    }
    c->router = std::make_unique<shard::RoutingClient>(
        shard_map, std::move(leg_ptrs), loop);
    c->fixed_object = 1 + (i % n_objects);
    c->rng = Rng(rng.next_u64());
    driver.clients.push_back(std::move(c));
  }
  driver.clients_measuring = clients_n;

  std::printf("bftbc_bench: %u clients x %llu ops (+%llu warmup) against %s "
              "cluster (f=%u, %s, %u shard%s, %s keys)\n",
              clients_n, static_cast<unsigned long long>(measured_ops),
              static_cast<unsigned long long>(warmup_ops),
              cluster.mode.c_str(), cluster.f, cluster.scheme.c_str(),
              shards, shards == 1 ? "" : "s", (*key_dist_flag).c_str());

  for (auto& c : driver.clients) driver.start(*c);
  loop.run();  // stopped by the last measured completion

  const double window_s = driver.window_end > driver.window_start
                              ? static_cast<double>(driver.window_end -
                                                    driver.window_start) /
                                    sim::kSecond
                              : 0.0;
  const double total_measured =
      static_cast<double>(measured_ops) * clients_n;
  const double throughput = window_s > 0 ? total_measured / window_s : 0.0;

  report.set_config("clients", static_cast<std::int64_t>(clients_n));
  report.set_config("ops", static_cast<std::int64_t>(measured_ops));
  report.set_config("warmup", static_cast<std::int64_t>(warmup_ops));
  report.set_config("value_bytes", *value_bytes);
  report.set_config("read_fraction", *read_fraction);
  report.set_config("key_dist", *key_dist_flag);
  if (key_dist == KeyDist::kZipfian) report.set_config("theta", *theta);
  report.set_config("objects", static_cast<std::int64_t>(n_objects));
  report.set_config("mode", cluster.mode);
  report.set_config("auth", cluster.auth);
  report.set_config("scheme", cluster.scheme);
  report.set_config("f", static_cast<std::int64_t>(cluster.f));
  report.set_config("shards", static_cast<std::int64_t>(shards));
  report.set_config("transport", std::string("udp"));
  report.registry().gauge("throughput_ops_per_sec").set(throughput);
  report.registry().gauge("measured_window_s").set(window_s);
  report.counter("op_failures").value = driver.failures;

  // Counter folds mirror the simulated benches so --compare ratio
  // tracking works across sim and live artifacts: per-client routed-op
  // counters under "client/<i>" (the writes/reads names the gate
  // parses), per-leg protocol counters under "shard/<s>/client/<i>", one
  // merged transport fold under "net/", and the keystores' signature
  // counters merged unscoped (identical to the single-keystore fold on a
  // one-shard config). The three sig-cache counters are resolved
  // unconditionally — the schema requires their presence even when a run
  // never exercised the cache.
  (void)report.counter("sig_cache_hit");
  (void)report.counter("sig_cache_miss");
  (void)report.counter("sig_verify_calls");
  Counters net_total;
  for (std::uint32_t i = 0; i < clients_n; ++i) {
    const auto& c = *driver.clients[i];
    report.registry().fold_counters("client/" + std::to_string(i),
                                    c.router->metrics());
    for (std::uint32_t s = 0; s < shards; ++s) {
      report.registry().fold_counters(
          "shard/" + std::to_string(s) + "/client/" + std::to_string(i),
          c.legs[s]->metrics());
      for (const auto& [name, value] : c.transports[s]->counters().all()) {
        net_total.inc(name, value);
      }
    }
  }
  report.registry().fold_counters("net", net_total);
  Counters keystore_total;
  for (const auto& ks : keystores) {
    for (const auto& [name, value] : ks->counters().all()) {
      keystore_total.inc(name, value);
    }
  }
  report.registry().fold_counters("", keystore_total);

  const auto write_snap = report.summary("client.write.total_ms").snapshot();
  std::printf("bftbc_bench: %.0f ops in %.3fs = %.1f ops/s; write p50=%.3fms "
              "p99=%.3fms; %llu failures\n",
              total_measured, window_s, throughput, write_snap.p50,
              write_snap.p99,
              static_cast<unsigned long long>(driver.failures));
  if (driver.failures > 0 &&
      driver.failures * 10 > measured_ops * clients_n) {
    std::fprintf(stderr, "bftbc_bench: >10%% of operations failed\n");
    (void)report.finish();
    return 1;
  }
  return report.finish();
}
