// bftbc_explore: randomized scenario explorer CLI.
//
//   bftbc_explore --runs 500 --seed 42 --artifacts explore-artifacts
//   bftbc_explore --runs 500 --seed 42 --guided --corpus corpus
//   bftbc_explore --replay explore-artifacts/scenario_seed123.json
//
// Explore mode samples and runs N seeded scenarios, checks every run
// against the BFT-linearizability bound for its mode, shrinks failures,
// and dumps minimal scenario JSON + trace artifacts. With --guided the
// explorer turns coverage-guided and mutational: novel-coverage runs
// enter a corpus that subsequent runs mutate instead of sampling fresh.
// --corpus names a directory of scenario JSONs replayed first as the
// seed corpus (and, guided only, updated with admitted entries after).
// The report is deterministic: same --runs, --seed, and corpus contents
// produce a byte-identical JSON report. --coverage-report additionally
// prints a human-readable coverage summary to stderr.
// Exit status: 0 clean, 1 failures found, 2 usage/parse error.
//
// Replay mode loads one scenario JSON (as dumped by explore mode) and
// runs exactly that scenario, printing the outcome and — on failure —
// the event trace.
#include <fstream>
#include <iostream>
#include <sstream>

#include "explore/explorer.h"
#include "util/flags.h"

namespace {

int replay(const std::string& path, bftbc::explore::Explorer& explorer) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "cannot open scenario file: " << path << "\n";
    return 2;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  const auto scenario = bftbc::explore::Scenario::from_json(buffer.str());
  if (!scenario.has_value()) {
    std::cerr << "not a valid scenario document: " << path << "\n";
    return 2;
  }
  std::cout << "replaying " << scenario->name() << " (seed "
            << scenario->seed << ")\n";
  std::ostringstream trace;
  const bftbc::explore::RunOutcome outcome =
      explorer.run_scenario(*scenario, &trace);
  std::cout << "events=" << outcome.events << " ops=" << outcome.history_ops
            << " max_lurking=" << outcome.max_lurking << "\n";
  if (!outcome.failed()) {
    std::cout << "PASS: scenario is clean\n";
    return 0;
  }
  std::cout << "FAIL: " << outcome.failure << "\n";
  std::cout << trace.str();
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  bftbc::FlagSet flags;
  auto& runs = flags.add_u64("runs", 50, "number of scenarios to explore");
  auto& seed = flags.add_u64("seed", 1, "base seed for scenario sampling");
  auto& replay_path =
      flags.add_string("replay", "", "replay one scenario JSON and exit");
  auto& json_path =
      flags.add_string("json", "", "write the JSON report here (default stdout)");
  auto& artifacts = flags.add_string(
      "artifacts", "explore-artifacts",
      "directory for minimal scenario JSON + traces ('' disables)");
  auto& max_shrink =
      flags.add_u64("max-shrink", 64, "candidate-run budget per shrink");
  auto& guided = flags.add_bool(
      "guided", false, "coverage-guided mutational mode (vs uniform sampling)");
  auto& corpus = flags.add_string(
      "corpus", "",
      "directory of seed-corpus scenario JSONs; guided mode saves admitted "
      "entries back into it");
  auto& coverage_report = flags.add_bool(
      "coverage-report", false, "print a coverage summary to stderr");
  flags.parse(argc, argv);

  bftbc::explore::ExplorerOptions options;
  options.seed = *seed;
  options.runs = static_cast<std::uint32_t>(*runs);
  options.artifacts_dir = *artifacts;
  options.shrink_budget = static_cast<std::uint32_t>(*max_shrink);
  options.guided = *guided;
  options.corpus_dir = *corpus;
  bftbc::explore::Explorer explorer(options);

  if (!(*replay_path).empty()) return replay(*replay_path, explorer);

  const bftbc::explore::Report report = explorer.explore();
  const std::string rendered = report.to_json();
  if (!(*json_path).empty()) {
    std::ofstream out(*json_path);
    out << rendered << "\n";
  } else {
    std::cout << rendered << "\n";
  }
  if (*coverage_report) {
    std::cerr << "coverage: " << report.coverage << " distinct signals ("
              << (report.guided ? "guided" : "uniform") << "), corpus "
              << report.corpus_size << " entries\n";
    std::size_t shown = 0;
    for (const std::string& s : report.signals_seen) {
      std::cerr << "  " << s << "\n";
      if (++shown >= 200) {
        std::cerr << "  ... (" << report.signals_seen.size() - shown
                  << " more)\n";
        break;
      }
    }
  }
  std::cerr << report.failures << "/" << report.runs
            << " scenarios failed\n";
  return report.failures == 0 ? 0 : 1;
}
