// bftbcd — a BFT-BC replica as a standalone UDP daemon.
//
// The deployable half of the tentpole: the *same* core::Replica state
// machine the simulator drives in every test, wired to a net::EventLoop
// and net::UdpTransport instead. One process per replica:
//
//   bftbcd --config bench/cluster_localhost.json --replica 0
//
// All processes share the cluster config file, which pins the quorum
// parameters, the protocol mode, and the deterministic key seed — so the
// daemons and any bftbc_bench clients derive matching keys without a key
// exchange (see net/cluster_config.h).
//
// Shutdown: SIGINT/SIGTERM stop the loop; the replica prints its counter
// map on exit (reply/drop accounting) for post-run inspection.
#include <csignal>
#include <cstdio>
#include <memory>

#include "bftbc/replica.h"
#include "crypto/verify_pool.h"
#include "net/cluster_config.h"
#include "net/event_loop.h"
#include "net/udp_transport.h"
#include "util/flags.h"

namespace {

// Written by the signal handler, polled by a loop timer: the handler
// itself must stay async-signal-safe, so it only flips the flag.
volatile std::sig_atomic_t g_stop = 0;

void handle_signal(int) { g_stop = 1; }

}  // namespace

int main(int argc, char** argv) {
  using namespace bftbc;

  FlagSet flags;
  auto& config_path =
      flags.add_string("config", "", "path to the cluster JSON file");
  auto& replica_id =
      flags.add_int("replica", -1, "this replica's index (0..3f)");
  auto& shard_id = flags.add_int(
      "shard", 0, "this replica's shard group (multi-shard configs)");
  auto& force_poll =
      flags.add_bool("force-poll", false, "use poll() even where epoll exists");
  auto& verify_threads = flags.add_int(
      "verify-threads", 0,
      "worker threads for batch signature verification (0 = inline)");
  flags.parse(argc, argv);

  if ((*config_path).empty() || *replica_id < 0) {
    std::fprintf(stderr, "bftbcd: --config and --replica are required\n%s",
                 flags.usage("bftbcd").c_str());
    return 2;
  }

  auto loaded = net::ClusterConfig::load(*config_path);
  if (!loaded.is_ok()) {
    std::fprintf(stderr, "bftbcd: %s\n", loaded.status().message().c_str());
    return 2;
  }
  const net::ClusterConfig& cluster = loaded.value();
  const auto r = static_cast<quorum::ReplicaId>(*replica_id);
  const quorum::QuorumConfig quorum = cluster.quorum();
  if (!quorum.valid_replica(r)) {
    std::fprintf(stderr, "bftbcd: --replica %d out of range (n=%u)\n",
                 static_cast<int>(*replica_id), quorum.n);
    return 2;
  }
  const auto shard = static_cast<std::uint32_t>(*shard_id);
  if (*shard_id < 0 || shard >= cluster.shard_count()) {
    std::fprintf(stderr, "bftbcd: --shard %d out of range (%u shards)\n",
                 static_cast<int>(*shard_id), cluster.shard_count());
    return 2;
  }

  // The keystore seed is shard-local: this group's certificates can
  // never validate in another group (and vice versa).
  crypto::Keystore keystore(cluster.signature_scheme(),
                            cluster.shard_seed(shard), cluster.rsa_bits);
  net::register_cluster_principals(cluster, keystore);

  // Optional verification pool: batch verifies fan out across workers
  // while the event loop thread blocks for the batch (still one protocol
  // thread — the pool only parallelizes the crypto inside one batch).
  std::unique_ptr<crypto::VerifyPool> pool;
  if (*verify_threads > 0) {
    pool = std::make_unique<crypto::VerifyPool>(
        static_cast<std::size_t>(*verify_threads));
    keystore.set_verify_pool(pool.get());
  }

  net::EventLoop loop(*force_poll);
  auto peers = net::replica_endpoints(cluster, shard);
  if (!peers.is_ok()) {
    std::fprintf(stderr, "bftbcd: %s\n", peers.status().message().c_str());
    return 2;
  }
  const net::UdpEndpoint bind_to = peers.value().at(r);
  net::UdpTransport transport(loop, r, bind_to, peers.value());
  if (!transport.valid()) {
    std::fprintf(stderr, "bftbcd: cannot bind UDP %s\n",
                 bind_to.to_string().c_str());
    return 1;
  }

  core::ReplicaOptions ropts;
  ropts.optimized = cluster.optimized();
  ropts.strong = cluster.strong();
  ropts.mac_auth = cluster.mac_auth();
  core::Replica replica(quorum, r, keystore, transport, loop, ropts);

  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);
  // The stop flag is only a flag; this timer turns it into a loop exit.
  std::function<void()> poll_stop = [&] {
    if (g_stop != 0) {
      loop.stop();
      return;
    }
    loop.schedule(50 * sim::kMillisecond, poll_stop);
  };
  loop.schedule(50 * sim::kMillisecond, poll_stop);

  std::printf("bftbcd: shard %u replica %u (%s mode, %s auth, %s) "
              "listening on %s\n",
              shard, r, cluster.mode.c_str(), cluster.auth.c_str(),
              cluster.scheme.c_str(), bind_to.to_string().c_str());
  std::fflush(stdout);  // readiness marker for scripts tailing the log

  loop.run();

  std::printf("bftbcd: replica %u shutting down; counters:\n", r);
  for (const auto& [name, value] : replica.metrics().all()) {
    std::printf("  %-28s %llu\n", name.c_str(),
                static_cast<unsigned long long>(value));
  }
  for (const auto& [name, value] : transport.counters().all()) {
    std::printf("  net/%-24s %llu\n", name.c_str(),
                static_cast<unsigned long long>(value));
  }
  return 0;
}
