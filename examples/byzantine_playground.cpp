// Example: the Byzantine playground — run every §3.2 attack against a
// live cluster and watch the protocol confine each one.
//
// A guided tour of the threat model for people evaluating the library:
// each section prints what the attacker attempted, what it achieved, and
// what the good clients observed.
#include <cstdio>

#include "checker/bft_linearizability.h"
#include "faults/byzantine_client.h"
#include "faults/byzantine_replica.h"
#include "harness/cluster.h"
#include "harness/recording.h"

using namespace bftbc;

namespace {

void banner(const char* title) { std::printf("\n===== %s =====\n", title); }

}  // namespace

int main() {
  banner("attack 1: equivocation (two values, one timestamp)");
  {
    harness::Cluster cluster([] { harness::ClusterOptions o; o.seed = 1; return o; }());
    auto t = cluster.make_transport(harness::client_node(66));
    faults::EquivocatorClient attacker(cluster.config(), 66,
                                       cluster.keystore(), *t, cluster.sim(),
                                       cluster.replica_nodes(),
                                       cluster.rng().split());
    std::optional<faults::EquivocatorClient::Outcome> out;
    attacker.attack(1, to_bytes("launch-missiles"), to_bytes("stand-down"),
                    [&](faults::EquivocatorClient::Outcome o) { out = o; });
    cluster.run_until([&] { return out.has_value(); });
    std::printf("attacker sought certificates for two values at one ts\n");
    std::printf("  certificate for value 1: %s\n", out->cert_v1 ? "OBTAINED" : "refused");
    std::printf("  certificate for value 2: %s\n", out->cert_v2 ? "OBTAINED" : "refused");
    std::printf("  verdict: %s\n",
                (out->cert_v1 && out->cert_v2)
                    ? "PROTOCOL BROKEN"
                    : "confined (a correct replica signs one prepare per "
                      "client, Figure 2 step 3)");
  }

  banner("attack 2: partial write (install at one replica only)");
  {
    harness::Cluster cluster([] { harness::ClusterOptions o; o.seed = 2; return o; }());
    auto& good = cluster.add_client(1);
    (void)cluster.write(good, 1, to_bytes("baseline"));
    auto t = cluster.make_transport(harness::client_node(66));
    faults::PartialWriter attacker(cluster.config(), 66, cluster.keystore(),
                                   *t, cluster.sim(), cluster.replica_nodes(),
                                   cluster.rng().split());
    bool done = false, prepared = false;
    attacker.attack(1, to_bytes("skewed"), [&](bool p) {
      prepared = p;
      done = true;
    });
    cluster.run_until([&] { return done; });
    std::printf("attacker prepared honestly then wrote to 1/4 replicas: %s\n",
                prepared ? "done" : "failed");
    auto r1 = cluster.read(good, 1);
    auto r2 = cluster.read(good, 1);
    std::printf("  reader sees \"%s\" then \"%s\" — reads repair via "
                "write-back, atomicity holds\n",
                r1.is_ok() ? to_string(r1.value().value).c_str() : "?",
                r2.is_ok() ? to_string(r2.value().value).c_str() : "?");
  }

  banner("attack 3: timestamp exhaustion");
  {
    harness::Cluster cluster([] { harness::ClusterOptions o; o.seed = 3; return o; }());
    auto& good = cluster.add_client(1);
    (void)cluster.write(good, 1, to_bytes("v"));
    auto t = cluster.make_transport(harness::client_node(66));
    faults::TimestampHog hog(cluster.config(), 66, cluster.keystore(), *t,
                             cluster.sim(), cluster.replica_nodes(),
                             cluster.rng().split());
    std::optional<faults::TimestampHog::Outcome> out;
    hog.attack(1, 1'000'000'000, 8,
               [&](faults::TimestampHog::Outcome o) { out = o; });
    cluster.run_until([&] { return out.has_value(); });
    auto w = cluster.write(good, 1, to_bytes("after"));
    std::printf("attacker sent %llu huge-timestamp prepares; replicas "
                "accepted %llu\n",
                static_cast<unsigned long long>(out->attempts),
                static_cast<unsigned long long>(out->accepted));
    std::printf("  good client's next timestamp: %s (still +1 per write)\n",
                w.is_ok() ? w.value().ts.to_string().c_str() : "?");
  }

  banner("attack 4: lurking writes via a colluder");
  {
    harness::Cluster cluster([] { harness::ClusterOptions o; o.seed = 4; return o; }());
    checker::History history;
    harness::Recorder rec(cluster, history);
    auto& good = cluster.add_client(1);
    (void)rec.write(good, 1, to_bytes("pre"));

    auto t = cluster.make_transport(harness::client_node(66));
    faults::LurkingWriteStasher stasher(cluster.config(), 66,
                                        cluster.keystore(), *t, cluster.sim(),
                                        cluster.replica_nodes(),
                                        cluster.rng().split());
    std::optional<faults::LurkingWriteStasher::Outcome> out;
    stasher.attack(1, /*goal=*/5, /*use_optlist=*/false,
                   [&](faults::LurkingWriteStasher::Outcome o) {
                     out = std::move(o);
                   });
    cluster.run_until([&] { return out.has_value(); });
    std::printf("attacker wanted 5 lurking writes, stashed %zu "
                "(prepare attempts: %llu)\n",
                out->stashed.size(),
                static_cast<unsigned long long>(out->prepare_attempts));

    auto ct = cluster.make_transport(harness::client_node(67));
    faults::Colluder colluder(*ct, cluster.replica_nodes());
    for (auto& env : out->stashed) colluder.stash(std::move(env));
    rec.stop_client(66);
    std::printf("client 66 stopped (key revoked); colluder replays stash\n");
    colluder.unleash();
    cluster.settle();

    for (int i = 0; i < 3; ++i) {
      (void)rec.read(good, 1);
      (void)rec.write(good, 1, to_bytes("post" + std::to_string(i)));
    }
    auto check = checker::check_bft_linearizability(history, {66});
    std::printf("  history: %s\n", check.summary().c_str());
    std::printf("  verdict: %d lurking write(s) surfaced (bound: 1)\n",
                check.lurking.count(66) ? check.lurking.at(66).count : 0);
  }

  banner("bonus: f Byzantine replicas of mixed species");
  {
    harness::ClusterOptions o;
    o.f = 2;
    o.seed = 5;
    o.replica_factories[0] =
        [](const quorum::QuorumConfig& cfg, quorum::ReplicaId id,
           crypto::Keystore& ks, rpc::Transport& t, sim::Simulator& s,
           const core::ReplicaOptions& opts)
        -> std::unique_ptr<core::Replica> {
      return std::make_unique<faults::GarbageSigReplica>(cfg, id, ks, t, s,
                                                         opts);
    };
    o.replica_factories[1] =
        [](const quorum::QuorumConfig& cfg, quorum::ReplicaId id,
           crypto::Keystore& ks, rpc::Transport& t, sim::Simulator& s,
           const core::ReplicaOptions& opts)
        -> std::unique_ptr<core::Replica> {
      return std::make_unique<faults::FlipValueReplica>(cfg, id, ks, t, s,
                                                        opts);
    };
    harness::Cluster cluster(o);
    auto& good = cluster.add_client(1);
    bool ok = true;
    for (int i = 0; i < 5 && ok; ++i) {
      ok = cluster.write(good, 1, to_bytes("v" + std::to_string(i))).is_ok();
      auto r = cluster.read(good, 1);
      ok = ok && r.is_ok() &&
           to_string(r.value().value) == "v" + std::to_string(i);
    }
    std::printf("7 replicas, 2 Byzantine (garbage sigs + value flipping): "
                "5 write/read rounds %s\n",
                ok ? "all correct" : "FAILED");
  }

  std::printf("\nAll attacks confined. See tests/byzantine_test.cpp for the "
              "assertion-backed versions.\n");
  return 0;
}
