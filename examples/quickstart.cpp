// Quickstart: bring up a BFT-BC cluster (f=1 → 4 replicas), write a
// value, read it back.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "harness/cluster.h"

using namespace bftbc;

int main() {
  // A cluster tolerating f=1 Byzantine replica: 3f+1 = 4 replicas,
  // quorums of 2f+1 = 3. Runs on the deterministic network simulator.
  harness::ClusterOptions options;
  options.f = 1;
  options.seed = 2024;
  harness::Cluster cluster(options);

  // Clients are authorized principals; their ids embed into timestamps.
  core::Client& alice = cluster.add_client(1);
  core::Client& bob = cluster.add_client(2);

  // Write: three phases under the hood (READ-TS, PREPARE, WRITE), each a
  // quorum RPC with retransmission.
  constexpr quorum::ObjectId kObject = 42;
  auto write = cluster.write(alice, kObject, to_bytes("hello, byzantium"));
  if (!write.is_ok()) {
    std::printf("write failed: %s\n", write.status().to_string().c_str());
    return 1;
  }
  std::printf("alice wrote at timestamp %s in %d phases\n",
              write.value().ts.to_string().c_str(), write.value().phases);

  // Read: one phase when the quorum agrees; the value arrives with a
  // prepare certificate proving a quorum vouched for it.
  auto read = cluster.read(bob, kObject);
  if (!read.is_ok()) {
    std::printf("read failed: %s\n", read.status().to_string().c_str());
    return 1;
  }
  std::printf("bob read \"%s\" at timestamp %s in %d phase(s)\n",
              to_string(read.value().value).c_str(),
              read.value().ts.to_string().c_str(), read.value().phases);

  // The same API works with a crashed replica — any 2f+1 suffice.
  cluster.crash_replica(0);
  auto write2 = cluster.write(alice, kObject, to_bytes("still available"));
  std::printf("with a crashed replica: write %s (ts %s)\n",
              write2.is_ok() ? "succeeded" : "failed",
              write2.is_ok() ? write2.value().ts.to_string().c_str() : "-");

  return 0;
}
