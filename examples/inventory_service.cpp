// Example: an inventory service on the KvStore facade.
//
// Shows the string-keyed API, read-modify-write updates, erase
// semantics, and that the store keeps working through replica crashes —
// the "downstream user" view of the library, with none of the protocol
// machinery visible.
#include <cstdio>
#include <string>

#include "bftbc/kvstore.h"
#include "harness/cluster.h"

using namespace bftbc;

namespace {

// Synchronous wrappers for the example's readability.
struct Store {
  harness::Cluster& cluster;
  core::KvStore kv;

  bool put(std::string_view key, const std::string& value) {
    std::optional<bool> ok;
    kv.put(key, to_bytes(value),
           [&](Result<core::KvStore::PutResult> r) { ok = r.is_ok(); });
    cluster.run_until([&] { return ok.has_value(); });
    return *ok;
  }

  std::optional<std::string> get(std::string_view key) {
    std::optional<std::optional<std::string>> out;
    kv.get(key, [&](Result<core::KvStore::GetResult> r) {
      if (!r.is_ok() || !r.value().value.has_value()) {
        out = std::optional<std::string>{};
      } else {
        out = to_string(*r.value().value);
      }
    });
    cluster.run_until([&] { return out.has_value(); });
    return *out;
  }

  bool erase(std::string_view key) {
    std::optional<bool> ok;
    kv.erase(key,
             [&](Result<core::KvStore::PutResult> r) { ok = r.is_ok(); });
    cluster.run_until([&] { return ok.has_value(); });
    return *ok;
  }

  // Read-modify-write: adjust a numeric quantity.
  bool adjust(std::string_view key, int delta) {
    auto current = get(key);
    const int count = current ? std::stoi(*current) : 0;
    return put(key, std::to_string(count + delta));
  }
};

}  // namespace

int main() {
  harness::ClusterOptions options;
  options.f = 1;
  options.optimized = true;
  options.seed = 555;
  harness::Cluster cluster(options);

  Store store{cluster, core::KvStore(cluster.add_client(1))};

  std::printf("== stocking the warehouse ==\n");
  store.put("sku/anvil", "12");
  store.put("sku/rocket-skates", "3");
  store.put("sku/tnt", "100");
  for (const char* sku : {"sku/anvil", "sku/rocket-skates", "sku/tnt"}) {
    std::printf("  %-18s qty=%s\n", sku, store.get(sku)->c_str());
  }

  std::printf("\n== order processing (read-modify-write) ==\n");
  store.adjust("sku/anvil", -2);
  store.adjust("sku/tnt", -25);
  store.adjust("sku/rocket-skates", +5);
  for (const char* sku : {"sku/anvil", "sku/rocket-skates", "sku/tnt"}) {
    std::printf("  %-18s qty=%s\n", sku, store.get(sku)->c_str());
  }

  std::printf("\n== discontinuing a product ==\n");
  store.erase("sku/rocket-skates");
  auto gone = store.get("sku/rocket-skates");
  std::printf("  sku/rocket-skates -> %s\n",
              gone ? gone->c_str() : "(absent)");

  std::printf("\n== replica crash mid-operation ==\n");
  cluster.crash_replica(2);
  store.adjust("sku/anvil", -1);
  std::printf("  after crash, sku/anvil qty=%s (still available)\n",
              store.get("sku/anvil")->c_str());

  // A second front-end (different client) sees the same state.
  Store other{cluster, core::KvStore(cluster.add_client(2))};
  std::printf("  second front-end reads sku/anvil qty=%s\n",
              other.get("sku/anvil")->c_str());
  return 0;
}
