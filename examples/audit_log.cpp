// Example: a tamper-evident audit head.
//
// A common pattern over an atomic register: the register holds the HEAD
// of an append-only log — 〈sequence number, hash of previous head,
// payload digest〉. Auditors append by read-modify-write; the register's
// atomicity plus unique, monotonically increasing timestamps make forks
// detectable, and BFT-BC's Byzantine-client tolerance bounds how much a
// rogue auditor can damage the chain even with a colluder replaying for
// it after it is fired.
#include <cstdio>
#include <string>

#include "crypto/sha256.h"
#include "harness/cluster.h"
#include "util/hex.h"

using namespace bftbc;

namespace {

constexpr quorum::ObjectId kLogHead = 9;

struct Head {
  std::uint64_t seq = 0;
  std::string prev_digest;  // hex of previous head's bytes
  std::string entry;

  Bytes encode() const {
    return to_bytes(std::to_string(seq) + "|" + prev_digest + "|" + entry);
  }
  static Head parse(const Bytes& b) {
    const std::string s = to_string(b);
    Head h;
    const auto p1 = s.find('|');
    const auto p2 = s.find('|', p1 + 1);
    if (p1 == std::string::npos || p2 == std::string::npos) return h;
    h.seq = std::stoull(s.substr(0, p1));
    h.prev_digest = s.substr(p1 + 1, p2 - p1 - 1);
    h.entry = s.substr(p2 + 1);
    return h;
  }
};

// Read-modify-write append. Returns the new head on success.
Result<Head> append(harness::Cluster& cluster, core::Client& auditor,
                    const std::string& entry) {
  auto r = cluster.read(auditor, kLogHead);
  if (!r.is_ok()) return r.status();

  Head prev;
  std::string prev_hex = "genesis";
  if (!r.value().value.empty()) {
    prev = Head::parse(r.value().value);
    prev_hex = hex_prefix(crypto::digest_view(crypto::sha256(r.value().value)),
                          16);
  }
  Head next;
  next.seq = prev.seq + 1;
  next.prev_digest = prev_hex;
  next.entry = entry;

  auto w = cluster.write(auditor, kLogHead, next.encode());
  if (!w.is_ok()) return w.status();
  return next;
}

// Verify the chain telescopes: each head's prev_digest matches what we
// recorded when writing — a fork or rollback breaks the chain.
bool verify_chain(const std::vector<Bytes>& heads) {
  std::string expected = "genesis";
  for (const Bytes& raw : heads) {
    const Head h = Head::parse(raw);
    if (h.prev_digest != expected) return false;
    expected = hex_prefix(crypto::digest_view(crypto::sha256(raw)), 16);
  }
  return true;
}

}  // namespace

int main() {
  harness::ClusterOptions options;
  options.f = 1;
  options.seed = 99;
  harness::Cluster cluster(options);

  core::Client& auditor_a = cluster.add_client(1);
  core::Client& auditor_b = cluster.add_client(2);

  std::printf("== appending audit entries from two auditors ==\n");
  std::vector<Bytes> chain;
  const char* entries[] = {"user alice logged in", "payout #881 approved",
                           "key rotation completed", "user bob promoted",
                           "backup verified"};
  for (std::size_t i = 0; i < std::size(entries); ++i) {
    core::Client& who = (i % 2 == 0) ? auditor_a : auditor_b;
    auto h = append(cluster, who, entries[i]);
    if (!h.is_ok()) {
      std::printf("append failed: %s\n", h.status().to_string().c_str());
      return 1;
    }
    chain.push_back(h.value().encode());
    std::printf("  seq %llu by auditor %u: %s (prev=%s)\n",
                static_cast<unsigned long long>(h.value().seq), who.id(),
                h.value().entry.c_str(), h.value().prev_digest.c_str());
  }

  std::printf("\n== chain verification ==\n  chain of %zu heads: %s\n",
              chain.size(), verify_chain(chain) ? "INTACT" : "BROKEN");

  // Timestamps grew by exactly one per append: nobody can burn through
  // the sequence space, and the head's history length equals ts.val.
  auto final_read = cluster.read(auditor_a, kLogHead);
  if (final_read.is_ok()) {
    std::printf("  register timestamp: %s (appends: %zu)\n",
                final_read.value().ts.to_string().c_str(), chain.size());
  }

  // A crashed replica does not stop the auditors.
  cluster.crash_replica(2);
  auto h = append(cluster, auditor_b, "post-crash entry");
  std::printf("\n== availability with a crashed replica ==\n  append %s\n",
              h.is_ok() ? "succeeded" : "failed");

  return 0;
}
