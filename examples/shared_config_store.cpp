// Example: a replicated configuration store for a fleet of services.
//
// The motivating deployment for a Byzantine-client-tolerant register:
// many semi-trusted services share configuration objects; a compromised
// service must not be able to corrupt what the others read, wedge their
// updates, or leave time bombs behind after it is de-provisioned.
//
// This example runs several services updating config keys (one BFT-BC
// object per key), lets one "compromised" service attempt the §3.2
// attacks, then de-provisions it (the stop event) and shows the fleet
// continues with at most one stale surprise.
#include <cstdio>
#include <string>

#include "faults/byzantine_client.h"
#include "harness/cluster.h"
#include "harness/recording.h"
#include "checker/bft_linearizability.h"

using namespace bftbc;

namespace {

constexpr quorum::ObjectId kFrontendFlags = 1;
constexpr quorum::ObjectId kBackendLimits = 2;
constexpr quorum::ObjectId kRolloutPercent = 3;

void print_config(harness::Cluster& cluster, core::Client& reader) {
  for (auto [name, object] :
       {std::pair{"frontend-flags", kFrontendFlags},
        std::pair{"backend-limits", kBackendLimits},
        std::pair{"rollout-percent", kRolloutPercent}}) {
    auto r = cluster.read(reader, object);
    std::printf("  %-16s = %-24s (ts %s)\n", name,
                r.is_ok() ? to_string(r.value().value).c_str() : "<error>",
                r.is_ok() ? r.value().ts.to_string().c_str() : "-");
  }
}

}  // namespace

int main() {
  harness::ClusterOptions options;
  options.f = 1;
  options.seed = 7;
  options.optimized = true;  // config updates are latency-sensitive
  harness::Cluster cluster(options);
  checker::History history;
  harness::Recorder rec(cluster, history);

  core::Client& deployer = cluster.add_client(1);
  core::Client& autoscaler = cluster.add_client(2);
  core::Client& dashboard = cluster.add_client(3);

  std::printf("== initial rollout ==\n");
  (void)rec.write(deployer, kFrontendFlags, to_bytes("dark-mode=off"));
  (void)rec.write(deployer, kBackendLimits, to_bytes("max-conn=100"));
  (void)rec.write(deployer, kRolloutPercent, to_bytes("5"));
  print_config(cluster, dashboard);

  std::printf("\n== concurrent updates from two services ==\n");
  (void)rec.write(autoscaler, kBackendLimits, to_bytes("max-conn=250"));
  (void)rec.write(deployer, kRolloutPercent, to_bytes("25"));
  print_config(cluster, dashboard);

  std::printf("\n== service 66 is compromised: attempts equivocation ==\n");
  auto transport = cluster.make_transport(harness::client_node(66));
  faults::EquivocatorClient attacker(cluster.config(), 66, cluster.keystore(),
                                     *transport, cluster.sim(),
                                     cluster.replica_nodes(),
                                     cluster.rng().split());
  std::optional<faults::EquivocatorClient::Outcome> outcome;
  attacker.attack(kRolloutPercent, to_bytes("100"), to_bytes("0"),
                  [&](faults::EquivocatorClient::Outcome o) { outcome = o; });
  cluster.run_until([&] { return outcome.has_value(); });
  std::printf("  attacker certificates: v1=%s v2=%s (needs both to split)\n",
              outcome->cert_v1 ? "YES" : "no", outcome->cert_v2 ? "YES" : "no");
  print_config(cluster, dashboard);

  std::printf("\n== compromised service de-provisioned (stop event) ==\n");
  rec.stop_client(66);
  (void)rec.write(deployer, kRolloutPercent, to_bytes("50"));
  (void)rec.read(dashboard, kRolloutPercent);
  print_config(cluster, dashboard);

  auto check = checker::check_bft_linearizability(history, {66});
  std::printf("\n== audit ==\n  %s\n  lurking writes by service 66: %d "
              "(protocol bound: 2 for the optimized variant)\n",
              check.summary().c_str(),
              check.lurking.count(66) ? check.lurking.at(66).count : 0);
  return check.ok(2) ? 0 : 1;
}
