// Wire-format tests for every BFT-BC message: encode/decode roundtrips,
// rejection of truncation and trailing garbage, and signing-payload
// domain separation.
#include <gtest/gtest.h>

#include "bftbc/messages.h"

namespace bftbc::core {
namespace {

crypto::Nonce nonce(std::uint64_t n) { return crypto::Nonce{1, n, n * 17}; }

PrepareCertificate prep_cert() {
  quorum::SignatureSet sigs;
  sigs[0] = to_bytes("sig0");
  sigs[2] = to_bytes("sig2");
  sigs[3] = to_bytes("sig3");
  return PrepareCertificate(7, {4, 2}, crypto::sha256(as_bytes_view("v")),
                            sigs);
}

WriteCertificate write_cert() {
  quorum::SignatureSet sigs;
  sigs[1] = to_bytes("w1");
  sigs[2] = to_bytes("w2");
  sigs[3] = to_bytes("w3");
  return WriteCertificate(7, {3, 9}, sigs);
}

template <typename M>
void expect_rejects_mutations(const M& msg) {
  const Bytes good = msg.encode();
  // Truncations must not decode.
  for (std::size_t cut = 1; cut <= std::min<std::size_t>(good.size(), 6);
       ++cut) {
    Bytes t(good.begin(), good.end() - static_cast<std::ptrdiff_t>(cut));
    EXPECT_FALSE(M::decode(t).has_value()) << "cut " << cut;
  }
  // Trailing garbage must not decode.
  Bytes extended = good;
  extended.push_back(0xff);
  EXPECT_FALSE(M::decode(extended).has_value());
  // Empty must not decode.
  EXPECT_FALSE(M::decode(Bytes{}).has_value());
}

TEST(MessagesTest, ReadTsRequestRoundtrip) {
  ReadTsRequest m;
  m.object = 9;
  m.nonce = nonce(5);
  auto back = ReadTsRequest::decode(m.encode());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->object, 9u);
  EXPECT_EQ(back->nonce, m.nonce);
  expect_rejects_mutations(m);
}

TEST(MessagesTest, ReadTsReplyRoundtrip) {
  ReadTsReply m;
  m.object = 7;
  m.nonce = nonce(6);
  m.pcert = prep_cert();
  m.strong_write_sig = to_bytes("strong");
  m.replica = 3;
  m.auth = to_bytes("auth-tag");
  auto back = ReadTsReply::decode(m.encode());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->pcert, m.pcert);
  EXPECT_EQ(back->strong_write_sig, m.strong_write_sig);
  EXPECT_EQ(back->replica, 3u);
  EXPECT_EQ(back->auth, m.auth);
  expect_rejects_mutations(m);
}

TEST(MessagesTest, ReadTsReplySigningPayloadCoversContent) {
  ReadTsReply a;
  a.object = 7;
  a.nonce = nonce(6);
  a.pcert = prep_cert();
  ReadTsReply b = a;
  b.nonce = nonce(7);
  EXPECT_NE(a.signing_payload(), b.signing_payload());
  ReadTsReply c = a;
  c.strong_write_sig = to_bytes("x");
  EXPECT_NE(a.signing_payload(), c.signing_payload());
}

TEST(MessagesTest, PrepareRequestRoundtrip) {
  PrepareRequest m;
  m.object = 7;
  m.t = {5, 2};
  m.hash = crypto::sha256(as_bytes_view("value"));
  m.prep_cert = prep_cert();
  m.write_cert = write_cert();
  m.client = 2;
  m.sig = to_bytes("client-sig");
  auto back = PrepareRequest::decode(m.encode());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->t, m.t);
  EXPECT_EQ(back->hash, m.hash);
  EXPECT_EQ(back->prep_cert, m.prep_cert);
  ASSERT_TRUE(back->write_cert.has_value());
  EXPECT_EQ(*back->write_cert, *m.write_cert);
  EXPECT_EQ(back->client, 2u);
  expect_rejects_mutations(m);
}

TEST(MessagesTest, PrepareRequestWithoutWriteCert) {
  PrepareRequest m;
  m.object = 1;
  m.t = {1, 4};
  m.hash = crypto::sha256(as_bytes_view("first"));
  m.prep_cert = PrepareCertificate::genesis(1);
  m.client = 4;
  m.sig = to_bytes("s");
  auto back = PrepareRequest::decode(m.encode());
  ASSERT_TRUE(back.has_value());
  EXPECT_FALSE(back->write_cert.has_value());
}

TEST(MessagesTest, PrepareSigningPayloadBindsEverything) {
  PrepareRequest base;
  base.object = 7;
  base.t = {5, 2};
  base.hash = crypto::sha256(as_bytes_view("value"));
  base.prep_cert = prep_cert();
  base.client = 2;

  auto payload = base.signing_payload();
  {
    PrepareRequest m = base;
    m.t = {6, 2};
    EXPECT_NE(m.signing_payload(), payload);
  }
  {
    PrepareRequest m = base;
    m.hash = crypto::sha256(as_bytes_view("other"));
    EXPECT_NE(m.signing_payload(), payload);
  }
  {
    PrepareRequest m = base;
    m.object = 8;
    EXPECT_NE(m.signing_payload(), payload);
  }
  {
    PrepareRequest m = base;
    m.write_cert = write_cert();
    EXPECT_NE(m.signing_payload(), payload);
  }
  {
    PrepareRequest m = base;
    m.client = 3;
    EXPECT_NE(m.signing_payload(), payload);
  }
  // The signature itself is NOT part of the signed payload.
  {
    PrepareRequest m = base;
    m.sig = to_bytes("different");
    EXPECT_EQ(m.signing_payload(), payload);
  }
}

TEST(MessagesTest, PrepareReplyRoundtrip) {
  PrepareReply m;
  m.object = 7;
  m.t = {5, 2};
  m.hash = crypto::sha256(as_bytes_view("value"));
  m.replica = 1;
  m.sig = to_bytes("stmt-sig");
  auto back = PrepareReply::decode(m.encode());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->t, m.t);
  EXPECT_EQ(back->replica, 1u);
  expect_rejects_mutations(m);
}

TEST(MessagesTest, WriteRequestRoundtrip) {
  WriteRequest m;
  m.object = 7;
  m.value = to_bytes("the payload bytes");
  m.prep_cert = prep_cert();
  m.client = 9;
  m.sig = to_bytes("cs");
  auto back = WriteRequest::decode(m.encode());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->value, m.value);
  EXPECT_EQ(back->prep_cert, m.prep_cert);
  expect_rejects_mutations(m);
}

TEST(MessagesTest, WriteSigningPayloadBindsValueByDigest) {
  WriteRequest a;
  a.object = 7;
  a.value = to_bytes("v1");
  a.prep_cert = prep_cert();
  a.client = 9;
  WriteRequest b = a;
  b.value = to_bytes("v2");
  EXPECT_NE(a.signing_payload(), b.signing_payload());
}

TEST(MessagesTest, WriteReplyRoundtrip) {
  WriteReply m;
  m.object = 7;
  m.ts = {5, 2};
  m.replica = 2;
  m.sig = to_bytes("ws");
  auto back = WriteReply::decode(m.encode());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->ts, m.ts);
  expect_rejects_mutations(m);
}

TEST(MessagesTest, ReadRequestRoundtripWithAndWithoutCert) {
  ReadRequest plain;
  plain.object = 3;
  plain.nonce = nonce(1);
  auto back = ReadRequest::decode(plain.encode());
  ASSERT_TRUE(back.has_value());
  EXPECT_FALSE(back->write_cert.has_value());

  ReadRequest with_cert = plain;
  with_cert.write_cert = write_cert();
  auto back2 = ReadRequest::decode(with_cert.encode());
  ASSERT_TRUE(back2.has_value());
  ASSERT_TRUE(back2->write_cert.has_value());
  EXPECT_EQ(*back2->write_cert, *with_cert.write_cert);
  expect_rejects_mutations(with_cert);
}

TEST(MessagesTest, ReadReplyRoundtrip) {
  ReadReply m;
  m.object = 3;
  m.value = to_bytes("stored");
  m.pcert = prep_cert();
  m.nonce = nonce(2);
  m.replica = 0;
  m.auth = to_bytes("a");
  auto back = ReadReply::decode(m.encode());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->value, m.value);
  EXPECT_EQ(back->pcert, m.pcert);
  expect_rejects_mutations(m);
}

TEST(MessagesTest, ReadTsPrepRequestRoundtrip) {
  ReadTsPrepRequest m;
  m.object = 3;
  m.hash = crypto::sha256(as_bytes_view("next"));
  m.write_cert = write_cert();
  m.nonce = nonce(4);
  m.client = 5;
  m.sig = to_bytes("cs");
  auto back = ReadTsPrepRequest::decode(m.encode());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->hash, m.hash);
  ASSERT_TRUE(back->write_cert.has_value());
  expect_rejects_mutations(m);
}

TEST(MessagesTest, ReadTsPrepReplyRoundtripBothArms) {
  ReadTsPrepReply prepared;
  prepared.object = 3;
  prepared.nonce = nonce(4);
  prepared.pcert = prep_cert();
  prepared.prepared = true;
  prepared.predicted_t = {5, 5};
  prepared.hash = crypto::sha256(as_bytes_view("next"));
  prepared.prepare_sig = to_bytes("ps");
  prepared.strong_write_sig = to_bytes("ss");
  prepared.replica = 2;
  prepared.auth = to_bytes("a");
  auto back = ReadTsPrepReply::decode(prepared.encode());
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(back->prepared);
  EXPECT_EQ(back->predicted_t, prepared.predicted_t);
  EXPECT_EQ(back->prepare_sig, prepared.prepare_sig);

  ReadTsPrepReply fallback = prepared;
  fallback.prepared = false;
  auto back2 = ReadTsPrepReply::decode(fallback.encode());
  ASSERT_TRUE(back2.has_value());
  EXPECT_FALSE(back2->prepared);
  expect_rejects_mutations(prepared);
}

TEST(MessagesTest, EnvelopeRoundtrip) {
  rpc::Envelope env;
  env.type = rpc::MsgType::kPrepare;
  env.rpc_id = 0xdeadbeef;
  env.sender = 42;
  env.body = to_bytes("body bytes");
  auto back = rpc::Envelope::decode(env.encode());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->type, env.type);
  EXPECT_EQ(back->rpc_id, env.rpc_id);
  EXPECT_EQ(back->sender, env.sender);
  EXPECT_EQ(back->body, env.body);
}

TEST(MessagesTest, EnvelopeRejectsTrailingGarbage) {
  rpc::Envelope env;
  env.type = rpc::MsgType::kRead;
  Bytes enc = env.encode();
  enc.push_back(0x00);
  EXPECT_FALSE(rpc::Envelope::decode(enc).has_value());
}

TEST(MessagesTest, RandomBytesNeverDecodeToValidEnvelope) {
  // Fuzz-lite: random buffers must be rejected or decode to something
  // harmless, never crash.
  Rng rng(2718);
  int decoded = 0;
  for (int i = 0; i < 2000; ++i) {
    const Bytes junk = rng.bytes(rng.next_below(64));
    auto env = rpc::Envelope::decode(junk);
    if (env.has_value()) ++decoded;
    // Inner decoders on junk bodies must also be safe.
    (void)PrepareRequest::decode(junk);
    (void)ReadTsReply::decode(junk);
    (void)WriteRequest::decode(junk);
    (void)ReadTsPrepReply::decode(junk);
  }
  // Statistically a few random buffers may parse as envelopes (the
  // format has no magic); the point is memory safety, not rejection.
  SUCCEED();
}

// Regression for the [[nodiscard]] sweep: get_cert decoded the embedded
// certificate from an inner Reader but dropped that reader's verdict, so
// a WRITE whose certificate blob was truncated (half-decoded cert) or
// carried trailing garbage still parsed as a well-formed message.
Bytes write_request_with_cert_blob(const Bytes& cert_blob) {
  Writer w;
  w.put_u64(7);                 // object
  w.put_bytes(to_bytes("v"));   // value
  w.put_bytes(cert_blob);       // put_cert's length-prefixed blob
  w.put_u32(4);                 // client
  w.put_bytes(to_bytes("sig"));
  return std::move(w).take();
}

TEST(MessagesTest, WriteRequestRejectsCertBlobTrailingGarbage) {
  Writer inner;
  prep_cert().encode(inner);
  Bytes blob = std::move(inner).take();
  ASSERT_TRUE(WriteRequest::decode(write_request_with_cert_blob(blob))
                  .has_value());  // control: the clean blob decodes

  Bytes tampered = blob;
  tampered.push_back(0xab);
  EXPECT_FALSE(WriteRequest::decode(write_request_with_cert_blob(tampered))
                   .has_value());
}

TEST(MessagesTest, WriteRequestRejectsTruncatedCertBlob) {
  Writer inner;
  prep_cert().encode(inner);
  Bytes blob = std::move(inner).take();
  for (std::size_t cut = 1; cut <= 4; ++cut) {
    Bytes truncated(blob.begin(),
                    blob.end() - static_cast<std::ptrdiff_t>(cut));
    EXPECT_FALSE(
        WriteRequest::decode(write_request_with_cert_blob(truncated))
            .has_value())
        << "cut " << cut;
  }
}

TEST(MessagesTest, PrepareRequestRejectsTamperedOptionalWriteCert) {
  // Same hole via the optional-wcert path: present flag + tampered blob.
  Writer inner;
  write_cert().encode(inner);
  Bytes blob = std::move(inner).take();
  blob.push_back(0xcd);

  Writer w;
  w.put_u64(7);  // object
  Timestamp{4, 2}.encode(w);
  w.put_raw(crypto::digest_view(crypto::sha256(as_bytes_view("v"))));
  Writer cert;
  prep_cert().encode(cert);
  w.put_bytes(std::move(cert).take());  // valid prepare cert
  w.put_bool(true);                     // optional write cert present...
  w.put_bytes(blob);                    // ...but its blob is tampered
  w.put_u32(4);
  w.put_bytes(to_bytes("sig"));
  EXPECT_FALSE(PrepareRequest::decode(std::move(w).take()).has_value());
}

TEST(MessagesTest, ReplyBatchRoundtrip) {
  ReplyBatch rb;
  rb.replica = 2;
  rb.replies = {to_bytes("encoded-env-1"), to_bytes("encoded-env-2")};
  rb.auth = to_bytes("mac");
  auto d = ReplyBatch::decode(rb.encode());
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->replica, 2u);
  ASSERT_EQ(d->replies.size(), 2u);
  EXPECT_EQ(to_string(d->replies[1]), "encoded-env-2");
  EXPECT_EQ(to_string(d->auth), "mac");
  // The signing payload covers the replica id and every bundled reply.
  ReplyBatch other = rb;
  other.replies[0] = to_bytes("encoded-env-X");
  EXPECT_NE(to_string(rb.signing_payload()),
            to_string(other.signing_payload()));
  other = rb;
  other.replica = 3;
  EXPECT_NE(to_string(rb.signing_payload()),
            to_string(other.signing_payload()));
}

TEST(MessagesTest, ReplyBatchRejectsTruncationAndTrailingGarbage) {
  ReplyBatch rb;
  rb.replica = 1;
  rb.replies = {to_bytes("r")};
  rb.auth = to_bytes("mac");
  Bytes wire = rb.encode();
  Bytes truncated(wire.begin(), wire.end() - 1);
  EXPECT_FALSE(ReplyBatch::decode(truncated).has_value());
  Bytes padded = wire;
  padded.push_back(0x00);
  EXPECT_FALSE(ReplyBatch::decode(padded).has_value());
}

}  // namespace
}  // namespace bftbc::core
