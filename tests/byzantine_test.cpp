// Adversarial end-to-end tests: the §3.2 attacks against live clusters,
// verified with the BFT-linearizability checker. These are the paper's
// headline safety claims:
//   - Byzantine clients cannot equivocate (one timestamp, one value)
//   - partial writes don't break atomicity for correct clients
//   - bad clients cannot exhaust the timestamp space
//   - a stopped bad client leaves <= 1 lurking write (base protocol),
//     <= 2 (optimized protocol)
//   - f Byzantine REPLICAS of several species can't break safety/liveness
#include <gtest/gtest.h>

#include "checker/bft_linearizability.h"
#include "faults/byzantine_client.h"
#include "faults/byzantine_replica.h"
#include "harness/cluster.h"
#include "harness/recording.h"

namespace bftbc {
namespace {

using checker::check_bft_linearizability;
using harness::Cluster;
using harness::ClusterOptions;
using harness::Recorder;

template <typename ByzReplica>
harness::ReplicaFactory byz_factory() {
  return [](const quorum::QuorumConfig& cfg, quorum::ReplicaId id,
            crypto::Keystore& ks, rpc::Transport& t, sim::Simulator& s,
            const core::ReplicaOptions& opts) -> std::unique_ptr<core::Replica> {
    return std::make_unique<ByzReplica>(cfg, id, ks, t, s, opts);
  };
}

// Builds an attack client on its own transport.
template <typename Attack>
std::unique_ptr<Attack> make_attacker(Cluster& cluster, quorum::ClientId id,
                                      rpc::Transport& transport) {
  return std::make_unique<Attack>(cluster.config(), id, cluster.keystore(),
                                  transport, cluster.sim(),
                                  cluster.replica_nodes(),
                                  cluster.rng().split());
}

// ------------------------------------------------------------ attack 1

TEST(ByzantineClientTest, EquivocationFailsWithCorrectReplicas) {
  Cluster cluster(ClusterOptions{});
  auto transport = cluster.make_transport(harness::client_node(66));
  auto attacker =
      make_attacker<faults::EquivocatorClient>(cluster, 66, *transport);

  std::optional<faults::EquivocatorClient::Outcome> outcome;
  attacker->attack(1, to_bytes("evil-A"), to_bytes("evil-B"),
                   [&](faults::EquivocatorClient::Outcome o) { outcome = o; });
  ASSERT_TRUE(cluster.run_until([&] { return outcome.has_value(); }));

  // Splitting 4 correct replicas 2/2-ish can never produce 2f+1 = 3
  // matching signatures for either value.
  EXPECT_FALSE(outcome->cert_v1);
  EXPECT_FALSE(outcome->cert_v2);
}

TEST(ByzantineClientTest, EquivocationWithAccompliceYieldsAtMostOneValue) {
  // Replica 0 signs anything (EquivocSignReplica). Even so, two
  // certificates for the same timestamp and different values would need
  // a CORRECT replica to double-sign — impossible. At most one value
  // can gather a certificate.
  ClusterOptions o;
  o.replica_factories[0] = byz_factory<faults::EquivocSignReplica>();
  Cluster cluster(o);
  auto transport = cluster.make_transport(harness::client_node(66));
  auto attacker =
      make_attacker<faults::EquivocatorClient>(cluster, 66, *transport);

  std::optional<faults::EquivocatorClient::Outcome> outcome;
  attacker->attack(1, to_bytes("evil-A"), to_bytes("evil-B"),
                   [&](faults::EquivocatorClient::Outcome o) { outcome = o; });
  ASSERT_TRUE(cluster.run_until([&] { return outcome.has_value(); }));

  EXPECT_FALSE(outcome->cert_v1 && outcome->cert_v2)
      << "two certificates for one timestamp = Lemma 1(3) violated";

  // Whatever was written, correct clients still see an atomic register.
  checker::History history;
  Recorder rec(cluster, history);
  auto& good = cluster.add_client(1);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(rec.read(good, 1).is_ok());
    ASSERT_TRUE(rec.write(good, 1, to_bytes("good" + std::to_string(i))).is_ok());
  }
  auto check = check_bft_linearizability(history, {66});
  EXPECT_TRUE(check.linearizable) << check.summary();
  EXPECT_TRUE(check.reads_authentic) << check.summary();
}

// ------------------------------------------------------------ attack 2

TEST(ByzantineClientTest, PartialWriteDoesNotBreakAtomicity) {
  Cluster cluster(ClusterOptions{});
  checker::History history;
  Recorder rec(cluster, history);
  auto& good = cluster.add_client(1);
  ASSERT_TRUE(rec.write(good, 1, to_bytes("initial")).is_ok());

  auto transport = cluster.make_transport(harness::client_node(66));
  auto attacker =
      make_attacker<faults::PartialWriter>(cluster, 66, *transport);
  bool prepared = false;
  bool done = false;
  attacker->attack(1, to_bytes("half-installed"), [&](bool p) {
    prepared = p;
    done = true;
  });
  ASSERT_TRUE(cluster.run_until([&] { return done; }));
  EXPECT_TRUE(prepared);

  // Readers may or may not see the partial write (it sits on one
  // replica), but every read must be atomic: monotone versions, no
  // forged values, and a read-back after write-back must stick.
  for (int i = 0; i < 6; ++i) {
    auto r = rec.read(good, 1);
    ASSERT_TRUE(r.is_ok());
    EXPECT_LE(r.value().phases, 2);
  }
  ASSERT_TRUE(rec.write(good, 1, to_bytes("after")).is_ok());
  auto r = rec.read(good, 1);
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(to_string(r.value().value), "after");

  auto check = check_bft_linearizability(history, {66});
  EXPECT_TRUE(check.linearizable) << check.summary();
  EXPECT_TRUE(check.reads_authentic) << check.summary();
}

// ------------------------------------------------------------ attack 3

TEST(ByzantineClientTest, TimestampExhaustionRefused) {
  Cluster cluster(ClusterOptions{});
  auto& good = cluster.add_client(1);
  ASSERT_TRUE(cluster.write(good, 1, to_bytes("v0")).is_ok());

  auto transport = cluster.make_transport(harness::client_node(66));
  auto attacker = make_attacker<faults::TimestampHog>(cluster, 66, *transport);
  std::optional<faults::TimestampHog::Outcome> outcome;
  attacker->attack(1, /*jump=*/1'000'000, /*attempts=*/5,
                   [&](faults::TimestampHog::Outcome o) { outcome = o; });
  ASSERT_TRUE(cluster.run_until([&] { return outcome.has_value(); }));

  EXPECT_EQ(outcome->attempts, 5u);
  EXPECT_EQ(outcome->accepted, 0u)
      << "correct replicas must drop unjustified timestamps";

  // Good client timestamps continue at +1 per write — the space is not
  // exhausted (E11's property).
  auto w = cluster.write(good, 1, to_bytes("v1"));
  ASSERT_TRUE(w.is_ok());
  EXPECT_EQ(w.value().ts.val, 2u);
}

// ------------------------------------------------------------ attack 4

TEST(ByzantineClientTest, BaseProtocolAtMostOneLurkingWrite) {
  Cluster cluster(ClusterOptions{});
  checker::History history;
  Recorder rec(cluster, history);
  auto& good = cluster.add_client(1);
  ASSERT_TRUE(rec.write(good, 1, to_bytes("pre-attack")).is_ok());
  ASSERT_TRUE(rec.read(good, 1).is_ok());

  // The bad client stockpiles as many signed-but-unperformed writes as
  // it can (goal 5), hands them to a colluder, then stops.
  auto transport = cluster.make_transport(harness::client_node(66));
  auto attacker =
      make_attacker<faults::LurkingWriteStasher>(cluster, 66, *transport);
  std::optional<faults::LurkingWriteStasher::Outcome> outcome;
  attacker->attack(1, /*goal=*/5, /*use_optlist=*/false,
                   [&](faults::LurkingWriteStasher::Outcome o) {
                     outcome = std::move(o);
                   });
  ASSERT_TRUE(cluster.run_until([&] { return outcome.has_value(); }));

  // Lemma 1 part 2: only ONE prepare certificate obtainable.
  EXPECT_EQ(outcome->stashed.size(), 1u);

  auto colluder_transport =
      cluster.make_transport(harness::client_node(67));
  faults::Colluder colluder(*colluder_transport, cluster.replica_nodes());
  for (auto& env : outcome->stashed) colluder.stash(std::move(env));

  rec.stop_client(66);

  // After the stop, the colluder unleashes the stash.
  colluder.unleash();
  cluster.settle();

  // Good client keeps operating; reads surface at most ONE write by 66.
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(rec.read(good, 1).is_ok());
    ASSERT_TRUE(
        rec.write(good, 1, to_bytes("post" + std::to_string(i))).is_ok());
  }
  ASSERT_TRUE(rec.read(good, 1).is_ok());

  auto check = check_bft_linearizability(history, {66});
  EXPECT_TRUE(check.linearizable) << check.summary();
  EXPECT_TRUE(check.reads_authentic) << check.summary();
  ASSERT_EQ(check.lurking.count(66), 1u);
  EXPECT_LE(check.lurking.at(66).count, 1) << check.summary();
}

TEST(ByzantineClientTest, OptimizedProtocolAtMostTwoLurkingWrites) {
  ClusterOptions o;
  o.optimized = true;
  Cluster cluster(o);
  checker::History history;
  Recorder rec(cluster, history);
  auto& good = cluster.add_client(1);
  ASSERT_TRUE(rec.write(good, 1, to_bytes("pre-attack")).is_ok());

  auto transport = cluster.make_transport(harness::client_node(66));
  auto attacker =
      make_attacker<faults::LurkingWriteStasher>(cluster, 66, *transport);
  std::optional<faults::LurkingWriteStasher::Outcome> outcome;
  attacker->attack(1, /*goal=*/5, /*use_optlist=*/true,
                   [&](faults::LurkingWriteStasher::Outcome o) {
                     outcome = std::move(o);
                   });
  ASSERT_TRUE(cluster.run_until([&] { return outcome.has_value(); }));

  // §6.3: one slot per list → at most two stashable writes.
  EXPECT_GE(outcome->stashed.size(), 1u);
  EXPECT_LE(outcome->stashed.size(), 2u);

  auto colluder_transport = cluster.make_transport(harness::client_node(67));
  faults::Colluder colluder(*colluder_transport, cluster.replica_nodes());
  for (auto& env : outcome->stashed) colluder.stash(std::move(env));

  rec.stop_client(66);
  colluder.unleash();
  cluster.settle();

  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(rec.read(good, 1).is_ok());
    ASSERT_TRUE(
        rec.write(good, 1, to_bytes("post" + std::to_string(i))).is_ok());
  }
  ASSERT_TRUE(rec.read(good, 1).is_ok());

  auto check = check_bft_linearizability(history, {66});
  EXPECT_TRUE(check.linearizable) << check.summary();
  EXPECT_TRUE(check.reads_authentic) << check.summary();
  ASSERT_EQ(check.lurking.count(66), 1u);
  EXPECT_LE(check.lurking.at(66).count, 2) << check.summary();
}

TEST(ByzantineClientTest, StrongVariantLurkingMaskedAfterTwoOverwrites) {
  // §7.2: with the strong protocol, a lurking write's timestamp succeeds
  // a COMMITTED write, so after two successive correct-client writes it
  // can never surface again.
  ClusterOptions o;
  o.strong = true;
  Cluster cluster(o);
  checker::History history;
  Recorder rec(cluster, history);
  auto& good = cluster.add_client(1);
  ASSERT_TRUE(rec.write(good, 1, to_bytes("pre-attack")).is_ok());

  // In strong mode the stasher needs a write certificate in its PREPARE;
  // it behaves like the base stasher but must piggyback one. Reuse the
  // base attack: its PREPARE carries no write certificate, so correct
  // replicas refuse and the stash stays EMPTY — the strong variant is
  // strictly harder to attack this way. To exercise a real §7 lurking
  // write we instead stash via the honest-prefix route: run phase 1+2
  // with a legitimate write certificate, then withhold phase 3.
  auto transport = cluster.make_transport(harness::client_node(66));
  auto attacker =
      make_attacker<faults::LurkingWriteStasher>(cluster, 66, *transport);
  std::optional<faults::LurkingWriteStasher::Outcome> outcome;
  attacker->attack(1, 5, false,
                   [&](faults::LurkingWriteStasher::Outcome o) {
                     outcome = std::move(o);
                   });
  ASSERT_TRUE(cluster.run_until([&] { return outcome.has_value(); }));
  // No write certificate in the attacker's PREPAREs → zero stash.
  EXPECT_EQ(outcome->stashed.size(), 0u);

  rec.stop_client(66);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(
        rec.write(good, 1, to_bytes("post" + std::to_string(i))).is_ok());
    ASSERT_TRUE(rec.read(good, 1).is_ok());
  }
  auto check = check_bft_linearizability(history, {66});
  EXPECT_TRUE(check.ok(/*max_b=*/0)) << check.summary();
}

TEST(ByzantineClientTest, CartelChainsPreparesInBaseProtocol) {
  // §7.2's motivating attack: colluding clients chain prepares — client
  // i+1 justifies succ(t_i) with client i's certificate, even though no
  // write ever happened. The BASE protocol admits the chain (each client
  // has its own Plist slot); the STRONG variant kills it at length 1.
  for (bool strong : {false, true}) {
    ClusterOptions o;
    o.strong = strong;
    o.seed = 31;
    Cluster cluster(o);
    auto& good = cluster.add_client(1);
    ASSERT_TRUE(cluster.write(good, 1, to_bytes("pre")).is_ok());

    quorum::PrepareCertificate justification =
        cluster.replica(0).find_object(1)->pcert();
    std::optional<quorum::WriteCertificate> wcert = good.last_write_cert(1);

    constexpr int kCartel = 3;
    std::vector<std::unique_ptr<rpc::Transport>> transports;
    std::vector<std::unique_ptr<faults::LurkingWriteStasher>> cartel;
    int chained = 0;
    for (int i = 0; i < kCartel; ++i) {
      const quorum::ClientId id = static_cast<quorum::ClientId>(60 + i);
      transports.push_back(cluster.make_transport(harness::client_node(id)));
      cartel.push_back(std::make_unique<faults::LurkingWriteStasher>(
          cluster.config(), id, cluster.keystore(), *transports.back(),
          cluster.sim(), cluster.replica_nodes(), cluster.rng().split()));
      std::optional<faults::LurkingWriteStasher::Outcome> out;
      cartel.back()->attack_chained(
          1, justification, wcert, /*goal=*/1,
          [&](faults::LurkingWriteStasher::Outcome o) { out = std::move(o); });
      ASSERT_TRUE(cluster.run_until([&] { return out.has_value(); }));
      if (out->stashed.empty()) break;
      ++chained;
      justification = out->certs.back();
      wcert = std::nullopt;  // no write certificate exists up the chain
    }

    if (strong) {
      // First colluder had a genuine write certificate, so it can stash
      // one; the second needs a certificate for a write that never
      // happened and fails.
      EXPECT_EQ(chained, 1) << "strong variant must stop the chain";
    } else {
      EXPECT_EQ(chained, kCartel) << "base protocol admits the whole chain";
    }
  }
}

// ------------------------------------------------- Byzantine replicas

struct ReplicaAttackParam {
  harness::ReplicaFactory (*factory)();
  const char* name;
};

class ByzantineReplicaTest
    : public ::testing::TestWithParam<ReplicaAttackParam> {};

TEST_P(ByzantineReplicaTest, SafetyAndLivenessWithFByzantineReplicas) {
  ClusterOptions o;
  o.seed = 1234;
  o.replica_factories[2] = GetParam().factory();
  Cluster cluster(o);

  checker::History history;
  Recorder rec(cluster, history);
  auto& a = cluster.add_client(1);
  auto& b = cluster.add_client(2);

  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(rec.write(a, 1, to_bytes("a" + std::to_string(i))).is_ok());
    auto r = rec.read(b, 1);
    ASSERT_TRUE(r.is_ok());
    ASSERT_TRUE(rec.write(b, 1, to_bytes("b" + std::to_string(i))).is_ok());
    ASSERT_TRUE(rec.read(a, 1).is_ok());
  }

  auto check = check_bft_linearizability(history, {});
  EXPECT_TRUE(check.linearizable) << GetParam().name << ": "
                                  << check.summary();
  EXPECT_TRUE(check.reads_authentic) << GetParam().name << ": "
                                     << check.summary();
}

INSTANTIATE_TEST_SUITE_P(
    Attacks, ByzantineReplicaTest,
    ::testing::Values(
        ReplicaAttackParam{&byz_factory<faults::SilentReplica>, "silent"},
        ReplicaAttackParam{&byz_factory<faults::StaleReplica>, "stale"},
        ReplicaAttackParam{&byz_factory<faults::GarbageSigReplica>,
                           "garbage_sig"},
        ReplicaAttackParam{&byz_factory<faults::EquivocSignReplica>,
                           "equivoc_sign"},
        ReplicaAttackParam{&byz_factory<faults::FlipValueReplica>,
                           "flip_value"}),
    [](const auto& info) { return std::string(info.param.name); });

TEST(ByzantineReplicaTest, TwoByzantineSpeciesWithF2) {
  ClusterOptions o;
  o.f = 2;  // n = 7, q = 5
  o.seed = 77;
  o.replica_factories[1] = byz_factory<faults::GarbageSigReplica>();
  o.replica_factories[5] = byz_factory<faults::StaleReplica>();
  Cluster cluster(o);

  checker::History history;
  Recorder rec(cluster, history);
  auto& a = cluster.add_client(1);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(rec.write(a, 1, to_bytes("v" + std::to_string(i))).is_ok());
    auto r = rec.read(a, 1);
    ASSERT_TRUE(r.is_ok());
    EXPECT_EQ(to_string(r.value().value), "v" + std::to_string(i));
  }
  auto check = check_bft_linearizability(history, {});
  EXPECT_TRUE(check.ok(0)) << check.summary();
}

// The FlipValueReplica's lie must never reach a reader's result.
TEST(ByzantineReplicaTest, FlippedValuesNeverReturned) {
  ClusterOptions o;
  o.replica_factories[0] = byz_factory<faults::FlipValueReplica>();
  Cluster cluster(o);
  auto& c = cluster.add_client(1);
  ASSERT_TRUE(cluster.write(c, 1, to_bytes("truth")).is_ok());
  for (int i = 0; i < 10; ++i) {
    auto r = cluster.read(c, 1);
    ASSERT_TRUE(r.is_ok());
    EXPECT_EQ(to_string(r.value().value), "truth");
  }
}

}  // namespace
}  // namespace bftbc
