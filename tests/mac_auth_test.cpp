// MAC-authenticator mode (paper §3.3.2).
//
// Keystore layer: pairwise session keys derive deterministically from
// the seed (independently constructed keystores agree), tags bind the
// direction and the exact bytes, authenticators are per-peer slices.
// Protocol layer: a cluster running mac_auth over real RSA keys still
// completes writes and reads, and the per-write RSA verification count
// drops below the signature-mode baseline — the point of the mode.
#include <gtest/gtest.h>

#include "crypto/signature.h"
#include "harness/cluster.h"
#include "quorum/config.h"
#include "util/bytes.h"

namespace bftbc {
namespace {

using crypto::Keystore;
using crypto::SignatureScheme;

const crypto::PrincipalId kClientP = quorum::client_principal(1);
const crypto::PrincipalId kReplicaP = quorum::replica_principal(2);

// Keystore owns a mutex (not movable): construct in place, then
// register the standard four replicas plus the client.
void register_all(Keystore& ks) {
  for (quorum::ReplicaId r = 0; r < 4; ++r) {
    (void)ks.register_principal(quorum::replica_principal(r));
  }
  (void)ks.register_principal(kClientP);
}

TEST(MacAuthTest, TagRoundTrip) {
  Keystore ks(SignatureScheme::kHmacSim, 33);
  register_all(ks);
  const Bytes msg = to_bytes("read-ts request");
  const Bytes tag =
      ks.register_principal(kClientP).mac(kReplicaP, msg).value();
  EXPECT_EQ(tag.size(), Keystore::kMacSize);
  EXPECT_TRUE(ks.mac_check(kClientP, kReplicaP, msg, tag));
}

TEST(MacAuthTest, IndependentKeystoresAgree) {
  // Two processes (daemon and bench client) construct keystores from
  // the same seed and registration order; a tag minted in one must
  // check in the other.
  Keystore a(SignatureScheme::kHmacSim, 101);
  Keystore b(SignatureScheme::kHmacSim, 101);
  register_all(a);
  register_all(b);
  const Bytes msg = to_bytes("cross-process request");
  const Bytes tag = a.register_principal(kClientP).mac(kReplicaP, msg).value();
  EXPECT_TRUE(b.mac_check(kClientP, kReplicaP, msg, tag));

  // A different seed derives a different pair key.
  Keystore c(SignatureScheme::kHmacSim, 102);
  register_all(c);
  EXPECT_FALSE(c.mac_check(kClientP, kReplicaP, msg, tag));
}

TEST(MacAuthTest, DirectionAndPairBinding) {
  Keystore ks(SignatureScheme::kHmacSim, 33);
  register_all(ks);
  const Bytes msg = to_bytes("directed message");
  const Bytes tag =
      ks.register_principal(kClientP).mac(kReplicaP, msg).value();
  // Reversed direction on the same pair: rejected.
  EXPECT_FALSE(ks.mac_check(kReplicaP, kClientP, msg, tag));
  // Same sender, different receiver: rejected.
  EXPECT_FALSE(
      ks.mac_check(kClientP, quorum::replica_principal(0), msg, tag));
}

TEST(MacAuthTest, TamperedAndTruncatedTagsRejected) {
  Keystore ks(SignatureScheme::kHmacSim, 33);
  register_all(ks);
  const Bytes msg = to_bytes("tamper me");
  Bytes tag = ks.register_principal(kClientP).mac(kReplicaP, msg).value();

  Bytes flipped = tag;
  flipped[5] ^= 0x01;
  EXPECT_FALSE(ks.mac_check(kClientP, kReplicaP, msg, flipped));

  Bytes truncated(tag.begin(), tag.end() - 1);
  EXPECT_FALSE(ks.mac_check(kClientP, kReplicaP, msg, truncated));
  EXPECT_FALSE(ks.mac_check(kClientP, kReplicaP, msg, Bytes{}));

  Bytes other_msg = to_bytes("tamper mf");
  EXPECT_FALSE(ks.mac_check(kClientP, kReplicaP, other_msg, tag));
}

TEST(MacAuthTest, AuthenticatorSlicesPerPeer) {
  Keystore ks(SignatureScheme::kHmacSim, 33);
  register_all(ks);
  const Bytes msg = to_bytes("broadcast request");
  std::vector<crypto::PrincipalId> peers;
  for (quorum::ReplicaId r = 0; r < 4; ++r) {
    peers.push_back(quorum::replica_principal(r));
  }
  Bytes auth =
      ks.register_principal(kClientP).mac_authenticator(peers, msg).value();
  ASSERT_EQ(auth.size(), peers.size() * Keystore::kMacSize);

  const BytesView view(auth);
  for (std::size_t i = 0; i < peers.size(); ++i) {
    EXPECT_TRUE(ks.mac_check(kClientP, peers[i], msg,
                             view.subspan(i * Keystore::kMacSize,
                                          Keystore::kMacSize)))
        << i;
    // A peer must not accept another peer's slice.
    const std::size_t other = (i + 1) % peers.size();
    EXPECT_FALSE(ks.mac_check(kClientP, peers[i], msg,
                              view.subspan(other * Keystore::kMacSize,
                                           Keystore::kMacSize)))
        << i;
  }

  // Corrupting one slice breaks exactly that peer's check.
  auth[Keystore::kMacSize + 3] ^= 0x80;
  const BytesView corrupted(auth);
  EXPECT_TRUE(ks.mac_check(kClientP, peers[0], msg,
                           corrupted.subspan(0, Keystore::kMacSize)));
  EXPECT_FALSE(ks.mac_check(
      kClientP, peers[1], msg,
      corrupted.subspan(Keystore::kMacSize, Keystore::kMacSize)));
}

TEST(MacAuthTest, RevokedPrincipalCannotMint) {
  Keystore ks(SignatureScheme::kHmacSim, 33);
  register_all(ks);
  crypto::Signer signer = ks.register_principal(kClientP);
  const Bytes msg = to_bytes("post-stop request");
  ks.revoke(kClientP);
  auto tag = signer.mac(kReplicaP, msg);
  EXPECT_FALSE(tag.is_ok());
  EXPECT_EQ(tag.status().code(), StatusCode::kUnavailable);
}

TEST(MacAuthTest, UnknownPrincipalsRejected) {
  Keystore ks(SignatureScheme::kHmacSim, 33);
  register_all(ks);
  const Bytes msg = to_bytes("stranger");
  EXPECT_FALSE(ks.mac_check(0xbeef, kReplicaP, msg,
                            Bytes(Keystore::kMacSize, 0)));
  EXPECT_FALSE(ks.mac_check(kClientP, 0xbeef, msg,
                            Bytes(Keystore::kMacSize, 0)));
}

// ---- full protocol over MAC mode -----------------------------------

TEST(MacAuthProtocolTest, WritesAndReadsCompleteUnderMacMode) {
  harness::ClusterOptions o;
  o.seed = 7;
  o.mac_auth = true;
  harness::Cluster cluster(o);
  auto& c = cluster.add_client(1);
  for (int i = 0; i < 4; ++i) {
    auto w = cluster.write(c, 1, to_bytes("mv" + std::to_string(i)));
    ASSERT_TRUE(w.is_ok()) << i;
  }
  auto r = cluster.read(c, 1);
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(to_string(r.value().value), "mv3");

  cluster.snapshot_metrics();
  const Counters& ctr = cluster.keystore().counters();
  EXPECT_GT(ctr.get("mac_sign"), 0u);
  EXPECT_GT(ctr.get("mac_verify"), 0u);
}

TEST(MacAuthProtocolTest, MacModeWorksInEveryProtocolMode) {
  for (const bool optimized : {false, true}) {
    for (const bool strong : {false, true}) {
      if (strong && !optimized) continue;
      harness::ClusterOptions o;
      o.seed = 13;
      o.optimized = optimized;
      o.strong = strong;
      o.mac_auth = true;
      harness::Cluster cluster(o);
      auto& c = cluster.add_client(2);
      auto w = cluster.write(c, 1, to_bytes("value"));
      ASSERT_TRUE(w.is_ok()) << optimized << strong;
      auto r = cluster.read(c, 1);
      ASSERT_TRUE(r.is_ok()) << optimized << strong;
      EXPECT_EQ(to_string(r.value().value), "value");
    }
  }
}

TEST(MacAuthProtocolTest, MacModeCutsRsaVerificationsPerWrite) {
  // The acceptance bar for the mode: strictly fewer real RSA checks per
  // write than the signature-mode baseline (6.71/write on this
  // workload), because requests and replies stop costing signature
  // verifications.
  auto verifies_per_write = [](bool mac_auth) {
    harness::ClusterOptions o;
    o.seed = 77;
    o.scheme = SignatureScheme::kRsa;
    o.rsa_bits = 512;
    o.mac_auth = mac_auth;
    harness::Cluster cluster(o);
    auto& c = cluster.add_client(1);
    (void)cluster.write(c, 1, to_bytes("warmup"));
    cluster.keystore().reset_counters();
    constexpr int kWrites = 10;
    for (int i = 0; i < kWrites; ++i) {
      auto w = cluster.write(c, 1, to_bytes("v" + std::to_string(i)));
      EXPECT_TRUE(w.is_ok()) << i;
    }
    return static_cast<double>(
               cluster.keystore().counters().get("sig_verify_calls")) /
           kWrites;
  };
  const double sig_mode = verifies_per_write(false);
  const double mac_mode = verifies_per_write(true);
  EXPECT_LT(mac_mode, sig_mode);
  EXPECT_LT(mac_mode, 6.71);
}

}  // namespace
}  // namespace bftbc
