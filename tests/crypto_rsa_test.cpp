#include "crypto/rsa.h"

#include <gtest/gtest.h>

namespace bftbc::crypto {
namespace {

class RsaTest : public ::testing::Test {
 protected:
  // 512-bit keys keep keygen fast in tests; production uses 1024+.
  static RsaKeyPair& key() {
    static RsaKeyPair kp = [] {
      Rng rng(12345);
      return rsa_generate(rng, 512);
    }();
    return kp;
  }
};

TEST_F(RsaTest, SignVerifyRoundtrip) {
  const Bytes msg = to_bytes("prepare-reply ts=7 hash=abc");
  const Bytes sig = rsa_sign(key().priv, msg);
  EXPECT_EQ(sig.size(), key().pub.modulus_bytes());
  EXPECT_TRUE(rsa_verify(key().pub, msg, sig));
}

TEST_F(RsaTest, VerifyRejectsTamperedMessage) {
  const Bytes sig = rsa_sign(key().priv, to_bytes("value A"));
  EXPECT_FALSE(rsa_verify(key().pub, to_bytes("value B"), sig));
}

TEST_F(RsaTest, VerifyRejectsTamperedSignature) {
  const Bytes msg = to_bytes("hello");
  Bytes sig = rsa_sign(key().priv, msg);
  sig[sig.size() / 2] ^= 0x01;
  EXPECT_FALSE(rsa_verify(key().pub, msg, sig));
}

TEST_F(RsaTest, VerifyRejectsWrongLengthSignature) {
  const Bytes msg = to_bytes("hello");
  Bytes sig = rsa_sign(key().priv, msg);
  sig.pop_back();
  EXPECT_FALSE(rsa_verify(key().pub, msg, sig));
  sig.push_back(0);
  sig.push_back(0);
  EXPECT_FALSE(rsa_verify(key().pub, msg, sig));
}

TEST_F(RsaTest, VerifyRejectsSignatureGEModulus) {
  const Bytes msg = to_bytes("hello");
  const Bytes n_bytes = key().pub.n.to_bytes_padded(key().pub.modulus_bytes());
  EXPECT_FALSE(rsa_verify(key().pub, msg, n_bytes));
}

TEST_F(RsaTest, SignaturesFromDifferentKeysDontCross) {
  Rng rng(54321);
  const RsaKeyPair other = rsa_generate(rng, 512);
  const Bytes msg = to_bytes("certificate statement");
  const Bytes sig = rsa_sign(key().priv, msg);
  EXPECT_FALSE(rsa_verify(other.pub, msg, sig));
}

TEST_F(RsaTest, DeterministicSignature) {
  // PKCS#1 v1.5 is deterministic: same key+message → same signature.
  const Bytes msg = to_bytes("idempotent");
  EXPECT_EQ(rsa_sign(key().priv, msg), rsa_sign(key().priv, msg));
}

TEST_F(RsaTest, PublicKeyEncodeDecodeRoundtrip) {
  const Bytes enc = key().pub.encode();
  auto decoded = RsaPublicKey::decode(enc);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->n, key().pub.n);
  EXPECT_EQ(decoded->e, key().pub.e);
}

TEST_F(RsaTest, PublicKeyDecodeRejectsGarbage) {
  EXPECT_FALSE(RsaPublicKey::decode(to_bytes("not a key")).has_value());
  EXPECT_FALSE(RsaPublicKey::decode(Bytes{}).has_value());
}

TEST_F(RsaTest, KeygenEnforcesMinimumSize) {
  Rng rng(777);
  // Request far too small; generator must round up so EMSA fits.
  const RsaKeyPair kp = rsa_generate(rng, 128);
  const Bytes msg = to_bytes("x");
  const Bytes sig = rsa_sign(kp.priv, msg);
  EXPECT_TRUE(rsa_verify(kp.pub, msg, sig));
}

TEST_F(RsaTest, EmptyMessageSigns) {
  const Bytes sig = rsa_sign(key().priv, Bytes{});
  EXPECT_TRUE(rsa_verify(key().pub, Bytes{}, sig));
}

TEST_F(RsaTest, CrtMatchesPlainModExp) {
  // The CRT fast path must produce the identical signature to the naive
  // s = m^d mod n computation.
  const Bytes msg = to_bytes("crt consistency check");
  const Bytes crt_sig = rsa_sign(key().priv, msg);

  // Recompute without CRT: the signature is m_enc^d mod n where m_enc is
  // recoverable by verifying: s^e mod n must equal the EMSA encoding.
  const BigInt s = BigInt::from_bytes(crt_sig);
  const BigInt m = BigInt::mod_exp(s, key().priv.e, key().priv.n);
  const BigInt s_plain = BigInt::mod_exp(m, key().priv.d, key().priv.n);
  EXPECT_EQ(s_plain, s);
}

TEST_F(RsaTest, KeyComponentsConsistent) {
  const auto& k = key().priv;
  EXPECT_EQ(k.p * k.q, k.n);
  // e*d ≡ 1 mod (p-1)(q-1)
  const BigInt phi = (k.p - BigInt(1)) * (k.q - BigInt(1));
  EXPECT_TRUE(((k.e * k.d) % phi).is_one());
  // CRT exponents and inverse.
  EXPECT_EQ(k.dp, k.d % (k.p - BigInt(1)));
  EXPECT_EQ(k.dq, k.d % (k.q - BigInt(1)));
  EXPECT_TRUE(((k.qinv * k.q) % k.p).is_one());
}

TEST_F(RsaTest, DistinctSeedsDistinctKeys) {
  Rng a(1), b(2);
  const RsaKeyPair ka = rsa_generate(a, 512);
  const RsaKeyPair kb = rsa_generate(b, 512);
  EXPECT_NE(ka.pub.n, kb.pub.n);
}

}  // namespace
}  // namespace bftbc::crypto
