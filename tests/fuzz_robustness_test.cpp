// Deterministic mutation fuzzing: take valid protocol messages, apply
// random byte mutations, and feed them to a live replica and client.
// Nothing may crash, and no mutated message may ever be ACCEPTED as
// valid (drop counters / quorum counts prove rejection).
#include <gtest/gtest.h>

#include <string_view>
#include <vector>

#include "bftbc/replica.h"
#include "harness/cluster.h"
#include "quorum/statements.h"
#include "util/flags.h"

namespace bftbc {

// --seed override: 0 means "run the built-in seed table". Set in main()
// before InitGoogleTest materializes the parameter generators.
std::uint64_t g_seed_override = 0;

namespace {

using harness::Cluster;
using harness::ClusterOptions;

Bytes mutate(Bytes b, Rng& rng) {
  if (b.empty()) return b;
  const int kind = static_cast<int>(rng.next_below(4));
  switch (kind) {
    case 0: {  // flip a random byte
      b[rng.next_below(b.size())] ^=
          static_cast<std::uint8_t>(1 + rng.next_below(255));
      break;
    }
    case 1: {  // truncate
      b.resize(rng.next_below(b.size()));
      break;
    }
    case 2: {  // append garbage
      const std::size_t extra = 1 + rng.next_below(16);
      for (std::size_t i = 0; i < extra; ++i)
        b.push_back(static_cast<std::uint8_t>(rng.next_u64()));
      break;
    }
    default: {  // splice two regions
      if (b.size() > 4) {
        const std::size_t i = rng.next_below(b.size() - 2);
        const std::size_t j = rng.next_below(b.size() - 2);
        std::swap(b[i], b[j]);
        std::swap(b[i + 1], b[j + 1]);
      }
      break;
    }
  }
  return b;
}

class FuzzRobustnessTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzRobustnessTest, MutatedClientTrafficNeverAccepted) {
  SCOPED_TRACE(::testing::Message()
               << "reproduce with: --seed " << GetParam());
  ClusterOptions o;
  o.seed = GetParam();
  o.optimized = true;
  Cluster cluster(o);
  Rng rng(GetParam() * 31 + 7);

  // Produce a pool of VALID request bodies by running one real write
  // and capturing what a correct client sends.
  auto& good = cluster.add_client(1);
  ASSERT_TRUE(cluster.write(good, 1, to_bytes("seed-value")).is_ok());

  // Craft valid-looking messages (a signed prepare and a signed write)
  // from a second, real client, then mutate and replay them.
  auto signer = cluster.keystore().register_principal(2);
  const Bytes value = to_bytes("fuzz-value");
  core::PrepareRequest prep;
  prep.object = 1;
  prep.t = {2, 2};
  prep.hash = crypto::sha256(value);
  prep.prep_cert = cluster.replica(0).find_object(1)->pcert();
  prep.client = 2;
  prep.sig = signer.sign(prep.signing_payload()).value();

  core::WriteRequest wreq;
  wreq.object = 1;
  wreq.value = value;
  wreq.prep_cert = prep.prep_cert;  // mismatched on purpose sometimes
  wreq.client = 2;
  wreq.sig = signer.sign(wreq.signing_payload()).value();

  const Bytes prep_body = prep.encode();
  const Bytes write_body = wreq.encode();

  auto transport = cluster.make_transport(harness::client_node(66));
  std::uint64_t before_overwrites = 0;
  for (quorum::ReplicaId r = 0; r < cluster.config().n; ++r) {
    before_overwrites += cluster.replica(r).metrics().get("state_overwritten");
  }

  for (int i = 0; i < 400; ++i) {
    rpc::Envelope env;
    env.rpc_id = 1000 + static_cast<std::uint64_t>(i);
    env.sender = 2;
    if (rng.next_bool(0.5)) {
      env.type = rpc::MsgType::kPrepare;
      env.body = mutate(prep_body, rng);
    } else {
      env.type = rpc::MsgType::kWrite;
      env.body = mutate(write_body, rng);
    }
    // Occasionally mutate the envelope itself after encoding.
    if (rng.next_bool(0.2)) {
      Bytes raw = mutate(env.encode(), rng);
      cluster.net().send(harness::client_node(66), rng.next_below(4), raw);
    } else {
      transport->send(static_cast<sim::NodeId>(rng.next_below(4)), env);
    }
    if (i % 50 == 0) cluster.settle();
  }
  cluster.settle();

  // No mutated WRITE may have changed replica state: the only value the
  // register can hold is still the good client's.
  for (quorum::ReplicaId r = 0; r < cluster.config().n; ++r) {
    const auto* st = cluster.replica(r).find_object(1);
    ASSERT_NE(st, nullptr);
    EXPECT_EQ(to_string(st->data()), "seed-value") << "replica " << r;
  }

  // And the system still works for good clients afterwards.
  ASSERT_TRUE(cluster.write(good, 1, to_bytes("after-fuzz")).is_ok());
  auto read = cluster.read(good, 1);
  ASSERT_TRUE(read.is_ok());
  EXPECT_EQ(to_string(read.value().value), "after-fuzz");
}

TEST_P(FuzzRobustnessTest, MutatedReplicaRepliesNeverAccepted) {
  SCOPED_TRACE(::testing::Message()
               << "reproduce with: --seed " << GetParam());
  // A man-in-the-middle mutates replica replies in flight (via the
  // corruption knob at 30%); the client must reject every damaged reply
  // and still finish (retransmissions reach it intact eventually).
  ClusterOptions o;
  o.seed = GetParam() ^ 0xf00d;
  o.link.corrupt_probability = 0.3;
  Cluster cluster(o);
  auto& c = cluster.add_client(1);
  for (int i = 0; i < 5; ++i) {
    auto w = cluster.write(c, 1, to_bytes("v" + std::to_string(i)));
    ASSERT_TRUE(w.is_ok()) << i;
  }
  auto r = cluster.read(c, 1);
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(to_string(r.value().value), "v4");
}

std::vector<std::uint64_t> fuzz_seeds() {
  if (g_seed_override != 0) return {g_seed_override};
  return {1, 2, 3, 4, 5};
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzRobustnessTest,
                         ::testing::ValuesIn(fuzz_seeds()));

// --- Pinned regressions --------------------------------------------------
//
// Promoted from fuzz findings: mutation classes that once slipped past
// validation, now swept exhaustively (no randomness) so the exact bug
// shape stays covered forever.

// get_cert in bftbc/messages.cpp used to drop the inner Reader verdict,
// so a message whose embedded certificate blob was truncated (or carried
// trailing garbage) still decoded "successfully" — the random truncate
// mutator only probes a handful of cut points per run, so the fix is
// pinned here with EVERY prefix of a valid signed write, plus a trailing
// garbage sweep. None may change replica state.
TEST(FuzzPinnedRegressionTest, TruncatedOrPaddedWriteBodiesNeverAccepted) {
  ClusterOptions o;
  o.seed = 0xdecafbad;
  Cluster cluster(o);
  auto& good = cluster.add_client(1);
  ASSERT_TRUE(cluster.write(good, 1, to_bytes("seed-value")).is_ok());

  // A fully valid signed write from a second real client — the bytes a
  // replica WOULD accept if delivered intact: a quorum-signed prepare
  // certificate for the successor timestamp, and a client signature
  // under the registered principal.
  cluster.add_client(2);  // authorizes client 2 at every replica
  auto signer =
      cluster.keystore().register_principal(quorum::client_principal(2));
  const Bytes value = to_bytes("pinned-value");
  const quorum::Timestamp ts{2, 2};
  const crypto::Digest h = crypto::sha256(value);
  quorum::SignatureSet prep_sigs;
  const Bytes stmt = quorum::prepare_reply_statement(1, ts, h);
  for (quorum::ReplicaId r = 0; r < cluster.config().q; ++r) {
    auto rs = cluster.keystore().register_principal(
        quorum::replica_principal(r));
    prep_sigs[r] = rs.sign(stmt).value();
  }
  core::WriteRequest wreq;
  wreq.object = 1;
  wreq.value = value;
  wreq.prep_cert = core::PrepareCertificate(1, ts, h, std::move(prep_sigs));
  wreq.client = 2;
  wreq.sig = signer.sign(wreq.signing_payload()).value();
  const Bytes body = wreq.encode();

  auto transport = cluster.make_transport(harness::client_node(66));
  std::uint64_t rpc_id = 5000;
  auto send = [&](Bytes mutated) {
    rpc::Envelope env;
    env.rpc_id = ++rpc_id;
    env.sender = 2;
    env.type = rpc::MsgType::kWrite;
    env.body = std::move(mutated);
    transport->send(static_cast<sim::NodeId>(rpc_id % 4), env);
  };

  // Every strict prefix, and 1..16 bytes of trailing garbage.
  for (std::size_t len = 0; len < body.size(); ++len) {
    send(Bytes(body.begin(), body.begin() + static_cast<long>(len)));
    if (rpc_id % 64 == 0) cluster.settle();
  }
  for (std::size_t extra = 1; extra <= 16; ++extra) {
    Bytes padded = body;
    for (std::size_t i = 0; i < extra; ++i)
      padded.push_back(static_cast<std::uint8_t>(0xa5 ^ i));
    send(std::move(padded));
  }
  cluster.settle();

  for (quorum::ReplicaId r = 0; r < cluster.config().n; ++r) {
    const auto* st = cluster.replica(r).find_object(1);
    ASSERT_NE(st, nullptr);
    EXPECT_EQ(to_string(st->data()), "seed-value") << "replica " << r;
  }

  // The intact original must still be acceptable — proof the sweep was
  // rejecting the mutations, not the message.
  send(body);
  cluster.settle();
  int accepted = 0;
  for (quorum::ReplicaId r = 0; r < cluster.config().n; ++r) {
    if (to_string(cluster.replica(r).find_object(1)->data()) == "pinned-value")
      ++accepted;
  }
  EXPECT_GT(accepted, 0);
}

}  // namespace
}  // namespace bftbc

// Custom main: gtest materializes parameterized suites inside
// InitGoogleTest, so --seed must be pulled out of argv FIRST; the
// remaining (gtest) flags are then handed to gtest untouched.
int main(int argc, char** argv) {
  std::vector<char*> ours{argv[0]};
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    if (arg.rfind("--seed", 0) == 0) {
      ours.push_back(argv[i]);
      if (arg == "--seed" && i + 1 < argc) ours.push_back(argv[++i]);
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;

  bftbc::FlagSet flags;
  auto& seed =
      flags.add_u64("seed", 0, "run only this fuzz seed (0 = full table)");
  int ours_argc = static_cast<int>(ours.size());
  flags.parse(ours_argc, ours.data());
  bftbc::g_seed_override = *seed;

  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
