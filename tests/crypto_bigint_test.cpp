#include "crypto/bigint.h"

#include <gtest/gtest.h>

#include "crypto/prime.h"

namespace bftbc::crypto {
namespace {

TEST(BigIntTest, ZeroProperties) {
  BigInt z;
  EXPECT_TRUE(z.is_zero());
  EXPECT_FALSE(z.is_odd());
  EXPECT_EQ(z.bit_length(), 0u);
  EXPECT_EQ(z.to_u64(), 0u);
  EXPECT_EQ(z.to_hex(), "0");
}

TEST(BigIntTest, U64Roundtrip) {
  for (std::uint64_t v : {0ULL, 1ULL, 255ULL, 0x100000000ULL,
                          0xffffffffffffffffULL, 0xdeadbeefcafebabeULL}) {
    EXPECT_EQ(BigInt(v).to_u64(), v);
  }
}

TEST(BigIntTest, HexRoundtrip) {
  const std::string h = "1fffffffffffffffffffffffffffffffffffffffcafebabe";
  EXPECT_EQ(BigInt::from_hex(h).to_hex(), h);
}

TEST(BigIntTest, BytesRoundtrip) {
  Rng rng(7);
  for (int i = 0; i < 50; ++i) {
    const Bytes b = rng.bytes(1 + static_cast<std::size_t>(rng.next_below(64)));
    BigInt x = BigInt::from_bytes(b);
    // Leading zeros are not preserved; compare via re-import.
    EXPECT_EQ(BigInt::from_bytes(x.to_bytes()), x);
  }
}

TEST(BigIntTest, PaddedExport) {
  BigInt x(0xabcd);
  Bytes padded = x.to_bytes_padded(8);
  ASSERT_EQ(padded.size(), 8u);
  EXPECT_EQ(padded[6], 0xab);
  EXPECT_EQ(padded[7], 0xcd);
  EXPECT_EQ(padded[0], 0);
}

TEST(BigIntTest, Comparison) {
  EXPECT_LT(BigInt(1), BigInt(2));
  EXPECT_GT(BigInt(0x100000000ULL), BigInt(0xffffffffULL));
  EXPECT_EQ(BigInt(42), BigInt(42));
  EXPECT_LE(BigInt(), BigInt(0));
}

TEST(BigIntTest, AddSubInverse) {
  Rng rng(11);
  for (int i = 0; i < 100; ++i) {
    BigInt a = BigInt::random_with_bits(rng, 1 + rng.next_below(256));
    BigInt b = BigInt::random_with_bits(rng, 1 + rng.next_below(256));
    BigInt sum = a + b;
    EXPECT_EQ(sum - b, a);
    EXPECT_EQ(sum - a, b);
  }
}

TEST(BigIntTest, MulAgainstU64) {
  EXPECT_EQ((BigInt(0xffffffffULL) * BigInt(0xffffffffULL)).to_hex(),
            "fffffffe00000001");
  EXPECT_EQ((BigInt(0) * BigInt(12345)).is_zero(), true);
  EXPECT_EQ((BigInt(1) * BigInt(12345)).to_u64(), 12345u);
}

TEST(BigIntTest, MulCommutesAndDistributes) {
  Rng rng(13);
  for (int i = 0; i < 50; ++i) {
    BigInt a = BigInt::random_with_bits(rng, 1 + rng.next_below(200));
    BigInt b = BigInt::random_with_bits(rng, 1 + rng.next_below(200));
    BigInt c = BigInt::random_with_bits(rng, 1 + rng.next_below(200));
    EXPECT_EQ(a * b, b * a);
    EXPECT_EQ(a * (b + c), a * b + a * c);
  }
}

TEST(BigIntTest, Shifts) {
  BigInt one(1);
  EXPECT_EQ(one.shifted_left(100).bit_length(), 101u);
  EXPECT_EQ(one.shifted_left(100).shifted_right(100), one);
  EXPECT_TRUE(one.shifted_right(1).is_zero());
  BigInt x = BigInt::from_hex("123456789abcdef0");
  EXPECT_EQ(x.shifted_left(4).to_hex(), "123456789abcdef00");
  EXPECT_EQ(x.shifted_right(4).to_hex(), "123456789abcdef");
}

TEST(BigIntTest, DivModIdentity) {
  Rng rng(17);
  for (int i = 0; i < 200; ++i) {
    BigInt a = BigInt::random_with_bits(rng, 1 + rng.next_below(512));
    BigInt b = BigInt::random_with_bits(rng, 1 + rng.next_below(300));
    auto [q, r] = BigInt::divmod(a, b);
    EXPECT_EQ(q * b + r, a);
    EXPECT_LT(r, b);
  }
}

TEST(BigIntTest, DivModKnuthD6CornerCases) {
  // Cases engineered to hit the "add back" (D6) step: divisor with
  // top limb 0x80000000 and dividend just below a multiple.
  BigInt b = BigInt::from_hex("8000000000000000000000000001");
  BigInt a = b * BigInt::from_hex("ffffffffffffffff") - BigInt(1);
  auto [q, r] = BigInt::divmod(a, b);
  EXPECT_EQ(q * b + r, a);
  EXPECT_LT(r, b);
}

TEST(BigIntTest, DivBySingleLimb) {
  BigInt a = BigInt::from_hex("ffffffffffffffffffffffffffffffff");
  auto [q, r] = BigInt::divmod(a, BigInt(10));
  EXPECT_EQ(q * BigInt(10) + r, a);
  EXPECT_LT(r.to_u64(), 10u);
}

TEST(BigIntTest, DivSmallerThanDivisor) {
  auto [q, r] = BigInt::divmod(BigInt(5), BigInt(7));
  EXPECT_TRUE(q.is_zero());
  EXPECT_EQ(r.to_u64(), 5u);
}

TEST(BigIntTest, ModExpSmallNumbers) {
  // 3^7 mod 50 = 2187 mod 50 = 37
  EXPECT_EQ(BigInt::mod_exp(BigInt(3), BigInt(7), BigInt(50)).to_u64(), 37u);
  // Fermat: a^(p-1) = 1 mod p for prime p
  EXPECT_EQ(BigInt::mod_exp(BigInt(12345), BigInt(1000003 - 1),
                            BigInt(1000003))
                .to_u64(),
            1u);
}

TEST(BigIntTest, ModExpZeroExponent) {
  EXPECT_EQ(BigInt::mod_exp(BigInt(9), BigInt(0), BigInt(7)).to_u64(), 1u);
}

TEST(BigIntTest, GcdBasics) {
  EXPECT_EQ(BigInt::gcd(BigInt(12), BigInt(18)).to_u64(), 6u);
  EXPECT_EQ(BigInt::gcd(BigInt(17), BigInt(13)).to_u64(), 1u);
  EXPECT_EQ(BigInt::gcd(BigInt(0), BigInt(5)).to_u64(), 5u);
}

TEST(BigIntTest, ModInverse) {
  Rng rng(23);
  const BigInt m = generate_prime(rng, 128);
  for (int i = 0; i < 20; ++i) {
    BigInt a = BigInt::random_below(rng, m);
    if (a.is_zero()) continue;
    BigInt inv = BigInt::mod_inverse(a, m);
    ASSERT_FALSE(inv.is_zero());
    EXPECT_TRUE(((a * inv) % m).is_one());
  }
}

TEST(BigIntTest, ModInverseNonCoprimeFails) {
  EXPECT_TRUE(BigInt::mod_inverse(BigInt(6), BigInt(9)).is_zero());
}

TEST(BigIntTest, RandomWithBitsExactLength) {
  Rng rng(31);
  for (std::size_t bits : {1u, 31u, 32u, 33u, 64u, 100u, 512u}) {
    for (int i = 0; i < 5; ++i) {
      EXPECT_EQ(BigInt::random_with_bits(rng, bits).bit_length(), bits);
    }
  }
}

TEST(BigIntTest, RandomBelowIsBelow) {
  Rng rng(37);
  const BigInt bound = BigInt::from_hex("10000000000000001");
  for (int i = 0; i < 50; ++i) {
    EXPECT_LT(BigInt::random_below(rng, bound), bound);
  }
}

TEST(PrimeTest, KnownPrimes) {
  Rng rng(41);
  for (std::uint64_t p : {2ULL, 3ULL, 5ULL, 257ULL, 65537ULL, 1000003ULL,
                          2147483647ULL /* M31 */}) {
    EXPECT_TRUE(is_probable_prime(BigInt(p), rng)) << p;
  }
}

TEST(PrimeTest, KnownComposites) {
  Rng rng(43);
  for (std::uint64_t c : {1ULL, 4ULL, 561ULL /* Carmichael */, 65536ULL,
                          1000001ULL, 4294967297ULL /* F5 = 641*6700417 */}) {
    EXPECT_FALSE(is_probable_prime(BigInt(c), rng)) << c;
  }
}

TEST(PrimeTest, GeneratedPrimeHasRequestedBits) {
  Rng rng(47);
  BigInt p = generate_prime(rng, 96);
  EXPECT_EQ(p.bit_length(), 96u);
  EXPECT_TRUE(p.is_odd());
  EXPECT_TRUE(is_probable_prime(p, rng));
}

TEST(PrimeTest, DeterministicForSeed) {
  Rng a(99), b(99);
  EXPECT_EQ(generate_prime(a, 64), generate_prime(b, 64));
}

}  // namespace
}  // namespace bftbc::crypto
