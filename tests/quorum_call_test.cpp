// Direct tests of rpc::QuorumCall — the retransmission/collection
// primitive every protocol phase in the repo is built on.
#include <gtest/gtest.h>

#include "rpc/quorum_call.h"

namespace bftbc::rpc {
namespace {

class QuorumCallTest : public ::testing::Test {
 protected:
  QuorumCallTest()
      : net_(sim_, Rng(4), [] { sim::LinkConfig c; c.base_delay = 100; c.jitter_mean = 0; return c; }()),
        transport_(net_, 99) {
    // Four fake replicas recording what they receive.
    for (sim::NodeId n = 0; n < 4; ++n) {
      net_.register_node(n, [this, n](sim::NodeId, const EncodedMessage& payload) {
        auto env = Envelope::decode(payload.view());
        if (env.has_value()) received_[n].push_back(*env);
      });
    }
  }

  Envelope request(std::uint64_t rpc_id = 7) {
    Envelope env;
    env.type = MsgType::kReadTs;
    env.rpc_id = rpc_id;
    env.sender = 1;
    env.body = to_bytes("req");
    return env;
  }

  Envelope reply_env(std::uint64_t rpc_id, const std::string& body) {
    Envelope env;
    env.type = MsgType::kReadTsReply;
    env.rpc_id = rpc_id;
    env.sender = 1000;
    env.body = to_bytes(body);
    return env;
  }

  sim::Simulator sim_;
  sim::Network net_;
  SimTransport transport_;
  std::map<sim::NodeId, std::vector<Envelope>> received_;
};

TEST_F(QuorumCallTest, SendsToAllTargetsImmediately) {
  bool complete = false;
  QuorumCall call(
      sim_, transport_, {0, 1, 2, 3}, 3, request(),
      [](std::uint32_t, const Envelope&) { return true; },
      [&] { complete = true; });
  sim_.run_until(200);
  for (sim::NodeId n = 0; n < 4; ++n) {
    EXPECT_EQ(received_[n].size(), 1u) << "node " << n;
  }
  EXPECT_FALSE(complete);
}

TEST_F(QuorumCallTest, CompletesAtQuorumOfValidReplies) {
  bool complete = false;
  QuorumCall call(
      sim_, transport_, {0, 1, 2, 3}, 3, request(),
      [](std::uint32_t, const Envelope&) { return true; },
      [&] { complete = true; });
  EXPECT_TRUE(call.on_reply(0, reply_env(7, "a")));
  EXPECT_FALSE(complete);
  EXPECT_TRUE(call.on_reply(1, reply_env(7, "b")));
  EXPECT_FALSE(complete);
  EXPECT_TRUE(call.on_reply(2, reply_env(7, "c")));
  EXPECT_TRUE(complete);
  EXPECT_TRUE(call.complete());
  EXPECT_EQ(call.accepted_count(), 3u);
}

TEST_F(QuorumCallTest, WrongRpcIdNotOurs) {
  QuorumCall call(
      sim_, transport_, {0, 1, 2, 3}, 3, request(7),
      [](std::uint32_t, const Envelope&) { return true; }, [] {});
  EXPECT_FALSE(call.on_reply(0, reply_env(8, "other")));
  EXPECT_EQ(call.accepted_count(), 0u);
}

TEST_F(QuorumCallTest, UnknownSenderIgnored) {
  QuorumCall call(
      sim_, transport_, {0, 1, 2}, 2, request(),
      [](std::uint32_t, const Envelope&) { return true; }, [] {});
  EXPECT_FALSE(call.on_reply(55, reply_env(7, "imposter")));
  EXPECT_EQ(call.accepted_count(), 0u);
}

TEST_F(QuorumCallTest, DuplicateRepliesCountOnce) {
  bool complete = false;
  QuorumCall call(
      sim_, transport_, {0, 1, 2, 3}, 3, request(),
      [](std::uint32_t, const Envelope&) { return true; },
      [&] { complete = true; });
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(call.on_reply(0, reply_env(7, "dup")));
  }
  EXPECT_EQ(call.accepted_count(), 1u);
  EXPECT_FALSE(complete);
}

TEST_F(QuorumCallTest, RejectedRepliesDontCount) {
  int validator_calls = 0;
  QuorumCall call(
      sim_, transport_, {0, 1, 2, 3}, 2, request(),
      [&](std::uint32_t idx, const Envelope&) {
        ++validator_calls;
        return idx != 0;  // replica 0's replies always rejected
      },
      [] {});
  EXPECT_TRUE(call.on_reply(0, reply_env(7, "bad")));
  EXPECT_EQ(call.accepted_count(), 0u);
  // A rejected replica may try again (it was not marked accepted)...
  EXPECT_TRUE(call.on_reply(0, reply_env(7, "bad2")));
  EXPECT_EQ(validator_calls, 2);
  // ...and valid replicas complete the call.
  EXPECT_TRUE(call.on_reply(1, reply_env(7, "ok")));
  EXPECT_TRUE(call.on_reply(2, reply_env(7, "ok")));
  EXPECT_TRUE(call.complete());
}

TEST_F(QuorumCallTest, RetransmitsOnlyToSilentReplicas) {
  QuorumCallOptions opts;
  opts.retransmit_period = 1000;
  QuorumCall call(
      sim_, transport_, {0, 1, 2, 3}, 3, request(),
      [](std::uint32_t, const Envelope&) { return true; }, [] {}, nullptr,
      opts);
  sim_.run_until(150);
  // Replica 0 answers; 1-3 stay silent.
  call.on_reply(0, reply_env(7, "a"));
  sim_.run_until(2500);  // two retransmission periods
  EXPECT_EQ(received_[0].size(), 1u);   // no retransmit to the responder
  EXPECT_EQ(received_[1].size(), 3u);   // initial + 2 retransmits
  EXPECT_EQ(call.sends(), 3u);
}

TEST_F(QuorumCallTest, StopsRetransmittingWhenComplete) {
  QuorumCallOptions opts;
  opts.retransmit_period = 1000;
  QuorumCall call(
      sim_, transport_, {0, 1, 2, 3}, 2, request(),
      [](std::uint32_t, const Envelope&) { return true; }, [] {}, nullptr,
      opts);
  sim_.run_until(150);
  call.on_reply(0, reply_env(7, "a"));
  call.on_reply(1, reply_env(7, "b"));
  ASSERT_TRUE(call.complete());
  sim_.run_until(10'000);
  for (sim::NodeId n = 0; n < 4; ++n) {
    EXPECT_EQ(received_[n].size(), 1u) << "node " << n;
  }
}

TEST_F(QuorumCallTest, DeadlineFiresTimeoutOnce) {
  QuorumCallOptions opts;
  opts.deadline = 5000;
  opts.retransmit_period = 1000;
  int timeouts = 0;
  bool complete = false;
  QuorumCall call(
      sim_, transport_, {0, 1, 2, 3}, 3, request(),
      [](std::uint32_t, const Envelope&) { return true; },
      [&] { complete = true; }, [&] { ++timeouts; }, opts);
  call.on_reply(0, reply_env(7, "only-one"));
  sim_.run_until(20'000);
  EXPECT_EQ(timeouts, 1);
  EXPECT_FALSE(complete);
  // Late replies after timeout are absorbed without completing.
  EXPECT_TRUE(call.on_reply(1, reply_env(7, "late")));
  EXPECT_TRUE(call.on_reply(2, reply_env(7, "late")));
  EXPECT_FALSE(complete);
}

TEST_F(QuorumCallTest, FiredTimerIdsAreZeroed) {
  QuorumCallOptions opts;
  opts.deadline = 5000;
  opts.retransmit_period = 1000;
  QuorumCall call(
      sim_, transport_, {0, 1, 2, 3}, 3, request(),
      [](std::uint32_t, const Envelope&) { return true; }, [] {}, [] {}, opts);
  EXPECT_NE(call.retransmit_timer_id(), 0u);
  EXPECT_NE(call.deadline_timer_id(), 0u);
  sim_.run_until(20'000);  // deadline fires, retransmissions stop
  // Both ids are stale now (deadline fired, retransmit cancelled by the
  // timeout path) and must be zeroed: a live timer wheel may hand the
  // same id to an unrelated timer, and ~QuorumCall cancels whatever ids
  // it still holds (pre-fix, both stayed nonzero here).
  EXPECT_EQ(call.retransmit_timer_id(), 0u);
  EXPECT_EQ(call.deadline_timer_id(), 0u);
}

TEST_F(QuorumCallTest, CompletionZeroesTimerIds) {
  QuorumCallOptions opts;
  opts.deadline = 5000;
  QuorumCall call(
      sim_, transport_, {0, 1}, 2, request(),
      [](std::uint32_t, const Envelope&) { return true; }, [] {}, [] {}, opts);
  call.on_reply(0, reply_env(7, "a"));
  call.on_reply(1, reply_env(7, "b"));
  ASSERT_TRUE(call.complete());
  EXPECT_EQ(call.retransmit_timer_id(), 0u);
  EXPECT_EQ(call.deadline_timer_id(), 0u);
}

TEST_F(QuorumCallTest, LateRepliesAfterTimeoutAreSignalled) {
  QuorumCallOptions opts;
  opts.deadline = 5000;
  opts.retransmit_period = 1000;
  bool complete = false;
  QuorumCall call(
      sim_, transport_, {0, 1, 2, 3}, 3, request(),
      [](std::uint32_t, const Envelope&) { return true; },
      [&] { complete = true; }, [] {}, opts);
  std::vector<std::uint32_t> late;
  call.set_late_reply_handler(
      [&](std::uint32_t idx, const Envelope&) { late.push_back(idx); });

  call.on_reply(0, reply_env(7, "in-time"));
  sim_.run_until(20'000);  // deadline fires with only one reply in

  // Post-timeout replies reach the fallback signal (pre-fix they were
  // silently consumed) without completing the call; the pre-timeout
  // responder's duplicate does not re-signal.
  EXPECT_TRUE(call.on_reply(1, reply_env(7, "late")));
  EXPECT_TRUE(call.on_reply(2, reply_env(7, "late")));
  EXPECT_TRUE(call.on_reply(0, reply_env(7, "dup")));
  EXPECT_FALSE(complete);
  ASSERT_EQ(late.size(), 2u);
  EXPECT_EQ(late[0], 1u);
  EXPECT_EQ(late[1], 2u);
}

TEST_F(QuorumCallTest, LateReplyHandlerNotInvokedAfterCompletion) {
  QuorumCall call(
      sim_, transport_, {0, 1, 2}, 2, request(),
      [](std::uint32_t, const Envelope&) { return true; }, [] {});
  int late = 0;
  call.set_late_reply_handler([&](std::uint32_t, const Envelope&) { ++late; });
  call.on_reply(0, reply_env(7, "a"));
  call.on_reply(1, reply_env(7, "b"));
  ASSERT_TRUE(call.complete());
  // A quorum overshoot is normal protocol traffic, not a late straggler.
  EXPECT_TRUE(call.on_reply(2, reply_env(7, "overshoot")));
  EXPECT_EQ(late, 0);
}

TEST_F(QuorumCallTest, NoTimeoutWhenCompletedFirst) {
  QuorumCallOptions opts;
  opts.deadline = 5000;
  int timeouts = 0;
  QuorumCall call(
      sim_, transport_, {0, 1}, 2, request(),
      [](std::uint32_t, const Envelope&) { return true; }, [] {},
      [&] { ++timeouts; }, opts);
  call.on_reply(0, reply_env(7, "a"));
  call.on_reply(1, reply_env(7, "b"));
  sim_.run_until(20'000);
  EXPECT_EQ(timeouts, 0);
}

TEST_F(QuorumCallTest, DestructionCancelsTimers) {
  {
    QuorumCallOptions opts;
    opts.retransmit_period = 1000;
    opts.deadline = 5000;
    QuorumCall call(
        sim_, transport_, {0, 1, 2, 3}, 3, request(),
        [](std::uint32_t, const Envelope&) { return true; }, [] {},
        [] { FAIL() << "timeout after destruction"; }, opts);
  }
  sim_.run_until(20'000);  // must not fire the destroyed call's timers
  for (sim::NodeId n = 0; n < 4; ++n) {
    EXPECT_EQ(received_[n].size(), 1u);
  }
}

// Encode-once accounting: one QuorumCall fan-out serializes the request
// exactly once and ships the shared buffer to every target — N sends,
// N × wire-size bytes, one encode_calls tick.
TEST_F(QuorumCallTest, EncodeOnceFanOutAccounting) {
  const Envelope req = request();
  const std::size_t wire_size = req.encode().size();
  QuorumCall call(
      sim_, transport_, {0, 1, 2, 3}, 3, req,
      [](std::uint32_t, const Envelope&) { return true; }, [] {});
  sim_.run_until(200);
  EXPECT_EQ(net_.counters().get("msgs_sent"), 4u);
  EXPECT_EQ(net_.counters().get("encode_calls"), 1u);
  EXPECT_EQ(net_.counters().get("bytes_sent"), 4u * wire_size);
}

TEST_F(QuorumCallTest, InitialFanoutRestrictsFirstTransmit) {
  QuorumCallOptions opts;
  opts.initial_fanout = 3;
  QuorumCall call(
      sim_, transport_, {0, 1, 2, 3}, 3, request(),  // rpc_id 7 % 4 = 3
      [](std::uint32_t, const Envelope&) { return true; }, [] {}, nullptr,
      opts);
  sim_.run_until(200);
  // Rotation starts at rpc_id % n = 3: replicas 3, 0, 1 are contacted,
  // replica 2 is spared.
  EXPECT_EQ(received_[3].size(), 1u);
  EXPECT_EQ(received_[0].size(), 1u);
  EXPECT_EQ(received_[1].size(), 1u);
  EXPECT_EQ(received_[2].size(), 0u);
  EXPECT_EQ(net_.counters().get("msgs_sent"), 3u);
}

TEST_F(QuorumCallTest, RetransmitExpandsPastInitialFanout) {
  QuorumCallOptions opts;
  opts.initial_fanout = 3;
  opts.retransmit_period = 1000;
  QuorumCall call(
      sim_, transport_, {0, 1, 2, 3}, 3, request(),
      [](std::uint32_t, const Envelope&) { return true; }, [] {}, nullptr,
      opts);
  sim_.run_until(150);
  ASSERT_EQ(received_[2].size(), 0u);  // spared on the first transmit
  // Two preferred replicas answer, one stays silent: the retransmit goes
  // to every not-yet-accepted replica, reaching the spared one too.
  call.on_reply(3, reply_env(7, "a"));
  call.on_reply(0, reply_env(7, "b"));
  sim_.run_until(1500);
  EXPECT_EQ(received_[2].size(), 1u);  // now contacted
  EXPECT_EQ(received_[1].size(), 2u);  // initial + retransmit
  EXPECT_EQ(received_[3].size(), 1u);  // responders are not re-contacted
  EXPECT_EQ(received_[0].size(), 1u);
}

TEST_F(QuorumCallTest, AcceptedBitmapTracksRepliers) {
  QuorumCall call(
      sim_, transport_, {0, 1, 2, 3}, 3, request(),
      [](std::uint32_t, const Envelope&) { return true; }, [] {});
  call.on_reply(2, reply_env(7, "x"));
  call.on_reply(0, reply_env(7, "y"));
  EXPECT_TRUE(call.accepted()[0]);
  EXPECT_FALSE(call.accepted()[1]);
  EXPECT_TRUE(call.accepted()[2]);
  EXPECT_FALSE(call.accepted()[3]);
}

TEST_F(QuorumCallTest, PartitionDuringCallThenHealRetransmitResumes) {
  // Partition the caller from every replica BEFORE the call starts, so
  // the initial burst and every retransmission during the window is
  // dropped; after healing, the periodic retransmission must get the
  // request through without any external prodding.
  for (sim::NodeId n = 0; n < 4; ++n) net_.partition(99, n);

  bool complete = false;
  QuorumCall call(
      sim_, transport_, {0, 1, 2, 3}, 3, request(),
      [](std::uint32_t, const Envelope&) { return true; },
      [&] { complete = true; });

  // Three retransmit periods under partition: nothing arrives.
  sim_.run_until(3 * 20 * sim::kMillisecond);
  for (sim::NodeId n = 0; n < 4; ++n) {
    EXPECT_TRUE(received_[n].empty()) << "node " << n;
  }
  EXPECT_FALSE(complete);

  for (sim::NodeId n = 0; n < 4; ++n) net_.heal(99, n);

  // One more period after the heal: the retransmission goes through.
  sim_.run_until(5 * 20 * sim::kMillisecond);
  for (sim::NodeId n = 0; n < 4; ++n) {
    EXPECT_FALSE(received_[n].empty()) << "node " << n;
  }

  EXPECT_TRUE(call.on_reply(0, reply_env(7, "a")));
  EXPECT_TRUE(call.on_reply(1, reply_env(7, "b")));
  EXPECT_TRUE(call.on_reply(2, reply_env(7, "c")));
  EXPECT_TRUE(complete);
}

TEST_F(QuorumCallTest, MidFlightPartitionOnlyBlocksTheWindow) {
  // The initial burst is already in flight when the partition lands:
  // whether those first deliveries survive is a delivery-time question,
  // but after set+clear the call must still reach every target and
  // complete — a transient partition never wedges a QuorumCall.
  bool complete = false;
  QuorumCall call(
      sim_, transport_, {0, 1, 2, 3}, 3, request(),
      [](std::uint32_t, const Envelope&) { return true; },
      [&] { complete = true; });
  for (sim::NodeId n = 0; n < 4; ++n) net_.partition(99, n);
  sim_.run_until(2 * 20 * sim::kMillisecond);
  for (sim::NodeId n = 0; n < 4; ++n) net_.heal(99, n);
  sim_.run_until(4 * 20 * sim::kMillisecond);
  for (sim::NodeId n = 0; n < 4; ++n) {
    EXPECT_FALSE(received_[n].empty()) << "node " << n;
  }
  EXPECT_TRUE(call.on_reply(0, reply_env(7, "a")));
  EXPECT_TRUE(call.on_reply(1, reply_env(7, "b")));
  EXPECT_TRUE(call.on_reply(2, reply_env(7, "c")));
  EXPECT_TRUE(complete);
}

}  // namespace
}  // namespace bftbc::rpc
