// Tier-1 coverage for the sharding subsystem: the static shard map's
// pinned assignments, the routing client (stability, cross-shard
// pipelining, partitioned-shard progress), the per-replica memory
// discipline it pairs with (LRU eviction + reload, supersession GC),
// the checker's history splitter, the multi-shard cluster-config format,
// and MetricsRegistry::claim_unique.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "checker/bft_linearizability.h"
#include "checker/history.h"
#include "harness/cluster.h"
#include "harness/sharded_cluster.h"
#include "metrics/registry.h"
#include "net/cluster_config.h"
#include "shard/shard_map.h"

namespace bftbc {
namespace {

// ------------------------------------------------------------------
// ShardMap

TEST(ShardMapTest, PinnedAssignments) {
  // Frozen expectations: the assignment is deployment state (it decides
  // which group owns which object), so a change to mix64 or the
  // reduction is a breaking change and must trip a test, not slip by.
  const shard::ShardMap two(2);
  const std::vector<std::uint32_t> expect2 = {1, 0, 1, 0, 0, 0, 1, 0, 0, 0};
  const shard::ShardMap four(4);
  const std::vector<std::uint32_t> expect4 = {1, 2, 1, 2, 2, 0, 3, 2, 0, 2};
  for (quorum::ObjectId id = 1; id <= 10; ++id) {
    EXPECT_EQ(two.shard_of(id), expect2[id - 1]) << "object " << id;
    EXPECT_EQ(four.shard_of(id), expect4[id - 1]) << "object " << id;
  }
}

TEST(ShardMapTest, SingleShardRoutesEverythingToZero) {
  const shard::ShardMap one(1);
  for (quorum::ObjectId id = 0; id < 100; ++id) {
    EXPECT_EQ(one.shard_of(id), 0u);
  }
  // Degenerate construction clamps to one shard rather than dividing by
  // zero.
  EXPECT_EQ(shard::ShardMap(0).shards(), 1u);
}

TEST(ShardMapTest, AssignmentsCoverAllShardsEvenly) {
  const shard::ShardMap map(4);
  std::vector<int> hits(4, 0);
  for (quorum::ObjectId id = 1; id <= 4000; ++id) ++hits[map.shard_of(id)];
  for (int h : hits) {
    EXPECT_GT(h, 800);  // ~1000 each; splitmix64 spreads sequential ids
    EXPECT_LT(h, 1200);
  }
}

TEST(ShardMapTest, ShardKeySeedsAreDistinctAndShardZeroIsBase) {
  EXPECT_EQ(shard::shard_key_seed(42, 0), 42u);
  std::set<std::uint64_t> seeds;
  for (std::uint32_t s = 0; s < 16; ++s) {
    seeds.insert(shard::shard_key_seed(42, s));
  }
  EXPECT_EQ(seeds.size(), 16u);
}

// ------------------------------------------------------------------
// RoutingClient through the sharded harness

TEST(RoutingClientTest, WritesLandOnlyOnTheOwningGroup) {
  harness::ShardedCluster cluster;
  auto& c = cluster.add_client(1);
  for (quorum::ObjectId id = 1; id <= 6; ++id) {
    ASSERT_TRUE(cluster.write(c, id, to_bytes("v" + std::to_string(id)))
                    .is_ok());
  }
  for (quorum::ObjectId id = 1; id <= 6; ++id) {
    const std::uint32_t home = cluster.shard_of(id);
    const std::uint32_t other = 1 - home;
    EXPECT_NE(cluster.replica(home, 0).find_object(id), nullptr)
        << "object " << id << " missing from its home shard";
    EXPECT_EQ(cluster.replica(other, 0).find_object(id), nullptr)
        << "object " << id << " leaked to the other shard";
    auto r = cluster.read(c, id);
    ASSERT_TRUE(r.is_ok());
    EXPECT_EQ(r.value().value, to_bytes("v" + std::to_string(id)));
  }
}

TEST(RoutingClientTest, CrossShardWindowPipelinesAndQueues) {
  harness::ShardedClusterOptions o;
  o.optimized = true;
  o.routing.max_inflight_total = 2;
  harness::ShardedCluster cluster(o);
  core::ClientOptions copts;
  copts.max_inflight = 4;
  auto& c = cluster.add_client(1, copts, o.routing);

  // Objects 1 and 3 live on shard 1, objects 2 and 4 on shard 0 (pinned
  // above): the submissions alternate groups, so the window genuinely
  // spans shards.
  int completed = 0;
  int failed = 0;
  for (int i = 0; i < 8; ++i) {
    c.submit_write(static_cast<quorum::ObjectId>(1 + (i % 4)),
                   to_bytes("p" + std::to_string(i)),
                   [&completed, &failed](Result<core::Client::WriteResult> r) {
                     ++completed;
                     if (!r.is_ok()) ++failed;
                   });
  }
  // More submissions than the window: the router must be holding a
  // backlog right now, with exactly the window's worth dispatched.
  EXPECT_EQ(c.inflight_total(), 2u);
  EXPECT_EQ(c.queued_writes(), 6u);
  EXPECT_TRUE(cluster.run_until([&completed] { return completed == 8; }));
  EXPECT_EQ(failed, 0);
  EXPECT_EQ(c.metrics().get("writes"), 8u);
  EXPECT_EQ(c.metrics().get("inflight_peak"), 2u);
  EXPECT_GE(c.metrics().get("queued_writes"), 6u);
  EXPECT_EQ(c.inflight_total(), 0u);
  EXPECT_EQ(c.queued_writes(), 0u);
}

TEST(RoutingClientTest, PartitionedShardStallsOnlyItsOwnObjects) {
  harness::ShardedCluster cluster;
  auto& c = cluster.add_client(1);
  // Seed both groups before the cut.
  ASSERT_TRUE(cluster.write(c, 1, to_bytes("one")).is_ok());   // shard 1
  ASSERT_TRUE(cluster.write(c, 2, to_bytes("two")).is_ok());   // shard 0

  cluster.partition_shard(1);
  bool stalled_done = false;
  c.write(1, to_bytes("stalled"),
          [&stalled_done](Result<core::Client::WriteResult>) {
            stalled_done = true;
          });
  // Progress on the healthy group while shard 1 is unreachable.
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(cluster.write(c, 2, to_bytes("w" + std::to_string(i)))
                    .is_ok());
    EXPECT_FALSE(stalled_done);
  }
  auto healthy_read = cluster.read(c, 2);
  ASSERT_TRUE(healthy_read.is_ok());
  EXPECT_EQ(healthy_read.value().value, to_bytes("w2"));

  // Healing lets the stalled op finish via retransmission.
  cluster.heal_shard(1);
  EXPECT_TRUE(cluster.run_until([&stalled_done] { return stalled_done; }));
  auto healed_read = cluster.read(c, 1);
  ASSERT_TRUE(healed_read.is_ok());
  EXPECT_EQ(healed_read.value().value, to_bytes("stalled"));
}

// ------------------------------------------------------------------
// Memory discipline: eviction + reload, supersession GC

TEST(EvictionTest, EvictedObjectReReadRoundTrips) {
  harness::ClusterOptions o;
  o.replica.max_resident_objects = 4;
  harness::Cluster cluster(o);
  auto& c = cluster.add_client(1);
  for (quorum::ObjectId id = 1; id <= 12; ++id) {
    ASSERT_TRUE(cluster.write(c, id, to_bytes("v" + std::to_string(id)))
                    .is_ok());
  }
  std::uint64_t evicted = 0;
  for (quorum::ReplicaId r = 0; r < cluster.config().n; ++r) {
    EXPECT_LE(cluster.replica(r).resident_objects(), 4u);
    evicted += cluster.replica(r).metrics().get("objects_evicted");
  }
  EXPECT_GT(evicted, 0u);

  // Object 1 is long cold: the read must reload it from the serialized
  // store and return the exact value written.
  auto r = cluster.read(c, 1);
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value().value, to_bytes("v1"));
  std::uint64_t reloaded = 0;
  for (quorum::ReplicaId rep = 0; rep < cluster.config().n; ++rep) {
    reloaded += cluster.replica(rep).metrics().get("objects_reloaded");
  }
  EXPECT_GT(reloaded, 0u);

  // And the reloaded object keeps working for new writes.
  ASSERT_TRUE(cluster.write(c, 1, to_bytes("fresh")).is_ok());
  auto again = cluster.read(c, 1);
  ASSERT_TRUE(again.is_ok());
  EXPECT_EQ(again.value().value, to_bytes("fresh"));
}

TEST(GcTest, SupersededWriteCertificatesReclaimLists) {
  harness::Cluster cluster;
  auto& c = cluster.add_client(1);
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(cluster.write(c, 1, to_bytes("v" + std::to_string(i)))
                    .is_ok());
  }
  std::uint64_t reclaimed = 0;
  for (quorum::ReplicaId r = 0; r < cluster.config().n; ++r) {
    reclaimed += cluster.replica(r).metrics().get("gc_reclaimed");
  }
  // Each committed write supersedes the previous prepare-list entry at
  // every replica that held one.
  EXPECT_GT(reclaimed, 0u);
}

// ------------------------------------------------------------------
// History splitter

TEST(SplitHistoryTest, PartitionsOpsAndCopiesStopsEverywhere) {
  checker::History h;
  for (int i = 0; i < 8; ++i) {
    const auto object = static_cast<checker::ObjectId>(1 + (i % 4));
    const auto t = static_cast<sim::Time>(10 * i);
    const std::size_t tok = h.begin_write(1, object, t, to_bytes("v"));
    h.end_write(tok, t + 5, quorum::Timestamp{static_cast<std::uint64_t>(
                                                  1 + i / 4),
                                              1});
  }
  h.record_stop(66, 35);

  const auto parts = checker::split_history(
      h, 2, [](checker::ObjectId object) { return object % 2; });
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts[0].completed_count() + parts[1].completed_count(),
            h.completed_count());
  for (const auto& part : parts) {
    ASSERT_EQ(part.stops().size(), 1u);
    EXPECT_EQ(part.stops()[0].client, 66u);
  }
  for (const auto& op : parts[0].operations()) EXPECT_EQ(op.object % 2, 0u);
  for (const auto& op : parts[1].operations()) EXPECT_EQ(op.object % 2, 1u);
  // Each part is a complete verifiable history in its own right.
  for (const auto& part : parts) {
    const auto check = checker::check_bft_linearizability(part, {66});
    EXPECT_TRUE(check.ok(1)) << check.summary();
  }
}

TEST(SplitHistoryTest, ZeroPartsDegeneratesToOne) {
  checker::History h;
  const std::size_t tok = h.begin_write(1, 7, 0, to_bytes("x"));
  h.end_write(tok, 1, quorum::Timestamp{1, 1});
  const auto parts =
      checker::split_history(h, 0, [](checker::ObjectId) { return 0u; });
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0].completed_count(), 1u);
}

// ------------------------------------------------------------------
// ClusterConfig "shards" format

constexpr const char* kTwoShardJson = R"({
  "f": 1,
  "mode": "optimized",
  "key_seed": 42,
  "shards": [
    {"replicas": [
      {"host": "127.0.0.1", "port": 5600},
      {"host": "127.0.0.1", "port": 5601},
      {"host": "127.0.0.1", "port": 5602},
      {"host": "127.0.0.1", "port": 5603}
    ]},
    {"replicas": [
      {"host": "127.0.0.1", "port": 5610},
      {"host": "127.0.0.1", "port": 5611},
      {"host": "127.0.0.1", "port": 5612},
      {"host": "127.0.0.1", "port": 5613}
    ]}
  ]
})";

TEST(ClusterConfigShardsTest, ParsesShardGroups) {
  auto parsed = net::ClusterConfig::parse(kTwoShardJson);
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().message();
  const net::ClusterConfig& cfg = parsed.value();
  EXPECT_EQ(cfg.shard_count(), 2u);
  ASSERT_EQ(cfg.shard_groups.size(), 2u);
  EXPECT_EQ(cfg.shard_groups[1][3].port, 5613);
  // The legacy alias keeps pointing at shard 0.
  ASSERT_EQ(cfg.replicas.size(), 4u);
  EXPECT_EQ(cfg.replicas[0].port, 5600);
  // Per-shard seeds: shard 0 is the base, others derive via
  // shard_key_seed — same function the sim harness and bftbcd use.
  EXPECT_EQ(cfg.shard_seed(0), 42u);
  EXPECT_EQ(cfg.shard_seed(1), shard::shard_key_seed(42, 1));
  EXPECT_NE(cfg.shard_seed(1), cfg.shard_seed(0));
}

TEST(ClusterConfigShardsTest, PerShardEndpointTables) {
  auto parsed = net::ClusterConfig::parse(kTwoShardJson);
  ASSERT_TRUE(parsed.is_ok());
  auto shard1 = net::replica_endpoints(parsed.value(), 1);
  ASSERT_TRUE(shard1.is_ok());
  EXPECT_EQ(shard1.value().at(0).to_string(), "127.0.0.1:5610");
  // Legacy spelling == shard 0.
  auto legacy = net::replica_endpoints(parsed.value());
  ASSERT_TRUE(legacy.is_ok());
  EXPECT_EQ(legacy.value().at(0).to_string(), "127.0.0.1:5600");
  EXPECT_FALSE(net::replica_endpoints(parsed.value(), 2).is_ok());
}

TEST(ClusterConfigShardsTest, ReplicasAndShardsAreMutuallyExclusive) {
  const std::string both = R"({
    "f": 1,
    "replicas": [{"host": "127.0.0.1", "port": 1}, {"host": "127.0.0.1",
      "port": 2}, {"host": "127.0.0.1", "port": 3}, {"host": "127.0.0.1",
      "port": 4}],
    "shards": [{"replicas": [{"host": "127.0.0.1", "port": 1},
      {"host": "127.0.0.1", "port": 2}, {"host": "127.0.0.1", "port": 3},
      {"host": "127.0.0.1", "port": 4}]}]
  })";
  EXPECT_FALSE(net::ClusterConfig::parse(both).is_ok());
}

TEST(ClusterConfigShardsTest, RejectsMalformedShardGroups) {
  // Empty shards array.
  EXPECT_FALSE(net::ClusterConfig::parse(R"({"f": 1, "shards": []})")
                   .is_ok());
  // A group with the wrong replica count (needs 3f+1 = 4).
  const std::string short_group = R"({
    "f": 1,
    "shards": [{"replicas": [{"host": "127.0.0.1", "port": 1},
      {"host": "127.0.0.1", "port": 2}, {"host": "127.0.0.1", "port": 3}]}]
  })";
  EXPECT_FALSE(net::ClusterConfig::parse(short_group).is_ok());
  // A group entry that is not an object.
  EXPECT_FALSE(net::ClusterConfig::parse(R"({"f": 1, "shards": [42]})")
                   .is_ok());
  // A group entry with no replicas array.
  EXPECT_FALSE(net::ClusterConfig::parse(R"({"f": 1, "shards": [{}]})")
                   .is_ok());
}

// ------------------------------------------------------------------
// MetricsRegistry::claim_unique

TEST(ClaimUniqueTest, DisambiguatesDuplicateClaims) {
  metrics::MetricsRegistry reg;
  EXPECT_EQ(reg.claim_unique("client.write.total_ms"),
            "client.write.total_ms");
  EXPECT_EQ(reg.claim_unique("client.write.total_ms"),
            "client.write.total_ms#2");
  EXPECT_EQ(reg.claim_unique("client.write.total_ms"),
            "client.write.total_ms#3");
  // The disambiguated names resolve to distinct summaries: two routers
  // on one registry never silently merge their latency populations.
  reg.summary("client.write.total_ms").add(1.0);
  reg.summary("client.write.total_ms#2").add(100.0);
  EXPECT_EQ(reg.summary("client.write.total_ms").snapshot().count, 1u);
  EXPECT_EQ(reg.summary("client.write.total_ms#2").snapshot().count, 1u);
}

TEST(ClaimUniqueTest, ShardedClusterClientsGetDistinctSummaries) {
  harness::ShardedCluster cluster;
  auto& c1 = cluster.add_client(1);
  auto& c2 = cluster.add_client(2);
  ASSERT_TRUE(cluster.write(c1, 1, to_bytes("a")).is_ok());
  ASSERT_TRUE(cluster.write(c2, 2, to_bytes("b")).is_ok());
  auto& reg = cluster.metrics_registry();
  // First router owns the base names, second got "#2" — one op each.
  EXPECT_EQ(reg.summary("client.write.total_ms").snapshot().count, 1u);
  EXPECT_EQ(reg.summary("client.write.total_ms#2").snapshot().count, 1u);
}

}  // namespace
}  // namespace bftbc
