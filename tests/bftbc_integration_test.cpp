// End-to-end tests of the BFT-BC protocol over the simulated network:
// happy paths, phase counts, crash faults, lossy links, and the
// base/optimized/strong mode matrix.
#include <gtest/gtest.h>

#include "harness/cluster.h"

namespace bftbc {
namespace {

using harness::Cluster;
using harness::ClusterOptions;

struct ModeParam {
  bool optimized;
  bool strong;
  const char* name;
};

class BftBcModeTest : public ::testing::TestWithParam<ModeParam> {
 protected:
  ClusterOptions base_options(std::uint32_t f = 1, std::uint64_t seed = 1) {
    ClusterOptions o;
    o.f = f;
    o.seed = seed;
    o.optimized = GetParam().optimized;
    o.strong = GetParam().strong;
    return o;
  }
};

TEST_P(BftBcModeTest, SingleWriteRead) {
  Cluster cluster(base_options());
  auto& writer = cluster.add_client(1);
  auto& reader = cluster.add_client(2);

  auto w = cluster.write(writer, /*object=*/7, to_bytes("hello"));
  ASSERT_TRUE(w.is_ok()) << w.status().to_string();
  EXPECT_EQ(w.value().ts.id, 1u);
  EXPECT_EQ(w.value().ts.val, 1u);

  auto r = cluster.read(reader, 7);
  ASSERT_TRUE(r.is_ok()) << r.status().to_string();
  EXPECT_EQ(to_string(r.value().value), "hello");
  EXPECT_EQ(r.value().ts, w.value().ts);
}

TEST_P(BftBcModeTest, ReadOfUnwrittenObjectReturnsGenesis) {
  Cluster cluster(base_options());
  auto& reader = cluster.add_client(1);
  auto r = cluster.read(reader, 42);
  ASSERT_TRUE(r.is_ok());
  EXPECT_TRUE(r.value().value.empty());
  EXPECT_TRUE(r.value().ts.is_zero());
  EXPECT_EQ(r.value().phases, 1);
}

TEST_P(BftBcModeTest, SequentialWritesMonotoneTimestamps) {
  Cluster cluster(base_options());
  auto& writer = cluster.add_client(1);
  quorum::Timestamp prev;
  for (int i = 0; i < 10; ++i) {
    auto w = cluster.write(writer, 1, to_bytes("v" + std::to_string(i)));
    ASSERT_TRUE(w.is_ok()) << "write " << i << ": " << w.status().to_string();
    EXPECT_GT(w.value().ts, prev);
    prev = w.value().ts;
  }
  // Sequential same-client writes bump val by exactly 1 each time: the
  // timestamp space grows linearly with completed writes (E11's claim).
  EXPECT_EQ(prev.val, 10u);

  auto& reader = cluster.add_client(2);
  auto r = cluster.read(reader, 1);
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(to_string(r.value().value), "v9");
}

TEST_P(BftBcModeTest, InterleavedWritersSeeEachOther) {
  Cluster cluster(base_options());
  auto& a = cluster.add_client(1);
  auto& b = cluster.add_client(2);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(cluster.write(a, 1, to_bytes("a" + std::to_string(i))).is_ok());
    ASSERT_TRUE(cluster.write(b, 1, to_bytes("b" + std::to_string(i))).is_ok());
  }
  auto r = cluster.read(a, 1);
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(to_string(r.value().value), "b4");
  // Each of the 10 writes advanced val by one.
  EXPECT_EQ(r.value().ts.val, 10u);
  EXPECT_EQ(r.value().ts.id, 2u);
}

TEST_P(BftBcModeTest, MultipleObjectsAreIndependent) {
  Cluster cluster(base_options());
  auto& c = cluster.add_client(1);
  ASSERT_TRUE(cluster.write(c, 1, to_bytes("one")).is_ok());
  ASSERT_TRUE(cluster.write(c, 2, to_bytes("two")).is_ok());
  ASSERT_TRUE(cluster.write(c, 1, to_bytes("one-b")).is_ok());

  auto r1 = cluster.read(c, 1);
  auto r2 = cluster.read(c, 2);
  ASSERT_TRUE(r1.is_ok());
  ASSERT_TRUE(r2.is_ok());
  EXPECT_EQ(to_string(r1.value().value), "one-b");
  EXPECT_EQ(to_string(r2.value().value), "two");
  EXPECT_EQ(r1.value().ts.val, 2u);
  EXPECT_EQ(r2.value().ts.val, 1u);
}

TEST_P(BftBcModeTest, SurvivesFCrashedReplicas) {
  for (std::uint32_t f : {1u, 2u}) {
    Cluster cluster(base_options(f, /*seed=*/f));
    // Crash f replicas before any traffic.
    for (std::uint32_t i = 0; i < f; ++i) cluster.crash_replica(i);
    auto& writer = cluster.add_client(1);
    auto& reader = cluster.add_client(2);

    auto w = cluster.write(writer, 1, to_bytes("fault-tolerant"));
    ASSERT_TRUE(w.is_ok()) << "f=" << f;
    auto r = cluster.read(reader, 1);
    ASSERT_TRUE(r.is_ok()) << "f=" << f;
    EXPECT_EQ(to_string(r.value().value), "fault-tolerant");
  }
}

TEST_P(BftBcModeTest, SurvivesLossyDuplicatingNetwork) {
  ClusterOptions o = base_options(1, /*seed=*/99);
  o.link.loss_probability = 0.2;
  o.link.duplicate_probability = 0.1;
  o.link.corrupt_probability = 0.02;
  Cluster cluster(o);
  auto& writer = cluster.add_client(1);
  auto& reader = cluster.add_client(2);

  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(
        cluster.write(writer, 1, to_bytes("w" + std::to_string(i))).is_ok());
  }
  auto r = cluster.read(reader, 1);
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(to_string(r.value().value), "w4");
}

TEST_P(BftBcModeTest, CrashMidStreamThenRecover) {
  Cluster cluster(base_options(1, 7));
  auto& writer = cluster.add_client(1);
  ASSERT_TRUE(cluster.write(writer, 1, to_bytes("before")).is_ok());

  cluster.crash_replica(3);
  ASSERT_TRUE(cluster.write(writer, 1, to_bytes("during")).is_ok());

  cluster.recover_replica(3);
  ASSERT_TRUE(cluster.write(writer, 1, to_bytes("after")).is_ok());

  auto r = cluster.read(cluster.add_client(2), 1);
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(to_string(r.value().value), "after");
}

TEST_P(BftBcModeTest, UncontendedReadIsOnePhase) {
  Cluster cluster(base_options());
  auto& c = cluster.add_client(1);
  ASSERT_TRUE(cluster.write(c, 1, to_bytes("x")).is_ok());
  auto r = cluster.read(c, 1);
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value().phases, 1);
}

TEST_P(BftBcModeTest, ReadAfterPartialWriteBackfills) {
  // Crash one replica during a write so it misses the value; after
  // recovery, a read must still return the newest value (via the quorum)
  // and a subsequent read stays one-phase once write-back propagated it.
  Cluster cluster(base_options(1, 21));
  auto& writer = cluster.add_client(1);
  cluster.crash_replica(0);
  ASSERT_TRUE(cluster.write(writer, 1, to_bytes("v")).is_ok());
  cluster.recover_replica(0);

  auto& reader = cluster.add_client(2);
  auto r1 = cluster.read(reader, 1);
  ASSERT_TRUE(r1.is_ok());
  EXPECT_EQ(to_string(r1.value().value), "v");
  // Replica 0 answers with the genesis cert → mixed answers → 2 phases.
  EXPECT_EQ(r1.value().phases, 2);
}

INSTANTIATE_TEST_SUITE_P(
    Modes, BftBcModeTest,
    ::testing::Values(ModeParam{false, false, "base"},
                      ModeParam{true, false, "optimized"},
                      ModeParam{false, true, "strong"},
                      ModeParam{true, true, "strong_optimized"}),
    [](const auto& info) { return std::string(info.param.name); });

// ---------------------------------------------------------------- phases

TEST(BftBcPhaseTest, BaseWriteTakesThreePhases) {
  Cluster cluster(ClusterOptions{});
  auto& c = cluster.add_client(1);
  for (int i = 0; i < 3; ++i) {
    auto w = cluster.write(c, 1, to_bytes("v" + std::to_string(i)));
    ASSERT_TRUE(w.is_ok());
    EXPECT_EQ(w.value().phases, 3);
  }
}

TEST(BftBcPhaseTest, OptimizedUncontendedWriteTakesTwoPhases) {
  ClusterOptions o;
  o.optimized = true;
  Cluster cluster(o);
  auto& c = cluster.add_client(1);
  for (int i = 0; i < 3; ++i) {
    auto w = cluster.write(c, 1, to_bytes("v" + std::to_string(i)));
    ASSERT_TRUE(w.is_ok());
    EXPECT_EQ(w.value().phases, 2) << "write " << i;
  }
  EXPECT_EQ(c.metrics().get("opt_fast_writes"), 3u);
}

TEST(BftBcPhaseTest, StrongUncontendedWriteStaysThreePhases) {
  ClusterOptions o;
  o.strong = true;
  Cluster cluster(o);
  auto& c = cluster.add_client(1);
  for (int i = 0; i < 3; ++i) {
    auto w = cluster.write(c, 1, to_bytes("v" + std::to_string(i)));
    ASSERT_TRUE(w.is_ok());
    EXPECT_EQ(w.value().phases, 3) << "write " << i;
  }
  EXPECT_EQ(c.metrics().get("internal_reads"), 0u);
}

TEST(BftBcPhaseTest, ConcurrentOptimizedWritersFallBack) {
  // Two clients writing the same object concurrently: replicas predict
  // different timestamps / reject second prepares, so at least one write
  // needs the fallback phase 2 (§6.1's motivating example). Both must
  // still complete — the liveness half of the claim.
  ClusterOptions o;
  o.optimized = true;
  o.seed = 5;
  Cluster cluster(o);
  auto& a = cluster.add_client(1);
  auto& b = cluster.add_client(2);

  int done = 0;
  std::vector<int> phases;
  for (int round = 0; round < 5; ++round) {
    a.write(1, to_bytes("a" + std::to_string(round)),
            [&](Result<core::Client::WriteResult> r) {
              ASSERT_TRUE(r.is_ok());
              phases.push_back(r.value().phases);
              ++done;
            });
    b.write(1, to_bytes("b" + std::to_string(round)),
            [&](Result<core::Client::WriteResult> r) {
              ASSERT_TRUE(r.is_ok());
              phases.push_back(r.value().phases);
              ++done;
            });
    const int want = 2 * (round + 1);
    ASSERT_TRUE(cluster.run_until([&] { return done == want; }));
  }
  // All writes completed despite contention.
  EXPECT_EQ(done, 10);
  for (int p : phases) {
    EXPECT_GE(p, 2);
    EXPECT_LE(p, 3);
  }
  // Reads still converge on a single latest value. Concurrent rounds may
  // commit both writes under the same val with different client ids
  // (ordered by id), so val advances by >= 1 per round.
  auto r = cluster.read(a, 1);
  ASSERT_TRUE(r.is_ok());
  EXPECT_GE(r.value().ts.val, 5u);
  EXPECT_LE(r.value().ts.val, 10u);
  const std::string v = to_string(r.value().value);
  EXPECT_TRUE(v == "a4" || v == "b4") << v;
}

TEST(BftBcPhaseTest, WriteDeadlineFiresWhenQuorumUnreachable) {
  ClusterOptions o;
  o.client_defaults.op_deadline = 2 * sim::kSecond;
  Cluster cluster(o);
  // Crash f+1 replicas: no quorum of 2f+1 can assemble.
  cluster.crash_replica(0);
  cluster.crash_replica(1);
  auto& c = cluster.add_client(1);
  auto w = cluster.write(c, 1, to_bytes("nope"));
  ASSERT_FALSE(w.is_ok());
  EXPECT_EQ(w.status().code(), StatusCode::kTimeout);
}

TEST(BftBcPhaseTest, StoppedClientCannotWrite) {
  Cluster cluster(ClusterOptions{});
  auto& c = cluster.add_client(1);
  ASSERT_TRUE(cluster.write(c, 1, to_bytes("ok")).is_ok());
  cluster.stop_client(1);
  auto w = cluster.write(c, 1, to_bytes("post-stop"));
  ASSERT_FALSE(w.is_ok());
  EXPECT_EQ(w.status().code(), StatusCode::kUnavailable);
}

// ------------------------------------------------------------- liveness

TEST(BftBcLivenessTest, ReaderUnaffectedByConcurrentWriter) {
  // §5.1 / §8: reads terminate in a constant number of rounds regardless
  // of concurrent writers (unlike Martin et al. where concurrent writers
  // can slow readers).
  Cluster cluster(ClusterOptions{});
  auto& writer = cluster.add_client(1);
  auto& reader = cluster.add_client(2);
  ASSERT_TRUE(cluster.write(writer, 1, to_bytes("v0")).is_ok());

  // Start a long stream of writes; interleave reads and confirm each
  // finishes in <= 2 phases.
  int writes_done = 0;
  std::function<void(int)> chain = [&](int i) {
    if (i >= 20) return;
    writer.write(1, to_bytes("v" + std::to_string(i)),
                 [&, i](Result<core::Client::WriteResult> r) {
                   ASSERT_TRUE(r.is_ok());
                   ++writes_done;
                   chain(i + 1);
                 });
  };
  chain(1);

  for (int k = 0; k < 10; ++k) {
    auto r = cluster.read(reader, 1);
    ASSERT_TRUE(r.is_ok());
    EXPECT_LE(r.value().phases, 2);
  }
  ASSERT_TRUE(cluster.run_until([&] { return writes_done == 19; }));
}

TEST(BftBcLivenessTest, ManyClientsManyObjects) {
  Cluster cluster(ClusterOptions{});
  constexpr int kClients = 6;
  constexpr int kObjects = 3;
  for (int c = 1; c <= kClients; ++c) {
    auto& client = cluster.add_client(static_cast<quorum::ClientId>(c));
    for (int o = 0; o < kObjects; ++o) {
      ASSERT_TRUE(cluster
                      .write(client, static_cast<quorum::ObjectId>(o),
                             to_bytes("c" + std::to_string(c) + "o" +
                                      std::to_string(o)))
                      .is_ok());
    }
  }
  // Every object ends at the value of the last client to write it.
  auto& reader = cluster.add_client(100);
  for (int o = 0; o < kObjects; ++o) {
    auto r = cluster.read(reader, static_cast<quorum::ObjectId>(o));
    ASSERT_TRUE(r.is_ok());
    EXPECT_EQ(to_string(r.value().value),
              "c" + std::to_string(kClients) + "o" + std::to_string(o));
  }
}

}  // namespace
}  // namespace bftbc
