// VerifyPool: the worker pool behind Keystore::verify_batch.
//
// Covers the pool in isolation (index coverage, reuse, degenerate
// sizes, concurrent callers) and through the keystore (pooled
// verify_batch verdicts identical to the inline pass, including
// invalid signatures and unknown principals). Runs under TSan in CI
// (label "tsan") — the pool's whole point is that the cryptographic
// pass is data-race-free.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "crypto/signature.h"
#include "crypto/verify_pool.h"
#include "quorum/config.h"
#include "util/bytes.h"

namespace bftbc::crypto {
namespace {

TEST(VerifyPoolTest, RunsEveryIndexExactlyOnce) {
  VerifyPool pool(3);
  EXPECT_EQ(pool.thread_count(), 3u);
  std::vector<std::atomic<int>> hits(100);
  pool.parallel_for(hits.size(),
                    [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << i;
  }
}

TEST(VerifyPoolTest, ZeroThreadsRunsInline) {
  VerifyPool pool(0);
  EXPECT_EQ(pool.thread_count(), 0u);
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<std::thread::id> ran_on(8);
  pool.parallel_for(ran_on.size(),
                    [&](std::size_t i) { ran_on[i] = std::this_thread::get_id(); });
  for (const auto& id : ran_on) EXPECT_EQ(id, caller);
}

TEST(VerifyPoolTest, EmptyAndSingletonJobs) {
  VerifyPool pool(2);
  pool.parallel_for(0, [](std::size_t) { FAIL() << "no work expected"; });
  int runs = 0;
  pool.parallel_for(1, [&](std::size_t i) {
    EXPECT_EQ(i, 0u);
    ++runs;
  });
  EXPECT_EQ(runs, 1);
}

TEST(VerifyPoolTest, ReusableAcrossManyBatches) {
  VerifyPool pool(4);
  for (int round = 0; round < 50; ++round) {
    const std::size_t n = 1 + static_cast<std::size_t>(round % 13);
    std::atomic<std::size_t> sum{0};
    pool.parallel_for(n, [&](std::size_t i) { sum.fetch_add(i + 1); });
    EXPECT_EQ(sum.load(), n * (n + 1) / 2) << round;
  }
}

TEST(VerifyPoolTest, ConcurrentCallersAreSerializedSafely) {
  VerifyPool pool(2);
  constexpr int kCallers = 4;
  constexpr int kRounds = 25;
  std::vector<std::thread> callers;
  std::vector<std::atomic<std::size_t>> totals(kCallers);
  for (int c = 0; c < kCallers; ++c) {
    callers.emplace_back([&pool, &totals, c] {
      for (int round = 0; round < kRounds; ++round) {
        const std::size_t n = 1 + static_cast<std::size_t>((c + round) % 7);
        std::atomic<std::size_t> seen{0};
        pool.parallel_for(n, [&](std::size_t) { seen.fetch_add(1); });
        totals[c].fetch_add(seen.load());
      }
    });
  }
  for (auto& t : callers) t.join();
  for (int c = 0; c < kCallers; ++c) {
    std::size_t expected = 0;
    for (int round = 0; round < kRounds; ++round) {
      expected += 1 + static_cast<std::size_t>((c + round) % 7);
    }
    EXPECT_EQ(totals[c].load(), expected) << c;
  }
}

// ---- through the keystore ------------------------------------------

std::vector<Keystore::VerifyItem> make_batch(Keystore& ks, std::size_t n) {
  std::vector<Keystore::VerifyItem> items;
  for (std::size_t i = 0; i < n; ++i) {
    const PrincipalId p =
        quorum::replica_principal(static_cast<quorum::ReplicaId>(i % 4));
    Keystore::VerifyItem item;
    item.principal = p;
    item.statement = to_bytes("stmt-" + std::to_string(i));
    item.sig = ks.register_principal(p).sign(item.statement).value();
    items.push_back(std::move(item));
  }
  return items;
}

TEST(VerifyPoolKeystoreTest, PooledBatchMatchesInlineVerdicts) {
  Keystore inline_ks(SignatureScheme::kRsa, /*seed=*/5, /*rsa_bits=*/512);
  Keystore pooled_ks(SignatureScheme::kRsa, /*seed=*/5, /*rsa_bits=*/512);
  VerifyPool pool(3);
  pooled_ks.set_verify_pool(&pool);

  auto inline_items = make_batch(inline_ks, 12);
  auto pooled_items = make_batch(pooled_ks, 12);
  // Poison a couple of entries the same way on both sides: one corrupt
  // signature, one unknown principal.
  inline_items[3].sig[0] ^= 0x40;
  pooled_items[3].sig[0] ^= 0x40;
  inline_items[7].principal = 0xdead;
  pooled_items[7].principal = 0xdead;

  const std::size_t inline_checks = inline_ks.verify_batch(inline_items);
  const std::size_t pooled_checks = pooled_ks.verify_batch(pooled_items);
  EXPECT_EQ(inline_checks, pooled_checks);
  ASSERT_EQ(inline_items.size(), pooled_items.size());
  for (std::size_t i = 0; i < inline_items.size(); ++i) {
    EXPECT_EQ(inline_items[i].valid, pooled_items[i].valid) << i;
  }
  EXPECT_FALSE(pooled_items[3].valid);
  EXPECT_FALSE(pooled_items[7].valid);
  EXPECT_TRUE(pooled_items[0].valid);
}

TEST(VerifyPoolKeystoreTest, PooledBatchStillMemoizes) {
  Keystore ks(SignatureScheme::kRsa, /*seed=*/9, /*rsa_bits=*/512);
  VerifyPool pool(2);
  ks.set_verify_pool(&pool);

  auto items = make_batch(ks, 8);
  const std::size_t first = ks.verify_batch(items);
  EXPECT_EQ(first, items.size());
  // Second pass over the identical batch: all verdicts memoized, the
  // pool has nothing to do.
  auto again = items;
  for (auto& item : again) item.valid = false;
  const std::size_t second = ks.verify_batch(again);
  EXPECT_EQ(second, 0u);
  for (const auto& item : again) EXPECT_TRUE(item.valid);
}

}  // namespace
}  // namespace bftbc::crypto
