// Replays every committed corpus entry and asserts its verdict class.
//
// The corpus under <repo>/corpus is the regression library the guided
// explorer seeds from: each file is a scenario JSON with two sidecar
// keys the scenario parser ignores — "comment" (why the entry exists)
// and "expect" ("clean", "safety", or "liveness"). This test is the
// contract that keeps those entries honest: a protocol or checker
// change that flips an entry's verdict fails here with the file name,
// instead of silently degrading the fuzzer's seed corpus.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "explore/corpus.h"
#include "explore/explorer.h"
#include "explore/scenario.h"
#include "util/json_value.h"

namespace bftbc::explore {
namespace {

namespace fs = std::filesystem;

std::vector<fs::path> corpus_files() {
  std::vector<fs::path> files;
  for (const auto& entry : fs::directory_iterator(BFTBC_CORPUS_DIR)) {
    if (entry.path().extension() == ".json") files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  return files;
}

std::string slurp(const fs::path& path) {
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

TEST(ExplorerCorpusTest, CorpusDirectoryIsNonEmpty) {
  ASSERT_TRUE(fs::exists(BFTBC_CORPUS_DIR));
  EXPECT_GE(corpus_files().size(), 6u);
}

// Corpus::load_dir must accept every committed entry — an entry that
// fails Scenario::from_json would be silently dropped from the guided
// explorer's seed corpus.
TEST(ExplorerCorpusTest, LoadDirAcceptsEveryEntry) {
  const std::vector<CorpusEntry> entries =
      Corpus::load_dir(std::string(BFTBC_CORPUS_DIR));
  EXPECT_EQ(entries.size(), corpus_files().size());
}

TEST(ExplorerCorpusTest, EveryEntryReplaysToItsExpectedVerdict) {
  ExplorerOptions opts;  // no artifacts, no corpus dir: pure replay
  Explorer explorer(opts);
  for (const fs::path& file : corpus_files()) {
    SCOPED_TRACE(file.filename().string());
    const std::string text = slurp(file);

    const std::optional<JsonValue> doc = JsonValue::parse(text);
    ASSERT_TRUE(doc.has_value());
    const std::string expect = doc->string("expect", "");
    ASSERT_TRUE(expect == "clean" || expect == "safety" ||
                expect == "liveness")
        << "corpus entries need an \"expect\" key, got '" << expect << "'";
    // Every entry should say why it is in the corpus.
    EXPECT_FALSE(doc->string("comment", "").empty());

    const std::optional<Scenario> scenario = Scenario::from_json(text);
    ASSERT_TRUE(scenario.has_value());

    const RunOutcome outcome = explorer.run_scenario(*scenario);
    if (expect == "clean") {
      EXPECT_FALSE(outcome.failed()) << outcome.failure;
    } else {
      ASSERT_TRUE(outcome.failed());
      EXPECT_EQ(Explorer::failure_class(outcome.failure), expect)
          << outcome.failure;
    }
  }
}

}  // namespace
}  // namespace bftbc::explore
