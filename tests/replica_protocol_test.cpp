// Message-level replica tests: craft raw envelopes (well-formed,
// malformed, and adversarial) and verify the replica's Figure 2 behavior
// directly — especially the silent-discard rules, which integration
// tests can't easily observe.
#include <gtest/gtest.h>

#include "bftbc/replica.h"
#include "quorum/statements.h"
#include "rpc/transport.h"

namespace bftbc::core {
namespace {

class ReplicaProtocolTest : public ::testing::Test {
 protected:
  static constexpr quorum::ObjectId kObj = 1;
  static constexpr sim::NodeId kProbeNode = 100;
  static constexpr quorum::ClientId kClient = 5;

  ReplicaProtocolTest()
      : config_(quorum::QuorumConfig::bft_bc(1)),
        net_(sim_, Rng(1), [] { sim::LinkConfig c; c.base_delay = 1; c.jitter_mean = 0; return c; }()),
        keystore_(crypto::SignatureScheme::kHmacSim, 9),
        replica_transport_(net_, 0),
        probe_(net_, kProbeNode),
        replica_(config_, 0, keystore_, replica_transport_, sim_,
                 core::ReplicaOptions{.optimized = true}),
        client_signer_(
            keystore_.register_principal(quorum::client_principal(kClient))) {
    probe_.set_receiver([this](sim::NodeId, const rpc::Envelope& env) {
      replies_.push_back(env);
    });
    // Register the other replicas so quorum certs can be minted.
    for (quorum::ReplicaId r = 1; r < config_.n; ++r) {
      replica_signers_.push_back(
          keystore_.register_principal(quorum::replica_principal(r)));
    }
    replica_signers_.insert(
        replica_signers_.begin(),
        keystore_.register_principal(quorum::replica_principal(0)));
  }

  void send(rpc::MsgType type, Bytes body, std::uint64_t rpc_id = 1) {
    rpc::Envelope env;
    env.type = type;
    env.rpc_id = rpc_id;
    env.sender = quorum::client_principal(kClient);
    env.body = std::move(body);
    probe_.send(0, env);
    sim_.run();
  }

  // Mint a valid prepare certificate signed by replicas {0,1,2}.
  PrepareCertificate mint_prep_cert(const Timestamp& ts,
                                    const crypto::Digest& h) {
    quorum::SignatureSet sigs;
    const Bytes stmt = quorum::prepare_reply_statement(kObj, ts, h);
    for (quorum::ReplicaId r = 0; r < config_.q; ++r) {
      sigs[r] = replica_signers_[r].sign(stmt).value();
    }
    return PrepareCertificate(kObj, ts, h, sigs);
  }

  WriteCertificate mint_write_cert(const Timestamp& ts) {
    quorum::SignatureSet sigs;
    const Bytes stmt = quorum::write_reply_statement(kObj, ts);
    for (quorum::ReplicaId r = 0; r < config_.q; ++r) {
      sigs[r] = replica_signers_[r].sign(stmt).value();
    }
    return WriteCertificate(kObj, ts, sigs);
  }

  PrepareRequest make_prepare(const Timestamp& t, const crypto::Digest& h,
                              const PrepareCertificate& cert,
                              std::optional<WriteCertificate> wcert = {}) {
    PrepareRequest req;
    req.object = kObj;
    req.t = t;
    req.hash = h;
    req.prep_cert = cert;
    req.write_cert = std::move(wcert);
    req.client = kClient;
    req.sig = client_signer_.sign(req.signing_payload()).value();
    return req;
  }

  quorum::QuorumConfig config_;
  sim::Simulator sim_;
  sim::Network net_;
  crypto::Keystore keystore_;
  rpc::SimTransport replica_transport_;
  rpc::SimTransport probe_;
  Replica replica_;
  crypto::Signer client_signer_;
  std::vector<crypto::Signer> replica_signers_;
  std::vector<rpc::Envelope> replies_;
};

TEST_F(ReplicaProtocolTest, ReadTsAnsweredUnconditionally) {
  ReadTsRequest req;
  req.object = kObj;
  req.nonce = crypto::Nonce{kClient, 1, 99};
  send(rpc::MsgType::kReadTs, req.encode());
  ASSERT_EQ(replies_.size(), 1u);
  EXPECT_EQ(replies_[0].type, rpc::MsgType::kReadTsReply);
  auto rep = ReadTsReply::decode(replies_[0].body);
  ASSERT_TRUE(rep.has_value());
  EXPECT_TRUE(rep->pcert.is_genesis());
  EXPECT_EQ(rep->nonce, req.nonce);
  // Reply is authenticated.
  EXPECT_TRUE(keystore_.verify(quorum::replica_principal(0),
                               rep->signing_payload(), rep->auth));
}

TEST_F(ReplicaProtocolTest, MalformedBodiesSilentlyDropped) {
  send(rpc::MsgType::kReadTs, to_bytes("garbage"));
  send(rpc::MsgType::kPrepare, to_bytes("more garbage"));
  send(rpc::MsgType::kWrite, Bytes(3, 0xff));
  send(rpc::MsgType::kRead, Bytes{});
  EXPECT_TRUE(replies_.empty());
  EXPECT_EQ(replica_.metrics().get("drop_malformed"), 4u);
}

TEST_F(ReplicaProtocolTest, ValidPrepareAnsweredWithStatementSig) {
  const crypto::Digest h = crypto::sha256(as_bytes_view("v"));
  const Timestamp t{1, kClient};
  send(rpc::MsgType::kPrepare,
       make_prepare(t, h, PrepareCertificate::genesis(kObj)).encode());
  ASSERT_EQ(replies_.size(), 1u);
  auto rep = PrepareReply::decode(replies_[0].body);
  ASSERT_TRUE(rep.has_value());
  EXPECT_EQ(rep->t, t);
  const Bytes stmt = quorum::prepare_reply_statement(kObj, t, h);
  EXPECT_TRUE(
      keystore_.verify(quorum::replica_principal(0), stmt, rep->sig));
  // Plist now holds the entry.
  EXPECT_TRUE(replica_.object(kObj).has_entry(kClient));
}

TEST_F(ReplicaProtocolTest, PrepareWithBadClientSigDropped) {
  const crypto::Digest h = crypto::sha256(as_bytes_view("v"));
  PrepareRequest req =
      make_prepare({1, kClient}, h, PrepareCertificate::genesis(kObj));
  req.sig[0] ^= 0x01;
  send(rpc::MsgType::kPrepare, req.encode());
  EXPECT_TRUE(replies_.empty());
  EXPECT_EQ(replica_.metrics().get("drop_bad_auth"), 1u);
}

TEST_F(ReplicaProtocolTest, PrepareSignedByOtherClientDropped) {
  // Signature by client 6 on a request claiming client 5.
  auto other = keystore_.register_principal(quorum::client_principal(6));
  const crypto::Digest h = crypto::sha256(as_bytes_view("v"));
  PrepareRequest req;
  req.object = kObj;
  req.t = {1, kClient};
  req.hash = h;
  req.prep_cert = PrepareCertificate::genesis(kObj);
  req.client = kClient;
  req.sig = other.sign(req.signing_payload()).value();
  send(rpc::MsgType::kPrepare, req.encode());
  EXPECT_TRUE(replies_.empty());
  EXPECT_EQ(replica_.metrics().get("drop_bad_auth"), 1u);
}

TEST_F(ReplicaProtocolTest, PrepareWithNonSuccessorTimestampDropped) {
  const crypto::Digest h = crypto::sha256(as_bytes_view("v"));
  // Jump of 2 beyond the genesis certificate.
  send(rpc::MsgType::kPrepare,
       make_prepare({2, kClient}, h, PrepareCertificate::genesis(kObj))
           .encode());
  EXPECT_TRUE(replies_.empty());
  EXPECT_EQ(replica_.metrics().get("drop_bad_ts"), 1u);
}

TEST_F(ReplicaProtocolTest, PrepareWithWrongClientIdInTimestampDropped) {
  // t embeds a different client id than the signer: succ() check fails.
  const crypto::Digest h = crypto::sha256(as_bytes_view("v"));
  send(rpc::MsgType::kPrepare,
       make_prepare({1, 77}, h, PrepareCertificate::genesis(kObj)).encode());
  EXPECT_TRUE(replies_.empty());
  EXPECT_EQ(replica_.metrics().get("drop_bad_ts"), 1u);
}

TEST_F(ReplicaProtocolTest, PrepareWithForgedCertDropped) {
  const crypto::Digest h = crypto::sha256(as_bytes_view("v"));
  // A certificate claiming ts <5,2> with garbage signatures.
  quorum::SignatureSet fake;
  fake[0] = to_bytes("x");
  fake[1] = to_bytes("y");
  fake[2] = to_bytes("z");
  PrepareCertificate forged(kObj, {5, 2}, h, fake);
  send(rpc::MsgType::kPrepare,
       make_prepare({6, kClient}, h, forged).encode());
  EXPECT_TRUE(replies_.empty());
  EXPECT_EQ(replica_.metrics().get("drop_bad_cert"), 1u);
}

TEST_F(ReplicaProtocolTest, ConflictingSecondPrepareDropped) {
  const crypto::Digest h1 = crypto::sha256(as_bytes_view("v1"));
  const crypto::Digest h2 = crypto::sha256(as_bytes_view("v2"));
  send(rpc::MsgType::kPrepare,
       make_prepare({1, kClient}, h1, PrepareCertificate::genesis(kObj))
           .encode(),
       1);
  ASSERT_EQ(replies_.size(), 1u);
  // Same timestamp, different hash → silent drop (Figure 2 step 3).
  send(rpc::MsgType::kPrepare,
       make_prepare({1, kClient}, h2, PrepareCertificate::genesis(kObj))
           .encode(),
       2);
  EXPECT_EQ(replies_.size(), 1u);
  EXPECT_EQ(replica_.metrics().get("drop_plist_conflict"), 1u);
  // Retransmission of the SAME prepare is answered again (idempotent).
  send(rpc::MsgType::kPrepare,
       make_prepare({1, kClient}, h1, PrepareCertificate::genesis(kObj))
           .encode(),
       3);
  EXPECT_EQ(replies_.size(), 2u);
}

TEST_F(ReplicaProtocolTest, WriteCertificateClearsPlistDuringPrepare) {
  const crypto::Digest h1 = crypto::sha256(as_bytes_view("v1"));
  send(rpc::MsgType::kPrepare,
       make_prepare({1, kClient}, h1, PrepareCertificate::genesis(kObj))
           .encode(),
       1);
  ASSERT_EQ(replies_.size(), 1u);

  // Next prepare carries the write certificate for <1,kClient>: the old
  // entry is GC'd and the new one admitted.
  const crypto::Digest h2 = crypto::sha256(as_bytes_view("v2"));
  const PrepareCertificate cert1 = mint_prep_cert({1, kClient}, h1);
  send(rpc::MsgType::kPrepare,
       make_prepare({2, kClient}, h2, cert1, mint_write_cert({1, kClient}))
           .encode(),
       2);
  ASSERT_EQ(replies_.size(), 2u);
  const auto& state = replica_.object(kObj);
  ASSERT_EQ(state.plist().count(kClient), 1u);
  EXPECT_EQ(state.plist().at(kClient).t, (Timestamp{2, kClient}));
  EXPECT_EQ(state.write_ts(), (Timestamp{1, kClient}));
}

TEST_F(ReplicaProtocolTest, ValidWriteAppliesAndSigns) {
  const Bytes value = to_bytes("payload");
  const crypto::Digest h = crypto::sha256(value);
  const Timestamp t{1, kClient};
  WriteRequest req;
  req.object = kObj;
  req.value = value;
  req.prep_cert = mint_prep_cert(t, h);
  req.client = kClient;
  req.sig = client_signer_.sign(req.signing_payload()).value();
  send(rpc::MsgType::kWrite, req.encode());

  ASSERT_EQ(replies_.size(), 1u);
  auto rep = WriteReply::decode(replies_[0].body);
  ASSERT_TRUE(rep.has_value());
  EXPECT_EQ(rep->ts, t);
  const Bytes stmt = quorum::write_reply_statement(kObj, t);
  EXPECT_TRUE(keystore_.verify(quorum::replica_principal(0), stmt, rep->sig));
  EXPECT_EQ(replica_.object(kObj).data(), value);
}

TEST_F(ReplicaProtocolTest, WriteWithHashMismatchDropped) {
  const Bytes value = to_bytes("payload");
  const crypto::Digest wrong = crypto::sha256(as_bytes_view("different"));
  WriteRequest req;
  req.object = kObj;
  req.value = value;
  req.prep_cert = mint_prep_cert({1, kClient}, wrong);
  req.client = kClient;
  req.sig = client_signer_.sign(req.signing_payload()).value();
  send(rpc::MsgType::kWrite, req.encode());
  EXPECT_TRUE(replies_.empty());
  EXPECT_EQ(replica_.metrics().get("drop_hash_mismatch"), 1u);
  EXPECT_TRUE(replica_.object(kObj).data().empty());
}

TEST_F(ReplicaProtocolTest, StaleWriteRepliedButNotApplied) {
  // Apply <2,c> then replay <1,c>: replica answers (the statement is
  // true) without regressing state.
  const Bytes v2 = to_bytes("newer");
  WriteRequest w2;
  w2.object = kObj;
  w2.value = v2;
  w2.prep_cert = mint_prep_cert({2, kClient}, crypto::sha256(v2));
  w2.client = kClient;
  w2.sig = client_signer_.sign(w2.signing_payload()).value();
  send(rpc::MsgType::kWrite, w2.encode(), 1);

  const Bytes v1 = to_bytes("older");
  WriteRequest w1;
  w1.object = kObj;
  w1.value = v1;
  w1.prep_cert = mint_prep_cert({1, kClient}, crypto::sha256(v1));
  w1.client = kClient;
  w1.sig = client_signer_.sign(w1.signing_payload()).value();
  send(rpc::MsgType::kWrite, w1.encode(), 2);

  EXPECT_EQ(replies_.size(), 2u);
  EXPECT_EQ(replica_.object(kObj).data(), v2);
}

TEST_F(ReplicaProtocolTest, BackgroundWriteSigCacheHitOnPhase3) {
  // Prepare (which precomputes the write-reply signature), then write:
  // the reply must come from the cache.
  const Bytes value = to_bytes("v");
  const crypto::Digest h = crypto::sha256(value);
  const Timestamp t{1, kClient};
  send(rpc::MsgType::kPrepare,
       make_prepare(t, h, PrepareCertificate::genesis(kObj)).encode(), 1);
  EXPECT_EQ(replica_.metrics().get("sig_background"), 1u);

  WriteRequest req;
  req.object = kObj;
  req.value = value;
  req.prep_cert = mint_prep_cert(t, h);
  req.client = kClient;
  req.sig = client_signer_.sign(req.signing_payload()).value();
  send(rpc::MsgType::kWrite, req.encode(), 2);
  EXPECT_EQ(replica_.metrics().get("sig_background_hit"), 1u);
}

TEST_F(ReplicaProtocolTest, GcInReadAbsorbsWriteCert) {
  const crypto::Digest h = crypto::sha256(as_bytes_view("v"));
  send(rpc::MsgType::kPrepare,
       make_prepare({1, kClient}, h, PrepareCertificate::genesis(kObj))
           .encode(),
       1);
  ASSERT_EQ(replica_.object(kObj).plist().size(), 1u);

  ReadRequest req;
  req.object = kObj;
  req.nonce = crypto::Nonce{kClient, 2, 3};
  req.write_cert = mint_write_cert({1, kClient});
  send(rpc::MsgType::kRead, req.encode(), 2);
  EXPECT_EQ(replica_.metrics().get("gc_via_read"), 1u);
  EXPECT_TRUE(replica_.object(kObj).plist().empty());
}

TEST_F(ReplicaProtocolTest, InvalidWcertInReadIgnoredButReadServed) {
  ReadRequest req;
  req.object = kObj;
  req.nonce = crypto::Nonce{kClient, 2, 3};
  quorum::SignatureSet fake;
  fake[0] = to_bytes("junk");
  fake[1] = to_bytes("junk");
  fake[2] = to_bytes("junk");
  req.write_cert = WriteCertificate(kObj, {9, 9}, fake);
  send(rpc::MsgType::kRead, req.encode());
  ASSERT_EQ(replies_.size(), 1u);  // read still answered
  EXPECT_EQ(replica_.metrics().get("gc_via_read"), 0u);
  EXPECT_TRUE(replica_.object(kObj).write_ts().is_zero());
}

TEST_F(ReplicaProtocolTest, OptPrepareHappyPath) {
  ReadTsPrepRequest req;
  req.object = kObj;
  req.hash = crypto::sha256(as_bytes_view("v"));
  req.nonce = crypto::Nonce{kClient, 1, 1};
  req.client = kClient;
  req.sig = client_signer_.sign(req.signing_payload()).value();
  send(rpc::MsgType::kReadTsPrep, req.encode());

  ASSERT_EQ(replies_.size(), 1u);
  auto rep = ReadTsPrepReply::decode(replies_[0].body);
  ASSERT_TRUE(rep.has_value());
  EXPECT_TRUE(rep->prepared);
  EXPECT_EQ(rep->predicted_t, (Timestamp{1, kClient}));
  const Bytes stmt =
      quorum::prepare_reply_statement(kObj, rep->predicted_t, req.hash);
  EXPECT_TRUE(keystore_.verify(quorum::replica_principal(0), stmt,
                               rep->prepare_sig));
  EXPECT_EQ(replica_.object(kObj).optlist().size(), 1u);
}

TEST_F(ReplicaProtocolTest, OptPrepareFallsBackOnConflict) {
  // Occupy the normal list first with a different hash.
  const crypto::Digest h1 = crypto::sha256(as_bytes_view("v1"));
  send(rpc::MsgType::kPrepare,
       make_prepare({1, kClient}, h1, PrepareCertificate::genesis(kObj))
           .encode(),
       1);

  ReadTsPrepRequest req;
  req.object = kObj;
  req.hash = crypto::sha256(as_bytes_view("v2"));
  req.nonce = crypto::Nonce{kClient, 2, 2};
  req.client = kClient;
  req.sig = client_signer_.sign(req.signing_payload()).value();
  send(rpc::MsgType::kReadTsPrep, req.encode(), 2);

  ASSERT_EQ(replies_.size(), 2u);
  auto rep = ReadTsPrepReply::decode(replies_[1].body);
  ASSERT_TRUE(rep.has_value());
  EXPECT_FALSE(rep->prepared);  // normal phase-1 style answer
  EXPECT_TRUE(replica_.object(kObj).optlist().empty());
}

TEST_F(ReplicaProtocolTest, UnknownMessageTypeCounted) {
  rpc::Envelope env;
  env.type = static_cast<rpc::MsgType>(999);
  env.rpc_id = 1;
  env.sender = quorum::client_principal(kClient);
  env.body = to_bytes("whatever");
  probe_.send(0, env);
  sim_.run();
  EXPECT_TRUE(replies_.empty());
  EXPECT_EQ(replica_.metrics().get("drop_unknown_type"), 1u);
}

// -------------------------------------------------- strong-mode replica

class StrongReplicaTest : public ReplicaProtocolTest {
 protected:
  StrongReplicaTest()
      : strong_transport_(net_, 50),
        strong_(config_, 0, keystore_, strong_transport_, sim_,
                core::ReplicaOptions{.strong = true}) {
    // The base fixture's replica is at node 0 and already owns that
    // receiver; route strong tests to node 50 instead.
  }

  void send_strong(rpc::MsgType type, Bytes body, std::uint64_t rpc_id = 1) {
    rpc::Envelope env;
    env.type = type;
    env.rpc_id = rpc_id;
    env.sender = quorum::client_principal(kClient);
    env.body = std::move(body);
    probe_.send(50, env);
    sim_.run();
  }

  rpc::SimTransport strong_transport_;
  Replica strong_;
};

TEST_F(StrongReplicaTest, ReadTsReplyCarriesWriteStatementSig) {
  ReadTsRequest req;
  req.object = kObj;
  req.nonce = crypto::Nonce{kClient, 1, 1};
  send_strong(rpc::MsgType::kReadTs, req.encode());
  ASSERT_EQ(replies_.size(), 1u);
  auto rep = ReadTsReply::decode(replies_[0].body);
  ASSERT_TRUE(rep.has_value());
  ASSERT_FALSE(rep->strong_write_sig.empty());
  const Bytes stmt =
      quorum::write_reply_statement(kObj, rep->pcert.ts());
  EXPECT_TRUE(keystore_.verify(quorum::replica_principal(0), stmt,
                               rep->strong_write_sig));
}

TEST_F(StrongReplicaTest, PrepareWithoutWriteCertDropped) {
  const crypto::Digest h = crypto::sha256(as_bytes_view("v"));
  send_strong(rpc::MsgType::kPrepare,
              make_prepare({1, kClient}, h, PrepareCertificate::genesis(kObj))
                  .encode());
  EXPECT_TRUE(replies_.empty());
  EXPECT_EQ(strong_.metrics().get("drop_strong_no_wcert"), 1u);
}

TEST_F(StrongReplicaTest, PrepareWithMismatchedWriteCertDropped) {
  // Write cert covers a different timestamp than the justification.
  const crypto::Digest h = crypto::sha256(as_bytes_view("v2"));
  const PrepareCertificate cert1 =
      mint_prep_cert({1, kClient}, crypto::sha256(as_bytes_view("v1")));
  // wcert for genesis instead of <1,kClient>.
  send_strong(rpc::MsgType::kPrepare,
              make_prepare({2, kClient}, h, cert1,
                           mint_write_cert(Timestamp::zero()))
                  .encode());
  EXPECT_TRUE(replies_.empty());
  EXPECT_EQ(strong_.metrics().get("drop_strong_no_wcert"), 1u);
}

TEST_F(StrongReplicaTest, PrepareWithMatchingWriteCertAccepted) {
  const crypto::Digest h = crypto::sha256(as_bytes_view("v2"));
  const PrepareCertificate cert1 =
      mint_prep_cert({1, kClient}, crypto::sha256(as_bytes_view("v1")));
  send_strong(rpc::MsgType::kPrepare,
              make_prepare({2, kClient}, h, cert1,
                           mint_write_cert({1, kClient}))
                  .encode());
  ASSERT_EQ(replies_.size(), 1u);
  EXPECT_EQ(replies_[0].type, rpc::MsgType::kPrepareReply);
}

TEST_F(StrongReplicaTest, GenesisWriteCertAcceptedForFirstWrite) {
  const crypto::Digest h = crypto::sha256(as_bytes_view("first"));
  send_strong(rpc::MsgType::kPrepare,
              make_prepare({1, kClient}, h, PrepareCertificate::genesis(kObj),
                           mint_write_cert(Timestamp::zero()))
                  .encode());
  ASSERT_EQ(replies_.size(), 1u);
}

}  // namespace
}  // namespace bftbc::core
