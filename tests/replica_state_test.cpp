// Unit tests for the ObjectState rules (Figure 2's Plist/optlist logic) —
// the invariants Lemma 1 rests on, tested without any networking.
#include <gtest/gtest.h>

#include "bftbc/replica_state.h"

namespace bftbc::core {
namespace {

crypto::Digest h(const char* s) { return crypto::sha256(as_bytes_view(s)); }

PrepareCertificate cert_for(ObjectId obj, Timestamp ts, const char* value) {
  // State-level tests don't validate signatures, so an unsigned
  // certificate shell carrying (ts, hash) suffices.
  return PrepareCertificate(obj, ts, h(value), {});
}

TEST(ObjectStateTest, InitialStateIsGenesis) {
  ObjectState s(3);
  EXPECT_TRUE(s.data().empty());
  EXPECT_TRUE(s.pcert().is_genesis());
  EXPECT_TRUE(s.write_ts().is_zero());
  EXPECT_TRUE(s.plist().empty());
  EXPECT_TRUE(s.optlist().empty());
}

TEST(ObjectStateTest, PrepareAdmitsFreshEntry) {
  ObjectState s(1);
  EXPECT_TRUE(s.try_prepare(7, {1, 7}, h("a")));
  ASSERT_EQ(s.plist().size(), 1u);
  EXPECT_EQ(s.plist().at(7).t, (Timestamp{1, 7}));
}

TEST(ObjectStateTest, PrepareIdempotentForSameEntry) {
  ObjectState s(1);
  EXPECT_TRUE(s.try_prepare(7, {1, 7}, h("a")));
  EXPECT_TRUE(s.try_prepare(7, {1, 7}, h("a")));  // retransmission
  EXPECT_EQ(s.plist().size(), 1u);
}

TEST(ObjectStateTest, PrepareConflictOnDifferentTimestamp) {
  // Figure 2 phase 2 step 3: a client gets ONE slot; a different t for
  // the same client is discarded. This is the wall against stockpiling
  // prepared writes (§3.2 attack 4).
  ObjectState s(1);
  EXPECT_TRUE(s.try_prepare(7, {1, 7}, h("a")));
  EXPECT_FALSE(s.try_prepare(7, {2, 7}, h("a")));
  EXPECT_EQ(s.plist().size(), 1u);
}

TEST(ObjectStateTest, PrepareConflictOnDifferentHash) {
  // Same timestamp, different value — the equivocation attack (§3.2
  // attack 1).
  ObjectState s(1);
  EXPECT_TRUE(s.try_prepare(7, {1, 7}, h("a")));
  EXPECT_FALSE(s.try_prepare(7, {1, 7}, h("b")));
}

TEST(ObjectStateTest, DifferentClientsGetIndependentSlots) {
  ObjectState s(1);
  EXPECT_TRUE(s.try_prepare(7, {1, 7}, h("a")));
  EXPECT_TRUE(s.try_prepare(8, {1, 8}, h("b")));
  EXPECT_EQ(s.plist().size(), 2u);
}

TEST(ObjectStateTest, StalePrepareNotAddedButReplied) {
  ObjectState s(1);
  s.absorb_write_certificate({5, 3});
  // t <= write_ts: harmless, replica replies but does not store.
  EXPECT_TRUE(s.try_prepare(7, {4, 7}, h("a")));
  EXPECT_TRUE(s.plist().empty());
}

TEST(ObjectStateTest, WriteCertificateGarbageCollectsPlist) {
  ObjectState s(1);
  ASSERT_TRUE(s.try_prepare(7, {1, 7}, h("a")));
  ASSERT_TRUE(s.try_prepare(8, {2, 8}, h("b")));
  ASSERT_TRUE(s.try_prepare(9, {3, 9}, h("c")));

  s.absorb_write_certificate({2, 8});
  // Entries with t <= <2,8> removed; client 9's survives.
  EXPECT_EQ(s.plist().size(), 1u);
  EXPECT_EQ(s.plist().count(9), 1u);

  // Client 7 can now prepare again (liveness: its old entry is gone).
  EXPECT_TRUE(s.try_prepare(7, {3, 7}, h("d")));
  EXPECT_EQ(s.plist().size(), 2u);
}

TEST(ObjectStateTest, WriteTsOnlyAdvances) {
  ObjectState s(1);
  s.absorb_write_certificate({5, 1});
  EXPECT_EQ(s.write_ts(), (Timestamp{5, 1}));
  s.absorb_write_certificate({3, 2});  // older cert: no regression
  EXPECT_EQ(s.write_ts(), (Timestamp{5, 1}));
  s.absorb_write_certificate({6, 1});
  EXPECT_EQ(s.write_ts(), (Timestamp{6, 1}));
}

TEST(ObjectStateTest, ApplyWriteOverwritesNewerOnly) {
  ObjectState s(1);
  EXPECT_TRUE(s.apply_write(to_bytes("v1"), cert_for(1, {1, 1}, "v1"), false));
  EXPECT_EQ(to_string(s.data()), "v1");
  EXPECT_EQ(s.pcert().ts(), (Timestamp{1, 1}));

  // Older write arrives late: state unchanged, reply still happens.
  EXPECT_FALSE(s.apply_write(to_bytes("v0"), cert_for(1, {0, 1}, "v0"), false));
  EXPECT_EQ(to_string(s.data()), "v1");

  EXPECT_TRUE(s.apply_write(to_bytes("v2"), cert_for(1, {2, 2}, "v2"), false));
  EXPECT_EQ(to_string(s.data()), "v2");
}

TEST(ObjectStateTest, EqualTimestampIgnoredInBaseMode) {
  ObjectState s(1);
  ASSERT_TRUE(s.apply_write(to_bytes("aaa"), cert_for(1, {1, 1}, "aaa"), false));
  EXPECT_FALSE(
      s.apply_write(to_bytes("zzz"), cert_for(1, {1, 1}, "zzz"), false));
  EXPECT_EQ(to_string(s.data()), "aaa");
}

TEST(ObjectStateTest, EqualTimestampLargerHashWinsInOptimizedMode) {
  // §6.2 phase 3: same timestamp, keep the larger hash — deterministic on
  // every replica, so replicas converge no matter the arrival order.
  ObjectState s1(1), s2(1);
  const char* a = "aaa";
  const char* b = "zzz";
  const bool a_bigger = crypto::compare_digests(h(a), h(b)) > 0;
  const char* small = a_bigger ? b : a;
  const char* big = a_bigger ? a : b;

  // Order 1: small then big.
  EXPECT_TRUE(s1.apply_write(to_bytes(small), cert_for(1, {1, 1}, small), true));
  EXPECT_TRUE(s1.apply_write(to_bytes(big), cert_for(1, {1, 1}, big), true));
  // Order 2: big then small.
  EXPECT_TRUE(s2.apply_write(to_bytes(big), cert_for(1, {1, 1}, big), true));
  EXPECT_FALSE(s2.apply_write(to_bytes(small), cert_for(1, {1, 1}, small), true));

  EXPECT_EQ(s1.data(), s2.data());
  EXPECT_EQ(to_string(s1.data()), big);
}

// ------------------------------------------------------------- optlist

TEST(ObjectStateTest, OptPrepareUsesSuccOfCurrentCert) {
  ObjectState s(1);
  auto t = s.try_opt_prepare(7, h("a"));
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(*t, (Timestamp{1, 7}));  // succ of genesis for client 7
  EXPECT_EQ(s.optlist().size(), 1u);
}

TEST(ObjectStateTest, OptPrepareIdempotent) {
  ObjectState s(1);
  auto t1 = s.try_opt_prepare(7, h("a"));
  auto t2 = s.try_opt_prepare(7, h("a"));
  ASSERT_TRUE(t1.has_value());
  ASSERT_TRUE(t2.has_value());
  EXPECT_EQ(*t1, *t2);
  EXPECT_EQ(s.optlist().size(), 1u);
}

TEST(ObjectStateTest, OptPrepareRejectsSecondHash) {
  ObjectState s(1);
  ASSERT_TRUE(s.try_opt_prepare(7, h("a")).has_value());
  EXPECT_FALSE(s.try_opt_prepare(7, h("b")).has_value());
}

TEST(ObjectStateTest, OptPrepareRejectsWhenNormalEntryDiffers) {
  // One slot per list, and the two entries must not contradict (§6.1).
  ObjectState s(1);
  ASSERT_TRUE(s.try_prepare(7, {1, 7}, h("a")));
  // Prediction would be <1,7> with hash "b": conflicts with plist entry.
  EXPECT_FALSE(s.try_opt_prepare(7, h("b")).has_value());
  // Same (t, h) as the plist entry is fine.
  EXPECT_TRUE(s.try_opt_prepare(7, h("a")).has_value());
}

TEST(ObjectStateTest, OptPrepareRefusedWhileDifferentPlistEntryHeld) {
  // §6.2: the replica prepares on the client's behalf "unless the client
  // already has an entry in either prepare list for a different
  // timestamp or hash" — an old normal-list entry blocks the optimistic
  // path (the client must fall back to phase 2).
  ObjectState s(1);
  ASSERT_TRUE(s.try_prepare(7, {1, 7}, h("a")));
  ASSERT_TRUE(s.apply_write(to_bytes("x"), cert_for(1, {5, 2}, "x"), false));
  EXPECT_FALSE(s.try_opt_prepare(7, h("b")).has_value());
}

TEST(ObjectStateTest, ClientMayHoldOneEntryPerListViaFallback) {
  // The two-entry state of §6.1 arises the other way around: an
  // optimistic prepare lands in optlist, the fast path fails, and the
  // client's fallback phase 2 — which ignores the optlist — adds a
  // (possibly different) entry to the normal list. This is exactly the
  // window that makes two lurking writes possible (§6.3).
  ObjectState s(1);
  auto t_opt = s.try_opt_prepare(7, h("a"));
  ASSERT_TRUE(t_opt.has_value());
  ASSERT_TRUE(s.try_prepare(7, {4, 7}, h("b")));
  EXPECT_EQ(s.plist().size(), 1u);
  EXPECT_EQ(s.optlist().size(), 1u);
  EXPECT_NE(s.plist().at(7), s.optlist().at(7));
}

TEST(ObjectStateTest, OptPrepareFailsWhenCertLagsWriteTs) {
  // Replica knows (via a write certificate) that <5,2> committed but its
  // own pcert is older: a prediction from stale state is refused.
  ObjectState s(1);
  s.absorb_write_certificate({5, 2});
  EXPECT_FALSE(s.try_opt_prepare(7, h("a")).has_value());
}

TEST(ObjectStateTest, WriteCertificateGarbageCollectsOptlist) {
  ObjectState s(1);
  ASSERT_TRUE(s.try_opt_prepare(7, h("a")).has_value());  // t = <1,7>
  ASSERT_TRUE(s.try_prepare(8, {2, 8}, h("b")));
  s.absorb_write_certificate({1, 7});
  EXPECT_TRUE(s.optlist().empty());
  EXPECT_EQ(s.plist().size(), 1u);  // <2,8> survives
}

TEST(ObjectStateTest, HasEntryChecksBothLists) {
  ObjectState s(1);
  EXPECT_FALSE(s.has_entry(7));
  ASSERT_TRUE(s.try_prepare(7, {1, 7}, h("a")));
  EXPECT_TRUE(s.has_entry(7));
  ObjectState s2(1);
  ASSERT_TRUE(s2.try_opt_prepare(7, h("a")).has_value());
  EXPECT_TRUE(s2.has_entry(7));
}

TEST(ObjectStateTest, StateBytesGrowsWithPlist) {
  ObjectState s(1);
  const std::size_t empty = s.state_bytes();
  for (ClientId c = 1; c <= 10; ++c) {
    ASSERT_TRUE(s.try_prepare(c, {1, c}, h("x")));
  }
  const std::size_t full = s.state_bytes();
  EXPECT_GT(full, empty);
  // O(#writers): linear growth, one fixed-size entry per client.
  EXPECT_EQ((full - empty) % 10, 0u);
}

// Property sweep: prepare-list size never exceeds the number of distinct
// clients, no matter the operation mix (the §3.3.1 state bound).
class PlistBoundTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PlistBoundTest, PlistBoundedByClients) {
  Rng rng(GetParam());
  ObjectState s(1);
  constexpr ClientId kClients = 8;
  Timestamp committed;
  for (int step = 0; step < 300; ++step) {
    const ClientId c = 1 + static_cast<ClientId>(rng.next_below(kClients));
    switch (rng.next_below(4)) {
      case 0:
        (void)s.try_prepare(c, s.pcert().ts().succ(c),
                            h(std::to_string(step).c_str()));
        break;
      case 1:
        (void)s.try_opt_prepare(c, h(std::to_string(step).c_str()));
        break;
      case 2: {
        const Timestamp t = s.pcert().ts().succ(c);
        const std::string v = "v" + std::to_string(step);
        (void)s.apply_write(to_bytes(v), cert_for(1, t, v.c_str()), true);
        break;
      }
      case 3:
        committed = s.pcert().ts();
        s.absorb_write_certificate(committed);
        break;
    }
    EXPECT_LE(s.plist().size(), kClients);
    EXPECT_LE(s.optlist().size(), kClients);
    // GC invariant: no surviving entry is at or below write_ts.
    for (const auto& [client, entry] : s.plist()) {
      EXPECT_GT(entry.t, s.write_ts());
    }
    for (const auto& [client, entry] : s.optlist()) {
      EXPECT_GT(entry.t, s.write_ts());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlistBoundTest,
                         ::testing::Values(1, 2, 3, 4, 5, 11, 42, 99));

// ---- crash recovery: ObjectState::recover merge rules ------------------

// Build a peer snapshot holding a written value at `ts` plus optional
// plist entries.
ObjectState peer_with_write(ObjectId obj, Timestamp ts, const char* value) {
  ObjectState s(obj);
  EXPECT_TRUE(s.apply_write(to_bytes(value), cert_for(obj, ts, value),
                            /*optimized_tiebreak=*/false));
  s.absorb_write_certificate(ts);
  return s;
}

TEST(ObjectStateRecoverTest, HighestCertifiedValueWins) {
  std::vector<ObjectState> peers;
  peers.push_back(peer_with_write(1, {3, 2}, "newest"));
  peers.push_back(peer_with_write(1, {1, 1}, "oldest"));
  peers.push_back(peer_with_write(1, {2, 1}, "middle"));
  const ObjectState r = ObjectState::recover(1, peers, /*f=*/1);
  EXPECT_EQ(r.pcert().ts(), (Timestamp{3, 2}));
  EXPECT_EQ(r.data(), to_bytes("newest"));
}

TEST(ObjectStateRecoverTest, PlistIsUnionOfSnapshots) {
  // Lemma 1 only guarantees a certified prepare appears in >=1 of any
  // 2f+1 snapshots, so recovery must union the lists: a threshold above
  // one would forget a real lurking prepare and break the bound.
  ObjectState a(1), b(1), c(1);
  EXPECT_TRUE(a.try_prepare(7, {1, 7}, h("x")));
  EXPECT_TRUE(b.try_prepare(9, {1, 9}, h("y")));
  const ObjectState r = ObjectState::recover(1, {a, b, c}, /*f=*/1);
  EXPECT_EQ(r.plist().size(), 2u);
  EXPECT_EQ(r.plist().at(7).t, (Timestamp{1, 7}));
  EXPECT_EQ(r.plist().at(9).t, (Timestamp{1, 9}));
}

TEST(ObjectStateRecoverTest, FirstClaimPerClientWinsInPeerOrder) {
  // Two snapshots claim different entries for the same client (one of
  // them is lying or stale). Peers are passed in replica-index order, so
  // the earlier snapshot's claim is adopted deterministically.
  ObjectState a(1), b(1);
  EXPECT_TRUE(a.try_prepare(7, {2, 7}, h("a-claim")));
  EXPECT_TRUE(b.try_prepare(7, {3, 7}, h("b-claim")));
  const ObjectState r = ObjectState::recover(1, {a, b}, /*f=*/0);
  ASSERT_EQ(r.plist().size(), 1u);
  EXPECT_EQ(r.plist().at(7).t, (Timestamp{2, 7}));
}

TEST(ObjectStateRecoverTest, WriteTsIsFPlusFirstLargestClaim) {
  // A faulty peer inflating write_ts must not drag the frontier past
  // what a correct peer vouches for: adopt the (f+1)-th largest claim.
  ObjectState honest1 = peer_with_write(1, {2, 1}, "v2");
  ObjectState honest2 = peer_with_write(1, {2, 1}, "v2");
  ObjectState liar = peer_with_write(1, {9, 6}, "forged-frontier");
  const ObjectState r =
      ObjectState::recover(1, {liar, honest1, honest2}, /*f=*/1);
  // Sorted claims: 9, 2, 2 -> claims[1] = 2. The liar's inflated
  // frontier is ignored; the value merge still prefers its (validated
  // by the caller in production) higher cert, which is one-sided safe.
  EXPECT_EQ(r.write_ts(), (Timestamp{2, 1}));
}

TEST(ObjectStateRecoverTest, AdoptedFrontierGarbageCollectsStalePrepares) {
  // A prepare at or below the adopted write frontier is dead (its write
  // completed or was superseded); recovery GCs it exactly as absorbing a
  // live write certificate would.
  ObjectState a = peer_with_write(1, {3, 1}, "current");
  ObjectState b(1);
  EXPECT_TRUE(b.try_prepare(7, {2, 7}, h("stale")));   // below frontier
  EXPECT_TRUE(b.try_prepare(9, {4, 9}, h("alive")));   // above frontier
  ObjectState c = peer_with_write(1, {3, 1}, "current");
  const ObjectState r = ObjectState::recover(1, {a, b, c}, /*f=*/1);
  EXPECT_EQ(r.write_ts(), (Timestamp{3, 1}));
  EXPECT_EQ(r.plist().count(7), 0u);
  ASSERT_EQ(r.plist().count(9), 1u);
  EXPECT_EQ(r.plist().at(9).t, (Timestamp{4, 9}));
}

TEST(ObjectStateRecoverTest, EmptyPeerSetYieldsGenesis) {
  const ObjectState r = ObjectState::recover(5, {}, /*f=*/1);
  EXPECT_TRUE(r.pcert().is_genesis());
  EXPECT_TRUE(r.data().empty());
  EXPECT_TRUE(r.plist().empty());
  EXPECT_TRUE(r.write_ts().is_zero());
}

}  // namespace
}  // namespace bftbc::core
