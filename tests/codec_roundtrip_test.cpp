// Property-based codec round-trips for every protocol message and
// certificate: randomly populated instances must encode → decode →
// encode byte-identically, and any strict prefix of a valid encoding
// must fail to decode (never crash, never half-succeed) — the wire
// format has no optional tail a truncation could silently drop.
#include <gtest/gtest.h>

#include <optional>

#include "bftbc/messages.h"
#include "quorum/certificate.h"
#include "util/codec.h"
#include "util/rng.h"

namespace bftbc::core {
namespace {

Bytes random_bytes(Rng& rng, std::size_t max_len) {
  Bytes b(rng.next_below(max_len + 1));
  for (auto& byte : b) byte = static_cast<std::uint8_t>(rng.next_u64());
  return b;
}

crypto::Digest random_digest(Rng& rng) {
  crypto::Digest d{};
  for (auto& byte : d) byte = static_cast<std::uint8_t>(rng.next_u64());
  return d;
}

crypto::Nonce random_nonce(Rng& rng) {
  crypto::Nonce n;
  n.principal = rng.next_u32();
  n.counter = rng.next_u64();
  n.random = rng.next_u64();
  return n;
}

Timestamp random_ts(Rng& rng) {
  return Timestamp{rng.next_below(1 << 20), rng.next_u32()};
}

quorum::SignatureSet random_sigset(Rng& rng) {
  quorum::SignatureSet set;
  const std::size_t count = rng.next_below(4);
  for (std::size_t i = 0; i < count; ++i) {
    set[static_cast<quorum::ReplicaId>(rng.next_below(7))] =
        random_bytes(rng, 48);
  }
  return set;
}

PrepareCertificate random_pcert(Rng& rng) {
  return PrepareCertificate(rng.next_u64(), random_ts(rng),
                            random_digest(rng), random_sigset(rng));
}

WriteCertificate random_wcert(Rng& rng) {
  return WriteCertificate(rng.next_u64(), random_ts(rng), random_sigset(rng));
}

std::optional<WriteCertificate> random_opt_wcert(Rng& rng) {
  if (rng.next_bool(0.5)) return std::nullopt;
  return random_wcert(rng);
}

// For each message type: encode a random instance, decode it, re-encode,
// compare bytes; then check every strict prefix fails to decode.
template <typename Msg>
void check_roundtrip_and_truncation(const Msg& msg) {
  const Bytes wire = msg.encode();
  const auto decoded = Msg::decode(BytesView(wire.data(), wire.size()));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->encode(), wire);
  for (std::size_t cut = 0; cut < wire.size(); ++cut) {
    EXPECT_FALSE(
        Msg::decode(BytesView(wire.data(), cut)).has_value())
        << "prefix of length " << cut << "/" << wire.size() << " decoded";
  }
}

TEST(CodecRoundtripTest, AllMessagesRoundTripAndRejectTruncation) {
  Rng rng(20260806);
  for (int iter = 0; iter < 40; ++iter) {
    {
      ReadTsRequest m;
      m.object = rng.next_u64();
      m.nonce = random_nonce(rng);
      check_roundtrip_and_truncation(m);
    }
    {
      ReadTsReply m;
      m.object = rng.next_u64();
      m.nonce = random_nonce(rng);
      m.pcert = random_pcert(rng);
      m.strong_write_sig = random_bytes(rng, 40);
      m.replica = rng.next_u32();
      m.auth = random_bytes(rng, 40);
      check_roundtrip_and_truncation(m);
    }
    {
      PrepareRequest m;
      m.object = rng.next_u64();
      m.t = random_ts(rng);
      m.hash = random_digest(rng);
      m.prep_cert = random_pcert(rng);
      m.write_cert = random_opt_wcert(rng);
      m.client = rng.next_u32();
      m.sig = random_bytes(rng, 40);
      check_roundtrip_and_truncation(m);
    }
    {
      PrepareReply m;
      m.object = rng.next_u64();
      m.t = random_ts(rng);
      m.hash = random_digest(rng);
      m.replica = rng.next_u32();
      m.sig = random_bytes(rng, 40);
      check_roundtrip_and_truncation(m);
    }
    {
      WriteRequest m;
      m.object = rng.next_u64();
      m.value = random_bytes(rng, 64);
      m.prep_cert = random_pcert(rng);
      m.client = rng.next_u32();
      m.sig = random_bytes(rng, 40);
      check_roundtrip_and_truncation(m);
    }
    {
      WriteReply m;
      m.object = rng.next_u64();
      m.ts = random_ts(rng);
      m.replica = rng.next_u32();
      m.sig = random_bytes(rng, 40);
      check_roundtrip_and_truncation(m);
    }
    {
      ReadRequest m;
      m.object = rng.next_u64();
      m.nonce = random_nonce(rng);
      m.write_cert = random_opt_wcert(rng);
      check_roundtrip_and_truncation(m);
    }
    {
      ReadReply m;
      m.object = rng.next_u64();
      m.value = random_bytes(rng, 64);
      m.pcert = random_pcert(rng);
      m.nonce = random_nonce(rng);
      m.replica = rng.next_u32();
      m.auth = random_bytes(rng, 40);
      check_roundtrip_and_truncation(m);
    }
    {
      ReadTsPrepRequest m;
      m.object = rng.next_u64();
      m.hash = random_digest(rng);
      m.write_cert = random_opt_wcert(rng);
      m.nonce = random_nonce(rng);
      m.client = rng.next_u32();
      m.sig = random_bytes(rng, 40);
      check_roundtrip_and_truncation(m);
    }
    {
      ReadTsPrepReply m;
      m.object = rng.next_u64();
      m.nonce = random_nonce(rng);
      m.pcert = random_pcert(rng);
      m.prepared = rng.next_bool(0.5);
      m.predicted_t = random_ts(rng);
      m.hash = random_digest(rng);
      m.prepare_sig = random_bytes(rng, 40);
      m.strong_write_sig = random_bytes(rng, 40);
      m.replica = rng.next_u32();
      m.auth = random_bytes(rng, 40);
      check_roundtrip_and_truncation(m);
    }
    {
      ReplyBatch m;
      m.replica = rng.next_u32();
      const std::size_t count = rng.next_below(4);
      for (std::size_t i = 0; i < count; ++i) {
        m.replies.push_back(random_bytes(rng, 48));
      }
      m.auth = random_bytes(rng, 40);
      check_roundtrip_and_truncation(m);
    }
  }
}

// Certificates encode through Writer/Reader rather than standalone
// buffers; decoding a truncated stream must trip the Reader's fail bit
// and never fabricate signatures.
TEST(CodecRoundtripTest, CertificatesRoundTripThroughWriterReader) {
  Rng rng(31415926);
  for (int iter = 0; iter < 60; ++iter) {
    const PrepareCertificate pc = random_pcert(rng);
    Writer w;
    pc.encode(w);
    const Bytes wire = std::move(w).take();
    Reader r(BytesView(wire.data(), wire.size()));
    const PrepareCertificate back = PrepareCertificate::decode(r);
    ASSERT_TRUE(r.done());
    EXPECT_EQ(back, pc);

    for (std::size_t cut = 0; cut < wire.size(); ++cut) {
      Reader rt(BytesView(wire.data(), cut));
      (void)PrepareCertificate::decode(rt);  // must not crash
      EXPECT_FALSE(rt.done()) << "prefix " << cut << " decoded cleanly";
    }

    const WriteCertificate wc = random_wcert(rng);
    Writer w2;
    wc.encode(w2);
    const Bytes wire2 = std::move(w2).take();
    Reader r2(BytesView(wire2.data(), wire2.size()));
    const WriteCertificate back2 = WriteCertificate::decode(r2);
    ASSERT_TRUE(r2.done());
    EXPECT_EQ(back2, wc);
  }
}

// Random single-byte corruptions must never crash the decoder; they may
// legitimately still decode (a flipped bit inside a value payload), so
// only absence-of-crash and re-encode consistency are asserted.
TEST(CodecRoundtripTest, RandomCorruptionNeverCrashes) {
  Rng rng(27182818);
  for (int iter = 0; iter < 200; ++iter) {
    PrepareRequest m;
    m.object = rng.next_u64();
    m.t = random_ts(rng);
    m.hash = random_digest(rng);
    m.prep_cert = random_pcert(rng);
    m.write_cert = random_opt_wcert(rng);
    m.client = rng.next_u32();
    m.sig = random_bytes(rng, 40);
    Bytes wire = m.encode();
    const std::size_t pos = rng.next_below(wire.size());
    wire[pos] ^= static_cast<std::uint8_t>(1 + rng.next_below(255));
    const auto decoded =
        PrepareRequest::decode(BytesView(wire.data(), wire.size()));
    if (decoded.has_value()) {
      // If it decodes, re-encoding must be stable (no partially-read
      // state leaking into the struct).
      const Bytes re = decoded->encode();
      EXPECT_EQ(re, decoded->encode());
    }
  }
}

}  // namespace
}  // namespace bftbc::core
