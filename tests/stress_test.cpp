// Randomized whole-system stress test ("nemesis" style): concurrent
// clients, message loss/duplication/corruption, replica crashes and
// recoveries, partitions, a Byzantine replica, and a Byzantine client
// with a colluder — all at once, across many seeds, each run validated
// by the BFT-linearizability checker.
//
// This is the closest thing to the paper's implicit claim: the protocol
// composes all its defenses simultaneously, not one attack at a time.
#include <functional>
#include <gtest/gtest.h>

#include <string_view>
#include <vector>

#include "checker/bft_linearizability.h"
#include "faults/byzantine_client.h"
#include "faults/byzantine_replica.h"
#include "harness/cluster.h"
#include "util/flags.h"

namespace bftbc {

// --seed override: 0 means "run the built-in seed table". Set in main()
// before InitGoogleTest materializes the parameter generators; a single
// seed runs in both base and optimized modes.
std::uint64_t g_seed_override = 0;

namespace {

using checker::History;
using harness::Cluster;
using harness::ClusterOptions;

struct StressParam {
  std::uint64_t seed;
  bool optimized;
};

class StressTest : public ::testing::TestWithParam<StressParam> {};

TEST_P(StressTest, ChaosRunStaysBftLinearizable) {
  const StressParam param = GetParam();
  SCOPED_TRACE(::testing::Message()
               << "reproduce with: --seed " << param.seed);
  Rng meta(param.seed);

  ClusterOptions o;
  o.f = 1;
  o.seed = param.seed;
  o.optimized = param.optimized;
  o.link.loss_probability = 0.05;
  o.link.duplicate_probability = 0.05;
  o.link.corrupt_probability = 0.01;
  // One Byzantine replica (species by seed), within the f budget.
  const int species = static_cast<int>(meta.next_below(4));
  o.replica_factories[3] =
      [species](const quorum::QuorumConfig& cfg, quorum::ReplicaId id,
                crypto::Keystore& ks, rpc::Transport& t, sim::Simulator& s,
                const core::ReplicaOptions& opts)
      -> std::unique_ptr<core::Replica> {
    switch (species) {
      case 0:
        return std::make_unique<faults::SilentReplica>(cfg, id, ks, t, s, opts);
      case 1:
        return std::make_unique<faults::StaleReplica>(cfg, id, ks, t, s, opts);
      case 2:
        return std::make_unique<faults::GarbageSigReplica>(cfg, id, ks, t, s,
                                                           opts);
      default:
        return std::make_unique<faults::FlipValueReplica>(cfg, id, ks, t, s,
                                                          opts);
    }
  };
  Cluster cluster(o);
  History history;

  constexpr int kClients = 4;
  constexpr int kOpsPerClient = 15;
  constexpr quorum::ObjectId kObjects[] = {1, 2};

  // --- concurrent good clients, each chaining random ops ---------------
  int completed = 0;
  int failed = 0;
  std::vector<core::Client*> clients;
  std::vector<Rng> client_rngs;
  for (int c = 1; c <= kClients; ++c) {
    clients.push_back(&cluster.add_client(static_cast<quorum::ClientId>(c)));
    client_rngs.push_back(cluster.rng().split());
  }

  std::function<void(int, int)> step = [&](int c, int op) {
    if (op >= kOpsPerClient) return;
    Rng& rng = client_rngs[static_cast<std::size_t>(c)];
    core::Client& client = *clients[static_cast<std::size_t>(c)];
    const quorum::ObjectId object = kObjects[rng.next_below(2)];
    if (rng.next_bool(0.5)) {
      const Bytes value = to_bytes("c" + std::to_string(c + 1) + "op" +
                                   std::to_string(op));
      const std::size_t token = history.begin_write(
          client.id(), object, cluster.sim().now(), value);
      client.write(object, value,
                   [&, token, c, op](Result<core::Client::WriteResult> r) {
                     if (r.is_ok()) {
                       history.end_write(token, cluster.sim().now(),
                                         r.value().ts);
                       ++completed;
                     } else {
                       history.abort(token);
                       ++failed;
                     }
                     step(c, op + 1);
                   });
    } else {
      const std::size_t token =
          history.begin_read(client.id(), object, cluster.sim().now());
      client.read(object,
                  [&, token, c, op](Result<core::Client::ReadResult> r) {
                    if (r.is_ok()) {
                      history.end_read(token, cluster.sim().now(),
                                       r.value().ts, r.value().hash,
                                       r.value().value);
                      ++completed;
                    } else {
                      history.abort(token);
                      ++failed;
                    }
                    step(c, op + 1);
                  });
    }
  };
  for (int c = 0; c < kClients; ++c) step(c, 0);

  // --- nemesis: crash/recover one replica, flap a partition ------------
  // Only replicas 0..2 are crash candidates (replica 3 is Byzantine and
  // the two together would exceed f=1), and only one is down at a time.
  const quorum::ReplicaId crash_victim =
      static_cast<quorum::ReplicaId>(meta.next_below(3));
  cluster.sim().schedule(40 * sim::kMillisecond,
                         [&] { cluster.crash_replica(crash_victim); });
  cluster.sim().schedule(120 * sim::kMillisecond,
                         [&] { cluster.recover_replica(crash_victim); });
  cluster.sim().schedule(160 * sim::kMillisecond, [&] {
    cluster.net().partition(crash_victim, harness::client_node(1));
  });
  cluster.sim().schedule(240 * sim::kMillisecond,
                         [&] { cluster.net().heal_all(); });

  // --- Byzantine client: stash, stop, collude --------------------------
  auto attack_transport = cluster.make_transport(harness::client_node(66));
  faults::LurkingWriteStasher stasher(cluster.config(), 66,
                                      cluster.keystore(), *attack_transport,
                                      cluster.sim(), cluster.replica_nodes(),
                                      cluster.rng().split());
  auto colluder_transport = cluster.make_transport(harness::client_node(67));
  faults::Colluder colluder(*colluder_transport, cluster.replica_nodes());
  bool attack_done = false;
  cluster.sim().schedule(20 * sim::kMillisecond, [&] {
    stasher.attack(1, 3, param.optimized,
                   [&](faults::LurkingWriteStasher::Outcome out) {
                     for (auto& env : out.stashed)
                       colluder.stash(std::move(env));
                     cluster.stop_client(66);
                     history.record_stop(66, cluster.sim().now());
                     attack_done = true;
                   });
  });
  cluster.sim().schedule(200 * sim::kMillisecond, [&] { colluder.unleash(); });

  // --- run to completion ------------------------------------------------
  const bool finished = cluster.run_until(
      [&] {
        return completed + failed == kClients * kOpsPerClient && attack_done;
      },
      40'000'000);
  ASSERT_TRUE(finished) << "ops or attack did not finish (seed "
                        << param.seed << ")";
  // Liveness: nothing should have failed (no deadlines are set, and the
  // protocol is live under these fault rates).
  EXPECT_EQ(failed, 0);

  // A few final quiescent reads so lurking writes get a chance to show.
  cluster.settle();
  auto& reader = cluster.add_client(10);
  for (quorum::ObjectId obj : kObjects) {
    const std::size_t token =
        history.begin_read(reader.id(), obj, cluster.sim().now());
    auto r = cluster.read(reader, obj);
    ASSERT_TRUE(r.is_ok());
    history.end_read(token, cluster.sim().now(), r.value().ts,
                     r.value().hash, r.value().value);
  }

  const auto check = checker::check_bft_linearizability(history, {66});
  EXPECT_TRUE(check.linearizable)
      << "seed " << param.seed << ": " << check.summary() << "\n"
      << (check.violations.empty() ? "" : check.violations.front());
  EXPECT_TRUE(check.reads_authentic) << check.summary();
  const int max_b = param.optimized ? 2 : 1;
  EXPECT_TRUE(check.ok(max_b)) << "seed " << param.seed << ": "
                               << check.summary();
}

std::vector<StressParam> make_params() {
  std::vector<StressParam> params;
  if (g_seed_override != 0) {
    params.push_back({g_seed_override, false});
    params.push_back({g_seed_override, true});
    return params;
  }
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    params.push_back({seed * 7919, seed % 2 == 0});
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(Seeds, StressTest, ::testing::ValuesIn(make_params()),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param.seed) +
                                  (info.param.optimized ? "_opt" : "_base");
                         });

}  // namespace
}  // namespace bftbc

// Custom main: gtest materializes parameterized suites inside
// InitGoogleTest, so --seed must be pulled out of argv FIRST; the
// remaining (gtest) flags are then handed to gtest untouched.
int main(int argc, char** argv) {
  std::vector<char*> ours{argv[0]};
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    if (arg.rfind("--seed", 0) == 0) {
      ours.push_back(argv[i]);
      if (arg == "--seed" && i + 1 < argc) ours.push_back(argv[++i]);
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;

  bftbc::FlagSet flags;
  auto& seed = flags.add_u64(
      "seed", 0, "run only this stress seed, both modes (0 = full table)");
  int ours_argc = static_cast<int>(ours.size());
  flags.parse(ours_argc, ours.data());
  bftbc::g_seed_override = *seed;

  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
