// Tests for the discrete-event simulator and network model.
#include <gtest/gtest.h>

#include "sim/network.h"
#include "sim/simulator.h"

namespace bftbc::sim {
namespace {

TEST(SimulatorTest, EventsRunInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule(30, [&] { order.push_back(3); });
  sim.schedule(10, [&] { order.push_back(1); });
  sim.schedule(20, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30u);
}

TEST(SimulatorTest, SameTimeIsFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule(5, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(SimulatorTest, NestedScheduling) {
  Simulator sim;
  int fired = 0;
  sim.schedule(10, [&] {
    ++fired;
    sim.schedule(10, [&] { ++fired; });
  });
  sim.run();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.now(), 20u);
}

TEST(SimulatorTest, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  TimerId id = sim.schedule(10, [&] { fired = true; });
  sim.cancel(id);
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(SimulatorTest, CancelAfterFireIsNoop) {
  Simulator sim;
  int fired = 0;
  TimerId id = sim.schedule(10, [&] { ++fired; });
  sim.run();
  sim.cancel(id);  // must not crash or affect anything
  EXPECT_EQ(fired, 1);
}

TEST(SimulatorTest, RunUntilStopsAtDeadline) {
  Simulator sim;
  int fired = 0;
  sim.schedule(10, [&] { ++fired; });
  sim.schedule(20, [&] { ++fired; });
  sim.schedule(30, [&] { ++fired; });
  EXPECT_EQ(sim.run_until(20), 2u);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.now(), 20u);
  sim.run();
  EXPECT_EQ(fired, 3);
}

TEST(SimulatorTest, RunUntilAdvancesClockWhenIdle) {
  Simulator sim;
  sim.run_until(12345);
  EXPECT_EQ(sim.now(), 12345u);
}

TEST(SimulatorTest, RunWhilePendingStopsOnPredicate) {
  Simulator sim;
  int count = 0;
  for (int i = 0; i < 100; ++i) sim.schedule(i, [&] { ++count; });
  const bool still_pending =
      sim.run_while_pending([&] { return count < 5; });
  EXPECT_FALSE(still_pending);
  EXPECT_EQ(count, 5);
}

TEST(SimulatorTest, StepReturnsFalseWhenEmpty) {
  Simulator sim;
  EXPECT_FALSE(sim.step());
  sim.schedule(1, [] {});
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
}

TEST(SimulatorTest, ExecutedEventsCounts) {
  Simulator sim;
  for (int i = 0; i < 7; ++i) sim.schedule(i, [] {});
  sim.run();
  EXPECT_EQ(sim.executed_events(), 7u);
}

// ------------------------------------------------------------- network

class NetworkTest : public ::testing::Test {
 protected:
  NetworkTest() : net_(sim_, Rng(42), LinkConfig{}) {}

  Simulator sim_;
  Network net_;
};

TEST_F(NetworkTest, DeliversRegisteredNode) {
  std::vector<std::string> got;
  net_.register_node(1, [&](NodeId from, const EncodedMessage& payload) {
    EXPECT_EQ(from, 0u);
    got.push_back(to_string(payload.view()));
  });
  net_.send(0, 1, to_bytes("hi"));
  sim_.run();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], "hi");
}

TEST_F(NetworkTest, UnregisteredNodeDropsSilently) {
  net_.send(0, 99, to_bytes("void"));
  sim_.run();
  EXPECT_EQ(net_.counters().get("msgs_dropped"), 1u);
}

TEST_F(NetworkTest, DelayRespectsBaseFloor) {
  LinkConfig cfg;
  cfg.base_delay = 1000;
  cfg.jitter_mean = 0;
  net_.set_default_link(cfg);
  Time delivered_at = 0;
  net_.register_node(
      1, [&](NodeId, const EncodedMessage&) { delivered_at = sim_.now(); });
  net_.send(0, 1, to_bytes("x"));
  sim_.run();
  EXPECT_EQ(delivered_at, 1000u);
}

TEST_F(NetworkTest, TotalLossDropsEverything) {
  LinkConfig cfg;
  cfg.loss_probability = 1.0;
  net_.set_default_link(cfg);
  int got = 0;
  net_.register_node(1, [&](NodeId, const EncodedMessage&) { ++got; });
  for (int i = 0; i < 20; ++i) net_.send(0, 1, to_bytes("x"));
  sim_.run();
  EXPECT_EQ(got, 0);
  EXPECT_EQ(net_.counters().get("msgs_dropped"), 20u);
}

TEST_F(NetworkTest, PartialLossApproximatesProbability) {
  LinkConfig cfg;
  cfg.loss_probability = 0.3;
  net_.set_default_link(cfg);
  int got = 0;
  net_.register_node(1, [&](NodeId, const EncodedMessage&) { ++got; });
  for (int i = 0; i < 2000; ++i) net_.send(0, 1, to_bytes("x"));
  sim_.run();
  EXPECT_GT(got, 1250);
  EXPECT_LT(got, 1550);
}

TEST_F(NetworkTest, DuplicationDeliversTwice) {
  LinkConfig cfg;
  cfg.duplicate_probability = 1.0;
  net_.set_default_link(cfg);
  int got = 0;
  net_.register_node(1, [&](NodeId, const EncodedMessage&) { ++got; });
  net_.send(0, 1, to_bytes("x"));
  sim_.run();
  EXPECT_EQ(got, 2);
}

TEST_F(NetworkTest, CorruptionFlipsBytes) {
  LinkConfig cfg;
  cfg.corrupt_probability = 1.0;
  net_.set_default_link(cfg);
  Bytes got;
  net_.register_node(
      1, [&](NodeId, const EncodedMessage& payload) { got = payload.copy(); });
  net_.send(0, 1, to_bytes("AAAA"));
  sim_.run();
  ASSERT_EQ(got.size(), 4u);
  EXPECT_NE(to_string(got), "AAAA");
}

TEST_F(NetworkTest, JitterReordersMessages) {
  LinkConfig cfg;
  cfg.base_delay = 100;
  cfg.jitter_mean = 10000;
  net_.set_default_link(cfg);
  std::vector<int> arrival;
  net_.register_node(1, [&](NodeId, const EncodedMessage& payload) {
    arrival.push_back(payload.view()[0]);
  });
  for (int i = 0; i < 50; ++i) net_.send(0, 1, Bytes{std::uint8_t(i)});
  sim_.run();
  ASSERT_EQ(arrival.size(), 50u);
  EXPECT_FALSE(std::is_sorted(arrival.begin(), arrival.end()));
}

TEST_F(NetworkTest, PartitionBlocksBothDirections) {
  int got = 0;
  net_.register_node(1, [&](NodeId, const EncodedMessage&) { ++got; });
  net_.register_node(2, [&](NodeId, const EncodedMessage&) { ++got; });
  net_.partition(1, 2);
  EXPECT_TRUE(net_.is_partitioned(1, 2));
  EXPECT_TRUE(net_.is_partitioned(2, 1));
  net_.send(1, 2, to_bytes("x"));
  net_.send(2, 1, to_bytes("y"));
  sim_.run();
  EXPECT_EQ(got, 0);

  net_.heal(1, 2);
  net_.send(1, 2, to_bytes("x"));
  sim_.run();
  EXPECT_EQ(got, 1);
}

TEST_F(NetworkTest, PartitionGroupAndHealAll) {
  int got = 0;
  for (NodeId n : {1u, 2u, 3u, 4u}) {
    net_.register_node(n, [&](NodeId, const EncodedMessage&) { ++got; });
  }
  net_.partition_group({1, 2}, {3, 4});
  net_.send(1, 3, to_bytes("x"));
  net_.send(2, 4, to_bytes("x"));
  net_.send(1, 2, to_bytes("x"));  // same side: flows
  sim_.run();
  EXPECT_EQ(got, 1);
  net_.heal_all();
  net_.send(1, 3, to_bytes("x"));
  sim_.run();
  EXPECT_EQ(got, 2);
}

TEST_F(NetworkTest, CrashedNodeDropsDeliveries) {
  int got = 0;
  net_.register_node(1, [&](NodeId, const EncodedMessage&) { ++got; });
  net_.crash(1);
  net_.send(0, 1, to_bytes("x"));
  sim_.run();
  EXPECT_EQ(got, 0);
  net_.recover(1);
  net_.send(0, 1, to_bytes("x"));
  sim_.run();
  EXPECT_EQ(got, 1);
}

TEST_F(NetworkTest, CrashMidFlightDropsAtDelivery) {
  // Message sent while alive, node crashes before the delivery event.
  LinkConfig cfg;
  cfg.base_delay = 1000;
  cfg.jitter_mean = 0;
  net_.set_default_link(cfg);
  int got = 0;
  net_.register_node(1, [&](NodeId, const EncodedMessage&) { ++got; });
  net_.send(0, 1, to_bytes("x"));
  net_.crash(1);
  sim_.run();
  EXPECT_EQ(got, 0);
}

TEST_F(NetworkTest, CountersTrackTraffic) {
  net_.register_node(1, [](NodeId, const EncodedMessage&) {});
  net_.send(0, 1, to_bytes("abcde"));
  sim_.run();
  EXPECT_EQ(net_.counters().get("msgs_sent"), 1u);
  EXPECT_EQ(net_.counters().get("msgs_delivered"), 1u);
  EXPECT_EQ(net_.counters().get("bytes_sent"), 5u);
  EXPECT_EQ(net_.counters().get("bytes_delivered"), 5u);
}

TEST_F(NetworkTest, DeterministicAcrossRuns) {
  auto run_once = [](std::uint64_t seed) {
    Simulator sim;
    LinkConfig cfg;
    cfg.loss_probability = 0.2;
    cfg.duplicate_probability = 0.1;
    Network net(sim, Rng(seed), cfg);
    std::vector<std::pair<Time, std::uint8_t>> log;
    net.register_node(1, [&](NodeId, const EncodedMessage& p) {
      log.emplace_back(sim.now(), p.view()[0]);
    });
    for (int i = 0; i < 100; ++i) net.send(0, 1, Bytes{std::uint8_t(i)});
    sim.run();
    return log;
  };
  EXPECT_EQ(run_once(7), run_once(7));
  EXPECT_NE(run_once(7), run_once(8));
}

TEST_F(NetworkTest, UnregisterDropsInFlightDeliveries) {
  // Messages already scheduled for delivery must be dropped — not
  // delivered to a dead handler, not crash — when the destination
  // unregisters before they arrive.
  int got = 0;
  net_.register_node(1, [&](NodeId, const EncodedMessage&) { ++got; });
  for (int i = 0; i < 5; ++i) net_.send(0, 1, to_bytes("in-flight"));
  net_.unregister_node(1);
  sim_.run();
  EXPECT_EQ(got, 0);
  EXPECT_EQ(net_.counters().get("msgs_dropped"), 5u);
}

TEST_F(NetworkTest, ReregisterAfterUnregisterResumesDelivery) {
  int got = 0;
  net_.register_node(1, [&](NodeId, const EncodedMessage&) { ++got; });
  net_.send(0, 1, to_bytes("one"));
  net_.unregister_node(1);
  sim_.run();
  EXPECT_EQ(got, 0);

  // A fresh registration under the same id receives new traffic; the
  // dropped in-flight message stays dropped.
  net_.register_node(1, [&](NodeId, const EncodedMessage&) { ++got; });
  net_.send(0, 1, to_bytes("two"));
  sim_.run();
  EXPECT_EQ(got, 1);
  EXPECT_EQ(net_.counters().get("msgs_delivered"), 1u);
}

TEST_F(NetworkTest, UnregisterInsideHandlerIsSafe) {
  // A node unregistering itself while handling a delivery must not
  // corrupt the delivery of messages already in flight to it.
  int got = 0;
  net_.register_node(1, [&](NodeId, const EncodedMessage&) {
    ++got;
    net_.unregister_node(1);
  });
  net_.send(0, 1, to_bytes("a"));
  net_.send(0, 1, to_bytes("b"));
  net_.send(0, 1, to_bytes("c"));
  sim_.run();
  EXPECT_EQ(got, 1);
  EXPECT_EQ(net_.counters().get("msgs_dropped"), 2u);
}

}  // namespace
}  // namespace bftbc::sim
