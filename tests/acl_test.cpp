// Access-control-list tests (§3.1: "Replicas allow write requests only
// from authorized clients"; §1: the administrator removes a bad client
// from the access control list).
#include <gtest/gtest.h>

#include "faults/byzantine_client.h"
#include "harness/cluster.h"

namespace bftbc {
namespace {

using harness::Cluster;
using harness::ClusterOptions;

ClusterOptions acl_options(std::uint64_t seed = 1) {
  ClusterOptions o;
  o.seed = seed;
  o.replica.enforce_acl = true;
  o.client_defaults.op_deadline = 2 * sim::kSecond;
  return o;
}

TEST(AclTest, AuthorizedClientWrites) {
  Cluster cluster(acl_options());
  auto& c = cluster.add_client(1);  // harness authorizes
  ASSERT_TRUE(cluster.write(c, 1, to_bytes("allowed")).is_ok());
  auto r = cluster.read(c, 1);
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(to_string(r.value().value), "allowed");
}

TEST(AclTest, UnauthorizedClientCannotPrepare) {
  Cluster cluster(acl_options(2));
  // A principal with a real key but NOT on the ACL: its PREPAREs are
  // silently dropped at every replica and the write times out.
  auto transport = cluster.make_transport(harness::client_node(66));
  faults::PartialWriter attacker(cluster.config(), 66, cluster.keystore(),
                                 *transport, cluster.sim(),
                                 cluster.replica_nodes(),
                                 cluster.rng().split());
  bool done = false, prepared = true;
  attacker.attack(1, to_bytes("intrusion"), [&](bool p) {
    prepared = p;
    done = true;
  });
  ASSERT_TRUE(cluster.run_until([&] { return done; }));
  EXPECT_FALSE(prepared);
  std::uint64_t drops = 0;
  for (quorum::ReplicaId r = 0; r < cluster.config().n; ++r) {
    drops += cluster.replica(r).metrics().get("drop_unauthorized");
  }
  EXPECT_GT(drops, 0u);
}

TEST(AclTest, UnauthorizedClientCanStillRead) {
  // Reads are answered unconditionally (§5.1 liveness relies on it).
  Cluster cluster(acl_options(3));
  auto& writer = cluster.add_client(1);
  ASSERT_TRUE(cluster.write(writer, 1, to_bytes("public")).is_ok());

  core::ClientOptions copts;
  copts.op_deadline = 2 * sim::kSecond;
  auto& outsider = cluster.add_client(200, copts);
  // Strip the authorization the harness granted: a pure reader.
  for (quorum::ReplicaId r = 0; r < cluster.config().n; ++r) {
    cluster.replica(r).deauthorize(200);
  }
  auto read = cluster.read(outsider, 1);
  ASSERT_TRUE(read.is_ok());
  EXPECT_EQ(to_string(read.value().value), "public");
}

TEST(AclTest, DeauthorizedClientLosesWriteAccess) {
  Cluster cluster(acl_options(4));
  auto& c = cluster.add_client(1);
  ASSERT_TRUE(cluster.write(c, 1, to_bytes("before")).is_ok());

  for (quorum::ReplicaId r = 0; r < cluster.config().n; ++r) {
    cluster.replica(r).deauthorize(1);
  }
  auto w = cluster.write(c, 1, to_bytes("after"));
  EXPECT_FALSE(w.is_ok());
  EXPECT_EQ(w.status().code(), StatusCode::kTimeout);

  // Re-authorization restores service.
  for (quorum::ReplicaId r = 0; r < cluster.config().n; ++r) {
    cluster.replica(r).authorize(1);
  }
  ASSERT_TRUE(cluster.write(c, 1, to_bytes("restored")).is_ok());
}

TEST(AclTest, PreparedWriteSurvivesDeauthorization) {
  // The nuance the lurking-write bound exists for: removing a client
  // from the ACL blocks NEW prepares, but a WRITE backed by a
  // certificate obtained while authorized still lands (a colluder can
  // replay it). enforce_acl does not change the max-b guarantee.
  Cluster cluster(acl_options(5));
  auto& good = cluster.add_client(1);
  ASSERT_TRUE(cluster.write(good, 1, to_bytes("pre")).is_ok());

  auto transport = cluster.make_transport(harness::client_node(66));
  faults::LurkingWriteStasher stasher(cluster.config(), 66,
                                      cluster.keystore(), *transport,
                                      cluster.sim(), cluster.replica_nodes(),
                                      cluster.rng().split());
  for (quorum::ReplicaId r = 0; r < cluster.config().n; ++r) {
    cluster.replica(r).authorize(66);  // initially a legitimate writer
  }
  std::optional<faults::LurkingWriteStasher::Outcome> out;
  stasher.attack(1, 1, false, [&](faults::LurkingWriteStasher::Outcome o) {
    out = std::move(o);
  });
  ASSERT_TRUE(cluster.run_until([&] { return out.has_value(); }));
  ASSERT_EQ(out->stashed.size(), 1u);

  cluster.stop_client(66);  // revoke key AND the ACL entry

  auto ctransport = cluster.make_transport(harness::client_node(67));
  faults::Colluder colluder(*ctransport, cluster.replica_nodes());
  for (auto& env : out->stashed) colluder.stash(std::move(env));
  colluder.unleash();
  cluster.settle();

  // The one lurking write is visible — the bound, not the ACL, is what
  // limits it to one.
  auto r = cluster.read(good, 1);
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value().ts.id, 66u);
}

}  // namespace
}  // namespace bftbc
