#include "crypto/signature.h"

#include <gtest/gtest.h>

#include "crypto/nonce.h"

namespace bftbc::crypto {
namespace {

class SignatureTest : public ::testing::TestWithParam<SignatureScheme> {
 protected:
  // RSA keystore uses small keys so the parameterized suite stays fast.
  Keystore ks_{GetParam(), /*seed=*/5, /*rsa_bits=*/512};
};

TEST_P(SignatureTest, SignVerifyRoundtrip) {
  Signer s = ks_.register_principal(7);
  const Bytes msg = to_bytes("WRITE-REPLY ts=3");
  auto sig = s.sign(msg);
  ASSERT_TRUE(sig.is_ok()) << sig.status().to_string();
  EXPECT_TRUE(ks_.verify(7, msg, sig.value()));
}

TEST_P(SignatureTest, VerifyRejectsOtherPrincipal) {
  Signer a = ks_.register_principal(1);
  ks_.register_principal(2);
  const Bytes msg = to_bytes("statement");
  auto sig = a.sign(msg);
  ASSERT_TRUE(sig.is_ok());
  // A signature by principal 1 must not verify as principal 2 even though
  // the message bytes are identical.
  EXPECT_FALSE(ks_.verify(2, msg, sig.value()));
}

TEST_P(SignatureTest, VerifyRejectsTamperedMessage) {
  Signer s = ks_.register_principal(3);
  auto sig = s.sign(to_bytes("original"));
  ASSERT_TRUE(sig.is_ok());
  EXPECT_FALSE(ks_.verify(3, to_bytes("tampered"), sig.value()));
}

TEST_P(SignatureTest, VerifyUnknownPrincipalFails) {
  EXPECT_FALSE(ks_.verify(99, to_bytes("m"), Bytes(32, 0)));
}

TEST_P(SignatureTest, RevokedPrincipalCannotSign) {
  Signer s = ks_.register_principal(4);
  const Bytes msg = to_bytes("lurking write");
  auto before = s.sign(msg);
  ASSERT_TRUE(before.is_ok());

  ks_.revoke(4);
  EXPECT_TRUE(ks_.is_revoked(4));

  auto after = s.sign(to_bytes("new statement"));
  EXPECT_FALSE(after.is_ok());
  EXPECT_EQ(after.status().code(), StatusCode::kUnavailable);

  // Old signatures still verify: replays of pre-stop messages are
  // allowed by the model (§4.1.1).
  EXPECT_TRUE(ks_.verify(4, msg, before.value()));
}

TEST_P(SignatureTest, RegistrationIsIdempotent) {
  Signer a = ks_.register_principal(6);
  Signer b = ks_.register_principal(6);
  auto sig_a = a.sign(to_bytes("m"));
  auto sig_b = b.sign(to_bytes("m"));
  ASSERT_TRUE(sig_a.is_ok());
  ASSERT_TRUE(sig_b.is_ok());
  // Same key material behind both handles.
  EXPECT_TRUE(ks_.verify(6, to_bytes("m"), sig_a.value()));
  EXPECT_TRUE(ks_.verify(6, to_bytes("m"), sig_b.value()));
}

TEST_P(SignatureTest, CountersTrackOps) {
  Signer s = ks_.register_principal(8);
  ks_.reset_counters();
  auto sig = s.sign(to_bytes("m"));
  ASSERT_TRUE(sig.is_ok());
  (void)ks_.verify(8, to_bytes("m"), sig.value());
  (void)ks_.verify(8, to_bytes("m"), sig.value());
  EXPECT_EQ(ks_.counters().get("sign"), 1u);
  EXPECT_EQ(ks_.counters().get("verify"), 2u);
}

TEST_P(SignatureTest, SignatureSizeReported) {
  Signer s = ks_.register_principal(9);
  auto sig = s.sign(to_bytes("m"));
  ASSERT_TRUE(sig.is_ok());
  EXPECT_EQ(sig.value().size(), ks_.signature_size());
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, SignatureTest,
                         ::testing::Values(SignatureScheme::kHmacSim,
                                           SignatureScheme::kRsa),
                         [](const auto& info) {
                           return info.param == SignatureScheme::kHmacSim
                                      ? "HmacSim"
                                      : "Rsa";
                         });

TEST(KeystoreTest, UnboundSignerFails) {
  Signer s;
  EXPECT_FALSE(s.valid());
  EXPECT_FALSE(s.sign(to_bytes("m")).is_ok());
}

TEST(KeystoreTest, DeterministicKeysForSeed) {
  Keystore a(SignatureScheme::kHmacSim, 42);
  Keystore b(SignatureScheme::kHmacSim, 42);
  Signer sa = a.register_principal(1);
  Signer sb = b.register_principal(1);
  auto siga = sa.sign(to_bytes("m"));
  auto sigb = sb.sign(to_bytes("m"));
  ASSERT_TRUE(siga.is_ok());
  ASSERT_TRUE(sigb.is_ok());
  EXPECT_EQ(siga.value(), sigb.value());
}

TEST(NonceTest, NoncesAreUniquePerClient) {
  NonceGenerator gen(5, Rng(1));
  Nonce a = gen.next();
  Nonce b = gen.next();
  EXPECT_NE(a, b);
  EXPECT_EQ(a.principal, 5u);
  EXPECT_EQ(b.counter, a.counter + 1);
}

TEST(NonceTest, NoncesDifferAcrossClients) {
  NonceGenerator g1(1, Rng(9)), g2(2, Rng(9));
  // Same rng seed but different principals → still distinct nonces.
  EXPECT_NE(g1.next(), g2.next());
}

TEST(NonceTest, EncodeDecodeRoundtrip) {
  NonceGenerator gen(77, Rng(3));
  const Nonce n = gen.next();
  Writer w;
  n.encode(w);
  Reader r(w.data());
  const Nonce back = Nonce::decode(r);
  EXPECT_TRUE(r.done());
  EXPECT_EQ(n, back);
}

}  // namespace
}  // namespace bftbc::crypto
