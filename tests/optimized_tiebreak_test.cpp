// §6.3 end-to-end: "it is now possible for honest clients to see valid
// responses to a read request that have the same timestamp but different
// values. The client protocol resolves this situation by returning (and
// writing back) the value with the larger hash."
//
// A Byzantine client exploits its two prepare-list slots to certify TWO
// values at the SAME timestamp (optlist + normal list, both justified by
// the same certificate), performs both writes, and we verify:
//   - all replicas converge on the larger-hash value regardless of
//     delivery order,
//   - readers return the larger-hash value and stay atomic,
//   - the history counts as at most two lurking writes after a stop.
#include <gtest/gtest.h>

#include "checker/bft_linearizability.h"
#include "faults/byzantine_client.h"
#include "harness/cluster.h"
#include "harness/recording.h"
#include "quorum/statements.h"

namespace bftbc {
namespace {

using harness::Cluster;
using harness::ClusterOptions;

// Expose the protected protocol helpers for test choreography.
class DoubleWriter : public faults::AttackClientBase {
 public:
  using AttackClientBase::AttackClientBase;
  using AttackClientBase::fetch_pmax;
  using AttackClientBase::gather_prepares;
  using AttackClientBase::make_request;
  using AttackClientBase::make_write;
};

TEST(OptimizedTiebreakTest, SameTimestampTwoValuesConvergeToLargerHash) {
  ClusterOptions o;
  o.optimized = true;
  o.seed = 17;
  Cluster cluster(o);
  checker::History history;
  harness::Recorder rec(cluster, history);

  auto& good = cluster.add_client(1);
  ASSERT_TRUE(rec.write(good, 1, to_bytes("pre")).is_ok());

  auto transport = cluster.make_transport(harness::client_node(66));
  DoubleWriter attacker(cluster.config(), 66, cluster.keystore(), *transport,
                        cluster.sim(), cluster.replica_nodes(),
                        cluster.rng().split());

  const Bytes v1 = to_bytes("value-one");
  const Bytes v2 = to_bytes("value-two");
  const crypto::Digest h1 = crypto::sha256(v1);
  const crypto::Digest h2 = crypto::sha256(v2);

  // Step 1: grab the justifying certificate (ts <1,1>).
  std::optional<quorum::PrepareCertificate> pmax;
  attacker.fetch_pmax(1, [&](quorum::PrepareCertificate c) { pmax = c; });
  ASSERT_TRUE(cluster.run_until([&] { return pmax.has_value(); }));
  const quorum::Timestamp t = pmax->ts().succ(66);  // <2,66>

  // Step 2: certify v2 at t through the OPTLIST first (READ-TS-PREP
  // predicts succ(pcert.ts, 66) = t). Order matters: the optimistic
  // prepare is refused if a differing NORMAL-list entry already exists,
  // but the normal phase 2 ignores the optlist (§6.2) — so optlist
  // first, normal list second is the only order that yields two
  // same-timestamp certificates.
  core::ReadTsPrepRequest prep2;
  prep2.object = 1;
  prep2.hash = h2;
  prep2.nonce = crypto::Nonce{66, 9, 9};
  prep2.client = 66;
  {
    auto signer = cluster.keystore().register_principal(66);
    prep2.sig = signer.sign(prep2.signing_payload()).value();
  }
  std::map<quorum::ReplicaId, Bytes> sigs2;
  // Broadcast and harvest the prepared replies manually.
  rpc::Envelope env = attacker.make_request(rpc::MsgType::kReadTsPrep,
                                            prep2.encode());
  // Swap in a bare receiver to capture replies.
  transport->set_receiver([&](sim::NodeId, const rpc::Envelope& e) {
    if (e.type != rpc::MsgType::kReadTsPrepReply) return;
    auto m = core::ReadTsPrepReply::decode(e.body);
    if (!m || !m->prepared || m->predicted_t != t || m->hash != h2) return;
    const Bytes stmt = quorum::prepare_reply_statement(1, t, h2);
    if (cluster.keystore().verify(quorum::replica_principal(m->replica), stmt,
                                  m->prepare_sig)) {
      sigs2[m->replica] = m->prepare_sig;
    }
  });
  for (sim::NodeId n : cluster.replica_nodes()) transport->send(n, env);
  cluster.run_until([&] { return sigs2.size() >= cluster.config().q; });
  ASSERT_GE(sigs2.size(), cluster.config().q) << "optlist prepare failed";

  // Step 2b: now certify v1 at the SAME t through the NORMAL list
  // (phase 2 ignores the optlist entry). Use a second transport — the
  // raw receiver above hijacked the first one — but the SAME client
  // principal: authentication is by signature, not by network address.
  auto transport2 = cluster.make_transport(harness::client_node(68));
  DoubleWriter attacker2(cluster.config(), 66, cluster.keystore(),
                         *transport2, cluster.sim(), cluster.replica_nodes(),
                         cluster.rng().split());
  std::optional<quorum::SignatureSet> sigs1;
  attacker2.gather_prepares(1, t, h1, *pmax, std::nullopt,
                            cluster.replica_nodes(), cluster.config().q,
                            sim::kSecond,
                            [&](quorum::SignatureSet s) { sigs1 = s; });
  ASSERT_TRUE(cluster.run_until([&] { return sigs1.has_value(); }));
  ASSERT_GE(sigs1->size(), cluster.config().q) << "normal-list prepare failed";

  // Step 3: perform BOTH writes — two valid certificates, one timestamp.
  quorum::PrepareCertificate cert1(1, t, h1, *sigs1);
  quorum::PrepareCertificate cert2(
      1, t, h2, quorum::SignatureSet(sigs2.begin(), sigs2.end()));
  ASSERT_TRUE(cert1.validate(cluster.config(), cluster.keystore()).is_ok());
  ASSERT_TRUE(cert2.validate(cluster.config(), cluster.keystore()).is_ok());

  core::WriteRequest w1 = attacker.make_write(1, v1, cert1);
  core::WriteRequest w2 = attacker.make_write(1, v2, cert2);
  rpc::Envelope e1 = attacker.make_request(rpc::MsgType::kWrite, w1.encode());
  rpc::Envelope e2 = attacker.make_request(rpc::MsgType::kWrite, w2.encode());
  // Mixed delivery orders per replica: send v1 first to half, v2 first
  // to the other half.
  transport->send(0, e1);
  transport->send(1, e1);
  transport->send(2, e2);
  transport->send(3, e2);
  transport->send(0, e2);
  transport->send(1, e2);
  transport->send(2, e1);
  transport->send(3, e1);
  cluster.settle();

  // All replicas converge to the larger-hash value.
  const bool v1_bigger = crypto::compare_digests(h1, h2) > 0;
  const Bytes& winner = v1_bigger ? v1 : v2;
  for (quorum::ReplicaId r = 0; r < cluster.config().n; ++r) {
    const auto* st = cluster.replica(r).find_object(1);
    ASSERT_NE(st, nullptr);
    EXPECT_EQ(st->data(), winner) << "replica " << r;
    EXPECT_EQ(st->pcert().ts(), t);
  }

  // Readers return the winner and the history stays BFT-linearizable
  // with <= 2 operations by the bad client.
  (void)rec.read(good, 1);
  rec.stop_client(66);
  ASSERT_TRUE(rec.write(good, 1, to_bytes("post")).is_ok());
  auto r = rec.read(good, 1);
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(to_string(r.value().value), "post");

  auto check = checker::check_bft_linearizability(history, {66});
  EXPECT_TRUE(check.linearizable) << check.summary();
  EXPECT_TRUE(check.reads_authentic) << check.summary();
  EXPECT_TRUE(check.ok(2)) << check.summary();
}

TEST(OptimizedTiebreakTest, ReaderPicksLargerHashAmongMixedReplies) {
  // Same setup but stop before the second broadcast settles at every
  // replica, so a reader's quorum straddles the two values at one
  // timestamp: the read must return the larger hash and write it back.
  ClusterOptions o;
  o.optimized = true;
  o.seed = 18;
  o.link.jitter_mean = 0;
  Cluster cluster(o);
  auto& good = cluster.add_client(1);
  ASSERT_TRUE(cluster.write(good, 1, to_bytes("pre")).is_ok());

  auto transport = cluster.make_transport(harness::client_node(66));
  DoubleWriter attacker(cluster.config(), 66, cluster.keystore(), *transport,
                        cluster.sim(), cluster.replica_nodes(),
                        cluster.rng().split());
  std::optional<quorum::PrepareCertificate> pmax;
  attacker.fetch_pmax(1, [&](quorum::PrepareCertificate c) { pmax = c; });
  ASSERT_TRUE(cluster.run_until([&] { return pmax.has_value(); }));
  const quorum::Timestamp t = pmax->ts().succ(66);

  const Bytes v1 = to_bytes("alpha");
  const Bytes v2 = to_bytes("omega");
  const crypto::Digest h1 = crypto::sha256(v1);
  std::optional<quorum::SignatureSet> sigs1;
  attacker.gather_prepares(1, t, h1, *pmax, std::nullopt,
                           cluster.replica_nodes(), cluster.config().q,
                           sim::kSecond,
                           [&](quorum::SignatureSet s) { sigs1 = s; });
  ASSERT_TRUE(cluster.run_until([&] { return sigs1.has_value(); }));
  ASSERT_GE(sigs1->size(), cluster.config().q);
  quorum::PrepareCertificate cert1(1, t, h1, *sigs1);

  // Install v1 at replicas 0,1 only → a later reader sees (t, h1) there
  // and (1,1) elsewhere; the max version is (t, h1) — still atomic.
  core::WriteRequest w1 = attacker.make_write(1, v1, cert1);
  rpc::Envelope e1 = attacker.make_request(rpc::MsgType::kWrite, w1.encode());
  transport->send(0, e1);
  transport->send(1, e1);
  cluster.settle();
  (void)v2;

  auto r1 = cluster.read(good, 1);
  ASSERT_TRUE(r1.is_ok());
  EXPECT_EQ(r1.value().ts, t);
  EXPECT_EQ(to_string(r1.value().value), "alpha");
  EXPECT_EQ(r1.value().phases, 2);  // mixed answers → write-back

  // After the write-back, a second read is one-phase and identical.
  auto r2 = cluster.read(good, 1);
  ASSERT_TRUE(r2.is_ok());
  EXPECT_EQ(to_string(r2.value().value), "alpha");
  EXPECT_EQ(r2.value().phases, 1);
}

}  // namespace
}  // namespace bftbc
