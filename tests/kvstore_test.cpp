// Tests for the KvStore facade.
#include <gtest/gtest.h>

#include "bftbc/kvstore.h"
#include "harness/cluster.h"

namespace bftbc::core {
namespace {

using harness::Cluster;
using harness::ClusterOptions;

class KvStoreTest : public ::testing::Test {
 protected:
  KvStoreTest() : cluster_([] { ClusterOptions o; o.seed = 11; return o; }()) {}

  Result<KvStore::PutResult> put(KvStore& kv, std::string_view key,
                                 std::string value) {
    std::optional<Result<KvStore::PutResult>> result;
    kv.put(key, to_bytes(value),
           [&](Result<KvStore::PutResult> r) { result = std::move(r); });
    cluster_.run_until([&] { return result.has_value(); });
    return *result;
  }

  Result<KvStore::GetResult> get(KvStore& kv, std::string_view key) {
    std::optional<Result<KvStore::GetResult>> result;
    kv.get(key, [&](Result<KvStore::GetResult> r) { result = std::move(r); });
    cluster_.run_until([&] { return result.has_value(); });
    return std::move(*result);
  }

  Result<KvStore::PutResult> erase(KvStore& kv, std::string_view key) {
    std::optional<Result<KvStore::PutResult>> result;
    kv.erase(key, [&](Result<KvStore::PutResult> r) { result = std::move(r); });
    cluster_.run_until([&] { return result.has_value(); });
    return *result;
  }

  Cluster cluster_;
};

TEST_F(KvStoreTest, KeyMappingDeterministicAndSpread) {
  EXPECT_EQ(KvStore::object_for_key("alpha"), KvStore::object_for_key("alpha"));
  EXPECT_NE(KvStore::object_for_key("alpha"), KvStore::object_for_key("beta"));
  EXPECT_NE(KvStore::object_for_key("a"), KvStore::object_for_key("aa"));
}

TEST_F(KvStoreTest, PutGetRoundtrip) {
  KvStore kv(cluster_.add_client(1));
  ASSERT_TRUE(put(kv, "greeting", "hello").is_ok());
  auto g = get(kv, "greeting");
  ASSERT_TRUE(g.is_ok());
  ASSERT_TRUE(g.value().value.has_value());
  EXPECT_EQ(to_string(*g.value().value), "hello");
  EXPECT_EQ(g.value().version.val, 1u);
}

TEST_F(KvStoreTest, AbsentKeyHasNoValue) {
  KvStore kv(cluster_.add_client(1));
  auto g = get(kv, "never-written");
  ASSERT_TRUE(g.is_ok());
  EXPECT_FALSE(g.value().value.has_value());
  EXPECT_TRUE(g.value().version.is_zero());
}

TEST_F(KvStoreTest, KeysAreIndependent) {
  KvStore kv(cluster_.add_client(1));
  ASSERT_TRUE(put(kv, "a", "1").is_ok());
  ASSERT_TRUE(put(kv, "b", "2").is_ok());
  auto ga = get(kv, "a");
  auto gb = get(kv, "b");
  ASSERT_TRUE(ga.is_ok());
  ASSERT_TRUE(gb.is_ok());
  EXPECT_EQ(to_string(*ga.value().value), "1");
  EXPECT_EQ(to_string(*gb.value().value), "2");
}

TEST_F(KvStoreTest, OverwriteBumpsVersion) {
  KvStore kv(cluster_.add_client(1));
  ASSERT_TRUE(put(kv, "k", "v1").is_ok());
  auto p2 = put(kv, "k", "v2");
  ASSERT_TRUE(p2.is_ok());
  EXPECT_EQ(p2.value().version.val, 2u);
  auto g = get(kv, "k");
  EXPECT_EQ(to_string(*g.value().value), "v2");
}

TEST_F(KvStoreTest, EraseLeavesTombstoneVersion) {
  KvStore kv(cluster_.add_client(1));
  ASSERT_TRUE(put(kv, "k", "v").is_ok());
  auto e = erase(kv, "k");
  ASSERT_TRUE(e.is_ok());
  EXPECT_EQ(e.value().version.val, 2u);
  auto g = get(kv, "k");
  ASSERT_TRUE(g.is_ok());
  EXPECT_FALSE(g.value().value.has_value());   // erased = absent
  EXPECT_EQ(g.value().version.val, 2u);        // but the version advanced
}

TEST_F(KvStoreTest, TwoClientsShareTheStore) {
  KvStore kv1(cluster_.add_client(1));
  KvStore kv2(cluster_.add_client(2));
  ASSERT_TRUE(put(kv1, "shared", "from-1").is_ok());
  auto g = get(kv2, "shared");
  ASSERT_TRUE(g.is_ok());
  EXPECT_EQ(to_string(*g.value().value), "from-1");
  ASSERT_TRUE(put(kv2, "shared", "from-2").is_ok());
  auto g1 = get(kv1, "shared");
  EXPECT_EQ(to_string(*g1.value().value), "from-2");
}

TEST_F(KvStoreTest, WorksWithCrashedReplica) {
  cluster_.crash_replica(1);
  KvStore kv(cluster_.add_client(1));
  ASSERT_TRUE(put(kv, "k", "fault-tolerant").is_ok());
  auto g = get(kv, "k");
  ASSERT_TRUE(g.is_ok());
  EXPECT_EQ(to_string(*g.value().value), "fault-tolerant");
}

}  // namespace
}  // namespace bftbc::core
