// Unit tests for the BFT-linearizability checker, exercised on
// hand-crafted histories — including ones that MUST be flagged as
// violations (the checker itself needs adversarial testing).
#include <gtest/gtest.h>

#include "checker/bft_linearizability.h"

namespace bftbc::checker {
namespace {

crypto::Digest h(const std::string& s) {
  return crypto::sha256(as_bytes_view(s));
}

// Helper to add a complete write.
void add_write(History& hist, ClientId c, ObjectId obj, sim::Time inv,
               sim::Time rsp, const Timestamp& ts, const std::string& v) {
  const std::size_t tok = hist.begin_write(c, obj, inv, to_bytes(v));
  hist.end_write(tok, rsp, ts);
}

void add_read(History& hist, ClientId c, ObjectId obj, sim::Time inv,
              sim::Time rsp, const Timestamp& ts, const std::string& v) {
  const std::size_t tok = hist.begin_read(c, obj, inv);
  hist.end_read(tok, rsp, ts, h(v), to_bytes(v));
}

TEST(CheckerTest, EmptyHistoryIsOk) {
  History hist;
  auto r = check_bft_linearizability(hist, {});
  EXPECT_TRUE(r.ok(0));
}

TEST(CheckerTest, SequentialWriteReadOk) {
  History hist;
  add_write(hist, 1, 1, 0, 10, {1, 1}, "a");
  add_read(hist, 2, 1, 20, 30, {1, 1}, "a");
  auto r = check_bft_linearizability(hist, {});
  EXPECT_TRUE(r.ok(0)) << r.summary();
}

TEST(CheckerTest, GenesisReadOk) {
  History hist;
  const std::size_t tok = hist.begin_read(1, 1, 0);
  hist.end_read(tok, 10, Timestamp::zero(), h(""), Bytes{});
  auto r = check_bft_linearizability(hist, {});
  EXPECT_TRUE(r.ok(0)) << r.summary();
}

TEST(CheckerTest, StaleReadFlagged) {
  History hist;
  add_write(hist, 1, 1, 0, 10, {1, 1}, "a");
  add_write(hist, 1, 1, 20, 30, {2, 1}, "b");
  // Read AFTER the second write completed returns the first value: bad.
  add_read(hist, 2, 1, 40, 50, {1, 1}, "a");
  auto r = check_bft_linearizability(hist, {});
  EXPECT_FALSE(r.linearizable);
}

TEST(CheckerTest, ReadReadMonotonicityViolationFlagged) {
  History hist;
  add_write(hist, 1, 1, 0, 10, {1, 1}, "a");
  add_write(hist, 1, 1, 20, 30, {2, 1}, "b");
  add_read(hist, 2, 1, 40, 50, {2, 1}, "b");
  // Later read (non-overlapping) goes backwards.
  add_read(hist, 2, 1, 60, 70, {1, 1}, "a");
  auto r = check_bft_linearizability(hist, {});
  EXPECT_FALSE(r.linearizable);
}

TEST(CheckerTest, ConcurrentReadsMayDiverge) {
  History hist;
  add_write(hist, 1, 1, 0, 10, {1, 1}, "a");
  // A write in flight...
  add_write(hist, 1, 1, 20, 100, {2, 1}, "b");
  // ...two overlapping reads see old and new — fine.
  add_read(hist, 2, 1, 30, 40, {2, 1}, "b");
  add_read(hist, 3, 1, 30, 45, {1, 1}, "a");
  auto r = check_bft_linearizability(hist, {});
  EXPECT_TRUE(r.linearizable) << r.summary();
}

TEST(CheckerTest, WriteMustExceedCompletedVersions) {
  History hist;
  add_write(hist, 1, 1, 0, 10, {5, 1}, "a");
  // A later write that completed with a LOWER timestamp: protocol bug.
  add_write(hist, 2, 1, 20, 30, {3, 2}, "b");
  auto r = check_bft_linearizability(hist, {});
  EXPECT_FALSE(r.linearizable);
}

TEST(CheckerTest, ForgedReadValueFlagged) {
  History hist;
  add_write(hist, 1, 1, 0, 10, {1, 1}, "a");
  // Read returns a version claiming to be client 1's ts but value "evil"
  // (hash consistent with "evil" — i.e., a different version under the
  // same timestamp, which client 1 never wrote).
  add_read(hist, 2, 1, 20, 30, {1, 1}, "evil");
  auto r = check_bft_linearizability(hist, {});
  EXPECT_FALSE(r.reads_authentic);
}

TEST(CheckerTest, ValueHashMismatchFlagged) {
  History hist;
  const std::size_t tok = hist.begin_read(1, 1, 0);
  // value "x" but hash of "y": certificate mismatch smuggled through.
  hist.end_read(tok, 10, {1, 9}, h("y"), to_bytes("x"));
  auto r = check_bft_linearizability(hist, {9});
  EXPECT_FALSE(r.reads_authentic);
}

TEST(CheckerTest, BadClientWriteAttributed) {
  History hist;
  // Read returns a version from declared-bad client 66: allowed.
  add_read(hist, 1, 1, 0, 10, {1, 66}, "evil");
  auto r = check_bft_linearizability(hist, {66});
  EXPECT_TRUE(r.reads_authentic) << r.summary();
  EXPECT_TRUE(r.linearizable);
}

TEST(CheckerTest, UnknownWriterFlagged) {
  History hist;
  // Version from client 77, never declared bad, never wrote: forgery.
  add_read(hist, 1, 1, 0, 10, {1, 77}, "mystery");
  auto r = check_bft_linearizability(hist, {66});
  EXPECT_FALSE(r.reads_authentic);
}

// ------------------------------------------------------- lurking writes

TEST(CheckerTest, LurkingWriteCountedAfterStop) {
  History hist;
  add_write(hist, 1, 1, 0, 10, {1, 1}, "good");
  add_read(hist, 1, 1, 20, 30, {1, 1}, "good");
  hist.record_stop(66, 100);
  // After the stop, a read surfaces a bad-client version above the
  // pre-stop frontier: one lurking write.
  add_read(hist, 1, 1, 200, 210, {2, 66}, "lurker");
  auto r = check_bft_linearizability(hist, {66});
  EXPECT_TRUE(r.linearizable) << r.summary();
  ASSERT_EQ(r.lurking.count(66), 1u);
  EXPECT_EQ(r.lurking.at(66).count, 1);
  EXPECT_TRUE(r.ok(1));
  EXPECT_FALSE(r.ok(0));
}

TEST(CheckerTest, TwoLurkingWritesCounted) {
  History hist;
  add_write(hist, 1, 1, 0, 10, {1, 1}, "good");
  hist.record_stop(66, 100);
  add_read(hist, 1, 1, 200, 210, {2, 66}, "lurker-a");
  add_read(hist, 1, 1, 220, 230, {3, 66}, "lurker-b");
  auto r = check_bft_linearizability(hist, {66});
  ASSERT_EQ(r.lurking.count(66), 1u);
  EXPECT_EQ(r.lurking.at(66).count, 2);
  EXPECT_TRUE(r.ok(2));
  EXPECT_FALSE(r.ok(1));
}

TEST(CheckerTest, PreStopSurfacedWritesNotLurking) {
  History hist;
  // The bad client's write surfaced BEFORE it stopped: not lurking.
  add_read(hist, 1, 1, 0, 10, {1, 66}, "seen-early");
  hist.record_stop(66, 100);
  add_read(hist, 1, 1, 200, 210, {1, 66}, "seen-early");
  auto r = check_bft_linearizability(hist, {66});
  ASSERT_EQ(r.lurking.count(66), 1u);
  EXPECT_EQ(r.lurking.at(66).count, 0);
}

TEST(CheckerTest, VersionsBelowPreStopFrontierNotLurking) {
  History hist;
  // Good client's version <5,1> completed before the stop; a bad version
  // <2,66> read later sits BELOW the frontier — Theorem 1 places its
  // write before the stop (and here it's also a monotonicity violation,
  // caught separately).
  add_write(hist, 1, 1, 0, 10, {5, 1}, "good");
  add_read(hist, 1, 1, 20, 30, {5, 1}, "good");
  hist.record_stop(66, 100);
  add_read(hist, 2, 1, 200, 210, {2, 66}, "old-evil");
  auto r = check_bft_linearizability(hist, {66});
  ASSERT_EQ(r.lurking.count(66), 1u);
  EXPECT_EQ(r.lurking.at(66).count, 0);
  EXPECT_FALSE(r.linearizable);  // the stale read is still flagged
}

TEST(CheckerTest, SameLurkerReadTwiceCountsOnce) {
  History hist;
  add_write(hist, 1, 1, 0, 10, {1, 1}, "good");
  hist.record_stop(66, 100);
  add_read(hist, 1, 1, 200, 210, {2, 66}, "lurker");
  add_read(hist, 2, 1, 220, 230, {2, 66}, "lurker");
  add_read(hist, 1, 1, 240, 250, {2, 66}, "lurker");
  auto r = check_bft_linearizability(hist, {66});
  EXPECT_EQ(r.lurking.at(66).count, 1);
}

TEST(CheckerTest, OverwritesBeforeLastSurfaceMeasured) {
  History hist;
  add_write(hist, 1, 1, 0, 10, {1, 1}, "good");
  hist.record_stop(66, 100);
  // Two correct writes complete after the stop...
  add_write(hist, 1, 1, 110, 120, {2, 1}, "post-1");
  add_write(hist, 1, 1, 130, 140, {3, 1}, "post-2");
  // ...and only then the lurking write surfaces (ts above everything).
  add_read(hist, 2, 1, 300, 310, {4, 66}, "lurker");
  auto r = check_bft_linearizability(hist, {66});
  ASSERT_EQ(r.lurking.count(66), 1u);
  EXPECT_EQ(r.lurking.at(66).count, 1);
  EXPECT_EQ(r.lurking.at(66).overwrites_before_last_surface, 2);
}

TEST(CheckerTest, OkPlusBoundsOverwritesBeforeSurface) {
  // A lurking write surfacing after 2 completed overwrites violates
  // BFT-linearizability+ with k=2 but satisfies it with k=3.
  History hist;
  add_write(hist, 1, 1, 0, 10, {1, 1}, "good");
  hist.record_stop(66, 100);
  add_write(hist, 1, 1, 110, 120, {2, 1}, "post-1");
  add_write(hist, 1, 1, 130, 140, {3, 1}, "post-2");
  add_read(hist, 2, 1, 300, 310, {4, 66}, "lurker");
  auto r = check_bft_linearizability(hist, {66});
  EXPECT_TRUE(r.ok(1));
  EXPECT_FALSE(r.ok_plus(1, 2));
  EXPECT_TRUE(r.ok_plus(1, 3));
}

TEST(CheckerTest, OkPlusTrivialWhenNothingLurks) {
  History hist;
  add_write(hist, 1, 1, 0, 10, {1, 1}, "good");
  hist.record_stop(66, 100);
  add_write(hist, 1, 1, 110, 120, {2, 1}, "post");
  auto r = check_bft_linearizability(hist, {66});
  EXPECT_TRUE(r.ok_plus(0, 2));
}

TEST(CheckerTest, MultipleBadClientsTrackedIndependently) {
  History hist;
  add_write(hist, 1, 1, 0, 10, {1, 1}, "good");
  hist.record_stop(66, 100);
  hist.record_stop(67, 150);
  add_read(hist, 1, 1, 200, 210, {2, 66}, "lurker-66");
  add_read(hist, 1, 1, 220, 230, {3, 67}, "lurker-67a");
  add_read(hist, 1, 1, 240, 250, {4, 67}, "lurker-67b");
  auto r = check_bft_linearizability(hist, {66, 67});
  EXPECT_EQ(r.lurking.at(66).count, 1);
  EXPECT_EQ(r.lurking.at(67).count, 2);
  EXPECT_EQ(r.max_lurking(), 2);
}

TEST(CheckerTest, MultiObjectIndependence) {
  History hist;
  add_write(hist, 1, 1, 0, 10, {1, 1}, "obj1");
  add_write(hist, 1, 2, 20, 30, {1, 1}, "obj2");
  // Reads of different objects never constrain each other.
  add_read(hist, 2, 1, 40, 50, {1, 1}, "obj1");
  add_read(hist, 2, 2, 60, 70, {1, 1}, "obj2");
  auto r = check_bft_linearizability(hist, {});
  EXPECT_TRUE(r.ok(0)) << r.summary();
}

TEST(CheckerTest, AbortedOpsExcluded) {
  History hist;
  const std::size_t tok = hist.begin_write(1, 1, 0, to_bytes("never"));
  hist.abort(tok);
  add_read(hist, 2, 1, 40, 50, Timestamp::zero(), "");
  auto r = check_bft_linearizability(hist, {});
  EXPECT_TRUE(r.ok(0)) << r.summary();
  EXPECT_EQ(hist.completed_count(), 1u);
}

TEST(CheckerTest, OptimizedTieBreakVersionsDistinct) {
  // Two versions sharing a timestamp (possible only from a bad client in
  // the optimized protocol) are distinct versions ordered by hash; reads
  // moving from smaller-hash to larger-hash are monotone, the reverse is
  // flagged.
  History hist;
  const std::string small = h("aaa") < h("zzz") ? "aaa" : "zzz";
  const std::string big = small == "aaa" ? "zzz" : "aaa";
  add_read(hist, 1, 1, 0, 10, {1, 66}, small);
  add_read(hist, 1, 1, 20, 30, {1, 66}, big);  // forward: ok
  auto ok = check_bft_linearizability(hist, {66});
  EXPECT_TRUE(ok.linearizable) << ok.summary();

  History bad;
  add_read(bad, 1, 1, 0, 10, {1, 66}, big);
  add_read(bad, 1, 1, 20, 30, {1, 66}, small);  // backwards: flagged
  auto flagged = check_bft_linearizability(bad, {66});
  EXPECT_FALSE(flagged.linearizable);
}

// ------------------------------------------------------------------
// Mutation corpus: a table of deliberately violating histories, each a
// minimal mutation of a legal run. Every entry MUST be rejected at the
// stated bound — if the checker ever accepts one, it has gone blind to
// that violation class and the whole explorer pipeline silently loses
// its teeth.

struct CorpusEntry {
  const char* name;
  void (*build)(History&);
  int max_b;  // bound the history must fail at
};

void build_stale_read(History& hist) {
  // v2 completed strictly before the read began, yet the read returns v1.
  add_write(hist, 1, 1, 0, 10, {1, 1}, "v1");
  add_write(hist, 1, 1, 20, 30, {2, 1}, "v2");
  add_read(hist, 2, 1, 50, 60, {1, 1}, "v1");
}

void build_forged_version(History& hist) {
  // Version attributed to client 9 — which never wrote and was never
  // declared Byzantine. Must trip the integrity clause.
  add_write(hist, 1, 1, 0, 10, {1, 1}, "v1");
  add_read(hist, 2, 1, 20, 30, {2, 9}, "forged");
}

void build_forged_value(History& hist) {
  // Right timestamp, wrong bytes: the read's value does not match what
  // client 1 wrote under {1,1}.
  add_write(hist, 1, 1, 0, 10, {1, 1}, "real");
  add_read(hist, 2, 1, 20, 30, {1, 1}, "tampered");
}

void build_two_lurking_base(History& hist) {
  // Base protocol bound is 1 lurking write; two distinct versions of the
  // stopped client surface only after its stop.
  add_write(hist, 1, 1, 0, 10, {1, 1}, "good");
  hist.record_stop(66, 100);
  add_read(hist, 2, 1, 200, 210, {2, 66}, "lurk-a");
  add_read(hist, 2, 1, 220, 230, {3, 66}, "lurk-b");
}

void build_non_monotonic_pair(History& hist) {
  // Two non-overlapping reads by different clients going backwards.
  add_write(hist, 1, 1, 0, 10, {1, 1}, "v1");
  add_write(hist, 1, 1, 20, 100, {2, 1}, "v2");
  add_read(hist, 2, 1, 30, 40, {2, 1}, "v2");
  add_read(hist, 3, 1, 50, 60, {1, 1}, "v1");
}

void build_write_below_frontier(History& hist) {
  // A write completing with a version at/below an already-completed
  // write's version: timestamps went backwards.
  add_write(hist, 1, 1, 0, 10, {5, 1}, "high");
  add_write(hist, 2, 1, 20, 30, {3, 2}, "low");
}

TEST(CheckerTest, MutationCorpusAllRejected) {
  const CorpusEntry corpus[] = {
      {"stale-read", build_stale_read, 1},
      {"forged-version", build_forged_version, 1},
      {"forged-value", build_forged_value, 1},
      {"two-lurking-base", build_two_lurking_base, 1},
      {"non-monotonic-pair", build_non_monotonic_pair, 1},
      {"write-below-frontier", build_write_below_frontier, 1},
  };
  for (const CorpusEntry& entry : corpus) {
    History hist;
    entry.build(hist);
    auto r = check_bft_linearizability(hist, {66});
    EXPECT_FALSE(r.ok(entry.max_b))
        << entry.name << " was accepted: " << r.summary();
  }
}

TEST(CheckerTest, OverwriteMaskingIsPerObject) {
  // Writes to a DIFFERENT object cannot mask a lurking write: the §7
  // metric must ignore them. Two post-stop writes land on object 2; the
  // lurking write on object 1 surfaces with zero object-1 overwrites, so
  // ok_plus(1, 2) holds.
  History hist;
  add_write(hist, 1, 1, 0, 10, {1, 1}, "obj1");
  hist.record_stop(66, 100);
  add_write(hist, 1, 2, 110, 120, {1, 1}, "obj2-a");
  add_write(hist, 1, 2, 130, 140, {2, 1}, "obj2-b");
  add_read(hist, 2, 1, 300, 310, {2, 66}, "lurker");
  auto r = check_bft_linearizability(hist, {66});
  ASSERT_EQ(r.lurking.count(66), 1u);
  EXPECT_EQ(r.lurking.at(66).count, 1);
  EXPECT_EQ(r.lurking.at(66).overwrites_before_last_surface, 0);
  EXPECT_TRUE(r.ok_plus(1, 2)) << r.summary();

  // Same shape but the overwrites hit object 1 itself: now they count.
  History masked;
  add_write(masked, 1, 1, 0, 10, {1, 1}, "obj1");
  masked.record_stop(66, 100);
  add_write(masked, 1, 1, 110, 120, {2, 1}, "over-a");
  add_write(masked, 1, 1, 130, 140, {3, 1}, "over-b");
  add_read(masked, 2, 1, 300, 310, {4, 66}, "lurker");
  auto r2 = check_bft_linearizability(masked, {66});
  EXPECT_EQ(r2.lurking.at(66).overwrites_before_last_surface, 2);
  EXPECT_FALSE(r2.ok_plus(1, 2));
}

TEST(CheckerTest, ConcurrentOverwritesAreOneChainLink) {
  // Regression: explorer seed 13175756882366232029 (strong mode, lossy
  // link, pipelined client). Two correct writes justified by the SAME
  // certificate run concurrently, both land on timestamp value 2, and
  // both complete after the stop. The frontier advanced once, so the
  // stash at (2, 66) — which wins the id tiebreak over both — is
  // legitimate lurking, not §7 masking. The old raw completed-write
  // count called this 2 "consecutive" overwrites and failed ok_plus.
  History hist;
  add_write(hist, 1, 1, 0, 10, {1, 1}, "seed");
  hist.record_stop(66, 100);
  add_write(hist, 2, 1, 110, 200, {2, 2}, "conc-a");  // overlapping
  add_write(hist, 3, 1, 120, 190, {2, 3}, "conc-b");  // intervals
  add_read(hist, 2, 1, 300, 310, {2, 66}, "lurker");
  auto r = check_bft_linearizability(hist, {66});
  ASSERT_EQ(r.lurking.count(66), 1u);
  EXPECT_EQ(r.lurking.at(66).count, 1);
  EXPECT_EQ(r.lurking.at(66).overwrites_before_last_surface, 1);
  EXPECT_TRUE(r.ok_plus(1, 2)) << r.summary();
}

TEST(CheckerTest, PreStopStragglerIsNotAChainLink) {
  // A write INVOKED before the stop may have read a certificate older
  // than the stash's justification, so it proves nothing about flushing
  // — only writes invoked after the stop start a chain. Here the
  // straggler (invoked 50 < stop 100) plus one post-stop write is a
  // chain of 1: within the k=2 bound.
  History hist;
  add_write(hist, 1, 1, 0, 10, {1, 1}, "seed");
  hist.record_stop(66, 100);
  add_write(hist, 2, 1, 50, 150, {2, 2}, "straggler");
  add_write(hist, 3, 1, 160, 190, {3, 3}, "post");
  add_read(hist, 2, 1, 300, 310, {4, 66}, "lurker");
  auto r = check_bft_linearizability(hist, {66});
  EXPECT_EQ(r.lurking.at(66).overwrites_before_last_surface, 1);
  EXPECT_TRUE(r.ok_plus(1, 2)) << r.summary();

  // Replace the straggler with a post-stop write sequenced before the
  // second: now the chain is 2 and ok_plus(1, 2) must fail.
  History chained;
  add_write(chained, 1, 1, 0, 10, {1, 1}, "seed");
  chained.record_stop(66, 100);
  add_write(chained, 2, 1, 110, 150, {2, 2}, "link-1");
  add_write(chained, 3, 1, 160, 190, {3, 3}, "link-2");
  add_read(chained, 2, 1, 300, 310, {4, 66}, "lurker");
  auto r2 = check_bft_linearizability(chained, {66});
  EXPECT_EQ(r2.lurking.at(66).overwrites_before_last_surface, 2);
  EXPECT_FALSE(r2.ok_plus(1, 2));
}

TEST(CheckerTest, ChainPicksMaximumSequentialSubset) {
  // Three post-stop writes: two concurrent with each other, one after
  // both. The longest sequential chain is 2 (either concurrent write,
  // then the late one) even though the raw completed count is 3.
  History hist;
  add_write(hist, 1, 1, 0, 10, {1, 1}, "seed");
  hist.record_stop(66, 100);
  add_write(hist, 2, 1, 110, 200, {2, 2}, "conc-a");
  add_write(hist, 3, 1, 120, 190, {2, 3}, "conc-b");
  add_write(hist, 1, 1, 210, 250, {3, 1}, "late");
  add_read(hist, 2, 1, 300, 310, {4, 66}, "lurker");
  auto r = check_bft_linearizability(hist, {66});
  EXPECT_EQ(r.lurking.at(66).overwrites_before_last_surface, 2);
  EXPECT_FALSE(r.ok_plus(1, 2));
  EXPECT_TRUE(r.ok_plus(1, 3));
}

// ---- crash/recovery metadata through split_history ---------------------

TEST(CheckerCrashTest, OpsSpanningCrashesCountsInFlightOps) {
  History hist;
  // In flight across the whole downtime [100, 200).
  add_write(hist, 1, 1, 50, 250, {1, 1}, "spans");
  // Entirely inside the downtime.
  add_write(hist, 2, 1, 120, 180, {2, 2}, "inside");
  // Finished before the crash: not spanning.
  add_write(hist, 3, 1, 10, 90, {3, 3}, "before");
  // Started after the restart: not spanning.
  add_write(hist, 1, 1, 210, 260, {4, 1}, "after");
  hist.record_crash(2, 100, 200);
  EXPECT_EQ(hist.ops_spanning_crashes(), 2u);
}

TEST(CheckerCrashTest, CrashBoundaryInstantsDoNotOverlap) {
  History hist;
  // Responds exactly at the crash instant: the reply was already
  // delivered when the replica died — not spanning.
  add_write(hist, 1, 1, 50, 100, {1, 1}, "ends-at-crash");
  // Invoked exactly at the restart instant: replica is back — no overlap.
  add_write(hist, 2, 1, 200, 220, {2, 2}, "starts-at-restart");
  // One tick into the downtime: spanning.
  add_write(hist, 3, 1, 60, 101, {3, 3}, "just-inside");
  hist.record_crash(0, 100, 200);
  EXPECT_EQ(hist.ops_spanning_crashes(), 1u);
}

TEST(CheckerCrashTest, NeverRestartedCrashSpansRemainder) {
  History hist;
  add_write(hist, 1, 1, 10, 50, {1, 1}, "before");
  add_write(hist, 2, 1, 120, 160, {2, 2}, "during");
  add_write(hist, 3, 1, 500, 600, {3, 3}, "much-later");
  hist.record_crash(1, 100, /*restarted_at=*/0);  // down for the run
  EXPECT_EQ(hist.ops_spanning_crashes(), 2u);
}

TEST(CheckerCrashTest, SplitCopiesCrashesIntoEveryPart) {
  // A crashed replica is down for every object its group serves, so the
  // crash metadata must reach every shard's sub-history — including a
  // shard that recorded no operations at all.
  History hist;
  add_write(hist, 1, 2, 50, 250, {1, 1}, "spans");  // object 2 -> part 0
  hist.record_crash(3, 100, 200);
  hist.record_stop(66, 300);

  const auto parts = checker::split_history(
      hist, 2, [](checker::ObjectId object) { return object % 2; });
  ASSERT_EQ(parts.size(), 2u);
  // Part 1 is empty of ops but still carries the crash + stop events.
  EXPECT_EQ(parts[1].completed_count(), 0u);
  ASSERT_EQ(parts[1].crashes().size(), 1u);
  EXPECT_EQ(parts[1].crashes()[0].replica, 3u);
  EXPECT_EQ(parts[1].crashes()[0].restarted_at, 200u);
  ASSERT_EQ(parts[1].stops().size(), 1u);
  // Part 0 holds the single in-flight op; its spanning count survives
  // the split.
  EXPECT_EQ(parts[0].completed_count(), 1u);
  EXPECT_EQ(parts[0].ops_spanning_crashes(), 1u);
  // The empty part checks clean — an empty sub-history is linearizable.
  const auto check = check_bft_linearizability(parts[1], {66});
  EXPECT_TRUE(check.ok(1)) << check.summary();
}

TEST(CheckerCrashTest, RestartInterleavedWithInFlightWritesStaysOk) {
  // The shape the explorer's crash scenarios produce: a write invoked
  // before the crash completes after the restarted replica recovered via
  // state transfer, and later reads see it. The history is perfectly
  // linearizable; the crash metadata must not perturb the verdict.
  History hist;
  add_write(hist, 1, 1, 0, 10, {1, 1}, "pre");
  add_write(hist, 2, 1, 90, 210, {2, 2}, "across-restart");
  hist.record_crash(1, 100, 200);
  add_read(hist, 3, 1, 220, 230, {2, 2}, "across-restart");
  auto r = check_bft_linearizability(hist, {});
  EXPECT_TRUE(r.ok(0)) << r.summary();
  EXPECT_EQ(hist.ops_spanning_crashes(), 1u);
}

}  // namespace
}  // namespace bftbc::checker
