// Unit tests for the metrics/tracing subsystem (src/metrics/) plus the
// Summary sort-cache contract it leans on, and an end-to-end check that
// a harness Cluster populates the registry and tracer during protocol
// operations.
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>

#include <gtest/gtest.h>

#include "harness/cluster.h"
#include "metrics/bench_report.h"
#include "metrics/json.h"
#include "metrics/registry.h"
#include "metrics/trace.h"
#include "util/stats.h"

namespace bftbc {
namespace {

using metrics::BenchArgs;
using metrics::BenchReport;
using metrics::JsonWriter;
using metrics::MetricsRegistry;
using metrics::TraceKind;
using metrics::Tracer;

// ---------------------------------------------------------------- registry

TEST(RegistryTest, ResolveOrCreateReturnsSameSlot) {
  MetricsRegistry reg;
  metrics::Counter& a = reg.counter("x");
  a.inc(3);
  metrics::Counter& b = reg.counter("x");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(b.value, 3u);
}

TEST(RegistryTest, HandlesStayValidAcrossManyInsertions) {
  MetricsRegistry reg;
  metrics::Counter& first = reg.counter("first");
  // Force plenty of further allocations; deque-backed slots must not move.
  for (int i = 0; i < 1000; ++i) {
    reg.counter("c" + std::to_string(i)).inc();
  }
  first.inc(7);
  EXPECT_EQ(reg.counter("first").value, 7u);
}

TEST(RegistryTest, ScopePrefixesNames) {
  MetricsRegistry reg;
  reg.scoped("replica/3").counter("grants").inc(5);
  EXPECT_EQ(reg.counter("replica/3/grants").value, 5u);
  reg.scoped("client/9").summary("lat_ms").add(1.5);
  EXPECT_EQ(reg.summary("client/9/lat_ms").count(), 1u);
}

TEST(RegistryTest, FoldCountersUsesSetSemantics) {
  MetricsRegistry reg;
  Counters legacy;
  legacy.inc("reply_write", 4);
  reg.fold_counters("replica/0", legacy);
  // Folding the same cumulative source twice must not double-count.
  reg.fold_counters("replica/0", legacy);
  EXPECT_EQ(reg.counter("replica/0/reply_write").value, 4u);
  legacy.inc("reply_write", 2);
  reg.fold_counters("replica/0", legacy);
  EXPECT_EQ(reg.counter("replica/0/reply_write").value, 6u);
}

TEST(RegistryTest, MergeAddsCountersAndMergesSamples) {
  MetricsRegistry a;
  MetricsRegistry b;
  a.counter("n").inc(2);
  b.counter("n").inc(3);
  a.summary("lat").add(1.0);
  b.summary("lat").add(3.0);
  b.gauge("depth").set(9.0);
  b.histogram("phases").add(2);
  a.merge(b);
  EXPECT_EQ(a.counter("n").value, 5u);
  EXPECT_EQ(a.summary("lat").count(), 2u);
  EXPECT_DOUBLE_EQ(a.summary("lat").mean(), 2.0);
  EXPECT_DOUBLE_EQ(a.gauge("depth").value, 9.0);
  EXPECT_EQ(a.histogram("phases").total(), 1u);
}

TEST(RegistryTest, ResetDropsEverything) {
  MetricsRegistry reg;
  reg.counter("x").inc();
  reg.summary("s").add(1);
  reg.reset();
  EXPECT_TRUE(reg.counter_names().empty());
  EXPECT_TRUE(reg.summary_names().empty());
  EXPECT_EQ(reg.counter("x").value, 0u);
}

// ------------------------------------------------------------------- json

TEST(JsonWriterTest, EscapesStringsAndFormatsScalars) {
  JsonWriter w;
  w.begin_object();
  w.key("s");
  w.value("a\"b\\c\n");
  w.key("i");
  w.value(std::int64_t{-3});
  w.key("u");
  w.value(std::uint64_t{18446744073709551615ull});
  w.key("b");
  w.value(true);
  w.end_object();
  const std::string out = std::move(w).take();
  EXPECT_NE(out.find("\"a\\\"b\\\\c\\n\""), std::string::npos);
  EXPECT_NE(out.find("-3"), std::string::npos);
  EXPECT_NE(out.find("18446744073709551615"), std::string::npos);
  EXPECT_NE(out.find("true"), std::string::npos);
}

TEST(JsonWriterTest, NonFiniteDoublesBecomeNull) {
  JsonWriter w;
  w.begin_array();
  w.value(std::numeric_limits<double>::quiet_NaN());
  w.value(std::numeric_limits<double>::infinity());
  w.end_array();
  const std::string out = std::move(w).take();
  EXPECT_EQ(out.find("nan"), std::string::npos);
  EXPECT_EQ(out.find("inf"), std::string::npos);
  EXPECT_NE(out.find("null"), std::string::npos);
}

TEST(RegistryTest, ToJsonEmitsAllFourSections) {
  MetricsRegistry reg;
  reg.counter("msgs").inc(12);
  reg.gauge("depth").set(1.5);
  reg.summary("lat_ms").add(2.0);
  reg.histogram("phases").add(3);
  const std::string json = reg.to_json();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"summaries\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"msgs\": 12"), std::string::npos);
  // Summary is emitted as a snapshot object.
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
}

// ----------------------------------------------------------------- tracer

TEST(TracerTest, RingWrapsKeepingNewestEvents) {
  Tracer t(4);
  for (std::uint64_t i = 0; i < 10; ++i) {
    t.record(i, TraceKind::kUser, i, 0, "e" + std::to_string(i));
  }
  EXPECT_EQ(t.size(), 4u);
  EXPECT_EQ(t.total_recorded(), 10u);
  auto events = t.events();
  ASSERT_EQ(events.size(), 4u);
  // Oldest-first chronological order: 6, 7, 8, 9.
  EXPECT_EQ(events.front().time, 6u);
  EXPECT_EQ(events.back().time, 9u);
  EXPECT_EQ(events.back().detail, "e9");
}

TEST(TracerTest, ZeroCapacityDisablesRecording) {
  Tracer t(0);
  EXPECT_FALSE(t.enabled());
  t.record(1, TraceKind::kUser, 0, 0, "dropped");
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.total_recorded(), 0u);
}

TEST(TracerTest, DumpRendersOneLinePerEvent) {
  Tracer t(8);
  t.record(1000, TraceKind::kMsgSend, 1, 2, "64B");
  t.record(2000, TraceKind::kMsgDeliver, 1, 2);
  std::ostringstream os;
  t.dump(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("SEND"), std::string::npos);
  EXPECT_NE(out.find("DELIVER"), std::string::npos);
  EXPECT_NE(out.find("64B"), std::string::npos);
}

// ------------------------------------------- Summary sort-cache contract

// Pins the percentile sort-once cache: reads after a post-read add()
// must see the new sample (the cache is invalidated, not stale).
TEST(SummaryTest, AddAfterReadInvalidatesSortCache) {
  Summary s;
  for (double x : {5.0, 1.0, 3.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(1.0), 5.0);  // cache is now warm
  s.add(0.5);
  s.add(9.0);
  EXPECT_DOUBLE_EQ(s.percentile(0.0), 0.5);
  EXPECT_DOUBLE_EQ(s.percentile(1.0), 9.0);
  EXPECT_DOUBLE_EQ(s.median(), 3.0);
  Summary other;
  other.add(100.0);
  s.merge(other);  // merge must also invalidate
  EXPECT_DOUBLE_EQ(s.percentile(1.0), 100.0);
}

// min()/max() are O(1) running values; interleaving reads with further
// record()s must keep them — and the percentiles — coherent at every
// step (a stale sorted cache or stale extrema would diverge here).
TEST(SummaryTest, MinMaxPercentileAfterInterleavedRecordRead) {
  Summary s;
  EXPECT_DOUBLE_EQ(s.min(), 0.0);  // empty sentinel
  EXPECT_DOUBLE_EQ(s.max(), 0.0);

  s.add(4.0);
  EXPECT_DOUBLE_EQ(s.min(), 4.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_DOUBLE_EQ(s.percentile(0.5), 4.0);

  s.add(-2.0);  // record after a read: new minimum
  EXPECT_DOUBLE_EQ(s.min(), -2.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);

  s.add(10.0);  // and a new maximum
  EXPECT_DOUBLE_EQ(s.max(), 10.0);
  EXPECT_DOUBLE_EQ(s.percentile(0.0), -2.0);
  EXPECT_DOUBLE_EQ(s.percentile(1.0), 10.0);
  EXPECT_DOUBLE_EQ(s.median(), 4.0);

  s.add(3.0);  // interior sample: extrema unchanged, median moves
  EXPECT_DOUBLE_EQ(s.min(), -2.0);
  EXPECT_DOUBLE_EQ(s.max(), 10.0);
  EXPECT_DOUBLE_EQ(s.median(), 4.0);  // nearest-rank of {-2,3,4,10}

  Summary other;
  other.add(-7.0);
  other.add(1.0);
  s.merge(other);  // merge folds the other summary's extrema in
  EXPECT_DOUBLE_EQ(s.min(), -7.0);
  EXPECT_DOUBLE_EQ(s.max(), 10.0);
  EXPECT_DOUBLE_EQ(s.percentile(0.0), -7.0);

  Summary into_empty;
  into_empty.merge(s);  // merge into an empty summary adopts extrema
  EXPECT_DOUBLE_EQ(into_empty.min(), -7.0);
  EXPECT_DOUBLE_EQ(into_empty.max(), 10.0);

  s.merge(Summary{});  // merging an empty summary is a no-op
  EXPECT_DOUBLE_EQ(s.min(), -7.0);
  EXPECT_DOUBLE_EQ(s.max(), 10.0);
  EXPECT_EQ(s.count(), 6u);
}

TEST(SummaryTest, SnapshotMatchesDirectReads) {
  Summary s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  auto snap = s.snapshot();
  EXPECT_EQ(snap.count, 100u);
  EXPECT_DOUBLE_EQ(snap.mean, s.mean());
  EXPECT_DOUBLE_EQ(snap.p50, s.percentile(0.5));
  EXPECT_DOUBLE_EQ(snap.p99, s.percentile(0.99));
  EXPECT_DOUBLE_EQ(snap.min, 1.0);
  EXPECT_DOUBLE_EQ(snap.max, 100.0);
}

// ------------------------------------------------------------ bench report

TEST(BenchReportTest, ParseBenchArgsStripsSharedFlags) {
  const char* raw[] = {"bench", "--smoke", "--json", "/tmp/x.json",
                       "--benchmark_min_time=0.1"};
  std::vector<char*> argv;
  for (const char* a : raw) argv.push_back(const_cast<char*>(a));
  int argc = static_cast<int>(argv.size());
  BenchArgs args = metrics::parse_bench_args(argc, argv.data());
  EXPECT_TRUE(args.smoke);
  EXPECT_EQ(args.json_path, "/tmp/x.json");
  ASSERT_EQ(argc, 2);
  EXPECT_STREQ(argv[0], "bench");
  EXPECT_STREQ(argv[1], "--benchmark_min_time=0.1");
}

TEST(BenchReportTest, JsonHasSchemaConfigAndSigCacheCounters) {
  BenchArgs args;
  args.smoke = true;
  BenchReport report("bench_unit", args);
  report.set_config("rounds", std::int64_t{7});
  report.summary("demo/lat_ms").add(1.25);
  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"schema_version\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"bench\": \"bench_unit\""), std::string::npos);
  EXPECT_NE(json.find("\"rounds\": \"7\""), std::string::npos);
  EXPECT_NE(json.find("\"smoke\""), std::string::npos);
  // Pre-created so CI schema checks can rely on their presence.
  EXPECT_NE(json.find("\"sig_cache_hit\""), std::string::npos);
  EXPECT_NE(json.find("\"sig_cache_miss\""), std::string::npos);
  EXPECT_NE(json.find("\"sig_verify_calls\""), std::string::npos);
  EXPECT_NE(json.find("\"demo/lat_ms\""), std::string::npos);
}

TEST(BenchReportTest, FinishWritesJsonFile) {
  const std::string path =
      testing::TempDir() + "metrics_test_bench_report.json";
  BenchArgs args;
  args.json_path = path;
  BenchReport report("bench_unit", args);
  report.counter("ops").inc(3);
  EXPECT_EQ(report.finish(), 0);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_NE(buf.str().find("\"ops\": 3"), std::string::npos);
  std::remove(path.c_str());
}

TEST(BenchReportTest, FinishFailsOnUnwritablePath) {
  BenchArgs args;
  args.json_path = "/nonexistent-dir/deeply/nested/out.json";
  BenchReport report("bench_unit", args);
  EXPECT_EQ(report.finish(), 1);
}

// ------------------------------------------------------ cluster integration

TEST(ClusterMetricsTest, ProtocolOpsPopulateRegistryAndTracer) {
  harness::ClusterOptions o;
  o.seed = 99;
  harness::Cluster cluster(o);
  auto& c = cluster.add_client(1);
  for (int i = 0; i < 3; ++i) {
    auto w = cluster.write(c, 1, to_bytes("v" + std::to_string(i)));
    ASSERT_TRUE(w.is_ok());
  }
  auto r = cluster.read(c, 1);
  ASSERT_TRUE(r.is_ok());

  MetricsRegistry& reg = cluster.snapshot_metrics();

  // Client phase latencies (ms summaries, one sample per phase per op).
  EXPECT_EQ(reg.summary("client.write.total_ms").count(), 3u);
  EXPECT_EQ(reg.summary("client.write.read_ts_ms").count(), 3u);
  EXPECT_EQ(reg.summary("client.write.prepare_ms").count(), 3u);
  EXPECT_EQ(reg.summary("client.write.write_ms").count(), 3u);
  EXPECT_EQ(reg.summary("client.read.total_ms").count(), 1u);
  EXPECT_GT(reg.summary("client.write.total_ms").mean(), 0.0);

  // Replica-side grant counters and prepare-list sizes.
  std::uint64_t grants = 0;
  for (int rep = 0; rep < 4; ++rep) {
    grants += reg.counter("replica/" + std::to_string(rep) + "/grants").value;
  }
  EXPECT_GT(grants, 0u);
  EXPECT_GT(reg.histogram("replica.plist_size").total(), 0u);

  // Network totals recorded through direct handles.
  EXPECT_GT(reg.counter("net/msgs_sent").value, 0u);
  EXPECT_GT(reg.counter("net/msgs_delivered").value, 0u);
  EXPECT_GT(reg.counter("net/bytes_sent").value, 0u);

  // Keystore counters folded in unscoped.
  EXPECT_GT(reg.counter("sign").value, 0u);

  // Tracer captured op begin/end and phase transitions.
  bool saw_begin = false, saw_end = false, saw_phase = false;
  for (const auto& e : cluster.tracer().events()) {
    saw_begin |= e.kind == TraceKind::kOpBegin;
    saw_end |= e.kind == TraceKind::kOpEnd;
    saw_phase |= e.kind == TraceKind::kPhase;
  }
  EXPECT_TRUE(saw_begin);
  EXPECT_TRUE(saw_end);
  EXPECT_TRUE(saw_phase);

  // dump_trace produces a usable failure-path dump.
  std::ostringstream os;
  cluster.dump_trace(os);
  EXPECT_NE(os.str().find("OP_BEGIN"), std::string::npos);
}

TEST(ClusterMetricsTest, SnapshotIsIdempotent) {
  harness::ClusterOptions o;
  harness::Cluster cluster(o);
  auto& c = cluster.add_client(1);
  ASSERT_TRUE(cluster.write(c, 1, to_bytes("v")).is_ok());
  MetricsRegistry& reg = cluster.snapshot_metrics();
  const std::uint64_t grants0 = reg.counter("replica/0/grants").value;
  const std::uint64_t signs = reg.counter("sign").value;
  cluster.snapshot_metrics();
  cluster.snapshot_metrics();
  EXPECT_EQ(reg.counter("replica/0/grants").value, grants0);
  EXPECT_EQ(reg.counter("sign").value, signs);
}

TEST(ClusterMetricsTest, TraceCapacityZeroDisablesClusterTracing) {
  harness::ClusterOptions o;
  o.trace_capacity = 0;
  harness::Cluster cluster(o);
  auto& c = cluster.add_client(1);
  ASSERT_TRUE(cluster.write(c, 1, to_bytes("v")).is_ok());
  EXPECT_EQ(cluster.tracer().total_recorded(), 0u);
}

}  // namespace
}  // namespace bftbc
