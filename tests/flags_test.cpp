// Tests for the command-line flag parser used by examples and benches.
#include <gtest/gtest.h>

#include "util/flags.h"

namespace bftbc {
namespace {

std::vector<char*> argv_of(std::vector<std::string>& args) {
  std::vector<char*> out;
  for (auto& a : args) out.push_back(a.data());
  return out;
}

TEST(FlagsTest, DefaultsWhenUnset) {
  FlagSet flags;
  auto& f = flags.add_int("f", 1, "faults");
  auto& seed = flags.add_u64("seed", 42, "seed");
  auto& rate = flags.add_double("rate", 0.5, "rate");
  auto& verbose = flags.add_bool("verbose", false, "verbosity");
  auto& name = flags.add_string("name", "dflt", "name");

  std::vector<std::string> args{"prog"};
  auto argv = argv_of(args);
  flags.parse(static_cast<int>(argv.size()), argv.data());

  EXPECT_EQ(*f, 1);
  EXPECT_EQ(*seed, 42u);
  EXPECT_DOUBLE_EQ(*rate, 0.5);
  EXPECT_FALSE(*verbose);
  EXPECT_EQ(*name, "dflt");
}

TEST(FlagsTest, EqualsSyntax) {
  FlagSet flags;
  auto& f = flags.add_int("f", 1, "faults");
  auto& rate = flags.add_double("rate", 0.5, "rate");
  std::vector<std::string> args{"prog", "--f=3", "--rate=0.25"};
  auto argv = argv_of(args);
  flags.parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_EQ(*f, 3);
  EXPECT_DOUBLE_EQ(*rate, 0.25);
}

TEST(FlagsTest, SpaceSyntax) {
  FlagSet flags;
  auto& seed = flags.add_u64("seed", 0, "seed");
  auto& name = flags.add_string("name", "", "name");
  std::vector<std::string> args{"prog", "--seed", "99", "--name", "xyz"};
  auto argv = argv_of(args);
  flags.parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_EQ(*seed, 99u);
  EXPECT_EQ(*name, "xyz");
}

TEST(FlagsTest, BareBooleanFlag) {
  FlagSet flags;
  auto& verbose = flags.add_bool("verbose", false, "v");
  auto& f = flags.add_int("f", 1, "faults");
  std::vector<std::string> args{"prog", "--verbose", "--f", "2"};
  auto argv = argv_of(args);
  flags.parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_TRUE(*verbose);
  EXPECT_EQ(*f, 2);
}

TEST(FlagsTest, BooleanExplicitValues) {
  FlagSet flags;
  auto& a = flags.add_bool("a", false, "");
  auto& b = flags.add_bool("b", true, "");
  std::vector<std::string> args{"prog", "--a=true", "--b=false"};
  auto argv = argv_of(args);
  flags.parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_TRUE(*a);
  EXPECT_FALSE(*b);
}

TEST(FlagsTest, PositionalArgumentsCollected) {
  FlagSet flags;
  auto& f = flags.add_int("f", 1, "");
  std::vector<std::string> args{"prog", "input.txt", "--f=2", "output.txt"};
  auto argv = argv_of(args);
  flags.parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_EQ(*f, 2);
  ASSERT_EQ(flags.positional().size(), 2u);
  EXPECT_EQ(flags.positional()[0], "input.txt");
  EXPECT_EQ(flags.positional()[1], "output.txt");
}

TEST(FlagsTest, NegativeNumbers) {
  FlagSet flags;
  auto& delta = flags.add_int("delta", 0, "");
  std::vector<std::string> args{"prog", "--delta=-7"};
  auto argv = argv_of(args);
  flags.parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_EQ(*delta, -7);
}

TEST(FlagsTest, UsageListsFlagsAndDefaults) {
  FlagSet flags;
  flags.add_int("f", 3, "tolerated faults");
  flags.add_string("mode", "base", "protocol mode");
  const std::string usage = flags.usage("prog");
  EXPECT_NE(usage.find("--f"), std::string::npos);
  EXPECT_NE(usage.find("3"), std::string::npos);
  EXPECT_NE(usage.find("tolerated faults"), std::string::npos);
  EXPECT_NE(usage.find("--mode"), std::string::npos);
  EXPECT_NE(usage.find("base"), std::string::npos);
}

TEST(FlagsDeathTest, UnknownFlagExits) {
  FlagSet flags;
  flags.add_int("f", 1, "");
  std::vector<std::string> args{"prog", "--bogus=1"};
  auto argv = argv_of(args);
  EXPECT_EXIT(flags.parse(static_cast<int>(argv.size()), argv.data()),
              ::testing::ExitedWithCode(2), "unknown flag");
}

TEST(FlagsDeathTest, BadValueExits) {
  FlagSet flags;
  flags.add_int("f", 1, "");
  std::vector<std::string> args{"prog", "--f=notanumber"};
  auto argv = argv_of(args);
  EXPECT_EXIT(flags.parse(static_cast<int>(argv.size()), argv.data()),
              ::testing::ExitedWithCode(2), "bad value");
}

TEST(FlagsDeathTest, MissingValueExits) {
  FlagSet flags;
  flags.add_int("f", 1, "");
  std::vector<std::string> args{"prog", "--f"};
  auto argv = argv_of(args);
  EXPECT_EXIT(flags.parse(static_cast<int>(argv.size()), argv.data()),
              ::testing::ExitedWithCode(2), "needs a value");
}

}  // namespace
}  // namespace bftbc
