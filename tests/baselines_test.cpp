// Tests for the baseline protocols — including the demonstrations of the
// weaknesses that motivate BFT-BC (§3.2, §8):
//   - classic BQS splits under client equivocation; BFT-BC does not
//   - classic BQS lets clients jump the timestamp space
//   - Phalanx-style reads can return null under partial writes
#include <gtest/gtest.h>

#include "harness/baseline_cluster.h"

namespace bftbc {
namespace {

using harness::BaselineOptions;
using harness::BqsCluster;
using harness::PhalanxCluster;

// ------------------------------------------------------------- BQS

TEST(BqsTest, WriteReadRoundtrip) {
  BqsCluster cluster;
  auto& c = cluster.add_client(1);
  auto w = cluster.write(c, 1, to_bytes("hello"));
  ASSERT_TRUE(w.is_ok());
  EXPECT_EQ(w.value().phases, 2);  // one fewer than BFT-BC
  auto r = cluster.read(cluster.add_client(2), 1);
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(to_string(r.value().value), "hello");
  EXPECT_EQ(r.value().phases, 1);
}

TEST(BqsTest, SequentialWritesAdvance) {
  BqsCluster cluster;
  auto& c = cluster.add_client(1);
  for (int i = 0; i < 5; ++i) {
    auto w = cluster.write(c, 1, to_bytes("v" + std::to_string(i)));
    ASSERT_TRUE(w.is_ok());
    EXPECT_EQ(w.value().ts.val, static_cast<std::uint64_t>(i + 1));
  }
}

TEST(BqsTest, SurvivesCrashFaults) {
  BqsCluster cluster;
  cluster.net().crash(0);
  auto& c = cluster.add_client(1);
  ASSERT_TRUE(cluster.write(c, 1, to_bytes("x")).is_ok());
  auto r = cluster.read(c, 1);
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(to_string(r.value().value), "x");
}

TEST(BqsTest, RejectsForgedWrites) {
  // A write whose signature doesn't verify is ignored by replicas.
  BqsCluster cluster;
  auto& good = cluster.add_client(1);
  ASSERT_TRUE(cluster.write(good, 1, to_bytes("genuine")).is_ok());
  // Reads still return the genuine value even if garbage was injected.
  auto r = cluster.read(good, 1);
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(to_string(r.value().value), "genuine");
}

TEST(BqsTest, EquivocationSplitsReplicas) {
  // THE motivating weakness: a Byzantine client binds two values to one
  // timestamp and BQS replicas happily diverge. (BFT-BC's prepare phase
  // makes this impossible — see ByzantineClientTest.)
  BqsCluster cluster;
  auto& good = cluster.add_client(1);
  ASSERT_TRUE(cluster.write(good, 1, to_bytes("v0")).is_ok());

  auto transport = cluster.make_transport(harness::client_node(66));
  baselines::BqsEquivocator attacker(cluster.config(), 66, cluster.keystore(),
                                     *transport, cluster.sim(),
                                     cluster.replica_nodes(),
                                     cluster.rng().split());
  bool done = false;
  attacker.attack(1, to_bytes("evil-A"), to_bytes("evil-B"),
                  [&] { done = true; });
  cluster.sim().run_while_pending([&] { return !done; });
  cluster.sim().run();  // let the split writes land

  // Replicas now disagree about the value at the same timestamp.
  std::set<std::string> values;
  for (quorum::ReplicaId r = 0; r < cluster.config().n; ++r) {
    const auto* e = cluster.replica(r).find_object(1);
    ASSERT_NE(e, nullptr);
    values.insert(to_string(e->value));
  }
  EXPECT_EQ(values.size(), 2u) << "equivocation should split the replicas";

  // Two readers can return DIFFERENT values for the same timestamp
  // (reads pick by ts; the value depends on which quorum answers).
  // At minimum, the split means some reader write-back is needed and
  // the state is not a single register value — the atomicity BFT-BC
  // provides is absent here.
}

TEST(BqsTest, TimestampJumpAccepted) {
  // BQS replicas accept any higher timestamp: a Byzantine client can
  // exhaust the space. We simulate by having the equivocator's split
  // write land, then checking a good client's next write jumps past it.
  BqsCluster cluster;
  auto& good = cluster.add_client(1);
  ASSERT_TRUE(cluster.write(good, 1, to_bytes("v0")).is_ok());

  // Direct replica poke: craft a legitimate signed write with a huge ts
  // from an authorized-but-Byzantine client.
  auto transport = cluster.make_transport(harness::client_node(66));
  auto signer =
      cluster.keystore().register_principal(quorum::client_principal(66));
  const quorum::Timestamp huge{1'000'000'000, 66};
  const Bytes value = to_bytes("jump");
  Writer w;  // BqsWriteReq wire format
  w.put_u64(1);
  w.put_bytes(value);
  huge.encode(w);
  w.put_u32(66);
  auto sig = signer.sign(
      baselines::bqs_value_statement(1, huge, crypto::sha256(value)));
  ASSERT_TRUE(sig.is_ok());
  w.put_bytes(sig.value());
  rpc::Envelope env;
  env.type = rpc::MsgType::kBqsWrite;
  env.rpc_id = 99;
  env.sender = quorum::client_principal(66);
  env.body = std::move(w).take();
  for (sim::NodeId n : cluster.replica_nodes()) transport->send(n, env);
  cluster.sim().run();

  // The good client's next write must go beyond the huge timestamp —
  // the space was effectively consumed (contrast: BFT-BC replicas drop
  // the unjustified jump; see ByzantineClientTest.TimestampExhaustion).
  auto w2 = cluster.write(good, 1, to_bytes("v1"));
  ASSERT_TRUE(w2.is_ok());
  EXPECT_GT(w2.value().ts.val, 1'000'000'000u);
}

// ------------------------------------------------------------- Phalanx

TEST(PhalanxTest, WriteReadRoundtrip) {
  PhalanxCluster cluster;
  EXPECT_EQ(cluster.config().n, 5u);  // 4f+1
  EXPECT_EQ(cluster.config().q, 4u);  // 3f+1
  auto& c = cluster.add_client(1);
  auto w = cluster.write(c, 1, to_bytes("hello"));
  ASSERT_TRUE(w.is_ok());
  cluster.settle();  // let the echo round commit everywhere
  auto r = cluster.read(c, 1);
  ASSERT_TRUE(r.is_ok());
  ASSERT_TRUE(r.value().value.has_value());
  EXPECT_EQ(to_string(*r.value().value), "hello");
}

TEST(PhalanxTest, SequentialWritesLinearize) {
  PhalanxCluster cluster;
  auto& c = cluster.add_client(1);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(cluster.write(c, 1, to_bytes("v" + std::to_string(i))).is_ok());
    cluster.settle();
    auto r = cluster.read(c, 1);
    ASSERT_TRUE(r.is_ok());
    ASSERT_TRUE(r.value().value.has_value());
    EXPECT_EQ(to_string(*r.value().value), "v" + std::to_string(i));
  }
}

TEST(PhalanxTest, EquivocationDoesNotCommitEitherValue) {
  // The echo round stops split writes: neither half can gather 3f+1
  // echoes, so neither value commits.
  PhalanxCluster cluster;
  auto& good = cluster.add_client(1);
  ASSERT_TRUE(cluster.write(good, 1, to_bytes("v0")).is_ok());
  cluster.settle();

  // Byzantine client: send v1 to replicas {0,1}, v2 to {2,3,4}, same ts.
  auto transport = cluster.make_transport(harness::client_node(66));
  const quorum::Timestamp ts{2, 66};
  auto send_write = [&](const Bytes& v, std::size_t lo, std::size_t hi) {
    Writer w;
    w.put_u64(1);
    w.put_bytes(v);
    ts.encode(w);
    w.put_bool(false);
    w.put_u32(0);
    rpc::Envelope env;
    env.type = rpc::MsgType::kPhalanxWrite;
    env.rpc_id = 1234;
    env.sender = quorum::client_principal(66);
    env.body = std::move(w).take();
    for (std::size_t i = lo; i < hi; ++i)
      transport->send(cluster.replica_nodes()[i], env);
  };
  send_write(to_bytes("evil-A"), 0, 2);
  send_write(to_bytes("evil-B"), 2, 5);
  cluster.settle();

  // No replica committed either evil value (echo quorum unreachable).
  for (quorum::ReplicaId r = 0; r < cluster.config().n; ++r) {
    const auto* c = cluster.replica(r).committed(1);
    ASSERT_NE(c, nullptr);
    EXPECT_EQ(to_string(c->value), "v0");
  }
}

TEST(PhalanxTest, PartialWriteYieldsNullRead) {
  // The weakness the paper's §8 calls out: an incomplete write leaves
  // the highest timestamp insufficiently vouched → readers get null.
  PhalanxCluster cluster;
  auto& good = cluster.add_client(1);
  ASSERT_TRUE(cluster.write(good, 1, to_bytes("v0")).is_ok());
  cluster.settle();

  // Byzantine client writes to ONE replica only; that replica echoes but
  // the value cannot commit anywhere... the single replica still REPORTS
  // its committed (old) value, so instead: partially deliver a write to
  // 4 of 5 replicas so it COMMITS at some but the read quorum straddles.
  // Simplest reliable trigger: crash a replica mid-write so commit is
  // partial, then read while the echo round is incomplete.
  auto& writer = cluster.add_client(2);
  bool wrote = false;
  writer.write(1, to_bytes("v1"),
               [&](Result<baselines::PhalanxClient::WriteResult> r) {
                 wrote = r.is_ok();
               });
  // Advance only a little: acks arrive but echo quorum hasn't completed
  // everywhere. Read DURING the write.
  auto& reader = cluster.add_client(3);
  std::optional<baselines::PhalanxClient::ReadResult> read_result;
  bool read_done = false;
  cluster.sim().run_until(600 * sim::kMicrosecond);
  reader.read(1, [&](Result<baselines::PhalanxClient::ReadResult> r) {
    if (r.is_ok()) read_result = std::move(r).take();
    read_done = true;
  });
  cluster.sim().run_while_pending([&] { return !read_done || !wrote; });

  ASSERT_TRUE(read_done);
  ASSERT_TRUE(read_result.has_value());
  // Either the reader caught the committed new value everywhere (timing)
  // or it observed the concurrent write and returned null. Both are
  // legal for Phalanx; the bench measures the null RATE. Here we only
  // require the mechanism functions without crashing and the field is
  // well-defined.
  if (!read_result->value.has_value()) {
    EXPECT_EQ(reader.metrics().get("null_reads"), 1u);
  }
  cluster.settle();
  auto r2 = cluster.read(reader, 1);
  ASSERT_TRUE(r2.is_ok());
  ASSERT_TRUE(r2.value().value.has_value());
  EXPECT_EQ(to_string(*r2.value().value), "v1");
}

TEST(PhalanxTest, IncompleteWriteYieldsNullReadDeterministic) {
  // Deterministic construction of the §8 weakness: partition the peer
  // links among replicas 1..4 so only replica 0 can gather an echo
  // quorum. A write then commits at replica 0 alone; a reader sees the
  // top timestamp vouched by just one replica (< f+1) → NULL.
  BaselineOptions o;
  o.link.jitter_mean = 0;  // deterministic delivery order
  PhalanxCluster cluster(o);
  auto& writer = cluster.add_client(1);
  ASSERT_TRUE(cluster.write(writer, 1, to_bytes("base")).is_ok());
  cluster.settle();

  // Cut replica<->replica links among {1,2,3,4}; replica 0 stays
  // connected to everyone, clients stay connected to everyone.
  for (sim::NodeId a = 1; a <= 4; ++a) {
    for (sim::NodeId b = a + 1; b <= 4; ++b) {
      cluster.net().partition(a, b);
    }
  }

  bool wrote = false;
  writer.write(1, to_bytes("half-committed"),
               [&](Result<baselines::PhalanxClient::WriteResult> r) {
                 wrote = r.is_ok();
               });
  cluster.sim().run_while_pending([&] { return !wrote; });
  cluster.settle();

  // Replica 0 committed; the others could not gather 3f+1 echoes.
  EXPECT_EQ(to_string(cluster.replica(0).committed(1)->value),
            "half-committed");
  EXPECT_EQ(to_string(cluster.replica(1).committed(1)->value), "base");

  auto& reader = cluster.add_client(2);
  auto r = cluster.read(reader, 1);
  ASSERT_TRUE(r.is_ok());
  EXPECT_FALSE(r.value().value.has_value())
      << "expected a null read: top timestamp lacks f+1 vouchers";
  EXPECT_GE(reader.metrics().get("null_reads"), 1u);

  // BFT-BC never does this: its read accepts a single self-certifying
  // reply (the certificate travels with the value) and writes it back.
}

}  // namespace
}  // namespace bftbc
