// Property sweep over network adversity: for every combination of loss,
// duplication, corruption, jitter, and f, the protocol must complete all
// operations and the final state must be the last write. This is the §2
// network model exercised wholesale.
#include <gtest/gtest.h>

#include "harness/cluster.h"

namespace bftbc {
namespace {

using harness::Cluster;
using harness::ClusterOptions;

struct NetParam {
  double loss;
  double dup;
  double corrupt;
  sim::Time jitter;
  std::uint32_t f;
  bool optimized;
};

class NetworkAdversityTest : public ::testing::TestWithParam<NetParam> {};

TEST_P(NetworkAdversityTest, OpsCompleteAndConverge) {
  const NetParam p = GetParam();
  ClusterOptions o;
  o.f = p.f;
  o.seed = 1234 + static_cast<std::uint64_t>(p.loss * 100) +
           static_cast<std::uint64_t>(p.dup * 10) + p.f;
  o.optimized = p.optimized;
  o.link.loss_probability = p.loss;
  o.link.duplicate_probability = p.dup;
  o.link.corrupt_probability = p.corrupt;
  o.link.jitter_mean = p.jitter;
  Cluster cluster(o);

  auto& a = cluster.add_client(1);
  auto& b = cluster.add_client(2);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(cluster.write(a, 1, to_bytes("a" + std::to_string(i))).is_ok())
        << "loss=" << p.loss << " i=" << i;
    ASSERT_TRUE(cluster.write(b, 1, to_bytes("b" + std::to_string(i))).is_ok());
  }
  auto r = cluster.read(a, 1);
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(to_string(r.value().value), "b3");
  EXPECT_EQ(r.value().ts.val, 8u);
}

std::vector<NetParam> make_grid() {
  std::vector<NetParam> grid;
  for (double loss : {0.0, 0.3}) {
    for (double dup : {0.0, 0.3}) {
      for (double corrupt : {0.0, 0.1}) {
        for (std::uint32_t f : {1u, 2u}) {
          grid.push_back(NetParam{loss, dup, corrupt,
                                  2 * sim::kMillisecond, f, false});
        }
      }
    }
  }
  // A few optimized-mode points on the nastiest corner.
  grid.push_back(NetParam{0.3, 0.3, 0.1, 2 * sim::kMillisecond, 1, true});
  grid.push_back(NetParam{0.3, 0.3, 0.1, 5 * sim::kMillisecond, 2, true});
  return grid;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, NetworkAdversityTest, ::testing::ValuesIn(make_grid()),
    [](const auto& info) {
      const NetParam& p = info.param;
      return "loss" + std::to_string(static_cast<int>(p.loss * 100)) +
             "_dup" + std::to_string(static_cast<int>(p.dup * 100)) +
             "_cor" + std::to_string(static_cast<int>(p.corrupt * 100)) +
             "_f" + std::to_string(p.f) + (p.optimized ? "_opt" : "");
    });

// Partitions: a minority partition stalls nothing; a majority partition
// stalls progress exactly until it heals.
TEST(PartitionTest, MinorityPartitionHarmless) {
  Cluster cluster([] { ClusterOptions o; o.seed = 9; return o; }());
  auto& c = cluster.add_client(1);
  // Cut replica 0 off from the client (2f+1 = 3 others still reachable).
  cluster.net().partition(0, harness::client_node(1));
  ASSERT_TRUE(cluster.write(c, 1, to_bytes("v")).is_ok());
  auto r = cluster.read(c, 1);
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(to_string(r.value().value), "v");
}

TEST(PartitionTest, MajorityPartitionStallsUntilHeal) {
  Cluster cluster([] { ClusterOptions o; o.seed = 10; return o; }());
  auto& c = cluster.add_client(1);
  // Cut the client from replicas 0 and 1: only 2 reachable < q = 3.
  cluster.net().partition(0, harness::client_node(1));
  cluster.net().partition(1, harness::client_node(1));

  bool done = false;
  c.write(1, to_bytes("stalled"), [&](Result<core::Client::WriteResult> r) {
    EXPECT_TRUE(r.is_ok());
    done = true;
  });
  // Nothing can complete while partitioned...
  cluster.sim().run_until(cluster.sim().now() + 500 * sim::kMillisecond);
  EXPECT_FALSE(done);

  // ...and the client's retransmission finishes the op after healing.
  cluster.net().heal_all();
  ASSERT_TRUE(cluster.run_until([&] { return done; }));
  auto r = cluster.read(c, 1);
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(to_string(r.value().value), "stalled");
}

TEST(PartitionTest, ReplicaSidePartitionToleratedUpToF) {
  // Replicas partitioned from EACH OTHER don't matter at all — BFT-BC
  // has no server-to-server communication (unlike the Phalanx baseline).
  Cluster cluster([] { ClusterOptions o; o.seed = 11; return o; }());
  for (quorum::ReplicaId a = 0; a < 4; ++a) {
    for (quorum::ReplicaId b = a + 1; b < 4; ++b) {
      cluster.net().partition(a, b);
    }
  }
  auto& c = cluster.add_client(1);
  ASSERT_TRUE(cluster.write(c, 1, to_bytes("no-server-gossip")).is_ok());
  auto r = cluster.read(c, 1);
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(to_string(r.value().value), "no-server-gossip");
}

// End-to-end over REAL RSA signatures (slow path: small keys, few ops).
TEST(RealCryptoTest, FullProtocolOverRsa) {
  ClusterOptions o;
  o.scheme = crypto::SignatureScheme::kRsa;
  o.rsa_bits = 512;
  o.seed = 77;
  Cluster cluster(o);
  auto& c = cluster.add_client(1);
  auto w = cluster.write(c, 1, to_bytes("rsa-signed"));
  ASSERT_TRUE(w.is_ok());
  EXPECT_EQ(w.value().phases, 3);
  auto r = cluster.read(cluster.add_client(2), 1);
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(to_string(r.value().value), "rsa-signed");
  // Certificates carried real RSA signatures end to end.
  EXPECT_GT(cluster.keystore().counters().get("sign"), 0u);
  EXPECT_GT(cluster.keystore().counters().get("verify"), 0u);
}

TEST(RealCryptoTest, RsaOptimizedMode) {
  ClusterOptions o;
  o.scheme = crypto::SignatureScheme::kRsa;
  o.rsa_bits = 512;
  o.optimized = true;
  o.seed = 78;
  Cluster cluster(o);
  auto& c = cluster.add_client(1);
  ASSERT_TRUE(cluster.write(c, 1, to_bytes("first")).is_ok());
  auto w = cluster.write(c, 1, to_bytes("second"));
  ASSERT_TRUE(w.is_ok());
  EXPECT_EQ(w.value().phases, 2);  // fast path over real crypto
}

}  // namespace
}  // namespace bftbc
