// Differential fuzzing of the Montgomery modexp engine.
//
// The schoolbook divmod ladder is slow but simple enough to trust; the
// Montgomery CIOS path and the CRT recombination in rsa_sign are the
// fast, tricky replacements. Each seed drives:
//   - mod_exp (Montgomery for odd moduli) vs mod_exp_schoolbook on
//     random (base, exp, modulus) triples across widths;
//   - Montgomery domain round-trips and mont_mul against plain a*b%m;
//   - CRT recombination identity against the direct m^d mod n, plus a
//     full RSA sign/verify round-trip with tamper rejection.
//
// Nightly CI sweeps a seed range; a failure names the seed so
//   bigint_diff_fuzz_test --seed N
// reproduces it exactly.
#include <gtest/gtest.h>

#include <string_view>
#include <vector>

#include "crypto/bigint.h"
#include "crypto/rsa.h"
#include "util/bytes.h"
#include "util/flags.h"
#include "util/rng.h"

namespace bftbc::crypto {

// --seed override: 0 means "run the built-in seed table". Set in main()
// before InitGoogleTest materializes the parameter generators.
std::uint64_t g_seed_override = 0;

namespace {

BigInt random_odd_with_bits(Rng& rng, std::size_t bits) {
  BigInt m = BigInt::random_with_bits(rng, bits);
  if (!m.is_odd()) m = m + BigInt(1);
  return m;
}

class BigIntDiffFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BigIntDiffFuzzTest, MontgomeryMatchesSchoolbook) {
  Rng rng(GetParam() ^ 0xd1ffe12e);
  const std::size_t widths[] = {32, 64, 160, 512, 1024};
  for (const std::size_t bits : widths) {
    for (int round = 0; round < 8; ++round) {
      const BigInt m = random_odd_with_bits(rng, bits);
      const BigInt base = BigInt::random_below(rng, m);
      const BigInt exp =
          BigInt::random_with_bits(rng, 1 + rng.next_below(bits));
      const BigInt fast = BigInt::mod_exp(base, exp, m);
      const BigInt slow = BigInt::mod_exp_schoolbook(base, exp, m);
      ASSERT_EQ(fast.to_hex(), slow.to_hex())
          << "bits=" << bits << " round=" << round;
    }
  }
}

TEST_P(BigIntDiffFuzzTest, MontgomeryEdgeExponents) {
  Rng rng(GetParam() ^ 0xed6e);
  const BigInt m = random_odd_with_bits(rng, 256);
  const BigInt base = BigInt::random_below(rng, m);
  for (const std::uint64_t e : {0ull, 1ull, 2ull, 3ull, 16ull, 65537ull}) {
    const BigInt exp(e);
    ASSERT_EQ(BigInt::mod_exp(base, exp, m).to_hex(),
              BigInt::mod_exp_schoolbook(base, exp, m).to_hex())
        << "e=" << e;
  }
  // base congruent to 0 and to m-1 (the -1 case exercises the final
  // conditional subtraction).
  ASSERT_EQ(BigInt::mod_exp(BigInt(0), BigInt(5), m).to_hex(),
            BigInt(0).to_hex());
  const BigInt minus_one = m - BigInt(1);
  ASSERT_EQ(BigInt::mod_exp(minus_one, BigInt(3), m).to_hex(),
            BigInt::mod_exp_schoolbook(minus_one, BigInt(3), m).to_hex());
}

TEST_P(BigIntDiffFuzzTest, MontMulMatchesPlainModmul) {
  Rng rng(GetParam() ^ 0x30147301);
  for (const std::size_t bits : {64, 192, 512}) {
    const BigInt m = random_odd_with_bits(rng, bits);
    const Montgomery mont(m);
    for (int round = 0; round < 16; ++round) {
      const BigInt a = BigInt::random_below(rng, m);
      const BigInt b = BigInt::random_below(rng, m);
      // Round-trip through the Montgomery domain.
      ASSERT_EQ(mont.from_mont(mont.to_mont(a)).to_hex(), (a % m).to_hex());
      // mont_mul on domain values equals plain modular multiplication.
      const BigInt product =
          mont.from_mont(mont.mont_mul(mont.to_mont(a), mont.to_mont(b)));
      ASSERT_EQ(product.to_hex(), ((a * b) % m).to_hex())
          << "bits=" << bits << " round=" << round;
    }
  }
}

TEST_P(BigIntDiffFuzzTest, CrtRecombinationMatchesDirectExponentiation) {
  Rng rng(GetParam() ^ 0xc127);
  const RsaKeyPair kp = rsa_generate(rng, 512);
  const RsaPrivateKey& k = kp.priv;
  for (int round = 0; round < 4; ++round) {
    const BigInt x = BigInt::random_below(rng, k.n);
    // The CRT path rsa_sign takes, spelled out.
    const BigInt yp = BigInt::mod_exp(x % k.p, k.dp, k.p);
    const BigInt yq = BigInt::mod_exp(x % k.q, k.dq, k.q);
    const BigInt h = (k.qinv * ((yp + k.p - (yq % k.p)) % k.p)) % k.p;
    const BigInt y = yq + k.q * h;
    ASSERT_EQ(y.to_hex(), BigInt::mod_exp(x, k.d, k.n).to_hex())
        << "round=" << round;
  }
}

TEST_P(BigIntDiffFuzzTest, RsaSignVerifyRoundTrip) {
  Rng rng(GetParam() ^ 0x125a);
  const RsaKeyPair kp = rsa_generate(rng, 512);
  for (int round = 0; round < 4; ++round) {
    Bytes msg = rng.bytes(1 + rng.next_below(200));
    const Bytes sig = rsa_sign(kp.priv, msg);
    ASSERT_TRUE(rsa_verify(kp.pub, msg, sig)) << round;
    Bytes bad_sig = sig;
    bad_sig[rng.next_below(bad_sig.size())] ^=
        static_cast<std::uint8_t>(1 + rng.next_below(255));
    ASSERT_FALSE(rsa_verify(kp.pub, msg, bad_sig)) << round;
    Bytes bad_msg = msg;
    bad_msg[rng.next_below(bad_msg.size())] ^= 0x01;
    ASSERT_FALSE(rsa_verify(kp.pub, bad_msg, sig)) << round;
  }
}

std::vector<std::uint64_t> fuzz_seeds() {
  if (g_seed_override != 0) return {g_seed_override};
  return {1, 2, 3, 4};
}

INSTANTIATE_TEST_SUITE_P(Seeds, BigIntDiffFuzzTest,
                         ::testing::ValuesIn(fuzz_seeds()));

}  // namespace
}  // namespace bftbc::crypto

// Custom main: gtest materializes parameterized suites inside
// InitGoogleTest, so --seed must be pulled out of argv FIRST; the
// remaining (gtest) flags are then handed to gtest untouched.
int main(int argc, char** argv) {
  std::vector<char*> ours{argv[0]};
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    if (arg.rfind("--seed", 0) == 0) {
      ours.push_back(argv[i]);
      if (arg == "--seed" && i + 1 < argc) ours.push_back(argv[++i]);
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;

  bftbc::FlagSet flags;
  auto& seed =
      flags.add_u64("seed", 0, "run only this fuzz seed (0 = full table)");
  int ours_argc = static_cast<int>(ours.size());
  flags.parse(ours_argc, ours.data());
  bftbc::crypto::g_seed_override = *seed;

  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
