// SimTransport: encode-once sends and same-tick coalescing (kBatch).
#include <gtest/gtest.h>

#include "rpc/transport.h"

namespace bftbc::rpc {
namespace {

class TransportTest : public ::testing::Test {
 protected:
  TransportTest()
      : net_(sim_, Rng(9),
             [] {
               sim::LinkConfig c;
               c.base_delay = 100;
               c.jitter_mean = 0;
               return c;
             }()) {}

  Envelope envelope(std::uint64_t rpc_id, const std::string& body) {
    Envelope env;
    env.type = MsgType::kReadTs;
    env.rpc_id = rpc_id;
    env.sender = 1;
    env.body = to_bytes(body);
    return env;
  }

  sim::Simulator sim_;
  sim::Network net_;
};

TEST_F(TransportTest, CoalescesSameTickSendsIntoOneWireMessage) {
  SimTransport sender(net_, 1, &sim_);
  SimTransport receiver(net_, 2);
  std::vector<Envelope> got;
  receiver.set_receiver(
      [&](sim::NodeId, const Envelope& env) { got.push_back(env); });

  sender.send(2, envelope(1, "a"));
  sender.send(2, envelope(2, "b"));
  sender.send(2, envelope(3, "c"));
  sim_.run_until(500);

  // One kBatch on the wire, three envelopes out of the receiving
  // transport — protocol code never sees the bundle.
  EXPECT_EQ(net_.counters().get("msgs_sent"), 1u);
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0].rpc_id, 1u);
  EXPECT_EQ(got[1].rpc_id, 2u);
  EXPECT_EQ(got[2].rpc_id, 3u);
  EXPECT_EQ(to_string(got[2].body), "c");
}

TEST_F(TransportTest, SingleSendPerTickSkipsBatchFraming) {
  SimTransport sender(net_, 1, &sim_);
  SimTransport receiver(net_, 2);
  std::vector<Envelope> got;
  receiver.set_receiver(
      [&](sim::NodeId, const Envelope& env) { got.push_back(env); });

  sender.send(2, envelope(1, "solo"));
  sim_.run_until(500);

  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].type, MsgType::kReadTs);  // not wrapped in kBatch
  EXPECT_EQ(net_.counters().get("msgs_sent"), 1u);
  // The wire carried exactly the envelope's own encoding.
  EXPECT_EQ(net_.counters().get("bytes_sent"),
            envelope(1, "solo").encode().size());
}

TEST_F(TransportTest, DifferentTicksAreNotCoalesced) {
  SimTransport sender(net_, 1, &sim_);
  SimTransport receiver(net_, 2);
  int delivered = 0;
  receiver.set_receiver([&](sim::NodeId, const Envelope&) { ++delivered; });

  sender.send(2, envelope(1, "a"));
  sim_.run_until(50);  // flush fires at tick 0; next send is a new tick
  sender.send(2, envelope(2, "b"));
  sim_.run_until(500);

  EXPECT_EQ(net_.counters().get("msgs_sent"), 2u);
  EXPECT_EQ(delivered, 2);
}

TEST_F(TransportTest, CoalescingGroupsPerDestination) {
  SimTransport sender(net_, 1, &sim_);
  SimTransport r2(net_, 2);
  SimTransport r3(net_, 3);
  int got2 = 0, got3 = 0;
  r2.set_receiver([&](sim::NodeId, const Envelope&) { ++got2; });
  r3.set_receiver([&](sim::NodeId, const Envelope&) { ++got3; });

  sender.send(2, envelope(1, "a"));
  sender.send(3, envelope(2, "b"));
  sender.send(2, envelope(3, "c"));
  sim_.run_until(500);

  // Two wire messages: one kBatch to node 2, one bare envelope to node 3.
  EXPECT_EQ(net_.counters().get("msgs_sent"), 2u);
  EXPECT_EQ(got2, 2);
  EXPECT_EQ(got3, 1);
}

TEST_F(TransportTest, NestedBatchEnvelopesAreDropped) {
  SimTransport sender(net_, 1);  // no coalescing: craft the batch by hand
  SimTransport receiver(net_, 2);
  int delivered = 0;
  receiver.set_receiver([&](sim::NodeId, const Envelope&) { ++delivered; });

  // A hand-built bundle containing a legitimate envelope and a nested
  // kBatch (which a Byzantine sender could use for recursion).
  Envelope inner_batch;
  inner_batch.type = MsgType::kBatch;
  inner_batch.body = to_bytes("bogus");
  Writer w;
  w.put_u32(2);
  w.put_bytes(envelope(1, "ok").encode());
  w.put_bytes(inner_batch.encode());
  Envelope batch;
  batch.type = MsgType::kBatch;
  batch.body = std::move(w).take();
  sender.send(2, batch);
  sim_.run_until(500);

  EXPECT_EQ(delivered, 1);  // the nested bundle was dropped, not recursed
}

TEST_F(TransportTest, DestructionWithPendingFlushIsSafe) {
  SimTransport receiver(net_, 2);
  int delivered = 0;
  receiver.set_receiver([&](sim::NodeId, const Envelope&) { ++delivered; });
  {
    SimTransport sender(net_, 1, &sim_);
    sender.send(2, envelope(1, "a"));
    sender.send(2, envelope(2, "b"));
    // Destroyed before the delay-0 flush timer fires.
  }
  sim_.run_until(500);
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(net_.counters().get("msgs_sent"), 0u);
}

TEST_F(TransportTest, EncodeOnceAcrossRepeatSends) {
  SimTransport sender(net_, 1);
  SimTransport r2(net_, 2);
  SimTransport r3(net_, 3);
  const Envelope env = envelope(1, "shared");
  sender.send(2, env);
  sender.send(3, env);
  sender.send(2, env);  // retransmit reuses the cached buffer too
  sim_.run_until(500);
  EXPECT_EQ(net_.counters().get("msgs_sent"), 3u);
  EXPECT_EQ(net_.counters().get("encode_calls"), 1u);
}

}  // namespace
}  // namespace bftbc::rpc
