// SimTransport: encode-once sends and same-tick coalescing (kBatch).
#include <gtest/gtest.h>

#include "rpc/transport.h"

namespace bftbc::rpc {
namespace {

class TransportTest : public ::testing::Test {
 protected:
  TransportTest()
      : net_(sim_, Rng(9),
             [] {
               sim::LinkConfig c;
               c.base_delay = 100;
               c.jitter_mean = 0;
               return c;
             }()) {}

  Envelope envelope(std::uint64_t rpc_id, const std::string& body) {
    Envelope env;
    env.type = MsgType::kReadTs;
    env.rpc_id = rpc_id;
    env.sender = 1;
    env.body = to_bytes(body);
    return env;
  }

  sim::Simulator sim_;
  sim::Network net_;
};

TEST_F(TransportTest, CoalescesSameTickSendsIntoOneWireMessage) {
  SimTransport sender(net_, 1, &sim_);
  SimTransport receiver(net_, 2);
  std::vector<Envelope> got;
  receiver.set_receiver(
      [&](sim::NodeId, const Envelope& env) { got.push_back(env); });

  sender.send(2, envelope(1, "a"));
  sender.send(2, envelope(2, "b"));
  sender.send(2, envelope(3, "c"));
  sim_.run_until(500);

  // One kBatch on the wire, three envelopes out of the receiving
  // transport — protocol code never sees the bundle.
  EXPECT_EQ(net_.counters().get("msgs_sent"), 1u);
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0].rpc_id, 1u);
  EXPECT_EQ(got[1].rpc_id, 2u);
  EXPECT_EQ(got[2].rpc_id, 3u);
  EXPECT_EQ(to_string(got[2].body), "c");
}

TEST_F(TransportTest, SingleSendPerTickSkipsBatchFraming) {
  SimTransport sender(net_, 1, &sim_);
  SimTransport receiver(net_, 2);
  std::vector<Envelope> got;
  receiver.set_receiver(
      [&](sim::NodeId, const Envelope& env) { got.push_back(env); });

  sender.send(2, envelope(1, "solo"));
  sim_.run_until(500);

  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].type, MsgType::kReadTs);  // not wrapped in kBatch
  EXPECT_EQ(net_.counters().get("msgs_sent"), 1u);
  // The wire carried exactly the envelope's own encoding.
  EXPECT_EQ(net_.counters().get("bytes_sent"),
            envelope(1, "solo").encode().size());
}

TEST_F(TransportTest, DifferentTicksAreNotCoalesced) {
  SimTransport sender(net_, 1, &sim_);
  SimTransport receiver(net_, 2);
  int delivered = 0;
  receiver.set_receiver([&](sim::NodeId, const Envelope&) { ++delivered; });

  sender.send(2, envelope(1, "a"));
  sim_.run_until(50);  // flush fires at tick 0; next send is a new tick
  sender.send(2, envelope(2, "b"));
  sim_.run_until(500);

  EXPECT_EQ(net_.counters().get("msgs_sent"), 2u);
  EXPECT_EQ(delivered, 2);
}

TEST_F(TransportTest, CoalescingGroupsPerDestination) {
  SimTransport sender(net_, 1, &sim_);
  SimTransport r2(net_, 2);
  SimTransport r3(net_, 3);
  int got2 = 0, got3 = 0;
  r2.set_receiver([&](sim::NodeId, const Envelope&) { ++got2; });
  r3.set_receiver([&](sim::NodeId, const Envelope&) { ++got3; });

  sender.send(2, envelope(1, "a"));
  sender.send(3, envelope(2, "b"));
  sender.send(2, envelope(3, "c"));
  sim_.run_until(500);

  // Two wire messages: one kBatch to node 2, one bare envelope to node 3.
  EXPECT_EQ(net_.counters().get("msgs_sent"), 2u);
  EXPECT_EQ(got2, 2);
  EXPECT_EQ(got3, 1);
}

TEST_F(TransportTest, NestedBatchEnvelopesAreDropped) {
  SimTransport sender(net_, 1);  // no coalescing: craft the batch by hand
  SimTransport receiver(net_, 2);
  int delivered = 0;
  receiver.set_receiver([&](sim::NodeId, const Envelope&) { ++delivered; });

  // A hand-built bundle containing a legitimate envelope and a nested
  // kBatch (which a Byzantine sender could use for recursion).
  Envelope inner_batch;
  inner_batch.type = MsgType::kBatch;
  inner_batch.body = to_bytes("bogus");
  Writer w;
  w.put_u32(2);
  w.put_bytes(envelope(1, "ok").encode());
  w.put_bytes(inner_batch.encode());
  Envelope batch;
  batch.type = MsgType::kBatch;
  batch.body = std::move(w).take();
  sender.send(2, batch);
  sim_.run_until(500);

  EXPECT_EQ(delivered, 1);  // the nested bundle was dropped, not recursed
}

TEST_F(TransportTest, DestructionFlushesPendingCoalescedEnvelopes) {
  SimTransport receiver(net_, 2);
  std::vector<Envelope> got;
  receiver.set_receiver(
      [&](sim::NodeId, const Envelope& env) { got.push_back(env); });
  {
    SimTransport sender(net_, 1, &sim_);
    sender.send(2, envelope(1, "a"));
    sender.send(2, envelope(2, "b"));
    // Destroyed before the delay-0 flush timer fires: teardown must ship
    // the coalescing remainder — an accepted envelope never just
    // vanishes (the pre-fix transport silently discarded both here).
  }
  sim_.run_until(500);
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].rpc_id, 1u);
  EXPECT_EQ(got[1].rpc_id, 2u);
  // Still one wire message: the teardown flush coalesces like the timer.
  EXPECT_EQ(net_.counters().get("msgs_sent"), 1u);
}

TEST_F(TransportTest, NoEnvelopeUnaccountedAcrossTeardown) {
  // Sent-side accounting across a teardown flush: everything handed to
  // send() before destruction is either delivered or counted dropped.
  SimTransport receiver(net_, 2);
  int delivered = 0;
  receiver.set_receiver([&](sim::NodeId, const Envelope&) { ++delivered; });
  {
    SimTransport sender(net_, 1, &sim_);
    sender.send(2, envelope(1, "a"));
    sim_.run_until(500);  // first tick's flush fires and delivers
    sender.send(2, envelope(2, "b"));
    sender.send(2, envelope(3, "c"));
  }
  sim_.run_until(1000);
  EXPECT_EQ(delivered + static_cast<int>(net_.counters().get("msgs_dropped")),
            3);
  EXPECT_EQ(delivered, 3);
}

TEST_F(TransportTest, MidBundleReceiverClearStopsDeliverySafely) {
  SimTransport sender(net_, 1, &sim_);
  SimTransport receiver(net_, 2);
  std::vector<std::uint64_t> got;
  receiver.set_receiver([&](sim::NodeId, const Envelope& env) {
    got.push_back(env.rpc_id);
    // React to the first sub-envelope by unhooking — e.g. a node
    // shutting down mid-bundle. The transport must not invoke the now
    // empty std::function for the remaining sub-envelopes (pre-fix this
    // threw std::bad_function_call).
    receiver.set_receiver({});
  });

  sender.send(2, envelope(1, "a"));
  sender.send(2, envelope(2, "b"));
  sender.send(2, envelope(3, "c"));
  sim_.run_until(500);

  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], 1u);
}

TEST_F(TransportTest, PartialMetricsBindOnlyTouchesBoundCounters) {
  // A subset bind leaves the other handles null; sending and delivering
  // must guard every pointer individually (pre-fix, the delivery path
  // dereferenced bytes_delivered under the msgs_delivered guard and the
  // send path bytes_sent under msgs_sent — both crashed here).
  metrics::MetricsRegistry registry;
  const std::set<std::string> only{"msgs_sent", "msgs_delivered"};
  net_.bind_metrics(registry, "net", &only);

  SimTransport sender(net_, 1);
  SimTransport receiver(net_, 2);
  int delivered = 0;
  receiver.set_receiver([&](sim::NodeId, const Envelope&) { ++delivered; });
  sender.send(2, envelope(1, "a"));
  sim_.run_until(500);

  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(registry.counter("net/msgs_sent").value, 1u);
  EXPECT_EQ(registry.counter("net/msgs_delivered").value, 1u);
  EXPECT_EQ(registry.counter("net/bytes_sent").value, 0u);
  EXPECT_EQ(registry.counter("net/bytes_delivered").value, 0u);
}

TEST_F(TransportTest, EncodeOnceAcrossRepeatSends) {
  SimTransport sender(net_, 1);
  SimTransport r2(net_, 2);
  SimTransport r3(net_, 3);
  const Envelope env = envelope(1, "shared");
  sender.send(2, env);
  sender.send(3, env);
  sender.send(2, env);  // retransmit reuses the cached buffer too
  sim_.run_until(500);
  EXPECT_EQ(net_.counters().get("msgs_sent"), 3u);
  EXPECT_EQ(net_.counters().get("encode_calls"), 1u);
}

}  // namespace
}  // namespace bftbc::rpc
