// Nightly-labeled long explorer run: a few hundred sampled scenarios
// across the full cross product must pass the BFT-linearizability bound
// for their mode. Kept out of tier-1 for time; the nightly CI workflow
// runs it (plus the bftbc_explore CLI at --runs 500).
#include <gtest/gtest.h>

#include "explore/explorer.h"

namespace bftbc::explore {
namespace {

class ExplorerSoakTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ExplorerSoakTest, SampledScenariosStayClean) {
  ExplorerOptions options;
  options.seed = GetParam();
  options.runs = 120;
  Explorer explorer(options);
  const Report report = explorer.explore();
  EXPECT_EQ(report.failures, 0u) << report.to_json();
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExplorerSoakTest,
                         ::testing::Values(1, 271828, 31337));

// --- Pinned regressions --------------------------------------------------
//
// Run seeds promoted from historically-failing (or historically
// spuriously-clean) soak sweeps. Each case names the bug that motivated
// it; the seed/scenario must stay pinned verbatim so the exact run that
// exposed the bug keeps executing every night.

// Guided sweep at explorer seed 7 surfaced this run seed: a pipelined
// client and a sequential client, justified by the same write
// certificate, landed CONCURRENT writes on one timestamp value, and the
// old §7 masking metric counted both completions as consecutive
// overwrites — flagging a within-budget lurking stash that merely won
// the (val, client-id) tiebreak. The checker now counts the longest
// real-time chain (a concurrent batch advances the frontier once), so
// this exact sampled run must stay clean.
TEST(ExplorerPinnedRegressionTest, ConcurrentOverwritesAreNotMasking) {
  const Scenario scenario = Scenario::sample(13175756882366232029ull);
  Explorer explorer(ExplorerOptions{});
  const RunOutcome outcome = explorer.run_scenario(scenario);
  EXPECT_FALSE(outcome.failed()) << outcome.failure;
}

// PR9 regression: gather_prepares recovered replica ids from node ids
// (the single-shard convention) and collected zero prepare signatures
// in any sharded group — every sharded attack was silently neutered and
// sharded soak runs looked spuriously clean. The weakened two-shard
// cartel must still REPRODUCE its lurking violation, and the verdict
// must name the guilty shard.
TEST(ExplorerPinnedRegressionTest, ShardedCartelViolationStillReproduces) {
  Scenario s;
  s.seed = 4242;
  s.f = 1;
  s.mode = Mode::kBase;
  s.enforce_fault_budget = false;
  s.objects = 2;
  s.shards = 2;
  s.byz_replicas = {{0, ByzSpecies::kEquivocSign},
                    {1, ByzSpecies::kEquivocSign},
                    {2, ByzSpecies::kEquivocSign}};
  s.clients = {{.id = 1, .ops = 3}};
  s.attacks = {{.kind = AttackKind::kLurkingStash,
                .id = 66,
                .object = 1,
                .goal = 2,
                .collude_replay = true}};
  Explorer explorer(ExplorerOptions{});
  const RunOutcome outcome = explorer.run_scenario(s);
  ASSERT_TRUE(outcome.failed());
  EXPECT_EQ(Explorer::failure_class(outcome.failure), "safety");
  EXPECT_NE(outcome.failure.find("shard"), std::string::npos)
      << outcome.failure;
}

// The strong-mode explorer path used to hard-code the cartel chain
// depth to 1 (attack_chained ignored the plan's goal), so no scenario
// could ever exhibit the §7 masking violation — the deep equivocator-
// signed stash chain was unreachable and strong-mode soak coverage was
// silently thinner than the sampler intended. With the goal threaded
// through, this weakened cartel chains eight deep and the top stash
// must surface past ≥2 consecutive post-stop overwrites (ok_plus
// failure), while staying within the plain lurking bound ok(1).
TEST(ExplorerPinnedRegressionTest, StrongCartelMaskingStillDetected) {
  Scenario s;
  s.seed = 4242;
  s.f = 1;
  s.mode = Mode::kStrong;
  s.enforce_fault_budget = false;
  s.objects = 1;
  s.byz_replicas = {{0, ByzSpecies::kEquivocSign},
                    {1, ByzSpecies::kEquivocSign},
                    {2, ByzSpecies::kEquivocSign}};
  s.clients = {{.id = 1, .ops = 10, .write_ratio = 1.0}};
  s.attacks = {{.kind = AttackKind::kLurkingStash,
                .id = 66,
                .object = 1,
                .goal = 8,
                .collude_replay = true}};
  Explorer explorer(ExplorerOptions{});
  const RunOutcome outcome = explorer.run_scenario(s);
  ASSERT_TRUE(outcome.failed());
  EXPECT_EQ(Explorer::failure_class(outcome.failure), "safety");
  // Within the lurking bound — the failure is the masking clause.
  EXPECT_LE(outcome.max_lurking, s.max_b());
}

}  // namespace
}  // namespace bftbc::explore
