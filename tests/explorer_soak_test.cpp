// Nightly-labeled long explorer run: a few hundred sampled scenarios
// across the full cross product must pass the BFT-linearizability bound
// for their mode. Kept out of tier-1 for time; the nightly CI workflow
// runs it (plus the bftbc_explore CLI at --runs 500).
#include <gtest/gtest.h>

#include "explore/explorer.h"

namespace bftbc::explore {
namespace {

class ExplorerSoakTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ExplorerSoakTest, SampledScenariosStayClean) {
  ExplorerOptions options;
  options.seed = GetParam();
  options.runs = 120;
  Explorer explorer(options);
  const Report report = explorer.explore();
  EXPECT_EQ(report.failures, 0u) << report.to_json();
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExplorerSoakTest,
                         ::testing::Values(1, 271828, 31337));

}  // namespace
}  // namespace bftbc::explore
