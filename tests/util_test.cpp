#include <gtest/gtest.h>

#include "util/codec.h"
#include "util/hex.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/status.h"

namespace bftbc {
namespace {

// ---------------------------------------------------------------- codec

TEST(CodecTest, FixedWidthRoundtrip) {
  Writer w;
  w.put_u8(0xab);
  w.put_u16(0x1234);
  w.put_u32(0xdeadbeef);
  w.put_u64(0x0123456789abcdefULL);
  w.put_bool(true);

  Reader r(w.data());
  EXPECT_EQ(r.get_u8(), 0xab);
  EXPECT_EQ(r.get_u16(), 0x1234);
  EXPECT_EQ(r.get_u32(), 0xdeadbeefu);
  EXPECT_EQ(r.get_u64(), 0x0123456789abcdefULL);
  EXPECT_TRUE(r.get_bool());
  EXPECT_TRUE(r.done());
}

TEST(CodecTest, VarintRoundtrip) {
  const std::uint64_t values[] = {0,    1,    127,  128,   300,
                                  16383, 16384, 1u << 30, 0xffffffffffffffffULL};
  for (std::uint64_t v : values) {
    Writer w;
    w.put_varint(v);
    Reader r(w.data());
    EXPECT_EQ(r.get_varint(), v);
    EXPECT_TRUE(r.done());
  }
}

TEST(CodecTest, VarintSizes) {
  Writer w;
  w.put_varint(127);
  EXPECT_EQ(w.size(), 1u);
  Writer w2;
  w2.put_varint(128);
  EXPECT_EQ(w2.size(), 2u);
}

TEST(CodecTest, BytesAndStrings) {
  Writer w;
  w.put_bytes(to_bytes("hello"));
  w.put_string("world");
  w.put_bytes(Bytes{});

  Reader r(w.data());
  EXPECT_EQ(to_string(r.get_bytes()), "hello");
  EXPECT_EQ(r.get_string(), "world");
  EXPECT_TRUE(r.get_bytes().empty());
  EXPECT_TRUE(r.done());
}

TEST(CodecTest, TruncatedInputSetsError) {
  Writer w;
  w.put_u64(42);
  Bytes data = w.data();
  data.pop_back();
  Reader r(data);
  (void)r.get_u64();
  EXPECT_FALSE(r.ok());
}

TEST(CodecTest, LengthLongerThanBufferSetsError) {
  Writer w;
  w.put_varint(1000);  // claims 1000 bytes follow
  w.put_raw(to_bytes("short"));
  Reader r(w.data());
  (void)r.get_bytes();
  EXPECT_FALSE(r.ok());
}

TEST(CodecTest, ErrorIsSticky) {
  Reader r(BytesView{});
  (void)r.get_u32();
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.get_u8(), 0);
  EXPECT_FALSE(r.ok());
}

TEST(CodecTest, TrailingGarbageDetectedByDone) {
  Writer w;
  w.put_u8(1);
  w.put_u8(2);
  Reader r(w.data());
  (void)r.get_u8();
  EXPECT_TRUE(r.ok());
  EXPECT_FALSE(r.done());  // one byte unread
}

TEST(CodecTest, OverlongVarintRejected) {
  // 11 bytes of continuation is more than a u64 can hold.
  Bytes evil(11, 0xff);
  evil.back() = 0x01;
  Reader r(evil);
  (void)r.get_varint();
  EXPECT_FALSE(r.ok());
}

TEST(CodecTest, RawRoundtrip) {
  Writer w;
  w.put_raw(to_bytes("abc"));
  Reader r(w.data());
  EXPECT_EQ(to_string(r.get_raw(3)), "abc");
  EXPECT_TRUE(r.done());
}

// ---------------------------------------------------------------- hex

TEST(HexTest, Roundtrip) {
  const Bytes b{0x00, 0x01, 0xab, 0xff};
  EXPECT_EQ(to_hex(b), "0001abff");
  auto back = from_hex("0001abff");
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, b);
}

TEST(HexTest, CaseInsensitiveParse) {
  auto v = from_hex("DEADbeef");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(to_hex(*v), "deadbeef");
}

TEST(HexTest, RejectsOddLength) { EXPECT_FALSE(from_hex("abc").has_value()); }

TEST(HexTest, RejectsNonHex) { EXPECT_FALSE(from_hex("zz").has_value()); }

TEST(HexTest, Prefix) {
  const Bytes b{0xde, 0xad, 0xbe, 0xef, 0x12};
  EXPECT_EQ(hex_prefix(b, 4), "dead");
  EXPECT_EQ(hex_prefix(b, 100), "deadbeef12");
}

// ---------------------------------------------------------------- bytes

TEST(BytesTest, ConstantTimeEqual) {
  EXPECT_TRUE(constant_time_equal(to_bytes("abc"), to_bytes("abc")));
  EXPECT_FALSE(constant_time_equal(to_bytes("abc"), to_bytes("abd")));
  EXPECT_FALSE(constant_time_equal(to_bytes("abc"), to_bytes("ab")));
  EXPECT_TRUE(constant_time_equal(Bytes{}, Bytes{}));
}

// ---------------------------------------------------------------- rng

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 3);
}

TEST(RngTest, NextBelowInRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
  // bound 1 → always 0
  EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(RngTest, NextBelowRoughlyUniform) {
  Rng rng(6);
  int counts[4] = {0, 0, 0, 0};
  for (int i = 0; i < 40000; ++i) ++counts[rng.next_below(4)];
  for (int c : counts) {
    EXPECT_GT(c, 9000);
    EXPECT_LT(c, 11000);
  }
}

TEST(RngTest, NextInRangeInclusive) {
  Rng rng(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.next_in_range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(8);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BoolProbabilityExtremes) {
  Rng rng(9);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.next_bool(0.0));
    EXPECT_TRUE(rng.next_bool(1.0));
  }
}

TEST(RngTest, ExponentialMean) {
  Rng rng(10);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.next_exponential(5.0);
  const double mean = sum / n;
  EXPECT_NEAR(mean, 5.0, 0.2);
}

TEST(RngTest, FillProducesRequestedLength) {
  Rng rng(11);
  for (std::size_t n : {0u, 1u, 7u, 8u, 9u, 31u, 64u}) {
    EXPECT_EQ(rng.bytes(n).size(), n);
  }
}

TEST(RngTest, SplitStreamsIndependent) {
  Rng parent(12);
  Rng child1 = parent.split();
  Rng child2 = parent.split();
  EXPECT_NE(child1.next_u64(), child2.next_u64());
}

TEST(RngTest, ShuffleKeepsElements) {
  Rng rng(13);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

// ---------------------------------------------------------------- status

TEST(StatusTest, OkStatus) {
  Status s = Status::ok();
  EXPECT_TRUE(s.is_ok());
  EXPECT_EQ(s.to_string(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = conflict("prepare list has different entry");
  EXPECT_FALSE(s.is_ok());
  EXPECT_EQ(s.code(), StatusCode::kConflict);
  EXPECT_EQ(s.to_string(), "CONFLICT: prepare list has different entry");
}

TEST(ResultTest, ValueAccess) {
  Result<int> r(42);
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_TRUE(r.status().is_ok());
}

TEST(ResultTest, ErrorAccess) {
  Result<int> r = timeout_error("phase 2 quorum");
  EXPECT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), StatusCode::kTimeout);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, TakeMovesValue) {
  Result<std::string> r(std::string("payload"));
  std::string s = std::move(r).take();
  EXPECT_EQ(s, "payload");
}

// ---------------------------------------------------------------- stats

TEST(StatsTest, SummaryBasics) {
  Summary s;
  for (double v : {1.0, 2.0, 3.0, 4.0, 5.0}) s.add(v);
  EXPECT_EQ(s.count(), 5u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_DOUBLE_EQ(s.median(), 3.0);
  EXPECT_NEAR(s.stddev(), 1.5811, 1e-3);
}

TEST(StatsTest, EmptySummaryIsZero) {
  // Every statistic on a zero-sample Summary returns the defined
  // sentinel 0.0 — none may index the empty sample vector (benches
  // print summaries for scenarios that recorded nothing).
  Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
  EXPECT_EQ(s.median(), 0.0);
  EXPECT_EQ(s.percentile(0.0), 0.0);
  EXPECT_EQ(s.percentile(0.99), 0.0);
  EXPECT_EQ(s.percentile(1.0), 0.0);
  EXPECT_FALSE(s.to_string().empty());
}

TEST(StatsTest, PercentileBounds) {
  Summary s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(1.0), 100.0);
  EXPECT_NEAR(s.percentile(0.5), 50.0, 1.0);
}

TEST(StatsTest, SingleSampleSummary) {
  // One sample: every location statistic collapses onto it and stddev
  // (sample stddev, n-1 denominator) is defined as 0.
  Summary s;
  s.add(7.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 7.5);
  EXPECT_DOUBLE_EQ(s.min(), 7.5);
  EXPECT_DOUBLE_EQ(s.max(), 7.5);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(s.percentile(0.0), 7.5);
  EXPECT_DOUBLE_EQ(s.percentile(0.5), 7.5);
  EXPECT_DOUBLE_EQ(s.percentile(1.0), 7.5);
  const Summary::Snapshot snap = s.snapshot();
  EXPECT_EQ(snap.count, 1u);
  EXPECT_DOUBLE_EQ(snap.p50, 7.5);
  EXPECT_DOUBLE_EQ(snap.p999, 7.5);
}

TEST(StatsTest, PercentileClampsOutOfRangeQ) {
  Summary s;
  for (double v : {10.0, 20.0, 30.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.percentile(-0.5), 10.0);  // q clamped to 0
  EXPECT_DOUBLE_EQ(s.percentile(2.0), 30.0);   // q clamped to 1
}

TEST(StatsTest, SnapshotIncludesOrderedP999) {
  // 10k distinct samples: p999 must sit strictly between p99 and max
  // (the tail percentile the live bench reports), and the whole snapshot
  // must satisfy the JSON schema's ordering invariant.
  Summary s;
  for (int i = 0; i < 10000; ++i) s.add(static_cast<double>(i));
  const Summary::Snapshot snap = s.snapshot();
  EXPECT_LE(snap.min, snap.p50);
  EXPECT_LE(snap.p50, snap.p90);
  EXPECT_LE(snap.p90, snap.p99);
  EXPECT_LT(snap.p99, snap.p999);
  EXPECT_LT(snap.p999, snap.max);
  EXPECT_NEAR(snap.p999, 9989.0, 1.0);
}

TEST(StatsTest, EmptySnapshotIsAllZero) {
  const Summary::Snapshot snap = Summary().snapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_EQ(snap.mean, 0.0);
  EXPECT_EQ(snap.min, 0.0);
  EXPECT_EQ(snap.max, 0.0);
  EXPECT_EQ(snap.p50, 0.0);
  EXPECT_EQ(snap.p999, 0.0);
  EXPECT_EQ(snap.stddev, 0.0);
}

TEST(StatsTest, HistogramCountsAndMean) {
  Histogram h;
  h.add(2);
  h.add(2);
  h.add(3);
  EXPECT_EQ(h.total(), 3u);
  EXPECT_EQ(h.count_of(2), 2u);
  EXPECT_EQ(h.count_of(3), 1u);
  EXPECT_EQ(h.count_of(7), 0u);
  EXPECT_NEAR(h.mean(), 7.0 / 3.0, 1e-9);
  EXPECT_NEAR(h.fraction_of(2), 2.0 / 3.0, 1e-9);
  EXPECT_EQ(h.max_value(), 3);
  EXPECT_EQ(h.to_string(), "2:2 3:1");
}

TEST(StatsTest, CountersAccumulate) {
  Counters c;
  c.inc("msgs");
  c.inc("msgs", 4);
  c.inc("bytes", 100);
  EXPECT_EQ(c.get("msgs"), 5u);
  EXPECT_EQ(c.get("bytes"), 100u);
  EXPECT_EQ(c.get("missing"), 0u);
  c.reset();
  EXPECT_EQ(c.get("msgs"), 0u);
}

}  // namespace
}  // namespace bftbc
