// Message-level CLIENT tests: a real core::Client runs against fake
// replica endpoints fully controlled by the test, which feed it crafted
// (valid, invalid, and adversarial) replies. Verifies the client-side
// validation rules: a Byzantine replica's reply never counts toward a
// quorum unless it is exactly what the protocol demands.
#include <gtest/gtest.h>

#include "bftbc/client.h"
#include "quorum/statements.h"
#include "rpc/transport.h"

namespace bftbc::core {
namespace {

constexpr quorum::ObjectId kObj = 4;
constexpr quorum::ClientId kClient = 9;

class ClientProtocolTest : public ::testing::Test {
 protected:
  ClientProtocolTest()
      : config_(quorum::QuorumConfig::bft_bc(1)),
        net_(sim_, Rng(3), [] { sim::LinkConfig c; c.base_delay = 10; c.jitter_mean = 0; return c; }()),
        keystore_(crypto::SignatureScheme::kHmacSim, 17),
        client_transport_(net_, 100) {
    for (quorum::ReplicaId r = 0; r < config_.n; ++r) {
      replica_signers_.push_back(
          keystore_.register_principal(quorum::replica_principal(r)));
      net_.register_node(r, [this, r](sim::NodeId, const EncodedMessage& payload) {
        auto env = rpc::Envelope::decode(payload.view());
        if (env.has_value()) requests_[r].push_back(*env);
      });
    }
    client_ = std::make_unique<Client>(config_, kClient, keystore_,
                                       client_transport_, sim_,
                                       std::vector<sim::NodeId>{0, 1, 2, 3},
                                       Rng(5), ClientOptions{});
  }

  // Deliver a reply envelope from replica r to the client. Advances the
  // clock just far enough to deliver it (the client's retransmission
  // timers keep the queue permanently non-empty, so a full drain would
  // never return).
  void reply_from(quorum::ReplicaId r, rpc::MsgType type,
                  std::uint64_t rpc_id, Bytes body) {
    rpc::Envelope env;
    env.type = type;
    env.rpc_id = rpc_id;
    env.sender = quorum::replica_principal(r);
    env.body = std::move(body);
    net_.send(r, 100, env.encode());
    sim_.run_until(sim_.now() + sim::kMillisecond);
  }

  // A correct READ-TS-REPLY from replica r answering `req`.
  ReadTsReply correct_read_ts_reply(quorum::ReplicaId r,
                                    const ReadTsRequest& req,
                                    const PrepareCertificate& pcert) {
    ReadTsReply rep;
    rep.object = req.object;
    rep.nonce = req.nonce;
    rep.pcert = pcert;
    rep.replica = r;
    rep.auth = replica_signers_[r].sign(rep.signing_payload()).value();
    return rep;
  }

  ReadReply correct_read_reply(quorum::ReplicaId r, const ReadRequest& req,
                               const Bytes& value,
                               const PrepareCertificate& pcert) {
    ReadReply rep;
    rep.object = req.object;
    rep.value = value;
    rep.pcert = pcert;
    rep.nonce = req.nonce;
    rep.replica = r;
    rep.auth = replica_signers_[r].sign(rep.signing_payload()).value();
    return rep;
  }

  PrepareCertificate mint_prep_cert(const Timestamp& ts,
                                    const crypto::Digest& h) {
    quorum::SignatureSet sigs;
    const Bytes stmt = quorum::prepare_reply_statement(kObj, ts, h);
    for (quorum::ReplicaId r = 0; r < config_.q; ++r) {
      sigs[r] = replica_signers_[r].sign(stmt).value();
    }
    return PrepareCertificate(kObj, ts, h, sigs);
  }

  // Wait until each replica has received >= n requests of `type`.
  bool wait_requests(rpc::MsgType type, std::size_t per_replica = 1) {
    return !sim_.run_while_pending([&] {
      for (quorum::ReplicaId r = 0; r < config_.n; ++r) {
        std::size_t count = 0;
        for (const auto& env : requests_[r]) {
          if (env.type == type) ++count;
        }
        if (count < per_replica) return true;
      }
      return false;
    });
  }

  // Latest request of `type` seen by replica r.
  const rpc::Envelope* last_request(quorum::ReplicaId r, rpc::MsgType type) {
    for (auto it = requests_[r].rbegin(); it != requests_[r].rend(); ++it) {
      if (it->type == type) return &*it;
    }
    return nullptr;
  }

  quorum::QuorumConfig config_;
  sim::Simulator sim_;
  sim::Network net_;
  crypto::Keystore keystore_;
  rpc::SimTransport client_transport_;
  std::vector<crypto::Signer> replica_signers_;
  std::map<quorum::ReplicaId, std::vector<rpc::Envelope>> requests_;
  std::unique_ptr<Client> client_;
};

TEST_F(ClientProtocolTest, ReadAcceptsQuorumOfValidReplies) {
  std::optional<Result<Client::ReadResult>> result;
  client_->read(kObj, [&](Result<Client::ReadResult> r) { result = std::move(r); });
  ASSERT_TRUE(wait_requests(rpc::MsgType::kRead));

  const Bytes value = to_bytes("stored");
  const auto cert = mint_prep_cert({1, 2}, crypto::sha256(value));
  for (quorum::ReplicaId r = 0; r < config_.q; ++r) {
    const auto* env = last_request(r, rpc::MsgType::kRead);
    ASSERT_NE(env, nullptr);
    auto req = ReadRequest::decode(env->body);
    ASSERT_TRUE(req.has_value());
    reply_from(r, rpc::MsgType::kReadReply, env->rpc_id,
               correct_read_reply(r, *req, value, cert).encode());
  }
  ASSERT_TRUE(result.has_value());
  ASSERT_TRUE(result->is_ok());
  EXPECT_EQ(to_string(result->value().value), "stored");
  EXPECT_EQ(result->value().ts, (Timestamp{1, 2}));
}

TEST_F(ClientProtocolTest, ReadRejectsValueNotMatchingCertificate) {
  std::optional<Result<Client::ReadResult>> result;
  client_->read(kObj, [&](Result<Client::ReadResult> r) { result = std::move(r); });
  ASSERT_TRUE(wait_requests(rpc::MsgType::kRead));

  const Bytes value = to_bytes("stored");
  const auto cert = mint_prep_cert({1, 2}, crypto::sha256(value));

  // Replica 0 lies about the value (cert is genuine): must not count.
  {
    const auto* env = last_request(0, rpc::MsgType::kRead);
    auto req = ReadRequest::decode(env->body);
    ReadReply lie = correct_read_reply(0, *req, to_bytes("LIES"), cert);
    lie.auth = replica_signers_[0].sign(lie.signing_payload()).value();
    reply_from(0, rpc::MsgType::kReadReply, env->rpc_id, lie.encode());
  }
  EXPECT_FALSE(result.has_value());

  // Three honest replies complete the read with the true value.
  for (quorum::ReplicaId r = 1; r < config_.n; ++r) {
    const auto* env = last_request(r, rpc::MsgType::kRead);
    auto req = ReadRequest::decode(env->body);
    reply_from(r, rpc::MsgType::kReadReply, env->rpc_id,
               correct_read_reply(r, *req, value, cert).encode());
  }
  ASSERT_TRUE(result.has_value());
  ASSERT_TRUE(result->is_ok());
  EXPECT_EQ(to_string(result->value().value), "stored");
}

TEST_F(ClientProtocolTest, ReadRejectsWrongNonce) {
  std::optional<Result<Client::ReadResult>> result;
  client_->read(kObj, [&](Result<Client::ReadResult> r) { result = std::move(r); });
  ASSERT_TRUE(wait_requests(rpc::MsgType::kRead));

  const Bytes value = to_bytes("v");
  const auto cert = mint_prep_cert({1, 2}, crypto::sha256(value));
  // Replay-style replies with a stale nonce: never accepted.
  for (quorum::ReplicaId r = 0; r < config_.n; ++r) {
    const auto* env = last_request(r, rpc::MsgType::kRead);
    auto req = ReadRequest::decode(env->body);
    req->nonce.random ^= 1;  // wrong nonce
    reply_from(r, rpc::MsgType::kReadReply, env->rpc_id,
               correct_read_reply(r, *req, value, cert).encode());
  }
  EXPECT_FALSE(result.has_value());
}

TEST_F(ClientProtocolTest, ReadRejectsBadAuthenticator) {
  std::optional<Result<Client::ReadResult>> result;
  client_->read(kObj, [&](Result<Client::ReadResult> r) { result = std::move(r); });
  ASSERT_TRUE(wait_requests(rpc::MsgType::kRead));

  const Bytes value = to_bytes("v");
  const auto cert = mint_prep_cert({1, 2}, crypto::sha256(value));
  for (quorum::ReplicaId r = 0; r < config_.n; ++r) {
    const auto* env = last_request(r, rpc::MsgType::kRead);
    auto req = ReadRequest::decode(env->body);
    ReadReply rep = correct_read_reply(r, *req, value, cert);
    rep.auth[0] ^= 0x80;  // corrupt the point-to-point authenticator
    reply_from(r, rpc::MsgType::kReadReply, env->rpc_id, rep.encode());
  }
  EXPECT_FALSE(result.has_value());
}

TEST_F(ClientProtocolTest, ReadRejectsSubQuorumCertificate) {
  std::optional<Result<Client::ReadResult>> result;
  client_->read(kObj, [&](Result<Client::ReadResult> r) { result = std::move(r); });
  ASSERT_TRUE(wait_requests(rpc::MsgType::kRead));

  const Bytes value = to_bytes("v");
  // Certificate with only 2 signatures (< q = 3): invalid.
  quorum::SignatureSet sigs;
  const Bytes stmt =
      quorum::prepare_reply_statement(kObj, {1, 2}, crypto::sha256(value));
  sigs[0] = replica_signers_[0].sign(stmt).value();
  sigs[1] = replica_signers_[1].sign(stmt).value();
  PrepareCertificate weak(kObj, {1, 2}, crypto::sha256(value), sigs);

  for (quorum::ReplicaId r = 0; r < config_.n; ++r) {
    const auto* env = last_request(r, rpc::MsgType::kRead);
    auto req = ReadRequest::decode(env->body);
    reply_from(r, rpc::MsgType::kReadReply, env->rpc_id,
               correct_read_reply(r, *req, value, weak).encode());
  }
  EXPECT_FALSE(result.has_value());
}

TEST_F(ClientProtocolTest, MixedVersionsTriggerWriteBack) {
  std::optional<Result<Client::ReadResult>> result;
  client_->read(kObj, [&](Result<Client::ReadResult> r) { result = std::move(r); });
  ASSERT_TRUE(wait_requests(rpc::MsgType::kRead));

  const Bytes old_v = to_bytes("old");
  const Bytes new_v = to_bytes("new");
  const auto old_cert = mint_prep_cert({1, 1}, crypto::sha256(old_v));
  const auto new_cert = mint_prep_cert({2, 2}, crypto::sha256(new_v));

  for (quorum::ReplicaId r = 0; r < config_.q; ++r) {
    const auto* env = last_request(r, rpc::MsgType::kRead);
    auto req = ReadRequest::decode(env->body);
    const bool behind = (r == 0);
    reply_from(r, rpc::MsgType::kReadReply, env->rpc_id,
               correct_read_reply(r, *req, behind ? old_v : new_v,
                                  behind ? old_cert : new_cert)
                   .encode());
  }
  // Client now needs a write-back phase before answering.
  EXPECT_FALSE(result.has_value());
  ASSERT_TRUE(wait_requests(rpc::MsgType::kWrite));

  // The write-back carries the NEWER value and certificate.
  for (quorum::ReplicaId r = 0; r < config_.q; ++r) {
    const auto* env = last_request(r, rpc::MsgType::kWrite);
    ASSERT_NE(env, nullptr);
    auto wreq = WriteRequest::decode(env->body);
    ASSERT_TRUE(wreq.has_value());
    EXPECT_EQ(wreq->value, new_v);
    EXPECT_EQ(wreq->prep_cert.ts(), (Timestamp{2, 2}));
    // The reader signed the write-back as itself.
    EXPECT_EQ(wreq->client, kClient);
    EXPECT_TRUE(keystore_.verify(quorum::client_principal(kClient),
                                 wreq->signing_payload(), wreq->sig));

    WriteReply ack;
    ack.object = kObj;
    ack.ts = wreq->prep_cert.ts();
    ack.replica = r;
    ack.sig = replica_signers_[r]
                  .sign(quorum::write_reply_statement(kObj, ack.ts))
                  .value();
    reply_from(r, rpc::MsgType::kWriteReply, env->rpc_id, ack.encode());
  }
  ASSERT_TRUE(result.has_value());
  ASSERT_TRUE(result->is_ok());
  EXPECT_EQ(to_string(result->value().value), "new");
  EXPECT_EQ(result->value().phases, 2);
}

TEST_F(ClientProtocolTest, WritePhase1RejectsForgedCert) {
  std::optional<Result<Client::WriteResult>> result;
  client_->write(kObj, to_bytes("x"),
                 [&](Result<Client::WriteResult> r) { result = std::move(r); });
  ASSERT_TRUE(wait_requests(rpc::MsgType::kReadTs));

  // All four replicas present certificates with corrupted signatures;
  // the client must accept none and keep retransmitting (no progress).
  const Bytes value = to_bytes("v");
  auto cert = mint_prep_cert({3, 3}, crypto::sha256(value));
  quorum::SignatureSet bad_sigs = cert.signatures();
  for (auto& [r, sig] : bad_sigs) sig[0] ^= 0xff;
  PrepareCertificate forged(kObj, {3, 3}, crypto::sha256(value),
                            bad_sigs);

  for (quorum::ReplicaId r = 0; r < config_.n; ++r) {
    const auto* env = last_request(r, rpc::MsgType::kReadTs);
    auto req = ReadTsRequest::decode(env->body);
    reply_from(r, rpc::MsgType::kReadTsReply, env->rpc_id,
               correct_read_ts_reply(r, *req, forged).encode());
  }
  EXPECT_FALSE(result.has_value());

  // Honest genesis answers unblock the write's phase 1.
  for (quorum::ReplicaId r = 0; r < config_.n; ++r) {
    const auto* env = last_request(r, rpc::MsgType::kReadTs);
    auto req = ReadTsRequest::decode(env->body);
    reply_from(r, rpc::MsgType::kReadTsReply, env->rpc_id,
               correct_read_ts_reply(r, *req,
                                     PrepareCertificate::genesis(kObj))
                   .encode());
  }
  ASSERT_TRUE(wait_requests(rpc::MsgType::kPrepare));
  const auto* env = last_request(0, rpc::MsgType::kPrepare);
  auto prep = PrepareRequest::decode(env->body);
  ASSERT_TRUE(prep.has_value());
  EXPECT_EQ(prep->t, (Timestamp{1, kClient}));  // succ of genesis, not of forged
}

TEST_F(ClientProtocolTest, WritePicksMaxCertificateTimestamp) {
  std::optional<Result<Client::WriteResult>> result;
  client_->write(kObj, to_bytes("x"),
                 [&](Result<Client::WriteResult> r) { result = std::move(r); });
  ASSERT_TRUE(wait_requests(rpc::MsgType::kReadTs));

  const Bytes v_lo = to_bytes("low"), v_hi = to_bytes("high");
  const auto lo = mint_prep_cert({2, 1}, crypto::sha256(v_lo));
  const auto hi = mint_prep_cert({7, 3}, crypto::sha256(v_hi));
  for (quorum::ReplicaId r = 0; r < config_.q; ++r) {
    const auto* env = last_request(r, rpc::MsgType::kReadTs);
    auto req = ReadTsRequest::decode(env->body);
    reply_from(r, rpc::MsgType::kReadTsReply, env->rpc_id,
               correct_read_ts_reply(r, *req, r == 1 ? hi : lo).encode());
  }
  ASSERT_TRUE(wait_requests(rpc::MsgType::kPrepare));
  auto prep = PrepareRequest::decode(
      last_request(2, rpc::MsgType::kPrepare)->body);
  ASSERT_TRUE(prep.has_value());
  EXPECT_EQ(prep->t, (Timestamp{8, kClient}));  // succ of the max
  EXPECT_EQ(prep->prep_cert.ts(), (Timestamp{7, 3}));
}

TEST_F(ClientProtocolTest, PrepareReplyWithWrongHashRejected) {
  std::optional<Result<Client::WriteResult>> result;
  client_->write(kObj, to_bytes("value-A"),
                 [&](Result<Client::WriteResult> r) { result = std::move(r); });
  ASSERT_TRUE(wait_requests(rpc::MsgType::kReadTs));
  for (quorum::ReplicaId r = 0; r < config_.n; ++r) {
    const auto* env = last_request(r, rpc::MsgType::kReadTs);
    auto req = ReadTsRequest::decode(env->body);
    reply_from(r, rpc::MsgType::kReadTsReply, env->rpc_id,
               correct_read_ts_reply(r, *req,
                                     PrepareCertificate::genesis(kObj))
                   .encode());
  }
  ASSERT_TRUE(wait_requests(rpc::MsgType::kPrepare));

  // Byzantine replicas answer the prepare with a DIFFERENT hash — a
  // statement for another value. Client must not count them.
  const Timestamp t{1, kClient};
  const crypto::Digest wrong_h = crypto::sha256(as_bytes_view("value-B"));
  for (quorum::ReplicaId r = 0; r < config_.n; ++r) {
    const auto* env = last_request(r, rpc::MsgType::kPrepare);
    PrepareReply rep;
    rep.object = kObj;
    rep.t = t;
    rep.hash = wrong_h;
    rep.replica = r;
    rep.sig = replica_signers_[r]
                  .sign(quorum::prepare_reply_statement(kObj, t, wrong_h))
                  .value();
    reply_from(r, rpc::MsgType::kPrepareReply, env->rpc_id, rep.encode());
  }
  EXPECT_FALSE(result.has_value());
}

TEST_F(ClientProtocolTest, DuplicateRepliesFromOneReplicaCountOnce) {
  std::optional<Result<Client::ReadResult>> result;
  client_->read(kObj, [&](Result<Client::ReadResult> r) { result = std::move(r); });
  ASSERT_TRUE(wait_requests(rpc::MsgType::kRead));

  const Bytes value = to_bytes("v");
  const auto cert = mint_prep_cert({1, 1}, crypto::sha256(value));
  const auto* env = last_request(0, rpc::MsgType::kRead);
  auto req = ReadRequest::decode(env->body);
  const Bytes body = correct_read_reply(0, *req, value, cert).encode();
  // Replica 0 floods three copies: still only one vote.
  for (int i = 0; i < 3; ++i) {
    reply_from(0, rpc::MsgType::kReadReply, env->rpc_id, body);
  }
  EXPECT_FALSE(result.has_value());
}

TEST_F(ClientProtocolTest, ReplyClaimingWrongReplicaIdRejected) {
  std::optional<Result<Client::ReadResult>> result;
  client_->read(kObj, [&](Result<Client::ReadResult> r) { result = std::move(r); });
  ASSERT_TRUE(wait_requests(rpc::MsgType::kRead));

  const Bytes value = to_bytes("v");
  const auto cert = mint_prep_cert({1, 1}, crypto::sha256(value));
  // Replica 0 sends replies impersonating replicas 1, 2, 3 (signed with
  // ITS key but claiming their ids — or their id with its signature;
  // both must fail).
  for (quorum::ReplicaId claimed = 1; claimed < config_.n; ++claimed) {
    const auto* env = last_request(0, rpc::MsgType::kRead);
    auto req = ReadRequest::decode(env->body);
    ReadReply rep = correct_read_reply(0, *req, value, cert);
    rep.replica = claimed;  // auth still by replica 0's key
    reply_from(0, rpc::MsgType::kReadReply, env->rpc_id, rep.encode());
  }
  EXPECT_FALSE(result.has_value());
}

// --------------------------------------------- reply-batch amortization

// Wraps already-encoded reply envelopes in a ReplyBatch from replica r
// (one batch MAC, no per-reply auth) and delivers it to the client.
class ReplyBatchTest : public ClientProtocolTest {
 protected:
  void batch_from(quorum::ReplicaId sender_node, quorum::ReplicaId claimed,
                  std::vector<Bytes> encoded_replies, bool corrupt = false) {
    ReplyBatch rb;
    rb.replica = claimed;
    rb.replies = std::move(encoded_replies);
    rb.auth = replica_signers_[claimed].sign(rb.signing_payload()).value();
    if (corrupt) rb.auth[0] ^= 0x80;
    rpc::Envelope env;
    env.type = rpc::MsgType::kReplyBatch;
    env.sender = quorum::replica_principal(claimed);
    env.body = rb.encode();
    net_.send(sender_node, 100, env.encode());
    sim_.run_until(sim_.now() + sim::kMillisecond);
  }

  // A correct but auth-less read reply to replica r's latest request,
  // wrapped in a reply envelope ready for bundling.
  Bytes authless_read_reply(quorum::ReplicaId r, const Bytes& value,
                            const PrepareCertificate& cert) {
    const auto* env = last_request(r, rpc::MsgType::kRead);
    auto req = ReadRequest::decode(env->body);
    ReadReply rep = correct_read_reply(r, *req, value, cert);
    rep.auth.clear();  // covered by the batch MAC instead
    rpc::Envelope reply;
    reply.type = rpc::MsgType::kReadReply;
    reply.rpc_id = env->rpc_id;
    reply.sender = quorum::replica_principal(r);
    reply.body = rep.encode();
    return reply.encode();
  }
};

TEST_F(ReplyBatchTest, AcceptsAuthlessRepliesUnderBatchMac) {
  std::optional<Result<Client::ReadResult>> result;
  client_->read(kObj, [&](Result<Client::ReadResult> r) { result = std::move(r); });
  ASSERT_TRUE(wait_requests(rpc::MsgType::kRead));

  const Bytes value = to_bytes("stored");
  const auto cert = mint_prep_cert({1, 2}, crypto::sha256(value));
  for (quorum::ReplicaId r = 0; r < config_.q; ++r) {
    batch_from(r, r, {authless_read_reply(r, value, cert)});
  }
  ASSERT_TRUE(result.has_value());
  ASSERT_TRUE(result->is_ok());
  EXPECT_EQ(to_string(result->value().value), "stored");
  EXPECT_EQ(client_->metrics().get("reply_batches"), 3u);
}

TEST_F(ReplyBatchTest, RejectsAuthlessReplyOutsideBatch) {
  std::optional<Result<Client::ReadResult>> result;
  client_->read(kObj, [&](Result<Client::ReadResult> r) { result = std::move(r); });
  ASSERT_TRUE(wait_requests(rpc::MsgType::kRead));

  const Bytes value = to_bytes("v");
  const auto cert = mint_prep_cert({1, 2}, crypto::sha256(value));
  // The same auth-less replies delivered bare (no batch frame): the
  // empty authenticator must never be accepted.
  for (quorum::ReplicaId r = 0; r < config_.n; ++r) {
    const auto* env = last_request(r, rpc::MsgType::kRead);
    auto req = ReadRequest::decode(env->body);
    ReadReply rep = correct_read_reply(r, *req, value, cert);
    rep.auth.clear();
    reply_from(r, rpc::MsgType::kReadReply, env->rpc_id, rep.encode());
  }
  EXPECT_FALSE(result.has_value());
}

TEST_F(ReplyBatchTest, RejectsBatchWithBadMac) {
  std::optional<Result<Client::ReadResult>> result;
  client_->read(kObj, [&](Result<Client::ReadResult> r) { result = std::move(r); });
  ASSERT_TRUE(wait_requests(rpc::MsgType::kRead));

  const Bytes value = to_bytes("v");
  const auto cert = mint_prep_cert({1, 2}, crypto::sha256(value));
  for (quorum::ReplicaId r = 0; r < config_.q; ++r) {
    batch_from(r, r, {authless_read_reply(r, value, cert)},
               /*corrupt=*/true);
  }
  EXPECT_FALSE(result.has_value());
  EXPECT_EQ(client_->metrics().get("reply_batches"), 0u);
}

TEST_F(ReplyBatchTest, RejectsBatchClaimingAnotherReplica) {
  std::optional<Result<Client::ReadResult>> result;
  client_->read(kObj, [&](Result<Client::ReadResult> r) { result = std::move(r); });
  ASSERT_TRUE(wait_requests(rpc::MsgType::kRead));

  const Bytes value = to_bytes("v");
  const auto cert = mint_prep_cert({1, 2}, crypto::sha256(value));
  // Byzantine replica 0 ships batches claiming (and correctly signed as)
  // replicas 1..3 — but they arrive from node 0, so the claimed identity
  // does not match the wire sender and the whole batch is dropped.
  for (quorum::ReplicaId claimed = 1; claimed < config_.n; ++claimed) {
    batch_from(0, claimed, {authless_read_reply(claimed, value, cert)});
  }
  EXPECT_FALSE(result.has_value());
  EXPECT_EQ(client_->metrics().get("reply_batches"), 0u);
}

}  // namespace
}  // namespace bftbc::core
