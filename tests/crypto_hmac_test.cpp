#include "crypto/hmac.h"

#include <gtest/gtest.h>

#include "util/hex.h"

namespace bftbc::crypto {
namespace {

// RFC 4231 test vectors for HMAC-SHA256.
TEST(HmacTest, Rfc4231Case1) {
  const Bytes key(20, 0x0b);
  const Bytes msg = to_bytes("Hi There");
  EXPECT_EQ(to_hex(digest_view(hmac_sha256(key, msg))),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(HmacTest, Rfc4231Case2) {
  const Bytes key = to_bytes("Jefe");
  const Bytes msg = to_bytes("what do ya want for nothing?");
  EXPECT_EQ(to_hex(digest_view(hmac_sha256(key, msg))),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(HmacTest, Rfc4231Case3) {
  const Bytes key(20, 0xaa);
  const Bytes msg(50, 0xdd);
  EXPECT_EQ(to_hex(digest_view(hmac_sha256(key, msg))),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(HmacTest, Rfc4231Case6LongKey) {
  const Bytes key(131, 0xaa);
  const Bytes msg = to_bytes("Test Using Larger Than Block-Size Key - Hash Key First");
  EXPECT_EQ(to_hex(digest_view(hmac_sha256(key, msg))),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(HmacTest, VerifyAcceptsCorrectTag) {
  const Bytes key = to_bytes("secret");
  const Bytes msg = to_bytes("message");
  const Digest tag = hmac_sha256(key, msg);
  EXPECT_TRUE(hmac_verify(key, msg, digest_view(tag)));
}

TEST(HmacTest, VerifyRejectsTamperedMessage) {
  const Bytes key = to_bytes("secret");
  const Digest tag = hmac_sha256(key, to_bytes("message"));
  EXPECT_FALSE(hmac_verify(key, to_bytes("massage"), digest_view(tag)));
}

TEST(HmacTest, VerifyRejectsWrongKey) {
  const Bytes msg = to_bytes("message");
  const Digest tag = hmac_sha256(to_bytes("secret"), msg);
  EXPECT_FALSE(hmac_verify(to_bytes("Secret"), msg, digest_view(tag)));
}

TEST(HmacTest, VerifyRejectsTruncatedTag) {
  const Bytes key = to_bytes("secret");
  const Bytes msg = to_bytes("message");
  const Digest tag = hmac_sha256(key, msg);
  EXPECT_FALSE(hmac_verify(key, msg, BytesView(tag.data(), 16)));
}

}  // namespace
}  // namespace bftbc::crypto
