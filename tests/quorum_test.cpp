// Unit tests for timestamps, quorum configs, statements, certificates.
#include <gtest/gtest.h>

#include "quorum/certificate.h"

namespace bftbc::quorum {
namespace {

// ------------------------------------------------------------ timestamp

TEST(TimestampTest, ZeroAndSucc) {
  Timestamp z = Timestamp::zero();
  EXPECT_TRUE(z.is_zero());
  Timestamp t = z.succ(5);
  EXPECT_EQ(t.val, 1u);
  EXPECT_EQ(t.id, 5u);
  EXPECT_FALSE(t.is_zero());
  Timestamp t2 = t.succ(9);
  EXPECT_EQ(t2.val, 2u);
  EXPECT_EQ(t2.id, 9u);
}

TEST(TimestampTest, OrderValThenClient) {
  // §3.2.1: compare val parts; ties broken by client id.
  EXPECT_LT((Timestamp{1, 9}), (Timestamp{2, 1}));
  EXPECT_LT((Timestamp{2, 1}), (Timestamp{2, 2}));
  EXPECT_EQ((Timestamp{3, 3}), (Timestamp{3, 3}));
  EXPECT_GE((Timestamp{3, 3}), (Timestamp{3, 3}));
  EXPECT_GT((Timestamp{3, 4}), (Timestamp{3, 3}));
}

TEST(TimestampTest, DifferentClientsNeverCollide) {
  // succ from the same base by different clients yields distinct,
  // totally ordered timestamps.
  Timestamp base{7, 1};
  Timestamp a = base.succ(2);
  Timestamp b = base.succ(3);
  EXPECT_NE(a, b);
  EXPECT_LT(a, b);
  EXPECT_EQ(a.val, b.val);
}

TEST(TimestampTest, EncodeDecodeRoundtrip) {
  Timestamp t{0xdeadbeefcafe, 42};
  Writer w;
  t.encode(w);
  Reader r(w.data());
  EXPECT_EQ(Timestamp::decode(r), t);
  EXPECT_TRUE(r.done());
}

// ------------------------------------------------------------ config

TEST(QuorumConfigTest, BftBcSizes) {
  for (std::uint32_t f = 1; f <= 5; ++f) {
    const QuorumConfig c = QuorumConfig::bft_bc(f);
    EXPECT_EQ(c.n, 3 * f + 1);
    EXPECT_EQ(c.q, 2 * f + 1);
    // Any two quorums intersect in >= f+1 replicas (one correct).
    EXPECT_GE(2 * c.q, c.n + c.f + 1);
  }
}

TEST(QuorumConfigTest, MaskingSizes) {
  for (std::uint32_t f = 1; f <= 5; ++f) {
    const QuorumConfig c = QuorumConfig::masking(f);
    EXPECT_EQ(c.n, 4 * f + 1);
    EXPECT_EQ(c.q, 3 * f + 1);
    // Masking: intersection >= 2f+1 (majority correct).
    EXPECT_GE(2 * c.q, c.n + 2 * c.f + 1);
  }
}

TEST(QuorumConfigTest, PrincipalMapping) {
  EXPECT_TRUE(is_replica_principal(replica_principal(0)));
  EXPECT_TRUE(is_replica_principal(replica_principal(12)));
  EXPECT_FALSE(is_replica_principal(client_principal(1)));
  EXPECT_NE(replica_principal(0), client_principal(0));
}

// ------------------------------------------------------------ statements

TEST(StatementTest, DomainSeparation) {
  const Timestamp ts{3, 1};
  const crypto::Digest h = crypto::sha256(as_bytes_view("v"));
  const Bytes prep = prepare_reply_statement(9, ts, h);
  const Bytes write = write_reply_statement(9, ts);
  EXPECT_NE(prep, write);
  // Different objects → different statements.
  EXPECT_NE(prepare_reply_statement(9, ts, h),
            prepare_reply_statement(10, ts, h));
  EXPECT_NE(write_reply_statement(9, ts), write_reply_statement(10, ts));
  // Different hashes → different prepare statements.
  EXPECT_NE(prepare_reply_statement(9, ts, h),
            prepare_reply_statement(9, ts, crypto::sha256(as_bytes_view("w"))));
}

// ------------------------------------------------------------ certificates

class CertificateTest : public ::testing::Test {
 protected:
  CertificateTest() : config_(QuorumConfig::bft_bc(1)) {
    for (ReplicaId r = 0; r < config_.n; ++r) {
      signers_.push_back(ks_.register_principal(replica_principal(r)));
    }
  }

  PrepareCertificate make_prep_cert(ObjectId obj, Timestamp ts,
                                    const crypto::Digest& h,
                                    std::vector<ReplicaId> replicas) {
    SignatureSet sigs;
    const Bytes stmt = prepare_reply_statement(obj, ts, h);
    for (ReplicaId r : replicas) {
      sigs[r] = signers_[r].sign(stmt).value();
    }
    return PrepareCertificate(obj, ts, h, std::move(sigs));
  }

  WriteCertificate make_write_cert(ObjectId obj, Timestamp ts,
                                   std::vector<ReplicaId> replicas) {
    SignatureSet sigs;
    const Bytes stmt = write_reply_statement(obj, ts);
    for (ReplicaId r : replicas) {
      sigs[r] = signers_[r].sign(stmt).value();
    }
    return WriteCertificate(obj, ts, std::move(sigs));
  }

  QuorumConfig config_;
  crypto::Keystore ks_{crypto::SignatureScheme::kHmacSim, 77};
  std::vector<crypto::Signer> signers_;
  crypto::Digest h_ = crypto::sha256(as_bytes_view("value"));
};

TEST_F(CertificateTest, GenesisIsValid) {
  const auto g = PrepareCertificate::genesis(5);
  EXPECT_TRUE(g.is_genesis());
  EXPECT_TRUE(g.validate(config_, ks_).is_ok());
  EXPECT_TRUE(g.ts().is_zero());
}

TEST_F(CertificateTest, GenesisWithWrongHashInvalid) {
  PrepareCertificate fake(5, Timestamp::zero(),
                          crypto::sha256(as_bytes_view("not-empty")), {});
  EXPECT_FALSE(fake.is_genesis());
  EXPECT_FALSE(fake.validate(config_, ks_).is_ok());
}

TEST_F(CertificateTest, QuorumPrepareCertValidates) {
  auto cert = make_prep_cert(1, {1, 4}, h_, {0, 1, 2});
  EXPECT_TRUE(cert.validate(config_, ks_).is_ok());
  // Any quorum-sized subset works, including all n.
  auto cert4 = make_prep_cert(1, {1, 4}, h_, {0, 1, 2, 3});
  EXPECT_TRUE(cert4.validate(config_, ks_).is_ok());
}

TEST_F(CertificateTest, SubQuorumRejected) {
  auto cert = make_prep_cert(1, {1, 4}, h_, {0, 1});
  const Status s = cert.validate(config_, ks_);
  EXPECT_EQ(s.code(), StatusCode::kBadCertificate);
}

TEST_F(CertificateTest, ForgedSignatureRejected) {
  auto cert = make_prep_cert(1, {1, 4}, h_, {0, 1, 2});
  SignatureSet sigs = cert.signatures();
  sigs[2][0] ^= 0xff;  // corrupt one signature
  PrepareCertificate bad(1, {1, 4}, h_, std::move(sigs));
  EXPECT_FALSE(bad.validate(config_, ks_).is_ok());
}

TEST_F(CertificateTest, PoisonedSignatureDoesNotInvalidateQuorum) {
  // Regression: a certificate is a quorum of *valid* signed statements.
  // A Byzantine replica appending a garbage signature alongside an
  // honest quorum must not poison the certificate.
  auto cert = make_prep_cert(1, {1, 4}, h_, {0, 1, 2});
  SignatureSet sigs = cert.signatures();
  sigs[3] = to_bytes("complete garbage, not a signature");
  PrepareCertificate poisoned(1, {1, 4}, h_, std::move(sigs));
  EXPECT_TRUE(poisoned.validate(config_, ks_).is_ok());

  // Same for write certificates.
  auto wcert = make_write_cert(1, {2, 3}, {0, 1, 2});
  SignatureSet wsigs = wcert.signatures();
  wsigs[3] = Bytes(32, 0xee);
  WriteCertificate wpoisoned(1, {2, 3}, std::move(wsigs));
  EXPECT_TRUE(wpoisoned.validate(config_, ks_).is_ok());
}

TEST_F(CertificateTest, PoisonedOutOfRangeEntryDoesNotInvalidateQuorum) {
  // An out-of-range replica id is just another invalid entry: skipped,
  // not fatal, as long as a valid quorum remains.
  auto cert = make_prep_cert(1, {1, 4}, h_, {0, 1, 2});
  SignatureSet sigs = cert.signatures();
  sigs[99] = Bytes(32, 0x11);  // n = 4, so id 99 is out of range
  PrepareCertificate poisoned(1, {1, 4}, h_, std::move(sigs));
  EXPECT_TRUE(poisoned.validate(config_, ks_).is_ok());
}

TEST_F(CertificateTest, PoisonedEntriesCannotSubstituteForQuorum) {
  // Garbage entries are skipped but never counted: 2 valid + 2 garbage
  // signatures is still below q = 3.
  auto cert = make_prep_cert(1, {1, 4}, h_, {0, 1});
  SignatureSet sigs = cert.signatures();
  sigs[2] = Bytes(32, 0xaa);
  sigs[3] = Bytes(32, 0xbb);
  PrepareCertificate bad(1, {1, 4}, h_, std::move(sigs));
  EXPECT_FALSE(bad.validate(config_, ks_).is_ok());
}

TEST_F(CertificateTest, SignatureFromWrongStatementRejected) {
  // A write-reply signature cannot stand in for a prepare-reply one,
  // even for the same ts (domain separation).
  const Timestamp ts{1, 4};
  SignatureSet sigs;
  const Bytes wrong_stmt = write_reply_statement(1, ts);
  for (ReplicaId r : {0u, 1u, 2u}) {
    sigs[r] = signers_[r].sign(wrong_stmt).value();
  }
  PrepareCertificate bad(1, ts, h_, std::move(sigs));
  EXPECT_FALSE(bad.validate(config_, ks_).is_ok());
}

TEST_F(CertificateTest, OutOfRangeReplicaRejected) {
  auto cert = make_prep_cert(1, {1, 4}, h_, {0, 1, 2});
  SignatureSet sigs = cert.signatures();
  // Register a principal pretending to be replica 9 (n=4).
  auto rogue = ks_.register_principal(replica_principal(9));
  sigs[9] = rogue.sign(prepare_reply_statement(1, {1, 4}, h_)).value();
  sigs.erase(0);
  PrepareCertificate bad(1, {1, 4}, h_, std::move(sigs));
  EXPECT_FALSE(bad.validate(config_, ks_).is_ok());
}

TEST_F(CertificateTest, CertBoundToObject) {
  // Valid for object 1; claiming object 2 breaks every signature.
  auto cert = make_prep_cert(1, {1, 4}, h_, {0, 1, 2});
  PrepareCertificate moved(2, cert.ts(), cert.hash(), cert.signatures());
  EXPECT_FALSE(moved.validate(config_, ks_).is_ok());
}

TEST_F(CertificateTest, WriteCertValidates) {
  auto cert = make_write_cert(1, {2, 3}, {1, 2, 3});
  EXPECT_TRUE(cert.validate(config_, ks_).is_ok());
}

TEST_F(CertificateTest, WriteCertSubQuorumRejected) {
  auto cert = make_write_cert(1, {2, 3}, {1, 2});
  EXPECT_FALSE(cert.validate(config_, ks_).is_ok());
}

TEST_F(CertificateTest, GenesisWriteCertWithQuorumValidates) {
  // §7 strong mode: a quorum can vouch that "the zero write completed";
  // used by the first writer of an object.
  auto cert = make_write_cert(1, Timestamp::zero(), {0, 1, 2});
  EXPECT_TRUE(cert.validate(config_, ks_).is_ok());
}

TEST_F(CertificateTest, EmptyZeroWriteCertRejected) {
  WriteCertificate empty(1, Timestamp::zero(), {});
  EXPECT_FALSE(empty.validate(config_, ks_).is_ok());
}

TEST_F(CertificateTest, PrepareCertEncodeDecodeRoundtrip) {
  auto cert = make_prep_cert(6, {9, 2}, h_, {1, 2, 3});
  Writer w;
  cert.encode(w);
  Reader r(w.data());
  PrepareCertificate back = PrepareCertificate::decode(r);
  EXPECT_TRUE(r.done());
  EXPECT_EQ(back, cert);
  EXPECT_TRUE(back.validate(config_, ks_).is_ok());
}

TEST_F(CertificateTest, WriteCertEncodeDecodeRoundtrip) {
  auto cert = make_write_cert(6, {9, 2}, {0, 2, 3});
  Writer w;
  cert.encode(w);
  Reader r(w.data());
  WriteCertificate back = WriteCertificate::decode(r);
  EXPECT_TRUE(r.done());
  EXPECT_EQ(back, cert);
}

TEST_F(CertificateTest, DecodeGarbageIsInvalidNotCrash) {
  Reader r(as_bytes_view("complete garbage that is not a certificate"));
  PrepareCertificate cert = PrepareCertificate::decode(r);
  EXPECT_FALSE(cert.validate(config_, ks_).is_ok());
}

TEST_F(CertificateTest, SignatureSetOverCapFailsReader) {
  // Claiming more entries than the hard cap must fail the reader, not
  // silently decode as an empty signature set.
  Writer w;
  w.put_varint(kMaxSignatureSetEntries + 1);
  Reader r(w.data());
  const SignatureSet sigs = decode_signature_set(r);
  EXPECT_TRUE(sigs.empty());
  EXPECT_FALSE(r.ok());
}

TEST_F(CertificateTest, SignatureSetTruncationFailsReaderAndYieldsNothing) {
  // A mid-entry truncation must fail the reader and must not leak a
  // partial set (a prefix of a valid certificate is not a certificate).
  auto cert = make_write_cert(1, {2, 3}, {0, 1, 2});
  Writer w;
  encode_signature_set(w, cert.signatures());
  const Bytes& full = w.data();
  for (std::size_t cut = 1; cut + 1 < full.size(); cut += 7) {
    Reader r(BytesView(full.data(), full.size() - cut));
    const SignatureSet sigs = decode_signature_set(r);
    EXPECT_FALSE(r.ok()) << "cut=" << cut;
    EXPECT_TRUE(sigs.empty()) << "cut=" << cut;
  }
}

TEST_F(CertificateTest, GenesisValueHashMatchesEmptySha256) {
  EXPECT_EQ(genesis_value_hash(), crypto::sha256(BytesView{}));
  // And the cached constant round-trips through genesis construction.
  EXPECT_TRUE(PrepareCertificate::genesis(3).is_genesis());
}

TEST_F(CertificateTest, LargerFConfigsWork) {
  const QuorumConfig c5 = QuorumConfig::bft_bc(5);
  crypto::Keystore ks(crypto::SignatureScheme::kHmacSim, 3);
  SignatureSet sigs;
  const Timestamp ts{1, 1};
  const Bytes stmt = prepare_reply_statement(0, ts, h_);
  for (ReplicaId r = 0; r < c5.q; ++r) {
    auto s = ks.register_principal(replica_principal(r));
    sigs[r] = s.sign(stmt).value();
  }
  PrepareCertificate cert(0, ts, h_, std::move(sigs));
  EXPECT_TRUE(cert.validate(c5, ks).is_ok());

  // One fewer signature fails.
  SignatureSet fewer = cert.signatures();
  fewer.erase(fewer.begin());
  PrepareCertificate bad(0, ts, h_, std::move(fewer));
  EXPECT_FALSE(bad.validate(c5, ks).is_ok());
}

}  // namespace
}  // namespace bftbc::quorum
