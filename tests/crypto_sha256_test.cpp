#include "crypto/sha256.h"

#include <gtest/gtest.h>

#include "util/hex.h"

namespace bftbc::crypto {
namespace {

// FIPS 180-4 / NIST CAVP test vectors.
TEST(Sha256Test, EmptyString) {
  EXPECT_EQ(to_hex(digest_view(sha256(as_bytes_view("")))),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256Test, Abc) {
  EXPECT_EQ(to_hex(digest_view(sha256(as_bytes_view("abc")))),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, TwoBlockMessage) {
  EXPECT_EQ(to_hex(digest_view(sha256(as_bytes_view(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")))),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, MillionAs) {
  Sha256 ctx;
  const Bytes chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) ctx.update(chunk);
  EXPECT_EQ(to_hex(digest_view(ctx.finish())),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, IncrementalMatchesOneShot) {
  const Bytes msg = to_bytes("the quick brown fox jumps over the lazy dog");
  for (std::size_t split = 0; split <= msg.size(); ++split) {
    Sha256 ctx;
    ctx.update(BytesView(msg.data(), split));
    ctx.update(BytesView(msg.data() + split, msg.size() - split));
    EXPECT_EQ(ctx.finish(), sha256(msg)) << "split at " << split;
  }
}

TEST(Sha256Test, BoundaryLengths) {
  // Exercise the padding logic at block-size boundaries.
  for (std::size_t len : {55u, 56u, 57u, 63u, 64u, 65u, 119u, 120u, 128u}) {
    const Bytes msg(len, 0x5a);
    Sha256 a;
    a.update(msg);
    // byte-at-a-time must agree
    Sha256 b;
    for (std::uint8_t byte : msg) b.update(BytesView(&byte, 1));
    EXPECT_EQ(a.finish(), b.finish()) << "len " << len;
  }
}

TEST(Sha256Test, ResetReusesContext) {
  Sha256 ctx;
  ctx.update(as_bytes_view("garbage"));
  (void)ctx.finish();
  ctx.reset();
  ctx.update(as_bytes_view("abc"));
  EXPECT_EQ(to_hex(digest_view(ctx.finish())),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, CompareDigestsOrdersNumerically) {
  Digest a{};
  Digest b{};
  a[0] = 1;
  EXPECT_GT(compare_digests(a, b), 0);
  EXPECT_LT(compare_digests(b, a), 0);
  EXPECT_EQ(compare_digests(a, a), 0);
  // differs only in last byte
  Digest c = a;
  c[31] = 1;
  EXPECT_LT(compare_digests(a, c), 0);
}

TEST(Sha256Test, DigestFromBytesRejectsWrongSize) {
  Digest d;
  EXPECT_FALSE(digest_from_bytes(Bytes(31, 0), d));
  EXPECT_FALSE(digest_from_bytes(Bytes(33, 0), d));
  EXPECT_TRUE(digest_from_bytes(Bytes(32, 7), d));
  EXPECT_EQ(d[0], 7);
}

}  // namespace
}  // namespace bftbc::crypto
