// Tests for harness utilities: the table renderer, the Recorder's
// failure paths, and Cluster configuration knobs not covered elsewhere.
#include <gtest/gtest.h>

#include <sstream>

#include "checker/bft_linearizability.h"
#include "harness/cluster.h"
#include "harness/recording.h"
#include "harness/table.h"

namespace bftbc::harness {
namespace {

TEST(TableTest, AlignsColumnsToWidestCell) {
  Table t({"a", "long-header"});
  t.add_row({"wide-cell-content", "x"});
  std::ostringstream out;
  t.print(out);
  const std::string s = out.str();
  // Header row, separator, data row.
  EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 3);
  // Separator contains the + column joint.
  EXPECT_NE(s.find('+'), std::string::npos);
  // All three lines equal length (alignment).
  std::istringstream lines(s);
  std::string l1, l2, l3;
  std::getline(lines, l1);
  std::getline(lines, l2);
  std::getline(lines, l3);
  EXPECT_EQ(l1.size(), l3.size());
}

TEST(TableTest, NumFormatsPrecision) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(3.0, 0), "3");
  EXPECT_EQ(Table::num(0.5), "0.50");
}

TEST(RecorderTest, FailedOpsAreAborted) {
  ClusterOptions o;
  o.client_defaults.op_deadline = sim::kSecond;
  Cluster cluster(o);
  // No quorum reachable: every op fails and must be excluded from the
  // history (aborted), never recorded as completed.
  cluster.crash_replica(0);
  cluster.crash_replica(1);
  checker::History history;
  Recorder rec(cluster, history);
  auto& c = cluster.add_client(1);
  EXPECT_FALSE(rec.write(c, 1, to_bytes("v")).is_ok());
  EXPECT_FALSE(rec.read(c, 1).is_ok());
  EXPECT_EQ(history.completed_count(), 0u);
  auto check = checker::check_bft_linearizability(history, {});
  EXPECT_TRUE(check.ok(0));
}

TEST(RecorderTest, StopEventRecordedWithRevocation) {
  Cluster cluster{ClusterOptions()};
  checker::History history;
  Recorder rec(cluster, history);
  cluster.add_client(7);
  rec.stop_client(7);
  ASSERT_EQ(history.stops().size(), 1u);
  EXPECT_EQ(history.stops()[0].client, 7u);
  EXPECT_TRUE(cluster.keystore().is_revoked(quorum::client_principal(7)));
}

TEST(ClusterTest, AddClientIsIdempotent) {
  Cluster cluster{ClusterOptions()};
  auto& a = cluster.add_client(1);
  auto& b = cluster.add_client(1);
  EXPECT_EQ(&a, &b);
}

TEST(ClusterTest, PerClientOptionsOverrideDefaults) {
  ClusterOptions o;
  o.optimized = true;
  Cluster cluster(o);
  // Default-built client inherits optimized mode...
  auto& fast = cluster.add_client(1);
  EXPECT_TRUE(fast.options().optimized);
  // ...but explicit options win.
  core::ClientOptions plain;
  plain.optimized = false;
  auto& slow = cluster.add_client(2, plain);
  EXPECT_FALSE(slow.options().optimized);
}

TEST(ClusterTest, ReplicaFactorySlotsApplied) {
  int factory_calls = 0;
  ClusterOptions o;
  o.replica_factories[2] = [&factory_calls](
                               const quorum::QuorumConfig& cfg,
                               quorum::ReplicaId id, crypto::Keystore& ks,
                               rpc::Transport& t, sim::Simulator& s,
                               const core::ReplicaOptions& opts)
      -> std::unique_ptr<core::Replica> {
    ++factory_calls;
    return std::make_unique<core::Replica>(cfg, id, ks, t, s, opts);
  };
  Cluster cluster(o);
  EXPECT_EQ(factory_calls, 1);
  EXPECT_EQ(cluster.replica(2).id(), 2u);
}

TEST(ClusterTest, ModeFlagsPropagateToReplicas) {
  ClusterOptions o;
  o.optimized = true;
  o.strong = true;
  Cluster cluster(o);
  for (quorum::ReplicaId r = 0; r < cluster.config().n; ++r) {
    EXPECT_TRUE(cluster.replica(r).options().optimized);
    EXPECT_TRUE(cluster.replica(r).options().strong);
  }
}

TEST(ClusterTest, DeterministicAcrossIdenticalRuns) {
  auto run = [](std::uint64_t seed) {
    ClusterOptions o;
    o.seed = seed;
    o.link.loss_probability = 0.1;
    Cluster cluster(o);
    auto& c = cluster.add_client(1);
    std::vector<sim::Time> completion_times;
    for (int i = 0; i < 5; ++i) {
      (void)cluster.write(c, 1, to_bytes("v" + std::to_string(i)));
      completion_times.push_back(cluster.sim().now());
    }
    return completion_times;
  };
  EXPECT_EQ(run(42), run(42));
  EXPECT_NE(run(42), run(43));
}

}  // namespace
}  // namespace bftbc::harness
