// Tests for harness utilities: the table renderer, the Recorder's
// failure paths, and Cluster configuration knobs not covered elsewhere.
#include <gtest/gtest.h>

#include <sstream>

#include "checker/bft_linearizability.h"
#include "harness/cluster.h"
#include "harness/recording.h"
#include "harness/table.h"

namespace bftbc::harness {
namespace {

TEST(TableTest, AlignsColumnsToWidestCell) {
  Table t({"a", "long-header"});
  t.add_row({"wide-cell-content", "x"});
  std::ostringstream out;
  t.print(out);
  const std::string s = out.str();
  // Header row, separator, data row.
  EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 3);
  // Separator contains the + column joint.
  EXPECT_NE(s.find('+'), std::string::npos);
  // All three lines equal length (alignment).
  std::istringstream lines(s);
  std::string l1, l2, l3;
  std::getline(lines, l1);
  std::getline(lines, l2);
  std::getline(lines, l3);
  EXPECT_EQ(l1.size(), l3.size());
}

TEST(TableTest, NumFormatsPrecision) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(3.0, 0), "3");
  EXPECT_EQ(Table::num(0.5), "0.50");
}

TEST(RecorderTest, FailedOpsAreAborted) {
  ClusterOptions o;
  o.client_defaults.op_deadline = sim::kSecond;
  Cluster cluster(o);
  // No quorum reachable: every op fails and must be excluded from the
  // history (aborted), never recorded as completed.
  cluster.crash_replica(0);
  cluster.crash_replica(1);
  checker::History history;
  Recorder rec(cluster, history);
  auto& c = cluster.add_client(1);
  EXPECT_FALSE(rec.write(c, 1, to_bytes("v")).is_ok());
  EXPECT_FALSE(rec.read(c, 1).is_ok());
  EXPECT_EQ(history.completed_count(), 0u);
  auto check = checker::check_bft_linearizability(history, {});
  EXPECT_TRUE(check.ok(0));
}

TEST(RecorderTest, StopEventRecordedWithRevocation) {
  Cluster cluster{ClusterOptions()};
  checker::History history;
  Recorder rec(cluster, history);
  cluster.add_client(7);
  rec.stop_client(7);
  ASSERT_EQ(history.stops().size(), 1u);
  EXPECT_EQ(history.stops()[0].client, 7u);
  EXPECT_TRUE(cluster.keystore().is_revoked(quorum::client_principal(7)));
}

TEST(ClusterTest, AddClientIsIdempotent) {
  Cluster cluster{ClusterOptions()};
  auto& a = cluster.add_client(1);
  auto& b = cluster.add_client(1);
  EXPECT_EQ(&a, &b);
}

TEST(ClusterTest, PerClientOptionsOverrideDefaults) {
  ClusterOptions o;
  o.optimized = true;
  Cluster cluster(o);
  // Default-built client inherits optimized mode...
  auto& fast = cluster.add_client(1);
  EXPECT_TRUE(fast.options().optimized);
  // ...but explicit options win.
  core::ClientOptions plain;
  plain.optimized = false;
  auto& slow = cluster.add_client(2, plain);
  EXPECT_FALSE(slow.options().optimized);
}

TEST(ClusterTest, ReplicaFactorySlotsApplied) {
  int factory_calls = 0;
  ClusterOptions o;
  o.replica_factories[2] = [&factory_calls](
                               const quorum::QuorumConfig& cfg,
                               quorum::ReplicaId id, crypto::Keystore& ks,
                               rpc::Transport& t, sim::Simulator& s,
                               const core::ReplicaOptions& opts)
      -> std::unique_ptr<core::Replica> {
    ++factory_calls;
    return std::make_unique<core::Replica>(cfg, id, ks, t, s, opts);
  };
  Cluster cluster(o);
  EXPECT_EQ(factory_calls, 1);
  EXPECT_EQ(cluster.replica(2).id(), 2u);
}

TEST(ClusterTest, ModeFlagsPropagateToReplicas) {
  ClusterOptions o;
  o.optimized = true;
  o.strong = true;
  Cluster cluster(o);
  for (quorum::ReplicaId r = 0; r < cluster.config().n; ++r) {
    EXPECT_TRUE(cluster.replica(r).options().optimized);
    EXPECT_TRUE(cluster.replica(r).options().strong);
  }
}

TEST(ClusterTest, PipelinedWritesKeepPerObjectOrder) {
  Cluster cluster;
  core::ClientOptions copt;
  copt.max_inflight = 2;
  auto& c = cluster.add_client(1, copt);

  // Nine writes over three objects through a window of two. Per-object
  // FIFO must hold: each object's writes commit in submission order with
  // strictly increasing timestamps.
  std::map<quorum::ObjectId, std::vector<quorum::Timestamp>> commits;
  int done = 0;
  for (int i = 0; i < 9; ++i) {
    const auto obj = static_cast<quorum::ObjectId>(1 + i % 3);
    c.submit_write(obj, to_bytes("v" + std::to_string(i)),
                   [&, obj](Result<core::Client::WriteResult> r) {
                     ++done;
                     ASSERT_TRUE(r.is_ok());
                     commits[obj].push_back(r.value().ts);
                   });
  }
  EXPECT_LE(c.inflight_writes(), 2u);
  ASSERT_TRUE(cluster.run_until([&] { return done == 9; }));
  EXPECT_EQ(c.queued_writes(), 0u);
  EXPECT_LE(c.metrics().get("inflight_peak"), 2u);
  EXPECT_GT(c.metrics().get("queued_writes"), 0u);
  for (const auto& [obj, ts] : commits) {
    ASSERT_EQ(ts.size(), 3u) << "object " << obj;
    EXPECT_LT(ts[0], ts[1]) << "object " << obj;
    EXPECT_LT(ts[1], ts[2]) << "object " << obj;
  }
  // Every object readable with its final value.
  for (quorum::ObjectId obj = 1; obj <= 3; ++obj) {
    auto r = cluster.read(c, obj);
    ASSERT_TRUE(r.is_ok());
  }
}

TEST(ClusterTest, CoalescedClusterMatchesUncoalescedResults) {
  auto run = [](bool coalesce) {
    ClusterOptions o;
    o.seed = 11;
    o.coalesce_sends = coalesce;
    Cluster cluster(o);
    core::ClientOptions copt;
    copt.max_inflight = 4;
    copt.rpc.initial_fanout = cluster.config().q;
    auto& c = cluster.add_client(1, copt);
    int done = 0;
    std::vector<std::string> outcomes;
    for (int i = 0; i < 12; ++i) {
      c.submit_write(static_cast<quorum::ObjectId>(1 + i % 4),
                     to_bytes("v" + std::to_string(i)),
                     [&](Result<core::Client::WriteResult> r) {
                       ++done;
                       outcomes.push_back(r.is_ok() ? "ok" : "fail");
                     });
    }
    EXPECT_TRUE(cluster.run_until([&] { return done == 12; }));
    std::vector<std::string> values;
    for (quorum::ObjectId obj = 1; obj <= 4; ++obj) {
      auto r = cluster.read(c, obj);
      EXPECT_TRUE(r.is_ok());
      if (r.is_ok()) values.push_back(to_string(r.value().value));
    }
    std::uint64_t msgs = cluster.net().counters().get("msgs_sent");
    std::uint64_t amortized = 0, batches = 0;
    for (quorum::ReplicaId r = 0; r < cluster.config().n; ++r) {
      amortized += cluster.replica(r).metrics().get("auth_p2p_amortized");
      batches += cluster.replica(r).metrics().get("reply_batches");
    }
    return std::make_tuple(outcomes, values, msgs, amortized, batches);
  };

  const auto plain = run(false);
  const auto coalesced = run(true);
  // Same protocol outcomes either way — coalescing is wire-level only.
  EXPECT_EQ(std::get<0>(plain), std::get<0>(coalesced));
  EXPECT_EQ(std::get<1>(plain), std::get<1>(coalesced));
  // And the coalesced run actually exercised the hot path: fewer wire
  // messages, some reply authenticators amortized into batch MACs.
  EXPECT_LT(std::get<2>(coalesced), std::get<2>(plain));
  EXPECT_EQ(std::get<3>(plain), 0u);
  EXPECT_GT(std::get<3>(coalesced), 0u);
  EXPECT_GT(std::get<4>(coalesced), 0u);
}

TEST(ClusterTest, DeterministicAcrossIdenticalRuns) {
  auto run = [](std::uint64_t seed) {
    ClusterOptions o;
    o.seed = seed;
    o.link.loss_probability = 0.1;
    Cluster cluster(o);
    auto& c = cluster.add_client(1);
    std::vector<sim::Time> completion_times;
    for (int i = 0; i < 5; ++i) {
      (void)cluster.write(c, 1, to_bytes("v" + std::to_string(i)));
      completion_times.push_back(cluster.sim().now());
    }
    return completion_times;
  };
  EXPECT_EQ(run(42), run(42));
  EXPECT_NE(run(42), run(43));
}

// ---- crash/restart with state-transfer recovery ------------------------

TEST(ClusterRestartTest, RestartedReplicaRebuildsStateFromQuorum) {
  Cluster cluster{ClusterOptions()};
  auto& c = cluster.add_client(1);
  ASSERT_TRUE(cluster.write(c, 1, to_bytes("survives")).is_ok());
  ASSERT_TRUE(cluster.write(c, 2, to_bytes("also")).is_ok());

  // Fail-stop restart with amnesia: replica 2 loses every ObjectState.
  cluster.restart_replica(2, {1, 2});
  ASSERT_TRUE(cluster.run_until(
      [&] { return !cluster.replica(2).recovering(); }, sim::kSecond));

  const core::ObjectState* obj = cluster.replica(2).find_object(1);
  ASSERT_NE(obj, nullptr);
  EXPECT_EQ(obj->data(), to_bytes("survives"));
  EXPECT_FALSE(obj->pcert().is_genesis());
  EXPECT_GE(cluster.replica(2).metrics().get("state_recovered_objects"), 2u);
}

TEST(ClusterRestartTest, WriteDuringDowntimeReachesRestartedReplica) {
  // A write completes while replica 3 is down (q=3 of the other
  // replicas suffices); the restarted replica must catch up to it via
  // state transfer, not serve its pre-crash (empty) state.
  Cluster cluster{ClusterOptions()};
  auto& c = cluster.add_client(1);
  ASSERT_TRUE(cluster.write(c, 1, to_bytes("old")).is_ok());
  cluster.crash_replica(3);
  ASSERT_TRUE(cluster.write(c, 1, to_bytes("newer")).is_ok());
  cluster.restart_replica(3, {1});
  ASSERT_TRUE(cluster.run_until(
      [&] { return !cluster.replica(3).recovering(); }, sim::kSecond));
  const core::ObjectState* obj = cluster.replica(3).find_object(1);
  ASSERT_NE(obj, nullptr);
  EXPECT_EQ(obj->data(), to_bytes("newer"));
}

TEST(ClusterRestartTest, ClientTrafficDroppedUntilRecoveryCompletes) {
  // An amnesiac replica grants prepares it may have granted before the
  // crash (its Lemma-1 plist memory is gone), so all client protocol is
  // refused until the state transfer finishes. The cluster still makes
  // progress: q=3 of the remaining replicas absorb the write, and the
  // recovering replica counts the drops.
  Cluster cluster{ClusterOptions()};
  auto& c = cluster.add_client(1);
  ASSERT_TRUE(cluster.write(c, 1, to_bytes("seed")).is_ok());
  cluster.restart_replica(0, {1});
  // Drive a write immediately — its phase-1 fan-out races the recovery's
  // state-transfer round and hits replica 0 while it is still amnesiac.
  ASSERT_TRUE(cluster.write(c, 1, to_bytes("during-recovery")).is_ok());
  cluster.settle();
  EXPECT_FALSE(cluster.replica(0).recovering());
  EXPECT_GE(cluster.replica(0).metrics().get("drop_recovering"), 1u);
  // And a follow-up read still returns the latest value.
  auto read = cluster.read(c, 1);
  ASSERT_TRUE(read.is_ok());
  EXPECT_EQ(read.value().value, to_bytes("during-recovery"));
}

TEST(ClusterRestartTest, RecoveryIsDeterministic) {
  auto run = [](std::uint64_t seed) {
    ClusterOptions o;
    o.seed = seed;
    o.link.loss_probability = 0.05;
    Cluster cluster(o);
    auto& c = cluster.add_client(1);
    (void)cluster.write(c, 1, to_bytes("a"));
    cluster.restart_replica(1, {1});
    (void)cluster.write(c, 1, to_bytes("b"));
    cluster.settle();
    return cluster.sim().now();
  };
  EXPECT_EQ(run(7), run(7));
}

}  // namespace
}  // namespace bftbc::harness
