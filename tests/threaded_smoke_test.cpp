// Multi-threaded smoke test for the components shared across real
// threads: the keystore's signature-verification cache, the metrics
// registry's resolve/fold/emit surface, and the logger sink.
//
// The simulator core stays single-threaded; these are the pieces the
// threading contract (src/util/thread_annotations.h annotations) allows
// concurrent callers on. The test's job is to give ThreadSanitizer
// (BFTBC_TSAN / the `tsan` preset) real interleavings to check —
// concurrent cache hits+misses+LRU churn, a mid-run revocation purge,
// parallel metric folds into one shared registry while another thread
// snapshots JSON — and to assert the results are still correct, not just
// race-free.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "crypto/signature.h"
#include "metrics/registry.h"
#include "util/log.h"
#include "util/stats.h"

namespace bftbc {
namespace {

constexpr int kThreads = 4;
constexpr int kItersPerThread = 2000;

TEST(ThreadedSmokeTest, ConcurrentCachedVerifies) {
  crypto::Keystore ks(crypto::SignatureScheme::kHmacSim, /*seed=*/42);
  // Small capacity on purpose: constant LRU eviction churn under load.
  ks.set_verify_cache_capacity(64);

  struct Fixture {
    crypto::PrincipalId principal;
    Bytes msg;
    Bytes good_sig;
    Bytes bad_sig;
  };
  std::vector<Fixture> fixtures;
  for (crypto::PrincipalId p = 1; p <= 4; ++p) {
    crypto::Signer signer = ks.register_principal(p);
    for (int m = 0; m < 8; ++m) {
      Fixture f;
      f.principal = p;
      f.msg = to_bytes("stmt-" + std::to_string(p) + "-" + std::to_string(m));
      auto sig = signer.sign(f.msg);
      ASSERT_TRUE(sig.is_ok());
      f.good_sig = std::move(sig).take();
      f.bad_sig = f.good_sig;
      f.bad_sig[0] ^= 0xff;
      fixtures.push_back(std::move(f));
    }
  }

  std::atomic<int> wrong_verdicts{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kItersPerThread; ++i) {
        const Fixture& f =
            fixtures[static_cast<std::size_t>(t * 31 + i) % fixtures.size()];
        const bool use_bad = ((t + i) % 3) == 0;
        const bool verdict = ks.verify_cached(
            f.principal, f.msg, use_bad ? f.bad_sig : f.good_sig);
        if (verdict == use_bad) wrong_verdicts.fetch_add(1);
      }
    });
  }
  // One extra thread revokes a principal mid-run: the purge must
  // interleave safely with lookups and inserts.
  threads.emplace_back([&] { ks.revoke(4); });
  for (auto& th : threads) th.join();

  EXPECT_EQ(wrong_verdicts.load(), 0);
  // Every call is either a hit or a miss; none may be lost.
  const auto& counts = ks.counters().all();
  const std::uint64_t hits =
      counts.count("sig_cache_hit") ? counts.at("sig_cache_hit") : 0;
  const std::uint64_t misses =
      counts.count("sig_cache_miss") ? counts.at("sig_cache_miss") : 0;
  EXPECT_EQ(hits + misses,
            static_cast<std::uint64_t>(kThreads) * kItersPerThread);
  EXPECT_LE(ks.verify_cache().size(), 64u);
}

TEST(ThreadedSmokeTest, ConcurrentMetricFolds) {
  metrics::MetricsRegistry reg;

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // Each worker folds its own cumulative counters into a private
      // scope, re-snapshotting as the run progresses (exactly what the
      // harness does per cluster) — plus everyone hammers one shared
      // name to contend on resolution.
      Counters local;
      for (int i = 0; i < kItersPerThread; ++i) {
        local.inc("ops");
        if (i % 5 == 0) local.inc("checkpoints");
        reg.fold_counters("worker/" + std::to_string(t), local);
        reg.counter("shared/resolutions");
      }
    });
  }
  // A reader thread repeatedly serializes the registry while the folds
  // are in flight; the JSON must always be well-formed (non-empty, no
  // torn index state — TSan checks the rest).
  std::atomic<bool> done{false};
  std::thread reader([&] {
    while (!done.load()) {
      const std::string json = reg.to_json();
      ASSERT_FALSE(json.empty());
    }
  });
  for (auto& th : threads) th.join();
  done.store(true);
  reader.join();

  for (int t = 0; t < kThreads; ++t) {
    const std::string scope = "worker/" + std::to_string(t);
    EXPECT_EQ(reg.counter(scope + "/ops").value,
              static_cast<std::uint64_t>(kItersPerThread));
    EXPECT_EQ(reg.counter(scope + "/checkpoints").value,
              static_cast<std::uint64_t>(kItersPerThread) / 5);
  }
}

TEST(ThreadedSmokeTest, ConcurrentRegistryMerges) {
  // Bench reports merge per-cluster registries into one; do it from many
  // threads at once.
  metrics::MetricsRegistry sink;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 200; ++i) {
        metrics::MetricsRegistry part;
        part.counter("merged/total").inc(1);
        part.counter("merged/per_thread_" + std::to_string(t)).inc(1);
        part.summary("lat_ms").add(static_cast<double>(i));
        sink.merge(part);
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(sink.counter("merged/total").value,
            static_cast<std::uint64_t>(kThreads) * 200);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(sink.counter("merged/per_thread_" + std::to_string(t)).value,
              200u);
  }
}

TEST(ThreadedSmokeTest, ConcurrentLogEmission) {
  // The sink mutex must serialize emission and time-source swaps. Keep
  // the level at kOff so the suite stays quiet; LogLine still evaluates
  // the level check on every call from every thread.
  const LogLevel prev = log_level();
  set_log_level(LogLevel::kOff);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < 500; ++i) {
        BFTBC_LOG(kDebug) << "thread " << t << " line " << i;
        if (i % 100 == 0) {
          set_log_time_source([] { return std::uint64_t{7}; });
          clear_log_time_source();
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  set_log_level(prev);
  SUCCEED();
}

}  // namespace
}  // namespace bftbc
