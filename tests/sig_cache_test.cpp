// Signature-verification cache: LRU mechanics, memoized keystore
// verification, certificate-validation integration, and the mandatory
// invalidation of a principal's entries when its key is revoked (the
// paper's "stop" event, reached through Recorder::stop_client).
#include <gtest/gtest.h>

#include "checker/history.h"
#include "crypto/verify_cache.h"
#include "harness/cluster.h"
#include "harness/recording.h"
#include "quorum/certificate.h"

namespace bftbc {
namespace {

using crypto::Keystore;
using crypto::SignatureScheme;
using crypto::VerifyCache;

// ------------------------------------------------------------ raw LRU

TEST(VerifyCacheTest, LookupMissThenHit) {
  VerifyCache cache(4);
  const auto key = VerifyCache::make_key(1, to_bytes("stmt"), to_bytes("sig"));
  EXPECT_EQ(cache.lookup(key), -1);
  cache.insert(key, true);
  EXPECT_EQ(cache.lookup(key), 1);
  cache.insert(key, false);  // re-insert updates the verdict
  EXPECT_EQ(cache.lookup(key), 0);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(VerifyCacheTest, DistinctInputsDistinctKeys) {
  // Any change to principal, statement, or signature is a different key.
  const auto base = VerifyCache::make_key(1, to_bytes("s"), to_bytes("g"));
  EXPECT_FALSE(base == VerifyCache::make_key(2, to_bytes("s"), to_bytes("g")));
  EXPECT_FALSE(base == VerifyCache::make_key(1, to_bytes("x"), to_bytes("g")));
  EXPECT_FALSE(base == VerifyCache::make_key(1, to_bytes("s"), to_bytes("y")));
  EXPECT_TRUE(base == VerifyCache::make_key(1, to_bytes("s"), to_bytes("g")));
}

TEST(VerifyCacheTest, EvictsLeastRecentlyUsed) {
  VerifyCache cache(2);
  const auto a = VerifyCache::make_key(1, to_bytes("a"), to_bytes("s"));
  const auto b = VerifyCache::make_key(1, to_bytes("b"), to_bytes("s"));
  const auto c = VerifyCache::make_key(1, to_bytes("c"), to_bytes("s"));
  cache.insert(a, true);
  cache.insert(b, true);
  EXPECT_EQ(cache.lookup(a), 1);  // refresh a; b is now LRU
  cache.insert(c, true);          // evicts b
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.lookup(b), -1);
  EXPECT_EQ(cache.lookup(a), 1);
  EXPECT_EQ(cache.lookup(c), 1);
}

TEST(VerifyCacheTest, ZeroCapacityDisables) {
  VerifyCache cache(0);
  const auto key = VerifyCache::make_key(1, to_bytes("s"), to_bytes("g"));
  cache.insert(key, true);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.lookup(key), -1);
}

TEST(VerifyCacheTest, ShrinkingCapacityEvicts) {
  VerifyCache cache(8);
  for (std::uint32_t i = 0; i < 8; ++i) {
    cache.insert(VerifyCache::make_key(i, to_bytes("s"), to_bytes("g")), true);
  }
  cache.set_capacity(3);
  EXPECT_EQ(cache.size(), 3u);
  // The three most recently inserted principals survive.
  for (std::uint32_t i = 5; i < 8; ++i) {
    EXPECT_EQ(
        cache.lookup(VerifyCache::make_key(i, to_bytes("s"), to_bytes("g"))),
        1);
  }
}

TEST(VerifyCacheTest, PurgePrincipalDropsOnlyThatPrincipal) {
  VerifyCache cache(16);
  for (std::uint32_t p = 0; p < 4; ++p) {
    cache.insert(VerifyCache::make_key(p, to_bytes("s1"), to_bytes("g")), true);
    cache.insert(VerifyCache::make_key(p, to_bytes("s2"), to_bytes("g")), true);
  }
  cache.purge_principal(2);
  EXPECT_EQ(cache.size(), 6u);
  EXPECT_EQ(cache.lookup(VerifyCache::make_key(2, to_bytes("s1"),
                                               to_bytes("g"))), -1);
  EXPECT_EQ(cache.lookup(VerifyCache::make_key(1, to_bytes("s1"),
                                               to_bytes("g"))), 1);
}

// ------------------------------------------------------- keystore memo

class KeystoreCacheTest : public ::testing::TestWithParam<SignatureScheme> {
 protected:
  Keystore ks_{GetParam(), /*seed=*/11, /*rsa_bits=*/512};
};

TEST_P(KeystoreCacheTest, HitSkipsCryptographicVerify) {
  crypto::Signer s = ks_.register_principal(3);
  const Bytes msg = to_bytes("PREPARE-REPLY ts=<1,3>");
  const Bytes sig = s.sign(msg).value();
  ks_.reset_counters();

  EXPECT_TRUE(ks_.verify_cached(3, msg, sig));
  EXPECT_EQ(ks_.counters().get("sig_cache_miss"), 1u);
  EXPECT_EQ(ks_.counters().get("sig_verify_calls"), 1u);

  for (int i = 0; i < 5; ++i) EXPECT_TRUE(ks_.verify_cached(3, msg, sig));
  EXPECT_EQ(ks_.counters().get("sig_cache_hit"), 5u);
  // The expensive check ran exactly once.
  EXPECT_EQ(ks_.counters().get("sig_verify_calls"), 1u);
}

TEST_P(KeystoreCacheTest, NegativeVerdictsAreCachedToo) {
  ks_.register_principal(4);
  const Bytes msg = to_bytes("statement");
  const Bytes garbage(ks_.signature_size(), 0x5a);
  ks_.reset_counters();

  EXPECT_FALSE(ks_.verify_cached(4, msg, garbage));
  EXPECT_FALSE(ks_.verify_cached(4, msg, garbage));
  EXPECT_EQ(ks_.counters().get("sig_cache_hit"), 1u);
  EXPECT_EQ(ks_.counters().get("sig_verify_calls"), 1u);
}

TEST_P(KeystoreCacheTest, UnknownPrincipalNotCached) {
  ks_.reset_counters();
  EXPECT_FALSE(ks_.verify_cached(77, to_bytes("m"), Bytes(32, 0)));
  // No cache traffic: a later registration must not see a stale verdict.
  EXPECT_EQ(ks_.counters().get("sig_cache_miss"), 0u);
  EXPECT_EQ(ks_.verify_cache().size(), 0u);

  crypto::Signer s = ks_.register_principal(77);
  const Bytes sig = s.sign(to_bytes("m")).value();
  EXPECT_TRUE(ks_.verify_cached(77, to_bytes("m"), sig));
}

TEST_P(KeystoreCacheTest, ZeroCapacityFallsBackToRealVerify) {
  crypto::Signer s = ks_.register_principal(5);
  const Bytes msg = to_bytes("m");
  const Bytes sig = s.sign(msg).value();
  ks_.set_verify_cache_capacity(0);
  ks_.reset_counters();

  EXPECT_TRUE(ks_.verify_cached(5, msg, sig));
  EXPECT_TRUE(ks_.verify_cached(5, msg, sig));
  EXPECT_EQ(ks_.counters().get("sig_cache_hit"), 0u);
  EXPECT_EQ(ks_.counters().get("sig_verify_calls"), 2u);
}

TEST_P(KeystoreCacheTest, RevocationPurgesPrincipalEntries) {
  crypto::Signer s = ks_.register_principal(6);
  crypto::Signer other = ks_.register_principal(7);
  const Bytes msg = to_bytes("pre-stop statement");
  const Bytes sig = s.sign(msg).value();
  const Bytes other_sig = other.sign(msg).value();

  EXPECT_TRUE(ks_.verify_cached(6, msg, sig));
  EXPECT_TRUE(ks_.verify_cached(7, msg, other_sig));
  EXPECT_EQ(ks_.verify_cache().size(), 2u);

  ks_.revoke(6);
  // The stopped principal's entries are gone; the bystander's survive.
  EXPECT_EQ(ks_.verify_cache().size(), 1u);

  ks_.reset_counters();
  // Old signatures still verify after revocation (replays are allowed by
  // the model) — but through a fresh cryptographic check, not the cache.
  EXPECT_TRUE(ks_.verify_cached(6, msg, sig));
  EXPECT_EQ(ks_.counters().get("sig_cache_miss"), 1u);
  EXPECT_EQ(ks_.counters().get("sig_cache_hit"), 0u);
  EXPECT_EQ(ks_.counters().get("sig_verify_calls"), 1u);
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, KeystoreCacheTest,
                         ::testing::Values(SignatureScheme::kHmacSim,
                                           SignatureScheme::kRsa),
                         [](const auto& info) {
                           return info.param == SignatureScheme::kHmacSim
                                      ? "HmacSim"
                                      : "Rsa";
                         });

// ----------------------------------------------- certificate integration

TEST(CertificateCacheTest, RepeatedValidationHitsCache) {
  const quorum::QuorumConfig config = quorum::QuorumConfig::bft_bc(1);
  Keystore ks(SignatureScheme::kHmacSim, 21);
  quorum::SignatureSet sigs;
  const quorum::Timestamp ts{1, 1};
  const crypto::Digest h = crypto::sha256(as_bytes_view("value"));
  const Bytes stmt = quorum::prepare_reply_statement(9, ts, h);
  for (quorum::ReplicaId r = 0; r < config.q; ++r) {
    sigs[r] = ks.register_principal(quorum::replica_principal(r))
                  .sign(stmt)
                  .value();
  }
  const quorum::PrepareCertificate cert(9, ts, h, std::move(sigs));

  ks.reset_counters();
  EXPECT_TRUE(cert.validate(config, ks).is_ok());
  EXPECT_EQ(ks.counters().get("sig_verify_calls"), config.q);

  // Re-validating the same transferable proof costs zero crypto.
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(cert.validate(config, ks).is_ok());
  EXPECT_EQ(ks.counters().get("sig_verify_calls"), config.q);
  EXPECT_EQ(ks.counters().get("sig_cache_hit"), 4u * config.q);
}

TEST(CertificateCacheTest, EarlyExitStopsAtQuorum) {
  // With all n = 4 signatures present and q = 3, validation confirms the
  // first three (map order) and never verifies the fourth.
  const quorum::QuorumConfig config = quorum::QuorumConfig::bft_bc(1);
  Keystore ks(SignatureScheme::kHmacSim, 22);
  quorum::SignatureSet sigs;
  const quorum::Timestamp ts{2, 1};
  const Bytes stmt = quorum::write_reply_statement(3, ts);
  for (quorum::ReplicaId r = 0; r < config.n; ++r) {
    sigs[r] = ks.register_principal(quorum::replica_principal(r))
                  .sign(stmt)
                  .value();
  }
  const quorum::WriteCertificate cert(3, ts, std::move(sigs));
  ks.reset_counters();
  EXPECT_TRUE(cert.validate(config, ks).is_ok());
  EXPECT_EQ(ks.counters().get("sig_verify_calls"), config.q);
}

// --------------------------------------------- stop-event invalidation

TEST(StopClientCacheTest, StopClientPurgesCachedVerifications) {
  harness::Cluster cluster;
  checker::History history;
  harness::Recorder rec(cluster, history);
  auto& c1 = cluster.add_client(7);
  ASSERT_TRUE(rec.write(c1, 1, to_bytes("v1")).is_ok());

  // Cache a verification verdict for the client's principal (the signer
  // handle is the idempotent registration of the same key).
  Keystore& ks = cluster.keystore();
  crypto::Signer handle =
      ks.register_principal(quorum::client_principal(7));
  const Bytes stmt = to_bytes("pre-stop client statement");
  const Bytes sig = handle.sign(stmt).value();
  EXPECT_TRUE(ks.verify_cached(quorum::client_principal(7), stmt, sig));
  ks.reset_counters();
  EXPECT_TRUE(ks.verify_cached(quorum::client_principal(7), stmt, sig));
  EXPECT_EQ(ks.counters().get("sig_cache_hit"), 1u);
  const std::size_t entries_before = ks.verify_cache().size();
  ASSERT_GT(entries_before, 0u);

  // The administrator stops the client: key revoked, ACL entry removed,
  // and every cached verdict for the principal dropped.
  rec.stop_client(7);
  EXPECT_TRUE(ks.is_revoked(quorum::client_principal(7)));
  EXPECT_LT(ks.verify_cache().size(), entries_before);

  ks.reset_counters();
  // Post-stop, the same check is a miss (re-verified cryptographically),
  // never a hit served from stale memoization.
  EXPECT_TRUE(ks.verify_cached(quorum::client_principal(7), stmt, sig));
  EXPECT_EQ(ks.counters().get("sig_cache_hit"), 0u);
  EXPECT_EQ(ks.counters().get("sig_cache_miss"), 1u);

  // And the stopped client can no longer mint anything new to cache.
  EXPECT_FALSE(handle.sign(to_bytes("post-stop")).is_ok());
}

TEST(StopClientCacheTest, PoisonedCertificateAcceptedInLiveCluster) {
  // End-to-end regression for the quorum-counting fix: a write-back of a
  // certificate carrying one garbage signature alongside a valid quorum
  // must still be accepted by replicas.
  harness::Cluster cluster;
  auto& c1 = cluster.add_client(1);
  ASSERT_TRUE(cluster.write(c1, 5, to_bytes("v")).is_ok());

  // Grab the replicas' current prepare certificate and poison it.
  auto pcert = cluster.replica(0).object(5).pcert();
  quorum::SignatureSet sigs = pcert.signatures();
  ASSERT_GE(sigs.size(), cluster.config().q);
  quorum::ReplicaId rider = 0;  // first replica id not already signing
  while (sigs.count(rider) != 0) ++rider;
  sigs[rider] = to_bytes("byzantine garbage rider");
  const quorum::PrepareCertificate poisoned(pcert.object(), pcert.ts(),
                                            pcert.hash(), std::move(sigs));
  EXPECT_TRUE(poisoned.validate(cluster.config(), cluster.keystore()).is_ok());
}

}  // namespace
}  // namespace bftbc
