// Live transport layer: EventLoop timer wheel + fd dispatch, UdpTransport
// over real loopback sockets, and the shared cluster config. These tests
// use real time and real sockets, so assertions are bounded waits
// (run_until with a generous deadline) rather than exact virtual-time
// checks — on loopback they complete in milliseconds.
#include <gtest/gtest.h>

#include <unistd.h>

#include <memory>
#include <string>
#include <vector>

#include "net/cluster_config.h"
#include "net/event_loop.h"
#include "net/udp_transport.h"

namespace bftbc::net {
namespace {

constexpr sim::Time kWait = 2 * sim::kSecond;

rpc::Envelope envelope(std::uint64_t rpc_id, const std::string& body) {
  rpc::Envelope env;
  env.type = rpc::MsgType::kReadTs;
  env.rpc_id = rpc_id;
  env.sender = 1;
  env.body = to_bytes(body);
  return env;
}

UdpEndpoint loopback(std::uint16_t port = 0) {
  auto ep = UdpEndpoint::parse("127.0.0.1", port);
  EXPECT_TRUE(ep.has_value());
  return *ep;
}

// ---------------------------------------------------------------------------
// EventLoop: the sim::Scheduler contract over real time.

// Both backend paths (epoll and the poll() fallback) must behave
// identically; every loop test runs under each.
class EventLoopTest : public ::testing::TestWithParam<bool> {
 protected:
  EventLoopTest() : loop_(/*force_poll=*/GetParam()) {}
  EventLoop loop_;
};

INSTANTIATE_TEST_SUITE_P(Backends, EventLoopTest, ::testing::Bool(),
                         [](const auto& info) {
                           return info.param ? "Poll" : "Epoll";
                         });

TEST_P(EventLoopTest, BackendMatchesParam) {
  EXPECT_EQ(loop_.using_epoll(), !GetParam());
}

TEST_P(EventLoopTest, TimerIdsAreNonZeroAndNeverReused) {
  std::vector<sim::TimerId> ids;
  for (int i = 0; i < 100; ++i) {
    const sim::TimerId id = loop_.schedule(0, [] {});
    EXPECT_NE(id, 0u);
    if (!ids.empty()) EXPECT_GT(id, ids.back());  // monotone => never reused
    // Cancelling and re-scheduling must not recycle the id.
    if (i % 2 == 0) loop_.cancel(id);
    ids.push_back(id);
  }
}

TEST_P(EventLoopTest, TimersFireInDeadlineOrder) {
  std::vector<int> order;
  loop_.schedule(5 * sim::kMillisecond, [&] { order.push_back(2); });
  loop_.schedule(1 * sim::kMillisecond, [&] { order.push_back(1); });
  loop_.schedule(10 * sim::kMillisecond, [&] { order.push_back(3); });
  ASSERT_TRUE(loop_.run_until([&] { return order.size() == 3; }, kWait));
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST_P(EventLoopTest, SameInstantTimersFireInScheduleOrder) {
  // The simulator's FIFO tie-break for equal times, mirrored live.
  std::vector<int> order;
  for (int i = 0; i < 8; ++i) {
    loop_.schedule(0, [&order, i] { order.push_back(i); });
  }
  ASSERT_TRUE(loop_.run_until([&] { return order.size() == 8; }, kWait));
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST_P(EventLoopTest, CancelPreventsFiringAndTolerates0AndFiredIds) {
  bool cancelled_fired = false;
  bool kept_fired = false;
  const sim::TimerId doomed =
      loop_.schedule(sim::kMillisecond, [&] { cancelled_fired = true; });
  const sim::TimerId kept =
      loop_.schedule(sim::kMillisecond, [&] { kept_fired = true; });
  loop_.cancel(doomed);
  loop_.cancel(0);  // the "no timer" sentinel: must be a no-op
  ASSERT_TRUE(loop_.run_until([&] { return kept_fired; }, kWait));
  EXPECT_FALSE(cancelled_fired);
  loop_.cancel(kept);    // already fired: must be a no-op
  loop_.cancel(doomed);  // already cancelled: must be a no-op
  EXPECT_EQ(loop_.pending_timers(), 0u);
}

TEST_P(EventLoopTest, ZeroDelayChainsRunWithinOneWakeup) {
  // A delay-0 callback scheduling another delay-0 (the coalescing-flush /
  // zero-cost-processing shape) completes in the same poll_once.
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 5) loop_.schedule(0, chain);
  };
  loop_.schedule(0, chain);
  loop_.poll_once(sim::kMillisecond);
  EXPECT_EQ(depth, 5);
}

TEST_P(EventLoopTest, LongTimersSurviveWheelWraparound) {
  // 300ms > one full wheel turn (256 slots x 1ms): the slot is revisited
  // before the deadline and must not fire early.
  bool fired = false;
  loop_.schedule(300 * sim::kMillisecond, [&] { fired = true; });
  loop_.run_until([] { return false; }, 50 * sim::kMillisecond);
  EXPECT_FALSE(fired);  // far from due yet
  ASSERT_TRUE(loop_.run_until([&] { return fired; }, kWait));
}

TEST_P(EventLoopTest, NowIsMonotonic) {
  const sim::Time a = loop_.now();
  loop_.run_until([] { return false; }, 2 * sim::kMillisecond);
  const sim::Time b = loop_.now();
  EXPECT_GE(b, a + sim::kMillisecond);
}

TEST_P(EventLoopTest, FdDispatchAndUnwatch) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  int reads = 0;
  loop_.watch_fd(fds[0], [&] {
    char c;
    ASSERT_EQ(::read(fds[0], &c, 1), 1);
    ++reads;
  });
  ASSERT_EQ(::write(fds[1], "x", 1), 1);
  ASSERT_TRUE(loop_.run_until([&] { return reads == 1; }, kWait));

  loop_.unwatch_fd(fds[0]);
  ASSERT_EQ(::write(fds[1], "y", 1), 1);
  loop_.run_until([] { return false; }, 20 * sim::kMillisecond);
  EXPECT_EQ(reads, 1);  // unwatched: byte stays buffered, handler silent
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST_P(EventLoopTest, StopExitsRun) {
  loop_.schedule(sim::kMillisecond, [&] { loop_.stop(); });
  loop_.run();  // returns because the timer stopped it
  SUCCEED();
}

// ---------------------------------------------------------------------------
// UdpTransport over real loopback sockets.

class UdpTransportTest : public ::testing::Test {
 protected:
  // Builds a bound transport with no peers; callers wire peer tables
  // through make_peer() once ports are known.
  std::unique_ptr<UdpTransport> make_node(
      sim::NodeId id, UdpTransportOptions options = {}) {
    auto t = std::make_unique<UdpTransport>(
        loop_, id, loopback(), std::map<sim::NodeId, UdpEndpoint>{}, options);
    EXPECT_TRUE(t->valid());
    return t;
  }

  std::map<sim::NodeId, UdpEndpoint> peer(sim::NodeId id,
                                          const UdpTransport& t) {
    return {{id, loopback(t.local_port())}};
  }

  EventLoop loop_;
};

TEST_F(UdpTransportTest, DeliversEnvelopesAcrossLoopback) {
  auto receiver = make_node(2);
  UdpTransport sender(loop_, 1, loopback(), peer(2, *receiver));
  ASSERT_TRUE(sender.valid());
  std::vector<rpc::Envelope> got;
  receiver->set_receiver(
      [&](sim::NodeId from, const rpc::Envelope& env) {
        EXPECT_EQ(from, 1u);
        got.push_back(env);
      });

  sender.send(2, envelope(7, "over the wire"));
  ASSERT_TRUE(loop_.run_until([&] { return got.size() == 1; }, kWait));
  EXPECT_EQ(got[0].rpc_id, 7u);
  EXPECT_EQ(to_string(got[0].body), "over the wire");
  EXPECT_EQ(got[0].type, rpc::MsgType::kReadTs);
}

TEST_F(UdpTransportTest, CoalescesSameInstantSendsIntoOneDatagram) {
  auto receiver = make_node(2);
  UdpTransport sender(loop_, 1, loopback(), peer(2, *receiver));
  std::vector<rpc::Envelope> got;
  receiver->set_receiver(
      [&](sim::NodeId, const rpc::Envelope& env) { got.push_back(env); });

  sender.send(2, envelope(1, "a"));
  sender.send(2, envelope(2, "b"));
  sender.send(2, envelope(3, "c"));
  ASSERT_TRUE(loop_.run_until([&] { return got.size() == 3; }, kWait));

  // One kBatch datagram on the wire; protocol code sees three envelopes.
  EXPECT_EQ(sender.counters().get("msgs_sent"), 1u);
  EXPECT_EQ(receiver->counters().get("msgs_delivered"), 1u);
  EXPECT_EQ(got[0].rpc_id, 1u);
  EXPECT_EQ(got[1].rpc_id, 2u);
  EXPECT_EQ(got[2].rpc_id, 3u);
}

TEST_F(UdpTransportTest, CoalescingDisabledSendsEachEnvelopeAlone) {
  auto receiver = make_node(2);
  UdpTransportOptions opts;
  opts.coalesce = false;
  UdpTransport sender(loop_, 1, loopback(), peer(2, *receiver), opts);
  int delivered = 0;
  receiver->set_receiver(
      [&](sim::NodeId, const rpc::Envelope&) { ++delivered; });

  sender.send(2, envelope(1, "a"));
  sender.send(2, envelope(2, "b"));
  ASSERT_TRUE(loop_.run_until([&] { return delivered == 2; }, kWait));
  EXPECT_EQ(sender.counters().get("msgs_sent"), 2u);
}

TEST_F(UdpTransportTest, OversizeBatchSplitsAtDatagramCap) {
  auto receiver = make_node(2);
  UdpTransportOptions opts;
  opts.max_datagram = 2048;
  UdpTransport sender(loop_, 1, loopback(), peer(2, *receiver), opts);
  int delivered = 0;
  receiver->set_receiver(
      [&](sim::NodeId, const rpc::Envelope&) { ++delivered; });

  // 6 x ~700B cannot fit one 2KiB datagram; the flush must split the
  // batch rather than emit an oversized packet.
  const std::string big(700, 'x');
  for (std::uint64_t i = 0; i < 6; ++i) sender.send(2, envelope(i + 1, big));
  ASSERT_TRUE(loop_.run_until([&] { return delivered == 6; }, kWait));
  EXPECT_GT(sender.counters().get("msgs_sent"), 1u);
  EXPECT_EQ(sender.counters().get("msgs_dropped"), 0u);
}

TEST_F(UdpTransportTest, RepliesReachUnconfiguredPeersViaLearnedAddresses) {
  // The deployment shape: the replica's peer table does not (cannot)
  // list clients — a client binds an ephemeral port and the replica
  // learns its return address from the request datagram's header.
  auto replica = make_node(0);
  UdpTransport client(loop_, kClientNodeBase + 3, loopback(),
                      peer(0, *replica));
  replica->set_receiver([&](sim::NodeId from, const rpc::Envelope& env) {
    EXPECT_EQ(from, kClientNodeBase + 3);
    rpc::Envelope reply;
    reply.type = rpc::MsgType::kReadTsReply;
    reply.rpc_id = env.rpc_id;
    reply.sender = quorum::replica_principal(0);
    reply.body = to_bytes("pong");
    replica->send(from, reply);
  });
  std::vector<rpc::Envelope> got;
  client.set_receiver(
      [&](sim::NodeId, const rpc::Envelope& env) { got.push_back(env); });

  client.send(0, envelope(42, "ping"));
  ASSERT_TRUE(loop_.run_until([&] { return got.size() == 1; }, kWait));
  EXPECT_EQ(got[0].rpc_id, 42u);
  EXPECT_EQ(to_string(got[0].body), "pong");
}

TEST_F(UdpTransportTest, ForgedHeaderCannotHijackLearnedReplyRoute) {
  // Regression: address learning used to happen BEFORE the envelope
  // decode verdict, so a garbage datagram with a valid magic + a
  // victim client's NodeId in the (unauthenticated) header redirected
  // that client's replies to the attacker's source address.
  const sim::NodeId kClient = kClientNodeBase + 9;
  auto replica = make_node(0);
  UdpTransport client(loop_, kClient, loopback(), peer(0, *replica));
  replica->set_receiver([&](sim::NodeId, const rpc::Envelope&) {});
  std::vector<rpc::Envelope> got;
  client.set_receiver(
      [&](sim::NodeId, const rpc::Envelope& env) { got.push_back(env); });

  // 1. A legitimate request establishes the client's learned route.
  client.send(0, envelope(1, "ping"));
  ASSERT_TRUE(loop_.run_until(
      [&] {
        return replica->counters().get("msgs_delivered") == 1;
      },
      kWait));

  // 2. Attacker: valid magic, the client's NodeId, garbage body that
  //    fails Envelope::decode — sprayed from a different source port.
  const int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
  ASSERT_GE(fd, 0);
  const sockaddr_in dst = loopback(replica->local_port()).to_sockaddr();
  Writer w;
  w.put_u32(0xBF7BC001u);
  w.put_u32(kClient);
  w.put_raw(as_bytes_view("not-a-decodable-envelope"));
  const Bytes forged = std::move(w).take();
  ::sendto(fd, forged.data(), forged.size(), 0,
           reinterpret_cast<const sockaddr*>(&dst), sizeof(dst));
  loop_.run_until([] { return false; }, 20 * sim::kMillisecond);

  // 3. The replica replies with NO intervening request from the client
  //    (so nothing re-learns the honest route). It must still reach the
  //    real client, not the attacker's socket.
  rpc::Envelope reply;
  reply.type = rpc::MsgType::kReadTsReply;
  reply.rpc_id = 7;
  reply.sender = quorum::replica_principal(0);
  reply.body = to_bytes("pong");
  replica->send(kClient, reply);
  ASSERT_TRUE(loop_.run_until([&] { return got.size() == 1; }, kWait));
  EXPECT_EQ(got[0].rpc_id, 7u);
  ::close(fd);
}

TEST_F(UdpTransportTest, SendToUnknownNodeCountsAsDropNotCrash) {
  auto sender = make_node(1);
  sender->send(99, envelope(1, "void"));
  loop_.run_until([] { return false; }, 20 * sim::kMillisecond);
  EXPECT_EQ(sender->counters().get("msgs_dropped"), 1u);
}

TEST_F(UdpTransportTest, DestructionFlushesPendingCoalescedEnvelopes) {
  auto receiver = make_node(2);
  std::vector<rpc::Envelope> got;
  receiver->set_receiver(
      [&](sim::NodeId, const rpc::Envelope& env) { got.push_back(env); });
  {
    UdpTransport sender(loop_, 1, loopback(), peer(2, *receiver));
    sender.send(2, envelope(1, "a"));
    sender.send(2, envelope(2, "b"));
    // Destroyed before the delay-0 flush timer runs: teardown must ship
    // the remainder (same contract as SimTransport).
  }
  ASSERT_TRUE(loop_.run_until([&] { return got.size() == 2; }, kWait));
  EXPECT_EQ(got[0].rpc_id, 1u);
  EXPECT_EQ(got[1].rpc_id, 2u);
  // Still one datagram: the teardown flush coalesces like the timer.
  EXPECT_EQ(receiver->counters().get("msgs_delivered"), 1u);
}

TEST_F(UdpTransportTest, MidBundleReceiverClearStopsDeliverySafely) {
  auto receiver = make_node(2);
  UdpTransport sender(loop_, 1, loopback(), peer(2, *receiver));
  std::vector<std::uint64_t> got;
  receiver->set_receiver([&](sim::NodeId, const rpc::Envelope& env) {
    got.push_back(env.rpc_id);
    // Unhook on first delivery — the remaining sub-envelopes of the
    // bundle must be dropped, not invoked on an empty std::function.
    receiver->set_receiver({});
  });

  sender.send(2, envelope(1, "a"));
  sender.send(2, envelope(2, "b"));
  sender.send(2, envelope(3, "c"));
  ASSERT_TRUE(loop_.run_until([&] { return !got.empty(); }, kWait));
  loop_.run_until([] { return false; }, 20 * sim::kMillisecond);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], 1u);
}

TEST_F(UdpTransportTest, GarbageDatagramsAreDroppedSilently) {
  auto receiver = make_node(2);
  int delivered = 0;
  receiver->set_receiver(
      [&](sim::NodeId, const rpc::Envelope&) { ++delivered; });

  // Raw socket spraying junk at the transport: wrong magic, truncated
  // header, magic + garbage envelope.
  const int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
  ASSERT_GE(fd, 0);
  const sockaddr_in dst = loopback(receiver->local_port()).to_sockaddr();
  auto spray = [&](const Bytes& b) {
    ::sendto(fd, b.data(), b.size(), 0,
             reinterpret_cast<const sockaddr*>(&dst), sizeof(dst));
  };
  spray(to_bytes("not-a-protocol-datagram"));
  spray(Bytes{0x01});
  Writer w;
  w.put_u32(0xBF7BC001u);
  w.put_u32(7);
  w.put_raw(as_bytes_view("garbage-after-valid-header"));
  spray(std::move(w).take());
  // Then one valid envelope proves the socket survived the junk.
  UdpTransport sender(loop_, 1, loopback(), peer(2, *receiver));
  sender.send(2, envelope(5, "ok"));
  ASSERT_TRUE(loop_.run_until([&] { return delivered == 1; }, kWait));
  EXPECT_EQ(delivered, 1);
  ::close(fd);
}

// ---------------------------------------------------------------------------
// Cluster config.

constexpr const char* kValidConfig = R"({
  "f": 1,
  "mode": "optimized",
  "scheme": "hmac",
  "key_seed": 42,
  "max_clients": 8,
  "replicas": [
    {"host": "127.0.0.1", "port": 5500},
    {"host": "127.0.0.1", "port": 5501},
    {"host": "127.0.0.1", "port": 5502},
    {"host": "127.0.0.1", "port": 5503}
  ]
})";

TEST(ClusterConfigTest, ParsesValidConfig) {
  auto result = ClusterConfig::parse(kValidConfig);
  ASSERT_TRUE(result.is_ok()) << result.status().message();
  const ClusterConfig& cfg = result.value();
  EXPECT_EQ(cfg.f, 1u);
  EXPECT_TRUE(cfg.optimized());
  EXPECT_FALSE(cfg.strong());
  EXPECT_EQ(cfg.key_seed, 42u);
  EXPECT_EQ(cfg.max_clients, 8u);
  EXPECT_EQ(cfg.quorum().n, 4u);
  EXPECT_EQ(cfg.quorum().q, 3u);
  ASSERT_EQ(cfg.replicas.size(), 4u);
  EXPECT_EQ(cfg.replicas[2].port, 5502);

  auto peers = replica_endpoints(cfg);
  ASSERT_TRUE(peers.is_ok());
  EXPECT_EQ(peers.value().at(3).to_string(), "127.0.0.1:5503");
}

TEST(ClusterConfigTest, RejectsWrongReplicaCount) {
  auto result = ClusterConfig::parse(R"({
    "f": 2,
    "replicas": [{"host": "127.0.0.1", "port": 5500}]
  })");
  ASSERT_FALSE(result.is_ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  // The message names the 3f+1 expectation.
  EXPECT_NE(result.status().message().find("7"), std::string::npos);
}

TEST(ClusterConfigTest, RejectsBadHostModeSchemeAndPort) {
  EXPECT_FALSE(ClusterConfig::parse("[1,2,3]").is_ok());
  EXPECT_FALSE(ClusterConfig::parse("not json at all").is_ok());

  std::string bad_host = kValidConfig;
  bad_host.replace(bad_host.find("127.0.0.1"), 9, "localhost");
  EXPECT_FALSE(ClusterConfig::parse(bad_host).is_ok());

  std::string bad_mode = kValidConfig;
  bad_mode.replace(bad_mode.find("optimized"), 9, "turbo-mode");
  EXPECT_FALSE(ClusterConfig::parse(bad_mode).is_ok());

  std::string bad_scheme = kValidConfig;
  bad_scheme.replace(bad_scheme.find("hmac"), 4, "des3");
  EXPECT_FALSE(ClusterConfig::parse(bad_scheme).is_ok());

  std::string bad_port = kValidConfig;
  bad_port.replace(bad_port.find("5503"), 4, "99999");
  EXPECT_FALSE(ClusterConfig::parse(bad_port).is_ok());
}

TEST(ClusterConfigTest, DefaultsApplyWhenFieldsOmitted) {
  auto result = ClusterConfig::parse(R"({
    "replicas": [
      {"host": "10.0.0.1", "port": 1},
      {"host": "10.0.0.2", "port": 2},
      {"host": "10.0.0.3", "port": 3},
      {"host": "10.0.0.4", "port": 4}
    ]
  })");
  ASSERT_TRUE(result.is_ok()) << result.status().message();
  EXPECT_EQ(result.value().f, 1u);
  EXPECT_EQ(result.value().mode, "base");
  EXPECT_FALSE(result.value().optimized());
  EXPECT_EQ(result.value().signature_scheme(),
            crypto::SignatureScheme::kHmacSim);
}

TEST(ClusterConfigTest, IndependentKeystoresAgreeOnKeys) {
  // The whole key-distribution story: two processes, each constructing
  // its own Keystore from the shared config, must be able to verify each
  // other's signatures.
  auto cfg = ClusterConfig::parse(kValidConfig).value();
  crypto::Keystore ks_replica(cfg.signature_scheme(), cfg.key_seed,
                              cfg.rsa_bits);
  crypto::Keystore ks_client(cfg.signature_scheme(), cfg.key_seed,
                             cfg.rsa_bits);
  register_cluster_principals(cfg, ks_replica);
  register_cluster_principals(cfg, ks_client);

  // Client 5 signs in its process; replica 2's process verifies.
  auto client_signer =
      ks_client.register_principal(quorum::client_principal(5));
  auto sig = client_signer.sign(as_bytes_view("prepare statement"));
  ASSERT_TRUE(sig.is_ok());
  EXPECT_TRUE(ks_replica.verify(quorum::client_principal(5),
                                as_bytes_view("prepare statement"),
                                sig.value()));
  // And the reverse direction.
  auto replica_signer =
      ks_replica.register_principal(quorum::replica_principal(2));
  auto rsig = replica_signer.sign(as_bytes_view("read-ts reply"));
  ASSERT_TRUE(rsig.is_ok());
  EXPECT_TRUE(ks_client.verify(quorum::replica_principal(2),
                               as_bytes_view("read-ts reply"), rsig.value()));
}

TEST(ClusterConfigTest, NodeAddressingMatchesHarnessConvention) {
  // net/ and harness/ must agree on the NodeId layout (the constants are
  // duplicated to keep net free of the harness dependency).
  EXPECT_EQ(kClientNodeBase, 0x10000u);
  EXPECT_EQ(client_node(7), 0x10007u);
}

}  // namespace
}  // namespace bftbc::net
