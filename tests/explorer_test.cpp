// Tier-1 coverage for the randomized scenario explorer (src/explore):
// JSON parsing, scenario serialization round-trips, sampled-scenario
// cleanliness, cross-process-grade determinism, and the end-to-end
// canary — a deliberately weakened replica configuration must produce a
// checker violation that shrinks to a small replayable scenario within
// the acceptance budget.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "explore/corpus.h"
#include "explore/coverage.h"
#include "explore/explorer.h"
#include "util/json_value.h"

namespace bftbc::explore {
namespace {

// ------------------------------------------------------------------
// JsonValue

TEST(JsonValueTest, ParsesScalars) {
  auto v = JsonValue::parse("{\"a\": 1, \"b\": true, \"c\": \"hi\", "
                            "\"d\": 2.5, \"e\": null}");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->u64("a"), 1u);
  EXPECT_TRUE(v->boolean("b"));
  EXPECT_EQ(v->string("c"), "hi");
  EXPECT_DOUBLE_EQ(v->num("d"), 2.5);
  ASSERT_NE(v->find("e"), nullptr);
  EXPECT_EQ(v->find("e")->kind(), JsonValue::Kind::kNull);
  EXPECT_EQ(v->find("missing"), nullptr);
}

TEST(JsonValueTest, U64RoundTripsExactly) {
  // 2^63 + 1 is not representable in a double; the integral channel must
  // preserve it bit-for-bit (seeds above 2^53 are common).
  auto v = JsonValue::parse("{\"seed\": 9223372036854775809}");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->u64("seed"), 9223372036854775809ull);
}

TEST(JsonValueTest, ParsesNestedArraysAndEscapes) {
  auto v = JsonValue::parse(
      "{\"xs\": [1, [2, 3], {\"k\": \"a\\nb\\\"c\\u0041\"}]}");
  ASSERT_TRUE(v.has_value());
  const JsonValue* xs = v->find("xs");
  ASSERT_NE(xs, nullptr);
  ASSERT_TRUE(xs->is_array());
  ASSERT_EQ(xs->items().size(), 3u);
  EXPECT_EQ(xs->items()[1].items()[1].as_u64(), 3u);
  EXPECT_EQ(xs->items()[2].string("k"), "a\nb\"cA");
}

TEST(JsonValueTest, RejectsMalformedDocuments) {
  EXPECT_FALSE(JsonValue::parse("").has_value());
  EXPECT_FALSE(JsonValue::parse("{").has_value());
  EXPECT_FALSE(JsonValue::parse("{\"a\": }").has_value());
  EXPECT_FALSE(JsonValue::parse("[1, 2,]").has_value());
  EXPECT_FALSE(JsonValue::parse("\"unterminated").has_value());
  EXPECT_FALSE(JsonValue::parse("{} trailing").has_value());
  EXPECT_FALSE(JsonValue::parse("truth").has_value());
}

TEST(JsonValueTest, RejectsAbsurdNesting) {
  std::string deep;
  for (int i = 0; i < 200; ++i) deep += "[";
  for (int i = 0; i < 200; ++i) deep += "]";
  EXPECT_FALSE(JsonValue::parse(deep).has_value());
}

TEST(JsonValueTest, TruncationNeverParses) {
  const Scenario s = Scenario::sample(77);
  const std::string full = s.to_json();
  for (std::size_t cut = 0; cut + 1 < full.size(); cut += 7) {
    EXPECT_FALSE(JsonValue::parse(full.substr(0, cut)).has_value())
        << "prefix of length " << cut << " parsed";
  }
}

// ------------------------------------------------------------------
// Scenario serialization

TEST(ScenarioTest, JsonRoundTripIsExact) {
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    const Scenario s = Scenario::sample(seed * 1297);
    const std::string rendered = s.to_json();
    const auto back = Scenario::from_json(rendered);
    ASSERT_TRUE(back.has_value()) << rendered;
    EXPECT_EQ(back->to_json(), rendered) << "seed " << seed;
    EXPECT_EQ(back->name(), s.name());
  }
}

TEST(ScenarioTest, SampleIsDeterministic) {
  for (std::uint64_t seed : {1ull, 42ull, 0xdeadbeefull}) {
    EXPECT_EQ(Scenario::sample(seed).to_json(),
              Scenario::sample(seed).to_json());
  }
}

TEST(ScenarioTest, SampleStaysWithinFaultBudget) {
  for (std::uint64_t seed = 1; seed <= 300; ++seed) {
    const Scenario s = Scenario::sample(seed);
    EXPECT_TRUE(s.within_fault_budget());
    EXPECT_TRUE(s.enforce_fault_budget);
    for (const ClientPlan& c : s.clients) EXPECT_LT(c.id, kProbeClient);
    for (const AttackPlan& a : s.attacks) {
      EXPECT_GT(a.id, kProbeClient);
      EXPECT_LT(a.id, kColluderNodeBase);
    }
  }
}

TEST(ScenarioTest, FromJsonRejectsOutOfRangeConfigs) {
  const std::string base = Scenario::sample(5).to_json();
  EXPECT_TRUE(Scenario::from_json(base).has_value());
  EXPECT_FALSE(Scenario::from_json("{\"f\": 9}").has_value());
  EXPECT_FALSE(Scenario::from_json("{\"f\": 1, \"objects\": 0}").has_value());
  EXPECT_FALSE(
      Scenario::from_json("{\"f\": 1, \"objects\": 1, \"shards\": 9}")
          .has_value());
  EXPECT_FALSE(
      Scenario::from_json("{\"f\": 1, \"objects\": 1, \"shards\": 0}")
          .has_value());
  EXPECT_FALSE(Scenario::from_json("not json at all").has_value());
  // A byz slot beyond n() must be rejected, not silently dropped.
  EXPECT_FALSE(
      Scenario::from_json(
          "{\"f\": 1, \"objects\": 1, \"byz_replicas\": [{\"slot\": 7, "
          "\"species\": \"silent\"}]}")
          .has_value());
}

// ------------------------------------------------------------------
// Explorer

TEST(ExplorerTest, SampledScenariosPassTheChecker) {
  ExplorerOptions options;
  options.seed = 20260806;
  options.runs = 25;
  Explorer explorer(options);
  const Report report = explorer.explore();
  EXPECT_EQ(report.failures, 0u) << report.to_json();
  ASSERT_EQ(report.records.size(), 25u);
  for (const RunRecord& r : report.records) {
    EXPECT_TRUE(r.outcome.completed) << r.scenario;
    EXPECT_GT(r.outcome.history_ops, 0u);
  }
}

TEST(ExplorerTest, ReportIsByteIdenticalAcrossRepeats) {
  ExplorerOptions options;
  options.seed = 99;
  options.runs = 15;
  const Report a = Explorer(options).explore();
  const Report b = Explorer(options).explore();
  EXPECT_EQ(a.to_json(), b.to_json());
}

TEST(ExplorerTest, FailureClassSplitsOnColon) {
  EXPECT_EQ(Explorer::failure_class("safety: lurking[66]=2"), "safety");
  EXPECT_EQ(Explorer::failure_class("liveness: stalled"), "liveness");
  EXPECT_EQ(Explorer::failure_class("odd"), "odd");
}

// The deliberately weakened configuration: three EquivocSignReplica
// accomplices at f=1 (fault budget off) sign any prepare, so a
// LurkingWriteStasher can chain multiple lurking writes past the base
// protocol's bound of 1. The explorer must flag it, shrink it within the
// acceptance budget (< 10 candidate runs), and the minimal scenario must
// replay from its JSON.
Scenario weakened_scenario() {
  Scenario s;
  s.seed = 4242;
  s.f = 1;
  s.mode = Mode::kBase;
  s.enforce_fault_budget = false;
  s.objects = 1;
  s.byz_replicas = {{0, ByzSpecies::kEquivocSign},
                    {1, ByzSpecies::kEquivocSign},
                    {2, ByzSpecies::kEquivocSign}};
  ClientPlan client;
  client.id = 1;
  client.ops = 3;
  s.clients = {client};
  AttackPlan attack;
  attack.kind = AttackKind::kLurkingStash;
  attack.id = 66;
  attack.object = 1;
  attack.goal = 2;
  attack.collude_replay = true;
  s.attacks = {attack};
  return s;
}

TEST(ExplorerTest, WeakenedReplicasYieldCheckerViolation) {
  Explorer explorer(ExplorerOptions{});
  const RunOutcome outcome = explorer.run_scenario(weakened_scenario());
  EXPECT_TRUE(outcome.completed);
  ASSERT_TRUE(outcome.failed());
  EXPECT_EQ(Explorer::failure_class(outcome.failure), "safety");
  EXPECT_GE(outcome.max_lurking, 2);
}

TEST(ExplorerTest, ViolationShrinksToReplayableScenarioWithinBudget) {
  Explorer explorer(ExplorerOptions{});
  const Scenario original = weakened_scenario();
  const RunOutcome outcome = explorer.run_scenario(original);
  ASSERT_TRUE(outcome.failed());

  std::uint32_t used = 0;
  const Scenario minimal = explorer.shrink(original, outcome.failure, &used);
  EXPECT_LT(used, 10u);  // acceptance: under 10 runs' worth of work
  // The violation needs the attacker and all three accomplices; the
  // correct workload client is noise and must have been dropped.
  EXPECT_TRUE(minimal.clients.empty());
  EXPECT_EQ(minimal.attacks.size(), 1u);
  EXPECT_EQ(minimal.byz_replicas.size(), 3u);

  // One-command replay: the dumped JSON must parse back and reproduce
  // the same failure class.
  const auto reloaded = Scenario::from_json(minimal.to_json());
  ASSERT_TRUE(reloaded.has_value());
  const RunOutcome replayed = explorer.run_scenario(*reloaded);
  ASSERT_TRUE(replayed.failed());
  EXPECT_EQ(Explorer::failure_class(replayed.failure), "safety");
}

TEST(ExplorerTest, MultiShardScenarioYieldsPerShardVerdicts) {
  // A clean two-shard run: workload + an in-bound lurking attack on the
  // attack object's home shard. The outcome must carry one verdict per
  // shard, all "ok", and pass overall.
  Scenario s;
  s.seed = 11;
  s.f = 1;
  s.mode = Mode::kOptimized;
  s.shards = 2;
  s.objects = 4;
  ClientPlan seq;
  seq.id = 1;
  seq.ops = 4;
  ClientPlan piped;
  piped.id = 2;
  piped.ops = 4;
  piped.pipelined = true;
  piped.window = 2;
  s.clients = {seq, piped};
  AttackPlan attack;
  attack.kind = AttackKind::kLurkingStash;
  attack.id = 66;
  attack.object = 1;
  attack.goal = 1;
  attack.collude_replay = true;
  s.attacks = {attack};

  Explorer explorer(ExplorerOptions{});
  const RunOutcome outcome = explorer.run_scenario(s);
  EXPECT_TRUE(outcome.completed);
  EXPECT_FALSE(outcome.failed()) << outcome.failure;
  ASSERT_EQ(outcome.shard_verdicts.size(), 2u);
  for (const auto& verdict : outcome.shard_verdicts) {
    EXPECT_EQ(verdict, "ok");
  }
  EXPECT_GT(outcome.history_ops, 0u);
}

TEST(ExplorerTest, MultiShardViolationNamesTheGuiltyShard) {
  // The weakened-cartel violation, run under two shards: the per-shard
  // checker must flag exactly the attack object's home group, and the
  // failure string must say which.
  Scenario s = weakened_scenario();
  s.shards = 2;
  s.objects = 2;
  Explorer explorer(ExplorerOptions{});
  const RunOutcome outcome = explorer.run_scenario(s);
  EXPECT_TRUE(outcome.completed);
  ASSERT_TRUE(outcome.failed());
  EXPECT_EQ(Explorer::failure_class(outcome.failure), "safety");
  EXPECT_NE(outcome.failure.find("shard"), std::string::npos)
      << outcome.failure;
  ASSERT_EQ(outcome.shard_verdicts.size(), 2u);
  int bad = 0;
  for (const auto& verdict : outcome.shard_verdicts) {
    if (verdict != "ok") ++bad;
  }
  EXPECT_EQ(bad, 1);
}

// ------------------------------------------------------------------
// Coverage map + corpus (the guided loop's moving parts)

TEST(CoverageTest, Log2BucketsCoarsen) {
  EXPECT_EQ(log2_bucket(0), 0u);
  EXPECT_EQ(log2_bucket(1), 1u);
  EXPECT_EQ(log2_bucket(2), 2u);
  EXPECT_EQ(log2_bucket(3), 2u);
  EXPECT_EQ(log2_bucket(4), 3u);
  EXPECT_EQ(log2_bucket(7), 3u);
  EXPECT_EQ(log2_bucket(8), 4u);
}

TEST(CoverageTest, AbsorbCountsOnlyNovelSignals) {
  CoverageMap map;
  EXPECT_EQ(map.absorb({"a", "b"}), 2u);
  EXPECT_EQ(map.absorb({"b", "c"}), 1u);
  EXPECT_EQ(map.absorb({"a", "b", "c"}), 0u);
  EXPECT_EQ(map.size(), 3u);
  EXPECT_TRUE(map.would_add({"d"}));
  EXPECT_FALSE(map.would_add({"a", "c"}));
}

TEST(CorpusTest, MutateIsDeterministicAndKeepsIdInvariants) {
  const Scenario base = Scenario::sample(123);
  const Scenario donor = Scenario::sample(456);
  for (std::uint64_t child = 1; child <= 200; ++child) {
    const Scenario a = mutate_scenario(base, &donor, child);
    const Scenario b = mutate_scenario(base, &donor, child);
    EXPECT_EQ(a.to_json(), b.to_json()) << "child seed " << child;
    EXPECT_EQ(a.seed, child);
    // The runner's addressing invariants must survive every mutation.
    for (std::size_t i = 0; i < a.clients.size(); ++i) {
      EXPECT_EQ(a.clients[i].id, 1 + i);
    }
    for (std::size_t i = 0; i < a.attacks.size(); ++i) {
      EXPECT_EQ(a.attacks[i].id, 60 + i);
      EXPECT_LT(a.attacks[i].id, kColluderNodeBase);
    }
    // Mutants must stay loadable: the JSON codec enforces the same
    // range checks the sampler honors.
    EXPECT_TRUE(Scenario::from_json(a.to_json()).has_value())
        << a.to_json();
  }
}

TEST(CorpusTest, MutationsReachStructuralDimensions) {
  // Across a few hundred children of one base, the mutators must be able
  // to flip every structural knob: mode, auth, shards, f, crash
  // schedules, collusion. Otherwise guided search can never leave the
  // corpus's starting corner.
  const Scenario base = Scenario::sample(9);
  const Scenario donor = Scenario::sample(10);
  std::set<std::string> modes;
  std::set<std::uint32_t> fs, shards;
  bool saw_mac_flip = false, saw_crash = false, saw_collusion = false;
  for (std::uint64_t child = 1; child <= 400; ++child) {
    const Scenario m = mutate_scenario(base, &donor, child);
    modes.insert(std::string(mode_name(m.mode)));
    fs.insert(m.f);
    shards.insert(m.shards);
    saw_mac_flip |= m.mac_auth != base.mac_auth;
    saw_crash |= !m.crashes.empty();
    for (const AttackPlan& a : m.attacks) {
      saw_collusion |= a.collusion_group != 0;
    }
  }
  EXPECT_EQ(modes.size(), 3u);
  EXPECT_EQ(fs.size(), 2u);
  EXPECT_EQ(shards.size(), 2u);
  EXPECT_TRUE(saw_mac_flip);
  EXPECT_TRUE(saw_crash);
  EXPECT_TRUE(saw_collusion);
}

TEST(CorpusTest, PickIsNoveltyWeightedAndDeterministic) {
  Corpus corpus;
  corpus.add({Scenario::sample(1), /*novelty=*/0});
  corpus.add({Scenario::sample(2), /*novelty=*/50});
  Rng rng(7);
  int second = 0;
  for (int i = 0; i < 200; ++i) {
    if (corpus.pick(rng).novelty == 50) ++second;
  }
  // Weight 51 vs 1: the high-novelty entry dominates but the other stays
  // reachable.
  EXPECT_GT(second, 150);
  EXPECT_LT(second, 200);
}

TEST(ExplorerTest, RunOutcomeCarriesSortedSignals) {
  Explorer explorer(ExplorerOptions{});
  const RunOutcome outcome = explorer.run_scenario(Scenario::sample(3));
  ASSERT_FALSE(outcome.signals.empty());
  EXPECT_TRUE(std::is_sorted(outcome.signals.begin(), outcome.signals.end()));
  // Structural knobs are always present: the mode marker at minimum.
  bool has_mode = false;
  for (const std::string& s : outcome.signals) {
    if (s.rfind("mode:", 0) == 0) has_mode = true;
  }
  EXPECT_TRUE(has_mode);
}

TEST(ExplorerTest, GuidedReportIsByteIdenticalAcrossRepeats) {
  ExplorerOptions options;
  options.seed = 99;
  options.runs = 15;
  options.guided = true;
  const Report a = Explorer(options).explore();
  const Report b = Explorer(options).explore();
  EXPECT_EQ(a.to_json(), b.to_json());
  EXPECT_TRUE(a.guided);
  EXPECT_GT(a.coverage, 0u);
  EXPECT_GT(a.corpus_size, 0u);
  ASSERT_EQ(a.coverage_curve.size(), 15u);
  EXPECT_TRUE(std::is_sorted(a.coverage_curve.begin(),
                             a.coverage_curve.end()));
  EXPECT_EQ(a.coverage_curve.back(), a.coverage);
}

TEST(ExplorerTest, GuidedRunsStayClean) {
  // Mutants explore corners the sampler's own budget-respecting draws
  // never emit, so this doubles as a mutation-operator soundness check:
  // whatever the mutators produce must still satisfy the mode's bound.
  ExplorerOptions options;
  options.seed = 31337;
  options.runs = 40;
  options.guided = true;
  const Report report = Explorer(options).explore();
  EXPECT_EQ(report.failures, 0u) << report.to_json();
  // The guided loop actually mutated (not just sampled).
  int mutated = 0;
  for (const RunRecord& r : report.records) {
    if (r.origin == "mutated") ++mutated;
  }
  EXPECT_GT(mutated, 0);
}

// ------------------------------------------------------------------
// Crash/restart scenarios through the explorer

TEST(ExplorerTest, CrashRestartScenarioRunsCleanAndSignalsCrash) {
  Scenario s;
  s.seed = 2026;
  s.f = 1;
  s.mode = Mode::kBase;
  s.objects = 2;
  ClientPlan c1;
  c1.id = 1;
  c1.ops = 6;
  c1.write_ratio = 0.7;
  ClientPlan c2;
  c2.id = 2;
  c2.ops = 6;
  s.clients = {c1, c2};
  CrashPlan crash;
  crash.replica = 2;
  crash.at = 10 * sim::kMillisecond;
  crash.restart_at = 40 * sim::kMillisecond;
  s.crashes = {crash};

  Explorer explorer(ExplorerOptions{});
  const RunOutcome outcome = explorer.run_scenario(s);
  EXPECT_TRUE(outcome.completed);
  EXPECT_FALSE(outcome.failed()) << outcome.failure;
  const auto has = [&](const std::string& sig) {
    return std::find(outcome.signals.begin(), outcome.signals.end(), sig) !=
           outcome.signals.end();
  };
  EXPECT_TRUE(has("crash"));
  // The restarted replica actually went through state transfer.
  EXPECT_TRUE(has("r:state_recovered_objects")) << [&] {
    std::string all;
    for (const auto& sig : outcome.signals) all += sig + " ";
    return all;
  }();
}

TEST(ExplorerTest, CrashNeverRestartingIsStillWithinLiveness) {
  // restart_at == 0: the replica stays down. With f=1 the other three
  // replicas still form every quorum; the run must stay clean.
  Scenario s;
  s.seed = 77;
  s.f = 1;
  s.mode = Mode::kOptimized;
  s.objects = 1;
  ClientPlan c1;
  c1.id = 1;
  c1.ops = 5;
  c1.write_ratio = 0.5;
  s.clients = {c1};
  CrashPlan crash;
  crash.replica = 0;
  crash.at = 5 * sim::kMillisecond;
  crash.restart_at = 0;
  s.crashes = {crash};
  Explorer explorer(ExplorerOptions{});
  const RunOutcome outcome = explorer.run_scenario(s);
  EXPECT_TRUE(outcome.completed);
  EXPECT_FALSE(outcome.failed()) << outcome.failure;
}

TEST(ExplorerTest, ShardedCrashRestartRecoversEveryGroup) {
  // Sharded runs crash the same slot in every group; the restarted
  // replicas rebuild only the objects their shard owns.
  Scenario s;
  s.seed = 5150;
  s.f = 1;
  s.mode = Mode::kBase;
  s.shards = 2;
  s.objects = 4;
  ClientPlan c1;
  c1.id = 1;
  c1.ops = 8;
  c1.write_ratio = 0.6;
  s.clients = {c1};
  CrashPlan crash;
  crash.replica = 1;
  crash.at = 15 * sim::kMillisecond;
  crash.restart_at = 50 * sim::kMillisecond;
  s.crashes = {crash};
  Explorer explorer(ExplorerOptions{});
  const RunOutcome outcome = explorer.run_scenario(s);
  EXPECT_TRUE(outcome.completed);
  EXPECT_FALSE(outcome.failed()) << outcome.failure;
  ASSERT_EQ(outcome.shard_verdicts.size(), 2u);
  for (const auto& verdict : outcome.shard_verdicts) {
    EXPECT_EQ(verdict, "ok");
  }
}

TEST(ExplorerTest, WeakenedCrashRecoveryViolationShrinksToReplayable) {
  // Acceptance: the weakened configuration with a crash/recovery
  // schedule enabled still produces a violation that shrinks to a
  // replayable scenario. The crash is noise here — the shrinker may
  // drop it — but its presence must not mask the violation or wedge
  // the shrink loop.
  Scenario s = weakened_scenario();
  CrashPlan crash;
  crash.replica = 3;  // the one honest replica goes down and comes back
  crash.at = 20 * sim::kMillisecond;
  crash.restart_at = 45 * sim::kMillisecond;
  s.crashes = {crash};

  Explorer explorer(ExplorerOptions{});
  const RunOutcome outcome = explorer.run_scenario(s);
  EXPECT_TRUE(outcome.completed);
  ASSERT_TRUE(outcome.failed());
  EXPECT_EQ(Explorer::failure_class(outcome.failure), "safety");

  std::uint32_t used = 0;
  const Scenario minimal = explorer.shrink(s, outcome.failure, &used);
  EXPECT_LE(used, 32u);
  const auto reloaded = Scenario::from_json(minimal.to_json());
  ASSERT_TRUE(reloaded.has_value());
  const RunOutcome replayed = explorer.run_scenario(*reloaded);
  ASSERT_TRUE(replayed.failed());
  EXPECT_EQ(Explorer::failure_class(replayed.failure), "safety");
}

TEST(ExplorerTest, ModeBoundsAreEnforcedPerMode) {
  // The same weakened cartel under optimized mode: bound is 2, so two
  // lurking writes are LEGAL there — the checker must not over-flag.
  Scenario s = weakened_scenario();
  s.mode = Mode::kOptimized;
  s.attacks[0].goal = 2;
  Explorer explorer(ExplorerOptions{});
  const RunOutcome outcome = explorer.run_scenario(s);
  EXPECT_LE(outcome.max_lurking, 2);
  if (outcome.max_lurking <= 2) {
    EXPECT_FALSE(outcome.failed()) << outcome.failure;
  }
}

}  // namespace
}  // namespace bftbc::explore
