// Tests for the SBQ-L baseline — including measurements of the two costs
// §8 attributes to its reliable-network assumption: unbounded
// retransmission buffers under a crashed replica, and readers slowed by
// concurrent writers.
#include <gtest/gtest.h>

#include "harness/baseline_cluster.h"

namespace bftbc {
namespace {

using harness::BaselineOptions;
using harness::SbqlCluster;

TEST(SbqlTest, WriteReadRoundtrip) {
  SbqlCluster cluster;
  auto& c = cluster.add_client(1);
  auto w = cluster.write(c, 1, to_bytes("hello"));
  ASSERT_TRUE(w.is_ok());
  EXPECT_EQ(w.value().phases, 2);
  cluster.run_for(sim::kSecond);  // let forwards settle

  auto r = cluster.read(cluster.add_client(2), 1);
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(to_string(r.value().value), "hello");
  EXPECT_EQ(r.value().rounds, 1);
}

TEST(SbqlTest, ForwardsReachAllReplicas) {
  SbqlCluster cluster;
  auto& c = cluster.add_client(1);
  ASSERT_TRUE(cluster.write(c, 1, to_bytes("v")).is_ok());
  cluster.run_for(sim::kSecond);
  for (quorum::ReplicaId r = 0; r < cluster.config().n; ++r) {
    const auto* st = cluster.replica(r).stored(1);
    ASSERT_NE(st, nullptr);
    EXPECT_EQ(to_string(st->value), "v") << "replica " << r;
  }
  // All forwards acked: buffers empty.
  EXPECT_EQ(cluster.total_outbox_bytes(), 0u);
}

TEST(SbqlTest, SequentialWritesLinearize) {
  SbqlCluster cluster;
  auto& c = cluster.add_client(1);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(cluster.write(c, 1, to_bytes("v" + std::to_string(i))).is_ok());
    cluster.run_for(200 * sim::kMillisecond);
    auto r = cluster.read(c, 1);
    ASSERT_TRUE(r.is_ok());
    EXPECT_EQ(to_string(r.value().value), "v" + std::to_string(i));
  }
}

TEST(SbqlTest, CrashedReplicaGrowsBuffersWithoutBound) {
  // §8: "the failure of a single replica (which might just have crashed)
  // causes all messages from that point on to be remembered and
  // retransmitted."
  SbqlCluster cluster;
  cluster.net().crash(3);
  auto& c = cluster.add_client(1);

  std::vector<std::size_t> samples;
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(cluster.write(c, 1, to_bytes("w" + std::to_string(i))).is_ok());
    cluster.run_for(100 * sim::kMillisecond);
    samples.push_back(cluster.total_outbox_bytes());
  }
  // Strictly growing: every write adds buffered forwards for the dead
  // peer that can never be acked.
  EXPECT_GT(samples.front(), 0u);
  EXPECT_GT(samples.back(), samples.front());
  for (std::size_t i = 1; i < samples.size(); ++i) {
    EXPECT_GE(samples[i], samples[i - 1]);
  }

  // Contrast is measured in the bench: BFT-BC has NO server-to-server
  // traffic, so a crashed replica costs correct replicas nothing.
}

TEST(SbqlTest, BuffersDrainAfterRecovery) {
  SbqlCluster cluster;
  cluster.net().crash(3);
  auto& c = cluster.add_client(1);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(cluster.write(c, 1, to_bytes("w" + std::to_string(i))).is_ok());
  }
  cluster.run_for(100 * sim::kMillisecond);
  EXPECT_GT(cluster.total_outbox_bytes(), 0u);

  cluster.net().recover(3);
  cluster.run_for(2 * sim::kSecond);  // retransmissions land and get acked
  EXPECT_EQ(cluster.total_outbox_bytes(), 0u);
  // The recovered replica caught up through the reliable channel.
  const auto* st = cluster.replica(3).stored(1);
  ASSERT_NE(st, nullptr);
  EXPECT_EQ(to_string(st->value), "w4");
}

TEST(SbqlTest, ConcurrentWriterSlowsReader) {
  // §8: "In this protocol concurrent writers can slow down readers."
  // With a writer continuously installing new values, the reader's
  // demand for 2f+1 IDENTICAL replies keeps failing during propagation
  // windows; measure reads needing > 1 round across seeds. (BFT-BC reads
  // are 1-2 phases regardless — E3.)
  int multi_round_reads = 0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    BaselineOptions o;
    o.seed = seed;
    o.link.jitter_mean = 3 * sim::kMillisecond;  // slow, spread forwards
    SbqlCluster cluster(o);
    auto& writer = cluster.add_client(1);
    auto& reader = cluster.add_client(2);
    ASSERT_TRUE(cluster.write(writer, 1, to_bytes("base")).is_ok());
    cluster.run_for(sim::kSecond);

    // Continuous write chain.
    std::function<void(int)> churn = [&](int i) {
      if (i >= 30) return;
      writer.write(1, to_bytes("c" + std::to_string(i)),
                   [&churn, i](Result<baselines::SbqlClient::WriteResult>) {
                     churn(i + 1);
                   });
    };
    churn(0);

    auto r = cluster.read(reader, 1);
    ASSERT_TRUE(r.is_ok()) << "seed " << seed;
    if (r.value().rounds > 1) ++multi_round_reads;
    cluster.run_for(sim::kSecond);
  }
  EXPECT_GT(multi_round_reads, 0)
      << "expected concurrent writes to force some multi-round reads";
}

}  // namespace
}  // namespace bftbc
