#!/usr/bin/env python3
"""Protocol-invariant lints for the BFT-BC tree.

clang-tidy enforces generic C++ hygiene; this script enforces the
repo-specific invariants the protocol's safety argument leans on but no
generic tool can express:

  raw-verify
      All signature verification in protocol code must route through
      Keystore::verify_cached (certificates are transferable proofs whose
      2f+1 signatures are re-checked at every hop — the memo is the whole
      §3.3.2 cost story). Raw Keystore::verify / rsa_verify / hmac_verify
      calls are allowed only inside src/crypto/ itself. The same applies
      to the batch path: multi-item verification goes through
      Keystore::verify_batch; touching VerifyCache (or the keystore's
      verify_cache() accessor) directly skips the verify lock and the
      sig_cache_hit/miss counters the perf trajectory tracks. The worker
      pool is keystore-internal too: protocol code must not construct a
      VerifyPool or call parallel_for itself — the pool is handed to the
      keystore (set_verify_pool) at process setup and verify_batch is the
      only crypto that may fan out through it.
      Scope: src/ except src/crypto/.

  nondeterminism
      Simulation and protocol code must stay deterministic for a fixed
      seed: no std::random_device, rand()/srand(), time(), or
      std::chrono::system_clock. Randomness comes from util/rng.h (seeded)
      and time from the simulator's virtual clock.
      Scope: src/bftbc/, src/quorum/, src/sim/.

  unchecked-result-value
      Result<T>::value() asserts is_ok() only in debug builds; in release
      it reads the wrong variant. Protocol code must check before
      unwrapping: a `.value()` call whose receiver has no visible ok-check
      (is_ok / has_value / value_or / explicit bool test / gtest ASSERT)
      within the preceding window is flagged.
      Scope: src/.

  replica-state-mutation
      All replica per-object state mutations go through the ObjectState
      accessors in replica_state.h (try_prepare / try_opt_prepare /
      apply_write / absorb_write_certificate) — Lemma 1 is an induction
      over exactly those transitions. Reaching for the underlying members
      (plist_, optlist_, write_ts_, data_, pcert_) or const_casting an
      ObjectState outside replica_state.{h,cpp} breaks the audit trail.
      Scope: src/bftbc/ except replica_state.{h,cpp}.

Suppressions: a line containing `bftbc-lint: allow(<rule>) -- <why>`
(in a comment) is exempt from <rule>. The justification is mandatory: a
bare allow() suppresses nothing and is itself reported (rule
`suppression`). Shared with scripts/analyze/ — one syntax for both
tools.

Usage:
  lint_protocol.py [--root DIR]          # lint DIR/src (default: repo root)
  lint_protocol.py [--root DIR] FILE...  # lint specific files (paths are
                                         # interpreted relative to --root
                                         # for rule scoping)

Exit status: 0 if clean, 1 if any finding, 2 on usage error.
"""

from __future__ import annotations

import argparse
import os
import re
import sys
from dataclasses import dataclass

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from analyze import suppressions  # noqa: E402

CXX_EXTENSIONS = (".h", ".hpp", ".cc", ".cpp", ".cxx")

# Strip // comments and string literals before matching so commented-out
# code and log text cannot trip a rule. (Block comments are handled
# line-locally: good enough for this codebase's style.)
LINE_NOISE_RE = re.compile(r'//.*$|"(?:[^"\\]|\\.)*"')


@dataclass
class Finding:
    path: str
    line: int
    rule: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def _scrub(line: str) -> str:
    return LINE_NOISE_RE.sub("", line)


# ----------------------------------------------------------- raw-verify

RAW_VERIFY_RE = re.compile(
    r"""(?:
          (?:\bkeystore\s*\(\s*\)|\w*[Kk]eystore\w*|\bks_?\b)\s*(?:\.|->)\s*verify\s*\(
        | \brsa_verify\s*\(
        | \bhmac_verify\s*\(
        | \bVerifyCache\b
        | (?:\.|->)\s*verify_cache\s*\(\s*\)
        | \bVerifyPool\b
        | (?:\.|->)\s*parallel_for\s*\(
        )""",
    re.VERBOSE,
)


def check_raw_verify(rel, lines, findings):
    if not rel.startswith("src/") or rel.startswith("src/crypto/"):
        return
    for i, line in enumerate(lines, 1):
        if RAW_VERIFY_RE.search(_scrub(line)):
            findings.append(
                Finding(
                    rel,
                    i,
                    "raw-verify",
                    "raw signature verification bypasses "
                    "Keystore::verify_cached (memoized path); only "
                    "src/crypto/ may call the primitives directly",
                )
            )


# ------------------------------------------------------- nondeterminism

NONDET_SCOPES = ("src/bftbc/", "src/quorum/", "src/sim/")
NONDET_PATTERNS = (
    (re.compile(r"\bstd\s*::\s*random_device\b"), "std::random_device"),
    (re.compile(r"(?<![\w.:>])s?rand\s*\("), "rand()/srand()"),
    (re.compile(r"(?:\bstd\s*::\s*|(?<![\w.:>]))time\s*\("), "time()"),
    (re.compile(r"\bsystem_clock\b"), "std::chrono::system_clock"),
)


def check_nondeterminism(rel, lines, findings):
    if not rel.startswith(NONDET_SCOPES):
        return
    for i, line in enumerate(lines, 1):
        scrubbed = _scrub(line)
        for pattern, what in NONDET_PATTERNS:
            if pattern.search(scrubbed):
                findings.append(
                    Finding(
                        rel,
                        i,
                        "nondeterminism",
                        f"{what} in deterministic simulation/protocol code; "
                        "use util/rng.h (seeded) or the simulator's virtual "
                        "clock",
                    )
                )


# ----------------------------------------------- unchecked-result-value

VALUE_CALL_RE = re.compile(r"\b([A-Za-z_]\w*)\s*\.\s*value\s*\(\s*\)")
CHECK_WINDOW = 10  # lines of context (incl. the call line) searched back


def _receiver_checked(var: str, window: list[str]) -> bool:
    text = "\n".join(window)
    checks = (
        rf"\b{re.escape(var)}\s*\.\s*is_ok\s*\(\)",
        rf"\b{re.escape(var)}\s*\.\s*has_value\s*\(\)",
        rf"\b{re.escape(var)}\s*\.\s*value_or\s*\(",
        rf"if\s*\(\s*!?\s*{re.escape(var)}\s*[\)&|]",   # if (r) / if (!r) ...
        rf"\b{re.escape(var)}\s*\?",                    # r ? r.value() : ...
        rf"(?:ASSERT|EXPECT)_(?:TRUE|FALSE)\s*\(\s*!?\s*{re.escape(var)}\b",
        rf"while\s*\(\s*!?\s*{re.escape(var)}\s*[\)&|]",
    )
    return any(re.search(c, text) for c in checks)


def check_unchecked_result_value(rel, lines, findings):
    if not rel.startswith("src/"):
        return
    for i, line in enumerate(lines, 1):
        scrubbed = _scrub(line)
        for m in VALUE_CALL_RE.finditer(scrubbed):
            var = m.group(1)
            window = [
                _scrub(l) for l in lines[max(0, i - CHECK_WINDOW) : i]
            ]
            if not _receiver_checked(var, window):
                findings.append(
                    Finding(
                        rel,
                        i,
                        "unchecked-result-value",
                        f"'{var}.value()' without a visible ok-check within "
                        f"{CHECK_WINDOW} lines; check is_ok() (or use "
                        "value_or / take after a check) before unwrapping",
                    )
                )


# ---------------------------------------------- replica-state-mutation

STATE_MEMBER_RE = re.compile(
    r"(?:\.|->)\s*(?:plist_|optlist_|write_ts_|data_|pcert_)\b"
)
STATE_CONST_CAST_RE = re.compile(r"const_cast\s*<[^>]*ObjectState")


def check_replica_state_mutation(rel, lines, findings):
    if not rel.startswith("src/bftbc/"):
        return
    if os.path.basename(rel) in ("replica_state.h", "replica_state.cpp"):
        return
    for i, line in enumerate(lines, 1):
        scrubbed = _scrub(line)
        if STATE_MEMBER_RE.search(scrubbed) or STATE_CONST_CAST_RE.search(
            scrubbed
        ):
            findings.append(
                Finding(
                    rel,
                    i,
                    "replica-state-mutation",
                    "replica per-object state must be mutated through the "
                    "ObjectState accessors in replica_state.h, not by "
                    "touching its members directly",
                )
            )


CHECKS = (
    check_raw_verify,
    check_nondeterminism,
    check_unchecked_result_value,
    check_replica_state_mutation,
)


def lint_file(root: str, rel: str) -> list[Finding]:
    path = os.path.join(root, rel)
    try:
        with open(path, encoding="utf-8", errors="replace") as f:
            lines = f.read().splitlines()
    except OSError as e:
        return [Finding(rel, 0, "io", f"unreadable: {e}")]

    findings: list[Finding] = []
    for check in CHECKS:
        check(rel.replace(os.sep, "/"), lines, findings)

    supps = suppressions.scan_lines(lines)
    kept = [
        f
        for f in findings
        if not suppressions.is_suppressed(supps, f.line, f.rule)
    ]
    for s in suppressions.unjustified(supps):
        kept.append(
            Finding(
                rel.replace(os.sep, "/"),
                s.line,
                "suppression",
                "suppression without justification — write "
                "`bftbc-lint: allow(rule) -- why it is safe here`",
            )
        )
    return kept


def discover(root: str) -> list[str]:
    rels = []
    for dirpath, dirnames, filenames in os.walk(os.path.join(root, "src")):
        dirnames.sort()
        for name in sorted(filenames):
            if name.endswith(CXX_EXTENSIONS):
                rels.append(
                    os.path.relpath(os.path.join(dirpath, name), root)
                )
    return rels


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        description="BFT-BC protocol-invariant lints"
    )
    parser.add_argument(
        "--root",
        default=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        help="repo root; rule scoping is relative to this (default: the "
        "checkout containing this script)",
    )
    parser.add_argument(
        "files",
        nargs="*",
        help="specific files to lint (default: every C++ file under "
        "<root>/src)",
    )
    args = parser.parse_args(argv[1:])

    root = os.path.abspath(args.root)
    if args.files:
        rels = []
        for f in args.files:
            p = os.path.abspath(f)
            if not p.startswith(root + os.sep):
                print(
                    f"error: {f} is outside --root {root}", file=sys.stderr
                )
                return 2
            rels.append(os.path.relpath(p, root))
    else:
        rels = discover(root)

    findings: list[Finding] = []
    for rel in rels:
        findings.extend(lint_file(root, rel))

    for f in findings:
        print(f)
    if findings:
        print(
            f"lint_protocol: {len(findings)} finding(s) in "
            f"{len(rels)} file(s)",
            file=sys.stderr,
        )
        return 1
    print(f"lint_protocol: OK ({len(rels)} files clean)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
