"""Committed-baseline diffing: CI fails only on NEW findings.

Keys are line-number free (`rule|file|function|detail`) so unrelated
edits that shift code don't invalidate the baseline. The workflow:

  * a finding appears that is real      -> fix the code
  * a finding appears that is accepted  -> `run_analyzer.py
    --update-baseline` and commit scripts/analyze/baseline.json with
    the justification in the commit message (or better, an inline
    `bftbc-lint: allow(...)` right at the site)
  * a baselined finding disappears      -> the stale entry is reported
    as info; re-run --update-baseline to shrink the file
"""

from __future__ import annotations

import json
import os


def load(path: str) -> set:
    if not os.path.exists(path):
        return set()
    with open(path, encoding="utf-8") as f:
        data = json.load(f)
    return {e["key"] for e in data.get("entries", [])}


def save(path: str, findings) -> None:
    entries = sorted({f.key() for f in findings})
    data = {
        "version": 1,
        "comment": (
            "Accepted analyzer findings. CI fails only on findings NOT "
            "in this file. Regenerate with "
            "scripts/analyze/run_analyzer.py --update-baseline."
        ),
        "entries": [{"key": k} for k in entries],
    }
    with open(path, "w", encoding="utf-8") as f:
        json.dump(data, f, indent=2)
        f.write("\n")


def diff(findings, baseline_keys):
    """Returns (new_findings, baselined_findings, stale_keys)."""
    new, old = [], []
    live = set()
    for f in findings:
        k = f.key()
        if k in baseline_keys:
            old.append(f)
            live.add(k)
        else:
            new.append(f)
    stale = sorted(baseline_keys - live)
    return new, old, stale
