"""Frontend-independent IR and dataflow core.

The frontend (libclang) lowers each function definition into a small
structured tree (Seq/If/Loop/Switch/Exit) whose leaves carry only what
the checks need: access paths (a variable root plus a short member
chain) and call references. The taint solver then runs a structured
abstract interpretation over that tree:

  lattice per path:  RAW < WELLFORMED < VERIFIED   (absent = untainted)

  RAW         came off the wire (Reader / *::decode / recvfrom) and has
              not been checked at all
  WELLFORMED  its decode verdict was consulted (has_value / ok / done) —
              the bytes parse, but nobody vouches for who sent them
  VERIFIED    dominated by a cryptographic verification entry point
              (Keystore::verify*, Certificate::validate,
              validate_signature_quorum) on this path

Guard recognition is branch-sensitive: `if (!verify(x)) return;` marks x
VERIFIED on the fallthrough, `if (verify(x)) { use(x); }` marks it only
inside the then-branch, and joins demote back to the weakest level.
Interprocedural reasoning is by per-function summaries (returns-taint,
is-verifier, param-reaches-sink) iterated to a fixpoint over the call
graph, so wrapper helpers like `verify_client_sig` or a
`do_apply(state, req)` forwarder behave like the primitives they wrap.

Origins: every taint introduction gets a fresh origin id, and derived
values union the origins of what they were computed from. A
wellformedness check on one value upgrades every path sharing an origin
with it — checking `env.has_value()` vouches for the datagram the
envelope, its sender header, and its source address all came from.
Cryptographic VERIFIED marks are per-path only (a signature covers what
it signs, nothing else), except that passing `x->signing_payload()` to a
verifier blesses the whole of x, because that payload is by construction
the full signed message.
"""

from __future__ import annotations

from dataclasses import dataclass, field

# ------------------------------------------------------------------ IR

Path = tuple  # tuple[str, ...]: ('req', 'write_cert') — root + members

MAX_PATH_DEPTH = 3


@dataclass(frozen=True)
class Loc:
    file: str
    line: int
    col: int = 0

    def __str__(self) -> str:
        return f"{self.file}:{self.line}"


@dataclass
class Arg:
    paths: list = field(default_factory=list)   # plain lvalue paths
    calls: list = field(default_factory=list)   # nested CallRefs


@dataclass
class CallRef:
    name: str                 # unqualified spelling, e.g. 'verify_cached'
    qual: str = ""            # best-effort qualified name ('' if unknown)
    base: Path | None = None  # receiver path for member calls
    args: list = field(default_factory=list)    # list[Arg]
    loc: Loc = Loc("", 0)


@dataclass
class CondAtom:
    negated: bool = False
    paths: list = field(default_factory=list)
    calls: list = field(default_factory=list)


@dataclass
class Cond:
    join: str = "single"      # 'single' | 'and' | 'or' | 'opaque'
    atoms: list = field(default_factory=list)


@dataclass
class SDecl:
    var: str
    type: str
    paths: list
    calls: list
    loc: Loc


@dataclass
class SAssign:
    target: Path
    paths: list
    calls: list
    loc: Loc
    compound: bool = False    # += / -= ... (reads the target too)


@dataclass
class SExpr:
    paths: list
    calls: list
    loc: Loc


@dataclass
class SIf:
    cond: Cond
    then: list
    els: list
    loc: Loc


@dataclass
class SLoop:
    cond: Cond | None
    body: list
    loc: Loc


@dataclass
class SRangeFor:
    var: str
    range_paths: list
    range_type: str
    body: list
    loc: Loc


@dataclass
class SSwitch:
    subject_paths: list
    enum: str | None          # qualified enum name, None if not an enum
    enumerators: frozenset
    covered: frozenset
    has_default: bool
    default_justified: bool
    segments: list            # list[list[Stmt]] — one per case label run
    loc: Loc


@dataclass
class SExit:
    kind: str                 # 'return' | 'continue' | 'break'
    paths: list
    calls: list
    loc: Loc


@dataclass
class SBlock:
    body: list
    loc: Loc


@dataclass
class Function:
    qual: str                 # qualified name
    name: str                 # unqualified spelling
    cls: str | None           # enclosing class qualname, if a method
    params: list              # list[(name, type_spelling)]
    return_type: str
    body: list
    loc: Loc
    kind: str = "function"    # 'function' | 'ctor' | 'dtor' | 'lambda'
    attrs: set = field(default_factory=set)   # 'no_tsa', 'lock_param'
    fields: dict = field(default_factory=dict)  # class field -> type


@dataclass
class Program:
    functions: dict = field(default_factory=dict)  # (qual, str(loc)) -> Function
    classes: dict = field(default_factory=dict)    # class qual -> {field: type}

    def add(self, fn: Function) -> None:
        self.functions[(fn.qual, str(fn.loc))] = fn

    def all_functions(self):
        return self.functions.values()


@dataclass
class Finding:
    check: str
    rule: str
    file: str
    line: int
    message: str
    func: str = ""
    detail: str = ""          # line-number-free part of the baseline key

    def key(self) -> str:
        return f"{self.rule}|{self.file}|{self.func}|{self.detail}"

    def __str__(self) -> str:
        return f"{self.file}:{self.line}: [{self.rule}] {self.message}"


# ------------------------------------------------------- taint lattice

RAW, WELLFORMED, VERIFIED = 0, 1, 2
_UNTAINTED = 3  # join identity; never stored


@dataclass
class PathState:
    level: int
    origins: frozenset
    optional: bool = False    # decode verdict must be consulted first


def _walk_calls(calls):
    """Yields every CallRef reachable through nested argument calls."""
    stack = list(calls)
    while stack:
        c = stack.pop()
        yield c
        for a in c.args:
            stack.extend(a.calls)


def walk_stmts(stmts):
    """Yields every statement in the tree, depth-first."""
    stack = list(stmts)
    while stack:
        st = stack.pop()
        yield st
        for sub in _substmts(st):
            stack.extend(sub)


def _substmts(st):
    if isinstance(st, SIf):
        return (st.then, st.els)
    if isinstance(st, (SLoop, SRangeFor, SBlock)):
        return (st.body,)
    if isinstance(st, SSwitch):
        return tuple(st.segments)
    return ()


def stmt_calls(st):
    if isinstance(st, (SDecl, SAssign, SExpr, SExit)):
        return st.calls
    if isinstance(st, SIf):
        return [c for a in st.cond.atoms for c in a.calls]
    if isinstance(st, SLoop) and st.cond is not None:
        return [c for a in st.cond.atoms for c in a.calls]
    return []


def stmt_paths(st):
    if isinstance(st, (SDecl, SExpr, SExit)):
        return st.paths
    if isinstance(st, SAssign):
        return st.paths + [st.target]
    if isinstance(st, SIf):
        return [p for a in st.cond.atoms for p in a.paths]
    if isinstance(st, SLoop) and st.cond is not None:
        return [p for a in st.cond.atoms for p in a.paths]
    if isinstance(st, SRangeFor):
        return st.range_paths
    if isinstance(st, SSwitch):
        return st.subject_paths
    return []


class State:
    """Per-path taint map with longest-prefix lookup."""

    def __init__(self, paths=None):
        self.paths: dict = dict(paths or {})

    def clone(self) -> "State":
        return State(self.paths)

    def lookup(self, path: Path) -> PathState | None:
        for n in range(len(path), 0, -1):
            ps = self.paths.get(path[:n])
            if ps is not None:
                return ps
        return None

    def taint(self, path: Path, level: int, origins, optional=False):
        self.paths[path] = PathState(level, frozenset(origins), optional)

    def upgrade(self, path: Path, level: int):
        """Raises `path` and everything under it to at least `level`."""
        ps = self.lookup(path)
        if ps is not None and ps.level < level:
            self.paths[path] = PathState(level, ps.origins, ps.optional)
        for p, s in list(self.paths.items()):
            if len(p) > len(path) and p[: len(path)] == path and s.level < level:
                self.paths[p] = PathState(level, s.origins, s.optional)

    def upgrade_sharing(self, origins, level: int):
        """Raises every path sharing an origin with `origins`."""
        for p, s in list(self.paths.items()):
            if s.level < level and s.origins & origins:
                self.paths[p] = PathState(level, s.origins, s.optional)

    @staticmethod
    def join(a: "State", b: "State") -> "State":
        out = State()
        for p in set(a.paths) | set(b.paths):
            # A path absent on one side may still be covered by a prefix
            # there (child upgraded in one branch only) — consult the
            # longest-prefix state, not "untainted".
            sa = a.paths.get(p) or a.lookup(p)
            sb = b.paths.get(p) or b.lookup(p)
            la = sa.level if sa else _UNTAINTED
            lb = sb.level if sb else _UNTAINTED
            lvl = min(la, lb)
            origins = (sa.origins if sa else frozenset()) | (
                sb.origins if sb else frozenset()
            )
            optional = (sa.optional if sa else False) or (
                sb.optional if sb else False
            )
            out.paths[p] = PathState(lvl, origins, optional)
        return out


# ------------------------------------------------------------ summaries


@dataclass
class Summary:
    returns_taint: bool = False
    returns_optional: bool = False
    is_verifier: bool = False
    sink_params: dict = field(default_factory=dict)  # index -> level req


class TaintAnalysis:
    """Interprocedural verify-before-use analysis.

    `config` is an analyze.config.Config (or anything quacking like it:
    is_source / source_out_args / is_verifier_root / sink_level /
    sink_field_level / wellformed_checks / payload_methods /
    tainted_param / bad bool-ish return detection via `boolish_return`).
    """

    def __init__(self, program: Program, config):
        self.program = program
        self.config = config
        self.summaries: dict[str, Summary] = {}
        self._origin_seq = 0

    # -- name-keyed summary lookup (overloads share the weakest merge) --

    def summary_for_call(self, call: CallRef) -> Summary | None:
        for key in (call.qual, call.name):
            if key and key in self.summaries:
                return self.summaries[key]
        return None

    def is_source(self, call: CallRef) -> bool:
        if self.config.is_source(call.qual or call.name):
            return True
        s = self.summary_for_call(call)
        return bool(s and s.returns_taint)

    def is_verifier(self, call: CallRef) -> bool:
        if self.config.is_verifier_root(call.qual or call.name):
            return True
        s = self.summary_for_call(call)
        return bool(s and s.is_verifier)

    def sink_spec(self, call: CallRef):
        """Returns (required_level, arg_indices|None) or None.

        None for arg_indices means 'every argument'.
        """
        lvl = self.config.sink_level(call.qual or call.name)
        if lvl is not None:
            return lvl, None
        s = self.summary_for_call(call)
        if s and s.sink_params:
            return max(s.sink_params.values()), sorted(s.sink_params)
        return None

    # ------------------------------------------------------- fixpoint

    def compute_summaries(self, rounds: int = 3) -> None:
        for _ in range(rounds):
            changed = False
            for fn in self.program.all_functions():
                new = self._summarize(fn)
                for key in (fn.qual, fn.name):
                    old = self.summaries.get(key)
                    merged = _merge_summary(old, new)
                    if merged != old:
                        self.summaries[key] = merged
                        changed = True
            if not changed:
                break

    def _summarize(self, fn: Function) -> Summary:
        s = Summary()
        # Entry state: every parameter tainted with a param-indexed
        # origin so sink hits can be attributed to a parameter.
        state = State()
        for i, (pname, _ptype) in enumerate(fn.params):
            state.taint((pname,), RAW, {f"param:{fn.qual}:{i}"})
        hits: list = []
        self._exec(fn, fn.body, state, hits, summary_mode=True)
        for h in hits:  # (origins, required_level)
            for origin in h[0]:
                pref = f"param:{fn.qual}:"
                if origin.startswith(pref):
                    idx = int(origin[len(pref):])
                    s.sink_params[idx] = max(s.sink_params.get(idx, 0), h[1])
        ret_taint, ret_verifier = self._return_facts(fn, state)
        s.returns_taint = ret_taint
        s.returns_optional = ret_taint and "optional" in fn.return_type
        s.is_verifier = ret_verifier and self.config.boolish_return(
            fn.return_type
        )
        return s

    def _return_facts(self, fn: Function, final_state: State):
        returns_taint = False
        returns_verifier = False
        for st in walk_stmts(fn.body):
            if not isinstance(st, SExit) or st.kind != "return":
                continue
            for c in _walk_calls(st.calls):
                if self.is_source(c):
                    returns_taint = True
                if self.is_verifier(c):
                    returns_verifier = True
            for p in st.paths:
                ps = final_state.lookup(p)
                if ps is not None and ps.level == RAW:
                    # Returning a parameter unmodified is not taint.
                    if not all(
                        o.startswith("param:") for o in ps.origins
                    ):
                        returns_taint = True
        return returns_taint, returns_verifier

    # ------------------------------------------------------ checking

    def check_function(self, fn: Function) -> list[Finding]:
        state = State()
        for _i, (pname, ptype) in enumerate(fn.params):
            if self.config.tainted_param(ptype):
                self._origin_seq += 1
                state.taint((pname,), RAW, {f"entry:{self._origin_seq}"})
        findings: list = []
        self._exec(fn, fn.body, state, findings, summary_mode=False)
        # Dedupe (same sink reported via several paths).
        seen, out = set(), []
        for f in findings:
            k = (f.rule, f.file, f.line, f.detail)
            if k not in seen:
                seen.add(k)
                out.append(f)
        return out

    # ------------------------------------------- abstract interpreter

    def _exec(self, fn, stmts, state, findings, summary_mode):
        """Executes `stmts` mutating `state`. Returns exit kind or None."""
        for st in stmts:
            if isinstance(st, SBlock):
                ek = self._exec(fn, st.body, state, findings, summary_mode)
                if ek:
                    return ek
            elif isinstance(st, SDecl):
                self._do_calls(fn, st.calls, state, findings, summary_mode)
                ps = self._eval(st.calls, st.paths, state, st)
                if ps is not None:
                    optional = ps.optional or (
                        "optional" in st.type and ps.level == RAW
                    )
                    state.taint(
                        (st.var,), ps.level, ps.origins, optional
                    )
                self._check_uses(fn, st, state, findings, summary_mode)
            elif isinstance(st, SAssign):
                self._do_calls(fn, st.calls, state, findings, summary_mode)
                self._check_uses(fn, st, state, findings, summary_mode)
                self._sink_field(fn, st, state, findings, summary_mode)
                ps = self._eval(st.calls, st.paths, state, st)
                if ps is not None:
                    state.taint(st.target, ps.level, ps.origins, ps.optional)
                elif not st.compound:
                    state.paths.pop(st.target, None)
            elif isinstance(st, SExpr):
                self._do_calls(fn, st.calls, state, findings, summary_mode)
                self._check_uses(fn, st, state, findings, summary_mode)
            elif isinstance(st, SExit):
                self._do_calls(fn, st.calls, state, findings, summary_mode)
                self._check_uses(fn, st, state, findings, summary_mode)
                return st.kind
            elif isinstance(st, SIf):
                ek = self._exec_if(fn, st, state, findings, summary_mode)
                if ek:
                    return ek
            elif isinstance(st, SLoop):
                body_state = state.clone()
                if st.cond is not None:
                    self._apply_cond(body_state, st.cond, in_then=True)
                    for a in st.cond.atoms:
                        self._do_calls(
                            fn, a.calls, state, findings, summary_mode
                        )
                ek = self._exec(fn, st.body, body_state, findings,
                                summary_mode)
                joined = State.join(state, body_state)
                state.paths.clear()
                state.paths.update(joined.paths)
                if ek == "return":
                    pass  # the zero-iteration path still falls through
            elif isinstance(st, SRangeFor):
                body_state = state.clone()
                ek = self._exec(fn, st.body, body_state, findings,
                                summary_mode)
                joined = State.join(state, body_state)
                state.paths.clear()
                state.paths.update(joined.paths)
            elif isinstance(st, SSwitch):
                outs = []
                for seg in st.segments:
                    seg_state = state.clone()
                    ek = self._exec(fn, seg, seg_state, findings,
                                    summary_mode)
                    if ek != "return":
                        outs.append(seg_state)
                joined = state
                for o in outs:
                    joined = State.join(joined, o)
                state.paths.clear()
                state.paths.update(joined.paths)
        return None

    def _exec_if(self, fn, st, state, findings, summary_mode):
        for a in st.cond.atoms:
            self._do_calls(fn, a.calls, state, findings, summary_mode)
            self._check_atom_uses(fn, st, a, state, findings, summary_mode)

        then_state = state.clone()
        if st.cond.join in ("single", "and"):
            self._apply_cond(then_state, st.cond, in_then=True)
        then_exit = self._exec(fn, st.then, then_state, findings,
                               summary_mode)

        els_state = state.clone()
        # `if (!verify(x)) return;` — the fallthrough (or the else of an
        # or-join) only runs when the negated guards passed.
        if st.cond.join in ("single", "or") or then_exit:
            self._apply_cond(els_state, st.cond, in_then=False)
        els_exit = self._exec(fn, st.els, els_state, findings, summary_mode)

        if then_exit and els_exit:
            return then_exit if then_exit == els_exit else "return"
        if then_exit:
            out = els_state
        elif els_exit:
            out = then_state
        else:
            out = State.join(then_state, els_state)
        state.paths.clear()
        state.paths.update(out.paths)
        return None

    def _apply_cond(self, state, cond, in_then):
        """Marks guard effects for one branch of a condition.

        in_then: mark non-negated atoms (`if (verify(x)) { ... }`).
        not in_then: mark negated atoms (`if (!verify(x)) return;`
        fallthrough, or the else branch of an or-join).
        """
        if cond.join == "opaque":
            return
        for atom in cond.atoms:
            if atom.negated == in_then:
                continue
            # Cryptographic verifiers: per-path (plus payload roots).
            for c in _walk_calls(atom.calls):
                if self.is_verifier(c):
                    for p in self._cover_paths(c):
                        state.upgrade(p, VERIFIED)
                elif (
                    c.name in self.config.wellformed_checks
                    and c.base is not None
                ):
                    self._mark_wellformed(state, c.base)
            # Bare truthiness test of an optional-ish value: `if (!req)`.
            if not atom.calls and len(atom.paths) == 1:
                self._mark_wellformed(state, atom.paths[0])

    def _mark_wellformed(self, state, path):
        ps = state.lookup(path)
        if ps is None:
            return
        state.upgrade(path, WELLFORMED)
        if ps.origins:
            state.upgrade_sharing(ps.origins, WELLFORMED)

    def _cover_paths(self, call: CallRef):
        """What a successful verifier call vouches for."""
        cover = []
        if call.base is not None:
            cover.append(call.base)  # cert.validate(...) covers cert
        for a in call.args:
            cover.extend(a.paths)
            for nc in a.calls:
                if (
                    nc.name in self.config.payload_methods
                    and nc.base is not None
                ):
                    # x->signing_payload() is the whole signed message.
                    cover.append(nc.base)
                elif nc.base is not None:
                    cover.append(nc.base)
        return cover

    # ------------------------------------------------- per-stmt hooks

    def _eval(self, calls, paths, state, st) -> PathState | None:
        """Taint of the value produced by an initializer/RHS."""
        level, origins, optional = _UNTAINTED, set(), False
        for p in paths:
            ps = state.lookup(p)
            if ps is not None:
                level = min(level, ps.level)
                origins |= ps.origins
        for c in _walk_calls(calls):
            if self.is_source(c):
                self._origin_seq += 1
                origins.add(f"src:{self._origin_seq}")
                level = min(level, RAW)
                s = self.summary_for_call(c)
                if s and s.returns_optional:
                    optional = True
                if self.config.is_source(c.qual or c.name):
                    optional = optional or self.config.source_is_optional(
                        c.qual or c.name
                    )
                # A source reading from a tainted buffer shares origins.
                for a in c.args:
                    for p in a.paths:
                        ps = state.lookup(p)
                        if ps is not None:
                            origins |= ps.origins
                if c.base is not None:
                    ps = state.lookup(c.base)
                    if ps is not None:
                        origins |= ps.origins
        if level == _UNTAINTED:
            return None
        return PathState(level, frozenset(origins), optional)

    def _do_calls(self, fn, calls, state, findings, summary_mode):
        """Sink checks + out-arg source effects for every call."""
        for c in _walk_calls(calls):
            out_args = self.config.source_out_args(c.qual or c.name)
            if out_args:
                self._origin_seq += 1
                origin = {f"src:{self._origin_seq}"}
                for idx in out_args:
                    if idx < len(c.args):
                        for p in c.args[idx].paths:
                            state.taint(p, RAW, origin)
            spec = self.sink_spec(c)
            if spec is None:
                continue
            required, indices = spec
            for i, a in enumerate(c.args):
                if indices is not None and i not in indices:
                    continue
                for p in list(a.paths) + [
                    nc.base for nc in a.calls if nc.base is not None
                ]:
                    ps = state.lookup(p)
                    if ps is None or ps.level >= required:
                        continue
                    if summary_mode:
                        findings.append((ps.origins, required))
                    else:
                        want = (
                            "a verification entry point"
                            if required == VERIFIED
                            else "a decode wellformedness check"
                        )
                        findings.append(
                            Finding(
                                check="verify-before-use",
                                rule="unverified-sink",
                                file=c.loc.file,
                                line=c.loc.line,
                                func=fn.qual,
                                detail=f"{c.name}({'.'.join(p)})",
                                message=(
                                    f"'{'.'.join(p)}' reaches sink "
                                    f"'{c.name}' without being dominated "
                                    f"by {want} on this path"
                                ),
                            )
                        )

    def _sink_field(self, fn, st: SAssign, state, findings, summary_mode):
        lvl = self.config.sink_field_level(st.target)
        if lvl is None:
            return
        ps = self._eval(st.calls, st.paths, state, st)
        if ps is None or ps.level >= lvl:
            return
        if summary_mode:
            findings.append((ps.origins, lvl))
            return
        tgt = ".".join(st.target)
        findings.append(
            Finding(
                check="verify-before-use",
                rule="unverified-sink",
                file=st.loc.file,
                line=st.loc.line,
                func=fn.qual,
                detail=f"field {tgt}",
                message=(
                    f"write to protocol-state field '{tgt}' from "
                    "unvalidated wire data (no dominating decode "
                    "wellformedness / verification check)"
                ),
            )
        )

    def _check_uses(self, fn, st, state, findings, summary_mode):
        """Member access on an optional decode result still RAW."""
        if summary_mode:
            return
        paths = list(stmt_paths(st))
        for c in _walk_calls(stmt_calls(st)):
            if c.base is not None and c.name not in (
                self.config.wellformed_checks
            ):
                paths.append(c.base)
            for a in c.args:
                paths.extend(a.paths)
        self._flag_raw_optional_uses(fn, st, paths, state, findings)

    def _check_atom_uses(self, fn, st, atom, state, findings, summary_mode):
        if summary_mode:
            return
        paths = [
            p for p in atom.paths if len(p) > 1
        ]  # bare truthiness of the optional itself is the check
        self._flag_raw_optional_uses(fn, st, paths, state, findings)

    def _flag_raw_optional_uses(self, fn, st, paths, state, findings):
        for p in paths:
            if len(p) < 2:
                continue
            root = state.paths.get(p[:1])
            if root is None or not root.optional or root.level != RAW:
                continue
            findings.append(
                Finding(
                    check="verify-before-use",
                    rule="unverified-decode-use",
                    file=st.loc.file,
                    line=st.loc.line,
                    func=fn.qual,
                    detail=f"deref {p[0]}",
                    message=(
                        f"member access on decode result '{p[0]}' before "
                        "its wellformedness verdict (has_value/ok/done) "
                        "was consulted"
                    ),
                )
            )


def _merge_summary(old: Summary | None, new: Summary) -> Summary:
    if old is None:
        return new
    merged = Summary(
        returns_taint=old.returns_taint or new.returns_taint,
        returns_optional=old.returns_optional or new.returns_optional,
        is_verifier=old.is_verifier or new.is_verifier,
        sink_params=dict(old.sink_params),
    )
    for k, v in new.sink_params.items():
        merged.sink_params[k] = max(merged.sink_params.get(k, 0), v)
    return merged


# ------------------------------------------------------ lock discipline


@dataclass
class FieldAccess:
    cls: str
    field: str
    locked: bool
    write: bool
    loc: Loc
    func: str


_LOCK_TYPES = ("lock_guard", "scoped_lock", "unique_lock", "shared_lock")


def collect_lock_accesses(fn: Function) -> list[FieldAccess]:
    """Records this-rooted field touches with lock-held context.

    The model is deliberately coarse: holding ANY of the class's mutexes
    counts as locked (binding fields to a specific mutex is what clang's
    GUARDED_BY already does; this check only hunts for fields touched
    both under and outside any guard at all). Constructors, destructors
    and functions annotated BFTBC_NO_THREAD_SAFETY_ANALYSIS are skipped,
    as are functions taking an already-held lock object by reference
    (the drain_job pattern).
    """
    if fn.cls is None or fn.kind in ("ctor", "dtor"):
        return []
    if "no_tsa" in fn.attrs:
        return []
    if not any("mutex" in t for t in fn.fields.values()):
        return []
    held_at_entry = "lock_param" in fn.attrs
    out: list[FieldAccess] = []

    def record(path, held, write, loc):
        if len(path) >= 2 and path[0] == "this":
            name = path[1]
            ftype = fn.fields.get(name, "")
            if name in fn.fields and "mutex" not in ftype:
                if "atomic" in ftype:
                    return
                out.append(
                    FieldAccess(fn.cls, name, held, write, loc, fn.qual)
                )

    def paths_of(st):
        reads = stmt_paths(st)
        if isinstance(st, SAssign):
            reads = st.paths  # the target is recorded as a write above
        yield from ((p, False) for p in reads)
        for c in _walk_calls(stmt_calls(st)):
            if c.base is not None:
                yield c.base, False
            for a in c.args:
                yield from ((p, False) for p in a.paths)

    def go(stmts, held):
        for st in stmts:
            if isinstance(st, SDecl):
                if any(t in st.type for t in _LOCK_TYPES):
                    held = True
                    continue  # the mutex arg itself is not an access
            if isinstance(st, SAssign):
                record(st.target, held, True, st.loc)
            for p, _w in paths_of(st):
                record(p, held, False, st.loc)
            if isinstance(st, SIf):
                go(st.then, held)
                go(st.els, held)
            elif isinstance(st, (SLoop, SRangeFor, SBlock)):
                go(st.body, held)
            elif isinstance(st, SSwitch):
                for seg in st.segments:
                    go(seg, held)
        return held

    go(fn.body, held_at_entry)
    return out
