"""The four analyzer checks, all running over the frontend's IR.

Each check takes (program, config) and returns a list of ir.Finding.
File scoping uses the repo-relative path stored in each Function's Loc.
"""

from __future__ import annotations

from collections import defaultdict

from .ir import (
    Finding,
    SDecl,
    SRangeFor,
    SSwitch,
    TaintAnalysis,
    _walk_calls,
    collect_lock_accesses,
    stmt_calls,
    walk_stmts,
)

CHECK_NAMES = (
    "verify-before-use",
    "switch-exhaustive",
    "lock-discipline",
    "determinism",
)


# ------------------------------------------------ 1. verify-before-use


def check_verify_before_use(program, config):
    analysis = TaintAnalysis(program, config)
    analysis.compute_summaries()
    findings = []
    for fn in program.all_functions():
        if not config.in_scope(
            fn.loc.file, config.TAINT_SCOPE, config.TAINT_EXCLUDE
        ):
            continue
        findings.extend(analysis.check_function(fn))
    return findings


# ----------------------------------------------- 2. switch-exhaustive


def check_switch_exhaustive(program, config):
    findings = []
    seen = set()
    for fn in program.all_functions():
        if not config.in_scope(fn.loc.file, config.SWITCH_SCOPE):
            continue
        for st in walk_stmts(fn.body):
            if not isinstance(st, SSwitch) or st.enum is None:
                continue
            if not st.enum.startswith(config.SWITCH_ENUM_PREFIX):
                continue
            key = (st.loc.file, st.loc.line)
            if key in seen:  # headers reparsed across TUs
                continue
            seen.add(key)
            missing = st.enumerators - st.covered
            if not st.has_default and missing:
                findings.append(
                    Finding(
                        check="switch-exhaustive",
                        rule="missing-enumerators",
                        file=st.loc.file,
                        line=st.loc.line,
                        func=fn.qual,
                        detail=f"switch({st.enum})",
                        message=(
                            f"switch over {st.enum} has no default and "
                            f"misses: {', '.join(sorted(missing))}"
                        ),
                    )
                )
            elif st.has_default and missing and not st.default_justified:
                findings.append(
                    Finding(
                        check="switch-exhaustive",
                        rule="unjustified-default",
                        file=st.loc.file,
                        line=st.loc.line,
                        func=fn.qual,
                        detail=f"switch({st.enum})",
                        message=(
                            f"switch over {st.enum} hides "
                            f"{len(missing)} enumerator(s) behind a bare "
                            "`default: break;` — say why the swallow is "
                            "safe (comment in the default) or handle them"
                        ),
                    )
                )
    return findings


# ------------------------------------------------- 3. lock-discipline


def check_lock_discipline(program, config):
    accesses = []
    for fn in program.all_functions():
        if not config.in_scope(fn.loc.file, config.LOCK_SCOPE):
            continue
        accesses.extend(collect_lock_accesses(fn))

    by_field = defaultdict(list)
    for a in accesses:
        by_field[(a.cls, a.field)].append(a)

    findings = []
    for (cls, fname), accs in sorted(by_field.items()):
        locked = [a for a in accs if a.locked]
        unlocked = [a for a in accs if not a.locked]
        writes = [a for a in accs if a.write]
        # The smell this check exists for: a field the class does guard
        # (it has locked sites) but also touches outside any lock, with
        # at least one write in the mix so a race is actually possible.
        if not locked or not unlocked or not writes:
            continue
        # Setters are registration-time by convention in this tree.
        interesting = [
            a
            for a in unlocked
            if not a.func.rsplit("::", 1)[-1].startswith("set_")
        ]
        lref = min(locked, key=lambda a: (a.loc.file, a.loc.line))
        for a in sorted(
            interesting, key=lambda x: (x.loc.file, x.loc.line)
        ):
            findings.append(
                Finding(
                    check="lock-discipline",
                    rule="mixed-guard",
                    file=a.loc.file,
                    line=a.loc.line,
                    func=a.func,
                    detail=f"{cls}::{fname}",
                    message=(
                        f"'{fname}' of {cls} is accessed here without a "
                        f"lock but is touched under one at {lref.loc} — "
                        "either take the mutex, mark the function "
                        "BFTBC_NO_THREAD_SAFETY_ANALYSIS with a reason, "
                        "or split the field"
                    ),
                )
            )
    return findings


# ---------------------------------------------------- 4. determinism


def check_determinism(program, config):
    findings = []
    seen = set()
    for fn in program.all_functions():
        if not config.in_scope(fn.loc.file, config.DET_SCOPE):
            continue
        for st in walk_stmts(fn.body):
            loc = getattr(st, "loc", None)
            if loc is None:
                continue
            if isinstance(st, SDecl) and any(
                t in st.type for t in config.BANNED_DECL_TYPES
            ):
                key = ("decl", loc.file, loc.line)
                if key not in seen:
                    seen.add(key)
                    findings.append(
                        Finding(
                            check="determinism",
                            rule="banned-call",
                            file=loc.file,
                            line=loc.line,
                            func=fn.qual,
                            detail=f"decl {st.type}",
                            message=(
                                f"'{st.type}' in deterministic "
                                "simulation/protocol code; seed from "
                                "util/rng.h instead"
                            ),
                        )
                    )
            for c in _walk_calls(stmt_calls(st)):
                name = c.qual or c.name
                if config.is_banned_call(name):
                    key = ("call", loc.file, loc.line, name)
                    if key in seen:
                        continue
                    seen.add(key)
                    findings.append(
                        Finding(
                            check="determinism",
                            rule="banned-call",
                            file=loc.file,
                            line=loc.line,
                            func=fn.qual,
                            detail=f"call {name}",
                            message=(
                                f"'{name}' is wall-clock/global "
                                "randomness in deterministic code; use "
                                "util/rng.h or the simulator's virtual "
                                "clock"
                            ),
                        )
                    )
            if isinstance(st, SRangeFor) and "unordered_" in st.range_type:
                key = ("iter", loc.file, loc.line)
                if key in seen:
                    continue
                seen.add(key)
                findings.append(
                    Finding(
                        check="determinism",
                        rule="unordered-iteration",
                        file=loc.file,
                        line=loc.line,
                        func=fn.qual,
                        detail="range-for unordered",
                        message=(
                            "iteration over an unordered container in "
                            "protocol/sim code — emission order must not "
                            "depend on hash layout; use std::map or sort "
                            "first"
                        ),
                    )
                )
    return findings


CHECKS = {
    "verify-before-use": check_verify_before_use,
    "switch-exhaustive": check_switch_exhaustive,
    "lock-discipline": check_lock_discipline,
    "determinism": check_determinism,
}


def run_checks(program, config, names=None):
    findings = []
    for name in names or CHECK_NAMES:
        findings.extend(CHECKS[name](program, config))
    findings.sort(key=lambda f: (f.file, f.line, f.rule, f.detail))
    return findings
