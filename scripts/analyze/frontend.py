"""clang.cindex -> IR lowering.

Everything libclang lives here: the rest of the package (IR, solver,
checks, baseline) is importable and unit-testable without it. CI
installs libclang + the python bindings; a local run without them gets
a clear skip message from probe_libclang() instead of a traceback.

Lowering philosophy: extract only what the checks consume — access
paths (root variable + short member chain, seeing through optional's
operator-> / operator*), call references with per-argument paths,
branch conditions flattened into &&/|| atom lists, and the
switch/range-for/lock-decl structure. Anything unrecognized degrades to
an opaque statement, which the solver treats conservatively.
"""

from __future__ import annotations

import glob
import json
import os

from .ir import (
    Arg,
    CallRef,
    Cond,
    CondAtom,
    Function,
    Loc,
    MAX_PATH_DEPTH,
    Program,
    SAssign,
    SBlock,
    SDecl,
    SExit,
    SExpr,
    SIf,
    SLoop,
    SRangeFor,
    SSwitch,
)

_LIBCLANG_CANDIDATES = (
    "/usr/lib/llvm-*/lib/libclang.so*",
    "/usr/lib/llvm-*/lib/libclang-*.so*",
    "/usr/lib/x86_64-linux-gnu/libclang*.so*",
    "/usr/lib/libclang.so*",
)

_probe_cache = None


def probe_libclang():
    """Returns (cindex_module, None) or (None, human-readable reason)."""
    global _probe_cache
    if _probe_cache is not None:
        return _probe_cache
    try:
        from clang import cindex  # noqa: PLC0415
    except ImportError:
        _probe_cache = (
            None,
            "python 'clang' bindings not installed "
            "(CI installs python3-clang; locally: available via LLVM "
            "distributions — the analyzer skips without them)",
        )
        return _probe_cache
    candidates = [None]
    for pattern in _LIBCLANG_CANDIDATES:
        candidates.extend(sorted(glob.glob(pattern), reverse=True))
    last_err = "no libclang shared library found"
    for cand in candidates:
        try:
            if cand is not None:
                cindex.Config.loaded = False
                cindex.Config.set_library_file(cand)
            cindex.Index.create()
            _probe_cache = (cindex, None)
            return _probe_cache
        except Exception as e:  # LibclangError, OSError
            last_err = str(e).splitlines()[0] if str(e) else repr(e)
    _probe_cache = (
        None,
        f"python 'clang' bindings present but no usable libclang: "
        f"{last_err}",
    )
    return _probe_cache


def default_args(root: str) -> list:
    return ["-x", "c++", "-std=c++20", f"-I{os.path.join(root, 'src')}"]


def compile_db_args(build_dir: str) -> list:
    """Extra -I/-D/-std flags harvested from compile_commands.json."""
    path = os.path.join(build_dir, "compile_commands.json")
    if not os.path.exists(path):
        return []
    try:
        with open(path, encoding="utf-8") as f:
            entries = json.load(f)
    except (OSError, ValueError):
        return []
    out, seen = [], set()
    for e in entries:
        argv = e.get("arguments")
        if not argv and e.get("command"):
            argv = e["command"].split()
        if not argv:
            continue
        it = iter(argv)
        for a in it:
            take = None
            if a.startswith(("-I", "-D")) and len(a) > 2:
                take = [a]
            elif a in ("-I", "-D", "-isystem", "-iquote"):
                v = next(it, None)
                if v is not None:
                    take = [a, v]
            elif a.startswith("-std="):
                take = [a]
            if take and tuple(take) not in seen:
                seen.add(tuple(take))
                out.extend(take)
    return out


class ParseError(Exception):
    pass


class Lowerer:
    def __init__(self, cindex, root: str, virtual_path: str | None = None):
        self.cx = cindex
        self.K = cindex.CursorKind
        self.TK = cindex.TokenKind
        self.root = os.path.abspath(root)
        # Fixture mode: report this file under a pretended rel path.
        self.virtual_path = virtual_path
        self._passthrough_ops = {
            "operator->",
            "operator*",
            "operator bool",
            "operator[]",
        }
        self._lambda_seq = 0

    # ------------------------------------------------------- plumbing

    def relpath(self, cur) -> str | None:
        f = cur.location.file
        if f is None:
            return None
        p = os.path.abspath(f.name)
        if not p.startswith(self.root + os.sep):
            return None
        rel = os.path.relpath(p, self.root).replace(os.sep, "/")
        return self.virtual_path or rel

    def loc(self, cur) -> Loc:
        rel = self.relpath(cur) or (
            cur.location.file.name if cur.location.file else "?"
        )
        return Loc(rel, cur.location.line, cur.location.column)

    def unwrap(self, c):
        K = self.K
        wrappers = (
            K.UNEXPOSED_EXPR,
            K.PAREN_EXPR,
            K.CSTYLE_CAST_EXPR,
            K.CXX_STATIC_CAST_EXPR,
            K.CXX_CONST_CAST_EXPR,
            K.CXX_REINTERPRET_CAST_EXPR,
            K.CXX_FUNCTIONAL_CAST_EXPR,
        )
        while c is not None and c.kind in wrappers:
            kids = list(c.get_children())
            if not kids:
                return c
            c = kids[0]
        return c

    def qualname(self, cur) -> str:
        parts = []
        c = cur
        while c is not None and c.kind != self.K.TRANSLATION_UNIT:
            if c.spelling:
                parts.append(c.spelling)
            c = c.semantic_parent
        return "::".join(reversed(parts))

    def _first_token(self, cur) -> str:
        for t in cur.get_tokens():
            return t.spelling
        return ""

    def _binop(self, cur) -> str:
        kids = list(cur.get_children())
        if len(kids) != 2:
            return ""
        try:
            end0 = kids[0].extent.end.offset
            start1 = kids[1].extent.start.offset
        except Exception:
            return ""
        for t in cur.get_tokens():
            o = t.extent.start.offset
            if end0 <= o < start1 and t.kind == self.TK.PUNCTUATION:
                return t.spelling
        return ""

    # ---------------------------------------------------- expressions

    def access_path(self, c):
        c = self.unwrap(c)
        if c is None:
            return None
        K = self.K
        k = c.kind
        if k == K.DECL_REF_EXPR:
            return (c.spelling,) if c.spelling else None
        if k == K.CXX_THIS_EXPR:
            return ("this",)
        if k == K.MEMBER_REF_EXPR:
            kids = list(c.get_children())
            if not kids:
                return ("this", c.spelling)[:MAX_PATH_DEPTH]
            base = self.unwrap(kids[0])
            if base is not None and base.kind == K.CXX_THIS_EXPR:
                return ("this", c.spelling)
            bp = self.access_path(kids[0])
            if bp is None:
                return None
            return (bp + (c.spelling,))[:MAX_PATH_DEPTH]
        if k == K.ARRAY_SUBSCRIPT_EXPR:
            kids = list(c.get_children())
            return self.access_path(kids[0]) if kids else None
        if k == K.UNARY_OPERATOR:
            if self._first_token(c) in ("*", "&"):
                kids = list(c.get_children())
                return self.access_path(kids[0]) if kids else None
            return None
        if k == K.CALL_EXPR and c.spelling in self._passthrough_ops:
            for kid in c.get_children():
                u = self.unwrap(kid)
                if u is not None and u.kind == K.DECL_REF_EXPR and (
                    u.spelling.startswith("operator")
                ):
                    continue
                p = self.access_path(kid)
                if p is not None:
                    return p
        return None

    def collect_expr(self, c, paths, calls):
        c = self.unwrap(c)
        if c is None:
            return
        K = self.K
        k = c.kind
        if k == K.LAMBDA_EXPR:
            self._lower_lambda(c)
            return
        if k == K.CALL_EXPR:
            if c.spelling in self._passthrough_ops:
                p = self.access_path(c)
                if p is not None:
                    paths.append(p)
                else:
                    for kid in c.get_children():
                        self.collect_expr(kid, paths, calls)
                return
            calls.append(self.lower_call(c))
            return
        if k in (K.DECL_REF_EXPR, K.MEMBER_REF_EXPR, K.CXX_THIS_EXPR,
                 K.ARRAY_SUBSCRIPT_EXPR):
            p = self.access_path(c)
            if p is not None:
                paths.append(p)
                if k == K.ARRAY_SUBSCRIPT_EXPR:
                    kids = list(c.get_children())
                    for kid in kids[1:]:
                        self.collect_expr(kid, paths, calls)
                return
        if k == K.UNARY_OPERATOR and self._first_token(c) in ("*", "&"):
            p = self.access_path(c)
            if p is not None:
                paths.append(p)
                return
        for kid in c.get_children():
            self.collect_expr(kid, paths, calls)

    def lower_call(self, c) -> CallRef:
        name = c.spelling or ""
        ref = c.referenced
        qual = ""
        if ref is not None:
            qual = self.qualname(ref)
            if not name:
                name = ref.spelling or ""
        base = None
        kids = list(c.get_children())
        if kids:
            callee = self.unwrap(kids[0])
            if callee is not None and callee.kind == self.K.MEMBER_REF_EXPR:
                ckids = list(callee.get_children())
                if ckids:
                    base = self.access_path(ckids[0])
                else:
                    base = ("this",)
        args = []
        for a in c.get_arguments():
            ap, ac = [], []
            self.collect_expr(a, ap, ac)
            args.append(Arg(ap, ac))
        return CallRef(name, qual, base, args, self.loc(c))

    # ----------------------------------------------------- conditions

    def lower_cond(self, c) -> Cond:
        c = self.unwrap(c)
        if c is not None and c.kind == self.K.BINARY_OPERATOR:
            op = self._binop(c)
            if op in ("&&", "||"):
                atoms: list = []
                pure = self._flatten_bool(c, op, atoms)
                join = "and" if op == "&&" else "or"
                return Cond(join if pure else "opaque", atoms)
        return Cond("single", [self.lower_atom(c)])

    def _flatten_bool(self, c, op, atoms) -> bool:
        pure = True
        for kid in c.get_children():
            u = self.unwrap(kid)
            if u is not None and u.kind == self.K.BINARY_OPERATOR:
                kop = self._binop(u)
                if kop == op:
                    pure = self._flatten_bool(u, op, atoms) and pure
                    continue
                if kop in ("&&", "||"):
                    atoms.append(self.lower_atom(u))
                    pure = False
                    continue
            atoms.append(self.lower_atom(kid))
        return pure

    def lower_atom(self, c) -> CondAtom:
        negated = False
        c = self.unwrap(c)
        while (
            c is not None
            and c.kind == self.K.UNARY_OPERATOR
            and self._first_token(c) == "!"
        ):
            negated = not negated
            kids = list(c.get_children())
            c = self.unwrap(kids[0]) if kids else None
        paths, calls = [], []
        if c is not None:
            self.collect_expr(c, paths, calls)
        return CondAtom(negated, paths, calls)

    # ----------------------------------------------------- statements

    def lower_block(self, c) -> list:
        out: list = []
        for kid in c.get_children():
            out.extend(self.lower_stmt(kid))
        return out

    def lower_stmt(self, c) -> list:
        K = self.K
        k = c.kind
        loc = self.loc(c)
        if k == K.COMPOUND_STMT:
            return [SBlock(self.lower_block(c), loc)]
        if k == K.DECL_STMT:
            out = []
            for kid in c.get_children():
                if kid.kind == K.VAR_DECL:
                    out.append(self._lower_var_decl(kid))
            return out
        if k == K.IF_STMT:
            return self._lower_if(c, loc)
        if k in (K.WHILE_STMT, K.DO_STMT):
            kids = list(c.get_children())
            if not kids:
                return []
            if k == K.WHILE_STMT:
                cond, body = kids[0], kids[-1]
            else:
                body, cond = kids[0], kids[-1]
            body_stmts = self.lower_stmt(body)
            return [SLoop(self.lower_cond(cond), body_stmts, loc)]
        if k == K.FOR_STMT:
            kids = list(c.get_children())
            if not kids:
                return []
            body = kids[-1]
            pre: list = []
            cond = None
            for kid in kids[:-1]:
                if kid.kind == K.DECL_STMT:
                    pre.extend(self.lower_stmt(kid))
                elif kid.kind.is_expression() and cond is None:
                    cond = self.lower_cond(kid)
            return pre + [SLoop(cond, self.lower_stmt(body), loc)]
        if k == K.CXX_FOR_RANGE_STMT:
            return [self._lower_range_for(c, loc)]
        if k == K.SWITCH_STMT:
            return [self._lower_switch(c, loc)]
        if k == K.RETURN_STMT:
            paths, calls = [], []
            for kid in c.get_children():
                self.collect_expr(kid, paths, calls)
            return [SExit("return", paths, calls, loc)]
        if k == K.CONTINUE_STMT:
            return [SExit("continue", [], [], loc)]
        if k == K.BREAK_STMT:
            return [SExit("break", [], [], loc)]
        if k == K.NULL_STMT:
            return []
        if k == K.BINARY_OPERATOR and self._binop(c) == "=":
            return self._lower_assign(c, loc, compound=False)
        if k == K.COMPOUND_ASSIGNMENT_OPERATOR:
            return self._lower_assign(c, loc, compound=True)
        if k == K.UNARY_OPERATOR and self._first_token(c) in ("++", "--"):
            kids = list(c.get_children())
            tgt = self.access_path(kids[0]) if kids else None
            if tgt is not None:
                return [SAssign(tgt, [tgt], [], loc, compound=True)]
        if k.is_expression():
            paths, calls = [], []
            self.collect_expr(c, paths, calls)
            return [SExpr(paths, calls, loc)]
        if k.is_statement():
            # try/catch/label/...: keep the nested statements visible.
            return [SBlock(self.lower_block(c), loc)]
        return []

    def _lower_var_decl(self, kid) -> SDecl:
        paths, calls = [], []
        for sub in kid.get_children():
            if sub.kind in (
                self.K.TYPE_REF,
                self.K.NAMESPACE_REF,
                self.K.TEMPLATE_REF,
            ):
                continue
            self.collect_expr(sub, paths, calls)
        return SDecl(
            kid.spelling,
            kid.type.spelling or "",
            paths,
            calls,
            self.loc(kid),
        )

    def _lower_assign(self, c, loc, compound) -> list:
        kids = list(c.get_children())
        if len(kids) != 2:
            paths, calls = [], []
            self.collect_expr(c, paths, calls)
            return [SExpr(paths, calls, loc)]
        lhs, rhs = kids
        target = self.access_path(lhs)
        paths, calls = [], []
        self.collect_expr(rhs, paths, calls)
        # Reads buried in the lhs (subscript indices, receiver chains)
        # are still uses: `learned_[from] = src` reads `from`.
        lp, lcalls = [], []
        self.collect_expr(lhs, lp, lcalls)
        calls.extend(lcalls)
        if target is None:
            return [SExpr(paths + lp, calls, loc)]
        paths.extend(p for p in lp if p != target)
        return [SAssign(target, paths, calls, loc, compound=compound)]

    def _lower_if(self, c, loc) -> list:
        K = self.K
        kids = list(c.get_children())
        pre: list = []
        while kids and kids[0].kind == K.DECL_STMT:
            pre.extend(self.lower_stmt(kids.pop(0)))
        cond_var = None
        if kids and kids[0].kind == K.VAR_DECL:
            cond_var = kids.pop(0)
            pre.append(self._lower_var_decl(cond_var))
        if not kids:
            return pre
        if cond_var is not None:
            cond = Cond(
                "single",
                [CondAtom(False, [(cond_var.spelling,)], [])],
            )
            then = kids[0] if kids else None
            els = kids[1] if len(kids) > 1 else None
        else:
            cond = self.lower_cond(kids[0])
            then = kids[1] if len(kids) > 1 else None
            els = kids[2] if len(kids) > 2 else None
        then_stmts = self.lower_stmt(then) if then is not None else []
        els_stmts = self.lower_stmt(els) if els is not None else []
        return pre + [SIf(cond, then_stmts, els_stmts, loc)]

    def _lower_range_for(self, c, loc) -> SRangeFor:
        kids = list(c.get_children())
        body = kids[-1] if kids else None
        var = ""
        range_paths: list = []
        range_types: list = []
        for kid in kids[:-1]:
            if kid.kind == self.K.VAR_DECL and not kid.spelling.startswith(
                "__"
            ):
                if not var:
                    var = kid.spelling
                for sub in kid.get_children():
                    if sub.kind.is_expression():
                        u = self.unwrap(sub)
                        if u is not None:
                            range_types.append(u.type.spelling or "")
                        self.collect_expr(sub, range_paths, [])
            elif kid.kind.is_expression():
                u = self.unwrap(kid)
                if u is not None:
                    range_types.append(u.type.spelling or "")
                self.collect_expr(kid, range_paths, [])
        body_stmts = self.lower_stmt(body) if body is not None else []
        return SRangeFor(
            var, range_paths, " ".join(range_types), body_stmts, loc
        )

    def _lower_switch(self, c, loc) -> SSwitch:
        K = self.K
        kids = list(c.get_children())
        if not kids:
            return SSwitch([], None, frozenset(), frozenset(), False,
                           False, [], loc)
        cond, body = kids[0], kids[-1]
        subject_paths, subject_calls = [], []
        self.collect_expr(cond, subject_paths, subject_calls)

        enum_qual = None
        enumerators: set = set()
        u = self.unwrap(cond)
        t = (u or cond).type
        decl = t.get_declaration()
        if decl is None or decl.kind != K.ENUM_DECL:
            decl = t.get_canonical().get_declaration()
        if decl is not None and decl.kind == K.ENUM_DECL:
            enum_qual = self.qualname(decl)
            for e in decl.get_children():
                if e.kind == K.ENUM_CONSTANT_DECL:
                    enumerators.add(e.spelling)

        covered: set = set()
        has_default = False
        segments: list = []
        seg: list | None = None
        for ch in body.get_children():
            if ch.kind in (K.CASE_STMT, K.DEFAULT_STMT):
                seg = []
                segments.append(seg)
                sub = ch
                while sub is not None and sub.kind in (
                    K.CASE_STMT,
                    K.DEFAULT_STMT,
                ):
                    if sub.kind == K.DEFAULT_STMT:
                        has_default = True
                        inner = list(sub.get_children())
                    else:
                        inner = list(sub.get_children())
                        if inner:
                            covered.update(
                                self._enum_refs(inner[0])
                            )
                        inner = inner[1:]
                    sub = inner[-1] if inner else None
                if sub is not None:
                    seg.extend(self.lower_stmt(sub))
            else:
                if seg is None:
                    seg = []
                    segments.append(seg)
                seg.extend(self.lower_stmt(ch))

        justified = self._default_justified(body) if has_default else False
        return SSwitch(
            subject_paths,
            enum_qual,
            frozenset(enumerators),
            frozenset(covered),
            has_default,
            justified,
            segments,
            loc,
        )

    def _enum_refs(self, expr):
        out = []
        stack = [expr]
        while stack:
            cur = stack.pop()
            if cur.kind == self.K.DECL_REF_EXPR and cur.spelling:
                out.append(cur.spelling)
            stack.extend(cur.get_children())
        return out

    def _default_justified(self, body) -> bool:
        """A default is justified if it does something beyond `break;`
        or carries a comment saying why swallowing is safe."""
        toks = list(body.get_tokens())
        for i, t in enumerate(toks):
            if t.spelling != "default" or t.kind != self.TK.KEYWORD:
                continue
            j = i + 1
            depth = 0
            while j < len(toks):
                s = toks[j].spelling
                if toks[j].kind == self.TK.COMMENT:
                    return True
                if s == "case" and depth == 0:
                    break
                if s == "{":
                    depth += 1
                elif s == "}":
                    if depth == 0:
                        break
                    depth -= 1
                elif s not in (":", ";", "break"):
                    return True
                j += 1
            return False
        return False

    # ------------------------------------------------------ functions

    _FN_KINDS = None

    def _fn_kinds(self):
        if Lowerer._FN_KINDS is None:
            K = self.K
            Lowerer._FN_KINDS = {
                K.FUNCTION_DECL: "function",
                K.FUNCTION_TEMPLATE: "function",
                K.CXX_METHOD: "function",
                K.CONSTRUCTOR: "ctor",
                K.DESTRUCTOR: "dtor",
            }
        return Lowerer._FN_KINDS

    def lower_tu(self, tu, program: Program):
        self.program = program
        self._visit_container(tu.cursor, program, cls=None)

    def _visit_container(self, cur, program, cls):
        K = self.K
        for c in cur.get_children():
            if self.relpath(c) is None:
                continue
            k = c.kind
            if k in (K.NAMESPACE, K.UNEXPOSED_DECL, K.LINKAGE_SPEC):
                self._visit_container(c, program, cls)
            elif k in (K.CLASS_DECL, K.STRUCT_DECL, K.CLASS_TEMPLATE):
                if c.is_definition():
                    self._visit_class(c, program)
            elif k in self._fn_kinds() and c.is_definition():
                self._lower_function(c, program, cls)

    def _visit_class(self, cur, program):
        K = self.K
        qual = self.qualname(cur)
        fields = program.classes.setdefault(qual, {})
        for c in cur.get_children():
            if c.kind == K.FIELD_DECL:
                fields[c.spelling] = c.type.spelling or ""
            elif c.kind == K.VAR_DECL:  # static members
                fields[c.spelling] = c.type.spelling or ""
            elif c.kind in (K.CLASS_DECL, K.STRUCT_DECL, K.CLASS_TEMPLATE):
                if c.is_definition():
                    self._visit_class(c, program)
        for c in cur.get_children():
            if c.kind in self._fn_kinds() and c.is_definition():
                self._lower_function(c, program, cls=qual)

    def _lower_function(self, cur, program, cls):
        K = self.K
        rel = self.relpath(cur)
        if rel is None:
            return
        body_cur = None
        params = []
        for c in cur.get_children():
            if c.kind == K.PARM_DECL:
                params.append(
                    (c.spelling or f"arg{len(params)}", c.type.spelling or "")
                )
            elif c.kind == K.COMPOUND_STMT:
                body_cur = c
        if body_cur is None:
            return
        if cls is None and cur.semantic_parent is not None:
            sp = cur.semantic_parent
            if sp.kind in (K.CLASS_DECL, K.STRUCT_DECL, K.CLASS_TEMPLATE):
                cls = self.qualname(sp)
        attrs = set()
        for t in cur.get_tokens():
            if t.spelling == "{":
                break
            if t.spelling in (
                "BFTBC_NO_THREAD_SAFETY_ANALYSIS",
                "no_thread_safety_analysis",
            ):
                attrs.add("no_tsa")
        if any(
            any(lt in ptype for lt in ("unique_lock", "lock_guard",
                                       "scoped_lock"))
            for _, ptype in params
        ):
            attrs.add("lock_param")
        self._pending = getattr(self, "_pending", [])
        fn = Function(
            qual=self.qualname(cur),
            name=cur.spelling,
            cls=cls,
            params=params,
            return_type=cur.result_type.spelling or "",
            body=self.lower_block(body_cur),
            loc=self.loc(cur),
            kind=self._fn_kinds()[cur.kind],
            attrs=attrs,
            fields=dict(program.classes.get(cls, {})) if cls else {},
        )
        program.add(fn)
        # Lambdas encountered while lowering the body.
        for lam in self._pending:
            program.add(lam)
        self._pending = []

    def _lower_lambda(self, cur):
        K = self.K
        self._lambda_seq += 1
        params = []
        body_cur = None
        for c in cur.get_children():
            if c.kind == K.PARM_DECL:
                params.append(
                    (c.spelling or f"arg{len(params)}", c.type.spelling or "")
                )
            elif c.kind == K.COMPOUND_STMT:
                body_cur = c
        if body_cur is None:
            return
        self._pending = getattr(self, "_pending", [])
        self._pending.append(
            Function(
                qual=f"<lambda:{self._lambda_seq}@"
                f"{self.loc(cur).file}:{self.loc(cur).line}>",
                name="<lambda>",
                cls=None,
                params=params,
                return_type=cur.result_type.spelling or "",
                body=self.lower_block(body_cur),
                loc=self.loc(cur),
                kind="lambda",
                attrs=set(),
            )
        )


def parse_and_lower(
    cindex,
    root: str,
    files,
    extra_args=None,
    virtual_path: str | None = None,
):
    """Parses `files` and lowers every in-root definition.

    Returns (program, errors) where errors is a list of Finding-shaped
    tuples (file, line, message) for hard parse failures.
    """
    index = cindex.Index.create()
    args = default_args(root) + list(extra_args or [])
    program = Program()
    errors = []
    for path in files:
        try:
            tu = index.parse(path, args=args)
        except cindex.TranslationUnitLoadError as e:
            errors.append((path, 0, f"failed to parse: {e}"))
            continue
        fatal = [
            d
            for d in tu.diagnostics
            if d.severity >= cindex.Diagnostic.Error
        ]
        if fatal:
            d = fatal[0]
            errors.append(
                (
                    path,
                    d.location.line,
                    f"parse error ({len(fatal)} total): {d.spelling}",
                )
            )
            continue
        Lowerer(cindex, root, virtual_path).lower_tu(tu, program)
    return program, errors
