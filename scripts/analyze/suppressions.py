"""Inline suppression comments, shared by lint_protocol.py and the
analyzer.

Syntax (in a comment, on the same line as the finding):

    // bftbc-lint: allow(rule-a, rule-b) -- why this is safe here

The justification after `--` is REQUIRED: a bare allow() does not
suppress anything and is itself reported (rule `suppression`), so every
exemption in the tree carries its reason next to it.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

SUPPRESS_RE = re.compile(
    r"bftbc-lint:\s*allow\(([a-z][a-z0-9-]*(?:\s*,\s*[a-z][a-z0-9-]*)*)\)"
    r"(?:\s*(?:--|—)\s*(\S.*\S|\S))?"
)


@dataclass
class Suppression:
    rules: frozenset
    justification: str | None
    line: int


def parse_line(text: str, line: int = 0) -> Suppression | None:
    m = SUPPRESS_RE.search(text)
    if not m:
        return None
    rules = frozenset(r.strip() for r in m.group(1).split(","))
    return Suppression(rules, m.group(2), line)


def scan_lines(lines) -> dict:
    """Returns {1-based line -> Suppression} for every allow() comment."""
    out = {}
    for i, text in enumerate(lines, 1):
        s = parse_line(text, i)
        if s is not None:
            out[i] = s
    return out


def scan_file(path: str) -> dict:
    try:
        with open(path, encoding="utf-8", errors="replace") as f:
            return scan_lines(f.read().splitlines())
    except OSError:
        return {}


def is_suppressed(supps: dict, line: int, rule: str) -> bool:
    """Only a justified allow() on the finding's line suppresses it."""
    s = supps.get(line)
    return (
        s is not None
        and rule in s.rules
        and s.justification is not None
    )


def unjustified(supps: dict):
    """Suppressions missing their `-- reason` (each is a finding)."""
    return [s for s in supps.values() if s.justification is None]
