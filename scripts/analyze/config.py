"""The protocol-specific model the checks run against.

Names are matched as suffixes of the (best-effort) qualified name so
that both fully resolved calls (`bftbc::crypto::Keystore::verify_cached`)
and dependent/template calls where only the spelling survives
(`verify_cached`) hit the same entry.
"""

from __future__ import annotations

import re

from .ir import RAW, WELLFORMED, VERIFIED  # noqa: F401  (re-exported)

_ = RAW  # silence linters; levels are part of this module's interface


def _suffix_re(patterns):
    return [re.compile(p + r"$") for p in patterns]


class Config:
    # Values produced by these calls came straight off the wire.
    SOURCES = _suffix_re(
        [
            r"::decode",
            r"\bdecode",
            r"Reader::get_(u8|u16|u32|u64|varint|bool|bytes|string|raw)",
            r"::get_cert",
            r"\bget_cert",
            r"::decode_signature_set",
            r"::decode_optional_wcert",
        ]
    )
    # Sources returning std::optional whose verdict must be consulted.
    OPTIONAL_SOURCES = _suffix_re([r"::decode", r"\bdecode"])

    # OS receive calls tainting out-arguments: name -> arg indices.
    # One origin per call links the buffer to the peer address, so a
    # wellformedness check on anything decoded from the buffer vouches
    # for the whole datagram.
    SOURCE_OUT_ARGS = {
        "recvfrom": (1, 4),
        "recv": (1,),
        "recvmsg": (1,),
        "read": (1,),
    }

    # Parameters of these types arrive tainted (the dispatch path hands
    # decoded-but-unverified envelopes to the handlers).
    TAINTED_PARAM_TYPES = ("rpc::Envelope", "Envelope")

    # Cryptographic verification entry points (the roots; wrappers are
    # discovered interprocedurally via summaries).
    VERIFIER_ROOTS = _suffix_re(
        [
            r"Keystore::verify",
            r"Keystore::verify_cached",
            r"Keystore::verify_batch",
            r"Keystore::mac_check",
            r"Certificate::validate",
            r"PrepareCertificate::validate",
            r"WriteCertificate::validate",
            r"::validate_signature_quorum",
            r"\bvalidate_signature_quorum",
        ]
    )

    # Decode-verdict checks (upgrade RAW -> WELLFORMED).
    WELLFORMED_CHECKS = frozenset(
        {"has_value", "ok", "done", "at_end", "is_ok"}
    )

    # Methods whose result is by construction the entire signed message:
    # passing x->signing_payload() to a verifier blesses all of x.
    PAYLOAD_METHODS = frozenset({"signing_payload"})

    # Protocol-state sinks and the taint level required to enter them.
    SINKS = [
        (re.compile(p + r"$"), lvl)
        for p, lvl in [
            (r"ObjectState::try_prepare", VERIFIED),
            (r"ObjectState::try_opt_prepare", VERIFIED),
            (r"ObjectState::apply_write", VERIFIED),
            (r"ObjectState::absorb_write_certificate", VERIFIED),
            (r"KvStore::put", VERIFIED),
            (r"KvStore::erase", VERIFIED),
        ]
    ]

    # Member fields that are sinks when assigned (root member name).
    # learned_ is the transport's reply-routing table: a datagram must
    # at least decode to a wellformed envelope before its forgeable
    # source header may steer where replies go.
    SINK_FIELDS = {"learned_": WELLFORMED}

    # Path scoping (repo-relative, '/'-separated).
    TAINT_SCOPE = ("src/",)
    TAINT_EXCLUDE = ("src/baselines/",)  # intentionally-weak protocols
    DET_SCOPE = ("src/bftbc/", "src/quorum/", "src/sim/")
    LOCK_SCOPE = ("src/",)
    SWITCH_SCOPE = ("src/",)

    # Only switches over protocol enums are held to the dispatch rule.
    SWITCH_ENUM_PREFIX = "bftbc::"

    # AST-level determinism: banned in DET_SCOPE. Bare libc names are
    # anchored on both sides so e.g. a simulator's own virtual `time`
    # accessor (qualified bftbc::sim::...) never trips the rule — the
    # precision win over the regex lint this check supersedes.
    BANNED_CALLS = [
        re.compile(p)
        for p in [
            r"^(::|std::)?rand$",
            r"^(::|std::)?srand$",
            r"^(::|std::)?time$",
            r"system_clock::now$",
            r"random_device::operator\(\)$",
        ]
    ]
    BANNED_DECL_TYPES = ("random_device",)

    def __init__(self, scope_all: bool = False):
        # Fixture mode: path scoping off, every check everywhere.
        self.scope_all = scope_all

    # ------------------------------------------------------- queries

    def is_source(self, name: str) -> bool:
        return any(r.search(name) for r in self.SOURCES)

    def source_is_optional(self, name: str) -> bool:
        return any(r.search(name) for r in self.OPTIONAL_SOURCES)

    def source_out_args(self, name: str):
        base = name.rsplit("::", 1)[-1]
        return self.SOURCE_OUT_ARGS.get(base, ())

    def tainted_param(self, type_spelling: str) -> bool:
        t = type_spelling.replace("const ", "").replace("&", "").strip()
        return any(t.endswith(x) for x in self.TAINTED_PARAM_TYPES)

    def is_verifier_root(self, name: str) -> bool:
        return any(r.search(name) for r in self.VERIFIER_ROOTS)

    def sink_level(self, name: str):
        for r, lvl in self.SINKS:
            if r.search(name):
                return lvl
        return None

    def sink_field_level(self, target_path):
        for part in target_path:
            if part in self.SINK_FIELDS:
                return self.SINK_FIELDS[part]
        return None

    @property
    def wellformed_checks(self):
        return self.WELLFORMED_CHECKS

    @property
    def payload_methods(self):
        return self.PAYLOAD_METHODS

    def boolish_return(self, return_type: str) -> bool:
        return "bool" in return_type or "Status" in return_type

    def is_banned_call(self, name: str) -> bool:
        return any(r.search(name) for r in self.BANNED_CALLS)

    def in_scope(self, rel: str, scope, exclude=()) -> bool:
        if self.scope_all:
            return True
        rel = rel.replace("\\", "/")
        if any(rel.startswith(e) for e in exclude):
            return False
        return any(rel.startswith(s) for s in scope)
