"""AST-grounded static analysis for the BFT-BC tree.

The package is split so the expensive dependency stays optional:

  ir.py           frontend-independent IR + the taint/lock dataflow core
                  (unit-tested locally, no libclang needed)
  frontend.py     clang.cindex -> IR lowering (needs libclang; CI installs
                  it, local runs degrade to a clear skip)
  config.py       the protocol-specific source/verifier/sink model
  checks.py       the four checks over the IR
  baseline.py     committed-baseline diffing (CI fails only on NEW findings)
  suppressions.py inline `bftbc-lint: allow(<rule>) -- <why>` handling,
                  shared with scripts/lint_protocol.py
  run_analyzer.py CLI entry point
"""
