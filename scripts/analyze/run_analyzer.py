#!/usr/bin/env python3
"""AST-grounded protocol analyzer for the BFT-BC tree.

Runs four checks over src/ (see checks.py):

  verify-before-use   wire-decoded values must pass a verification
                      entry point before reaching replica state
  switch-exhaustive   switches over protocol enums handle every
                      enumerator or justify their default
  lock-discipline     fields touched both under and outside a guard
  determinism         wall-clock / global randomness / unordered
                      iteration in sim+protocol code

Usage:
  run_analyzer.py [--root DIR] [--build-dir DIR] [--checks a,b]
                  [--baseline FILE] [--update-baseline] [--require]
                  [--fixture-mode] [files...]

Exit status:
  0  clean (or libclang unavailable without --require: clear skip)
  1  new findings (not in the committed baseline)
  2  usage error, or libclang unavailable under --require
"""

from __future__ import annotations

import argparse
import os
import sys

if __package__ in (None, ""):
    sys.path.insert(
        0, os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    )
    from analyze import baseline as baseline_mod
    from analyze import suppressions
    from analyze.checks import CHECK_NAMES, run_checks
    from analyze.config import Config
    from analyze.frontend import (
        compile_db_args,
        parse_and_lower,
        probe_libclang,
    )
    from analyze.ir import Finding
else:
    from . import baseline as baseline_mod
    from . import suppressions
    from .checks import CHECK_NAMES, run_checks
    from .config import Config
    from .frontend import compile_db_args, parse_and_lower, probe_libclang
    from .ir import Finding

DEFAULT_BASELINE = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "baseline.json"
)


def discover_sources(root: str) -> list:
    out = []
    src = os.path.join(root, "src")
    for dirpath, dirnames, filenames in os.walk(src):
        dirnames.sort()
        for name in sorted(filenames):
            if name.endswith((".cc", ".cpp", ".cxx")):
                out.append(os.path.join(dirpath, name))
    return out


def apply_suppressions(findings, root: str):
    """Filters suppressed findings; flags unjustified allow() comments."""
    kept = []
    cache: dict = {}
    for f in findings:
        path = os.path.join(root, f.file)
        if path not in cache:
            cache[path] = suppressions.scan_file(path)
        if suppressions.is_suppressed(cache[path], f.line, f.rule):
            continue
        kept.append(f)
    for path, supps in cache.items():
        rel = os.path.relpath(path, root).replace(os.sep, "/")
        for s in suppressions.unjustified(supps):
            kept.append(
                Finding(
                    check="suppression",
                    rule="suppression",
                    file=rel,
                    line=s.line,
                    func="",
                    detail=f"allow({','.join(sorted(s.rules))})",
                    message=(
                        "suppression without justification — write "
                        "`bftbc-lint: allow(rule) -- why it is safe`"
                    ),
                )
            )
    return kept


def main(argv) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--root",
        default=os.path.dirname(
            os.path.dirname(
                os.path.dirname(os.path.abspath(__file__))
            )
        ),
    )
    parser.add_argument(
        "--build-dir",
        default=None,
        help="build tree holding compile_commands.json (default: "
        "<root>/build if present)",
    )
    parser.add_argument(
        "--checks",
        default=",".join(CHECK_NAMES),
        help=f"comma-separated subset of: {', '.join(CHECK_NAMES)}",
    )
    parser.add_argument("--baseline", default=DEFAULT_BASELINE)
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="write current findings as the new accepted baseline",
    )
    parser.add_argument(
        "--require",
        action="store_true",
        help="fail (exit 2) instead of skipping when libclang is missing "
        "— CI sets this",
    )
    parser.add_argument(
        "--fixture-mode",
        action="store_true",
        help="self-test mode: no path scoping, no baseline, no "
        "suppression scan outside the given files",
    )
    parser.add_argument(
        "files",
        nargs="*",
        help="specific files (default: every C++ source under <root>/src)",
    )
    args = parser.parse_args(argv[1:])

    cindex, reason = probe_libclang()
    if cindex is None:
        msg = (
            f"analyze: SKIPPED — {reason}.\n"
            "analyze: the AST checks run in CI (the 'analyze' job "
            "installs libclang); local IR/solver unit tests still cover "
            "the dataflow core (scripts/tests/test_analyze.py)."
        )
        if args.require:
            print(msg.replace("SKIPPED", "REQUIRED but unavailable"),
                  file=sys.stderr)
            return 2
        print(msg)
        return 0

    root = os.path.abspath(args.root)
    files = [os.path.abspath(f) for f in args.files] or discover_sources(
        root
    )
    for f in files:
        if not os.path.exists(f):
            print(f"error: no such file: {f}", file=sys.stderr)
            return 2

    build_dir = args.build_dir or os.path.join(root, "build")
    extra = compile_db_args(build_dir)

    config = Config(scope_all=args.fixture_mode)
    program, errors = parse_and_lower(cindex, root, files, extra)
    findings = run_checks(
        program, config, [c for c in args.checks.split(",") if c]
    )
    for path, line, msg in errors:
        rel = os.path.relpath(path, root).replace(os.sep, "/")
        findings.append(
            Finding(
                check="infra",
                rule="parse-error",
                file=rel,
                line=line,
                detail="parse",
                message=msg,
            )
        )

    if not args.fixture_mode:
        findings = apply_suppressions(findings, root)

    if args.update_baseline:
        baseline_mod.save(args.baseline, findings)
        print(
            f"analyze: baseline updated with {len(findings)} finding(s) "
            f"-> {args.baseline}"
        )
        return 0

    baseline_keys = (
        set() if args.fixture_mode else baseline_mod.load(args.baseline)
    )
    new, old, stale = baseline_mod.diff(findings, baseline_keys)

    for f in new:
        print(f)
    if old:
        print(f"analyze: {len(old)} baselined finding(s) suppressed")
    for k in stale:
        print(f"analyze: note: stale baseline entry (fixed?): {k}")
    if new:
        print(
            f"analyze: {len(new)} new finding(s) in {len(files)} file(s) "
            f"({len(program.functions)} functions analyzed)",
            file=sys.stderr,
        )
        return 1
    print(
        f"analyze: OK ({len(files)} files, "
        f"{len(program.functions)} functions, "
        f"{len(old)} baselined, {len(stale)} stale entries)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
