#!/usr/bin/env python3
"""Self-tests for scripts/lint_protocol.py.

Each fixture under fixtures/ is staged into a temp tree at a path where
its target rule applies (rule scoping is path-based), then the linter is
run with --root pointed at the temp tree. *_fail fixtures must produce
exactly their rule's findings; *_pass fixtures must be clean.

Runs under plain unittest (ctest entry `lint_protocol_selftest`) and
under pytest unchanged.
"""

import os
import shutil
import subprocess
import sys
import tempfile
import unittest

SCRIPTS_DIR = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
LINTER = os.path.join(SCRIPTS_DIR, "lint_protocol.py")
FIXTURES = os.path.join(SCRIPTS_DIR, "tests", "fixtures")

# fixture -> (path inside the staged tree, rule expected to fire or None)
CASES = {
    "raw_verify_fail.cpp": ("src/bftbc/fixture.cpp", "raw-verify"),
    "raw_verify_primitive_fail.cpp": ("src/quorum/fixture.cpp", "raw-verify"),
    "raw_verify_cache_fail.cpp": ("src/bftbc/fixture.cpp", "raw-verify"),
    "raw_verify_pool_fail.cpp": ("src/bftbc/fixture.cpp", "raw-verify"),
    "raw_verify_pass.cpp": ("src/bftbc/fixture.cpp", None),
    "nondet_fail.cpp": ("src/sim/fixture.cpp", "nondeterminism"),
    "nondet_pass.cpp": ("src/sim/fixture.cpp", None),
    "unchecked_value_fail.cpp": (
        "src/bftbc/fixture.cpp",
        "unchecked-result-value",
    ),
    "unchecked_value_pass.cpp": ("src/bftbc/fixture.cpp", None),
    "state_mutation_fail.cpp": (
        "src/bftbc/fixture.cpp",
        "replica-state-mutation",
    ),
    "state_mutation_pass.cpp": ("src/bftbc/fixture.cpp", None),
    "suppressed_pass.cpp": ("src/bftbc/fixture.cpp", None),
    "suppression_nojust_fail.cpp": ("src/bftbc/fixture.cpp", "suppression"),
}


def run_linter_on(fixture, staged_rel):
    """Stage one fixture into a temp tree and lint it. Returns (rc, out)."""
    with tempfile.TemporaryDirectory() as root:
        dst = os.path.join(root, staged_rel)
        os.makedirs(os.path.dirname(dst), exist_ok=True)
        shutil.copyfile(os.path.join(FIXTURES, fixture), dst)
        proc = subprocess.run(
            [sys.executable, LINTER, "--root", root],
            capture_output=True,
            text=True,
            check=False,
        )
        return proc.returncode, proc.stdout + proc.stderr


class LintFixtureTest(unittest.TestCase):
    maxDiff = None

    def test_fixture_files_all_covered(self):
        on_disk = {
            f for f in os.listdir(FIXTURES) if f.endswith(".cpp")
        }
        self.assertEqual(
            on_disk, set(CASES), "every fixture must have a CASES entry"
        )


def _make_case(fixture, staged_rel, rule):
    def test(self):
        rc, out = run_linter_on(fixture, staged_rel)
        if rule is None:
            self.assertEqual(
                rc, 0, f"{fixture} must pass cleanly; output:\n{out}"
            )
        else:
            self.assertEqual(
                rc, 1, f"{fixture} must be flagged; output:\n{out}"
            )
            self.assertIn(
                f"[{rule}]", out, f"{fixture} must trip {rule}; got:\n{out}"
            )
            # It must trip ONLY its own rule: no cross-contamination.
            for other in {
                "raw-verify",
                "nondeterminism",
                "unchecked-result-value",
                "replica-state-mutation",
            } - {rule}:
                self.assertNotIn(f"[{other}]", out)

    return test


for _fixture, (_rel, _rule) in CASES.items():
    _name = "test_" + _fixture.replace(".cpp", "")
    setattr(LintFixtureTest, _name, _make_case(_fixture, _rel, _rule))


class LintScopingTest(unittest.TestCase):
    def test_rules_do_not_fire_outside_their_scope(self):
        # The same raw-verify violation is legal inside src/crypto/ and in
        # tests/; nondeterminism is legal outside the simulation dirs.
        for fixture, rel in (
            ("raw_verify_fail.cpp", "src/crypto/fixture.cpp"),
            ("raw_verify_fail.cpp", "tests/fixture.cpp"),
            ("raw_verify_pool_fail.cpp", "src/crypto/fixture.cpp"),
            ("raw_verify_pool_fail.cpp", "tools/fixture.cpp"),
            ("nondet_fail.cpp", "src/util/fixture.cpp"),
            ("state_mutation_fail.cpp", "src/bftbc/replica_state.cpp"),
        ):
            rc, out = run_linter_on(fixture, rel)
            self.assertEqual(
                rc, 0, f"{fixture} at {rel} must be out of scope:\n{out}"
            )

    def test_explicit_file_arguments(self):
        with tempfile.TemporaryDirectory() as root:
            flagged = os.path.join(root, "src", "bftbc", "bad.cpp")
            clean = os.path.join(root, "src", "bftbc", "good.cpp")
            os.makedirs(os.path.dirname(flagged), exist_ok=True)
            shutil.copyfile(
                os.path.join(FIXTURES, "raw_verify_fail.cpp"), flagged
            )
            shutil.copyfile(
                os.path.join(FIXTURES, "raw_verify_pass.cpp"), clean
            )
            proc = subprocess.run(
                [sys.executable, LINTER, "--root", root, clean],
                capture_output=True,
                text=True,
                check=False,
            )
            self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)
            proc = subprocess.run(
                [sys.executable, LINTER, "--root", root, flagged],
                capture_output=True,
                text=True,
                check=False,
            )
            self.assertEqual(proc.returncode, 1, proc.stdout + proc.stderr)

    def test_bare_allow_does_not_suppress_the_underlying_rule(self):
        # An allow() with no `-- why` must leave the violation visible
        # AND flag the suppression itself.
        with tempfile.TemporaryDirectory() as root:
            dst = os.path.join(root, "src", "bftbc", "fixture.cpp")
            os.makedirs(os.path.dirname(dst), exist_ok=True)
            with open(dst, "w", encoding="utf-8") as f:
                f.write(
                    "void audited(const Keystore& ks, BytesView s,"
                    " BytesView g) {\n"
                    "  (void)ks.verify(1, s, g);"
                    "  // bftbc-lint: allow(raw-verify)\n"
                    "}\n"
                )
            proc = subprocess.run(
                [sys.executable, LINTER, "--root", root],
                capture_output=True,
                text=True,
                check=False,
            )
            out = proc.stdout + proc.stderr
            self.assertEqual(proc.returncode, 1, out)
            self.assertIn("[raw-verify]", out)
            self.assertIn("[suppression]", out)

    def test_file_outside_root_is_a_usage_error(self):
        with tempfile.TemporaryDirectory() as root:
            proc = subprocess.run(
                [sys.executable, LINTER, "--root", root, LINTER],
                capture_output=True,
                text=True,
                check=False,
            )
            self.assertEqual(proc.returncode, 2)


class LintRealTreeTest(unittest.TestCase):
    def test_repo_src_is_clean(self):
        repo_root = os.path.dirname(SCRIPTS_DIR)
        proc = subprocess.run(
            [sys.executable, LINTER, "--root", repo_root],
            capture_output=True,
            text=True,
            check=False,
        )
        self.assertEqual(
            proc.returncode, 0, proc.stdout + proc.stderr
        )


if __name__ == "__main__":
    unittest.main(verbosity=2)
