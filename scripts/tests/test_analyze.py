#!/usr/bin/env python3
"""Self-tests for scripts/analyze/.

Two tiers:

  * IR/solver unit tests — build the analyzer's IR by hand and drive
    the taint/lock/switch/determinism checks directly. These run
    everywhere (no libclang) and are the tier-1 coverage for the
    dataflow core.
  * End-to-end fixture tests — run the full CLI over
    fixtures/analyze/*.cpp through libclang. Skipped (with a visible
    skip reason) when libclang is absent; the CI `analyze` job always
    installs it, so they always run there.

Runs under plain unittest (ctest entry `analyze_selftest`) and pytest.
"""

import os
import subprocess
import sys
import unittest

SCRIPTS_DIR = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, SCRIPTS_DIR)

from analyze import baseline, suppressions  # noqa: E402
from analyze.checks import (  # noqa: E402
    check_determinism,
    check_lock_discipline,
    check_switch_exhaustive,
    check_verify_before_use,
)
from analyze.config import Config  # noqa: E402
from analyze.frontend import probe_libclang  # noqa: E402
from analyze.ir import (  # noqa: E402
    Arg,
    CallRef,
    Cond,
    CondAtom,
    Function,
    Loc,
    Program,
    SAssign,
    SDecl,
    SExit,
    SExpr,
    SIf,
    SLoop,
    SRangeFor,
    SSwitch,
)

RUNNER = os.path.join(SCRIPTS_DIR, "analyze", "run_analyzer.py")
FIXTURES = os.path.join(SCRIPTS_DIR, "tests", "fixtures", "analyze")

L = Loc("src/bftbc/fixture.cpp", 1)


def call(name, qual="", base=None, args=(), loc=L):
    return CallRef(name, qual, base, list(args), loc)


def arg(*paths, calls=()):
    return Arg(list(paths), list(calls))


def decode_call(argpaths=()):
    return call(
        "decode",
        qual="bftbc::PrepareRequest::decode",
        args=[arg(*argpaths)] if argpaths else [],
    )


def verify_call(*args_):
    return call(
        "verify_cached",
        qual="bftbc::crypto::Keystore::verify_cached",
        base=("this", "keystore_"),
        args=list(args_),
    )


def sink_call(*argpaths):
    return call(
        "apply_write",
        qual="bftbc::ObjectState::apply_write",
        base=("state",),
        args=[arg(p) for p in argpaths],
    )


def has_value_guard(path, then):
    """if (!path.has_value()) { then }"""
    return SIf(
        Cond("single", [CondAtom(True, [], [call("has_value", base=path)])]),
        then,
        [],
        L,
    )


def handler(body, params=(("env", "const rpc::Envelope&"),), qual="H::h"):
    return Function(
        qual=qual,
        name=qual.rsplit("::", 1)[-1],
        cls=None,
        params=list(params),
        return_type="void",
        body=body,
        loc=L,
    )


def run_taint(*fns, cfg=None):
    program = Program()
    for fn in fns:
        program.add(fn)
    return check_verify_before_use(program, cfg or Config(scope_all=True))


class VerifyBeforeUseTest(unittest.TestCase):
    def decl_req(self):
        return SDecl(
            "req",
            "std::optional<bftbc::PrepareRequest>",
            [("env", "body")],
            [decode_call([("env", "body")])],
            L,
        )

    def test_wellformed_alone_does_not_reach_verified_sink(self):
        fn = handler(
            [
                self.decl_req(),
                has_value_guard(("req",), [SExit("return", [], [], L)]),
                SExpr([], [sink_call(("req", "value"))], L),
            ]
        )
        found = run_taint(fn)
        self.assertEqual([f.rule for f in found], ["unverified-sink"])

    def test_verifier_guard_dominates_sink(self):
        guard = SIf(
            Cond(
                "single",
                [
                    CondAtom(
                        True,
                        [],
                        [
                            verify_call(
                                arg(("req", "client")),
                                arg(
                                    calls=[
                                        call(
                                            "signing_payload",
                                            base=("req",),
                                        )
                                    ]
                                ),
                                arg(("req", "sig")),
                            )
                        ],
                    )
                ],
            ),
            [SExit("return", [], [], L)],
            [],
            L,
        )
        fn = handler(
            [
                self.decl_req(),
                has_value_guard(("req",), [SExit("return", [], [], L)]),
                guard,
                SExpr([], [sink_call(("req", "value"))], L),
            ]
        )
        self.assertEqual(run_taint(fn), [])

    def test_member_use_before_wellformed_check_flagged(self):
        fn = handler(
            [
                self.decl_req(),
                SExpr([("req", "object")], [], L),
            ]
        )
        self.assertIn(
            "unverified-decode-use", [f.rule for f in run_taint(fn)]
        )

    def test_then_branch_verify_is_branch_local(self):
        validate = call(
            "validate",
            qual="bftbc::quorum::PrepareCertificate::validate",
            base=("req", "cert"),
        )
        fn = handler(
            [
                self.decl_req(),
                has_value_guard(("req",), [SExit("return", [], [], L)]),
                SIf(
                    Cond("single", [CondAtom(False, [], [validate])]),
                    [SExpr([], [sink_call(("req", "cert"))], L)],
                    [],
                    L,
                ),
                SExpr([], [sink_call(("req", "cert"))], L),
            ]
        )
        found = run_taint(fn)
        # Only the sink AFTER the join fires; the one inside the
        # verified then-branch is clean.
        self.assertEqual(len(found), 1)
        self.assertEqual(found[0].rule, "unverified-sink")

    def test_or_join_early_return_marks_fallthrough(self):
        validate = call(
            "validate",
            qual="bftbc::quorum::PrepareCertificate::validate",
            base=("req", "cert"),
        )
        guard = SIf(
            Cond(
                "or",
                [
                    CondAtom(True, [("req",)], []),
                    CondAtom(True, [], [validate]),
                ],
            ),
            [SExit("return", [], [], L)],
            [],
            L,
        )
        fn = handler(
            [
                self.decl_req(),
                guard,
                SExpr([], [sink_call(("req", "cert"))], L),
            ]
        )
        self.assertEqual(run_taint(fn), [])

    def test_and_join_guard_protects_then_branch(self):
        validate = call(
            "validate",
            qual="bftbc::quorum::WriteCertificate::validate",
            base=("req", "wcert"),
        )
        fn = handler(
            [
                self.decl_req(),
                has_value_guard(("req",), [SExit("return", [], [], L)]),
                SIf(
                    Cond(
                        "and",
                        [
                            CondAtom(
                                False,
                                [],
                                [call("has_value", base=("req", "wcert"))],
                            ),
                            CondAtom(False, [], [validate]),
                        ],
                    ),
                    [SExpr([], [sink_call(("req", "wcert"))], L)],
                    [],
                    L,
                ),
            ]
        )
        self.assertEqual(run_taint(fn), [])

    def test_verify_only_covers_named_paths(self):
        # Verifying req->sig alone must NOT bless req->value.
        guard = SIf(
            Cond(
                "single",
                [CondAtom(True, [], [verify_call(arg(("req", "sig")))])],
            ),
            [SExit("return", [], [], L)],
            [],
            L,
        )
        fn = handler(
            [
                self.decl_req(),
                has_value_guard(("req",), [SExit("return", [], [], L)]),
                guard,
                SExpr([], [sink_call(("req", "value"))], L),
            ]
        )
        self.assertEqual([f.rule for f in run_taint(fn)],
                         ["unverified-sink"])

    def test_recvfrom_origin_links_buffer_to_peer_address(self):
        recv = call(
            "recvfrom",
            qual="::recvfrom",
            args=[
                arg(("fd",)),
                arg(("buf",)),
                arg(),
                arg(),
                arg(("srcaddr",)),
            ],
        )
        decode_env = SDecl(
            "envm",
            "std::optional<bftbc::rpc::Envelope>",
            [("buf",)],
            [call("decode", qual="bftbc::rpc::Envelope::decode",
                  args=[arg(("buf",))])],
            L,
        )
        learn = SAssign(("this", "learned_"), [("srcaddr",)], [], L)
        good = handler(
            [
                SLoop(
                    None,
                    [
                        SExpr([], [recv], L),
                        decode_env,
                        has_value_guard(
                            ("envm",), [SExit("continue", [], [], L)]
                        ),
                        learn,
                    ],
                    L,
                )
            ],
            params=(),
        )
        self.assertEqual(run_taint(good), [])

    def test_learned_address_update_before_decode_verdict_flagged(self):
        # The udp_transport bug shape: learning the reply route from the
        # forgeable header before Envelope::decode has been consulted.
        recv = call(
            "recvfrom",
            qual="::recvfrom",
            args=[arg(("fd",)), arg(("buf",)), arg(), arg(),
                  arg(("srcaddr",))],
        )
        bad = handler(
            [
                SLoop(
                    None,
                    [
                        SExpr([], [recv], L),
                        SAssign(("this", "learned_"), [("srcaddr",)], [],
                                L),
                    ],
                    L,
                )
            ],
            params=(),
        )
        found = run_taint(bad)
        self.assertEqual([f.rule for f in found], ["unverified-sink"])
        self.assertIn("learned_", found[0].message)

    def test_interprocedural_verifier_wrapper(self):
        wrapper = Function(
            qual="bftbc::Replica::verify_client_sig",
            name="verify_client_sig",
            cls="bftbc::Replica",
            params=[("client", "PrincipalId"), ("payload", "Bytes"),
                    ("sig", "Bytes")],
            return_type="bool",
            body=[
                SExit(
                    "return",
                    [],
                    [verify_call(arg(("client",)), arg(("payload",)),
                                 arg(("sig",)))],
                    L,
                )
            ],
            loc=L,
        )
        guard = SIf(
            Cond(
                "single",
                [
                    CondAtom(
                        True,
                        [],
                        [
                            call(
                                "verify_client_sig",
                                qual="bftbc::Replica::verify_client_sig",
                                args=[
                                    arg(("req", "client")),
                                    arg(
                                        calls=[
                                            call(
                                                "signing_payload",
                                                base=("req",),
                                            )
                                        ]
                                    ),
                                    arg(("req", "sig")),
                                ],
                            )
                        ],
                    )
                ],
            ),
            [SExit("return", [], [], L)],
            [],
            L,
        )
        caller = handler(
            [
                self.decl_req(),
                has_value_guard(("req",), [SExit("return", [], [], L)]),
                guard,
                SExpr([], [sink_call(("req", "value"))], L),
            ]
        )
        self.assertEqual(run_taint(caller, wrapper), [])

    def test_interprocedural_sink_forwarder(self):
        forwarder = Function(
            qual="bftbc::do_apply",
            name="do_apply",
            cls=None,
            params=[("state", "ObjectState&"), ("req", "PrepareRequest&")],
            return_type="void",
            body=[SExpr([], [sink_call(("req", "value"))], L)],
            loc=L,
        )
        caller = handler(
            [
                self.decl_req(),
                has_value_guard(("req",), [SExit("return", [], [], L)]),
                SExpr(
                    [],
                    [
                        call(
                            "do_apply",
                            qual="bftbc::do_apply",
                            args=[arg(("state",)), arg(("req",))],
                        )
                    ],
                    L,
                ),
            ]
        )
        found = run_taint(caller, forwarder)
        self.assertEqual([f.rule for f in found], ["unverified-sink"])

    def test_returns_taint_propagates_through_helpers(self):
        helper = Function(
            qual="bftbc::get_cert",
            name="get_cert",
            cls=None,
            params=[("r", "Reader&")],
            return_type="std::optional<Cert>",
            body=[
                SExit(
                    "return",
                    [],
                    [call("decode", qual="bftbc::Cert::decode",
                          args=[arg(("r",))])],
                    L,
                )
            ],
            loc=L,
        )
        caller = handler(
            [
                SDecl(
                    "cert",
                    "auto",
                    [],
                    [call("get_cert", qual="bftbc::get_cert",
                          args=[arg(("r",))])],
                    L,
                ),
                SExpr([("cert", "ts")], [], L),
            ],
            params=(("r", "bftbc::Reader&"),),
        )
        found = run_taint(caller, helper)
        self.assertIn("unverified-decode-use", [f.rule for f in found])

    def test_baselines_dir_out_of_scope(self):
        fn = handler(
            [
                self.decl_req(),
                SExpr([], [sink_call(("req", "value"))], L),
            ]
        )
        fn.loc = Loc("src/baselines/bqs.cpp", 1)
        self.assertEqual(run_taint(fn, cfg=Config()), [])


class SwitchExhaustiveTest(unittest.TestCase):
    def switch_fn(self, covered, has_default, justified,
                  enum="bftbc::rpc::MsgType"):
        st = SSwitch(
            [("t",)],
            enum,
            frozenset({"kA", "kB", "kC"}),
            frozenset(covered),
            has_default,
            justified,
            [],
            L,
        )
        return handler([st], params=())

    def run_check(self, fn):
        p = Program()
        p.add(fn)
        return check_switch_exhaustive(p, Config(scope_all=True))

    def test_bare_default_hiding_enumerators_flagged(self):
        found = self.run_check(self.switch_fn({"kA"}, True, False))
        self.assertEqual([f.rule for f in found], ["unjustified-default"])

    def test_justified_default_ok(self):
        self.assertEqual(
            self.run_check(self.switch_fn({"kA"}, True, True)), []
        )

    def test_missing_enumerators_without_default_flagged(self):
        found = self.run_check(self.switch_fn({"kA", "kB"}, False, False))
        self.assertEqual([f.rule for f in found], ["missing-enumerators"])

    def test_full_coverage_ok(self):
        self.assertEqual(
            self.run_check(
                self.switch_fn({"kA", "kB", "kC"}, False, False)
            ),
            [],
        )

    def test_non_protocol_enum_ignored(self):
        self.assertEqual(
            self.run_check(
                self.switch_fn({"kA"}, True, False, enum="std::byte")
            ),
            [],
        )


class LockDisciplineTest(unittest.TestCase):
    FIELDS = {"mu_": "std::mutex", "counters_": "Counters"}

    def method(self, name, body, attrs=(), kind="function"):
        return Function(
            qual=f"bftbc::Keystore::{name}",
            name=name,
            cls="bftbc::Keystore",
            params=[],
            return_type="void",
            body=body,
            loc=L,
            kind=kind,
            attrs=set(attrs),
            fields=dict(self.FIELDS),
        )

    def lock_stmt(self):
        return SDecl(
            "lk", "std::lock_guard<std::mutex>", [("this", "mu_")], [], L
        )

    def run_check(self, *fns):
        p = Program()
        for f in fns:
            p.add(f)
        return check_lock_discipline(p, Config(scope_all=True))

    def test_mixed_guard_flagged(self):
        locked = self.method(
            "bump",
            [self.lock_stmt(),
             SAssign(("this", "counters_"), [], [], L, compound=True)],
        )
        unlocked = self.method(
            "peek", [SExpr([("this", "counters_")], [], L)]
        )
        found = self.run_check(locked, unlocked)
        self.assertEqual([f.rule for f in found], ["mixed-guard"])

    def test_all_locked_ok(self):
        a = self.method(
            "bump",
            [self.lock_stmt(),
             SAssign(("this", "counters_"), [], [], L, compound=True)],
        )
        b = self.method(
            "read",
            [self.lock_stmt(), SExpr([("this", "counters_")], [], L)],
        )
        self.assertEqual(self.run_check(a, b), [])

    def test_no_tsa_annotation_respected(self):
        locked = self.method(
            "bump",
            [self.lock_stmt(),
             SAssign(("this", "counters_"), [], [], L, compound=True)],
        )
        accessor = self.method(
            "counters",
            [SExpr([("this", "counters_")], [], L)],
            attrs=("no_tsa",),
        )
        self.assertEqual(self.run_check(locked, accessor), [])

    def test_lock_param_counts_as_held(self):
        locked = self.method(
            "bump",
            [self.lock_stmt(),
             SAssign(("this", "counters_"), [], [], L, compound=True)],
        )
        drain = self.method(
            "drain",
            [SAssign(("this", "counters_"), [], [], L, compound=True)],
            attrs=("lock_param",),
        )
        self.assertEqual(self.run_check(locked, drain), [])

    def test_ctor_skipped(self):
        locked = self.method(
            "bump",
            [self.lock_stmt(),
             SAssign(("this", "counters_"), [], [], L, compound=True)],
        )
        ctor = self.method(
            "Keystore",
            [SAssign(("this", "counters_"), [], [], L)],
            kind="ctor",
        )
        self.assertEqual(self.run_check(locked, ctor), [])

    def test_lock_scope_ends_with_block(self):
        # { lock; write; }  write;   -> second write is unlocked.
        from analyze.ir import SBlock

        fn = self.method(
            "flush",
            [
                SBlock(
                    [self.lock_stmt(),
                     SAssign(("this", "counters_"), [], [], L,
                             compound=True)],
                    L,
                ),
                SAssign(("this", "counters_"), [], [], L, compound=True),
            ],
        )
        found = self.run_check(fn)
        self.assertEqual([f.rule for f in found], ["mixed-guard"])


class DeterminismTest(unittest.TestCase):
    def run_check(self, fn, cfg=None):
        p = Program()
        p.add(fn)
        return check_determinism(p, cfg or Config())

    def test_wall_clock_call_flagged_in_scope(self):
        fn = handler([SExpr([], [call("time", qual="time")], L)],
                     params=())
        found = self.run_check(fn)
        self.assertEqual([f.rule for f in found], ["banned-call"])

    def test_sim_virtual_time_not_flagged(self):
        fn = handler(
            [SExpr([], [call("time", qual="bftbc::sim::Clock::time")], L)],
            params=(),
        )
        self.assertEqual(self.run_check(fn), [])

    def test_out_of_scope_file_ignored(self):
        fn = handler([SExpr([], [call("time", qual="time")], L)],
                     params=())
        fn.loc = Loc("src/net/clock.cpp", 1)
        fn.body[0].loc = fn.loc
        self.assertEqual(self.run_check(fn), [])

    def test_unordered_iteration_flagged(self):
        fn = handler(
            [
                SRangeFor(
                    "kv",
                    [("this", "peers_")],
                    "std::unordered_map<int, Peer>",
                    [],
                    L,
                )
            ],
            params=(),
        )
        found = self.run_check(fn)
        self.assertEqual([f.rule for f in found], ["unordered-iteration"])

    def test_random_device_decl_flagged(self):
        fn = handler(
            [SDecl("rd", "std::random_device", [], [], L)], params=()
        )
        found = self.run_check(fn)
        self.assertEqual([f.rule for f in found], ["banned-call"])


class BaselineTest(unittest.TestCase):
    def test_diff_partitions_new_old_stale(self):
        from analyze.ir import Finding

        f1 = Finding("c", "r1", "a.cpp", 3, "m", func="f", detail="x")
        f2 = Finding("c", "r2", "b.cpp", 9, "m", func="g", detail="y")
        keys = {f1.key(), "r9|gone.cpp|h|z"}
        new, old, stale = baseline.diff([f1, f2], keys)
        self.assertEqual([f.rule for f in new], ["r2"])
        self.assertEqual([f.rule for f in old], ["r1"])
        self.assertEqual(stale, ["r9|gone.cpp|h|z"])

    def test_key_is_line_free(self):
        from analyze.ir import Finding

        a = Finding("c", "r", "a.cpp", 3, "m", func="f", detail="x")
        b = Finding("c", "r", "a.cpp", 300, "m", func="f", detail="x")
        self.assertEqual(a.key(), b.key())


class SuppressionTest(unittest.TestCase):
    def test_justified_suppression_applies(self):
        supps = suppressions.scan_lines(
            ["int x;  // bftbc-lint: allow(raw-verify) -- fixture needs it"]
        )
        self.assertTrue(suppressions.is_suppressed(supps, 1, "raw-verify"))
        self.assertEqual(suppressions.unjustified(supps), [])

    def test_bare_suppression_does_not_apply_and_is_flagged(self):
        supps = suppressions.scan_lines(
            ["int x;  // bftbc-lint: allow(raw-verify)"]
        )
        self.assertFalse(
            suppressions.is_suppressed(supps, 1, "raw-verify")
        )
        self.assertEqual(len(suppressions.unjustified(supps)), 1)

    def test_multi_rule_and_other_rule(self):
        supps = suppressions.scan_lines(
            ["y();  // bftbc-lint: allow(a-rule, b-rule) -- both fine here"]
        )
        self.assertTrue(suppressions.is_suppressed(supps, 1, "a-rule"))
        self.assertTrue(suppressions.is_suppressed(supps, 1, "b-rule"))
        self.assertFalse(suppressions.is_suppressed(supps, 1, "c-rule"))


_CINDEX, _SKIP_REASON = probe_libclang()


@unittest.skipIf(
    _CINDEX is None, f"libclang unavailable: {_SKIP_REASON}"
)
class FixtureEndToEndTest(unittest.TestCase):
    """Full-pipeline fixture tests; always exercised by the CI analyze
    job, skipped locally when libclang is missing."""

    maxDiff = None

    def run_analyzer(self, fixture, checks):
        path = os.path.join(FIXTURES, fixture)
        proc = subprocess.run(
            [
                sys.executable,
                RUNNER,
                "--fixture-mode",
                "--require",
                "--checks",
                checks,
                path,
            ],
            capture_output=True,
            text=True,
            check=False,
        )
        return proc.returncode, proc.stdout + proc.stderr

    CASES = [
        ("verify_pass.cpp", "verify-before-use", None),
        ("verify_fail.cpp", "verify-before-use", "unverified-sink"),
        ("switch_pass.cpp", "switch-exhaustive", None),
        ("switch_fail.cpp", "switch-exhaustive", "unjustified-default"),
        ("lock_pass.cpp", "lock-discipline", None),
        ("lock_fail.cpp", "lock-discipline", "mixed-guard"),
        ("det_pass.cpp", "determinism", None),
        ("det_fail.cpp", "determinism", "banned-call"),
    ]

    def test_fixtures(self):
        for fixture, check, rule in self.CASES:
            with self.subTest(fixture=fixture):
                rc, out = self.run_analyzer(fixture, check)
                if rule is None:
                    self.assertEqual(
                        rc, 0, f"{fixture} must pass cleanly:\n{out}"
                    )
                else:
                    self.assertEqual(
                        rc, 1, f"{fixture} must be flagged:\n{out}"
                    )
                    self.assertIn(f"[{rule}]", out)

    def test_decode_use_fixture_rule(self):
        rc, out = self.run_analyzer(
            "verify_fail.cpp", "verify-before-use"
        )
        self.assertEqual(rc, 1)
        # The fail fixture also dereferences a decode result before
        # checking it.
        self.assertIn("[unverified-decode-use]", out)

    def test_det_fail_catches_unordered_iteration_too(self):
        rc, out = self.run_analyzer("det_fail.cpp", "determinism")
        self.assertEqual(rc, 1)
        self.assertIn("[unordered-iteration]", out)


if __name__ == "__main__":
    unittest.main(verbosity=2)
