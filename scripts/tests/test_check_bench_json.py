#!/usr/bin/env python3
"""Self-tests for scripts/check_bench_json.py.

Covers the schema validator on synthetic reports and the --compare mode:
per-counter deltas, derived per-op ratios, and the regression threshold.

Runs under plain unittest (ctest entry `scripts_selftest`) and under
pytest unchanged.
"""

import copy
import json
import os
import subprocess
import sys
import tempfile
import unittest

SCRIPTS_DIR = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
CHECKER = os.path.join(SCRIPTS_DIR, "check_bench_json.py")


def minimal_report(**counter_overrides):
    """A schema-v1 report that passes validation on its own."""
    counters = {
        "sig_cache_hit": 10,
        "sig_cache_miss": 5,
        "sig_verify_calls": 700,
        "sign": 420,
        "mac_sign": 360,
        "mac_verify": 330,
        "net/bytes_sent": 278284,
        "net/msgs_sent": 1600,
        "net/encode_calls": 1600,
        "client/1/writes": 50,
        "client/1/reads": 50,
    }
    counters.update(counter_overrides)
    return {
        "schema_version": 1,
        "bench": "bench_synthetic",
        "config": {"smoke": "false"},
        "counters": counters,
        "gauges": {},
        "summaries": {
            "op_ms": {
                "count": 4,
                "mean": 2.0,
                "p50": 2.0,
                "p90": 3.0,
                "p99": 3.0,
                "p999": 3.0,
                "min": 1.0,
                "max": 3.0,
                "stddev": 0.5,
            }
        },
        "histograms": {},
    }


def run_checker(*args):
    proc = subprocess.run(
        [sys.executable, CHECKER, *args],
        capture_output=True,
        text=True,
        check=False,
    )
    return proc.returncode, proc.stdout + proc.stderr


class CheckBenchJsonTest(unittest.TestCase):
    def setUp(self):
        self.tmp = tempfile.TemporaryDirectory()
        self.addCleanup(self.tmp.cleanup)

    def write_report(self, name, doc):
        path = os.path.join(self.tmp.name, name)
        with open(path, "w", encoding="utf-8") as f:
            json.dump(doc, f)
        return path

    def test_valid_report_passes(self):
        path = self.write_report("ok.json", minimal_report())
        rc, out = run_checker(path)
        self.assertEqual(rc, 0, out)

    def test_missing_required_counter_fails(self):
        doc = minimal_report()
        del doc["counters"]["sig_verify_calls"]
        path = self.write_report("bad.json", doc)
        rc, out = run_checker(path)
        self.assertEqual(rc, 1, out)
        self.assertIn("sig_verify_calls", out)

    def test_missing_p999_fails(self):
        doc = minimal_report()
        del doc["summaries"]["op_ms"]["p999"]
        path = self.write_report("bad.json", doc)
        rc, out = run_checker(path)
        self.assertEqual(rc, 1, out)
        self.assertIn("p999", out)

    def test_p999_below_p99_fails(self):
        doc = minimal_report()
        doc["summaries"]["op_ms"]["p999"] = 2.5  # < p99 = 3.0
        path = self.write_report("bad.json", doc)
        rc, out = run_checker(path)
        self.assertEqual(rc, 1, out)
        self.assertIn("out of order", out)

    def test_compare_identical_reports_passes(self):
        old = self.write_report("old.json", minimal_report())
        new = self.write_report("new.json", minimal_report())
        rc, out = run_checker("--compare", old, new)
        self.assertEqual(rc, 0, out)
        # All watched ratios computed, none regressed.
        for label in (
            "bytes_sent/write",
            "msgs_sent/op",
            "sig_verify_calls/op",
            "encode_calls/op",
            "sign/op",
            "mac_sign/op",
            "mac_verify/op",
        ):
            self.assertIn(label, out)
        self.assertNotIn("FAIL", out)

    def test_compare_prints_counter_deltas(self):
        old = self.write_report("old.json", minimal_report())
        new = self.write_report(
            "new.json",
            minimal_report(**{"net/msgs_sent": 1070, "reply_batches": 10}),
        )
        rc, out = run_checker("--compare", old, new)
        self.assertEqual(rc, 0, out)
        self.assertIn("-530", out)  # msgs_sent delta
        self.assertIn("(added)", out)  # counter only in NEW

    def test_compare_flags_regression_above_threshold(self):
        old = self.write_report("old.json", minimal_report())
        new = self.write_report(
            "new.json", minimal_report(sig_verify_calls=900)  # +28.6%/op
        )
        rc, out = run_checker("--compare", old, new)
        self.assertEqual(rc, 1, out)
        self.assertIn("sig_verify_calls/op", out)
        self.assertIn("regressed", out)

    def test_compare_threshold_is_configurable(self):
        old = self.write_report("old.json", minimal_report())
        new = self.write_report(
            "new.json", minimal_report(sig_verify_calls=900)
        )
        rc, out = run_checker("--compare", old, new, "--threshold", "50")
        self.assertEqual(rc, 0, out)
        rc, out = run_checker("--compare", old, new, "--threshold", "5")
        self.assertEqual(rc, 1, out)

    def test_compare_improvement_never_fails(self):
        old = self.write_report("old.json", minimal_report())
        new = self.write_report(
            "new.json",
            minimal_report(
                **{
                    "net/bytes_sent": 201877,
                    "net/msgs_sent": 1070,
                    "net/encode_calls": 1226,
                    "sig_verify_calls": 671,
                }
            ),
        )
        rc, out = run_checker("--compare", old, new, "--threshold", "0")
        self.assertEqual(rc, 0, out)

    def test_compare_flags_mac_counter_regression(self):
        old = self.write_report("old.json", minimal_report())
        new = self.write_report(
            "new.json", minimal_report(mac_verify=500)  # +51.5%/op
        )
        rc, out = run_checker("--compare", old, new)
        self.assertEqual(rc, 1, out)
        self.assertIn("mac_verify/op", out)
        self.assertIn("regressed", out)

    def test_compare_skips_mac_ratios_for_macless_benches(self):
        old_doc = minimal_report()
        new_doc = minimal_report()
        for doc in (old_doc, new_doc):
            for name in ("mac_sign", "mac_verify"):
                del doc["counters"][name]
        old = self.write_report("old.json", old_doc)
        new = self.write_report("new.json", new_doc)
        rc, out = run_checker("--compare", old, new)
        self.assertEqual(rc, 0, out)
        self.assertIn("skipped", out)

    def test_compare_skips_ratio_with_missing_counter(self):
        old_doc = minimal_report()
        del old_doc["counters"]["net/encode_calls"]
        old = self.write_report("old.json", old_doc)
        new = self.write_report("new.json", minimal_report())
        rc, out = run_checker("--compare", old, new)
        self.assertEqual(rc, 0, out)
        self.assertIn("skipped", out)

    def test_compare_rejects_invalid_report(self):
        old = self.write_report("old.json", minimal_report())
        bad = os.path.join(self.tmp.name, "bad.json")
        with open(bad, "w", encoding="utf-8") as f:
            f.write("not json")
        rc, out = run_checker("--compare", old, bad)
        self.assertEqual(rc, 1, out)

    def test_compare_usage_errors(self):
        old = self.write_report("old.json", minimal_report())
        rc, _ = run_checker("--compare", old)
        self.assertEqual(rc, 2)
        rc, _ = run_checker("--compare", old, old, "--threshold", "abc")
        self.assertEqual(rc, 2)

    def test_ratio_derivation_sums_multiple_clients(self):
        doc = minimal_report(**{"client/2/writes": 50, "client/2/reads": 0})
        old = self.write_report("old.json", doc)
        # Same counters: with 100 writes, bytes_sent/write halves vs the
        # single-client report — make sure the divisor actually summed.
        new = self.write_report("new.json", copy.deepcopy(doc))
        rc, out = run_checker("--compare", old, new)
        self.assertEqual(rc, 0, out)
        self.assertIn("2782.840", out)  # 278284 / 100 writes


if __name__ == "__main__":
    unittest.main()
