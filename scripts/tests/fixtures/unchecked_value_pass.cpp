// Fixture: every unwrap is preceded by an ok-check — must PASS
// unchecked-result-value.
Bytes sign_and_use(const Signer& signer, BytesView msg) {
  auto sig = signer.sign(msg);
  if (!sig.is_ok()) return Bytes{};
  return sig.value();
}
Bytes ternary_form(const Signer& signer, BytesView msg) {
  auto sig = signer.sign(msg);
  return sig.is_ok() ? sig.value() : Bytes{};
}
