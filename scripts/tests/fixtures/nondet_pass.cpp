// Fixture: seeded Rng + virtual clock — must PASS nondeterminism.
// Words like "runtime(x)" or members like sim.time_source must not trip
// the lint; neither must "lifetime(" in an identifier-free context.
std::uint64_t seed_well(Rng& rng, const sim::Simulator& sim) {
  const std::uint64_t uptime = sim.now();
  return rng.next() ^ uptime;
}
