// Fixture: violations carrying an explicit suppression — must PASS.
void audited(const Keystore& keystore_, BytesView stmt, BytesView sig) {
  // Cache-bypass benchmark control arm:
  (void)keystore_.verify(1, stmt, sig);  // bftbc-lint: allow(raw-verify) -- benchmark control arm must bypass the memo cache
}
