// Fixture: routed through the memoized path — must PASS raw-verify.
void handle(const Keystore& keystore_, BytesView stmt, BytesView sig) {
  if (!keystore_.verify_cached(3, stmt, sig)) return;
  // A mention of keystore_.verify( in a comment must not trip the lint.
}
