// Fixture: raw Keystore::verify in protocol code — must FAIL raw-verify.
void handle(const Keystore& keystore_, BytesView stmt, BytesView sig) {
  if (!keystore_.verify(3, stmt, sig)) return;
}
