// Passing fixture for the determinism check: logical clocks and
// ordered containers only.
#include <cstdint>
#include <map>

namespace bftbc {
namespace fx {

struct Clock {
  uint64_t now_ = 0;
  uint64_t time() { return now_; }  // sim-virtual time is fine
};

struct Replica {
  Clock clock_;
  std::map<uint64_t, uint64_t> peers_;

  uint64_t stamp() { return clock_.time(); }

  uint64_t sum_peers() {
    uint64_t total = 0;
    for (const auto& kv : peers_) {
      total += kv.second;
    }
    return total;
  }
};

}  // namespace fx
}  // namespace bftbc
