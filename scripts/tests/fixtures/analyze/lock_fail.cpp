// Failing fixture for the lock-discipline check: `pending_` is written
// under mu_ in submit() but read without any lock in drain().
// Expected finding: mixed-guard.
#include <mutex>
#include <vector>

namespace bftbc {
namespace fx {

class Queue {
 public:
  void submit(int job) {
    std::lock_guard<std::mutex> lk(mu_);
    pending_.push_back(job);
  }

  int drain() {
    int n = static_cast<int>(pending_.size());  // unlocked read: flagged
    pending_.clear();                           // unlocked write: flagged
    return n;
  }

 private:
  std::mutex mu_;
  std::vector<int> pending_;
};

}  // namespace fx
}  // namespace bftbc
