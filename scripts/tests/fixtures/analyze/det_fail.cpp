// Failing fixture for the determinism check: wall-clock time and
// iteration over an unordered container inside protocol code.
// Expected findings: banned-call, unordered-iteration.
#include <cstdint>
#include <ctime>
#include <unordered_map>

namespace bftbc {
namespace fx {

struct Replica {
  std::unordered_map<uint64_t, uint64_t> peers_;

  uint64_t stamp() {
    return static_cast<uint64_t>(::time(nullptr));  // banned-call
  }

  uint64_t sum_peers() {
    uint64_t total = 0;
    for (const auto& kv : peers_) {  // unordered-iteration
      total += kv.second;
    }
    return total;
  }
};

}  // namespace fx
}  // namespace bftbc
