// Passing fixture for the switch-exhaustive check: one switch covering
// every enumerator with no default, and one whose default carries a
// justifying comment.
namespace bftbc {
namespace fx {

enum class MsgType { kReadTs, kPrepare, kWrite, kReadValue };

int dispatch_full(MsgType t) {
  switch (t) {
    case MsgType::kReadTs:
      return 1;
    case MsgType::kPrepare:
      return 2;
    case MsgType::kWrite:
      return 3;
    case MsgType::kReadValue:
      return 4;
  }
  return 0;
}

int dispatch_justified(MsgType t) {
  switch (t) {
    case MsgType::kReadTs:
      return 1;
    default:
      // Unknown types are counted and dropped by the caller.
      break;
  }
  return 0;
}

}  // namespace fx
}  // namespace bftbc
