// Passing fixture for the verify-before-use check: the same handler
// shape as verify_fail.cpp but with the wellformedness check first and
// a Keystore verification (over the request's signing payload)
// dominating the state transition — including through a helper, to
// exercise the interprocedural verifier summary.
#include <cstdint>
#include <optional>

namespace bftbc {
namespace fx {

struct Bytes {
  const uint8_t* data;
  unsigned long size;
};

struct Envelope {
  Bytes body;
};

struct PrepareRequest {
  uint64_t client;
  uint64_t object;
  uint64_t value;
  Bytes sig;
  Bytes signing_payload() const;
  static std::optional<PrepareRequest> decode(const Bytes& b);
};

struct Keystore {
  bool verify_cached(uint64_t client, const Bytes& payload,
                     const Bytes& sig);
};

struct ObjectState {
  void apply_write(uint64_t value);
};

struct Replica {
  Keystore keystore_;
  ObjectState state_;

  bool verify_client(const PrepareRequest& req) {
    return keystore_.verify_cached(req.client, req.signing_payload(),
                                   req.sig);
  }

  void handle(const Envelope& env) {
    auto req = PrepareRequest::decode(env.body);
    if (!req.has_value()) {
      return;
    }
    if (!verify_client(*req)) {
      return;
    }
    state_.apply_write(req->value);
  }
};

}  // namespace fx
}  // namespace bftbc
