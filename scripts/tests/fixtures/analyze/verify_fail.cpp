// Failing fixture for the verify-before-use check: a handler that
// decodes a wire request and applies it to replica state without ever
// consulting a verifier, plus a dereference before the has_value
// check. Expected findings: unverified-sink, unverified-decode-use.
#include <cstdint>
#include <optional>

namespace bftbc {
namespace fx {

struct Bytes {
  const uint8_t* data;
  unsigned long size;
};

struct Envelope {
  Bytes body;
};

struct PrepareRequest {
  uint64_t object;
  uint64_t value;
  Bytes sig;
  static std::optional<PrepareRequest> decode(const Bytes& b);
};

struct ObjectState {
  void apply_write(uint64_t value);
};

struct Replica {
  ObjectState state_;

  void handle(const Envelope& env) {
    auto req = PrepareRequest::decode(env.body);
    uint64_t early = req->object;  // deref before has_value(): flagged
    (void)early;
    if (!req.has_value()) {
      return;
    }
    state_.apply_write(req->value);  // no verifier on the path: flagged
  }
};

}  // namespace fx
}  // namespace bftbc
