// Passing fixture for the lock-discipline check: every pending_ touch
// happens under mu_, the registration-time setter convention is
// honoured, and an annotated escape hatch is respected.
#define BFTBC_NO_THREAD_SAFETY_ANALYSIS \
  __attribute__((no_thread_safety_analysis))

#include <mutex>
#include <vector>

namespace bftbc {
namespace fx {

class Queue {
 public:
  void submit(int job) {
    std::lock_guard<std::mutex> lk(mu_);
    pending_.push_back(job);
  }

  int drain() {
    std::lock_guard<std::mutex> lk(mu_);
    int n = static_cast<int>(pending_.size());
    pending_.clear();
    return n;
  }

  void set_capacity(int cap) { capacity_ = cap; }

  // Test-only peek; single-threaded harness, annotated on purpose.
  int unsafe_size() BFTBC_NO_THREAD_SAFETY_ANALYSIS {
    return static_cast<int>(pending_.size());
  }

 private:
  std::mutex mu_;
  std::vector<int> pending_;
  int capacity_ = 0;
};

}  // namespace fx
}  // namespace bftbc
