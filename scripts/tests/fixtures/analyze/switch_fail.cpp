// Failing fixture for the switch-exhaustive check: a bare
// `default: break;` silently swallowing two enumerators of a protocol
// enum. Expected finding: unjustified-default.
namespace bftbc {
namespace fx {

enum class MsgType { kReadTs, kPrepare, kWrite, kReadValue };

int dispatch(MsgType t) {
  switch (t) {
    case MsgType::kReadTs:
      return 1;
    case MsgType::kPrepare:
      return 2;
    default:
      break;
  }
  return 0;
}

}  // namespace fx
}  // namespace bftbc
