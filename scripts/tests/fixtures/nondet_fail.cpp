// Fixture: wall-clock + libc randomness — must FAIL nondeterminism.
#include <chrono>
#include <cstdlib>
unsigned seed_badly() {
  auto t = std::chrono::system_clock::now();
  (void)t;
  std::srand(static_cast<unsigned>(time(nullptr)));
  return static_cast<unsigned>(rand());
}
