// Fixture: mutations through the accessors — must PASS
// replica-state-mutation.
void legit(ObjectState& state, ClientId c, const Timestamp& t,
           const crypto::Digest& h) {
  state.absorb_write_certificate(t);
  if (!state.try_prepare(c, t, h)) return;
  const auto& snapshot = state.plist();  // read accessor is fine
  (void)snapshot;
}
