// Fixture: a suppression comment with no justification — must FAIL
// with rule `suppression` even though the line it sits on is clean.
void audited(int x) {
  (void)x;  // bftbc-lint: allow(raw-verify)
}
