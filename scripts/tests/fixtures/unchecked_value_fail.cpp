// Fixture: Result unwrapped with no visible check — must FAIL
// unchecked-result-value.
Bytes sign_and_use(const Signer& signer, BytesView msg) {
  auto sig = signer.sign(msg);
  return sig.value();
}
