// Fixture: protocol code building its own VerifyPool and fanning
// verification out with parallel_for, bypassing Keystore::verify_batch
// (and its cache/counters) — must FAIL raw-verify.
void drain_backlog(std::vector<Item>& items) {
  VerifyPool pool(4);
  pool.parallel_for(items.size(), [&](std::size_t i) {
    items[i].ok = check_one(items[i]);
  });
}
