// Fixture: poking ObjectState internals from the replica — must FAIL
// replica-state-mutation.
void backdoor(ObjectState& state, const Timestamp& t) {
  auto& s = const_cast<ObjectState&>(state);
  s.write_ts_ = t;
  state.plist_.clear();
}
