// Fixture: calling the crypto primitives directly — must FAIL raw-verify.
bool check(const RsaPublicKey& pub, BytesView m, BytesView s) {
  return rsa_verify(pub, m, s) || hmac_verify(m, m, s);
}
