// Fixture: batch verification poking VerifyCache directly instead of
// going through Keystore::verify_batch — must FAIL raw-verify.
void flush_batch(const Keystore& ks_, std::vector<Item>& items) {
  const VerifyCache& cache = ks_.verify_cache();
  for (auto& it : items) {
    it.ok = cache.lookup(VerifyCache::make_key(it.signer, it.msg, it.sig));
  }
}
