#!/usr/bin/env bash
# Live loopback smoke: start a 4-replica (f=1) bftbcd cluster on
# 127.0.0.1, run bftbc_bench against it over real UDP, and validate the
# emitted bench JSON. This is the end-to-end proof that the simulator's
# protocol state machines also run deployed — CI runs it as the
# live-smoke job, and it works identically by hand:
#
#   scripts/run_live_smoke.sh [build_dir] [out.json]
#
# Exit 0 iff the bench completed and its artifact passes
# scripts/check_bench_json.py.
set -u

BUILD_DIR="${1:-build}"
OUT_JSON="${2:-BENCH_live_smoke.json}"
REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
CONFIG="$REPO_ROOT/bench/cluster_localhost.json"
BFTBCD="$BUILD_DIR/tools/bftbcd"
BENCH="$BUILD_DIR/tools/bftbc_bench"

if [[ ! -x "$BFTBCD" || ! -x "$BENCH" ]]; then
  echo "run_live_smoke: build $BFTBCD and $BENCH first" >&2
  exit 2
fi

PIDS=()
cleanup() {
  for pid in "${PIDS[@]:-}"; do
    kill "$pid" 2>/dev/null
  done
  wait 2>/dev/null
}
trap cleanup EXIT

LOG_DIR="$(mktemp -d)"
for r in 0 1 2 3; do
  "$BFTBCD" --config "$CONFIG" --replica "$r" >"$LOG_DIR/replica$r.log" 2>&1 &
  PIDS+=($!)
done

# Readiness: each daemon prints a "listening on" line once bound.
for i in $(seq 1 50); do
  ready=$(grep -l "listening on" "$LOG_DIR"/replica*.log 2>/dev/null | wc -l)
  [[ "$ready" -eq 4 ]] && break
  sleep 0.1
done
if [[ "$ready" -ne 4 ]]; then
  echo "run_live_smoke: replicas failed to start; logs:" >&2
  cat "$LOG_DIR"/replica*.log >&2
  exit 1
fi

"$BENCH" --config "$CONFIG" --smoke --json "$OUT_JSON"
status=$?
if [[ $status -ne 0 ]]; then
  echo "run_live_smoke: bench failed (exit $status); replica logs:" >&2
  tail -n 20 "$LOG_DIR"/replica*.log >&2
  exit 1
fi

python3 "$REPO_ROOT/scripts/check_bench_json.py" "$OUT_JSON"
