#!/usr/bin/env bash
# Live loopback smoke: start bftbcd clusters on 127.0.0.1, run
# bftbc_bench against them over real UDP, and validate the emitted bench
# JSON. This is the end-to-end proof that the simulator's protocol state
# machines also run deployed — CI runs it as the live-smoke job, and it
# works identically by hand:
#
#   scripts/run_live_smoke.sh [build_dir] [out.json]
#
# Two legs:
#   1. single shard — 4 replicas (f=1) from bench/cluster_localhost.json
#   2. two shards   — 8 replicas (two f=1 groups) from
#      bench/cluster_localhost_2shard.json, driven through the bench's
#      routing client with a zipfian read/write mix; artifact lands next
#      to out.json with a `_2shard` suffix.
#
# Exit 0 iff both benches completed and their artifacts pass
# scripts/check_bench_json.py.
set -u

BUILD_DIR="${1:-build}"
OUT_JSON="${2:-BENCH_live_smoke.json}"
OUT_JSON_2SHARD="${OUT_JSON%.json}_2shard.json"
REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
CONFIG="$REPO_ROOT/bench/cluster_localhost.json"
CONFIG_2SHARD="$REPO_ROOT/bench/cluster_localhost_2shard.json"
BFTBCD="$BUILD_DIR/tools/bftbcd"
BENCH="$BUILD_DIR/tools/bftbc_bench"

if [[ ! -x "$BFTBCD" || ! -x "$BENCH" ]]; then
  echo "run_live_smoke: build $BFTBCD and $BENCH first" >&2
  exit 2
fi

PIDS=()
cleanup() {
  for pid in "${PIDS[@]:-}"; do
    kill "$pid" 2>/dev/null
  done
  wait 2>/dev/null
}
trap cleanup EXIT

stop_daemons() {
  for pid in "${PIDS[@]:-}"; do
    kill "$pid" 2>/dev/null
  done
  wait 2>/dev/null
  PIDS=()
}

# wait_ready <log_dir> <count>: each daemon prints a "listening on" line
# once bound.
wait_ready() {
  local log_dir="$1" want="$2" ready=0
  for _ in $(seq 1 50); do
    ready=$(grep -l "listening on" "$log_dir"/replica*.log 2>/dev/null | wc -l)
    [[ "$ready" -eq "$want" ]] && return 0
    sleep 0.1
  done
  echo "run_live_smoke: replicas failed to start; logs:" >&2
  cat "$log_dir"/replica*.log >&2
  return 1
}

# ---------------------------------------------------------- leg 1: 1 shard
LOG_DIR="$(mktemp -d)"
for r in 0 1 2 3; do
  "$BFTBCD" --config "$CONFIG" --replica "$r" \
    >"$LOG_DIR/replica$r.log" 2>&1 &
  PIDS+=($!)
done
wait_ready "$LOG_DIR" 4 || exit 1

"$BENCH" --config "$CONFIG" --smoke --json "$OUT_JSON"
status=$?
if [[ $status -ne 0 ]]; then
  echo "run_live_smoke: bench failed (exit $status); replica logs:" >&2
  tail -n 20 "$LOG_DIR"/replica*.log >&2
  exit 1
fi
stop_daemons

# --------------------------------------------------------- leg 2: 2 shards
# Each shard is an independent f=1 group with its own keystore seed; the
# bench routes per key through shard::RoutingClient. The zipfian mixed
# workload exercises the cross-shard window and both groups' read paths.
LOG_DIR2="$(mktemp -d)"
for s in 0 1; do
  for r in 0 1 2 3; do
    "$BFTBCD" --config "$CONFIG_2SHARD" --shard "$s" --replica "$r" \
      >"$LOG_DIR2/replica_s${s}_r${r}.log" 2>&1 &
    PIDS+=($!)
  done
done
wait_ready "$LOG_DIR2" 8 || exit 1

"$BENCH" --config "$CONFIG_2SHARD" --smoke --json "$OUT_JSON_2SHARD" \
  --key-dist zipfian --theta 0.9 --read-fraction 0.2
status=$?
if [[ $status -ne 0 ]]; then
  echo "run_live_smoke: 2-shard bench failed (exit $status); logs:" >&2
  tail -n 20 "$LOG_DIR2"/replica*.log >&2
  exit 1
fi
stop_daemons

python3 "$REPO_ROOT/scripts/check_bench_json.py" "$OUT_JSON" \
  "$OUT_JSON_2SHARD"
