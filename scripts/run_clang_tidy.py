#!/usr/bin/env python3
"""Run clang-tidy over the tree with the repo's .clang-tidy config.

Thin wrapper so local dev boxes and CI share one entry point:

  * Locates a clang-tidy binary (plain or versioned). Without one the
    script SKIPS with exit 0 — the container image only ships gcc — so
    `ctest`/pre-push hooks stay green locally. CI passes --require,
    which turns a missing binary into a hard failure.
  * Needs a compile database. Point --build-dir at a build tree
    configured with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON.
  * Lints every .cpp under src/ (headers ride along via
    HeaderFilterRegex) and treats any diagnostic as failure
    (WarningsAsErrors: '*' in .clang-tidy).

Usage:
  run_clang_tidy.py [--build-dir build] [--require] [-j N]
                    [--changed-only [--base REF]] [FILE...]

--changed-only lints only the src/ C++ files that differ from the
merge-base with --base (default: origin/main, falling back to main) —
the PR fast path. A full sweep still runs on pushes to main.

Exit status: 0 clean or skipped, 1 diagnostics found, 2 usage/setup
error.
"""

from __future__ import annotations

import argparse
import concurrent.futures
import os
import shutil
import subprocess
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

# Newest first; plain name last so an explicit PATH override wins only
# when no versioned binary exists.
CANDIDATES = [f"clang-tidy-{v}" for v in range(21, 13, -1)] + ["clang-tidy"]


def find_clang_tidy() -> str | None:
    for name in CANDIDATES:
        path = shutil.which(name)
        if path:
            return path
    return None


def discover_sources() -> list[str]:
    sources = []
    for dirpath, dirnames, filenames in os.walk(
        os.path.join(REPO_ROOT, "src")
    ):
        dirnames.sort()
        for name in sorted(filenames):
            if name.endswith((".cc", ".cpp", ".cxx")):
                sources.append(os.path.join(dirpath, name))
    return sources


def changed_sources(base: str | None) -> list[str] | None:
    """C++ sources under src/ changed vs the merge-base with `base`.

    Returns None when git cannot answer (shallow clone without the base
    ref, not a checkout) — callers fall back to the full sweep.
    """
    refs = [base] if base else ["origin/main", "main"]
    for ref in refs:
        mb = subprocess.run(
            ["git", "merge-base", "HEAD", ref],
            capture_output=True,
            text=True,
            check=False,
            cwd=REPO_ROOT,
        )
        if mb.returncode != 0:
            continue
        diff = subprocess.run(
            ["git", "diff", "--name-only", "--diff-filter=d",
             mb.stdout.strip(), "HEAD"],
            capture_output=True,
            text=True,
            check=False,
            cwd=REPO_ROOT,
        )
        if diff.returncode != 0:
            continue
        out = []
        for rel in diff.stdout.splitlines():
            if rel.startswith("src/") and rel.endswith(
                (".cc", ".cpp", ".cxx")
            ):
                path = os.path.join(REPO_ROOT, rel)
                if os.path.exists(path):
                    out.append(path)
        return out
    return None


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--build-dir",
        default=os.path.join(REPO_ROOT, "build"),
        help="build tree holding compile_commands.json (default: build/)",
    )
    parser.add_argument(
        "--require",
        action="store_true",
        help="fail (exit 2) instead of skipping when clang-tidy is "
        "not installed — CI sets this",
    )
    parser.add_argument(
        "-j",
        type=int,
        default=os.cpu_count() or 1,
        help="parallel clang-tidy processes",
    )
    parser.add_argument(
        "--changed-only",
        action="store_true",
        help="lint only src/ files changed vs the merge-base with "
        "--base (PR fast path; falls back to the full sweep if git "
        "cannot resolve the base)",
    )
    parser.add_argument(
        "--base",
        default=None,
        help="base ref for --changed-only (default: origin/main, then "
        "main)",
    )
    parser.add_argument(
        "files", nargs="*", help="specific files (default: src/**/*.cpp)"
    )
    args = parser.parse_args(argv[1:])

    if args.changed_only and args.files:
        print(
            "error: --changed-only and explicit FILE arguments are "
            "mutually exclusive",
            file=sys.stderr,
        )
        return 2

    tidy = find_clang_tidy()
    if tidy is None:
        if args.require:
            print(
                "error: clang-tidy not found but --require was given",
                file=sys.stderr,
            )
            return 2
        print(
            "run_clang_tidy: SKIPPED (clang-tidy not installed; the CI "
            "clang-tidy job runs this for real)"
        )
        return 0

    compdb = os.path.join(args.build_dir, "compile_commands.json")
    if not os.path.exists(compdb):
        print(
            f"error: {compdb} not found; configure with "
            "-DCMAKE_EXPORT_COMPILE_COMMANDS=ON first",
            file=sys.stderr,
        )
        return 2

    if args.changed_only:
        sources = changed_sources(args.base)
        if sources is None:
            print(
                "run_clang_tidy: cannot resolve the merge-base "
                "(shallow clone?); falling back to the full sweep"
            )
            sources = discover_sources()
        elif not sources:
            print("run_clang_tidy: OK (no src/ C++ changes vs base)")
            return 0
    else:
        sources = args.files or discover_sources()
    if not sources:
        print("error: no sources to lint", file=sys.stderr)
        return 2

    def run_one(src: str) -> tuple[str, int, str]:
        proc = subprocess.run(
            [tidy, "-p", args.build_dir, "--quiet", src],
            capture_output=True,
            text=True,
            check=False,
        )
        return src, proc.returncode, proc.stdout + proc.stderr

    failures = 0
    with concurrent.futures.ThreadPoolExecutor(
        max_workers=max(1, args.j)
    ) as pool:
        for src, rc, out in pool.map(run_one, sources):
            rel = os.path.relpath(src, REPO_ROOT)
            if rc != 0:
                failures += 1
                print(f"--- {rel}")
                print(out.rstrip())
            else:
                print(f"ok  {rel}")

    if failures:
        print(
            f"run_clang_tidy: {failures}/{len(sources)} file(s) with "
            "diagnostics",
            file=sys.stderr,
        )
        return 1
    print(f"run_clang_tidy: OK ({len(sources)} files clean)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
