#!/usr/bin/env python3
"""Validate BENCH_*.json artifacts against the bench-report schema.

Schema (schema_version 1, produced by src/metrics/bench_report.cpp):

  {
    "schema_version": 1,
    "bench":   "<bench_name>",
    "config":  { "<key>": "<string value>", ... },
    "counters":   { "<name>": <non-negative int>, ... },
    "gauges":     { "<name>": <number>, ... },
    "summaries":  { "<name>": {count, mean, p50, p90, p99, p999,
                               min, max, stddev}, ... },
    "histograms": { "<name>": {total, mean, max,
                               buckets: {"<value>": <count>}}, ... }
  }

Checks, per file:
  - parses as JSON, all five top-level sections present with right types
  - schema_version == 1 and "bench" is a non-empty string
  - the sig-cache counters the CI perf trajectory tracks are present
  - at least one latency summary (a "*_ms" summary) with count > 0 and
    internally consistent stats (min <= p50 <= p99 <= p999 <= max)
  - histogram totals equal the sum of their buckets

Usage:
  check_bench_json.py FILE [FILE...]   # validate specific artifacts
  check_bench_json.py --committed      # validate every BENCH_*.json
                                       # committed at the repo root (the
                                       # lint CI job runs this mode)
  check_bench_json.py --compare OLD NEW [--threshold PCT]
      Validate both reports, then print per-counter deltas and per-op
      derived ratios (bytes_sent/write, msgs_sent/op, sig_verify_calls/op,
      encode_calls/op, sign/op, mac_sign/op, mac_verify/op). Exits 1 when
      any watched ratio in NEW regressed (grew) more than PCT percent
      over OLD (default 10). Ratios whose counters are absent from either
      report are skipped, so MAC-less benches compare unchanged.
Exit status: 0 if every file passes, 1 otherwise, 2 on usage error.
"""

import glob
import json
import numbers
import os
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

REQUIRED_SECTIONS = {
    "config": dict,
    "counters": dict,
    "gauges": dict,
    "summaries": dict,
    "histograms": dict,
}
REQUIRED_COUNTERS = ("sig_cache_hit", "sig_cache_miss", "sig_verify_calls")
SUMMARY_FIELDS = (
    "count", "mean", "p50", "p90", "p99", "p999", "min", "max", "stddev",
)


def fail(errors, path, msg):
    errors.append(f"{path}: {msg}")


def check_summary(errors, path, name, s):
    if not isinstance(s, dict):
        fail(errors, path, f"summary {name!r} is not an object")
        return
    for field in SUMMARY_FIELDS:
        if field not in s:
            fail(errors, path, f"summary {name!r} missing field {field!r}")
            return
        if not isinstance(s[field], numbers.Real):
            fail(errors, path, f"summary {name!r} field {field!r} not numeric")
            return
    if s["count"] > 0 and not (
        s["min"] <= s["p50"] <= s["p99"] <= s["p999"] <= s["max"]
    ):
        fail(
            errors,
            path,
            f"summary {name!r} percentiles out of order: "
            f"min={s['min']} p50={s['p50']} p99={s['p99']} "
            f"p999={s['p999']} max={s['max']}",
        )


def check_histogram(errors, path, name, h):
    if not isinstance(h, dict):
        fail(errors, path, f"histogram {name!r} is not an object")
        return
    for field in ("total", "mean", "max", "buckets"):
        if field not in h:
            fail(errors, path, f"histogram {name!r} missing field {field!r}")
            return
    if not isinstance(h["buckets"], dict):
        fail(errors, path, f"histogram {name!r} buckets is not an object")
        return
    bucket_sum = sum(h["buckets"].values())
    if bucket_sum != h["total"]:
        fail(
            errors,
            path,
            f"histogram {name!r} total={h['total']} != bucket sum {bucket_sum}",
        )


def check_file(path):
    errors = []
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return [f"{path}: unreadable or invalid JSON: {e}"]

    if not isinstance(doc, dict):
        return [f"{path}: top level is not an object"]
    if doc.get("schema_version") != 1:
        fail(errors, path, f"schema_version={doc.get('schema_version')!r}, want 1")
    bench = doc.get("bench")
    if not isinstance(bench, str) or not bench:
        fail(errors, path, "missing or empty 'bench' name")

    for section, want_type in REQUIRED_SECTIONS.items():
        if not isinstance(doc.get(section), want_type):
            fail(errors, path, f"section {section!r} missing or wrong type")
    if errors:
        return errors

    counters = doc["counters"]
    for name in REQUIRED_COUNTERS:
        if name not in counters:
            fail(errors, path, f"required counter {name!r} missing")
    for name, v in counters.items():
        if not isinstance(v, int) or v < 0:
            fail(errors, path, f"counter {name!r} is not a non-negative int")

    for name, s in doc["summaries"].items():
        check_summary(errors, path, name, s)
    for name, h in doc["histograms"].items():
        check_histogram(errors, path, name, h)

    latency = [
        n
        for n, s in doc["summaries"].items()
        if n.endswith("_ms") and isinstance(s, dict) and s.get("count", 0) > 0
    ]
    if not latency:
        fail(errors, path, "no populated '*_ms' latency summary")

    return errors


# ----------------------------------------------------------- --compare mode

# Derived per-op ratios watched for regressions. Each entry maps a label
# to (counter, divisor) where divisor is "write" (sum of client/*/writes)
# or "op" (writes + reads). Lower is better for all of them.
WATCHED_RATIOS = (
    ("bytes_sent/write", "net/bytes_sent", "write"),
    ("msgs_sent/op", "net/msgs_sent", "op"),
    ("sig_verify_calls/op", "sig_verify_calls", "op"),
    ("encode_calls/op", "net/encode_calls", "op"),
    # Authentication work per op: RSA signatures minted, and the MAC
    # sign/verify volume of the §3.3.2 authenticator mode. Absent
    # counters (benches that never enable MAC mode) are skipped.
    ("sign/op", "sign", "op"),
    ("mac_sign/op", "mac_sign", "op"),
    ("mac_verify/op", "mac_verify", "op"),
)


def client_op_counts(counters):
    """Returns (writes, ops) summed over every client/*/ counter."""
    writes = reads = 0
    for name, v in counters.items():
        parts = name.split("/")
        if len(parts) == 3 and parts[0] == "client":
            if parts[2] == "writes":
                writes += v
            elif parts[2] == "reads":
                reads += v
    return writes, writes + reads


def derived_ratios(counters):
    writes, ops = client_op_counts(counters)
    ratios = {}
    for label, counter, basis in WATCHED_RATIOS:
        denom = writes if basis == "write" else ops
        if denom > 0 and counter in counters:
            ratios[label] = counters[counter] / denom
    return ratios


def compare_reports(old_path, new_path, threshold_pct):
    """Prints counter deltas + ratio deltas; returns exit status."""
    for path in (old_path, new_path):
        errs = check_file(path)
        if errs:
            for e in errs:
                print(f"FAIL {e}", file=sys.stderr)
            return 1
    with open(old_path, encoding="utf-8") as f:
        old = json.load(f)
    with open(new_path, encoding="utf-8") as f:
        new = json.load(f)
    old_c, new_c = old["counters"], new["counters"]

    print(f"compare: OLD={old_path} NEW={new_path}")
    print(f"{'counter':<40} {'old':>12} {'new':>12} {'delta':>12}")
    for name in sorted(set(old_c) | set(new_c)):
        ov, nv = old_c.get(name), new_c.get(name)
        if ov is None:
            print(f"{name:<40} {'-':>12} {nv:>12} {'(added)':>12}")
        elif nv is None:
            print(f"{name:<40} {ov:>12} {'-':>12} {'(removed)':>12}")
        elif ov != nv:
            print(f"{name:<40} {ov:>12} {nv:>12} {nv - ov:>+12}")

    old_r, new_r = derived_ratios(old_c), derived_ratios(new_c)
    regressions = []
    print(f"\n{'ratio':<40} {'old':>12} {'new':>12} {'change':>9}")
    for label, _, _ in WATCHED_RATIOS:
        if label not in old_r or label not in new_r:
            print(f"{label:<40} missing counters in one report, skipped")
            continue
        ov, nv = old_r[label], new_r[label]
        pct = 0.0 if ov == 0 else (nv - ov) / ov * 100.0
        print(f"{label:<40} {ov:>12.3f} {nv:>12.3f} {pct:>+8.2f}%")
        if ov > 0 and pct > threshold_pct:
            regressions.append((label, pct))
    for label, pct in regressions:
        print(
            f"FAIL ratio {label!r} regressed {pct:+.2f}% "
            f"(threshold {threshold_pct:g}%)",
            file=sys.stderr,
        )
    return 1 if regressions else 0


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    if argv[1] == "--compare":
        rest = argv[2:]
        threshold = 10.0
        if "--threshold" in rest:
            i = rest.index("--threshold")
            try:
                threshold = float(rest[i + 1])
            except (IndexError, ValueError):
                print("--threshold needs a numeric argument", file=sys.stderr)
                return 2
            del rest[i : i + 2]
        if len(rest) != 2:
            print("--compare takes exactly OLD and NEW", file=sys.stderr)
            return 2
        return compare_reports(rest[0], rest[1], threshold)
    if argv[1] == "--committed":
        if len(argv) > 2:
            print("--committed takes no extra arguments", file=sys.stderr)
            return 2
        paths = sorted(glob.glob(os.path.join(REPO_ROOT, "BENCH_*.json")))
        if not paths:
            # A repo with no committed baselines is fine; one with a
            # malformed baseline is not — so absence is a pass.
            print("check_bench_json: no committed BENCH_*.json to check")
            return 0
    else:
        paths = argv[1:]
    all_errors = []
    for path in paths:
        errs = check_file(path)
        if errs:
            all_errors.extend(errs)
        else:
            with open(path, encoding="utf-8") as f:
                doc = json.load(f)
            print(
                f"OK {path}: bench={doc['bench']} "
                f"{len(doc['counters'])} counters, "
                f"{len(doc['summaries'])} summaries, "
                f"{len(doc['histograms'])} histograms"
            )
    for e in all_errors:
        print(f"FAIL {e}", file=sys.stderr)
    return 1 if all_errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
