// E6 + E7 — Lurking writes after a bad client stops (paper §5, §6.4, §7).
//
// Claims:
//   base protocol      : at most 1 lurking write      (Theorem 1)
//   optimized protocol : at most 2 lurking writes     (Theorem 2)
//   strong variant (§7): lurking writes masked after <= 2 consecutive
//                        correct-client overwrites (<= 4 optimized)
//
// For each protocol and many seeds: a Byzantine client stockpiles writes
// (goal = 5), hands them to a colluder, stops; the colluder replays; a
// correct client keeps operating. The BFT-linearizability checker counts
// the lurking writes actually observed.
#include "checker/bft_linearizability.h"
#include "faults/byzantine_client.h"
#include "harness/cluster.h"
#include "harness/recording.h"
#include "harness/table.h"
#include "metrics/bench_report.h"

using namespace bftbc;
using harness::Cluster;
using harness::ClusterOptions;
using harness::Recorder;
using harness::Table;

namespace {

struct RunResult {
  int stashed = 0;
  int lurking = 0;
  int overwrites_to_mask = 0;
  bool safe = true;
};

RunResult run_attack(bool optimized, bool strong, std::uint64_t seed,
                     metrics::BenchReport& report) {
  ClusterOptions o;
  o.optimized = optimized;
  o.strong = strong;
  o.seed = seed;
  Cluster cluster(o);
  checker::History history;
  Recorder rec(cluster, history);

  auto& good = cluster.add_client(1);
  (void)rec.write(good, 1, to_bytes("pre"));
  (void)rec.read(good, 1);

  auto transport = cluster.make_transport(harness::client_node(66));
  faults::LurkingWriteStasher stasher(cluster.config(), 66,
                                      cluster.keystore(), *transport,
                                      cluster.sim(), cluster.replica_nodes(),
                                      cluster.rng().split());
  std::optional<faults::LurkingWriteStasher::Outcome> outcome;
  stasher.attack(1, /*goal=*/5, /*use_optlist=*/optimized,
                 [&](faults::LurkingWriteStasher::Outcome out) {
                   outcome = std::move(out);
                 });
  cluster.run_until([&] { return outcome.has_value(); });

  auto ctransport = cluster.make_transport(harness::client_node(67));
  faults::Colluder colluder(*ctransport, cluster.replica_nodes());
  for (auto& env : outcome->stashed) colluder.stash(std::move(env));

  rec.stop_client(66);
  colluder.unleash();
  cluster.settle();

  for (int i = 0; i < 6; ++i) {
    (void)rec.read(good, 1);
    (void)rec.write(good, 1, to_bytes("post" + std::to_string(i)));
  }
  (void)rec.read(good, 1);

  auto check = checker::check_bft_linearizability(history, {66});
  RunResult r;
  r.stashed = static_cast<int>(outcome->stashed.size());
  if (check.lurking.count(66)) {
    r.lurking = check.lurking.at(66).count;
    r.overwrites_to_mask = check.lurking.at(66).overwrites_before_last_surface;
  }
  r.safe = check.linearizable && check.reads_authentic;
  report.merge(cluster.snapshot_metrics());
  return r;
}

// ---------------------------------------------------------------------
// E7: the colluding-cartel attack of §7.2.
//
// "a set C of colluding clients can prepare a series of |C| writes with
//  successive timestamps, leaving a lurking write that requires |C|
//  writes by correct clients to ensure that the lurking write will no
//  longer be seen."
//
// Cartel client i justifies succ(t_{i-1}) with client i-1's prepare
// certificate (for a write that never happened). The strong variant
// demands a WRITE certificate for the justification's timestamp, which a
// never-performed write cannot have — so the chain dies at length 1 and
// two good overwrites mask everything.

// Returns: number of stashes obtained, and whether any lurking write
// surfaced after `overwrites` good writes post-stop.
struct CartelResult {
  int stashed = 0;
  bool surfaced = false;
};

CartelResult run_cartel(bool strong, int cartel_size, int overwrites,
                        std::uint64_t seed, metrics::BenchReport& report) {
  ClusterOptions o;
  o.strong = strong;
  o.seed = seed;
  Cluster cluster(o);
  checker::History history;
  Recorder rec(cluster, history);

  auto& good = cluster.add_client(1);
  (void)rec.write(good, 1, to_bytes("pre"));
  (void)rec.read(good, 1);

  // The genuine starting material: the committed prepare certificate and
  // (for strong mode) the good client's write certificate for it.
  const quorum::PrepareCertificate base_cert =
      cluster.replica(0).find_object(1)->pcert();
  std::optional<quorum::WriteCertificate> base_wcert =
      good.last_write_cert(1);

  std::vector<std::unique_ptr<rpc::Transport>> transports;
  std::vector<std::unique_ptr<faults::LurkingWriteStasher>> cartel;
  auto ctransport = cluster.make_transport(harness::client_node(99));
  faults::Colluder colluder(*ctransport, cluster.replica_nodes());

  quorum::PrepareCertificate justification = base_cert;
  std::optional<quorum::WriteCertificate> wcert = base_wcert;
  int stashed_total = 0;
  for (int i = 0; i < cartel_size; ++i) {
    const quorum::ClientId id = static_cast<quorum::ClientId>(60 + i);
    transports.push_back(cluster.make_transport(harness::client_node(id)));
    cartel.push_back(std::make_unique<faults::LurkingWriteStasher>(
        cluster.config(), id, cluster.keystore(), *transports.back(),
        cluster.sim(), cluster.replica_nodes(), cluster.rng().split()));
    std::optional<faults::LurkingWriteStasher::Outcome> out;
    cartel.back()->attack_chained(
        1, justification, wcert, /*goal=*/1,
        [&](faults::LurkingWriteStasher::Outcome o) { out = std::move(o); });
    cluster.run_until([&] { return out.has_value(); });
    if (out->stashed.empty()) break;  // the chain died (strong variant)
    ++stashed_total;
    for (auto& env : out->stashed) colluder.stash(std::move(env));
    justification = out->certs.back();
    wcert = std::nullopt;  // no write certificate exists for the chain
  }

  std::set<quorum::ClientId> bad;
  for (int i = 0; i < cartel_size; ++i) {
    rec.stop_client(static_cast<quorum::ClientId>(60 + i));
    bad.insert(static_cast<quorum::ClientId>(60 + i));
  }

  // Good clients overwrite m times BEFORE the colluder strikes.
  for (int m = 0; m < overwrites; ++m) {
    (void)rec.write(good, 1, to_bytes("mask" + std::to_string(m)));
  }
  colluder.unleash();
  cluster.settle();
  for (int i = 0; i < 3; ++i) (void)rec.read(good, 1);

  auto check = checker::check_bft_linearizability(history, bad);
  CartelResult r;
  r.stashed = stashed_total;
  for (const auto& [c, info] : check.lurking) {
    if (info.count > 0) r.surfaced = true;
  }
  report.merge(cluster.snapshot_metrics());
  return r;
}

void run_cartel_experiment(metrics::BenchReport& report) {
  harness::print_experiment_header(
      "E7: colluding cartel vs the strong variant (7.2)",
      "plain BFT-BC: |C| colluders chain |C| prepares, so a lurking write "
      "survives up to |C| good overwrites; strong variant: the chain dies "
      "at length 1 and 2 overwrites mask everything");

  Table table({"protocol", "cartel size", "stashes chained",
               "min overwrites to mask", "claimed"});
  const std::vector<int> cartel_sizes =
      report.smoke() ? std::vector<int>{1, 2} : std::vector<int>{1, 2, 3, 4};
  for (bool strong : {false, true}) {
    for (int k : cartel_sizes) {
      int stashed = 0;
      int min_mask = -1;
      for (int m = 0; m <= k + 2; ++m) {
        CartelResult r = run_cartel(strong, k, m, 1000 + k, report);
        stashed = r.stashed;
        if (!r.surfaced) {
          min_mask = m;
          break;
        }
      }
      const std::string key = std::string("cartel/") +
                              (strong ? "strong" : "base") + "/k" +
                              std::to_string(k);
      report.registry().gauge(key + "/stashes_chained")
          .set(static_cast<double>(stashed));
      report.registry().gauge(key + "/min_overwrites_to_mask")
          .set(static_cast<double>(min_mask));
      table.add_row({strong ? "strong" : "base", std::to_string(k),
                     std::to_string(stashed),
                     min_mask < 0 ? ">" + std::to_string(k + 2)
                                  : std::to_string(min_mask),
                     strong ? "<= 2" : "up to |C|"});
    }
  }
  table.print();
  std::cout << "\nBase: masking needs ~cartel-size overwrites (the chain "
               "climbs one timestamp per colluder). Strong: the cartel "
               "cannot chain past the committed frontier, so a constant "
               "number of overwrites always suffices.\n";
}

}  // namespace

int main(int argc, char** argv) {
  metrics::BenchArgs args = metrics::parse_bench_args(argc, argv);
  metrics::BenchReport report("bench_lurking", args);
  const int n_seeds = report.smoke() ? 2 : 10;
  report.set_config("seeds_per_mode", static_cast<std::int64_t>(n_seeds));

  harness::print_experiment_header(
      "E6/E7: lurking writes after a Byzantine client stops",
      "base <= 1 lurking write (Thm 1); optimized <= 2 (Thm 2); strong "
      "variant masks them after <= 2 correct overwrites (7)");

  struct Mode {
    const char* name;
    bool optimized;
    bool strong;
    int claimed_max;
  };
  const Mode modes[] = {
      {"base", false, false, 1},
      {"optimized", true, false, 2},
      {"strong", false, true, 1},
      {"strong+opt", true, true, 2},
  };

  Table table({"protocol", "seeds", "stash goal", "max stashed",
               "max lurking observed", "claimed max", "all runs atomic"});
  for (const Mode& m : modes) {
    int max_stashed = 0, max_lurking = 0;
    bool all_safe = true;
    for (std::uint64_t seed = 1; seed <= static_cast<std::uint64_t>(n_seeds);
         ++seed) {
      RunResult r = run_attack(m.optimized, m.strong, seed * 101, report);
      max_stashed = std::max(max_stashed, r.stashed);
      max_lurking = std::max(max_lurking, r.lurking);
      all_safe = all_safe && r.safe;
    }
    report.registry().gauge(std::string(m.name) + "/max_stashed")
        .set(static_cast<double>(max_stashed));
    report.registry().gauge(std::string(m.name) + "/max_lurking")
        .set(static_cast<double>(max_lurking));
    if (!all_safe) report.counter("atomicity_violations").inc();
    table.add_row({m.name, std::to_string(n_seeds), "5",
                   std::to_string(max_stashed), std::to_string(max_lurking),
                   std::to_string(m.claimed_max), all_safe ? "yes" : "NO"});
  }
  table.print();

  std::cout
      << "\nThe attacker ASKS for 5 lurking writes every run; the protocol "
         "caps what it can stash (1 base / 2 optimized) and the checker "
         "confirms no more ever surface. The strong variant additionally "
         "refuses prepares without a predecessor write certificate, so the "
         "simple stasher gets nothing at all.\n";

  run_cartel_experiment(report);
  return report.finish();
}
