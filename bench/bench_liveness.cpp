// E9 — Liveness guarantees (paper §5.1).
//
// "good clients can always execute read operations in the time it takes
//  for two client RPCs to complete at 2f+1 replicas ... the write
//  protocol ... in the time for three client RPCs"
//
// Measures good-client operation latency (in units of one RPC round trip)
// under: a quiet network, f crashed replicas, heavy message loss, and
// active Byzantine clients — the latency must stay within a small
// constant number of round trips (loss adds retransmission delays, but
// operations always terminate).
#include "faults/byzantine_client.h"
#include "harness/cluster.h"
#include "harness/table.h"
#include "metrics/bench_report.h"

using namespace bftbc;
using harness::Cluster;
using harness::ClusterOptions;
using harness::Table;

namespace {

struct LatencyResult {
  Summary write_rtts;  // latency / one-RTT
  Summary read_rtts;
  bool all_completed = true;
};

LatencyResult run(const ClusterOptions& base_options, int crashes,
                  bool byz_clients, int ops, metrics::BenchReport& report) {
  ClusterOptions o = base_options;
  Cluster cluster(o);
  // One round trip = 2 * (base_delay + jitter_mean) as a reference unit.
  const double rtt = 2.0 * static_cast<double>(o.link.base_delay +
                                               o.link.jitter_mean);

  for (int i = 0; i < crashes; ++i)
    cluster.crash_replica(static_cast<quorum::ReplicaId>(i));

  std::unique_ptr<rpc::Transport> t1, t2;
  std::unique_ptr<faults::TimestampHog> hog;
  std::unique_ptr<faults::PartialWriter> partial;
  if (byz_clients) {
    t1 = cluster.make_transport(harness::client_node(66));
    hog = std::make_unique<faults::TimestampHog>(
        cluster.config(), 66, cluster.keystore(), *t1, cluster.sim(),
        cluster.replica_nodes(), cluster.rng().split());
    hog->attack(1, 1'000'000, 50, [](faults::TimestampHog::Outcome) {});
    t2 = cluster.make_transport(harness::client_node(67));
    partial = std::make_unique<faults::PartialWriter>(
        cluster.config(), 67, cluster.keystore(), *t2, cluster.sim(),
        cluster.replica_nodes(), cluster.rng().split());
    partial->attack(1, to_bytes("skew"), [](bool) {});
  }

  LatencyResult result;
  auto& client = cluster.add_client(1);
  for (int i = 0; i < ops; ++i) {
    sim::Time start = cluster.sim().now();
    auto w = cluster.write(client, 1, to_bytes("v" + std::to_string(i)));
    if (!w.is_ok()) {
      result.all_completed = false;
      continue;
    }
    result.write_rtts.add(static_cast<double>(cluster.sim().now() - start) /
                          rtt);
    start = cluster.sim().now();
    auto r = cluster.read(client, 1);
    if (!r.is_ok()) {
      result.all_completed = false;
      continue;
    }
    result.read_rtts.add(static_cast<double>(cluster.sim().now() - start) /
                         rtt);
  }
  report.merge(cluster.snapshot_metrics());
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  metrics::BenchArgs args = metrics::parse_bench_args(argc, argv);
  metrics::BenchReport report("bench_liveness", args);
  const int ops = report.smoke() ? 5 : 20;
  report.set_config("ops_per_scenario", static_cast<std::int64_t>(ops));

  harness::print_experiment_header(
      "E9: liveness under faults",
      "reads complete in ~2 RPC round trips, writes in ~3, regardless of "
      "crashed replicas or Byzantine client activity; message loss only "
      "adds retransmission delay (5.1)");

  Table table({"scenario", "write RTTs (mean/p99)", "read RTTs (mean/p99)",
               "claimed", "all ops completed"});

  auto row = [&](const char* name, const ClusterOptions& o, int crashes,
                 bool byz, const char* claim) {
    LatencyResult r = run(o, crashes, byz, ops, report);
    std::string key(name);
    for (char& ch : key) {
      if (ch == ' ' || ch == ',' || ch == '%' || ch == '+' || ch == '=')
        ch = '_';
    }
    report.add_summary(key + "/write_rtts", r.write_rtts);
    report.add_summary(key + "/read_rtts", r.read_rtts);
    if (!r.all_completed) report.counter("scenarios_with_incomplete_ops").inc();
    table.add_row({name,
                   Table::num(r.write_rtts.mean()) + " / " +
                       Table::num(r.write_rtts.p99()),
                   Table::num(r.read_rtts.mean()) + " / " +
                       Table::num(r.read_rtts.p99()),
                   claim, r.all_completed ? "yes" : "NO"});
  };

  ClusterOptions quiet;
  quiet.seed = 21;
  row("quiet, f=1", quiet, 0, false, "w~3, r~1-2");

  ClusterOptions f2 = quiet;
  f2.f = 2;
  row("quiet, f=2", f2, 0, false, "w~3, r~1-2");

  row("f crashed replicas", quiet, 1, false, "w~3, r~1-2");

  ClusterOptions lossy = quiet;
  lossy.link.loss_probability = 0.25;
  row("25% message loss", lossy, 0, false, "finite (retransmission)");

  row("Byzantine clients active", quiet, 0, true, "w~3, r~1-2");

  ClusterOptions worst = quiet;
  worst.link.loss_probability = 0.15;
  row("crash + loss + byz clients", worst, 1, true, "finite");

  table.print();

  std::cout << "\nRTT unit = 2*(base delay + mean jitter). Writes cluster "
               "near 3 round trips and reads near 1-2; only message loss "
               "(retransmission timers) stretches the tail, never Byzantine "
               "behavior — the 5.1 liveness claim.\n";
  return report.finish();
}
