// Supplementary — wall-clock throughput of the full stack.
//
// Not a paper claim (the paper reports no absolute numbers); this bench
// documents the cost of this implementation itself: complete simulated
// write/read operations per wall-clock second, including serialization,
// HMAC-backend signatures, certificate validation at every hop, and the
// event-driven network. Useful for spotting performance regressions in
// the repo and for sizing larger simulation studies.
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "harness/cluster.h"
#include "metrics/bench_report.h"
#include "util/zipf.h"

using namespace bftbc;

namespace {

void BM_Write(benchmark::State& state) {
  harness::ClusterOptions o;
  o.f = static_cast<std::uint32_t>(state.range(0));
  o.optimized = state.range(1) != 0;
  harness::Cluster cluster(o);
  auto& c = cluster.add_client(1);
  (void)cluster.write(c, 1, to_bytes("warmup"));
  int i = 0;
  for (auto _ : state) {
    auto w = cluster.write(c, 1, to_bytes("v" + std::to_string(i++)));
    if (!w.is_ok()) state.SkipWithError("write failed");
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Write)
    ->Args({1, 0})
    ->Args({1, 1})
    ->Args({3, 0})
    ->Args({3, 1})
    ->ArgNames({"f", "opt"})
    ->Unit(benchmark::kMicrosecond);

void BM_Read(benchmark::State& state) {
  harness::ClusterOptions o;
  o.f = static_cast<std::uint32_t>(state.range(0));
  harness::Cluster cluster(o);
  auto& c = cluster.add_client(1);
  (void)cluster.write(c, 1, to_bytes("value"));
  for (auto _ : state) {
    auto r = cluster.read(c, 1);
    if (!r.is_ok()) state.SkipWithError("read failed");
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Read)->Arg(1)->Arg(3)->ArgNames({"f"})->Unit(
    benchmark::kMicrosecond);

void BM_CertificateValidation(benchmark::State& state) {
  const auto f = static_cast<std::uint32_t>(state.range(0));
  const quorum::QuorumConfig config = quorum::QuorumConfig::bft_bc(f);
  crypto::Keystore ks(crypto::SignatureScheme::kHmacSim, 5);
  const crypto::Digest h = crypto::sha256(as_bytes_view("v"));
  const quorum::Timestamp ts{3, 1};
  quorum::SignatureSet sigs;
  const Bytes stmt = quorum::prepare_reply_statement(1, ts, h);
  for (quorum::ReplicaId r = 0; r < config.q; ++r) {
    auto signer = ks.register_principal(quorum::replica_principal(r));
    sigs[r] = signer.sign(stmt).value();
  }
  const quorum::PrepareCertificate cert(1, ts, h, sigs);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cert.validate(config, ks));
  }
}
BENCHMARK(BM_CertificateValidation)
    ->Arg(1)
    ->Arg(3)
    ->Arg(5)
    ->ArgNames({"f"})
    ->Unit(benchmark::kMicrosecond);

void BM_EnvelopeRoundtrip(benchmark::State& state) {
  rpc::Envelope env;
  env.type = rpc::MsgType::kWrite;
  env.rpc_id = 42;
  env.sender = 7;
  env.body = Bytes(static_cast<std::size_t>(state.range(0)), 0xab);
  for (auto _ : state) {
    Bytes wire = env.encode();
    benchmark::DoNotOptimize(rpc::Envelope::decode(wire));
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(env.body.size()));
}
BENCHMARK(BM_EnvelopeRoundtrip)->Arg(128)->Arg(4096);

}  // namespace

int main(int argc, char** argv) {
  metrics::BenchArgs args = metrics::parse_bench_args(argc, argv);

  // Workload-shape knobs, stripped from argv by hand because the
  // remaining flags flow into benchmark::Initialize (which rejects
  // anything it does not recognize):
  //   --key-dist fixed|uniform|zipfian   key popularity for the workload
  //   --theta <t>                        zipfian skew, 0 <= t < 1
  //   --read-fraction <r>                read share of the measured mix
  // Defaults reproduce the historical workload exactly (fixed round-robin
  // keys; reads == writes, i.e. r = 0.5).
  std::string key_dist = "fixed";
  double theta = 0.99;
  double read_fraction = 0.5;
  std::vector<char*> rest_argv;
  for (int i = 0; i < args.argc; ++i) {
    const std::string a = args.argv[i];
    auto take = [&](const std::string& name, std::string& out) {
      if (a == "--" + name && i + 1 < args.argc) {
        out = args.argv[++i];
        return true;
      }
      const std::string prefix = "--" + name + "=";
      if (a.rfind(prefix, 0) == 0) {
        out = a.substr(prefix.size());
        return true;
      }
      return false;
    };
    std::string v;
    if (take("key-dist", v)) {
      key_dist = v;
    } else if (take("theta", v)) {
      theta = std::strtod(v.c_str(), nullptr);
    } else if (take("read-fraction", v)) {
      read_fraction = std::strtod(v.c_str(), nullptr);
    } else {
      rest_argv.push_back(args.argv[i]);
    }
  }
  args.argc = static_cast<int>(rest_argv.size());
  args.argv = rest_argv.data();
  if (key_dist != "fixed" && key_dist != "uniform" && key_dist != "zipfian") {
    std::fprintf(stderr, "bench_throughput: unknown --key-dist '%s'\n",
                 key_dist.c_str());
    return 2;
  }
  if (theta < 0.0 || theta >= 1.0 || read_fraction < 0.0 ||
      read_fraction > 0.95) {
    std::fprintf(stderr,
                 "bench_throughput: need 0 <= theta < 1 and "
                 "0 <= read-fraction <= 0.95\n");
    return 2;
  }

  metrics::BenchReport report("bench_throughput", args);

  // A fixed simulated workload feeds the JSON report with protocol phase
  // latencies and sig-cache counters (the wall-clock microbenchmarks
  // below report through google-benchmark's own output). The workload
  // runs in saturation mode: pipelined writes across independent objects
  // with a preferred-quorum initial fan-out keep the in-flight window
  // full — the configuration the hot-path work (encode-once fan-out,
  // replica batch verification, client pipelining) targets.
  {
    harness::ClusterOptions o;
    o.seed = 17;
    // Saturation mode exercises the whole hot path: same-tick send
    // coalescing feeds the replicas real multi-message batches, which in
    // turn amortize reply signing (one batch MAC instead of per-reply
    // authenticators).
    o.coalesce_sends = true;
    harness::Cluster cluster(o);

    constexpr std::uint32_t kWindow = 8;
    constexpr quorum::ObjectId kObjects = 8;
    core::ClientOptions copt;
    copt.rpc.initial_fanout = cluster.config().q;
    copt.max_inflight = kWindow;
    auto& c = cluster.add_client(1, copt);

    const int ops = report.smoke() ? 5 : 50;
    report.set_config("report_ops", static_cast<std::int64_t>(ops));
    report.set_config("saturation_window", static_cast<std::int64_t>(kWindow));
    report.set_config("initial_fanout",
                      static_cast<std::int64_t>(cluster.config().q));
    report.set_config("key_dist", key_dist);
    if (key_dist == "zipfian") report.set_config("theta", theta);
    report.set_config("read_fraction", read_fraction);

    // Key popularity: fixed walks the objects round-robin (historical
    // behavior), uniform and zipfian draw per op. Rank 0 maps to object
    // 1 — with skew the hot object soaks up most of the window.
    Rng key_rng(23);
    std::unique_ptr<ZipfGenerator> zipf;
    if (key_dist == "zipfian") {
      zipf = std::make_unique<ZipfGenerator>(kObjects, theta);
    }
    auto pick_object = [&](int i) -> quorum::ObjectId {
      if (zipf) return static_cast<quorum::ObjectId>(1 + zipf->next(key_rng));
      if (key_dist == "uniform") {
        return static_cast<quorum::ObjectId>(1 +
                                             key_rng.next_below(kObjects));
      }
      return static_cast<quorum::ObjectId>(1 + (i % kObjects));
    };
    // Seed every object so dynamic-distribution reads always find a
    // written value. Skipped for fixed keys — the historical workload
    // (and its committed --compare baseline counters) did no seeding.
    if (key_dist != "fixed") {
      for (quorum::ObjectId obj = 1; obj <= kObjects; ++obj) {
        (void)cluster.write(c, obj, to_bytes("seed"));
      }
    }

    int completed = 0;
    int failed = 0;
    for (int i = 0; i < ops; ++i) {
      c.submit_write(pick_object(i), to_bytes("v" + std::to_string(i)),
                     [&completed, &failed](Result<core::Client::WriteResult> r) {
                       ++completed;
                       if (!r.is_ok()) ++failed;
                     });
    }
    cluster.run_until([&completed, ops] { return completed == ops; });
    report.set_config("write_failures", static_cast<std::int64_t>(failed));
    // Read share of the mix: reads = writes * r / (1 - r), so the default
    // r = 0.5 reproduces the historical reads == writes probe. Fixed
    // distribution probes one hot object, as the pre-saturation workload
    // did — the read side stays directly comparable across bench
    // revisions; dynamic distributions draw read keys like write keys.
    const int reads = static_cast<int>(
        static_cast<double>(ops) * read_fraction / (1.0 - read_fraction));
    for (int i = 0; i < reads; ++i) {
      (void)cluster.read(c, key_dist == "fixed" ? 1 : pick_object(i));
    }
    report.merge(cluster.snapshot_metrics());
  }

  std::vector<char*> bench_argv(args.argv, args.argv + args.argc);
  std::string min_time = "--benchmark_min_time=0.001";
  if (report.smoke()) bench_argv.push_back(min_time.data());
  int bench_argc = static_cast<int>(bench_argv.size());
  benchmark::Initialize(&bench_argc, bench_argv.data());
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return report.finish();
}
