// E12 — Sharded scale-out and per-replica memory discipline.
//
// Not a paper claim: the paper's protocol is strictly per-object, so
// partitioning the keyspace across independent 3f+1 groups composes
// with its correctness argument (DESIGN.md section 13). This bench
// documents the two systems properties the sharding tentpole is for:
//
//   (a) aggregate write throughput scales ~linearly with the shard
//       count. Replica processing is made the bottleneck (serialized
//       processing with nonzero signing costs, the serial-server model
//       from bench_phases), clients drive disjoint object sets that
//       alternate across groups, and virtual-time throughput is compared
//       at S = 1, 2, 4. The acceptance gate is >= 1.7x at two shards.
//
//   (b) resident ObjectState count stays bounded under a churning
//       keyspace much larger than the cap (max_resident_objects): cold
//       objects are evicted to their serialized form and reloaded on
//       demand, and a re-read of an early (long-evicted) object still
//       round-trips its value. Supersession GC ("gc_reclaimed") is
//       exercised by a hot object written repeatedly.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "harness/sharded_cluster.h"
#include "harness/table.h"
#include "metrics/bench_report.h"

using namespace bftbc;

namespace {

// Object ids for `client` such that consecutive picks alternate shards
// and no two clients ever share an object (no timestamp contention —
// scaling is measured without artificial retry load).
std::vector<quorum::ObjectId> balanced_objects(harness::ShardedCluster& cluster,
                                               std::uint32_t client,
                                               std::uint32_t per_shard) {
  const std::uint32_t shards = cluster.shards();
  std::vector<std::vector<quorum::ObjectId>> by_shard(shards);
  // Deterministic disjoint stripes: client c probes ids c, c+C, c+2C, ...
  // (C = a stride larger than any client id in play).
  constexpr quorum::ObjectId kStride = 64;
  for (quorum::ObjectId id = 1 + client;; id += kStride) {
    const std::uint32_t s = cluster.shard_of(id);
    if (by_shard[s].size() < per_shard) by_shard[s].push_back(id);
    bool done = true;
    for (const auto& v : by_shard) done = done && v.size() >= per_shard;
    if (done) break;
  }
  std::vector<quorum::ObjectId> out;
  for (std::uint32_t i = 0; i < per_shard; ++i) {
    for (std::uint32_t s = 0; s < shards; ++s) out.push_back(by_shard[s][i]);
  }
  return out;
}

// ------------------------------------------------------------------
// Part (a): throughput vs shard count.

double measure_scaleout(std::uint32_t shards, std::uint32_t clients_n,
                        int ops_per_client, metrics::BenchReport* merge_into) {
  harness::ShardedClusterOptions o;
  o.shards = shards;
  o.seed = 2024;
  o.optimized = true;
  // Serial-server replicas with real (virtual) signing costs: the group
  // itself is the bottleneck, so added groups are added capacity.
  o.replica.serialize_processing = true;
  o.replica.sign_cost = 2 * sim::kMillisecond;
  o.replica.verify_cost = sim::kMillisecond / 2;
  harness::ShardedCluster cluster(o);

  core::ClientOptions copts;
  copts.max_inflight = 8;
  // Saturation queues ops behind the serial replicas far past the
  // default 20ms retransmit period; the sim network is loss-free, so
  // push retransmits out of the picture entirely — otherwise the most
  // loaded configuration drowns in duplicate-driven feedback and the
  // scaling measurement compares retry storms, not capacity.
  copts.rpc.retransmit_period = 5 * sim::kSecond;
  std::vector<shard::RoutingClient*> routers;
  std::vector<std::vector<quorum::ObjectId>> objects;
  for (std::uint32_t c = 0; c < clients_n; ++c) {
    routers.push_back(&cluster.add_client(c, copts, o.routing));
    objects.push_back(balanced_objects(cluster, c, 4));
  }

  const int total = static_cast<int>(clients_n) * ops_per_client;
  int completed = 0;
  int failed = 0;
  const sim::Time start = cluster.sim().now();
  for (int i = 0; i < ops_per_client; ++i) {
    for (std::uint32_t c = 0; c < clients_n; ++c) {
      const auto& pool = objects[c];
      routers[c]->submit_write(
          pool[static_cast<std::size_t>(i) % pool.size()],
          to_bytes("v" + std::to_string(i)),
          [&completed, &failed](Result<core::Client::WriteResult> r) {
            ++completed;
            if (!r.is_ok()) ++failed;
          });
    }
  }
  cluster.run_until([&completed, total] { return completed == total; });
  const double seconds =
      static_cast<double>(cluster.sim().now() - start) / sim::kSecond;
  if (failed != 0) {
    std::printf("bench_sharding: %d/%d writes FAILED at %u shards\n", failed,
                total, shards);
    return 0.0;
  }
  if (merge_into != nullptr) {
    // One configuration's full registry feeds the JSON artifact (router
    // latency summaries, per-shard replica and keystore counters, the
    // client/<id> folds the compare gate parses).
    merge_into->merge(cluster.snapshot_metrics());
    Counters keystore_total;
    for (std::uint32_t s = 0; s < shards; ++s) {
      for (const auto& [name, value] : cluster.keystore(s).counters().all()) {
        keystore_total.inc(name, value);
      }
    }
    merge_into->counter("sig_cache_hit").set(keystore_total.get("sig_cache_hit"));
    merge_into->counter("sig_cache_miss")
        .set(keystore_total.get("sig_cache_miss"));
    merge_into->counter("sig_verify_calls")
        .set(keystore_total.get("sig_verify_calls"));
  }
  return seconds > 0 ? static_cast<double>(total) / seconds : 0.0;
}

bool report_scaleout(metrics::BenchReport& report) {
  harness::print_experiment_header(
      "E12(a): aggregate write throughput vs shard count",
      "the protocol is per-object, so disjoint 3f+1 groups add capacity; "
      "with replica processing the bottleneck, throughput should scale "
      "~linearly in the number of groups");

  const std::uint32_t clients_n = report.smoke() ? 2 : 4;
  const int ops_per_client = report.smoke() ? 6 : 24;
  std::vector<std::uint32_t> shard_counts{1, 2, 4};
  if (report.smoke()) shard_counts.resize(2);
  report.set_config("scaleout_clients", static_cast<std::int64_t>(clients_n));
  report.set_config("scaleout_ops_per_client",
                    static_cast<std::int64_t>(ops_per_client));

  harness::Table table({"shards", "aggregate ops/s (virtual)", "speedup",
                        "per-shard ops/s"});
  double base = 0.0;
  double speedup2 = 0.0;
  for (std::uint32_t s : shard_counts) {
    const double tput =
        measure_scaleout(s, clients_n, ops_per_client,
                         s == 2 ? &report : nullptr);
    if (s == 1) base = tput;
    const double speedup = base > 0 ? tput / base : 0.0;
    if (s == 2) speedup2 = speedup;
    report.registry()
        .gauge("sharding/s" + std::to_string(s) + "/write_ops_per_s")
        .set(tput);
    if (s > 1) {
      report.registry()
          .gauge("sharding/s" + std::to_string(s) + "/speedup")
          .set(speedup);
    }
    table.add_row({std::to_string(s), harness::Table::num(tput, 1),
                   harness::Table::num(speedup, 2) + "x",
                   harness::Table::num(tput / s, 1)});
  }
  table.print();

  // The acceptance gate: two groups must buy at least 1.7x. (Smoke mode
  // still checks it — the tiny run saturates the same way.)
  const bool ok = speedup2 >= 1.7;
  std::printf("2-shard speedup %.2fx (gate >= 1.70x): %s\n\n", speedup2,
              ok ? "PASS" : "FAIL");
  return ok;
}

// ------------------------------------------------------------------
// Part (b): bounded resident objects under keyspace churn.

bool report_residency(metrics::BenchReport& report) {
  harness::print_experiment_header(
      "E12(b): bounded resident state under churn",
      "with max_resident_objects set, cold ObjectStates are serialized "
      "out and reloaded on touch; the resident count stays at the cap "
      "while the keyspace churns far past it");

  const std::size_t cap = report.smoke() ? 16 : 64;
  const int keyspace = report.smoke() ? 64 : 512;
  report.set_config("residency_cap", static_cast<std::int64_t>(cap));
  report.set_config("residency_keyspace", static_cast<std::int64_t>(keyspace));

  harness::ShardedClusterOptions o;
  o.shards = 2;
  o.seed = 7;
  o.optimized = true;
  o.replica.max_resident_objects = cap;
  harness::ShardedCluster cluster(o);
  auto& c = cluster.add_client(1);

  // Churn: one write per object across a keyspace >> cap, plus a hot
  // object rewritten throughout so certificate supersession keeps
  // reclaiming prepare/optlist entries.
  const quorum::ObjectId hot = 1;
  bool write_failed = false;
  for (int i = 0; i < keyspace; ++i) {
    const auto obj = static_cast<quorum::ObjectId>(2 + i);
    write_failed |= !cluster.write(c, obj, to_bytes("v" + std::to_string(i)))
                         .is_ok();
    if (i % 8 == 0) {
      write_failed |=
          !cluster.write(c, hot, to_bytes("h" + std::to_string(i))).is_ok();
    }
  }

  // Long-evicted objects must still round-trip through reload.
  bool reread_ok = true;
  for (int i = 0; i < 8; ++i) {
    const auto obj = static_cast<quorum::ObjectId>(2 + i);
    auto r = cluster.read(c, obj);
    reread_ok = reread_ok && r.is_ok() &&
                r.value().value == to_bytes("v" + std::to_string(i));
  }

  std::size_t max_resident = 0;
  Counters totals;
  for (std::uint32_t s = 0; s < cluster.shards(); ++s) {
    for (quorum::ReplicaId r = 0; r < cluster.config().n; ++r) {
      auto& rep = cluster.replica(s, r);
      max_resident = std::max(max_resident, rep.resident_objects());
      for (const auto& [name, value] : rep.metrics().all()) {
        totals.inc(name, value);
      }
    }
  }
  report.registry().gauge("residency/max_resident").set(
      static_cast<double>(max_resident));
  report.counter("residency_objects_evicted")
      .set(totals.get("objects_evicted"));
  report.counter("residency_objects_reloaded")
      .set(totals.get("objects_reloaded"));
  report.counter("residency_gc_reclaimed").set(totals.get("gc_reclaimed"));

  harness::Table table({"cap", "keyspace", "max resident", "evicted",
                        "reloaded", "gc_reclaimed"});
  table.add_row({std::to_string(cap), std::to_string(keyspace),
                 std::to_string(max_resident),
                 std::to_string(totals.get("objects_evicted")),
                 std::to_string(totals.get("objects_reloaded")),
                 std::to_string(totals.get("gc_reclaimed"))});
  table.print();

  const bool bounded = max_resident <= cap;
  const bool evicted = totals.get("objects_evicted") > 0;
  const bool reclaimed = totals.get("gc_reclaimed") > 0;
  const bool ok =
      bounded && evicted && reclaimed && reread_ok && !write_failed;
  std::printf(
      "resident <= cap: %s; eviction exercised: %s; GC exercised: %s; "
      "evicted re-read round-trips: %s\n\n",
      bounded ? "PASS" : "FAIL", evicted ? "PASS" : "FAIL",
      reclaimed ? "PASS" : "FAIL",
      (reread_ok && !write_failed) ? "PASS" : "FAIL");
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  metrics::BenchArgs args = metrics::parse_bench_args(argc, argv);
  metrics::BenchReport report("bench_sharding", args);

  const bool scaleout_ok = report_scaleout(report);
  const bool residency_ok = report_residency(report);

  const int rc = report.finish();
  if (!scaleout_ok || !residency_ok) return 1;
  return rc;
}
