// E3 — Reads complete in at most two phases NO MATTER WHAT bad clients
// and bad replicas do (paper §1, §5.1, §9).
//
// "reads normally complete in one phase, and require no more than two
//  phases, no matter what the bad clients are doing."
//
// Runs a reader against clusters with: concurrent correct writers, an
// active equivocating client, a partial-writing client, a timestamp hog,
// and f Byzantine replicas — and verifies every read used <= 2 phases
// and completed.
#include <functional>

#include "faults/byzantine_client.h"
#include "faults/byzantine_replica.h"
#include "harness/cluster.h"
#include "harness/table.h"
#include "metrics/bench_report.h"

using namespace bftbc;
using harness::Cluster;
using harness::ClusterOptions;
using harness::Table;

namespace {

struct Scenario {
  const char* name;
  std::function<void(Cluster&)> inject;  // set up adversarial activity
};

Histogram run_reads(Cluster& cluster, int reads) {
  Histogram phases;
  auto& reader = cluster.add_client(500);
  // A correct writer churns in the background so reads see fresh data.
  auto& writer = cluster.add_client(501);
  bool stop_writes = false;
  std::function<void(int)> churn = [&](int i) {
    if (stop_writes) return;
    writer.write(1, to_bytes("bg" + std::to_string(i)),
                 [&, i](Result<core::Client::WriteResult>) { churn(i + 1); });
  };
  churn(0);

  for (int i = 0; i < reads; ++i) {
    auto r = cluster.read(reader, 1);
    if (r.is_ok()) phases.add(r.value().phases);
  }
  stop_writes = true;
  return phases;
}

}  // namespace

int main(int argc, char** argv) {
  metrics::BenchArgs args = metrics::parse_bench_args(argc, argv);
  metrics::BenchReport report("bench_read_phases", args);
  const int reads = report.smoke() ? 5 : 30;
  report.set_config("reads_per_scenario", static_cast<std::int64_t>(reads));

  harness::print_experiment_header(
      "E3: read phase bound under adversarial activity",
      "reads complete in 1 phase normally and never need more than 2, no "
      "matter what the bad clients are doing (1, 5.1, 9)");

  Table table({"scenario", "reads", "phase histogram", "max phases",
               "claimed max"});

  // Scenario 1: quiet cluster.
  {
    Cluster cluster([] { ClusterOptions o; o.seed = 7; return o; }());
    auto& w = cluster.add_client(1);
    (void)cluster.write(w, 1, to_bytes("v"));
    Histogram h;
    auto& reader = cluster.add_client(2);
    for (int i = 0; i < reads; ++i) {
      auto r = cluster.read(reader, 1);
      if (r.is_ok()) h.add(r.value().phases);
    }
    report.add_histogram("quiet.read_phases", h);
    report.merge(cluster.snapshot_metrics());
    table.add_row({"quiet", std::to_string(h.total()), h.to_string(),
                   std::to_string(h.max_value()), "2"});
  }

  // Scenario 2: concurrent correct writers.
  {
    Cluster cluster([] { ClusterOptions o; o.seed = 8; return o; }());
    Histogram h = run_reads(cluster, reads);
    report.add_histogram("concurrent_writer.read_phases", h);
    report.merge(cluster.snapshot_metrics());
    table.add_row({"concurrent writer", std::to_string(h.total()),
                   h.to_string(), std::to_string(h.max_value()), "2"});
  }

  // Scenario 3: active equivocating Byzantine client + Byzantine replica.
  {
    ClusterOptions o;
    o.seed = 9;
    o.replica_factories[1] =
        [](const quorum::QuorumConfig& cfg, quorum::ReplicaId id,
           crypto::Keystore& ks, rpc::Transport& t, sim::Simulator& s,
           const core::ReplicaOptions& opts)
        -> std::unique_ptr<core::Replica> {
      return std::make_unique<faults::EquivocSignReplica>(cfg, id, ks, t, s,
                                                          opts);
    };
    Cluster cluster(o);
    auto transport = cluster.make_transport(harness::client_node(66));
    faults::EquivocatorClient attacker(cluster.config(), 66,
                                       cluster.keystore(), *transport,
                                       cluster.sim(), cluster.replica_nodes(),
                                       cluster.rng().split());
    attacker.attack(1, to_bytes("evil-A"), to_bytes("evil-B"),
                    [](faults::EquivocatorClient::Outcome) {});
    Histogram h = run_reads(cluster, reads);
    report.add_histogram("equivocator.read_phases", h);
    report.merge(cluster.snapshot_metrics());
    table.add_row({"equivocator + byz replica", std::to_string(h.total()),
                   h.to_string(), std::to_string(h.max_value()), "2"});
  }

  // Scenario 4: partial writer leaves skewed state before every read.
  {
    ClusterOptions o;
    o.seed = 10;
    Cluster cluster(o);
    auto transport = cluster.make_transport(harness::client_node(66));
    faults::PartialWriter attacker(cluster.config(), 66, cluster.keystore(),
                                   *transport, cluster.sim(),
                                   cluster.replica_nodes(),
                                   cluster.rng().split());
    bool done = false;
    attacker.attack(1, to_bytes("skew"), [&](bool) { done = true; });
    cluster.run_until([&] { return done; });
    Histogram h = run_reads(cluster, reads);
    report.add_histogram("partial_writer.read_phases", h);
    report.merge(cluster.snapshot_metrics());
    table.add_row({"partial writer", std::to_string(h.total()), h.to_string(),
                   std::to_string(h.max_value()), "2"});
  }

  // Scenario 5: crash-faulty replicas + message loss.
  {
    ClusterOptions o;
    o.seed = 11;
    o.link.loss_probability = 0.15;
    Cluster cluster(o);
    cluster.crash_replica(3);
    Histogram h = run_reads(cluster, reads);
    report.add_histogram("crash_loss.read_phases", h);
    report.merge(cluster.snapshot_metrics());
    table.add_row({"crash + 15% loss", std::to_string(h.total()),
                   h.to_string(), std::to_string(h.max_value()), "2"});
  }

  table.print();
  std::cout << "\nEvery scenario's max phases must be <= 2: the read bound "
               "holds regardless of Byzantine activity.\n";
  return report.finish();
}
