// E4 — Message and byte complexity (paper §3.3.1).
//
// "The number of messages exchanged by an operation in BFT-BC is O(|Q|)
//  ... The total message size for each operation is O(|Q|^2), because
//  some of the messages contain certificates whose size is O(|Q|)."
//
// Sweeps f = 1..5 (|Q| = 2f+1) and reports measured messages/op and
// bytes/op for writes and reads, plus the growth ratio against |Q| and
// |Q|^2 so the asymptotic shape is visible in the output.
#include "harness/cluster.h"
#include "harness/table.h"
#include "metrics/bench_report.h"

using namespace bftbc;
using harness::Cluster;
using harness::ClusterOptions;
using harness::Table;

namespace {

struct Cost {
  double msgs_per_op;
  double bytes_per_op;
};

Cost measure(std::uint32_t f, bool writes, bool optimized, int ops,
             metrics::BenchReport& report) {
  ClusterOptions o;
  o.f = f;
  o.seed = 33 + f;
  o.optimized = optimized;
  Cluster cluster(o);
  auto& client = cluster.add_client(1);
  // Warm up: one write so reads have data and the client holds a write
  // certificate (steady-state prepares carry one).
  (void)cluster.write(client, 1, to_bytes("warmup"));
  cluster.settle();

  cluster.net().reset_counters();
  for (int i = 0; i < ops; ++i) {
    if (writes) {
      (void)cluster.write(client, 1, to_bytes("v" + std::to_string(i)));
    } else {
      (void)cluster.read(client, 1);
    }
  }
  cluster.settle();
  const auto& c = cluster.net().counters();
  report.merge(cluster.snapshot_metrics());
  return Cost{static_cast<double>(c.get("msgs_sent")) / ops,
              static_cast<double>(c.get("bytes_sent")) / ops};
}

}  // namespace

int main(int argc, char** argv) {
  metrics::BenchArgs args = metrics::parse_bench_args(argc, argv);
  metrics::BenchReport report("bench_msg_complexity", args);
  const int ops = report.smoke() ? 5 : 20;
  const std::uint32_t max_f = report.smoke() ? 2 : 5;
  report.set_config("ops_per_point", static_cast<std::int64_t>(ops));
  report.set_config("max_f", static_cast<std::int64_t>(max_f));

  harness::print_experiment_header(
      "E4: message complexity",
      "messages per op = O(|Q|) (three RPCs to a quorum); bytes per op = "
      "O(|Q|^2) (certificates of size O(|Q|) inside messages) (3.3.1)");

  for (bool optimized : {false, true}) {
    std::cout << (optimized ? "--- optimized protocol ---\n"
                            : "--- base protocol ---\n");
    Table table({"f", "|Q|", "write msgs/op", "write msgs ratio vs |Q|",
                 "write bytes/op", "write bytes ratio vs |Q|^2",
                 "read msgs/op", "read bytes/op"});
    double base_q = 0, base_wm = 0, base_wb = 0;
    for (std::uint32_t f = 1; f <= max_f; ++f) {
      const double q = 2.0 * f + 1;
      Cost w = measure(f, /*writes=*/true, optimized, ops, report);
      Cost r = measure(f, /*writes=*/false, optimized, ops, report);
      const std::string key = std::string(optimized ? "opt" : "base") +
                              "/f" + std::to_string(f);
      report.registry().gauge(key + "/write_msgs_per_op").set(w.msgs_per_op);
      report.registry().gauge(key + "/write_bytes_per_op").set(w.bytes_per_op);
      report.registry().gauge(key + "/read_msgs_per_op").set(r.msgs_per_op);
      report.registry().gauge(key + "/read_bytes_per_op").set(r.bytes_per_op);
      if (f == 1) {
        base_q = q;
        base_wm = w.msgs_per_op;
        base_wb = w.bytes_per_op;
      }
      // If msgs ~ c*|Q|, then (msgs/base_msgs)/(q/base_q) ~ 1.
      const double msg_ratio = (w.msgs_per_op / base_wm) / (q / base_q);
      const double byte_ratio =
          (w.bytes_per_op / base_wb) / ((q * q) / (base_q * base_q));
      table.add_row({std::to_string(f), Table::num(q, 0),
                     Table::num(w.msgs_per_op), Table::num(msg_ratio),
                     Table::num(w.bytes_per_op), Table::num(byte_ratio),
                     Table::num(r.msgs_per_op), Table::num(r.bytes_per_op)});
    }
    table.print();
    std::cout << "\n";
  }
  std::cout << "ratio columns ~= 1.00 across f confirm the claimed O(|Q|) "
               "message and O(|Q|^2) byte growth (constant factors differ "
               "between modes).\n";
  return report.finish();
}
