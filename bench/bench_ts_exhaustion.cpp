// E11 — Timestamp-space exhaustion (paper §3.2 attack 3).
//
// "Choose a very large timestamp and exhaust the timestamp space."
//
// BFT-BC claim: impossible — a prepare is accepted only for
// t = succ(cert.ts, c), so the timestamp grows by exactly one per
// completed write regardless of attacker effort. The BQS baseline, by
// contrast, accepts any signed higher timestamp.
//
// Measures: final timestamp value after N good writes, with an attacker
// hammering huge timestamps, for BFT-BC vs BQS.
#include "faults/byzantine_client.h"
#include "harness/baseline_cluster.h"
#include "harness/cluster.h"
#include "harness/table.h"
#include "metrics/bench_report.h"

using namespace bftbc;
using harness::BaselineOptions;
using harness::BqsCluster;
using harness::Cluster;
using harness::ClusterOptions;
using harness::Table;

int main(int argc, char** argv) {
  metrics::BenchArgs args = metrics::parse_bench_args(argc, argv);
  metrics::BenchReport report("bench_ts_exhaustion", args);

  harness::print_experiment_header(
      "E11: timestamp-space exhaustion attack",
      "BFT-BC replicas only admit t = succ(cert.ts, c): timestamps grow by "
      "1 per completed write, so bad clients cannot exhaust the space "
      "(3.2); classic BQS accepts arbitrary jumps");

  const int kGoodWrites = report.smoke() ? 4 : 10;
  report.set_config("good_writes", static_cast<std::int64_t>(kGoodWrites));
  Table table({"protocol", "attack", "good writes", "final ts.val",
               "expected", "attack accepted by replicas"});

  // --- BFT-BC under attack.
  {
    Cluster cluster([] { ClusterOptions o; o.seed = 61; return o; }());
    auto& good = cluster.add_client(1);
    (void)cluster.write(good, 1, to_bytes("v0"));

    auto t = cluster.make_transport(harness::client_node(66));
    faults::TimestampHog hog(cluster.config(), 66, cluster.keystore(), *t,
                             cluster.sim(), cluster.replica_nodes(),
                             cluster.rng().split());
    std::optional<faults::TimestampHog::Outcome> out;
    hog.attack(1, /*jump=*/1'000'000'000, /*attempts=*/10,
               [&](faults::TimestampHog::Outcome o) { out = o; });
    cluster.run_until([&] { return out.has_value(); });

    for (int i = 1; i < kGoodWrites; ++i)
      (void)cluster.write(good, 1, to_bytes("v" + std::to_string(i)));
    auto r = cluster.read(good, 1);

    report.registry().gauge("bftbc/final_ts_attacked")
        .set(static_cast<double>(r.is_ok() ? r.value().ts.val : 0));
    report.counter("bftbc/attack_prepares_accepted")
        .set(static_cast<std::uint64_t>(out->accepted));
    report.merge(cluster.snapshot_metrics());
    table.add_row({"BFT-BC", "10x jump of 1e9", std::to_string(kGoodWrites),
                   std::to_string(r.is_ok() ? r.value().ts.val : 0),
                   std::to_string(kGoodWrites) + " (exactly 1/write)",
                   std::to_string(out->accepted) + " prepare replies"});
  }

  // --- BFT-BC without attack (control).
  {
    Cluster cluster([] { ClusterOptions o; o.seed = 62; return o; }());
    auto& good = cluster.add_client(1);
    for (int i = 0; i < kGoodWrites; ++i)
      (void)cluster.write(good, 1, to_bytes("v" + std::to_string(i)));
    auto r = cluster.read(good, 1);
    report.registry().gauge("bftbc/final_ts_control")
        .set(static_cast<double>(r.is_ok() ? r.value().ts.val : 0));
    report.merge(cluster.snapshot_metrics());
    table.add_row({"BFT-BC", "none (control)", std::to_string(kGoodWrites),
                   std::to_string(r.is_ok() ? r.value().ts.val : 0),
                   std::to_string(kGoodWrites), "-"});
  }

  // --- BQS baseline: the same attack succeeds.
  {
    BqsCluster cluster(BaselineOptions{.seed = 63});
    auto& good = cluster.add_client(1);
    (void)cluster.write(good, 1, to_bytes("v0"));

    // Authorized-but-Byzantine client injects ts.val = 1e9 directly.
    auto transport = cluster.make_transport(harness::client_node(66));
    auto signer =
        cluster.keystore().register_principal(quorum::client_principal(66));
    const quorum::Timestamp huge{1'000'000'000, 66};
    const Bytes value = to_bytes("jump");
    Writer w;
    w.put_u64(1);
    w.put_bytes(value);
    huge.encode(w);
    w.put_u32(66);
    auto sig = signer.sign(
        baselines::bqs_value_statement(1, huge, crypto::sha256(value)));
    w.put_bytes(sig.value());
    rpc::Envelope env;
    env.type = rpc::MsgType::kBqsWrite;
    env.rpc_id = 9;
    env.sender = quorum::client_principal(66);
    env.body = std::move(w).take();
    for (sim::NodeId n : cluster.replica_nodes()) transport->send(n, env);
    cluster.sim().run();

    for (int i = 1; i < kGoodWrites; ++i)
      (void)cluster.write(good, 1, to_bytes("v" + std::to_string(i)));
    auto r = cluster.read(good, 1);
    report.registry().gauge("bqs/final_ts_attacked")
        .set(static_cast<double>(r.is_ok() ? r.value().ts.val : 0));
    table.add_row({"BQS classic", "single jump of 1e9",
                   std::to_string(kGoodWrites),
                   std::to_string(r.is_ok() ? r.value().ts.val : 0),
                   "> 1e9 (space consumed)", "accepted"});
  }

  table.print();

  std::cout << "\nBFT-BC's final timestamp equals the number of completed "
               "writes no matter the attack; BQS's timestamp space is blown "
               "past 1e9 by one message.\n";
  return report.finish();
}
