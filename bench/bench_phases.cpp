// E1 + E2 — Operation phase counts (paper §3.2 Figure 1, §6.2, §7.2).
//
// Paper claims:
//   base write      = 3 phases, always
//   optimized write = 2 phases uncontended, up to 3 under contention
//   strong write    = 3 phases uncontended, +2 when phase-1 disagrees
//   read            = 1 phase, 2 with write-back
//
// Prints, per protocol mode: a histogram of phases per write and per
// read, swept over write contention (number of concurrent writers).
#include <functional>

#include "harness/cluster.h"
#include "harness/table.h"
#include "metrics/bench_report.h"
#include "util/stats.h"

using namespace bftbc;
using harness::Cluster;
using harness::ClusterOptions;
using harness::Table;

namespace {

struct ModeSpec {
  const char* name;
  bool optimized;
  bool strong;
  const char* claim_write;
};

constexpr ModeSpec kModes[] = {
    {"base", false, false, "3"},
    {"optimized", true, false, "2 (contended: 2-3)"},
    {"strong", false, true, "3 (degraded: 5)"},
    {"strong+opt", true, true, "2-3 (degraded: +2)"},
};

struct PhaseStats {
  Histogram write_phases;
  Histogram read_phases;
};

// `writers` clients write `rounds` values each, concurrently (each client
// chains its next write as the previous completes); one reader reads
// between rounds.
PhaseStats run_workload(const ModeSpec& mode, int writers, int rounds,
                        std::uint64_t seed, metrics::BenchReport& report) {
  ClusterOptions o;
  o.optimized = mode.optimized;
  o.strong = mode.strong;
  o.seed = seed;
  Cluster cluster(o);

  PhaseStats stats;
  std::vector<core::Client*> clients;
  for (int w = 0; w < writers; ++w) {
    clients.push_back(
        &cluster.add_client(static_cast<quorum::ClientId>(w + 1)));
  }
  auto& reader = cluster.add_client(1000);

  int done = 0;
  const int total = writers * rounds;
  std::function<void(int, int)> launch = [&](int w, int round) {
    if (round >= rounds) return;
    clients[static_cast<std::size_t>(w)]->write(
        1, to_bytes("w" + std::to_string(w) + "r" + std::to_string(round)),
        [&, w, round](Result<core::Client::WriteResult> r) {
          if (r.is_ok()) stats.write_phases.add(r.value().phases);
          ++done;
          launch(w, round + 1);
        });
  };
  for (int w = 0; w < writers; ++w) launch(w, 0);
  cluster.run_until([&] { return done == total; });

  // Reads: interleave with a fresh write stream to see write-back cases.
  for (int i = 0; i < 20; ++i) {
    auto r = cluster.read(reader, 1);
    if (r.is_ok()) stats.read_phases.add(r.value().phases);
  }
  report.merge(cluster.snapshot_metrics());
  return stats;
}

}  // namespace

int main(int argc, char** argv) {
  metrics::BenchArgs args = metrics::parse_bench_args(argc, argv);
  metrics::BenchReport report("bench_phases", args);
  const int rounds = report.smoke() ? 2 : 10;
  const std::vector<int> writer_sweep =
      report.smoke() ? std::vector<int>{1, 2} : std::vector<int>{1, 2, 4, 8};
  report.set_config("rounds", static_cast<std::int64_t>(rounds));
  report.set_config("max_writers", static_cast<std::int64_t>(
                                       writer_sweep.back()));

  harness::print_experiment_header(
      "E1/E2: write and read phase counts",
      "base writes take 3 phases; optimized writes take 2 (falling back to "
      "3 under contention); reads take 1 phase, 2 when a write-back is "
      "needed (Fig.1, 6.2)");

  Table table({"mode", "writers", "claimed write phases", "measured write phases",
               "mean", "read phases"});
  for (const ModeSpec& mode : kModes) {
    for (int writers : writer_sweep) {
      PhaseStats stats =
          run_workload(mode, writers, rounds, 42 + writers, report);
      report.add_histogram(std::string(mode.name) + ".write_phases",
                           stats.write_phases);
      report.add_histogram(std::string(mode.name) + ".read_phases",
                           stats.read_phases);
      table.add_row({mode.name, std::to_string(writers), mode.claim_write,
                     stats.write_phases.to_string(),
                     Table::num(stats.write_phases.mean()),
                     stats.read_phases.to_string()});
    }
  }
  table.print();

  std::cout << "\nNote: histogram entries are phases:count. Uncontended "
               "optimized writes hit the 2-phase fast path; contention and "
               "strong-mode phase-1 disagreement add fallback phases.\n";
  return report.finish();
}
