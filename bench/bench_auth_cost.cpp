// E8 — Cost of authentication (paper §3.3.2).
//
// Claims:
//   - public-key signatures are needed only for phase-2/3 responses
//     (statements shown to third parties); everything else can use MACs
//   - only the phase-2 response signature is on the critical path: the
//     phase-3 signature can be computed in the background after phase 2
//
// Three parts:
//   (a) google-benchmark microbenchmarks of the real crypto: RSA-1024 /
//       RSA-512 sign+verify vs HMAC-SHA256 (the MAC-based authenticator),
//       establishing the gap that motivates the optimization;
//   (b) a simulated-latency ablation: write latency with foreground vs
//       background phase-3 signing at a realistic 2006-era signing cost;
//   (c) the certificate-verification cache: a repeated-certificate write
//       workload with real RSA signatures, cached vs uncached, reporting
//       sig_cache_hit / sig_cache_miss / sig_verify_calls.
#include <benchmark/benchmark.h>

#include "crypto/hmac.h"
#include "crypto/rsa.h"
#include "crypto/signature.h"
#include "harness/cluster.h"
#include "harness/table.h"
#include "metrics/bench_report.h"
#include "quorum/certificate.h"

using namespace bftbc;

namespace {

crypto::RsaKeyPair& rsa_key(std::size_t bits) {
  static std::map<std::size_t, crypto::RsaKeyPair> keys;
  auto it = keys.find(bits);
  if (it == keys.end()) {
    Rng rng(4242 + bits);
    it = keys.emplace(bits, crypto::rsa_generate(rng, bits)).first;
  }
  return it->second;
}

const Bytes kStatement = to_bytes(
    "PREPARE-REPLY object=1 ts=<12,3> hash=0123456789abcdef0123456789abcdef");

void BM_RsaSign(benchmark::State& state) {
  auto& kp = rsa_key(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::rsa_sign(kp.priv, kStatement));
  }
}
BENCHMARK(BM_RsaSign)->Arg(512)->Arg(1024)->Unit(benchmark::kMicrosecond);

void BM_RsaVerify(benchmark::State& state) {
  auto& kp = rsa_key(static_cast<std::size_t>(state.range(0)));
  const Bytes sig = crypto::rsa_sign(kp.priv, kStatement);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::rsa_verify(kp.pub, kStatement, sig));
  }
}
BENCHMARK(BM_RsaVerify)->Arg(512)->Arg(1024)->Unit(benchmark::kMicrosecond);

void BM_HmacAuthenticator(benchmark::State& state) {
  const Bytes key(32, 0x5c);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::hmac_sha256(key, kStatement));
  }
}
BENCHMARK(BM_HmacAuthenticator)->Unit(benchmark::kMicrosecond);

void BM_Sha256_1KiB(benchmark::State& state) {
  const Bytes data(1024, 0xab);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::sha256(data));
  }
}
BENCHMARK(BM_Sha256_1KiB)->Unit(benchmark::kMicrosecond);

// ------------------------------------------------------------------
// Part (b): simulated write latency, foreground vs background signing.

double measure_write_latency(bool background_sigs, sim::Time sign_cost,
                             int writes, metrics::BenchReport& report) {
  harness::ClusterOptions o;
  o.seed = 99;
  o.replica.background_write_sigs = background_sigs;
  o.replica.sign_cost = sign_cost;
  o.replica.verify_cost = sign_cost / 20;  // verify ~ e=65537, much cheaper
  harness::Cluster cluster(o);
  auto& c = cluster.add_client(1);
  (void)cluster.write(c, 1, to_bytes("warmup"));

  Summary latency;
  for (int i = 0; i < writes; ++i) {
    const sim::Time start = cluster.sim().now();
    (void)cluster.write(c, 1, to_bytes("v" + std::to_string(i)));
    latency.add(static_cast<double>(cluster.sim().now() - start) /
                sim::kMillisecond);
  }
  report.add_summary(std::string("bg_ablation/") +
                         (background_sigs ? "bg" : "fg") + "_sign_write_ms",
                     latency);
  report.merge(cluster.snapshot_metrics());
  return latency.mean();
}

void report_background_ablation(metrics::BenchReport& report) {
  harness::print_experiment_header(
      "E8(b): background phase-3 signing ablation",
      "the phase-3 response signature can be done in the background after "
      "the phase-2 reply, removing one signing delay from the write path "
      "(3.3.2)");

  harness::Table table({"sign cost (simulated)", "write latency fg-sign (ms)",
                        "write latency bg-sign (ms)", "saved (ms)",
                        "expected saving"});
  const int writes = report.smoke() ? 5 : 20;
  std::vector<sim::Time> costs = {sim::Time{1} * sim::kMillisecond,
                                  sim::Time{5} * sim::kMillisecond,
                                  sim::Time{20} * sim::kMillisecond};
  if (report.smoke()) costs.resize(1);
  for (sim::Time cost : costs) {
    const double fg = measure_write_latency(false, cost, writes, report);
    const double bg = measure_write_latency(true, cost, writes, report);
    report.registry()
        .gauge("bg_ablation/cost" +
               std::to_string(cost / sim::kMillisecond) + "ms/saved_ms")
        .set(fg - bg);
    table.add_row({harness::Table::num(
                       static_cast<double>(cost) / sim::kMillisecond, 0) + "ms",
                   harness::Table::num(fg), harness::Table::num(bg),
                   harness::Table::num(fg - bg),
                   "~1 signing delay (phase 3 off the path)"});
  }
  table.print();
  std::cout << "\n";
}

// ------------------------------------------------------------------
// Part (c): certificate-verification cache, cached vs uncached.

// Microbenchmark: validating one 2f+1-signature RSA certificate with and
// without memoization.
crypto::Keystore& cert_keystore() {
  static crypto::Keystore ks(crypto::SignatureScheme::kRsa, /*seed=*/7,
                             /*rsa_bits=*/512);
  return ks;
}

quorum::PrepareCertificate make_bench_cert(const quorum::QuorumConfig& config) {
  quorum::SignatureSet sigs;
  const quorum::Timestamp ts{1, 1};
  const crypto::Digest h = crypto::sha256(as_bytes_view("hot value"));
  const Bytes stmt = quorum::prepare_reply_statement(1, ts, h);
  for (quorum::ReplicaId r = 0; r < config.q; ++r) {
    sigs[r] = cert_keystore()
                  .register_principal(quorum::replica_principal(r))
                  .sign(stmt)
                  .value();
  }
  return quorum::PrepareCertificate(1, ts, h, std::move(sigs));
}

void BM_CertValidateRsa(benchmark::State& state) {
  const bool cached = state.range(0) != 0;
  const quorum::QuorumConfig config = quorum::QuorumConfig::bft_bc(1);
  crypto::Keystore& ks = cert_keystore();
  static const quorum::PrepareCertificate cert = make_bench_cert(config);
  ks.set_verify_cache_capacity(cached ? crypto::VerifyCache::kDefaultCapacity
                                      : 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cert.validate(config, ks).is_ok());
  }
  state.SetLabel(cached ? "cached" : "uncached");
}
BENCHMARK(BM_CertValidateRsa)->Arg(0)->Arg(1)->Unit(benchmark::kMicrosecond);

// Workload report: a client hammering one hot object through the full
// protocol over real RSA-512 signatures. Every write re-shows the same
// transferable certificates (phase-1 replies, PREPARE/WRITE carrying
// them, retransmits), so verification verdicts repeat heavily. The sim
// shares one Keystore across nodes, so this cache behaves like a
// per-process cache warmed by all replicas at once — an upper bound on a
// per-node deployment, but the per-hop repetition it exploits is real.
struct CacheWorkloadStats {
  std::uint64_t rsa_verifies = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
};

CacheWorkloadStats measure_cache_workload(bool cached, int writes) {
  harness::ClusterOptions o;
  o.seed = 42;
  o.scheme = crypto::SignatureScheme::kRsa;
  o.rsa_bits = 512;
  harness::Cluster cluster(o);
  if (!cached) cluster.keystore().set_verify_cache_capacity(0);
  auto& c = cluster.add_client(1);
  (void)cluster.write(c, 1, to_bytes("warmup"));
  cluster.keystore().reset_counters();

  for (int i = 0; i < writes; ++i) {
    (void)cluster.write(c, 1, to_bytes("v" + std::to_string(i)));
  }
  const Counters& ctr = cluster.keystore().counters();
  return {ctr.get("sig_verify_calls"), ctr.get("sig_cache_hit"),
          ctr.get("sig_cache_miss")};
}

void report_verification_cache(metrics::BenchReport& report) {
  harness::print_experiment_header(
      "E8(c): certificate-verification cache",
      "certificates are transferable proofs re-verified at every hop; "
      "memoizing (principal, statement, signature) verdicts removes the "
      "repeated RSA verifications from the hot path");

  const int kWrites = report.smoke() ? 3 : 10;
  const CacheWorkloadStats uncached = measure_cache_workload(false, kWrites);
  const CacheWorkloadStats cached = measure_cache_workload(true, kWrites);
  // The headline sig-cache counters: the CACHED workload's keystore stats.
  report.counter("sig_cache_hit").set(cached.hits);
  report.counter("sig_cache_miss").set(cached.misses);
  report.counter("sig_verify_calls").set(cached.rsa_verifies);
  report.counter("uncached_sig_verify_calls").set(uncached.rsa_verifies);

  harness::Table table({"mode", "writes (hot object)", "RSA verify calls",
                        "sig_cache_hit", "sig_cache_miss",
                        "verify calls / write"});
  table.add_row({"uncached", std::to_string(kWrites),
                 std::to_string(uncached.rsa_verifies),
                 std::to_string(uncached.hits),
                 std::to_string(uncached.misses),
                 harness::Table::num(static_cast<double>(uncached.rsa_verifies) /
                                     kWrites)});
  table.add_row({"cached", std::to_string(kWrites),
                 std::to_string(cached.rsa_verifies),
                 std::to_string(cached.hits), std::to_string(cached.misses),
                 harness::Table::num(static_cast<double>(cached.rsa_verifies) /
                                     kWrites)});
  table.print();
  const double reduction =
      cached.rsa_verifies == 0
          ? 0.0
          : static_cast<double>(uncached.rsa_verifies) /
                static_cast<double>(cached.rsa_verifies);
  std::cout << "RSA verify-call reduction: "
            << harness::Table::num(reduction, 1) << "x\n\n";
}

}  // namespace

int main(int argc, char** argv) {
  metrics::BenchArgs args = metrics::parse_bench_args(argc, argv);
  metrics::BenchReport report("bench_auth_cost", args);

  report_background_ablation(report);
  report_verification_cache(report);

  harness::print_experiment_header(
      "E8(a): raw authentication costs",
      "public-key signatures are orders of magnitude more expensive than "
      "the MAC authenticators usable for point-to-point replies (3.3.2)");
  std::vector<char*> bench_argv(args.argv, args.argv + args.argc);
  std::string min_time = "--benchmark_min_time=0.001";
  if (report.smoke()) bench_argv.push_back(min_time.data());
  int bench_argc = static_cast<int>(bench_argv.size());
  benchmark::Initialize(&bench_argc, bench_argv.data());
  benchmark::RunSpecifiedBenchmarks();
  return report.finish();
}
