// E8 — Cost of authentication (paper §3.3.2).
//
// Claims:
//   - public-key signatures are needed only for phase-2/3 responses
//     (statements shown to third parties); everything else can use MACs
//   - only the phase-2 response signature is on the critical path: the
//     phase-3 signature can be computed in the background after phase 2
//
// Two parts:
//   (a) google-benchmark microbenchmarks of the real crypto: RSA-1024 /
//       RSA-512 sign+verify vs HMAC-SHA256 (the MAC-based authenticator),
//       establishing the gap that motivates the optimization;
//   (b) a simulated-latency ablation: write latency with foreground vs
//       background phase-3 signing at a realistic 2006-era signing cost.
#include <benchmark/benchmark.h>

#include "crypto/hmac.h"
#include "crypto/rsa.h"
#include "crypto/signature.h"
#include "harness/cluster.h"
#include "harness/table.h"

using namespace bftbc;

namespace {

crypto::RsaKeyPair& rsa_key(std::size_t bits) {
  static std::map<std::size_t, crypto::RsaKeyPair> keys;
  auto it = keys.find(bits);
  if (it == keys.end()) {
    Rng rng(4242 + bits);
    it = keys.emplace(bits, crypto::rsa_generate(rng, bits)).first;
  }
  return it->second;
}

const Bytes kStatement = to_bytes(
    "PREPARE-REPLY object=1 ts=<12,3> hash=0123456789abcdef0123456789abcdef");

void BM_RsaSign(benchmark::State& state) {
  auto& kp = rsa_key(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::rsa_sign(kp.priv, kStatement));
  }
}
BENCHMARK(BM_RsaSign)->Arg(512)->Arg(1024)->Unit(benchmark::kMicrosecond);

void BM_RsaVerify(benchmark::State& state) {
  auto& kp = rsa_key(static_cast<std::size_t>(state.range(0)));
  const Bytes sig = crypto::rsa_sign(kp.priv, kStatement);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::rsa_verify(kp.pub, kStatement, sig));
  }
}
BENCHMARK(BM_RsaVerify)->Arg(512)->Arg(1024)->Unit(benchmark::kMicrosecond);

void BM_HmacAuthenticator(benchmark::State& state) {
  const Bytes key(32, 0x5c);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::hmac_sha256(key, kStatement));
  }
}
BENCHMARK(BM_HmacAuthenticator)->Unit(benchmark::kMicrosecond);

void BM_Sha256_1KiB(benchmark::State& state) {
  const Bytes data(1024, 0xab);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::sha256(data));
  }
}
BENCHMARK(BM_Sha256_1KiB)->Unit(benchmark::kMicrosecond);

// ------------------------------------------------------------------
// Part (b): simulated write latency, foreground vs background signing.

double measure_write_latency(bool background_sigs, sim::Time sign_cost) {
  harness::ClusterOptions o;
  o.seed = 99;
  o.replica.background_write_sigs = background_sigs;
  o.replica.sign_cost = sign_cost;
  o.replica.verify_cost = sign_cost / 20;  // verify ~ e=65537, much cheaper
  harness::Cluster cluster(o);
  auto& c = cluster.add_client(1);
  (void)cluster.write(c, 1, to_bytes("warmup"));

  Summary latency;
  for (int i = 0; i < 20; ++i) {
    const sim::Time start = cluster.sim().now();
    (void)cluster.write(c, 1, to_bytes("v" + std::to_string(i)));
    latency.add(static_cast<double>(cluster.sim().now() - start) /
                sim::kMillisecond);
  }
  return latency.mean();
}

void report_background_ablation() {
  harness::print_experiment_header(
      "E8(b): background phase-3 signing ablation",
      "the phase-3 response signature can be done in the background after "
      "the phase-2 reply, removing one signing delay from the write path "
      "(3.3.2)");

  harness::Table table({"sign cost (simulated)", "write latency fg-sign (ms)",
                        "write latency bg-sign (ms)", "saved (ms)",
                        "expected saving"});
  for (sim::Time cost : {sim::Time{1} * sim::kMillisecond,
                         sim::Time{5} * sim::kMillisecond,
                         sim::Time{20} * sim::kMillisecond}) {
    const double fg = measure_write_latency(false, cost);
    const double bg = measure_write_latency(true, cost);
    table.add_row({harness::Table::num(
                       static_cast<double>(cost) / sim::kMillisecond, 0) + "ms",
                   harness::Table::num(fg), harness::Table::num(bg),
                   harness::Table::num(fg - bg),
                   "~1 signing delay (phase 3 off the path)"});
  }
  table.print();
  std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  report_background_ablation();

  harness::print_experiment_header(
      "E8(a): raw authentication costs",
      "public-key signatures are orders of magnitude more expensive than "
      "the MAC authenticators usable for point-to-point replies (3.3.2)");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
