// E8 — Cost of authentication (paper §3.3.2).
//
// Claims:
//   - public-key signatures are needed only for phase-2/3 responses
//     (statements shown to third parties); everything else can use MACs
//   - only the phase-2 response signature is on the critical path: the
//     phase-3 signature can be computed in the background after phase 2
//
// Six parts:
//   (a) google-benchmark microbenchmarks of the real crypto: RSA-1024 /
//       RSA-512 sign+verify vs HMAC-SHA256 (the MAC-based authenticator),
//       establishing the gap that motivates the optimization — plus the
//       Montgomery-vs-schoolbook modexp split behind the RSA numbers;
//   (b) a simulated-latency ablation: write latency with foreground vs
//       background phase-3 signing at a realistic 2006-era signing cost;
//   (c) the certificate-verification cache: a repeated-certificate write
//       workload with real RSA signatures, cached vs uncached, reporting
//       sig_cache_hit / sig_cache_miss / sig_verify_calls;
//   (d) verify-pool scaling: wall-clock for one batch of distinct RSA
//       signature checks as worker threads are added;
//   (e) MAC-authenticator mode vs signature mode through the full
//       protocol: RSA verifications per write in each mode;
//   (f) batched certificate validation: one quorum certificate checked
//       through verify_batch, inline vs pooled — the protocol entry
//       point for the part-(d) machinery.
#include <benchmark/benchmark.h>

#include <chrono>

#include "crypto/bigint.h"
#include "crypto/hmac.h"
#include "crypto/rsa.h"
#include "crypto/signature.h"
#include "crypto/verify_pool.h"
#include "harness/cluster.h"
#include "harness/table.h"
#include "metrics/bench_report.h"
#include "quorum/certificate.h"

using namespace bftbc;

namespace {

crypto::RsaKeyPair& rsa_key(std::size_t bits) {
  static std::map<std::size_t, crypto::RsaKeyPair> keys;
  auto it = keys.find(bits);
  if (it == keys.end()) {
    Rng rng(4242 + bits);
    it = keys.emplace(bits, crypto::rsa_generate(rng, bits)).first;
  }
  return it->second;
}

const Bytes kStatement = to_bytes(
    "PREPARE-REPLY object=1 ts=<12,3> hash=0123456789abcdef0123456789abcdef");

void BM_RsaSign(benchmark::State& state) {
  auto& kp = rsa_key(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::rsa_sign(kp.priv, kStatement));
  }
}
BENCHMARK(BM_RsaSign)->Arg(512)->Arg(1024)->Unit(benchmark::kMicrosecond);

void BM_RsaVerify(benchmark::State& state) {
  auto& kp = rsa_key(static_cast<std::size_t>(state.range(0)));
  const Bytes sig = crypto::rsa_sign(kp.priv, kStatement);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::rsa_verify(kp.pub, kStatement, sig));
  }
}
BENCHMARK(BM_RsaVerify)->Arg(512)->Arg(1024)->Unit(benchmark::kMicrosecond);

void BM_HmacAuthenticator(benchmark::State& state) {
  const Bytes key(32, 0x5c);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::hmac_sha256(key, kStatement));
  }
}
BENCHMARK(BM_HmacAuthenticator)->Unit(benchmark::kMicrosecond);

void BM_Sha256_1KiB(benchmark::State& state) {
  const Bytes data(1024, 0xab);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::sha256(data));
  }
}
BENCHMARK(BM_Sha256_1KiB)->Unit(benchmark::kMicrosecond);

// The modexp engine behind the RSA numbers: full private-exponent
// base^d mod n, Montgomery CIOS vs the schoolbook divmod ladder.
// (rsa_sign itself additionally splits the work with the CRT.)
void BM_ModExp(benchmark::State& state) {
  auto& kp = rsa_key(static_cast<std::size_t>(state.range(0)));
  const bool montgomery = state.range(1) != 0;
  const crypto::BigInt base =
      crypto::BigInt::from_bytes(kStatement) % kp.priv.n;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        montgomery
            ? crypto::BigInt::mod_exp(base, kp.priv.d, kp.priv.n)
            : crypto::BigInt::mod_exp_schoolbook(base, kp.priv.d, kp.priv.n));
  }
  state.SetLabel(montgomery ? "montgomery" : "schoolbook");
}
BENCHMARK(BM_ModExp)
    ->Args({512, 0})
    ->Args({512, 1})
    ->Args({1024, 0})
    ->Args({1024, 1})
    ->Unit(benchmark::kMicrosecond);

// ------------------------------------------------------------------
// Part (b): simulated write latency, foreground vs background signing.

double measure_write_latency(bool background_sigs, sim::Time sign_cost,
                             int writes, metrics::BenchReport& report) {
  harness::ClusterOptions o;
  o.seed = 99;
  o.replica.background_write_sigs = background_sigs;
  o.replica.sign_cost = sign_cost;
  o.replica.verify_cost = sign_cost / 20;  // verify ~ e=65537, much cheaper
  harness::Cluster cluster(o);
  auto& c = cluster.add_client(1);
  (void)cluster.write(c, 1, to_bytes("warmup"));

  Summary latency;
  for (int i = 0; i < writes; ++i) {
    const sim::Time start = cluster.sim().now();
    (void)cluster.write(c, 1, to_bytes("v" + std::to_string(i)));
    latency.add(static_cast<double>(cluster.sim().now() - start) /
                sim::kMillisecond);
  }
  report.add_summary(std::string("bg_ablation/") +
                         (background_sigs ? "bg" : "fg") + "_sign_write_ms",
                     latency);
  report.merge(cluster.snapshot_metrics());
  return latency.mean();
}

void report_background_ablation(metrics::BenchReport& report) {
  harness::print_experiment_header(
      "E8(b): background phase-3 signing ablation",
      "the phase-3 response signature can be done in the background after "
      "the phase-2 reply, removing one signing delay from the write path "
      "(3.3.2)");

  harness::Table table({"sign cost (simulated)", "write latency fg-sign (ms)",
                        "write latency bg-sign (ms)", "saved (ms)",
                        "expected saving"});
  const int writes = report.smoke() ? 5 : 20;
  std::vector<sim::Time> costs = {sim::Time{1} * sim::kMillisecond,
                                  sim::Time{5} * sim::kMillisecond,
                                  sim::Time{20} * sim::kMillisecond};
  if (report.smoke()) costs.resize(1);
  for (sim::Time cost : costs) {
    const double fg = measure_write_latency(false, cost, writes, report);
    const double bg = measure_write_latency(true, cost, writes, report);
    report.registry()
        .gauge("bg_ablation/cost" +
               std::to_string(cost / sim::kMillisecond) + "ms/saved_ms")
        .set(fg - bg);
    table.add_row({harness::Table::num(
                       static_cast<double>(cost) / sim::kMillisecond, 0) + "ms",
                   harness::Table::num(fg), harness::Table::num(bg),
                   harness::Table::num(fg - bg),
                   "~1 signing delay (phase 3 off the path)"});
  }
  table.print();
  std::cout << "\n";
}

// ------------------------------------------------------------------
// Part (c): certificate-verification cache, cached vs uncached.

// Microbenchmark: validating one 2f+1-signature RSA certificate with and
// without memoization.
crypto::Keystore& cert_keystore() {
  static crypto::Keystore ks(crypto::SignatureScheme::kRsa, /*seed=*/7,
                             /*rsa_bits=*/512);
  return ks;
}

quorum::PrepareCertificate make_bench_cert(const quorum::QuorumConfig& config) {
  quorum::SignatureSet sigs;
  const quorum::Timestamp ts{1, 1};
  const crypto::Digest h = crypto::sha256(as_bytes_view("hot value"));
  const Bytes stmt = quorum::prepare_reply_statement(1, ts, h);
  for (quorum::ReplicaId r = 0; r < config.q; ++r) {
    sigs[r] = cert_keystore()
                  .register_principal(quorum::replica_principal(r))
                  .sign(stmt)
                  .value();
  }
  return quorum::PrepareCertificate(1, ts, h, std::move(sigs));
}

void BM_CertValidateRsa(benchmark::State& state) {
  const bool cached = state.range(0) != 0;
  const quorum::QuorumConfig config = quorum::QuorumConfig::bft_bc(1);
  crypto::Keystore& ks = cert_keystore();
  static const quorum::PrepareCertificate cert = make_bench_cert(config);
  ks.set_verify_cache_capacity(cached ? crypto::VerifyCache::kDefaultCapacity
                                      : 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cert.validate(config, ks).is_ok());
  }
  state.SetLabel(cached ? "cached" : "uncached");
}
BENCHMARK(BM_CertValidateRsa)->Arg(0)->Arg(1)->Unit(benchmark::kMicrosecond);

// Workload report: a client hammering one hot object through the full
// protocol over real RSA-512 signatures. Every write re-shows the same
// transferable certificates (phase-1 replies, PREPARE/WRITE carrying
// them, retransmits), so verification verdicts repeat heavily. The sim
// shares one Keystore across nodes, so this cache behaves like a
// per-process cache warmed by all replicas at once — an upper bound on a
// per-node deployment, but the per-hop repetition it exploits is real.
struct CacheWorkloadStats {
  std::uint64_t rsa_verifies = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
};

CacheWorkloadStats measure_cache_workload(bool cached, int writes) {
  harness::ClusterOptions o;
  o.seed = 42;
  o.scheme = crypto::SignatureScheme::kRsa;
  o.rsa_bits = 512;
  harness::Cluster cluster(o);
  if (!cached) cluster.keystore().set_verify_cache_capacity(0);
  auto& c = cluster.add_client(1);
  (void)cluster.write(c, 1, to_bytes("warmup"));
  cluster.keystore().reset_counters();

  for (int i = 0; i < writes; ++i) {
    (void)cluster.write(c, 1, to_bytes("v" + std::to_string(i)));
  }
  const Counters& ctr = cluster.keystore().counters();
  return {ctr.get("sig_verify_calls"), ctr.get("sig_cache_hit"),
          ctr.get("sig_cache_miss")};
}

void report_verification_cache(metrics::BenchReport& report) {
  harness::print_experiment_header(
      "E8(c): certificate-verification cache",
      "certificates are transferable proofs re-verified at every hop; "
      "memoizing (principal, statement, signature) verdicts removes the "
      "repeated RSA verifications from the hot path");

  const int kWrites = report.smoke() ? 3 : 10;
  const CacheWorkloadStats uncached = measure_cache_workload(false, kWrites);
  const CacheWorkloadStats cached = measure_cache_workload(true, kWrites);
  // The headline sig-cache counters: the CACHED workload's keystore stats.
  report.counter("sig_cache_hit").set(cached.hits);
  report.counter("sig_cache_miss").set(cached.misses);
  report.counter("sig_verify_calls").set(cached.rsa_verifies);
  report.counter("uncached_sig_verify_calls").set(uncached.rsa_verifies);

  harness::Table table({"mode", "writes (hot object)", "RSA verify calls",
                        "sig_cache_hit", "sig_cache_miss",
                        "verify calls / write"});
  table.add_row({"uncached", std::to_string(kWrites),
                 std::to_string(uncached.rsa_verifies),
                 std::to_string(uncached.hits),
                 std::to_string(uncached.misses),
                 harness::Table::num(static_cast<double>(uncached.rsa_verifies) /
                                     kWrites)});
  table.add_row({"cached", std::to_string(kWrites),
                 std::to_string(cached.rsa_verifies),
                 std::to_string(cached.hits), std::to_string(cached.misses),
                 harness::Table::num(static_cast<double>(cached.rsa_verifies) /
                                     kWrites)});
  table.print();
  const double reduction =
      cached.rsa_verifies == 0
          ? 0.0
          : static_cast<double>(uncached.rsa_verifies) /
                static_cast<double>(cached.rsa_verifies);
  std::cout << "RSA verify-call reduction: "
            << harness::Table::num(reduction, 1) << "x\n\n";
}

// ------------------------------------------------------------------
// Part (d): verify-pool scaling — one batch of distinct RSA checks.

void report_verify_pool(metrics::BenchReport& report) {
  harness::print_experiment_header(
      "E8(d): threaded verification pool",
      "a batch of independent signature checks is embarrassingly "
      "parallel; the keystore fans the cryptographic pass of "
      "verify_batch across a worker pool");

  const std::size_t batch = report.smoke() ? 8 : 48;
  const std::size_t q = quorum::QuorumConfig::bft_bc(1).n;
  crypto::Keystore ks(crypto::SignatureScheme::kRsa, /*seed=*/17,
                      /*rsa_bits=*/512);
  std::vector<crypto::Keystore::VerifyItem> base;
  for (std::size_t i = 0; i < batch; ++i) {
    const crypto::PrincipalId p =
        quorum::replica_principal(static_cast<quorum::ReplicaId>(i % q));
    crypto::Keystore::VerifyItem item;
    item.principal = p;
    item.statement = to_bytes("pool-stmt-" + std::to_string(i));
    item.sig = ks.register_principal(p).sign(item.statement).value();
    base.push_back(std::move(item));
  }
  // Every run must do the real crypto: no memoized verdicts.
  ks.set_verify_cache_capacity(0);

  harness::Table table({"threads", "batch", "wall time (ms)", "speedup"});
  double baseline_ms = 0;
  // Full mode covers the whole scaling ladder the nightly pool-scaling
  // job charts; smoke keeps the inline baseline plus one threaded point.
  std::vector<std::size_t> thread_counts{0, 2, 4, 8};
  if (report.smoke()) thread_counts.resize(2);
  for (std::size_t threads : thread_counts) {
    std::unique_ptr<crypto::VerifyPool> pool;
    if (threads > 0) {
      pool = std::make_unique<crypto::VerifyPool>(threads);
      ks.set_verify_pool(pool.get());
    } else {
      ks.set_verify_pool(nullptr);
    }
    auto items = base;
    const auto start = std::chrono::steady_clock::now();
    const std::size_t checks = ks.verify_batch(items);
    const auto stop = std::chrono::steady_clock::now();
    ks.set_verify_pool(nullptr);
    const double ms =
        std::chrono::duration<double, std::milli>(stop - start).count();
    if (threads == 0) baseline_ms = ms;
    for (const auto& item : items) {
      if (!item.valid) {
        std::cout << "verify_pool: UNEXPECTED invalid verdict\n";
        return;
      }
    }
    const double speedup = ms > 0 ? baseline_ms / ms : 0.0;
    report.registry()
        .gauge("verify_pool/threads" + std::to_string(threads) + "_ms")
        .set(ms);
    if (threads > 0) {
      report.registry()
          .gauge("verify_pool/threads" + std::to_string(threads) + "_speedup")
          .set(speedup);
    }
    table.add_row({std::to_string(threads) + (threads == 0 ? " (inline)" : ""),
                   std::to_string(checks), harness::Table::num(ms),
                   harness::Table::num(speedup, 2) + "x"});
  }
  table.print();
  std::cout << "\n";
}

// ------------------------------------------------------------------
// Part (f): batched certificate validation — a whole 2f+1-signature
// quorum certificate checked through Keystore::verify_batch, inline vs
// pooled. Unlike part (d)'s raw batch, this measures the protocol's own
// entry point (PrepareCertificate::validate), which chunks the quorum's
// signatures into one batch per pass so the early-exit-at-quorum
// property is preserved while the cryptographic work still fans out.

void report_batched_cert_validation(metrics::BenchReport& report) {
  harness::print_experiment_header(
      "E8(f): batched certificate validation",
      "certificate validation hands the quorum's signatures to "
      "verify_batch in one chunk; with workers attached, the 2f+1 RSA "
      "checks of a single certificate run concurrently instead of "
      "sequentially");

  const std::uint32_t f = report.smoke() ? 1 : 5;
  const quorum::QuorumConfig config = quorum::QuorumConfig::bft_bc(f);
  crypto::Keystore ks(crypto::SignatureScheme::kRsa, /*seed=*/29,
                      /*rsa_bits=*/512);
  quorum::SignatureSet sigs;
  const quorum::Timestamp ts{2, 1};
  const crypto::Digest h = crypto::sha256(as_bytes_view("batched value"));
  const Bytes stmt = quorum::prepare_reply_statement(1, ts, h);
  for (quorum::ReplicaId r = 0; r < config.q; ++r) {
    sigs[r] = ks.register_principal(quorum::replica_principal(r))
                  .sign(stmt)
                  .value();
  }
  const quorum::PrepareCertificate cert(1, ts, h, std::move(sigs));
  // Every validation must do the real crypto: no memoized verdicts.
  ks.set_verify_cache_capacity(0);

  const int iters = report.smoke() ? 2 : 10;
  harness::Table table({"threads", "sigs/cert", "per validate (ms)",
                        "speedup"});
  double baseline_ms = 0;
  std::vector<std::size_t> thread_counts{0, 2, 4};
  if (report.smoke()) thread_counts.resize(2);
  for (std::size_t threads : thread_counts) {
    std::unique_ptr<crypto::VerifyPool> pool;
    if (threads > 0) {
      pool = std::make_unique<crypto::VerifyPool>(threads);
      ks.set_verify_pool(pool.get());
    }
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < iters; ++i) {
      if (!cert.validate(config, ks).is_ok()) {
        std::cout << "cert_batch: UNEXPECTED invalid certificate\n";
        return;
      }
    }
    const auto stop = std::chrono::steady_clock::now();
    ks.set_verify_pool(nullptr);
    const double ms =
        std::chrono::duration<double, std::milli>(stop - start).count() /
        iters;
    if (threads == 0) baseline_ms = ms;
    const double speedup = ms > 0 ? baseline_ms / ms : 0.0;
    report.registry()
        .gauge("cert_batch/threads" + std::to_string(threads) + "_ms")
        .set(ms);
    if (threads > 0) {
      report.registry()
          .gauge("cert_batch/threads" + std::to_string(threads) + "_speedup")
          .set(speedup);
    }
    table.add_row({std::to_string(threads) + (threads == 0 ? " (inline)" : ""),
                   std::to_string(config.q), harness::Table::num(ms),
                   harness::Table::num(speedup, 2) + "x"});
  }
  table.print();
  std::cout << "\n";
}

// ------------------------------------------------------------------
// Part (e): MAC-authenticator mode vs signature mode, full protocol.

struct AuthModeStats {
  std::uint64_t sig_verifies = 0;
  std::uint64_t signs = 0;
  std::uint64_t mac_signs = 0;
  std::uint64_t mac_verifies = 0;
};

AuthModeStats measure_auth_mode(bool mac_auth, int writes) {
  harness::ClusterOptions o;
  o.seed = 77;
  o.scheme = crypto::SignatureScheme::kRsa;
  o.rsa_bits = 512;
  o.mac_auth = mac_auth;
  harness::Cluster cluster(o);
  // Verify cache at its default capacity: the comparison is between the
  // two modes as deployed, where memoization already absorbs repeated
  // certificate checks and the remaining RSA work is what each mode
  // genuinely demands per write.
  auto& c = cluster.add_client(1);
  (void)cluster.write(c, 1, to_bytes("warmup"));
  cluster.keystore().reset_counters();

  for (int i = 0; i < writes; ++i) {
    (void)cluster.write(c, 1, to_bytes("v" + std::to_string(i)));
  }
  const Counters& ctr = cluster.keystore().counters();
  return {ctr.get("sig_verify_calls"), ctr.get("sign"), ctr.get("mac_sign"),
          ctr.get("mac_verify")};
}

void report_auth_modes(metrics::BenchReport& report) {
  harness::print_experiment_header(
      "E8(e): MAC-authenticator mode vs signature mode",
      "point-to-point requests and replies carry MACs; RSA signatures "
      "remain only on the certificate statements third parties must "
      "check (3.3.2)");

  const int writes = report.smoke() ? 3 : 10;
  const AuthModeStats sig = measure_auth_mode(false, writes);
  const AuthModeStats mac = measure_auth_mode(true, writes);

  const double sig_per_write =
      static_cast<double>(sig.sig_verifies) / writes;
  const double mac_per_write =
      static_cast<double>(mac.sig_verifies) / writes;
  report.counter("authmode_sig_verify_calls").set(sig.sig_verifies);
  report.counter("authmode_mac_sig_verify_calls").set(mac.sig_verifies);
  report.counter("mac_sign").set(mac.mac_signs);
  report.counter("mac_verify").set(mac.mac_verifies);
  report.registry().gauge("auth_mode/sig/verify_per_write").set(sig_per_write);
  report.registry().gauge("auth_mode/mac/verify_per_write").set(mac_per_write);

  harness::Table table({"auth mode", "writes", "RSA verifies", "RSA signs",
                        "mac_sign", "mac_verify", "RSA verifies / write"});
  table.add_row({"sig", std::to_string(writes),
                 std::to_string(sig.sig_verifies), std::to_string(sig.signs),
                 std::to_string(sig.mac_signs),
                 std::to_string(sig.mac_verifies),
                 harness::Table::num(sig_per_write)});
  table.add_row({"mac", std::to_string(writes),
                 std::to_string(mac.sig_verifies), std::to_string(mac.signs),
                 std::to_string(mac.mac_signs),
                 std::to_string(mac.mac_verifies),
                 harness::Table::num(mac_per_write)});
  table.print();
  std::cout << "RSA verifications per write, sig -> mac: "
            << harness::Table::num(sig_per_write) << " -> "
            << harness::Table::num(mac_per_write) << "\n\n";
}

}  // namespace

int main(int argc, char** argv) {
  metrics::BenchArgs args = metrics::parse_bench_args(argc, argv);
  metrics::BenchReport report("bench_auth_cost", args);

  report_background_ablation(report);
  report_verification_cache(report);
  report_verify_pool(report);
  report_batched_cert_validation(report);
  report_auth_modes(report);

  harness::print_experiment_header(
      "E8(a): raw authentication costs",
      "public-key signatures are orders of magnitude more expensive than "
      "the MAC authenticators usable for point-to-point replies (3.3.2)");
  std::vector<char*> bench_argv(args.argv, args.argv + args.argc);
  std::string min_time = "--benchmark_min_time=0.001";
  if (report.smoke()) bench_argv.push_back(min_time.data());
  int bench_argc = static_cast<int>(bench_argv.size());
  benchmark::Initialize(&bench_argc, bench_argv.data());
  benchmark::RunSpecifiedBenchmarks();
  return report.finish();
}
