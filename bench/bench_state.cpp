// E5 — Replica state size (paper §3.3.1).
//
// "The size of the prepare list is O(|C|), where |C| is the number of
//  allowed writers ... the list is small because when replicas receive
//  write certificates in phase 2, they remove old entries ... The size
//  of the prepare certificate is O(|Q|)."
//
// Measures per-replica state bytes and prepare-list occupancy as the
// number of writers grows, and certificate size as f grows. Also runs
// the DESIGN.md ablation: Plist occupancy with and without clients
// completing their writes (garbage collection working vs. suppressed).
#include <functional>

#include "faults/byzantine_client.h"
#include "harness/cluster.h"
#include "harness/table.h"
#include "metrics/bench_report.h"

using namespace bftbc;
using harness::Cluster;
using harness::ClusterOptions;
using harness::Table;

int main(int argc, char** argv) {
  metrics::BenchArgs args = metrics::parse_bench_args(argc, argv);
  metrics::BenchReport report("bench_state", args);
  const std::vector<int> writer_sweep =
      report.smoke() ? std::vector<int>{1, 4}
                     : std::vector<int>{1, 2, 4, 8, 16, 32};
  const std::uint32_t max_f = report.smoke() ? 2 : 5;
  report.set_config("max_writers",
                    static_cast<std::int64_t>(writer_sweep.back()));
  report.set_config("max_f", static_cast<std::int64_t>(max_f));

  harness::print_experiment_header(
      "E5: replica state size",
      "prepare list O(#writers) and kept small by write-certificate GC; "
      "prepare certificate size O(|Q|) (3.3.1)");

  // --- Plist occupancy vs CONCURRENT writers: all clients write at
  // once; occupancy is sampled every simulated millisecond while the
  // burst is in flight (the peak is what the O(|C|) bound caps), and
  // again after the burst settles (GC shrinks it back).
  {
    Table table({"concurrent writers", "peak plist entries",
                 "entries after settle", "state bytes/replica (peak)",
                 "claimed bound"});
    for (int writers : writer_sweep) {
      Cluster cluster([] { ClusterOptions o; o.seed = 5; return o; }());
      int done = 0;
      std::vector<core::Client*> clients;
      for (int w = 1; w <= writers; ++w) {
        clients.push_back(
            &cluster.add_client(static_cast<quorum::ClientId>(w)));
      }
      for (int w = 0; w < writers; ++w) {
        clients[static_cast<std::size_t>(w)]->write(
            1, to_bytes("x" + std::to_string(w)),
            [&](Result<core::Client::WriteResult>) { ++done; });
      }
      std::size_t peak_plist = 0, peak_bytes = 0;
      std::function<void()> sample = [&] {
        for (quorum::ReplicaId r = 0; r < cluster.config().n; ++r) {
          const auto* st = cluster.replica(r).find_object(1);
          if (st == nullptr) continue;
          peak_plist = std::max(peak_plist, st->plist().size());
          peak_bytes = std::max(peak_bytes, st->state_bytes());
        }
        if (done < writers) {
          cluster.sim().schedule(sim::kMillisecond, sample);
        }
      };
      sample();
      cluster.run_until([&] { return done == writers; });
      cluster.settle();
      std::size_t after = 0;
      for (quorum::ReplicaId r = 0; r < cluster.config().n; ++r) {
        const auto* st = cluster.replica(r).find_object(1);
        if (st) after = std::max(after, st->plist().size());
      }
      const std::string key = "plist/w" + std::to_string(writers);
      report.registry().gauge(key + "/peak_entries")
          .set(static_cast<double>(peak_plist));
      report.registry().gauge(key + "/entries_after_settle")
          .set(static_cast<double>(after));
      report.registry().gauge(key + "/peak_state_bytes")
          .set(static_cast<double>(peak_bytes));
      report.merge(cluster.snapshot_metrics());
      table.add_row({std::to_string(writers), std::to_string(peak_plist),
                     std::to_string(after), std::to_string(peak_bytes),
                     "<= " + std::to_string(writers)});
    }
    table.print();
  }

  // --- Ablation: GC at work. Clients that complete writes leave at most
  // their latest entry; stashers that never complete phase 3 pin one
  // entry forever (the bounded damage).
  {
    std::cout << "\n--- ablation: write-certificate garbage collection ---\n";
    Table table({"scenario", "plist entries after workload", "note"});

    // (a) one client, many completed writes: entries keep getting GC'd.
    {
      Cluster cluster([] { ClusterOptions o; o.seed = 6; return o; }());
      auto& c = cluster.add_client(1);
      for (int i = 0; i < 10; ++i)
        (void)cluster.write(c, 1, to_bytes("v" + std::to_string(i)));
      cluster.settle();
      const auto* st = cluster.replica(0).find_object(1);
      table.add_row({"10 completed writes, 1 client",
                     std::to_string(st ? st->plist().size() : 0),
                     "last write's entry may linger until next GC"});
    }

    // (b) a stasher that never completes: exactly one pinned entry.
    {
      Cluster cluster([] { ClusterOptions o; o.seed = 7; return o; }());
      auto& good = cluster.add_client(1);
      (void)cluster.write(good, 1, to_bytes("base"));
      auto transport = cluster.make_transport(harness::client_node(66));
      faults::LurkingWriteStasher stasher(
          cluster.config(), 66, cluster.keystore(), *transport, cluster.sim(),
          cluster.replica_nodes(), cluster.rng().split());
      bool done = false;
      stasher.attack(1, 5, false,
                     [&](faults::LurkingWriteStasher::Outcome) { done = true; });
      cluster.run_until([&] { return done; });
      std::size_t pinned_before = 0;
      for (quorum::ReplicaId r = 0; r < cluster.config().n; ++r) {
        const auto* st = cluster.replica(r).find_object(1);
        if (st && st->plist().count(66)) ++pinned_before;
      }
      // Good writes eventually OVERTAKE the stashed timestamp; the write
      // certificates they carry then garbage-collect even the abandoned
      // entry — the same mechanism that masks lurking writes.
      for (int i = 0; i < 5; ++i)
        (void)cluster.write(good, 1, to_bytes("g" + std::to_string(i)));
      cluster.settle();
      std::size_t pinned_after = 0;
      for (quorum::ReplicaId r = 0; r < cluster.config().n; ++r) {
        const auto* st = cluster.replica(r).find_object(1);
        if (st && st->plist().count(66)) ++pinned_after;
      }
      table.add_row({"abandoned prepare (stasher)",
                     std::to_string(pinned_before) + " replicas -> " +
                         std::to_string(pinned_after) + " after 5 good writes",
                     "1 slot max, GC'd once overtaken"});
    }
    table.print();
  }

  // --- Ablation: §3.3.1's "propagate write certificates in read
  // requests" speed-up (ClientOptions::gc_in_reads). A client that
  // writes once and then only reads leaves its final plist entry pinned
  // at every replica — unless its reads carry the write certificate.
  {
    std::cout << "\n--- ablation: write-certificate propagation in reads ---\n";
    Table table({"gc_in_reads", "plist entries after write+reads",
                 "replicas still holding the entry"});
    for (bool gc : {false, true}) {
      Cluster cluster(ClusterOptions{});
      core::ClientOptions copts;
      copts.gc_in_reads = gc;
      auto& c = cluster.add_client(1, copts);
      (void)cluster.write(c, 1, to_bytes("once"));
      for (int i = 0; i < 3; ++i) (void)cluster.read(c, 1);
      cluster.settle();
      std::size_t holding = 0;
      for (quorum::ReplicaId r = 0; r < cluster.config().n; ++r) {
        const auto* st = cluster.replica(r).find_object(1);
        if (st && st->plist().count(1)) ++holding;
      }
      table.add_row({gc ? "on" : "off",
                     holding > 0 ? "1 (lingers)" : "0 (collected)",
                     std::to_string(holding) + "/" +
                         std::to_string(cluster.config().n)});
    }
    table.print();
  }

  // --- Certificate size vs f.
  {
    std::cout << "\n--- prepare certificate size vs f ---\n";
    Table table({"f", "|Q|", "cert bytes", "bytes per signature"});
    for (std::uint32_t f = 1; f <= max_f; ++f) {
      ClusterOptions o;
      o.f = f;
      o.seed = 40 + f;
      Cluster cluster(o);
      auto& c = cluster.add_client(1);
      (void)cluster.write(c, 1, to_bytes("value"));
      cluster.settle();
      const auto* st = cluster.replica(0).find_object(1);
      Writer w;
      st->pcert().encode(w);
      const double per_sig =
          static_cast<double>(w.size()) / st->pcert().signatures().size();
      report.registry().gauge("cert/f" + std::to_string(f) + "/bytes")
          .set(static_cast<double>(w.size()));
      table.add_row({std::to_string(f), std::to_string(2 * f + 1),
                     std::to_string(w.size()), Table::num(per_sig)});
    }
    table.print();
  }

  std::cout << "\nPlist stays <= #writers and certificates grow linearly in "
               "|Q| — the claimed O(|C|) and O(|Q|) state bounds.\n";
  return report.finish();
}
