// E10 — Comparison against prior protocols (paper §8's related-work
// analysis, rendered as measurements).
//
// Rows reproduce the qualitative table implicit in §8:
//
//   protocol        replicas  write phases  read phases  byz-client safe  null reads
//   BQS (classic)   3f+1      2             1-2          NO               no
//   Phalanx-style   4f+1      2 + echo      1            partially        YES
//   BFT-BC base     3f+1      3             1-2          YES (<=1 lurk)   no
//   BFT-BC opt      3f+1      2             1-2          YES (<=2 lurk)   no
//
// Plus measured latency and messages per op for each, and the
// equivocation-attack outcome per protocol.
#include "baselines/bqs.h"
#include "faults/byzantine_client.h"
#include "harness/baseline_cluster.h"
#include "harness/cluster.h"
#include "harness/table.h"
#include "metrics/bench_report.h"

using namespace bftbc;
using harness::BaselineOptions;
using harness::BqsCluster;
using harness::Cluster;
using harness::ClusterOptions;
using harness::PhalanxCluster;
using harness::Table;

namespace {

struct ProtoRow {
  std::string name;
  std::uint32_t replicas;
  double write_phases;
  double write_latency_ms;
  double write_msgs;
  std::string equivocation;
  std::string nulls;
};

int kOps = 20;  // shrunk by --smoke

double ms(sim::Time t) { return static_cast<double>(t) / sim::kMillisecond; }

ProtoRow measure_bftbc(bool optimized, metrics::BenchReport& report) {
  ClusterOptions o;
  o.optimized = optimized;
  o.seed = 3;
  Cluster cluster(o);
  auto& c = cluster.add_client(1);
  (void)cluster.write(c, 1, to_bytes("warm"));
  cluster.settle();
  cluster.net().reset_counters();

  Summary latency;
  Histogram phases;
  for (int i = 0; i < kOps; ++i) {
    const sim::Time start = cluster.sim().now();
    auto w = cluster.write(c, 1, to_bytes("v" + std::to_string(i)));
    latency.add(ms(cluster.sim().now() - start));
    if (w.is_ok()) phases.add(w.value().phases);
  }
  cluster.settle();
  const double msgs =
      static_cast<double>(cluster.net().counters().get("msgs_sent")) / kOps;

  // Equivocation outcome.
  std::string equiv = "blocked (no cert obtainable)";
  {
    ClusterOptions ao;
    ao.optimized = optimized;
    ao.seed = 4;
    Cluster acl(ao);
    auto t = acl.make_transport(harness::client_node(66));
    faults::EquivocatorClient attacker(acl.config(), 66, acl.keystore(), *t,
                                       acl.sim(), acl.replica_nodes(),
                                       acl.rng().split());
    std::optional<faults::EquivocatorClient::Outcome> out;
    attacker.attack(1, to_bytes("A"), to_bytes("B"),
                    [&](faults::EquivocatorClient::Outcome o) { out = o; });
    acl.run_until([&] { return out.has_value(); });
    if (out->cert_v1 && out->cert_v2) equiv = "SPLIT (unsafe)";
  }

  const std::string key = optimized ? "bftbc_opt" : "bftbc_base";
  report.add_summary(key + "/write_latency_ms", latency);
  report.add_histogram(key + "/write_phases", phases);
  report.registry().gauge(key + "/msgs_per_write").set(msgs);
  report.merge(cluster.snapshot_metrics());
  return ProtoRow{optimized ? "BFT-BC optimized" : "BFT-BC base",
                  cluster.config().n,
                  phases.mean(),
                  latency.mean(),
                  msgs,
                  equiv,
                  "never (reads self-certifying)"};
}

ProtoRow measure_bqs(metrics::BenchReport& report) {
  BaselineOptions o;
  o.seed = 3;
  BqsCluster cluster(o);
  auto& c = cluster.add_client(1);
  (void)cluster.write(c, 1, to_bytes("warm"));
  cluster.sim().run();
  cluster.net().reset_counters();

  Summary latency;
  Histogram phases;
  for (int i = 0; i < kOps; ++i) {
    const sim::Time start = cluster.sim().now();
    auto w = cluster.write(c, 1, to_bytes("v" + std::to_string(i)));
    latency.add(ms(cluster.sim().now() - start));
    if (w.is_ok()) phases.add(w.value().phases);
  }
  cluster.sim().run();
  const double msgs =
      static_cast<double>(cluster.net().counters().get("msgs_sent")) / kOps;

  // Equivocation outcome: the split-brain attack.
  std::string equiv;
  {
    BaselineOptions ao;
    ao.seed = 4;
    BqsCluster acl(ao);
    auto& good = acl.add_client(1);
    (void)acl.write(good, 1, to_bytes("v0"));
    auto t = acl.make_transport(harness::client_node(66));
    baselines::BqsEquivocator attacker(acl.config(), 66, acl.keystore(), *t,
                                       acl.sim(), acl.replica_nodes(),
                                       acl.rng().split());
    bool done = false;
    attacker.attack(1, to_bytes("A"), to_bytes("B"), [&] { done = true; });
    acl.sim().run_while_pending([&] { return !done; });
    acl.sim().run();
    std::set<std::string> values;
    for (quorum::ReplicaId r = 0; r < acl.config().n; ++r) {
      const auto* e = acl.replica(r).find_object(1);
      if (e) values.insert(to_string(e->value));
    }
    equiv = values.size() > 1 ? "SPLIT (unsafe)" : "not split (this run)";
  }

  report.add_summary("bqs/write_latency_ms", latency);
  report.add_histogram("bqs/write_phases", phases);
  report.registry().gauge("bqs/msgs_per_write").set(msgs);
  return ProtoRow{"BQS classic", cluster.config().n, phases.mean(),
                  latency.mean(), msgs, equiv, "never"};
}

ProtoRow measure_phalanx(metrics::BenchReport& report) {
  BaselineOptions o;
  o.seed = 3;
  PhalanxCluster cluster(o);
  auto& c = cluster.add_client(1);
  (void)cluster.write(c, 1, to_bytes("warm"));
  cluster.settle();
  cluster.net().reset_counters();

  Summary latency;
  Histogram phases;
  for (int i = 0; i < kOps; ++i) {
    const sim::Time start = cluster.sim().now();
    auto w = cluster.write(c, 1, to_bytes("v" + std::to_string(i)));
    latency.add(ms(cluster.sim().now() - start));
    if (w.is_ok()) phases.add(w.value().phases);
    cluster.settle();  // echo round completes off the client's path
  }
  const double msgs =
      static_cast<double>(cluster.net().counters().get("msgs_sent")) / kOps;

  // Null-read demonstration (deterministic partition construction).
  std::string nulls;
  {
    BaselineOptions no;
    no.seed = 5;
    no.link.jitter_mean = 0;
    PhalanxCluster ncl(no);
    auto& w = ncl.add_client(1);
    (void)ncl.write(w, 1, to_bytes("base"));
    ncl.settle();
    for (sim::NodeId a = 1; a <= 4; ++a)
      for (sim::NodeId b = a + 1; b <= 4; ++b) ncl.net().partition(a, b);
    (void)ncl.write(w, 1, to_bytes("half"));
    ncl.settle();
    auto& reader = ncl.add_client(2);
    auto r = ncl.read(reader, 1);
    nulls = (r.is_ok() && !r.value().value.has_value())
                ? "YES (incomplete write -> null)"
                : "not triggered (this run)";
  }

  report.add_summary("phalanx/write_latency_ms", latency);
  report.add_histogram("phalanx/write_phases", phases);
  report.registry().gauge("phalanx/msgs_per_write").set(msgs);
  return ProtoRow{"Phalanx-style", cluster.config().n, phases.mean(),
                  latency.mean(), msgs,
                  "blocked (echo quorum unreachable)", nulls};
}

ProtoRow measure_sbql(metrics::BenchReport& report) {
  BaselineOptions o;
  o.seed = 3;
  harness::SbqlCluster cluster(o);
  auto& c = cluster.add_client(1);
  (void)cluster.write(c, 1, to_bytes("warm"));
  cluster.run_for(sim::kSecond);
  cluster.net().reset_counters();

  Summary latency;
  Histogram phases;
  for (int i = 0; i < kOps; ++i) {
    const sim::Time start = cluster.sim().now();
    auto w = cluster.write(c, 1, to_bytes("v" + std::to_string(i)));
    latency.add(ms(cluster.sim().now() - start));
    if (w.is_ok()) phases.add(w.value().phases);
    cluster.run_for(200 * sim::kMillisecond);  // let forwards settle
  }
  const double msgs =
      static_cast<double>(cluster.net().counters().get("msgs_sent")) / kOps;

  report.add_summary("sbql/write_latency_ms", latency);
  report.add_histogram("sbql/write_phases", phases);
  report.registry().gauge("sbql/msgs_per_write").set(msgs);
  return ProtoRow{"SBQ-L (reliable net)",
                  cluster.config().n,
                  phases.mean(),
                  latency.mean(),
                  msgs,
                  "blocked (server forwarding)",
                  "reader retries until identical"};
}

// §8's buffer criticism, measured: server-side state after N writes with
// one crashed replica — SBQ-L's reliable forwarding buffers grow without
// bound; BFT-BC has no server-to-server traffic at all.
void buffer_growth_section(metrics::BenchReport& report) {
  std::cout << "\n--- reliable-network cost: buffered server bytes with one "
               "crashed replica ---\n";
  Table table({"writes completed", "SBQ-L buffered bytes",
               "BFT-BC server-to-server bytes"});
  BaselineOptions o;
  o.seed = 8;
  harness::SbqlCluster sbql(o);
  sbql.net().crash(3);
  auto& sc = sbql.add_client(1);
  const std::vector<int> batches =
      report.smoke() ? std::vector<int>{5} : std::vector<int>{5, 10, 20, 40};
  int written = 0;
  for (int batch : batches) {
    while (written < batch) {
      (void)sbql.write(sc, 1, to_bytes("w" + std::to_string(written)));
      ++written;
    }
    sbql.run_for(200 * sim::kMillisecond);
    report.registry()
        .gauge("sbql/buffered_bytes_after_w" + std::to_string(batch))
        .set(static_cast<double>(sbql.total_outbox_bytes()));
    table.add_row({std::to_string(batch),
                   std::to_string(sbql.total_outbox_bytes()),
                   "0 (no replica gossip in the protocol)"});
  }
  table.print();
  std::cout << "SBQ-L's buffers grow linearly forever while the replica is "
               "down; every other protocol in this repo keeps servers "
               "stateless toward each other (BFT-BC) or bounded (Phalanx "
               "echoes are GC'd at commit).\n";
}

}  // namespace

int main(int argc, char** argv) {
  metrics::BenchArgs args = metrics::parse_bench_args(argc, argv);
  metrics::BenchReport report("bench_baselines", args);
  if (report.smoke()) kOps = 5;
  report.set_config("ops_per_protocol", static_cast<std::int64_t>(kOps));

  harness::print_experiment_header(
      "E10: comparison with prior Byzantine quorum protocols",
      "BFT-BC handles Byzantine clients with only 3f+1 replicas and no "
      "reliable-network assumption; BQS is cheaper but splits under client "
      "equivocation; Phalanx-style needs 4f+1 replicas, a server echo "
      "round, and its reads can return null (8)");

  Table table({"protocol", "replicas", "write phases (mean)",
               "write latency ms", "client msgs/write", "equivocation attack",
               "null reads"});
  for (const ProtoRow& row :
       {measure_bqs(report), measure_phalanx(report), measure_sbql(report),
        measure_bftbc(false, report), measure_bftbc(true, report)}) {
    table.add_row({row.name, std::to_string(row.replicas),
                   Table::num(row.write_phases), Table::num(row.write_latency_ms),
                   Table::num(row.write_msgs), row.equivocation, row.nulls});
  }
  table.print();

  buffer_growth_section(report);

  std::cout
      << "\nShape to check against 8: BQS is the cheapest and the only "
         "unsafe one; Phalanx pays f extra replicas per fault and an echo "
         "round (visible in msgs/write) and can return null; BFT-BC "
         "(optimized) matches BQS's 2 client phases while keeping 3f+1 "
         "replicas and full Byzantine-client safety.\n";
  return report.finish();
}
