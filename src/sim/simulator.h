// Deterministic discrete-event simulator.
//
// The protocol stack runs over virtual time: timers, message deliveries,
// and crypto-cost charges are all events in one priority queue. Two runs
// with the same seed execute the same event sequence — the property every
// test and benchmark in this repo leans on.
//
// Tie-breaking: events at the same virtual time fire in insertion order
// (a monotone sequence number), so determinism never depends on
// std::priority_queue internals.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace bftbc::sim {

// Virtual time in nanoseconds.
using Time = std::uint64_t;

constexpr Time kMicrosecond = 1000;
constexpr Time kMillisecond = 1000 * kMicrosecond;
constexpr Time kSecond = 1000 * kMillisecond;

using TimerId = std::uint64_t;

// The timer contract protocol code is written against: current time plus
// schedule/cancel. Two implementations exist — the discrete-event
// Simulator below (virtual time) and net::EventLoop (monotonic wall
// time over epoll/poll) — so the identical client/replica state machines
// run simulated and live. Implementations never hand out TimerId 0 and
// never reuse an id, and cancel(0) / cancel(fired id) are no-ops; timer
// holders zero their stored ids once a timer fires (see QuorumCall).
class Scheduler {
 public:
  virtual ~Scheduler() = default;

  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  virtual Time now() const = 0;

  // Schedule fn to run at now() + delay. Returns an id usable with cancel.
  virtual TimerId schedule(Time delay, std::function<void()> fn) = 0;

  // Cancel a pending timer; no-op if already fired or cancelled.
  virtual void cancel(TimerId id) = 0;
};

class Simulator final : public Scheduler {
 public:
  Simulator();
  ~Simulator() override;

  Time now() const override { return now_; }

  TimerId schedule(Time delay, std::function<void()> fn) override;
  TimerId schedule_at(Time when, std::function<void()> fn);

  void cancel(TimerId id) override;

  // Run a single event. Returns false if the queue is empty.
  bool step();

  // Run until the event queue drains or max_events fire; returns the
  // number of events executed. A bounded default guards against protocol
  // bugs that retransmit forever.
  std::size_t run(std::size_t max_events = kDefaultMaxEvents);

  // Run events with timestamp <= deadline (advances now_ to deadline even
  // if the queue empties earlier).
  std::size_t run_until(Time deadline);

  // Run until pred() is true, the queue drains, or max_events fire.
  // Returns true iff pred() held when it stopped.
  bool run_while_pending(const std::function<bool()>& pred,
                         std::size_t max_events = kDefaultMaxEvents);

  std::size_t pending_events() const { return queue_.size() - cancelled_.size(); }
  std::uint64_t executed_events() const { return executed_; }

  static constexpr std::size_t kDefaultMaxEvents = 50'000'000;

 private:
  struct Event {
    Time when;
    std::uint64_t seq;
    TimerId id;
    // Ordering for the min-heap: earliest time first, then FIFO.
    bool operator>(const Event& other) const {
      if (when != other.when) return when > other.when;
      return seq > other.seq;
    }
  };

  // Callbacks live outside the heap entries so cancel() is O(1).
  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> queue_;
  std::unordered_map<TimerId, std::function<void()>> callbacks_;
  std::unordered_set<TimerId> cancelled_;

  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  TimerId next_id_ = 1;
  std::uint64_t executed_ = 0;
};

}  // namespace bftbc::sim
