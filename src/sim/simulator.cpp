#include "sim/simulator.h"

#include "util/log.h"

namespace bftbc::sim {

Simulator::Simulator() {
  // Log lines carry virtual time while this simulator is alive.
  set_log_time_source([this] { return now_; });
}

Simulator::~Simulator() { clear_log_time_source(); }

TimerId Simulator::schedule(Time delay, std::function<void()> fn) {
  return schedule_at(now_ + delay, std::move(fn));
}

TimerId Simulator::schedule_at(Time when, std::function<void()> fn) {
  const TimerId id = next_id_++;
  if (when < now_) when = now_;
  queue_.push(Event{when, next_seq_++, id});
  callbacks_.emplace(id, std::move(fn));
  return id;
}

void Simulator::cancel(TimerId id) {
  if (callbacks_.erase(id) > 0) cancelled_.insert(id);
}

bool Simulator::step() {
  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    if (cancelled_.erase(ev.id) > 0) continue;  // tombstone
    auto it = callbacks_.find(ev.id);
    if (it == callbacks_.end()) continue;
    std::function<void()> fn = std::move(it->second);
    callbacks_.erase(it);
    now_ = ev.when;
    ++executed_;
    fn();
    return true;
  }
  return false;
}

std::size_t Simulator::run(std::size_t max_events) {
  std::size_t n = 0;
  while (n < max_events && step()) ++n;
  if (n == max_events) {
    BFTBC_LOG(kWarn) << "simulator stopped at max_events=" << max_events
                     << " with " << pending_events() << " pending";
  }
  return n;
}

std::size_t Simulator::run_until(Time deadline) {
  std::size_t n = 0;
  while (!queue_.empty()) {
    // Skip over tombstones to see the true next event time.
    Event top = queue_.top();
    if (cancelled_.count(top.id)) {
      queue_.pop();
      cancelled_.erase(top.id);
      continue;
    }
    if (top.when > deadline) break;
    if (step()) ++n;
  }
  if (now_ < deadline) now_ = deadline;
  return n;
}

bool Simulator::run_while_pending(const std::function<bool()>& pred,
                                  std::size_t max_events) {
  std::size_t n = 0;
  while (pred()) {
    if (n >= max_events || !step()) return pred();
    ++n;
  }
  return false;
}

}  // namespace bftbc::sim
