// Simulated unreliable asynchronous network (the paper's §2 model).
//
// "...a network that may fail to deliver messages, delay them, duplicate
//  them, corrupt them, or deliver them out of order, and there are no
//  known bounds on message delays."
//
// Each of those behaviors is a knob:
//   - loss_probability          fail to deliver
//   - duplicate_probability     deliver twice (at independent delays)
//   - corrupt_probability       flip a byte (receivers must reject)
//   - delay distribution        base + exponential jitter → reordering
//   - partitions                temporary total loss between node pairs
//
// The liveness assumption ("a request retransmitted to a correct server
// eventually gets a reply") holds for any loss_probability < 1, since
// deliveries are independent Bernoulli trials.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <vector>

#include "metrics/registry.h"
#include "metrics/trace.h"
#include "sim/simulator.h"
#include "util/bytes.h"
#include "util/encoded_message.h"
#include "util/rng.h"
#include "util/stats.h"

namespace bftbc::sim {

using NodeId = std::uint32_t;

struct LinkConfig {
  Time base_delay = 500 * kMicrosecond;   // propagation floor
  Time jitter_mean = 200 * kMicrosecond;  // exponential jitter (reordering)
  double loss_probability = 0.0;
  double duplicate_probability = 0.0;
  double corrupt_probability = 0.0;
};

class Network {
 public:
  Network(Simulator& simulator, Rng rng, LinkConfig default_link = {})
      : sim_(simulator), rng_(rng), default_link_(default_link) {}

  // Handlers receive the shared immutable wire buffer: retaining it past
  // the callback is one refcount bump, never a copy.
  using Handler = std::function<void(NodeId from, const EncodedMessage& payload)>;

  // Register a node; messages addressed to `id` invoke `handler` at
  // delivery (virtual) time. Re-registering replaces the handler.
  void register_node(NodeId id, Handler handler);
  void unregister_node(NodeId id);

  // Queue a message. Applies the link's loss/duplication/corruption/delay
  // model; delivery happens via simulator events. The payload buffer is
  // shared (refcounted) across queueing and duplicate delivery; only the
  // corruption model copies, into a private buffer.
  void send(NodeId from, NodeId to, const EncodedMessage& payload);
  void send(NodeId from, NodeId to, Bytes payload) {
    send(from, to, EncodedMessage::wrap(std::move(payload)));
  }

  // Serialization accounting for the encode-once fan-out: the transport
  // calls this once per fresh Envelope::encode() (cache misses only), so
  // "encode_calls" vs "msgs_sent" measures buffer reuse.
  void note_encode();

  // Per-directed-link override (from → to).
  void set_link(NodeId from, NodeId to, LinkConfig cfg);
  void set_default_link(LinkConfig cfg) { default_link_ = cfg; }
  const LinkConfig& default_link() const { return default_link_; }

  // Symmetric partition management: while partitioned, all messages
  // between a and b are dropped.
  void partition(NodeId a, NodeId b);
  void heal(NodeId a, NodeId b);
  void partition_group(const std::vector<NodeId>& group_a,
                       const std::vector<NodeId>& group_b);
  void heal_all();
  bool is_partitioned(NodeId a, NodeId b) const;

  // A crashed node silently drops all traffic addressed to it (models
  // benign failure; Byzantine behaviors live in src/faults).
  void crash(NodeId id) { crashed_.insert(id); }
  void recover(NodeId id) { crashed_.erase(id); }
  bool is_crashed(NodeId id) const { return crashed_.count(id) != 0; }

  // Traffic accounting for the message-complexity experiments:
  // "msgs_sent", "msgs_delivered", "msgs_dropped", "msgs_duplicated",
  // "msgs_corrupted", "bytes_sent", "bytes_delivered".
  const Counters& counters() const { return counters_; }
  void reset_counters() { counters_.reset(); }

  // Resolves O(1) registry handles under `scope` (e.g. "net/msgs_sent")
  // so the same totals also land in the metrics registry the harness
  // snapshots into bench JSON. Recording goes through pre-resolved
  // pointers — no per-message name lookups.
  //
  // When `only` is non-null, just the named counters are bound and every
  // other handle stays null — callers that track a subset (say, message
  // counts without byte totals) are a supported configuration, so each
  // recording site guards each pointer individually.
  void bind_metrics(metrics::MetricsRegistry& registry,
                    const std::string& scope,
                    const std::set<std::string>* only = nullptr);

  // Optional event tracer: message send/deliver/drop events are recorded
  // into the ring buffer (null disables).
  void set_tracer(metrics::Tracer* tracer) { tracer_ = tracer; }

 private:
  const LinkConfig& link_for(NodeId from, NodeId to) const;
  Time draw_delay(const LinkConfig& cfg);
  void deliver_later(NodeId from, NodeId to, EncodedMessage payload,
                     Time delay);

  Simulator& sim_;
  Rng rng_;
  LinkConfig default_link_;
  std::map<NodeId, Handler> handlers_;
  std::map<std::pair<NodeId, NodeId>, LinkConfig> link_overrides_;
  std::set<std::pair<NodeId, NodeId>> partitions_;  // normalized (min,max)
  std::set<NodeId> crashed_;
  Counters counters_;

  // Pre-resolved registry handles (all null until bind_metrics).
  struct RegistryHandles {
    metrics::Counter* msgs_sent = nullptr;
    metrics::Counter* msgs_delivered = nullptr;
    metrics::Counter* msgs_dropped = nullptr;
    metrics::Counter* msgs_duplicated = nullptr;
    metrics::Counter* msgs_corrupted = nullptr;
    metrics::Counter* bytes_sent = nullptr;
    metrics::Counter* bytes_delivered = nullptr;
    metrics::Counter* encode_calls = nullptr;
  };
  RegistryHandles reg_;
  metrics::Tracer* tracer_ = nullptr;
};

}  // namespace bftbc::sim
