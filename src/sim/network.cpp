#include "sim/network.h"

#include "util/log.h"

namespace bftbc::sim {

void Network::register_node(NodeId id, Handler handler) {
  handlers_[id] = std::move(handler);
}

void Network::unregister_node(NodeId id) { handlers_.erase(id); }

void Network::bind_metrics(metrics::MetricsRegistry& registry,
                           const std::string& scope,
                           const std::set<std::string>* only) {
  metrics::MetricsRegistry::Scope s = registry.scoped(scope);
  auto bind = [&](const char* name, metrics::Counter*& slot) {
    if (only == nullptr || only->count(name) != 0) slot = &s.counter(name);
  };
  bind("msgs_sent", reg_.msgs_sent);
  bind("msgs_delivered", reg_.msgs_delivered);
  bind("msgs_dropped", reg_.msgs_dropped);
  bind("msgs_duplicated", reg_.msgs_duplicated);
  bind("msgs_corrupted", reg_.msgs_corrupted);
  bind("bytes_sent", reg_.bytes_sent);
  bind("bytes_delivered", reg_.bytes_delivered);
  bind("encode_calls", reg_.encode_calls);
}

void Network::note_encode() {
  counters_.inc("encode_calls");
  if (reg_.encode_calls) reg_.encode_calls->inc();
}

const LinkConfig& Network::link_for(NodeId from, NodeId to) const {
  auto it = link_overrides_.find({from, to});
  return it == link_overrides_.end() ? default_link_ : it->second;
}

Time Network::draw_delay(const LinkConfig& cfg) {
  Time d = cfg.base_delay;
  if (cfg.jitter_mean > 0) {
    d += static_cast<Time>(
        rng_.next_exponential(static_cast<double>(cfg.jitter_mean)));
  }
  return d;
}

void Network::deliver_later(NodeId from, NodeId to, EncodedMessage payload,
                            Time delay) {
  // Capturing the EncodedMessage bumps the refcount on the shared wire
  // buffer; the bytes themselves are never copied into the event queue.
  sim_.schedule(delay, [this, from, to, payload = std::move(payload)]() {
    if (crashed_.count(to) != 0 || handlers_.find(to) == handlers_.end()) {
      counters_.inc("msgs_dropped");
      if (reg_.msgs_dropped) reg_.msgs_dropped->inc();
      if (tracer_) {
        tracer_->record(sim_.now(), metrics::TraceKind::kMsgDrop, from, to,
                        crashed_.count(to) ? "crashed" : "unregistered");
      }
      return;
    }
    counters_.inc("msgs_delivered");
    counters_.inc("bytes_delivered", payload.size());
    // Per-pointer guards: a partial bind_metrics leaves individual
    // handles null, and one bound pointer says nothing about another.
    if (reg_.msgs_delivered) reg_.msgs_delivered->inc();
    if (reg_.bytes_delivered) reg_.bytes_delivered->inc(payload.size());
    if (tracer_) {
      tracer_->record(sim_.now(), metrics::TraceKind::kMsgDeliver, from, to);
    }
    handlers_.at(to)(from, payload);
  });
}

void Network::send(NodeId from, NodeId to, const EncodedMessage& payload) {
  counters_.inc("msgs_sent");
  counters_.inc("bytes_sent", payload.size());
  if (reg_.msgs_sent) reg_.msgs_sent->inc();
  if (reg_.bytes_sent) reg_.bytes_sent->inc(payload.size());
  if (tracer_) {
    tracer_->record(sim_.now(), metrics::TraceKind::kMsgSend, from, to,
                    std::to_string(payload.size()) + "B");
  }

  if (is_partitioned(from, to) || crashed_.count(to) != 0) {
    counters_.inc("msgs_dropped");
    if (reg_.msgs_dropped) reg_.msgs_dropped->inc();
    if (tracer_) {
      tracer_->record(sim_.now(), metrics::TraceKind::kMsgDrop, from, to,
                      is_partitioned(from, to) ? "partitioned" : "crashed");
    }
    return;
  }

  const LinkConfig& cfg = link_for(from, to);
  if (rng_.next_bool(cfg.loss_probability)) {
    counters_.inc("msgs_dropped");
    if (reg_.msgs_dropped) reg_.msgs_dropped->inc();
    if (tracer_) {
      tracer_->record(sim_.now(), metrics::TraceKind::kMsgDrop, from, to,
                      "loss");
    }
    return;
  }

  EncodedMessage to_deliver = payload;  // refcount bump, not a byte copy
  if (rng_.next_bool(cfg.corrupt_probability) && to_deliver.size() > 0) {
    // Flip one random byte in a *private* copy; receivers must treat it
    // as garbage, and other holders of the shared buffer must not see it.
    Bytes mutated = to_deliver.copy();
    const std::size_t idx =
        static_cast<std::size_t>(rng_.next_below(mutated.size()));
    mutated[idx] ^= static_cast<std::uint8_t>(1 + rng_.next_below(255));
    to_deliver = EncodedMessage::wrap(std::move(mutated));
    counters_.inc("msgs_corrupted");
    if (reg_.msgs_corrupted) reg_.msgs_corrupted->inc();
  }

  if (rng_.next_bool(cfg.duplicate_probability)) {
    counters_.inc("msgs_duplicated");
    if (reg_.msgs_duplicated) reg_.msgs_duplicated->inc();
    // The duplicate shares the same buffer as the original delivery.
    deliver_later(from, to, to_deliver, draw_delay(cfg));
  }
  deliver_later(from, to, std::move(to_deliver), draw_delay(cfg));
}

void Network::set_link(NodeId from, NodeId to, LinkConfig cfg) {
  link_overrides_[{from, to}] = cfg;
}

namespace {
std::pair<NodeId, NodeId> normalized(NodeId a, NodeId b) {
  return a < b ? std::make_pair(a, b) : std::make_pair(b, a);
}
}  // namespace

void Network::partition(NodeId a, NodeId b) {
  partitions_.insert(normalized(a, b));
}

void Network::heal(NodeId a, NodeId b) { partitions_.erase(normalized(a, b)); }

void Network::partition_group(const std::vector<NodeId>& group_a,
                              const std::vector<NodeId>& group_b) {
  for (NodeId a : group_a)
    for (NodeId b : group_b) partition(a, b);
}

void Network::heal_all() { partitions_.clear(); }

bool Network::is_partitioned(NodeId a, NodeId b) const {
  return partitions_.count(normalized(a, b)) != 0;
}

}  // namespace bftbc::sim
