#include "rpc/quorum_call.h"

namespace bftbc::rpc {

QuorumCall::QuorumCall(sim::Scheduler& scheduler, Transport& transport,
                       std::vector<sim::NodeId> targets, std::uint32_t quorum,
                       Envelope request, Validator validator,
                       Completion on_complete,
                       std::function<void()> on_timeout, Options options)
    : sim_(scheduler),
      transport_(transport),
      targets_(std::move(targets)),
      quorum_(quorum),
      request_(std::move(request)),
      validator_(std::move(validator)),
      on_complete_(std::move(on_complete)),
      on_timeout_(std::move(on_timeout)),
      options_(options),
      accepted_(targets_.size(), false) {
  for (std::uint32_t i = 0; i < targets_.size(); ++i) index_of_[targets_[i]] = i;
  if (options_.deadline > 0) {
    deadline_timer_ = sim_.schedule(options_.deadline, [this] {
      deadline_timer_ = 0;  // fired — this id must never be cancelled
      if (complete_) return;
      timed_out_ = true;
      sim_.cancel(retransmit_timer_);
      retransmit_timer_ = 0;
      if (on_timeout_) on_timeout_();
    });
  }
  transmit();
  arm_retransmit();
}

QuorumCall::~QuorumCall() {
  sim_.cancel(retransmit_timer_);
  sim_.cancel(deadline_timer_);
}

void QuorumCall::transmit() {
  const bool first = sends_ == 0;
  ++sends_;
  if (first && options_.initial_fanout > 0 &&
      options_.initial_fanout < targets_.size()) {
    // Preferred quorum: contact only `initial_fanout` replicas up front,
    // rotating the starting index by rpc_id so successive calls spread
    // load. Retransmissions (below) expand to everyone.
    const std::size_t n = targets_.size();
    const std::size_t start = static_cast<std::size_t>(request_.rpc_id % n);
    for (std::uint32_t k = 0; k < options_.initial_fanout; ++k) {
      transport_.send(targets_[(start + k) % n], request_);
    }
    return;
  }
  for (std::uint32_t i = 0; i < targets_.size(); ++i) {
    if (!accepted_[i]) transport_.send(targets_[i], request_);
  }
}

void QuorumCall::arm_retransmit() {
  retransmit_timer_ = sim_.schedule(options_.retransmit_period, [this] {
    retransmit_timer_ = 0;  // fired — stale until arm_retransmit rearms
    if (complete_ || timed_out_) return;
    transmit();
    arm_retransmit();
  });
}

bool QuorumCall::on_reply(sim::NodeId from, const Envelope& env) {
  if (env.rpc_id != request_.rpc_id) return false;
  auto it = index_of_.find(from);
  if (it == index_of_.end()) return false;
  // The envelope is ours even if we end up rejecting its contents.
  if (complete_ || timed_out_) {
    // A reply straggling in after the deadline is still protocol signal
    // (the replica is alive and answered); surface it instead of
    // swallowing it so fallback paths can react.
    if (timed_out_ && !accepted_[it->second] && on_late_reply_) {
      on_late_reply_(it->second, env);
    }
    return true;
  }
  const std::uint32_t idx = it->second;
  if (accepted_[idx]) return true;  // duplicate from this replica
  if (!validator_(idx, env)) return true;
  accepted_[idx] = true;
  ++accepted_count_;
  if (accepted_count_ >= quorum_) {
    complete_ = true;
    sim_.cancel(retransmit_timer_);
    retransmit_timer_ = 0;
    sim_.cancel(deadline_timer_);
    deadline_timer_ = 0;
    if (on_complete_) on_complete_();
  }
  return true;
}

}  // namespace bftbc::rpc
