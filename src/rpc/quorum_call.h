// QuorumCall: one client-side RPC phase.
//
// Sends a request to a set of replicas, retransmits periodically to the
// ones that have not yet produced an accepted reply (the paper's only
// liveness mechanism: "clients retransmit their requests ... they stop
// retransmitting once they collect a quorum of valid replies"), and
// completes when `quorum` distinct replicas' replies pass the caller's
// validator. Invalid or duplicate replies never count — a Byzantine
// replica gets at most one vote.
#pragma once

#include <functional>
#include <map>
#include <vector>

#include "rpc/message.h"
#include "rpc/transport.h"
#include "sim/simulator.h"

namespace bftbc::rpc {

struct QuorumCallOptions {
  sim::Time retransmit_period = 20 * sim::kMillisecond;
  // 0 = no deadline (paper's protocols are live without timeouts; a
  // deadline is still useful for tests that expect failure).
  sim::Time deadline = 0;
  // Preferred-quorum fan-out: the FIRST transmission goes to only this
  // many targets (chosen round-robin from rpc_id so load spreads across
  // replicas); 0 sends to all. Every retransmission expands to all
  // not-yet-accepted targets, so liveness is untouched — one retransmit
  // period is the worst-case price when a preferred replica is down.
  std::uint32_t initial_fanout = 0;
};

class QuorumCall {
 public:
  // Validates one reply from `replica_index` (index into the target
  // list). Return true to count it toward the quorum.
  using Validator =
      std::function<bool(std::uint32_t replica_index, const Envelope& reply)>;
  using Completion = std::function<void()>;

  using Options = QuorumCallOptions;

  QuorumCall(sim::Scheduler& scheduler, Transport& transport,
             std::vector<sim::NodeId> targets, std::uint32_t quorum,
             Envelope request, Validator validator, Completion on_complete,
             std::function<void()> on_timeout = nullptr,
             Options options = Options());
  ~QuorumCall();

  QuorumCall(const QuorumCall&) = delete;
  QuorumCall& operator=(const QuorumCall&) = delete;

  // Route a reply into this call. Returns true if the envelope belonged
  // to this call (matching rpc id and a known sender node).
  bool on_reply(sim::NodeId from, const Envelope& env);

  // Fallback signal for replies that arrive after the deadline fired
  // (matching rpc id, known sender, not yet accepted). The call itself
  // stays timed out — it never completes late — but a caller can use the
  // signal to write back, update failure detectors, or re-issue the
  // operation against fresher state.
  using LateReplyHandler =
      std::function<void(std::uint32_t replica_index, const Envelope& reply)>;
  void set_late_reply_handler(LateReplyHandler handler) {
    on_late_reply_ = std::move(handler);
  }

  bool complete() const { return complete_; }
  std::uint64_t rpc_id() const { return request_.rpc_id; }
  std::uint32_t accepted_count() const { return accepted_count_; }
  // How many (re)transmissions of the request have gone out in total.
  std::uint64_t sends() const { return sends_; }

  // Replicas (by index) whose replies were accepted.
  const std::vector<bool>& accepted() const { return accepted_; }

  // Timer-id hygiene, exposed so tests can pin the contract: a fired or
  // cancelled timer's stored id is zeroed and never cancelled again. A
  // live timer wheel is allowed to recycle ids, so cancelling a stale id
  // could kill an unrelated timer.
  sim::TimerId retransmit_timer_id() const { return retransmit_timer_; }
  sim::TimerId deadline_timer_id() const { return deadline_timer_; }

 private:
  void transmit();
  void arm_retransmit();

  sim::Scheduler& sim_;
  Transport& transport_;
  std::vector<sim::NodeId> targets_;
  std::map<sim::NodeId, std::uint32_t> index_of_;
  std::uint32_t quorum_;
  Envelope request_;
  Validator validator_;
  Completion on_complete_;
  std::function<void()> on_timeout_;
  LateReplyHandler on_late_reply_;
  Options options_;

  std::vector<bool> accepted_;
  std::uint32_t accepted_count_ = 0;
  bool complete_ = false;
  bool timed_out_ = false;
  std::uint64_t sends_ = 0;
  sim::TimerId retransmit_timer_ = 0;
  sim::TimerId deadline_timer_ = 0;
};

}  // namespace bftbc::rpc
