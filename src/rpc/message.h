// Wire envelope shared by every protocol in the repo.
//
// An Envelope frames one protocol message: its type, an rpc id for
// request/reply matching (transport-level only — never trusted for
// authentication; all authentication is by signatures inside the body),
// the claimed sender principal, and the opaque body bytes.
#pragma once

#include <cstdint>

#include "crypto/signature.h"
#include "util/codec.h"
#include "util/encoded_message.h"
#include "util/status.h"

namespace bftbc::rpc {

enum class MsgType : std::uint16_t {
  kInvalid = 0,

  // BFT-BC (base + optimized + strong variants)
  kReadTs = 1,        // phase 1 of write: 〈READ-TS, nonce〉
  kReadTsReply = 2,   // 〈READ-TS-REPLY, Pcert, nonce〉σr
  kPrepare = 3,       // 〈PREPARE, Pmax, t, h(val), Wcert〉σc
  kPrepareReply = 4,  // 〈PREPARE-REPLY, t, h〉σr
  kWrite = 5,         // 〈WRITE, val, Pnew〉σc
  kWriteReply = 6,    // 〈WRITE-REPLY, t〉σr
  kRead = 7,          // 〈READ, nonce〉
  kReadReply = 8,     // 〈READ-REPLY, val, Pcert, nonce〉σr
  kReadTsPrep = 9,    // optimized phase 1: 〈READ-TS-PREP, h, Wcert〉σc
  kReadTsPrepReply = 10,  // 〈Pcert, optional PREPARE-REPLY stmt〉σr
  kReplyBatch = 11,   // replica→client bundle of replies, one batch MAC
  kStateXfer = 12,    // recovery: 〈STATE-XFER, object, nonce〉
  kStateXferReply = 13,  // 〈STATE-XFER-REPLY, encoded ObjectState, nonce〉

  // Transport-level bundle of same-tick envelopes to one destination
  // (SimTransport coalescing). Unwrapped by the receiving transport, so
  // protocol code never sees this type on the wire.
  kBatch = 120,

  // Classic BQS baseline (Malkhi-Reiter 3f+1, no Byzantine-client defense)
  kBqsReadTs = 32,
  kBqsReadTsReply = 33,
  kBqsWrite = 34,
  kBqsWriteReply = 35,
  kBqsRead = 36,
  kBqsReadReply = 37,

  // Phalanx-style 4f+1 baseline
  kPhalanxWrite = 48,
  kPhalanxWriteReply = 49,
  kPhalanxRead = 50,
  kPhalanxReadReply = 51,
  kPhalanxReadTs = 52,
  kPhalanxReadTsReply = 53,

  // SBQ-L baseline (3f+1 with a reliable-network assumption)
  kSbqlReadTs = 64,
  kSbqlReadTsReply = 65,
  kSbqlWrite = 66,
  kSbqlWriteReply = 67,
  kSbqlRead = 68,
  kSbqlReadReply = 69,
  kSbqlForward = 70,     // replica→replica reliable forward
  kSbqlForwardAck = 71,  // ack that lets the sender drop its buffer entry
};

struct Envelope {
  MsgType type = MsgType::kInvalid;
  std::uint64_t rpc_id = 0;
  crypto::PrincipalId sender = 0;
  Bytes body;

  Bytes encode() const {
    Writer w;
    w.put_u16(static_cast<std::uint16_t>(type));
    w.put_u64(rpc_id);
    w.put_u32(sender);
    w.put_bytes(body);
    return std::move(w).take();
  }

  // Encode-once fan-out: the first call serializes and caches; every
  // later call (other targets, retransmits) returns the same shared
  // buffer. Callers that mutate the envelope after encoding are on the
  // hot path's one sharp edge — protocol code treats envelopes as
  // immutable once handed to a transport.
  [[nodiscard]] bool has_cached_encoding() const {
    return cached_encoding_.valid();
  }
  const EncodedMessage& shared_encoding() const {
    if (!cached_encoding_.valid()) {
      cached_encoding_ = EncodedMessage::wrap(encode());
    }
    return cached_encoding_;
  }

  // Returns nullopt on malformed input (truncated, trailing garbage).
  static std::optional<Envelope> decode(BytesView data) {
    Reader r(data);
    Envelope env;
    env.type = static_cast<MsgType>(r.get_u16());
    env.rpc_id = r.get_u64();
    env.sender = r.get_u32();
    env.body = r.get_bytes();
    if (!r.done()) return std::nullopt;
    return env;
  }

 private:
  mutable EncodedMessage cached_encoding_;
};

}  // namespace bftbc::rpc
