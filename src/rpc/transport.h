// Transport abstraction: how a protocol node sends and receives envelopes.
//
// Protocol code (clients, replicas, baselines, Byzantine behaviors) is
// written against this interface only, so the same state machines run on
// the deterministic simulator today and could run on sockets unchanged.
#pragma once

#include <functional>
#include <map>
#include <vector>

#include "rpc/message.h"
#include "sim/network.h"
#include "sim/simulator.h"

namespace bftbc::rpc {

class Transport {
 public:
  virtual ~Transport() = default;

  // This node's address.
  virtual sim::NodeId node_id() const = 0;

  // Fire-and-forget send; the network may lose/duplicate/reorder it.
  virtual void send(sim::NodeId to, const Envelope& env) = 0;

  // Delivery callback. Malformed payloads are dropped before reaching it.
  using Receiver = std::function<void(sim::NodeId from, const Envelope& env)>;
  virtual void set_receiver(Receiver receiver) = 0;
};

// Transport bound to the simulated network.
//
// With a simulator handle (`coalesce_sim`), outgoing sends coalesce:
// every envelope queued for one destination within a single virtual-time
// instant ships as one MsgType::kBatch wire message (one syscall/packet
// in a deployment). The receiving transport unbundles transparently, so
// protocol code sees the same per-envelope delivery either way — but the
// sub-envelopes now arrive at the same tick, which is what feeds the
// replica's same-tick batch verification real multi-message batches.
class SimTransport final : public Transport {
 public:
  SimTransport(sim::Network& network, sim::NodeId id,
               sim::Simulator* coalesce_sim = nullptr)
      : network_(network), id_(id), coalesce_sim_(coalesce_sim) {
    network_.register_node(
        id_, [this](sim::NodeId from, const EncodedMessage& payload) {
          if (!receiver_) return;
          auto env = Envelope::decode(payload.view());
          if (!env.has_value()) return;  // corrupted / garbage: drop silently
          if (env->type == MsgType::kBatch) {
            deliver_bundle(from, env->body);
            return;
          }
          receiver_(from, *env);
        });
  }

  ~SimTransport() override {
    if (flush_scheduled_) {
      coalesce_sim_->cancel(flush_timer_);
      // Teardown must not silently lose envelopes the caller already
      // handed over: ship the coalescing remainder exactly as the
      // cancelled flush timer would have (a live transport drains its
      // socket queue the same way on close).
      flush_sends();
    }
    network_.unregister_node(id_);
  }

  SimTransport(const SimTransport&) = delete;
  SimTransport& operator=(const SimTransport&) = delete;

  sim::NodeId node_id() const override { return id_; }

  void send(sim::NodeId to, const Envelope& env) override {
    if (coalesce_sim_ == nullptr) {
      send_now(to, env);
      return;
    }
    pending_[to].push_back(env);
    if (!flush_scheduled_) {
      flush_scheduled_ = true;
      // Delay 0 fires after every event already queued for this instant,
      // so one flush gathers the whole tick's sends.
      flush_timer_ = coalesce_sim_->schedule(0, [this] { flush_sends(); });
    }
  }

  void set_receiver(Receiver receiver) override {
    receiver_ = std::move(receiver);
  }

 private:
  void send_now(sim::NodeId to, const Envelope& env) {
    // Encode-once fan-out: serialize on the first send of this envelope,
    // then hand the same shared buffer to every target and retransmit.
    if (!env.has_cached_encoding()) network_.note_encode();
    network_.send(id_, to, env.shared_encoding());
  }

  void flush_sends() {
    flush_scheduled_ = false;
    std::map<sim::NodeId, std::vector<Envelope>> pending;
    pending.swap(pending_);
    for (auto& [to, envs] : pending) {
      if (envs.size() == 1) {
        send_now(to, envs.front());
        continue;
      }
      Writer w;
      w.put_u32(static_cast<std::uint32_t>(envs.size()));
      for (const Envelope& sub : envs) {
        if (!sub.has_cached_encoding()) network_.note_encode();
        w.put_bytes(sub.shared_encoding().view());
      }
      Envelope batch;
      batch.type = MsgType::kBatch;
      batch.body = std::move(w).take();
      send_now(to, batch);
    }
  }

  void deliver_bundle(sim::NodeId from, BytesView body) {
    Reader r(body);
    const std::uint32_t count = r.get_u32();
    for (std::uint32_t i = 0; i < count && r.ok(); ++i) {
      // Re-checked every iteration: a handler may react to one
      // sub-envelope by clearing the receiver (shutdown, node
      // unregistration), and invoking an empty std::function is UB.
      if (!receiver_) return;
      auto sub = Envelope::decode(r.get_bytes());
      // Nested bundles are never produced; drop them so a Byzantine
      // sender cannot build unbounded recursion.
      if (!sub.has_value() || sub->type == MsgType::kBatch) continue;
      receiver_(from, *sub);
    }
  }

  sim::Network& network_;
  sim::NodeId id_;
  sim::Simulator* coalesce_sim_;
  Receiver receiver_;

  // Same-tick coalescing state (used only with coalesce_sim_).
  std::map<sim::NodeId, std::vector<Envelope>> pending_;
  sim::TimerId flush_timer_ = 0;
  bool flush_scheduled_ = false;
};

}  // namespace bftbc::rpc
