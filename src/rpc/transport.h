// Transport abstraction: how a protocol node sends and receives envelopes.
//
// Protocol code (clients, replicas, baselines, Byzantine behaviors) is
// written against this interface only, so the same state machines run on
// the deterministic simulator today and could run on sockets unchanged.
#pragma once

#include <functional>

#include "rpc/message.h"
#include "sim/network.h"

namespace bftbc::rpc {

class Transport {
 public:
  virtual ~Transport() = default;

  // This node's address.
  virtual sim::NodeId node_id() const = 0;

  // Fire-and-forget send; the network may lose/duplicate/reorder it.
  virtual void send(sim::NodeId to, const Envelope& env) = 0;

  // Delivery callback. Malformed payloads are dropped before reaching it.
  using Receiver = std::function<void(sim::NodeId from, const Envelope& env)>;
  virtual void set_receiver(Receiver receiver) = 0;
};

// Transport bound to the simulated network.
class SimTransport final : public Transport {
 public:
  SimTransport(sim::Network& network, sim::NodeId id)
      : network_(network), id_(id) {
    network_.register_node(id_, [this](sim::NodeId from, Bytes payload) {
      if (!receiver_) return;
      auto env = Envelope::decode(payload);
      if (!env.has_value()) return;  // corrupted / garbage: drop silently
      receiver_(from, *env);
    });
  }

  ~SimTransport() override { network_.unregister_node(id_); }

  SimTransport(const SimTransport&) = delete;
  SimTransport& operator=(const SimTransport&) = delete;

  sim::NodeId node_id() const override { return id_; }

  void send(sim::NodeId to, const Envelope& env) override {
    network_.send(id_, to, env.encode());
  }

  void set_receiver(Receiver receiver) override {
    receiver_ = std::move(receiver);
  }

 private:
  sim::Network& network_;
  sim::NodeId id_;
  Receiver receiver_;
};

}  // namespace bftbc::rpc
