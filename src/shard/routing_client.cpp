#include "shard/routing_client.h"

#include <cassert>
#include <utility>

namespace bftbc::shard {

RoutingClient::RoutingClient(ShardMap map, std::vector<core::Client*> clients,
                             sim::Scheduler& scheduler,
                             RoutingClientOptions options)
    : map_(map),
      clients_(std::move(clients)),
      sim_(scheduler),
      options_(options) {
  assert(clients_.size() == map_.shards() &&
         "RoutingClient needs exactly one client per shard");
  if (options_.registry != nullptr) {
    metrics::MetricsRegistry& reg = *options_.registry;
    // claim_unique: if some inner client (or a second router on the same
    // registry) already owns these names, ours disambiguate to "...#2"
    // instead of silently merging two latency populations.
    write_total_ = &reg.summary(reg.claim_unique("client.write.total_ms"));
    read_total_ = &reg.summary(reg.claim_unique("client.read.total_ms"));
    shard_writes_.reserve(map_.shards());
    shard_reads_.reserve(map_.shards());
    for (std::uint32_t s = 0; s < map_.shards(); ++s) {
      const metrics::MetricsRegistry::Scope scope =
          reg.scoped("shard/" + std::to_string(s));
      shard_writes_.push_back(&scope.counter("routed_writes"));
      shard_reads_.push_back(&scope.counter("routed_reads"));
    }
  }
}

void RoutingClient::write(quorum::ObjectId object, Bytes value,
                          WriteCallback cb) {
  const std::uint32_t s = map_.shard_of(object);
  metrics_.inc("writes");
  if (s < shard_writes_.size()) shard_writes_[s]->inc();
  const sim::Time started = sim_.now();
  clients_[s]->write(object, std::move(value),
                     [this, started, cb = std::move(cb)](
                         Result<core::Client::WriteResult> result) {
                       if (write_total_ != nullptr) {
                         write_total_->add(
                             static_cast<double>(sim_.now() - started) /
                             sim::kMillisecond);
                       }
                       cb(std::move(result));
                     });
}

void RoutingClient::read(quorum::ObjectId object, ReadCallback cb) {
  const std::uint32_t s = map_.shard_of(object);
  metrics_.inc("reads");
  if (s < shard_reads_.size()) shard_reads_[s]->inc();
  const sim::Time started = sim_.now();
  clients_[s]->read(object, [this, started, cb = std::move(cb)](
                                Result<core::Client::ReadResult> result) {
    if (read_total_ != nullptr) {
      read_total_->add(static_cast<double>(sim_.now() - started) /
                       sim::kMillisecond);
    }
    cb(std::move(result));
  });
}

void RoutingClient::submit_write(quorum::ObjectId object, Bytes value,
                                 WriteCallback cb) {
  Pending p;
  p.object = object;
  p.value = std::move(value);
  p.cb = std::move(cb);
  p.started = sim_.now();
  const bool will_wait =
      !queue_.empty() || (options_.max_inflight_total != 0 &&
                          inflight_ >= options_.max_inflight_total);
  if (will_wait) metrics_.inc("queued_writes");
  queue_.push_back(std::move(p));
  pump();
}

void RoutingClient::pump() {
  // Completion callbacks run user code that may submit more writes, and
  // dispatch itself can complete synchronously on some failure paths —
  // the pumping_/repump_ pair collapses those reentrant pump() calls
  // into one more pass of the outer loop (same shape as the inner
  // client's pump_pipeline).
  if (pumping_) {
    repump_ = true;
    return;
  }
  pumping_ = true;
  do {
    repump_ = false;
    while (!queue_.empty() && (options_.max_inflight_total == 0 ||
                               inflight_ < options_.max_inflight_total)) {
      Pending p = std::move(queue_.front());
      queue_.pop_front();
      ++inflight_;
      if (inflight_ > inflight_peak_) {
        metrics_.inc("inflight_peak", inflight_ - inflight_peak_);
        inflight_peak_ = inflight_;
      }
      dispatch(std::move(p));
    }
  } while (repump_);
  pumping_ = false;
}

void RoutingClient::dispatch(Pending p) {
  const std::uint32_t s = map_.shard_of(p.object);
  metrics_.inc("writes");
  if (s < shard_writes_.size()) shard_writes_[s]->inc();
  const sim::Time started = p.started;
  clients_[s]->submit_write(
      p.object, std::move(p.value),
      [this, started,
       cb = std::move(p.cb)](Result<core::Client::WriteResult> result) {
        if (inflight_ > 0) --inflight_;
        if (write_total_ != nullptr) {
          write_total_->add(static_cast<double>(sim_.now() - started) /
                            sim::kMillisecond);
        }
        // The callback may submit more writes; the freed slot is already
        // visible to it, and pump() below drains whatever queued.
        cb(std::move(result));
        pump();
      });
}

}  // namespace bftbc::shard
