// Shard-routing client: one BFT-BC protocol client per replica group,
// fronted by a single read/write interface that routes by object id.
//
// Each inner core::Client speaks to exactly one 3f+1 group through its
// own transport and that group's keystore; the router never touches
// protocol state. What the router adds:
//
//   - deterministic object→shard routing (shard_map.h),
//   - a CROSS-SHARD pipeline window: submit_write admits up to
//     `max_inflight_total` writes across all shards at once (0 =
//     unlimited), queueing FIFO past that. Inner clients keep their own
//     per-shard windows and the per-object FIFO that BFT-linearizability
//     rests on — the router only widens concurrency across groups, never
//     reorders within an object,
//   - whole-op latency summaries ("client.write.total_ms" /
//     "client.read.total_ms") measured around the routed call, claimed
//     via MetricsRegistry::claim_unique so they can never silently alias
//     an inner client's summaries, and
//   - routed-op counters, total and per shard ("writes", "reads",
//     "shard/<i>/routed_writes", "shard/<i>/routed_reads" under the
//     registry; Counters mirror the totals for fold-based reporting).
//
// One shard stalling (partition, crash beyond f) only stalls ops routed
// to it; the other groups keep completing — the property the
// PartitionedShard test pins.
#pragma once

#include <deque>
#include <string>
#include <vector>

#include "bftbc/client.h"
#include "metrics/registry.h"
#include "shard/shard_map.h"
#include "sim/simulator.h"
#include "util/stats.h"

namespace bftbc::shard {

struct RoutingClientOptions {
  // Cross-shard pipeline window for submit_write; 0 = unlimited (each
  // inner client's own max_inflight still applies).
  std::uint32_t max_inflight_total = 0;
  // Observability sink shared with the inner clients (may be null).
  metrics::MetricsRegistry* registry = nullptr;
};

class RoutingClient {
 public:
  using WriteCallback = core::Client::WriteCallback;
  using ReadCallback = core::Client::ReadCallback;

  // `clients[s]` must be the protocol client bound to shard s's replica
  // group; borrowed, not owned, and must outlive the router. All inner
  // clients share `scheduler` (one virtual clock per process).
  RoutingClient(ShardMap map, std::vector<core::Client*> clients,
                sim::Scheduler& scheduler,
                RoutingClientOptions options = RoutingClientOptions());

  std::uint32_t shards() const { return map_.shards(); }
  const ShardMap& map() const { return map_; }
  std::uint32_t shard_of(quorum::ObjectId object) const {
    return map_.shard_of(object);
  }
  core::Client& shard_client(std::uint32_t s) { return *clients_.at(s); }

  // Routed single ops (at most one in flight per object, like
  // core::Client::write/read).
  void write(quorum::ObjectId object, Bytes value, WriteCallback cb);
  void read(quorum::ObjectId object, ReadCallback cb);

  // Routed pipelined write: admits into the cross-shard window (or the
  // router FIFO past it), then dispatches through the owning shard's
  // submit_write.
  void submit_write(quorum::ObjectId object, Bytes value, WriteCallback cb);

  // Router-level queue + window occupancy (inner clients may hold more).
  std::size_t queued_writes() const { return queue_.size(); }
  std::uint32_t inflight_total() const { return inflight_; }

  // Counters: "writes", "reads", "queued_writes", "inflight_peak".
  const Counters& metrics() const { return metrics_; }

 private:
  struct Pending {
    quorum::ObjectId object = 0;
    Bytes value;
    WriteCallback cb;
    sim::Time started = 0;  // admission time: latency includes queueing
  };

  void pump();
  void dispatch(Pending p);

  ShardMap map_;
  std::vector<core::Client*> clients_;
  sim::Scheduler& sim_;
  RoutingClientOptions options_;
  Counters metrics_;

  std::deque<Pending> queue_;
  std::uint32_t inflight_ = 0;
  std::uint64_t inflight_peak_ = 0;
  bool pumping_ = false;
  bool repump_ = false;

  // Registry handles (null without options.registry).
  Summary* write_total_ = nullptr;
  Summary* read_total_ = nullptr;
  std::vector<metrics::Counter*> shard_writes_;
  std::vector<metrics::Counter*> shard_reads_;
};

}  // namespace bftbc::shard
