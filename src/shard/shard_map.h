// Static-hash partitioning of the object keyspace across independent
// 3f+1 replica groups ("shards").
//
// The paper's protocol is strictly per-object — prepare lists, optlists,
// write certificates, and the BFT-linearizability argument all quantify
// over one object at a time — so partitioning objects across disjoint
// replica groups composes with its correctness proof: each group runs an
// unmodified BFT-BC instance over its slice of the keyspace, and no
// certificate is ever presented outside the group that minted it.
//
// Everything that must agree on the object→shard assignment (sim harness,
// RoutingClient, bftbcd, bftbc_bench, the checker's history splitter)
// routes through this one header. The assignment is a pure function of
// (object id, shard count): a splitmix64 finalizer scrambles the id so
// sequential object ids spread evenly, then reduces mod S. Changing S
// reshuffles assignments — static sharding, no re-balancing story yet.
//
// Key material: each shard owns an independent crypto::Keystore seeded
// with shard_key_seed(base, s). Shard 0 keeps the base seed byte for
// byte, so a one-shard deployment is bit-compatible with the pre-shard
// layout (same keys, same wire bytes). Replica ids inside a group stay
// 0..n-1 — principal ids, certificates, and quorum math are all
// group-local.
#pragma once

#include <cstdint>

#include "quorum/statements.h"

namespace bftbc::shard {

// splitmix64 finalizer (Steele et al.): bijective, cheap, and good
// avalanche — exactly what a static hash partitioner needs.
inline std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// Keystore seed for shard s; shard 0 == base (single-shard back-compat).
inline std::uint64_t shard_key_seed(std::uint64_t base, std::uint32_t s) {
  return s == 0 ? base : base + mix64(s) + s;
}

class ShardMap {
 public:
  explicit ShardMap(std::uint32_t shards = 1)
      : shards_(shards == 0 ? 1 : shards) {}

  std::uint32_t shards() const { return shards_; }

  std::uint32_t shard_of(quorum::ObjectId object) const {
    if (shards_ == 1) return 0;
    return static_cast<std::uint32_t>(mix64(object) % shards_);
  }

  friend bool operator==(const ShardMap& a, const ShardMap& b) {
    return a.shards_ == b.shards_;
  }

 private:
  std::uint32_t shards_;
};

}  // namespace bftbc::shard
