// Bounded ring-buffer event tracer for the simulator.
//
// When a deterministic test fails, the interesting question is "what was
// the protocol doing right before?". The tracer keeps the last N events
// (op begin/end, client phase transitions, message send/deliver/drop) in
// a fixed-size ring — O(1) record, zero allocation after construction
// beyond the label strings — and dumps them chronologically on demand.
// The harness wires it into the network and every client; tests call
// Cluster::dump_trace(std::cerr) from a failure path.
//
// A capacity of 0 disables tracing entirely (record() is a no-op after
// one branch), so hot benches can opt out.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace bftbc::metrics {

enum class TraceKind : std::uint8_t {
  kOpBegin,     // a = client id, b = op id, detail = "write obj=1"
  kOpEnd,       // a = client id, b = op id, detail = outcome
  kPhase,       // a = client id, b = op id, detail = phase name
  kMsgSend,     // a = from node, b = to node, detail = size
  kMsgDeliver,  // a = from node, b = to node
  kMsgDrop,     // a = from node, b = to node, detail = reason
  kUser,        // free-form test annotations
};

const char* trace_kind_name(TraceKind k);

struct TraceEvent {
  std::uint64_t time = 0;  // sim virtual time, ns
  TraceKind kind = TraceKind::kUser;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  std::string detail;
};

class Tracer {
 public:
  explicit Tracer(std::size_t capacity = kDefaultCapacity)
      : capacity_(capacity) {
    ring_.resize(capacity_);
  }

  static constexpr std::size_t kDefaultCapacity = 4096;

  bool enabled() const { return capacity_ != 0; }
  std::size_t capacity() const { return capacity_; }

  void record(std::uint64_t time, TraceKind kind, std::uint64_t a,
              std::uint64_t b, std::string detail = {}) {
    if (capacity_ == 0) return;
    TraceEvent& slot = ring_[next_ % capacity_];
    slot.time = time;
    slot.kind = kind;
    slot.a = a;
    slot.b = b;
    slot.detail = std::move(detail);
    ++next_;
  }

  // Events currently held (≤ capacity).
  std::size_t size() const { return next_ < capacity_ ? next_ : capacity_; }
  // Total ever recorded; size() < total_recorded() means the ring wrapped.
  std::uint64_t total_recorded() const { return next_; }

  // Chronological copy, oldest first.
  std::vector<TraceEvent> events() const;

  // Human-readable dump, one event per line, oldest first.
  void dump(std::ostream& os) const;

  void clear() { next_ = 0; }

 private:
  std::size_t capacity_;
  std::vector<TraceEvent> ring_;
  std::uint64_t next_ = 0;
};

}  // namespace bftbc::metrics
