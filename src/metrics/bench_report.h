// Shared machine-readable output pipeline for the bench/ binaries.
//
// Every bench keeps its human-oriented tables on stdout and additionally
// routes its measurements through a BenchReport. With `--json <path>` the
// report is written as one JSON document so CI can archive BENCH_*.json
// artifacts and future PRs can diff the perf trajectory mechanically.
//
// Schema (schema_version 1, validated by scripts/check_bench_json.py):
//   {
//     "schema_version": 1,
//     "bench":   "bench_phases",
//     "config":  { "<key>": "<value>", ... },
//     "counters":   { "<name>": <uint>, ... },    // sig_cache_* always present
//     "gauges":     { "<name>": <double>, ... },
//     "summaries":  { "<name>": {count, mean, p50, p90, p99, p999,
//                                min, max, stddev}, ... },
//     "histograms": { "<name>": {total, mean, max,
//                                buckets: {"<v>": <count>}}, ... }
//   }
//
// Latency summaries are in milliseconds and named "*_ms". Benches merge
// whole cluster registries (report.merge(cluster.metrics_registry()))
// and/or add ad-hoc metrics directly.
//
// The uniform flag set is parsed by parse_bench_args():
//   --json <path>   write the report there on report.finish()
//   --smoke         tiny iteration budget (CI smoke job); benches read
//                   args.smoke and shrink their sweeps
// Unrecognized arguments are preserved (and argc/argv rewritten) so the
// google-benchmark-based benches can still hand them to
// benchmark::Initialize.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "metrics/registry.h"

namespace bftbc::metrics {

struct BenchArgs {
  std::string json_path;  // empty = no JSON requested
  bool smoke = false;
  // argv rewritten in place with --json/--smoke removed; argc updated.
  int argc = 0;
  char** argv = nullptr;
};

// Strips the shared flags out of argv (mutates it) and returns them.
// Exits(2) on `--json` without a path.
BenchArgs parse_bench_args(int& argc, char** argv);

class BenchReport {
 public:
  // `name` is the bench binary's canonical name, e.g. "bench_phases".
  explicit BenchReport(std::string name, const BenchArgs& args);

  bool smoke() const { return smoke_; }

  // Workload/config parameters recorded verbatim into "config".
  void set_config(const std::string& key, const std::string& value);
  void set_config(const std::string& key, std::int64_t value);
  void set_config(const std::string& key, double value);
  void set_config(const std::string& key, bool value);

  // The report's own registry: benches can record directly...
  MetricsRegistry& registry() { return registry_; }
  Counter& counter(std::string_view name) { return registry_.counter(name); }
  Summary& summary(std::string_view name) { return registry_.summary(name); }
  Histogram& histogram(std::string_view name) {
    return registry_.histogram(name);
  }
  // ...or copy in existing accumulators / whole cluster registries.
  void add_summary(std::string_view name, const Summary& s) {
    registry_.summary(name).merge(s);
  }
  void add_histogram(std::string_view name, const Histogram& h) {
    registry_.histogram(name).merge(h);
  }
  void merge(const MetricsRegistry& other) { registry_.merge(other); }

  std::string to_json() const;

  // Writes the JSON file if --json was given; prints where it went.
  // Returns the process exit code to use (0, or 1 when the write failed)
  // so main() can `return report.finish();`.
  int finish() const;

 private:
  std::string name_;
  std::string json_path_;
  bool smoke_ = false;
  std::vector<std::pair<std::string, std::string>> config_;
  MetricsRegistry registry_;
};

}  // namespace bftbc::metrics
