// Minimal JSON emitter for the metrics pipeline (no external deps).
//
// Produces RFC 8259-conformant output: strings are escaped, doubles are
// printed with enough digits to round-trip, NaN/Inf degrade to null
// (JSON has no encoding for them). The writer is push-based:
//
//   JsonWriter w;
//   w.begin_object();
//   w.key("bench"); w.value("bench_phases");
//   w.key("summaries"); w.begin_object(); ... w.end_object();
//   w.end_object();
//   std::string out = std::move(w).take();
//
// Indentation is two spaces per level so committed BENCH_*.json files
// diff cleanly across PRs.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace bftbc::metrics {

class JsonWriter {
 public:
  void begin_object();
  void end_object();
  void begin_array();
  void end_array();

  // Object key; must be followed by a value or a begin_*.
  void key(std::string_view k);

  void value(std::string_view v);
  void value(const char* v) { value(std::string_view(v)); }
  void value(bool v);
  void value(double v);
  void value(std::int64_t v);
  void value(std::uint64_t v);
  void value(int v) { value(static_cast<std::int64_t>(v)); }

  const std::string& str() const& { return out_; }
  std::string take() && { return std::move(out_); }

  static std::string escape(std::string_view s);

 private:
  void comma_if_needed();
  void newline_indent();

  std::string out_;
  int depth_ = 0;
  bool need_comma_ = false;
  bool after_key_ = false;
};

}  // namespace bftbc::metrics
