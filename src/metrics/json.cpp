#include "metrics/json.h"

#include <cmath>
#include <cstdio>

namespace bftbc::metrics {

std::string JsonWriter::escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::comma_if_needed() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (need_comma_) out_ += ',';
  if (depth_ > 0) newline_indent();
}

void JsonWriter::newline_indent() {
  out_ += '\n';
  out_.append(static_cast<std::size_t>(depth_) * 2, ' ');
}

void JsonWriter::begin_object() {
  comma_if_needed();
  out_ += '{';
  ++depth_;
  need_comma_ = false;
}

void JsonWriter::end_object() {
  --depth_;
  if (need_comma_) newline_indent();  // only break line for non-empty objects
  out_ += '}';
  need_comma_ = true;
}

void JsonWriter::begin_array() {
  comma_if_needed();
  out_ += '[';
  ++depth_;
  need_comma_ = false;
}

void JsonWriter::end_array() {
  --depth_;
  if (need_comma_) newline_indent();
  out_ += ']';
  need_comma_ = true;
}

void JsonWriter::key(std::string_view k) {
  comma_if_needed();
  out_ += '"';
  out_ += escape(k);
  out_ += "\": ";
  need_comma_ = true;
  after_key_ = true;
}

void JsonWriter::value(std::string_view v) {
  comma_if_needed();
  out_ += '"';
  out_ += escape(v);
  out_ += '"';
  need_comma_ = true;
}

void JsonWriter::value(bool v) {
  comma_if_needed();
  out_ += v ? "true" : "false";
  need_comma_ = true;
}

void JsonWriter::value(double v) {
  comma_if_needed();
  if (!std::isfinite(v)) {
    out_ += "null";
  } else {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    // Trim to the shortest representation that still round-trips.
    double parsed = 0;
    for (int prec = 6; prec < 17; ++prec) {
      char shorter[32];
      std::snprintf(shorter, sizeof(shorter), "%.*g", prec, v);
      std::sscanf(shorter, "%lf", &parsed);
      if (parsed == v) {
        std::snprintf(buf, sizeof(buf), "%.*g", prec, v);
        break;
      }
    }
    out_ += buf;
  }
  need_comma_ = true;
}

void JsonWriter::value(std::int64_t v) {
  comma_if_needed();
  out_ += std::to_string(v);
  need_comma_ = true;
}

void JsonWriter::value(std::uint64_t v) {
  comma_if_needed();
  out_ += std::to_string(v);
  need_comma_ = true;
}

}  // namespace bftbc::metrics
