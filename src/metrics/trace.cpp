#include "metrics/trace.h"

#include <ostream>

namespace bftbc::metrics {

const char* trace_kind_name(TraceKind k) {
  switch (k) {
    case TraceKind::kOpBegin: return "OP_BEGIN";
    case TraceKind::kOpEnd: return "OP_END";
    case TraceKind::kPhase: return "PHASE";
    case TraceKind::kMsgSend: return "SEND";
    case TraceKind::kMsgDeliver: return "DELIVER";
    case TraceKind::kMsgDrop: return "DROP";
    case TraceKind::kUser: return "USER";
  }
  return "?";
}

std::vector<TraceEvent> Tracer::events() const {
  std::vector<TraceEvent> out;
  const std::size_t n = size();
  out.reserve(n);
  const std::uint64_t first = next_ - n;  // oldest retained event
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(ring_[(first + i) % capacity_]);
  }
  return out;
}

void Tracer::dump(std::ostream& os) const {
  const std::uint64_t lost = total_recorded() - size();
  if (lost > 0) {
    os << "... " << lost << " earlier events overwritten (ring capacity "
       << capacity_ << ")\n";
  }
  for (const TraceEvent& e : events()) {
    os << e.time << "ns " << trace_kind_name(e.kind) << " " << e.a << "->"
       << e.b;
    if (!e.detail.empty()) os << " [" << e.detail << "]";
    os << "\n";
  }
}

}  // namespace bftbc::metrics
