// Process-wide metrics registry: named counters, gauges, and latency
// summaries/histograms (reusing util/stats accumulators) behind stable
// handles.
//
// Design constraints (ROADMAP "fast as the hardware allows"):
//   - Hot-path recording is O(1): components resolve handles ONCE at
//     construction (`Counter& c = reg.counter("net/msgs_sent")`) and
//     then record through the pointer — no per-event string lookups.
//   - Handles stay valid for the registry's lifetime (deque-backed
//     slots; the name→slot index is only touched at resolve time).
//   - Scoping is by name prefix: `reg.scoped("replica/3")` returns a
//     Scope whose counter("grants") resolves "replica/3/grants", giving
//     per-replica and per-client metric families without any new
//     machinery at read time.
//
// Emission: `to_json()` renders the whole registry as one JSON object
// ({counters, gauges, summaries, histograms}); summaries are emitted as
// {count, mean, p50, p90, p99, min, max, stddev} via Summary::snapshot()
// so each is sorted exactly once.
//
// Threading contract: the registry's *structural* surface — handle
// resolution (counter/gauge/summary/histogram), fold_counters, merge,
// write_json/to_json, reset — is guarded by an internal mutex and safe
// to call from multiple threads (concurrent experiments folding into one
// shared sink, see tests/threaded_smoke_test.cpp). Hot-path *recording
// through an already-resolved handle* stays lock-free and is owner-
// thread-only: each simulator thread records through its own handles,
// exactly as before. A process-wide instance is available via
// MetricsRegistry::global() for tools that want a single sink; the
// harness gives every Cluster its own registry so concurrent experiments
// in one process do not bleed into each other.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <string_view>

#include "util/stats.h"
#include "util/thread_annotations.h"

namespace bftbc::metrics {

// Monotonic counter slot. Plain (non-atomic): single simulator thread.
struct Counter {
  std::uint64_t value = 0;
  void inc(std::uint64_t by = 1) { value += by; }
  void set(std::uint64_t v) { value = v; }
};

// Last-value-wins instantaneous measurement (queue depths, occupancy).
struct Gauge {
  double value = 0;
  void set(double v) { value = v; }
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Resolve-or-create; returned references remain valid until the
  // registry is destroyed or reset().
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Summary& summary(std::string_view name);
  Histogram& histogram(std::string_view name);

  // Collision-aware name claiming. counter()/summary()/... are
  // resolve-or-create: two components that independently resolve the
  // same name silently share one slot, which is intentional for
  // same-role aggregation (every client feeds "client.write.total_ms")
  // but a silent aliasing bug when DIFFERENT roles collide — e.g. a
  // routing client's whole-op summary landing in an inner per-shard
  // client's summary because both derived the same prefix. claim_unique
  // returns `base` if no metric of any kind exists under that name and
  // nothing has claimed it yet; otherwise it disambiguates to
  // "<base>#2", "<base>#3", ... Claimants then resolve handles under
  // the returned name, so the collision is visible in the emitted JSON
  // instead of silently merged.
  std::string claim_unique(std::string_view base);

  // Prefix helper: Scope{reg, "replica/3"}.counter("grants") is
  // reg.counter("replica/3/grants").
  class Scope {
   public:
    Scope(MetricsRegistry& reg, std::string prefix)
        : reg_(reg), prefix_(std::move(prefix)) {}
    Counter& counter(std::string_view name) const {
      return reg_.counter(prefix_ + "/" + std::string(name));
    }
    Gauge& gauge(std::string_view name) const {
      return reg_.gauge(prefix_ + "/" + std::string(name));
    }
    Summary& summary(std::string_view name) const {
      return reg_.summary(prefix_ + "/" + std::string(name));
    }
    Histogram& histogram(std::string_view name) const {
      return reg_.histogram(prefix_ + "/" + std::string(name));
    }

   private:
    MetricsRegistry& reg_;
    std::string prefix_;
  };
  Scope scoped(std::string prefix) { return Scope(*this, std::move(prefix)); }

  // Imports a legacy util/stats Counters map (replica / client / keystore
  // instrumentation) under `scope` ("" = unscoped). SET semantics — the
  // sources are cumulative, so re-snapshotting is idempotent rather than
  // double-counting.
  void fold_counters(std::string_view scope, const Counters& counters);

  // Merges another registry into this one (bench reports aggregate the
  // registries of every cluster they measured): counters add, gauges
  // last-write-wins, summaries/histograms merge samples.
  void merge(const MetricsRegistry& other);

  // Read-side iteration (sorted by name — deterministic JSON).
  // Unsynchronized: only valid while no other thread is resolving or
  // folding (post-run reporting).
  const std::map<std::string, std::size_t>& counter_names() const
      BFTBC_NO_THREAD_SAFETY_ANALYSIS {
    return counter_index_;
  }
  const Counter& counter_at(std::size_t slot) const
      BFTBC_NO_THREAD_SAFETY_ANALYSIS {
    return counters_[slot];
  }
  const std::map<std::string, std::size_t>& gauge_names() const
      BFTBC_NO_THREAD_SAFETY_ANALYSIS {
    return gauge_index_;
  }
  const Gauge& gauge_at(std::size_t slot) const
      BFTBC_NO_THREAD_SAFETY_ANALYSIS {
    return gauges_[slot];
  }
  const std::map<std::string, std::size_t>& summary_names() const
      BFTBC_NO_THREAD_SAFETY_ANALYSIS {
    return summary_index_;
  }
  const Summary& summary_at(std::size_t slot) const
      BFTBC_NO_THREAD_SAFETY_ANALYSIS {
    return summaries_[slot];
  }
  const std::map<std::string, std::size_t>& histogram_names() const
      BFTBC_NO_THREAD_SAFETY_ANALYSIS {
    return histogram_index_;
  }
  const Histogram& histogram_at(std::size_t slot) const
      BFTBC_NO_THREAD_SAFETY_ANALYSIS {
    return histograms_[slot];
  }

  // {"counters": {...}, "gauges": {...}, "summaries": {...},
  //  "histograms": {...}} — appended to an in-progress writer so the
  //  bench report can embed it.
  void write_json(class JsonWriter& w) const;
  std::string to_json() const;

  // Drops every metric AND invalidates all handles. Only for tests.
  void reset();

  // Shared process-wide instance (tools/examples that want one sink).
  static MetricsRegistry& global();

 private:
  template <typename SlotT>
  SlotT& resolve_locked(std::map<std::string, std::size_t>& index,
                        std::deque<SlotT>& slots, std::string_view name)
      BFTBC_REQUIRES(mu_);

  // Guards the name→slot indices and the structure of the slot deques.
  // The deque-backed slots themselves are stable once created; recording
  // through a resolved handle deliberately bypasses the lock (single
  // owner thread per handle — see the threading contract above).
  mutable std::mutex mu_;
  std::map<std::string, std::size_t> counter_index_ BFTBC_GUARDED_BY(mu_);
  std::deque<Counter> counters_ BFTBC_GUARDED_BY(mu_);
  std::map<std::string, std::size_t> gauge_index_ BFTBC_GUARDED_BY(mu_);
  std::deque<Gauge> gauges_ BFTBC_GUARDED_BY(mu_);
  std::map<std::string, std::size_t> summary_index_ BFTBC_GUARDED_BY(mu_);
  std::deque<Summary> summaries_ BFTBC_GUARDED_BY(mu_);
  std::map<std::string, std::size_t> histogram_index_ BFTBC_GUARDED_BY(mu_);
  std::deque<Histogram> histograms_ BFTBC_GUARDED_BY(mu_);
  // Names handed out by claim_unique (they may not have resolved any
  // handle yet, so the indices alone cannot answer "is this taken?").
  std::set<std::string> claims_ BFTBC_GUARDED_BY(mu_);
};

}  // namespace bftbc::metrics
