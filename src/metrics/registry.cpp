#include "metrics/registry.h"

#include "metrics/json.h"

namespace bftbc::metrics {

template <typename SlotT>
SlotT& MetricsRegistry::resolve_locked(
    std::map<std::string, std::size_t>& index, std::deque<SlotT>& slots,
    std::string_view name) {
  auto it = index.find(std::string(name));
  if (it == index.end()) {
    it = index.emplace(std::string(name), slots.size()).first;
    slots.emplace_back();
  }
  return slots[it->second];
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  return resolve_locked(counter_index_, counters_, name);
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  return resolve_locked(gauge_index_, gauges_, name);
}

Summary& MetricsRegistry::summary(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  return resolve_locked(summary_index_, summaries_, name);
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  return resolve_locked(histogram_index_, histograms_, name);
}

std::string MetricsRegistry::claim_unique(std::string_view base) {
  std::lock_guard<std::mutex> lock(mu_);
  auto taken = [this](const std::string& name) {
    return claims_.count(name) != 0 || counter_index_.count(name) != 0 ||
           gauge_index_.count(name) != 0 || summary_index_.count(name) != 0 ||
           histogram_index_.count(name) != 0;
  };
  std::string name(base);
  for (std::size_t i = 2; taken(name); ++i) {
    name = std::string(base) + "#" + std::to_string(i);
  }
  claims_.insert(name);
  return name;
}

void MetricsRegistry::fold_counters(std::string_view scope,
                                    const Counters& counters) {
  const std::string prefix =
      scope.empty() ? std::string() : std::string(scope) + "/";
  // One lock for the whole fold: the SETs on the slots happen under mu_,
  // so concurrent folds into a shared registry are race-free.
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, value] : counters.all()) {
    resolve_locked(counter_index_, counters_, prefix + name).set(value);
  }
}

void MetricsRegistry::merge(const MetricsRegistry& other) {
  if (&other == this) return;  // self-merge would double-lock mu_
  std::scoped_lock lock(mu_, other.mu_);
  for (const auto& [name, slot] : other.counter_index_) {
    resolve_locked(counter_index_, counters_, name)
        .inc(other.counters_[slot].value);
  }
  for (const auto& [name, slot] : other.gauge_index_) {
    resolve_locked(gauge_index_, gauges_, name).set(other.gauges_[slot].value);
  }
  for (const auto& [name, slot] : other.summary_index_) {
    resolve_locked(summary_index_, summaries_, name)
        .merge(other.summaries_[slot]);
  }
  for (const auto& [name, slot] : other.histogram_index_) {
    resolve_locked(histogram_index_, histograms_, name)
        .merge(other.histograms_[slot]);
  }
}

void MetricsRegistry::write_json(JsonWriter& w) const {
  std::lock_guard<std::mutex> lock(mu_);
  w.begin_object();

  w.key("counters");
  w.begin_object();
  for (const auto& [name, slot] : counter_index_) {
    w.key(name);
    w.value(counters_[slot].value);
  }
  w.end_object();

  w.key("gauges");
  w.begin_object();
  for (const auto& [name, slot] : gauge_index_) {
    w.key(name);
    w.value(gauges_[slot].value);
  }
  w.end_object();

  w.key("summaries");
  w.begin_object();
  for (const auto& [name, slot] : summary_index_) {
    const Summary::Snapshot s = summaries_[slot].snapshot();
    w.key(name);
    w.begin_object();
    w.key("count");
    w.value(static_cast<std::uint64_t>(s.count));
    w.key("mean");
    w.value(s.mean);
    w.key("p50");
    w.value(s.p50);
    w.key("p90");
    w.value(s.p90);
    w.key("p99");
    w.value(s.p99);
    w.key("p999");
    w.value(s.p999);
    w.key("min");
    w.value(s.min);
    w.key("max");
    w.value(s.max);
    w.key("stddev");
    w.value(s.stddev);
    w.end_object();
  }
  w.end_object();

  w.key("histograms");
  w.begin_object();
  for (const auto& [name, slot] : histogram_index_) {
    const Histogram& h = histograms_[slot];
    w.key(name);
    w.begin_object();
    w.key("total");
    w.value(h.total());
    w.key("mean");
    w.value(h.mean());
    w.key("max");
    w.value(h.max_value());
    w.key("buckets");
    w.begin_object();
    for (const auto& [v, c] : h.buckets()) {
      w.key(std::to_string(v));
      w.value(c);
    }
    w.end_object();
    w.end_object();
  }
  w.end_object();

  w.end_object();
}

std::string MetricsRegistry::to_json() const {
  JsonWriter w;
  write_json(w);
  return std::move(w).take();
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  counter_index_.clear();
  counters_.clear();
  gauge_index_.clear();
  gauges_.clear();
  summary_index_.clear();
  summaries_.clear();
  histogram_index_.clear();
  histograms_.clear();
  claims_.clear();
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry instance;
  return instance;
}

}  // namespace bftbc::metrics
