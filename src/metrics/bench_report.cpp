#include "metrics/bench_report.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>

#include "metrics/json.h"

namespace bftbc::metrics {

BenchArgs parse_bench_args(int& argc, char** argv) {
  BenchArgs out;
  int write_idx = 1;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--smoke") == 0) {
      out.smoke = true;
    } else if (std::strcmp(arg, "--json") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--json requires a path argument\n");
        std::exit(2);
      }
      out.json_path = argv[++i];
    } else if (std::strncmp(arg, "--json=", 7) == 0) {
      out.json_path = arg + 7;
    } else {
      argv[write_idx++] = argv[i];  // keep for benchmark::Initialize etc.
    }
  }
  argc = write_idx;
  argv[argc] = nullptr;
  out.argc = argc;
  out.argv = argv;
  return out;
}

BenchReport::BenchReport(std::string name, const BenchArgs& args)
    : name_(std::move(name)), json_path_(args.json_path), smoke_(args.smoke) {
  // The sig-cache counters are part of the committed schema: create the
  // slots up front so they are emitted (as 0) even for workloads that
  // never exercised the verification cache.
  registry_.counter("sig_cache_hit");
  registry_.counter("sig_cache_miss");
  registry_.counter("sig_verify_calls");
  set_config("smoke", smoke_);
}

void BenchReport::set_config(const std::string& key,
                             const std::string& value) {
  for (auto& [k, v] : config_) {
    if (k == key) {
      v = value;
      return;
    }
  }
  config_.emplace_back(key, value);
}

void BenchReport::set_config(const std::string& key, std::int64_t value) {
  set_config(key, std::to_string(value));
}

void BenchReport::set_config(const std::string& key, double value) {
  std::ostringstream ss;
  ss << value;
  set_config(key, ss.str());
}

void BenchReport::set_config(const std::string& key, bool value) {
  set_config(key, std::string(value ? "true" : "false"));
}

std::string BenchReport::to_json() const {
  // Render the registry body and splice the report envelope around it:
  // the registry already emits the {counters,...} object we want inline.
  JsonWriter w;
  w.begin_object();
  w.key("schema_version");
  w.value(std::int64_t{1});
  w.key("bench");
  w.value(name_);
  w.key("config");
  w.begin_object();
  for (const auto& [k, v] : config_) {
    w.key(k);
    w.value(v);
  }
  w.end_object();
  w.end_object();

  std::string envelope = std::move(w).take();
  std::string body = registry_.to_json();
  // envelope = {... "config": {...}}  body = {"counters": ...}
  // Result:    {... "config": {...},\n"counters": ...}
  envelope.pop_back();  // trailing '}'
  while (!envelope.empty() &&
         (envelope.back() == '\n' || envelope.back() == ' ')) {
    envelope.pop_back();  // and the newline/indent before it
  }
  body.erase(0, 1);  // leading '{'
  return envelope + "," + body;
}

int BenchReport::finish() const {
  if (json_path_.empty()) return 0;
  std::ofstream out(json_path_, std::ios::trunc);
  if (!out) {
    std::cerr << name_ << ": cannot open --json path " << json_path_ << "\n";
    return 1;
  }
  out << to_json() << "\n";
  out.close();
  if (!out) {
    std::cerr << name_ << ": failed writing " << json_path_ << "\n";
    return 1;
  }
  std::cout << "\n[" << name_ << "] JSON metrics written to " << json_path_
            << "\n";
  return 0;
}

}  // namespace bftbc::metrics
