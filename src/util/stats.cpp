#include "util/stats.h"

#include <cmath>
#include <sstream>

namespace bftbc {

void Summary::add(double x) {
  samples_.push_back(x);
  sum_ += x;
  sum_sq_ += x * x;
  if (samples_.size() == 1) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  sorted_valid_ = false;
}

void Summary::merge(const Summary& other) {
  if (other.samples_.empty()) return;
  if (samples_.empty()) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  samples_.insert(samples_.end(), other.samples_.begin(),
                  other.samples_.end());
  sum_ += other.sum_;
  sum_sq_ += other.sum_sq_;
  sorted_valid_ = false;
}

double Summary::mean() const {
  return samples_.empty() ? 0.0 : sum_ / static_cast<double>(samples_.size());
}

double Summary::min() const { return samples_.empty() ? 0.0 : min_; }

double Summary::max() const { return samples_.empty() ? 0.0 : max_; }

double Summary::stddev() const {
  const auto n = static_cast<double>(samples_.size());
  if (n < 2) return 0.0;
  const double m = mean();
  const double var = (sum_sq_ - n * m * m) / (n - 1);
  return var > 0 ? std::sqrt(var) : 0.0;
}

double Summary::percentile(double q) const {
  ensure_sorted();
  if (sorted_.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const auto idx = static_cast<std::size_t>(
      q * static_cast<double>(sorted_.size() - 1) + 0.5);
  return sorted_[idx];
}

Summary::Snapshot Summary::snapshot() const {
  ensure_sorted();  // one sort covers every percentile below
  Snapshot s;
  s.count = count();
  s.mean = mean();
  s.min = min();
  s.max = max();
  s.stddev = stddev();
  s.p50 = percentile(0.5);
  s.p90 = percentile(0.9);
  s.p99 = percentile(0.99);
  s.p999 = percentile(0.999);
  return s;
}

void Summary::ensure_sorted() const {
  if (sorted_valid_) return;
  sorted_ = samples_;
  std::sort(sorted_.begin(), sorted_.end());
  sorted_valid_ = true;
}

std::string Summary::to_string() const {
  std::ostringstream ss;
  ss << "n=" << count() << " mean=" << mean() << " p50=" << median()
     << " p99=" << p99() << " min=" << min() << " max=" << max();
  return ss.str();
}

double Histogram::mean() const {
  if (total_ == 0) return 0.0;
  double s = 0;
  for (const auto& [v, c] : buckets_)
    s += static_cast<double>(v) * static_cast<double>(c);
  return s / static_cast<double>(total_);
}

std::string Histogram::to_string() const {
  std::ostringstream ss;
  bool first = true;
  for (const auto& [v, c] : buckets_) {
    if (!first) ss << " ";
    ss << v << ":" << c;
    first = false;
  }
  return ss.str();
}

}  // namespace bftbc
