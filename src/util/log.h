// Minimal leveled logging.
//
// Simulation code logs with the *virtual* time of the simulator when one
// is active (see sim::Simulator, which installs a time source); otherwise
// entries are unstamped. Logging defaults to kWarn so tests and benches
// stay quiet; set BFTBC_LOG=debug|info|warn|error or call set_log_level.
#pragma once

#include <cstdint>
#include <functional>
#include <sstream>
#include <string>

namespace bftbc {

enum class LogLevel { kDebug = 0, kInfo, kWarn, kError, kOff };

LogLevel log_level();
void set_log_level(LogLevel lvl);

// Installed by the simulator so log lines carry virtual timestamps.
// Returns nanoseconds of virtual time.
using LogTimeSource = std::function<std::uint64_t()>;
void set_log_time_source(LogTimeSource src);
void clear_log_time_source();

namespace detail {
void log_emit(LogLevel lvl, const std::string& msg);
}

// Stream-style logging: LOG(kInfo) << "replica " << id << " prepared";
class LogLine {
 public:
  explicit LogLine(LogLevel lvl) : lvl_(lvl), active_(lvl >= log_level()) {}
  ~LogLine() {
    if (active_) detail::log_emit(lvl_, ss_.str());
  }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    if (active_) ss_ << v;
    return *this;
  }

 private:
  LogLevel lvl_;
  bool active_;
  std::ostringstream ss_;
};

#define BFTBC_LOG(level) ::bftbc::LogLine(::bftbc::LogLevel::level)

}  // namespace bftbc
