// Tiny command-line flag parser for examples and bench binaries.
//
//   FlagSet flags;
//   auto& f = flags.add_int("f", 1, "number of tolerated replica faults");
//   auto& seed = flags.add_u64("seed", 42, "rng seed");
//   flags.parse(argc, argv);           // accepts --f=2 and --f 2
//   use(*f, *seed);
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace bftbc {

class FlagSet {
 public:
  template <typename T>
  class Flag {
   public:
    explicit Flag(T def) : value_(def) {}
    const T& operator*() const { return value_; }
    T value_;
  };

  Flag<std::int64_t>& add_int(const std::string& name, std::int64_t def,
                              const std::string& help);
  Flag<std::uint64_t>& add_u64(const std::string& name, std::uint64_t def,
                               const std::string& help);
  Flag<double>& add_double(const std::string& name, double def,
                           const std::string& help);
  Flag<bool>& add_bool(const std::string& name, bool def,
                       const std::string& help);
  Flag<std::string>& add_string(const std::string& name, std::string def,
                                const std::string& help);

  // Parses argv; on "--help" prints usage and exits(0). Unknown flags or
  // malformed values print an error and exit(2). Positional arguments are
  // collected in positional().
  void parse(int argc, char** argv);

  const std::vector<std::string>& positional() const { return positional_; }
  std::string usage(const std::string& prog) const;

 private:
  struct Entry;
  Entry& add_entry(const std::string& name, const std::string& help);

  struct Entry {
    std::string help;
    // exactly one of these is set
    Flag<std::int64_t>* as_int = nullptr;
    Flag<std::uint64_t>* as_u64 = nullptr;
    Flag<double>* as_double = nullptr;
    Flag<bool>* as_bool = nullptr;
    Flag<std::string>* as_string = nullptr;
    bool set_value(const std::string& v);
    std::string default_string() const;
  };

  std::map<std::string, Entry> entries_;
  // Own the flag objects; stable addresses are required since callers
  // hold references.
  std::vector<std::unique_ptr<Flag<std::int64_t>>> ints_;
  std::vector<std::unique_ptr<Flag<std::uint64_t>>> u64s_;
  std::vector<std::unique_ptr<Flag<double>>> doubles_;
  std::vector<std::unique_ptr<Flag<bool>>> bools_;
  std::vector<std::unique_ptr<Flag<std::string>>> strings_;
  std::vector<std::string> positional_;
};

}  // namespace bftbc
