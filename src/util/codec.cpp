#include "util/codec.h"

namespace bftbc {

void Writer::put_u16(std::uint16_t v) {
  put_u8(static_cast<std::uint8_t>(v));
  put_u8(static_cast<std::uint8_t>(v >> 8));
}

void Writer::put_u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) put_u8(static_cast<std::uint8_t>(v >> (8 * i)));
}

void Writer::put_u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) put_u8(static_cast<std::uint8_t>(v >> (8 * i)));
}

void Writer::put_varint(std::uint64_t v) {
  while (v >= 0x80) {
    put_u8(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  put_u8(static_cast<std::uint8_t>(v));
}

void Writer::put_bytes(BytesView b) {
  put_varint(b.size());
  put_raw(b);
}

bool Reader::need(std::size_t n) {
  if (!ok_ || data_.size() - pos_ < n) {
    ok_ = false;
    return false;
  }
  return true;
}

std::uint8_t Reader::get_u8() {
  if (!need(1)) return 0;
  return data_[pos_++];
}

std::uint16_t Reader::get_u16() {
  if (!need(2)) return 0;
  std::uint16_t v = static_cast<std::uint16_t>(data_[pos_]) |
                    static_cast<std::uint16_t>(data_[pos_ + 1]) << 8;
  pos_ += 2;
  return v;
}

std::uint32_t Reader::get_u32() {
  if (!need(4)) return 0;
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<std::uint32_t>(data_[pos_ + i]) << (8 * i);
  pos_ += 4;
  return v;
}

std::uint64_t Reader::get_u64() {
  if (!need(8)) return 0;
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
  pos_ += 8;
  return v;
}

std::uint64_t Reader::get_varint() {
  std::uint64_t v = 0;
  int shift = 0;
  for (;;) {
    if (!need(1)) return 0;
    std::uint8_t b = data_[pos_++];
    if (shift == 63 && (b & 0x7e) != 0) {  // overflow past 64 bits
      ok_ = false;
      return 0;
    }
    v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) break;
    shift += 7;
    if (shift > 63) {
      ok_ = false;
      return 0;
    }
  }
  return v;
}

Bytes Reader::get_bytes() {
  std::uint64_t n = get_varint();
  if (!ok_ || n > remaining()) {
    ok_ = false;
    return {};
  }
  Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
            data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return out;
}

std::string Reader::get_string() {
  Bytes b = get_bytes();
  return std::string(b.begin(), b.end());
}

Bytes Reader::get_raw(std::size_t n) {
  if (!need(n)) return {};
  Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
            data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return out;
}

}  // namespace bftbc
