#include "util/json_value.h"

#include <cctype>
#include <cstdlib>

namespace bftbc {

namespace {

// Nesting cap: scenario documents are ~4 levels deep; anything deeper is
// garbage (or an attack on the replay path) and is rejected, not recursed.
constexpr int kMaxDepth = 64;

}  // namespace

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  std::optional<JsonValue> run() {
    JsonValue v;
    if (!parse_value(v, 0)) return std::nullopt;
    skip_ws();
    if (pos_ != text_.size()) return std::nullopt;  // trailing garbage
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool eat(char c) {
    skip_ws();
    if (pos_ >= text_.size() || text_[pos_] != c) return false;
    ++pos_;
    return true;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  bool parse_value(JsonValue& out, int depth) {
    if (depth > kMaxDepth) return false;
    skip_ws();
    if (pos_ >= text_.size()) return false;
    const char c = text_[pos_];
    switch (c) {
      case '{':
        return parse_object(out, depth);
      case '[':
        return parse_array(out, depth);
      case '"':
        out.kind_ = JsonValue::Kind::kString;
        return parse_string(out.str_);
      case 't':
        out.kind_ = JsonValue::Kind::kBool;
        out.bool_ = true;
        return literal("true");
      case 'f':
        out.kind_ = JsonValue::Kind::kBool;
        out.bool_ = false;
        return literal("false");
      case 'n':
        out.kind_ = JsonValue::Kind::kNull;
        return literal("null");
      default:
        return parse_number(out);
    }
  }

  bool parse_object(JsonValue& out, int depth) {
    out.kind_ = JsonValue::Kind::kObject;
    if (!eat('{')) return false;
    skip_ws();
    if (eat('}')) return true;
    while (true) {
      skip_ws();
      std::string key;
      if (!parse_string(key)) return false;
      if (!eat(':')) return false;
      JsonValue v;
      if (!parse_value(v, depth + 1)) return false;
      out.obj_.emplace_back(std::move(key), std::move(v));
      if (eat(',')) continue;
      return eat('}');
    }
  }

  bool parse_array(JsonValue& out, int depth) {
    out.kind_ = JsonValue::Kind::kArray;
    if (!eat('[')) return false;
    skip_ws();
    if (eat(']')) return true;
    while (true) {
      JsonValue v;
      if (!parse_value(v, depth + 1)) return false;
      out.arr_.push_back(std::move(v));
      if (eat(',')) continue;
      return eat(']');
    }
  }

  bool parse_string(std::string& out) {
    if (pos_ >= text_.size() || text_[pos_] != '"') return false;
    ++pos_;
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return false;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return false;
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else
              return false;
          }
          // The emitter only escapes control characters (< 0x20); decode
          // those exactly and pass anything else through as UTF-8 is not
          // needed for the scenario schema.
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else {
            return false;
          }
          break;
        }
        default:
          return false;
      }
    }
    return false;  // unterminated
  }

  bool parse_number(JsonValue& out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    bool integral = true;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c >= '0' && c <= '9') {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        integral = false;
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) return false;
    const std::string token(text_.substr(start, pos_ - start));
    out.kind_ = JsonValue::Kind::kNumber;
    char* end = nullptr;
    out.num_ = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) return false;
    if (integral && token[0] != '-') {
      // Exact u64 channel: seeds and virtual-time values must survive
      // the round trip bit-for-bit.
      errno = 0;
      out.u64_ = std::strtoull(token.c_str(), &end, 10);
      out.integral_ =
          errno == 0 && end == token.c_str() + token.size();
    }
    return true;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

std::optional<JsonValue> JsonValue::parse(std::string_view text) {
  return JsonParser(text).run();
}

bool JsonValue::as_bool(bool fallback) const {
  return kind_ == Kind::kBool ? bool_ : fallback;
}

double JsonValue::as_double(double fallback) const {
  return kind_ == Kind::kNumber ? num_ : fallback;
}

std::uint64_t JsonValue::as_u64(std::uint64_t fallback) const {
  if (kind_ != Kind::kNumber) return fallback;
  if (integral_) return u64_;
  return num_ < 0 ? fallback : static_cast<std::uint64_t>(num_);
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [k, v] : obj_) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::uint64_t JsonValue::u64(std::string_view key,
                             std::uint64_t fallback) const {
  const JsonValue* v = find(key);
  return v ? v->as_u64(fallback) : fallback;
}

double JsonValue::num(std::string_view key, double fallback) const {
  const JsonValue* v = find(key);
  return v ? v->as_double(fallback) : fallback;
}

bool JsonValue::boolean(std::string_view key, bool fallback) const {
  const JsonValue* v = find(key);
  return v ? v->as_bool(fallback) : fallback;
}

std::string JsonValue::string(std::string_view key,
                              std::string fallback) const {
  const JsonValue* v = find(key);
  if (!v || v->kind() != Kind::kString) return fallback;
  return v->as_string();
}

}  // namespace bftbc
