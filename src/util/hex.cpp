#include "util/hex.h"

namespace bftbc {

namespace {
constexpr char kHexDigits[] = "0123456789abcdef";

int hex_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}
}  // namespace

std::string to_hex(BytesView b) {
  std::string out;
  out.reserve(b.size() * 2);
  for (std::uint8_t byte : b) {
    out.push_back(kHexDigits[byte >> 4]);
    out.push_back(kHexDigits[byte & 0xf]);
  }
  return out;
}

std::optional<Bytes> from_hex(std::string_view s) {
  if (s.size() % 2 != 0) return std::nullopt;
  Bytes out;
  out.reserve(s.size() / 2);
  for (std::size_t i = 0; i < s.size(); i += 2) {
    int hi = hex_value(s[i]);
    int lo = hex_value(s[i + 1]);
    if (hi < 0 || lo < 0) return std::nullopt;
    out.push_back(static_cast<std::uint8_t>(hi << 4 | lo));
  }
  return out;
}

std::string hex_prefix(BytesView b, std::size_t n) {
  std::string h = to_hex(b);
  if (h.size() > n) h.resize(n);
  return h;
}

}  // namespace bftbc
