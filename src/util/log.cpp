#include "util/log.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

#include "util/thread_annotations.h"

namespace bftbc {

namespace {

LogLevel env_log_level() {
  const char* env = std::getenv("BFTBC_LOG");
  if (env == nullptr) return LogLevel::kWarn;
  if (std::strcmp(env, "debug") == 0) return LogLevel::kDebug;
  if (std::strcmp(env, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(env, "warn") == 0) return LogLevel::kWarn;
  if (std::strcmp(env, "error") == 0) return LogLevel::kError;
  if (std::strcmp(env, "off") == 0) return LogLevel::kOff;
  return LogLevel::kWarn;
}

// Read on every LOG() call-site from any thread; atomic so a level
// change never races with the hot-path check.
std::atomic<LogLevel> g_level{env_log_level()};

std::mutex g_mu;
// g_mu serializes sink access: the time source swap and the actual
// emission (so interleaved lines never shear).
LogTimeSource g_time_source BFTBC_GUARDED_BY(g_mu);

const char* level_tag(LogLevel lvl) {
  switch (lvl) {
    case LogLevel::kDebug: return "D";
    case LogLevel::kInfo: return "I";
    case LogLevel::kWarn: return "W";
    case LogLevel::kError: return "E";
    case LogLevel::kOff: return "?";
  }
  return "?";
}

}  // namespace

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }
void set_log_level(LogLevel lvl) {
  g_level.store(lvl, std::memory_order_relaxed);
}

void set_log_time_source(LogTimeSource src) {
  std::lock_guard<std::mutex> lock(g_mu);
  g_time_source = std::move(src);
}

void clear_log_time_source() {
  std::lock_guard<std::mutex> lock(g_mu);
  g_time_source = nullptr;
}

namespace detail {

void log_emit(LogLevel lvl, const std::string& msg) {
  std::lock_guard<std::mutex> lock(g_mu);
  if (g_time_source) {
    const std::uint64_t ns = g_time_source();
    std::fprintf(stderr, "[%s %llu.%06llums] %s\n", level_tag(lvl),
                 static_cast<unsigned long long>(ns / 1000000),
                 static_cast<unsigned long long>(ns % 1000000), msg.c_str());
  } else {
    std::fprintf(stderr, "[%s] %s\n", level_tag(lvl), msg.c_str());
  }
}

}  // namespace detail
}  // namespace bftbc
