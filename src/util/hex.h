// Hex encoding/decoding for logs, test vectors, and digest display.
#pragma once

#include <optional>
#include <string>

#include "util/bytes.h"

namespace bftbc {

// Lowercase hex string of the bytes.
std::string to_hex(BytesView b);

// Parse a hex string (case-insensitive). Returns nullopt on odd length or
// non-hex characters.
std::optional<Bytes> from_hex(std::string_view s);

// First n hex chars of a digest — compact identifier for logs.
std::string hex_prefix(BytesView b, std::size_t n = 8);

}  // namespace bftbc
