// Streaming statistics accumulators used by the benchmark harness.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace bftbc {

// Accumulates samples; computes count/mean/min/max/stddev/percentiles.
// Percentiles keep all samples (fine at bench scale: <10^7 samples).
//
// Empty-summary contract: every statistic on a zero-sample Summary
// returns the defined sentinel 0.0 (never indexes the empty sample
// vector — benches routinely print summaries for scenarios that
// recorded nothing).
class Summary {
 public:
  void add(double x);

  // Appends all of `other`'s samples (bench pipeline: fold per-cluster
  // summaries into one report-level summary).
  void merge(const Summary& other);

  std::size_t count() const { return samples_.size(); }
  double mean() const;
  // min()/max() are O(1): tracked as running values in add()/merge(),
  // independent of the sorted-percentile cache.
  double min() const;
  double max() const;
  double stddev() const;
  // q in [0,1] (clamped); nearest-rank on the sorted samples.
  //
  // The sorted view is cached: reading several percentiles from a sealed
  // summary sorts once; any add() afterwards invalidates the cache so
  // the next read re-sorts (pinned by SummaryTest.AddAfterRead...).
  double percentile(double q) const;
  double median() const { return percentile(0.5); }
  double p99() const { return percentile(0.99); }

  // All emission-relevant statistics in one struct, computed with a
  // single sort — what the metrics JSON pipeline reads.
  struct Snapshot {
    std::size_t count = 0;
    double mean = 0, min = 0, max = 0, stddev = 0;
    double p50 = 0, p90 = 0, p99 = 0, p999 = 0;
  };
  Snapshot snapshot() const;

  // One-line rendering for bench output.
  std::string to_string() const;

 private:
  void ensure_sorted() const;

  std::vector<double> samples_;
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;
  double sum_ = 0;
  double sum_sq_ = 0;
  // Running extrema (meaningful only while samples_ is non-empty).
  double min_ = 0;
  double max_ = 0;
};

// Integer-valued histogram (e.g. "number of phases a write took").
class Histogram {
 public:
  void add(std::int64_t v) { ++buckets_[v]; ++total_; }

  void merge(const Histogram& other) {
    for (const auto& [v, c] : other.buckets_) buckets_[v] += c;
    total_ += other.total_;
  }

  std::uint64_t total() const { return total_; }
  std::uint64_t count_of(std::int64_t v) const {
    auto it = buckets_.find(v);
    return it == buckets_.end() ? 0 : it->second;
  }
  double fraction_of(std::int64_t v) const {
    return total_ == 0 ? 0.0 : static_cast<double>(count_of(v)) / total_;
  }
  std::int64_t max_value() const {
    return buckets_.empty() ? 0 : buckets_.rbegin()->first;
  }
  double mean() const;

  const std::map<std::int64_t, std::uint64_t>& buckets() const {
    return buckets_;
  }

  // e.g. "2:914 3:86" — value:count pairs.
  std::string to_string() const;

 private:
  std::map<std::int64_t, std::uint64_t> buckets_;
  std::uint64_t total_ = 0;
};

// Monotonic counters keyed by name; the metrics sink for protocol
// instrumentation (messages sent, bytes, signatures computed, ...).
class Counters {
 public:
  void inc(const std::string& name, std::uint64_t by = 1) {
    counts_[name] += by;
  }
  std::uint64_t get(const std::string& name) const {
    auto it = counts_.find(name);
    return it == counts_.end() ? 0 : it->second;
  }
  void reset() { counts_.clear(); }
  const std::map<std::string, std::uint64_t>& all() const { return counts_; }

 private:
  std::map<std::string, std::uint64_t> counts_;
};

}  // namespace bftbc
