// Binary serialization primitives.
//
// All wire messages and all signed statements are encoded with Writer and
// decoded with Reader. The format is deliberately simple and fully
// deterministic (a requirement for signing: the signed bytes of a
// statement must be identical on every node):
//
//   u8/u16/u32/u64   little-endian fixed width
//   varint           LEB128, used for lengths
//   bytes            varint length + raw bytes
//   string           same as bytes
//
// Reader is non-throwing: any malformed input flips a sticky error flag
// and subsequent reads return zero values. Callers check ok() once at the
// end — this keeps replica message handlers simple and makes truncation /
// garbage injected by Byzantine nodes safe to parse.
#pragma once

#include <cstdint>
#include <string>

#include "util/bytes.h"

namespace bftbc {

class Writer {
 public:
  Writer() = default;

  void put_u8(std::uint8_t v) { buf_.push_back(v); }
  void put_u16(std::uint16_t v);
  void put_u32(std::uint32_t v);
  void put_u64(std::uint64_t v);
  void put_varint(std::uint64_t v);
  void put_bool(bool v) { put_u8(v ? 1 : 0); }
  void put_bytes(BytesView b);
  void put_string(std::string_view s) { put_bytes(as_bytes_view(s)); }
  // Raw append with NO length prefix — for fixed-size fields (digests)
  // and for nesting pre-encoded sub-messages.
  void put_raw(BytesView b) { append(buf_, b); }

  const Bytes& data() const& { return buf_; }
  Bytes take() && { return std::move(buf_); }
  std::size_t size() const { return buf_.size(); }

 private:
  Bytes buf_;
};

class Reader {
 public:
  explicit Reader(BytesView data) : data_(data) {}

  std::uint8_t get_u8();
  std::uint16_t get_u16();
  std::uint32_t get_u32();
  std::uint64_t get_u64();
  std::uint64_t get_varint();
  bool get_bool() { return get_u8() != 0; }
  Bytes get_bytes();
  std::string get_string();
  // Read exactly n raw bytes (no length prefix).
  Bytes get_raw(std::size_t n);

  // True iff no read so far ran past the end or hit malformed data.
  [[nodiscard]] bool ok() const { return ok_; }
  // Lets decoders flag semantic violations the primitive reads cannot see
  // (e.g. a length field exceeding a hard cap). Sticky, like read errors.
  void fail() { ok_ = false; }
  // True iff the cursor consumed the entire input (trailing garbage in a
  // signed statement must be rejected, or signatures would not be unique).
  bool at_end() const { return pos_ == data_.size(); }
  // Convenience: fully parsed and well formed.
  [[nodiscard]] bool done() const { return ok_ && at_end(); }

  std::size_t remaining() const { return data_.size() - pos_; }

 private:
  bool need(std::size_t n);

  BytesView data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace bftbc
