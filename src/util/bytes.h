// Basic byte-sequence aliases and helpers shared across the library.
//
// Everything that crosses a module boundary as "raw data" is a
// `bftbc::Bytes` (owning) or `bftbc::BytesView` (non-owning). Keeping a
// single spelling avoids accidental copies between vector<char> /
// vector<uint8_t> / string representations.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace bftbc {

using Bytes = std::vector<std::uint8_t>;
using BytesView = std::span<const std::uint8_t>;

// Construct an owning byte vector from a string literal / std::string.
inline Bytes to_bytes(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

// View a string's contents as bytes without copying.
inline BytesView as_bytes_view(std::string_view s) {
  return BytesView(reinterpret_cast<const std::uint8_t*>(s.data()), s.size());
}

// Render bytes as a std::string (useful for tests on textual payloads).
inline std::string to_string(BytesView b) {
  return std::string(reinterpret_cast<const char*>(b.data()), b.size());
}

// Constant-time equality. Crypto comparisons (MAC tags, digests) must not
// leak the position of the first mismatch through timing.
inline bool constant_time_equal(BytesView a, BytesView b) {
  if (a.size() != b.size()) return false;
  std::uint8_t acc = 0;
  for (std::size_t i = 0; i < a.size(); ++i) acc |= a[i] ^ b[i];
  return acc == 0;
}

// Append a view onto an owning buffer.
inline void append(Bytes& dst, BytesView src) {
  dst.insert(dst.end(), src.begin(), src.end());
}

}  // namespace bftbc
