// Zipfian key-popularity generator (YCSB's ZipfianGenerator shape).
//
// Benchmarks that touch every key uniformly hide the behavior sharding
// and the per-replica object cache actually face: a few hot objects
// soaking up most of the traffic while a long tail stays cold. The
// classic skewed workload is Zipf: P(rank k) ∝ 1 / k^theta over n keys.
// theta=0.99 is the YCSB default ("zipfian constant"); theta→0
// degenerates to uniform.
//
// Sampling uses the rejection-free inversion of Gray et al. ("Quickly
// Generating Billion-Record Synthetic Databases", SIGMOD '94) — the same
// closed form YCSB implements: O(1) per sample after an O(n) harmonic
// precomputation at construction. Ranks come out 0-based with rank 0
// the most popular; callers map rank→object id (often through a
// scramble) themselves.
#pragma once

#include <cmath>
#include <cstdint>

#include "util/rng.h"

namespace bftbc {

class ZipfGenerator {
 public:
  // n >= 1 keys, skew theta in [0, 1). theta == 0 is uniform.
  ZipfGenerator(std::uint64_t n, double theta)
      : n_(n == 0 ? 1 : n), theta_(theta) {
    for (std::uint64_t i = 1; i <= n_; ++i) {
      zetan_ += 1.0 / std::pow(static_cast<double>(i), theta_);
      if (i == 2) zeta2_ = zetan_;
    }
    if (n_ == 1) zeta2_ = zetan_;
    alpha_ = 1.0 / (1.0 - theta_);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
           (1.0 - zeta2_ / zetan_);
  }

  std::uint64_t n() const { return n_; }
  double theta() const { return theta_; }

  // 0-based rank; rank 0 is the hottest key.
  std::uint64_t next(Rng& rng) const {
    const double u = rng.next_double();
    const double uz = u * zetan_;
    if (uz < 1.0) return 0;
    if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
    const auto rank = static_cast<std::uint64_t>(
        static_cast<double>(n_) *
        std::pow(eta_ * u - eta_ + 1.0, alpha_));
    return rank >= n_ ? n_ - 1 : rank;
  }

 private:
  std::uint64_t n_;
  double theta_;
  double zetan_ = 0.0;
  double zeta2_ = 0.0;
  double alpha_ = 0.0;
  double eta_ = 0.0;
};

}  // namespace bftbc
