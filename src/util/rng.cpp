#include "util/rng.h"

#include <cmath>

namespace bftbc {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
  // A pathological all-zero state would lock the generator at zero; the
  // SplitMix64 expansion cannot produce it for any seed, but guard anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  // Lemire's nearly-divisionless bounded generation.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  std::uint64_t l = static_cast<std::uint64_t>(m);
  if (l < bound) {
    std::uint64_t t = -bound % bound;
    while (l < t) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::next_in_range(std::int64_t lo, std::int64_t hi) {
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  return lo + static_cast<std::int64_t>(next_below(span));
}

double Rng::next_double() {
  // 53 high bits → uniform in [0,1) with full double precision.
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

bool Rng::next_bool(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

double Rng::next_exponential(double mean) {
  // Inverse-CDF; clamp the uniform away from 0 to avoid log(0).
  double u = next_double();
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

void Rng::fill(Bytes& out, std::size_t n) {
  out.resize(n);
  std::size_t i = 0;
  while (i + 8 <= n) {
    std::uint64_t v = next_u64();
    for (int b = 0; b < 8; ++b) out[i++] = static_cast<std::uint8_t>(v >> (8 * b));
  }
  if (i < n) {
    std::uint64_t v = next_u64();
    for (int b = 0; i < n; ++b) out[i++] = static_cast<std::uint8_t>(v >> (8 * b));
  }
}

Bytes Rng::bytes(std::size_t n) {
  Bytes out;
  fill(out, n);
  return out;
}

Rng Rng::split() {
  return Rng(next_u64());
}

}  // namespace bftbc
