// Lightweight Status / Result<T> error-handling vocabulary.
//
// Protocol code runs inside a simulator event loop where exceptions are
// awkward to reason about; instead fallible operations return
// Result<T> = value or Status. Status carries a coarse code plus a
// human-readable message for logs and test assertions.
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <utility>
#include <variant>

namespace bftbc {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   // malformed request / bad parameters
  kBadSignature,      // authentication failed
  kBadCertificate,    // certificate malformed or quorum not satisfied
  kNotFound,          // unknown object / principal
  kConflict,          // request conflicts with replica state (e.g. Plist)
  kTimeout,           // operation deadline exceeded
  kUnavailable,       // transport closed / node stopped
  kInternal,          // invariant violation (bug)
};

inline const char* status_code_name(StatusCode c) {
  switch (c) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kBadSignature: return "BAD_SIGNATURE";
    case StatusCode::kBadCertificate: return "BAD_CERTIFICATE";
    case StatusCode::kNotFound: return "NOT_FOUND";
    case StatusCode::kConflict: return "CONFLICT";
    case StatusCode::kTimeout: return "TIMEOUT";
    case StatusCode::kUnavailable: return "UNAVAILABLE";
    case StatusCode::kInternal: return "INTERNAL";
  }
  return "UNKNOWN";
}

// [[nodiscard]] at class scope: every function returning a Status by
// value warns (and errors under -Werror=unused-result) if the caller
// drops it. In a protocol whose safety is the sum of its checks, an
// ignored Status is a hole, not a nit; intentional drops must be spelled
// `(void)` with a comment.
class [[nodiscard]] Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status ok() { return Status(); }

  [[nodiscard]] bool is_ok() const { return code_ == StatusCode::kOk; }
  [[nodiscard]] StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string to_string() const {
    if (is_ok()) return "OK";
    std::string s = status_code_name(code_);
    if (!message_.empty()) {
      s += ": ";
      s += message_;
    }
    return s;
  }

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline Status invalid_argument(std::string m) {
  return Status(StatusCode::kInvalidArgument, std::move(m));
}
inline Status bad_signature(std::string m) {
  return Status(StatusCode::kBadSignature, std::move(m));
}
inline Status bad_certificate(std::string m) {
  return Status(StatusCode::kBadCertificate, std::move(m));
}
inline Status not_found(std::string m) {
  return Status(StatusCode::kNotFound, std::move(m));
}
inline Status conflict(std::string m) {
  return Status(StatusCode::kConflict, std::move(m));
}
inline Status timeout_error(std::string m) {
  return Status(StatusCode::kTimeout, std::move(m));
}
inline Status unavailable(std::string m) {
  return Status(StatusCode::kUnavailable, std::move(m));
}
inline Status internal_error(std::string m) {
  return Status(StatusCode::kInternal, std::move(m));
}

// Result<T>: either a T or a non-OK Status. Class-scope [[nodiscard]]
// for the same reason as Status: a dropped Result is a dropped check.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : v_(std::move(value)) {}            // NOLINT(implicit)
  Result(Status status) : v_(std::move(status)) {      // NOLINT(implicit)
    assert(!std::get<Status>(v_).is_ok() && "Result from OK status");
  }

  [[nodiscard]] bool is_ok() const { return std::holds_alternative<T>(v_); }
  explicit operator bool() const { return is_ok(); }

  const T& value() const& {
    assert(is_ok());
    return std::get<T>(v_);
  }
  T& value() & {
    assert(is_ok());
    return std::get<T>(v_);
  }
  T&& take() && {
    assert(is_ok());
    return std::get<T>(std::move(v_));
  }

  const Status& status() const {
    static const Status kOk = Status::ok();
    if (is_ok()) return kOk;
    return std::get<Status>(v_);
  }

  const T& value_or(const T& fallback) const {
    return is_ok() ? std::get<T>(v_) : fallback;
  }

 private:
  std::variant<T, Status> v_;
};

}  // namespace bftbc
