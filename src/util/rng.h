// Deterministic pseudo-random number generation.
//
// Every source of randomness in the library flows through Rng so that an
// entire simulation — network delays, loss, Byzantine behavior schedules,
// client think times, crypto nonces in tests — reproduces exactly from a
// single 64-bit seed. The generator is xoshiro256** (Blackman/Vigna),
// which is fast, has a 256-bit state, and passes BigCrush.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "util/bytes.h"

namespace bftbc {

class Rng {
 public:
  // Seeds the 256-bit state from a 64-bit seed via SplitMix64, the
  // initialization recommended by the xoshiro authors.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  // Uniform over the full 64-bit range.
  std::uint64_t next_u64();

  std::uint32_t next_u32() { return static_cast<std::uint32_t>(next_u64() >> 32); }

  // Uniform integer in [0, bound). bound must be > 0. Uses Lemire's
  // multiply-shift rejection method to avoid modulo bias.
  std::uint64_t next_below(std::uint64_t bound);

  // Uniform integer in [lo, hi] inclusive.
  std::int64_t next_in_range(std::int64_t lo, std::int64_t hi);

  // Uniform double in [0, 1).
  double next_double();

  // Bernoulli trial with success probability p (clamped to [0,1]).
  bool next_bool(double p);

  // Exponentially distributed double with the given mean (> 0); used for
  // Poisson inter-arrival times and network jitter models.
  double next_exponential(double mean);

  // Fill a buffer with random bytes (nonces, test payloads).
  void fill(Bytes& out, std::size_t n);
  Bytes bytes(std::size_t n);

  // Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(next_below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  // Pick a uniformly random element index; container must be non-empty.
  template <typename T>
  const T& pick(const std::vector<T>& v) {
    return v[static_cast<std::size_t>(next_below(v.size()))];
  }

  // Derive an independent child generator (for giving each simulated node
  // its own stream without coupling their consumption order).
  Rng split();

  // Satisfy UniformRandomBitGenerator so std:: algorithms accept Rng.
  using result_type = std::uint64_t;
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }
  result_type operator()() { return next_u64(); }

 private:
  std::uint64_t s_[4];
};

}  // namespace bftbc
