// Minimal JSON reader for scenario replay.
//
// metrics/json.h is write-only (benches emit, CI scripts consume); the
// explorer additionally needs to *load* a scenario back from the JSON it
// dumped (`bftbc_explore --replay scenario.json`). This is a small
// recursive-descent parser producing an immutable value tree — enough
// for the scenario schema, not a general-purpose library. Integers are
// kept in a separate u64 channel so 64-bit seeds and virtual-time
// nanoseconds round-trip exactly (a double would silently lose precision
// above 2^53 and break replay determinism).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace bftbc {

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  // Parses one JSON document (trailing whitespace allowed, trailing
  // garbage rejected). Returns nullopt on any syntax error; never throws.
  static std::optional<JsonValue> parse(std::string_view text);

  Kind kind() const { return kind_; }
  bool is_object() const { return kind_ == Kind::kObject; }
  bool is_array() const { return kind_ == Kind::kArray; }

  // Scalar accessors return the fallback when the kind does not match.
  bool as_bool(bool fallback = false) const;
  double as_double(double fallback = 0.0) const;
  std::uint64_t as_u64(std::uint64_t fallback = 0) const;
  const std::string& as_string() const { return str_; }

  const std::vector<JsonValue>& items() const { return arr_; }
  const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return obj_;
  }

  // Object lookup; nullptr when absent or not an object.
  const JsonValue* find(std::string_view key) const;

  // Convenience: member scalar with fallback.
  std::uint64_t u64(std::string_view key, std::uint64_t fallback = 0) const;
  double num(std::string_view key, double fallback = 0.0) const;
  bool boolean(std::string_view key, bool fallback = false) const;
  std::string string(std::string_view key, std::string fallback = "") const;

 private:
  friend class JsonParser;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  std::uint64_t u64_ = 0;
  bool integral_ = false;  // u64_ holds the exact value
  std::string str_;
  std::vector<JsonValue> arr_;
  std::vector<std::pair<std::string, JsonValue>> obj_;
};

}  // namespace bftbc
