// EncodedMessage: an immutable, refcounted wire buffer.
//
// The hot fan-out path serializes a protocol message once and then hands
// the same underlying buffer to every target, to the delivery queue, and
// to duplicate deliveries — sharing is by refcount, never by deep copy.
// Immutability is what makes the sharing sound: once wrapped, the bytes
// can never change underneath a concurrent holder. The one mutator on
// the path — the network's corruption model — must call copy() and wrap
// a private buffer, so a flipped byte is visible only to that delivery.
#pragma once

#include <memory>
#include <utility>

#include "util/bytes.h"

namespace bftbc {

class EncodedMessage {
 public:
  EncodedMessage() = default;

  // Takes ownership of `buffer`; the contents are frozen from here on.
  [[nodiscard]] static EncodedMessage wrap(Bytes buffer) {
    return EncodedMessage(
        std::make_shared<const Bytes>(std::move(buffer)));
  }

  [[nodiscard]] bool valid() const { return buffer_ != nullptr; }
  [[nodiscard]] std::size_t size() const {
    return buffer_ == nullptr ? 0 : buffer_->size();
  }
  [[nodiscard]] BytesView view() const {
    return buffer_ == nullptr ? BytesView{} : BytesView(*buffer_);
  }

  // Deep copy for the rare holder that must mutate (corruption model).
  [[nodiscard]] Bytes copy() const {
    return buffer_ == nullptr ? Bytes{} : *buffer_;
  }

  // Number of live references to the shared buffer (tests pin the
  // zero-copy property through this).
  [[nodiscard]] long use_count() const { return buffer_.use_count(); }

  friend bool operator==(const EncodedMessage& a, const EncodedMessage& b) {
    if (a.buffer_ == b.buffer_) return true;
    if (a.buffer_ == nullptr || b.buffer_ == nullptr) return false;
    return *a.buffer_ == *b.buffer_;
  }

 private:
  explicit EncodedMessage(std::shared_ptr<const Bytes> buffer)
      : buffer_(std::move(buffer)) {}

  std::shared_ptr<const Bytes> buffer_;
};

}  // namespace bftbc
