#include "util/flags.h"

#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace bftbc {

FlagSet::Entry& FlagSet::add_entry(const std::string& name,
                                   const std::string& help) {
  Entry& e = entries_[name];
  e.help = help;
  return e;
}

FlagSet::Flag<std::int64_t>& FlagSet::add_int(const std::string& name,
                                              std::int64_t def,
                                              const std::string& help) {
  ints_.push_back(std::make_unique<Flag<std::int64_t>>(def));
  add_entry(name, help).as_int = ints_.back().get();
  return *ints_.back();
}

FlagSet::Flag<std::uint64_t>& FlagSet::add_u64(const std::string& name,
                                               std::uint64_t def,
                                               const std::string& help) {
  u64s_.push_back(std::make_unique<Flag<std::uint64_t>>(def));
  add_entry(name, help).as_u64 = u64s_.back().get();
  return *u64s_.back();
}

FlagSet::Flag<double>& FlagSet::add_double(const std::string& name, double def,
                                           const std::string& help) {
  doubles_.push_back(std::make_unique<Flag<double>>(def));
  add_entry(name, help).as_double = doubles_.back().get();
  return *doubles_.back();
}

FlagSet::Flag<bool>& FlagSet::add_bool(const std::string& name, bool def,
                                       const std::string& help) {
  bools_.push_back(std::make_unique<Flag<bool>>(def));
  add_entry(name, help).as_bool = bools_.back().get();
  return *bools_.back();
}

FlagSet::Flag<std::string>& FlagSet::add_string(const std::string& name,
                                                std::string def,
                                                const std::string& help) {
  strings_.push_back(std::make_unique<Flag<std::string>>(std::move(def)));
  add_entry(name, help).as_string = strings_.back().get();
  return *strings_.back();
}

bool FlagSet::Entry::set_value(const std::string& v) {
  try {
    if (as_int) {
      as_int->value_ = std::stoll(v);
    } else if (as_u64) {
      as_u64->value_ = std::stoull(v);
    } else if (as_double) {
      as_double->value_ = std::stod(v);
    } else if (as_bool) {
      if (v == "true" || v == "1") {
        as_bool->value_ = true;
      } else if (v == "false" || v == "0") {
        as_bool->value_ = false;
      } else {
        return false;
      }
    } else if (as_string) {
      as_string->value_ = v;
    }
  } catch (...) {
    return false;
  }
  return true;
}

std::string FlagSet::Entry::default_string() const {
  if (as_int) return std::to_string(as_int->value_);
  if (as_u64) return std::to_string(as_u64->value_);
  if (as_double) return std::to_string(as_double->value_);
  if (as_bool) return as_bool->value_ ? "true" : "false";
  if (as_string) return as_string->value_;
  return "";
}

std::string FlagSet::usage(const std::string& prog) const {
  std::ostringstream ss;
  ss << "usage: " << prog << " [flags]\n";
  for (const auto& [name, e] : entries_) {
    ss << "  --" << name << " (default " << e.default_string() << ")  "
       << e.help << "\n";
  }
  return ss.str();
}

void FlagSet::parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(usage(argv[0]).c_str(), stdout);
      std::exit(0);
    }
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    std::string name = arg.substr(2);
    std::string value;
    bool have_value = false;
    if (auto eq = name.find('='); eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
      have_value = true;
    }
    auto it = entries_.find(name);
    if (it == entries_.end()) {
      std::fprintf(stderr, "unknown flag --%s\n%s", name.c_str(),
                   usage(argv[0]).c_str());
      std::exit(2);
    }
    if (!have_value) {
      // Bare boolean flags may omit the value; others consume the next arg.
      if (it->second.as_bool && (i + 1 >= argc ||
                                 std::string(argv[i + 1]).rfind("--", 0) == 0)) {
        value = "true";
      } else if (i + 1 < argc) {
        value = argv[++i];
      } else {
        std::fprintf(stderr, "flag --%s needs a value\n", name.c_str());
        std::exit(2);
      }
    }
    if (!it->second.set_value(value)) {
      std::fprintf(stderr, "bad value for --%s: %s\n", name.c_str(),
                   value.c_str());
      std::exit(2);
    }
  }
}

}  // namespace bftbc
