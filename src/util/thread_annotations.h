// Clang thread-safety annotation macros (GUARDED_BY, REQUIRES, ...).
//
// The simulator core is single-threaded by design, but a handful of
// components are shared across real threads: the logger sink, the
// metrics registry's resolve/fold/merge surface, and the keystore's
// signature-verification cache. Those annotate their locking contracts
// with these macros so (a) the contract is machine-readable
// documentation, and (b) clang's -Wthread-safety analysis can enforce it
// when the tree is built with clang against an annotated mutex.
//
// On compilers without the attribute (gcc) every macro expands to
// nothing; the TSan preset (BFTBC_TSAN) is the dynamic complement that
// checks the same contracts on real interleavings.
#pragma once

#if defined(__clang__) && (!defined(SWIG))
#define BFTBC_THREAD_ANNOTATION_ATTRIBUTE__(x) __attribute__((x))
#else
#define BFTBC_THREAD_ANNOTATION_ATTRIBUTE__(x)  // no-op
#endif

#define BFTBC_CAPABILITY(x) \
  BFTBC_THREAD_ANNOTATION_ATTRIBUTE__(capability(x))

#define BFTBC_SCOPED_CAPABILITY \
  BFTBC_THREAD_ANNOTATION_ATTRIBUTE__(scoped_lockable)

#define BFTBC_GUARDED_BY(x) \
  BFTBC_THREAD_ANNOTATION_ATTRIBUTE__(guarded_by(x))

#define BFTBC_PT_GUARDED_BY(x) \
  BFTBC_THREAD_ANNOTATION_ATTRIBUTE__(pt_guarded_by(x))

#define BFTBC_ACQUIRED_BEFORE(...) \
  BFTBC_THREAD_ANNOTATION_ATTRIBUTE__(acquired_before(__VA_ARGS__))

#define BFTBC_ACQUIRED_AFTER(...) \
  BFTBC_THREAD_ANNOTATION_ATTRIBUTE__(acquired_after(__VA_ARGS__))

#define BFTBC_REQUIRES(...) \
  BFTBC_THREAD_ANNOTATION_ATTRIBUTE__(requires_capability(__VA_ARGS__))

#define BFTBC_REQUIRES_SHARED(...) \
  BFTBC_THREAD_ANNOTATION_ATTRIBUTE__(requires_shared_capability(__VA_ARGS__))

#define BFTBC_ACQUIRE(...) \
  BFTBC_THREAD_ANNOTATION_ATTRIBUTE__(acquire_capability(__VA_ARGS__))

#define BFTBC_RELEASE(...) \
  BFTBC_THREAD_ANNOTATION_ATTRIBUTE__(release_capability(__VA_ARGS__))

#define BFTBC_EXCLUDES(...) \
  BFTBC_THREAD_ANNOTATION_ATTRIBUTE__(locks_excluded(__VA_ARGS__))

#define BFTBC_RETURN_CAPABILITY(x) \
  BFTBC_THREAD_ANNOTATION_ATTRIBUTE__(lock_returned(x))

#define BFTBC_NO_THREAD_SAFETY_ANALYSIS \
  BFTBC_THREAD_ANNOTATION_ATTRIBUTE__(no_thread_safety_analysis)
