// Byzantine replica behaviors.
//
// Each class subclasses the correct replica and perturbs its behavior at
// the message layer. The protocol must tolerate up to f of these in any
// combination: tests pair them with the linearizability checker to show
// good clients never observe an inconsistency, and with liveness tests to
// show operations still complete.
//
// Behaviors:
//   SilentReplica      — receives everything, answers nothing (fail-stop
//                        that still occupies a slot).
//   StaleReplica       — never applies writes; answers reads/phase-1 with
//                        its (stale) state. Its replies are *correctly
//                        signed* — staleness is not detectable per-reply,
//                        only masked by the quorum.
//   GarbageSigReplica  — answers with corrupted signatures/authenticators;
//                        clients must reject and treat it as silent.
//   EquivocSignReplica — signs ANY prepare request it sees, even
//                        conflicting ones (ignores its Plist). This is
//                        the helper a Byzantine client needs for the
//                        equivocation attack; with only f such replicas
//                        the attack still fails.
//   FlipValueReplica   — returns a different value than its certificate
//                        vouches for in read replies (readers must detect
//                        the hash mismatch and reject).
#pragma once

#include "bftbc/replica.h"

namespace bftbc::faults {

using core::Replica;
using core::ReplicaOptions;

class SilentReplica final : public Replica {
 public:
  using Replica::Replica;

 protected:
  void on_envelope(sim::NodeId from, const rpc::Envelope& env) override {
    (void)from;
    (void)env;
    metrics_.inc("byz_swallowed");
  }
};

class StaleReplica final : public Replica {
 public:
  using Replica::Replica;

 protected:
  void on_envelope(sim::NodeId from, const rpc::Envelope& env) override {
    // Serve phase-1 and read requests from never-updated state; swallow
    // prepare/write so its state stays at genesis forever.
    switch (env.type) {
      case rpc::MsgType::kReadTs:
      case rpc::MsgType::kRead:
        Replica::on_envelope(from, env);
        break;
      default:
        metrics_.inc("byz_swallowed");
        break;
    }
  }
};

class GarbageSigReplica final : public Replica {
 public:
  using Replica::Replica;

 protected:
  // Let the correct implementation build replies, then corrupt the bytes
  // just before they leave the node.
  void reply(sim::NodeId to, rpc::MsgType type, std::uint64_t rpc_id,
             Bytes body, sim::Time processing_cost) override;
  void on_envelope(sim::NodeId from, const rpc::Envelope& env) override;

 private:
  bool corrupting_ = false;
};

class EquivocSignReplica final : public Replica {
 public:
  using Replica::Replica;

 protected:
  void on_envelope(sim::NodeId from, const rpc::Envelope& env) override;
};

class FlipValueReplica final : public Replica {
 public:
  using Replica::Replica;

 protected:
  void on_envelope(sim::NodeId from, const rpc::Envelope& env) override;
};

}  // namespace bftbc::faults
