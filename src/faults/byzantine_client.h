// Byzantine client attack drivers (the four attacks of §3.2).
//
// These actors speak the raw wire protocol — they are not built on
// core::Client, because a Byzantine client does not follow Figure 1.
// Each implements one attack:
//
//   EquivocatorClient  — tries to associate two different values with the
//                        same timestamp (attack 1): prepares (t, h(v1))
//                        at one subset of replicas and (t, h(v2)) at the
//                        rest. With <= f accomplice replicas it cannot
//                        gather both certificates.
//   PartialWriter      — completes prepare, then installs the write at
//                        exactly one replica (attack 2), leaving the
//                        system maximally skewed.
//   TimestampHog       — floods PREPAREs with enormous timestamps not
//                        justified by any certificate (attack 3).
//   LurkingWriteStasher— prepares writes but never performs them,
//                        handing the fully signed WRITE messages to a
//                        Colluder for replay after the client stops
//                        (attack 4). Also tries to stash MORE than the
//                        protocol's bound by preparing repeatedly.
//   Colluder           — a node (not an authorized client) that stores
//                        raw signed messages and replays them on demand.
//
// Attack outcomes are observable through each actor's counters and the
// history checker; the safety tests assert the protocol confines them.
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>

#include "bftbc/messages.h"
#include "rpc/quorum_call.h"
#include "rpc/transport.h"
#include "sim/simulator.h"
#include "util/rng.h"
#include "util/stats.h"

namespace bftbc::faults {

using core::ObjectId;
using core::PrepareCertificate;
using core::Timestamp;
using core::WriteCertificate;

// Shared plumbing: transport receive loop routing into QuorumCalls.
class AttackClientBase {
 public:
  AttackClientBase(const quorum::QuorumConfig& config, quorum::ClientId id,
                   crypto::Keystore& keystore, rpc::Transport& transport,
                   sim::Simulator& simulator,
                   std::vector<sim::NodeId> replica_nodes, Rng rng);
  virtual ~AttackClientBase() = default;

  quorum::ClientId id() const { return id_; }
  const Counters& metrics() const { return metrics_; }

  // Match the cluster's protocol mode: with MAC authenticators on,
  // attack requests carry them too (replicas would otherwise drop every
  // attack message as bad auth, making the attack vacuous instead of
  // confined by the protocol).
  void set_mac_auth(bool on) { mac_auth_ = on; }

 protected:
  // Request authentication per the mode: n-tag MAC authenticator or
  // signature. Empty on failure (e.g. revoked), like the sign path.
  Bytes request_auth(BytesView payload) const;

  // Phase-1 helper: fetch Pmax from a quorum (honest behavior — attacks
  // need a real certificate to anchor their mischief).
  void fetch_pmax(ObjectId object,
                  std::function<void(PrepareCertificate)> done);

  // Phase-2 helper: run PREPARE for (t, h) against `targets` and report
  // the signatures gathered (may be fewer than a quorum — the caller
  // decides what that means). Completes after `expected` acceptances or
  // `give_up_after` virtual time.
  void gather_prepares(ObjectId object, const Timestamp& t,
                       const crypto::Digest& h,
                       const PrepareCertificate& justification,
                       const std::optional<WriteCertificate>& wcert,
                       std::vector<sim::NodeId> targets,
                       std::uint32_t expected, sim::Time give_up_after,
                       std::function<void(quorum::SignatureSet)> done);

  rpc::Envelope make_request(rpc::MsgType type, Bytes body);
  core::PrepareRequest make_prepare(ObjectId object, const Timestamp& t,
                                    const crypto::Digest& h,
                                    const PrepareCertificate& justification,
                                    const std::optional<WriteCertificate>& w);
  core::WriteRequest make_write(ObjectId object, Bytes value,
                                const PrepareCertificate& pnew);

  void on_envelope(sim::NodeId from, const rpc::Envelope& env);

  quorum::QuorumConfig config_;
  quorum::ClientId id_;
  crypto::Keystore& keystore_;
  crypto::Signer signer_;
  rpc::Transport& transport_;
  sim::Simulator& sim_;
  std::vector<sim::NodeId> replica_nodes_;
  crypto::NonceGenerator nonces_;
  Counters metrics_;

  struct PendingCall {
    std::unique_ptr<rpc::QuorumCall> call;
  };
  std::map<std::uint64_t, PendingCall> calls_;  // keyed by rpc id
  std::vector<std::unique_ptr<rpc::QuorumCall>> retired_;
  std::uint64_t next_rpc_id_ = 0x0b5e55ed;
  bool mac_auth_ = false;
};

// ---------------------------------------------------------------------

class EquivocatorClient final : public AttackClientBase {
 public:
  using AttackClientBase::AttackClientBase;

  struct Outcome {
    bool cert_v1 = false;  // gathered a full certificate for (t, v1)
    bool cert_v2 = false;  // gathered a full certificate for (t, v2)
    // Writes installed wherever a certificate was obtained.
    bool wrote_v1 = false;
    bool wrote_v2 = false;
  };

  // Attempt to bind `v1` and `v2` to the same timestamp. Splits the
  // replica group in half for the two prepares; installs whatever
  // certificates it manages to assemble.
  void attack(ObjectId object, Bytes v1, Bytes v2,
              std::function<void(Outcome)> done);
};

class PartialWriter final : public AttackClientBase {
 public:
  using AttackClientBase::AttackClientBase;

  // Prepares (honestly) then sends the WRITE to exactly one replica.
  void attack(ObjectId object, Bytes value,
              std::function<void(bool prepared)> done);
};

class TimestampHog final : public AttackClientBase {
 public:
  using AttackClientBase::AttackClientBase;

  struct Outcome {
    std::uint64_t attempts = 0;
    std::uint64_t accepted = 0;  // prepare replies for the bogus ts
  };

  // Sends PREPAREs claiming timestamps `jump` ahead of the current one,
  // with no justifying certificate (or a stale one).
  void attack(ObjectId object, std::uint64_t jump, int attempts,
              std::function<void(Outcome)> done);
};

class Colluder;

class LurkingWriteStasher final : public AttackClientBase {
 public:
  using AttackClientBase::AttackClientBase;

  struct Outcome {
    // Fully signed WRITE envelopes the bad client managed to prepare but
    // did not perform — the lurking writes.
    std::vector<rpc::Envelope> stashed;
    // The prepare certificates backing them — the currency a colluding
    // CARTEL passes along: client i+1 justifies succ(t_i) with client
    // i's certificate even though the write never happened (§7.2's
    // motivating attack on the plain protocols).
    std::vector<PrepareCertificate> certs;
    std::uint64_t prepare_attempts = 0;
  };

  // Tries to stash up to `goal` distinct lurking writes by repeatedly
  // preparing successor timestamps without ever completing a write.
  // In the base protocol at most ONE prepare can gather a certificate
  // (Lemma 1 part 2); with `use_optlist` (optimized protocol) at most
  // two. The outcome reports what was actually achieved.
  void attack(ObjectId object, int goal, bool use_optlist,
              std::function<void(Outcome)> done);

  // Cartel step: skip phase 1 and justify the prepare with a certificate
  // handed over by another colluding client. `wcert` lets the cartel try
  // the same trick against the strong variant (it will fail there: the
  // certificate must cover the justification's exact timestamp, which
  // never committed). `goal` > 1 keeps chaining off each fresh
  // certificate with NO write certificate — honest replicas refuse
  // every round after the first, so deeper chains only materialize when
  // a full quorum of equivocating replicas signs anyway.
  void attack_chained(ObjectId object, PrepareCertificate justification,
                      std::optional<WriteCertificate> wcert, int goal,
                      std::function<void(Outcome)> done);

 private:
  void try_next(ObjectId object, int goal, bool use_optlist,
                PrepareCertificate justification,
                std::optional<WriteCertificate> wcert, int round,
                std::shared_ptr<Outcome> outcome,
                std::function<void(Outcome)> done);
  void try_optlist_stash(ObjectId object, int goal,
                         std::shared_ptr<Outcome> outcome,
                         std::function<void(Outcome)> done);
};

// A machine that is NOT an authorized client: it can only replay bytes
// given to it. This is the accomplice of §3.2 attack 4.
class Colluder {
 public:
  Colluder(rpc::Transport& transport, std::vector<sim::NodeId> replica_nodes)
      : transport_(transport), replica_nodes_(std::move(replica_nodes)) {}

  void stash(rpc::Envelope env) { stash_.push_back(std::move(env)); }
  std::size_t stashed() const { return stash_.size(); }

  // Broadcast every stashed message to all replicas (optionally several
  // times to beat message loss).
  void unleash(int repetitions = 3);

 private:
  rpc::Transport& transport_;
  std::vector<sim::NodeId> replica_nodes_;
  std::deque<rpc::Envelope> stash_;
};

}  // namespace bftbc::faults
