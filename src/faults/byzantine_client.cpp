#include "faults/byzantine_client.h"

#include <algorithm>

#include "quorum/statements.h"

namespace bftbc::faults {

AttackClientBase::AttackClientBase(const quorum::QuorumConfig& config,
                                   quorum::ClientId id,
                                   crypto::Keystore& keystore,
                                   rpc::Transport& transport,
                                   sim::Simulator& simulator,
                                   std::vector<sim::NodeId> replica_nodes,
                                   Rng rng)
    : config_(config),
      id_(id),
      keystore_(keystore),
      signer_(keystore.register_principal(quorum::client_principal(id))),
      transport_(transport),
      sim_(simulator),
      replica_nodes_(std::move(replica_nodes)),
      nonces_(id, rng) {
  transport_.set_receiver([this](sim::NodeId from, const rpc::Envelope& env) {
    on_envelope(from, env);
  });
}

void AttackClientBase::on_envelope(sim::NodeId from, const rpc::Envelope& env) {
  retired_.clear();
  auto it = calls_.find(env.rpc_id);
  if (it == calls_.end() || !it->second.call) return;
  it->second.call->on_reply(from, env);
}

Bytes AttackClientBase::request_auth(BytesView payload) const {
  if (mac_auth_) {
    std::vector<crypto::PrincipalId> peers;
    peers.reserve(config_.n);
    for (quorum::ReplicaId r = 0; r < config_.n; ++r) {
      peers.push_back(quorum::replica_principal(r));
    }
    auto tags = signer_.mac_authenticator(peers, payload);
    return tags.is_ok() ? std::move(tags).take() : Bytes{};
  }
  auto sig = signer_.sign(payload);
  return sig.is_ok() ? std::move(sig).take() : Bytes{};
}

rpc::Envelope AttackClientBase::make_request(rpc::MsgType type, Bytes body) {
  rpc::Envelope env;
  env.type = type;
  env.rpc_id = next_rpc_id_++;
  env.sender = quorum::client_principal(id_);
  env.body = std::move(body);
  return env;
}

core::PrepareRequest AttackClientBase::make_prepare(
    ObjectId object, const Timestamp& t, const crypto::Digest& h,
    const PrepareCertificate& justification,
    const std::optional<WriteCertificate>& w) {
  core::PrepareRequest req;
  req.object = object;
  req.t = t;
  req.hash = h;
  req.prep_cert = justification;
  req.write_cert = w;
  req.client = id_;
  req.sig = request_auth(req.signing_payload());
  return req;
}

core::WriteRequest AttackClientBase::make_write(ObjectId object, Bytes value,
                                                const PrepareCertificate& pnew) {
  core::WriteRequest req;
  req.object = object;
  req.value = std::move(value);
  req.prep_cert = pnew;
  req.client = id_;
  req.sig = request_auth(req.signing_payload());
  return req;
}

void AttackClientBase::fetch_pmax(
    ObjectId object, std::function<void(PrepareCertificate)> done) {
  core::ReadTsRequest req;
  req.object = object;
  req.nonce = nonces_.next();
  rpc::Envelope env = make_request(rpc::MsgType::kReadTs, req.encode());
  const std::uint64_t rpc_id = env.rpc_id;
  const crypto::Nonce nonce = req.nonce;

  auto pmax = std::make_shared<PrepareCertificate>(
      PrepareCertificate::genesis(object));

  // Give-up deadline: with crashed/partitioned/Byzantine replicas the
  // quorum may be unreachable for the whole run, and an attack stalled
  // in phase 1 burns the entire event budget doing nothing. Well past
  // any partition heal the attack proceeds with the best certificate
  // seen (possibly genesis); "pmax_unreachable" lets the explorer
  // classify the attack as starved rather than the run as hung.
  rpc::QuorumCallOptions qopts;
  qopts.deadline = 400 * sim::kMillisecond;

  auto finish = [this, rpc_id, pmax, done = std::move(done)](bool starved) {
    auto it = calls_.find(rpc_id);
    if (it != calls_.end()) {
      retired_.push_back(std::move(it->second.call));
      calls_.erase(it);
    }
    if (starved) metrics_.inc("pmax_unreachable");
    done(*pmax);
  };

  auto& slot = calls_[rpc_id];
  slot.call = std::make_unique<rpc::QuorumCall>(
      sim_, transport_, replica_nodes_, config_.q, std::move(env),
      [this, object, nonce, pmax](std::uint32_t idx, const rpc::Envelope& e) {
        if (e.type != rpc::MsgType::kReadTsReply) return false;
        auto m = core::ReadTsReply::decode(e.body);
        if (!m || m->object != object || m->nonce != nonce ||
            m->replica != idx) {
          return false;
        }
        if (m->pcert.object() != object ||
            !m->pcert.validate(config_, keystore_).is_ok()) {
          return false;
        }
        if (m->pcert.ts() > pmax->ts()) *pmax = m->pcert;
        return true;
      },
      [finish] { finish(false); }, [finish] { finish(true); }, qopts);
}

void AttackClientBase::gather_prepares(
    ObjectId object, const Timestamp& t, const crypto::Digest& h,
    const PrepareCertificate& justification,
    const std::optional<WriteCertificate>& wcert,
    std::vector<sim::NodeId> targets, std::uint32_t expected,
    sim::Time give_up_after, std::function<void(quorum::SignatureSet)> done) {
  core::PrepareRequest req = make_prepare(object, t, h, justification, wcert);
  rpc::Envelope env = make_request(rpc::MsgType::kPrepare, req.encode());
  const std::uint64_t rpc_id = env.rpc_id;

  auto sigs = std::make_shared<quorum::SignatureSet>();
  auto targets_copy = targets;

  auto finish = [this, rpc_id, sigs, done](bool) {
    auto it = calls_.find(rpc_id);
    if (it != calls_.end()) {
      retired_.push_back(std::move(it->second.call));
      calls_.erase(it);
    }
    done(*sigs);
  };

  rpc::QuorumCallOptions opts;
  opts.deadline = give_up_after;

  auto& slot = calls_[rpc_id];
  slot.call = std::make_unique<rpc::QuorumCall>(
      sim_, transport_, std::move(targets), expected, std::move(env),
      [this, object, t, h, sigs, targets_copy](std::uint32_t idx,
                                               const rpc::Envelope& e) {
        if (e.type != rpc::MsgType::kPrepareReply) return false;
        auto m = core::PrepareReply::decode(e.body);
        if (!m || m->object != object || m->t != t || m->hash != h)
          return false;
        // idx is an index into the target list, which may be a subset of
        // the replica group; recover the replica id from the node's
        // position in replica_nodes_, which both harnesses build in
        // replica-id order. (Node id != replica id in a sharded group.)
        const auto pos = std::find(replica_nodes_.begin(),
                                   replica_nodes_.end(), targets_copy[idx]);
        if (pos == replica_nodes_.end()) return false;
        const auto replica =
            static_cast<quorum::ReplicaId>(pos - replica_nodes_.begin());
        if (m->replica != replica) return false;
        const Bytes stmt = quorum::prepare_reply_statement(object, t, h);
        if (!keystore_.verify_cached(quorum::replica_principal(replica), stmt,
                              m->sig)) {
          return false;
        }
        (*sigs)[replica] = m->sig;
        return true;
      },
      [finish] { finish(true); }, [finish] { finish(false); }, opts);
}

// --------------------------------------------------------- Equivocator

void EquivocatorClient::attack(ObjectId object, Bytes v1, Bytes v2,
                               std::function<void(Outcome)> done) {
  fetch_pmax(object, [this, object, v1 = std::move(v1), v2 = std::move(v2),
                      done = std::move(done)](PrepareCertificate pmax) {
    const Timestamp t = pmax.ts().succ(id_);
    const crypto::Digest h1 = crypto::sha256(v1);
    const crypto::Digest h2 = crypto::sha256(v2);

    // Split the group: replica 0 (the hoped-for accomplice slot) is asked
    // to sign both; the rest are divided between the two values.
    std::vector<sim::NodeId> targets1, targets2;
    targets1.push_back(replica_nodes_[0]);
    targets2.push_back(replica_nodes_[0]);
    for (std::size_t i = 1; i < replica_nodes_.size(); ++i) {
      (i <= replica_nodes_.size() / 2 ? targets1 : targets2)
          .push_back(replica_nodes_[i]);
    }

    auto outcome = std::make_shared<Outcome>();
    auto pending = std::make_shared<int>(2);

    auto step = [this, object, t, v1, v2, h1, h2, outcome, pending,
                 done](int which, quorum::SignatureSet sigs) {
      const bool cert = sigs.size() >= config_.q;
      if (which == 1) outcome->cert_v1 = cert;
      if (which == 2) outcome->cert_v2 = cert;
      if (cert) {
        metrics_.inc("equivocation_cert");
        const crypto::Digest& h = which == 1 ? h1 : h2;
        const Bytes& v = which == 1 ? v1 : v2;
        PrepareCertificate pnew(object, t, h, sigs);
        core::WriteRequest w = make_write(object, v, pnew);
        rpc::Envelope env = make_request(rpc::MsgType::kWrite, w.encode());
        for (sim::NodeId n : replica_nodes_) transport_.send(n, env);
        if (which == 1) outcome->wrote_v1 = true;
        if (which == 2) outcome->wrote_v2 = true;
      }
      if (--*pending == 0) done(*outcome);
    };

    gather_prepares(object, t, h1, pmax, std::nullopt, targets1,
                    static_cast<std::uint32_t>(targets1.size()),
                    500 * sim::kMillisecond,
                    [step](quorum::SignatureSet s) { step(1, std::move(s)); });
    gather_prepares(object, t, h2, pmax, std::nullopt, targets2,
                    static_cast<std::uint32_t>(targets2.size()),
                    500 * sim::kMillisecond,
                    [step](quorum::SignatureSet s) { step(2, std::move(s)); });
  });
}

// --------------------------------------------------------- PartialWriter

void PartialWriter::attack(ObjectId object, Bytes value,
                           std::function<void(bool)> done) {
  fetch_pmax(object, [this, object, value = std::move(value),
                      done = std::move(done)](PrepareCertificate pmax) {
    const Timestamp t = pmax.ts().succ(id_);
    const crypto::Digest h = crypto::sha256(value);
    gather_prepares(
        object, t, h, pmax, std::nullopt, replica_nodes_, config_.q,
        2 * sim::kSecond,
        [this, object, t, h, value, done](quorum::SignatureSet sigs) {
          if (sigs.size() < config_.q) {
            done(false);
            return;
          }
          PrepareCertificate pnew(object, t, h, sigs);
          core::WriteRequest w = make_write(object, value, pnew);
          rpc::Envelope env = make_request(rpc::MsgType::kWrite, w.encode());
          // The whole point: install at exactly ONE replica.
          transport_.send(replica_nodes_[0], env);
          metrics_.inc("partial_write");
          done(true);
        });
  });
}

// --------------------------------------------------------- TimestampHog

void TimestampHog::attack(ObjectId object, std::uint64_t jump, int attempts,
                          std::function<void(Outcome)> done) {
  fetch_pmax(object, [this, object, jump, attempts,
                      done = std::move(done)](PrepareCertificate pmax) {
    auto outcome = std::make_shared<Outcome>();
    auto run = std::make_shared<std::function<void(int)>>();
    // The stored function holds only a weak self-reference; each pending
    // gather_prepares callback holds the strong one. A strong capture
    // here would be a shared_ptr cycle (run owns the lambda, the lambda
    // owns run) and leak the whole closure chain.
    *run = [this, object, jump, attempts, pmax, outcome,
            weak_run = std::weak_ptr<std::function<void(int)>>(run),
            done](int i) {
      if (i >= attempts) {
        done(*outcome);
        return;
      }
      // Timestamp far beyond anything justified — succ would be
      // pmax.val+1; this claims pmax.val + jump.
      const Timestamp bogus{pmax.ts().val + jump + i, id_};
      ++outcome->attempts;
      auto self = weak_run.lock();  // non-null: *self is executing
      gather_prepares(object, bogus, crypto::sha256(as_bytes_view("junk")),
                      pmax, std::nullopt, replica_nodes_, config_.q,
                      200 * sim::kMillisecond,
                      [outcome, self, i](quorum::SignatureSet sigs) {
                        outcome->accepted += sigs.size();
                        (*self)(i + 1);
                      });
    };
    (*run)(0);
  });
}

// --------------------------------------------------- LurkingWriteStasher

void LurkingWriteStasher::attack(ObjectId object, int goal, bool use_optlist,
                                 std::function<void(Outcome)> done) {
  auto outcome = std::make_shared<Outcome>();
  if (use_optlist) {
    // Optimized protocol: first grab an optlist slot (a certificate for
    // the predicted timestamp), then pivot to the normal list.
    try_optlist_stash(object, goal, outcome, std::move(done));
    return;
  }
  fetch_pmax(object, [this, object, goal, outcome,
                      done = std::move(done)](PrepareCertificate pmax) {
    try_next(object, goal, false, pmax, std::nullopt, 0, outcome, done);
  });
}

void LurkingWriteStasher::attack_chained(
    ObjectId object, PrepareCertificate justification,
    std::optional<WriteCertificate> wcert, int goal,
    std::function<void(Outcome)> done) {
  auto outcome = std::make_shared<Outcome>();
  try_next(object, goal, false, std::move(justification), std::move(wcert),
           0, outcome, std::move(done));
}

void LurkingWriteStasher::try_next(ObjectId object, int goal, bool use_optlist,
                                   PrepareCertificate justification,
                                   std::optional<WriteCertificate> wcert,
                                   int round, std::shared_ptr<Outcome> outcome,
                                   std::function<void(Outcome)> done) {
  if (static_cast<int>(outcome->stashed.size()) >= goal || round >= goal + 2) {
    done(*outcome);
    return;
  }
  const Timestamp t = justification.ts().succ(id_);
  const std::string marker =
      "lurk-" + std::to_string(id_) + "-" + std::to_string(round);
  const Bytes value = to_bytes(marker);
  const crypto::Digest h = crypto::sha256(value);
  ++outcome->prepare_attempts;

  gather_prepares(
      object, t, h, justification, wcert, replica_nodes_, config_.q,
      sim::kSecond,
      [this, object, goal, use_optlist, t, h, value, round, outcome,
       done](quorum::SignatureSet sigs) {
        if (sigs.size() >= config_.q) {
          PrepareCertificate pnew(object, t, h, sigs);
          core::WriteRequest w = make_write(object, value, pnew);
          outcome->stashed.push_back(
              make_request(rpc::MsgType::kWrite, w.encode()));
          outcome->certs.push_back(pnew);
          metrics_.inc("stashed_write");
          // Chain: use the fresh certificate to justify yet another
          // successor timestamp (correct replicas will refuse — the
          // Plist already holds this client's entry and no write
          // certificate can clear it).
          try_next(object, goal, use_optlist, pnew, std::nullopt, round + 1,
                   outcome, done);
        } else {
          // Correct replicas refused (Plist conflict, Lemma 1 part 2):
          // the stash cannot grow further.
          metrics_.inc("stash_refused");
          done(*outcome);
        }
      });
}

void LurkingWriteStasher::try_optlist_stash(
    ObjectId object, int goal, std::shared_ptr<Outcome> outcome,
    std::function<void(Outcome)> done) {
  // Step 1: READ-TS-PREP with a first hash — replicas that are current
  // will predict succ(pcert.ts, us) and sign (t', h_opt).
  const std::string opt_marker = "lurk-" + std::to_string(id_) + "-opt";
  const Bytes opt_value = to_bytes(opt_marker);
  const crypto::Digest h_opt = crypto::sha256(opt_value);

  core::ReadTsPrepRequest req;
  req.object = object;
  req.hash = h_opt;
  req.write_cert = std::nullopt;
  req.nonce = nonces_.next();
  req.client = id_;
  req.sig = request_auth(req.signing_payload());

  rpc::Envelope env = make_request(rpc::MsgType::kReadTsPrep, req.encode());
  const std::uint64_t rpc_id = env.rpc_id;
  const crypto::Nonce nonce = req.nonce;

  struct Harvest {
    std::map<std::pair<std::uint64_t, quorum::ClientId>, quorum::SignatureSet>
        by_ts;
    PrepareCertificate pmax;
  };
  auto harvest = std::make_shared<Harvest>();
  harvest->pmax = PrepareCertificate::genesis(object);

  rpc::QuorumCallOptions opts;
  opts.deadline = sim::kSecond;

  auto finish = [this, rpc_id, object, goal, h_opt, opt_value, outcome,
                 harvest, done](bool) {
    auto it = calls_.find(rpc_id);
    if (it != calls_.end()) {
      retired_.push_back(std::move(it->second.call));
      calls_.erase(it);
    }
    ++outcome->prepare_attempts;
    PrepareCertificate justification = harvest->pmax;
    for (const auto& [key, sigs] : harvest->by_ts) {
      if (sigs.size() >= config_.q) {
        const Timestamp t{key.first, key.second};
        PrepareCertificate pnew(object, t, h_opt, sigs);
        core::WriteRequest w = make_write(object, opt_value, pnew);
        outcome->stashed.push_back(
            make_request(rpc::MsgType::kWrite, w.encode()));
        outcome->certs.push_back(pnew);
        metrics_.inc("stashed_write");
        justification = pnew;
        break;
      }
    }
    // Step 2: pivot to the NORMAL prepare list, justified by whatever
    // certificate we hold (phase 2 ignores the optlist, so this succeeds
    // once more — the second lurking write of §6.3).
    try_next(object, goal, true, justification, std::nullopt, 1, outcome,
             done);
  };

  auto& slot = calls_[rpc_id];
  slot.call = std::make_unique<rpc::QuorumCall>(
      sim_, transport_, replica_nodes_, config_.q, std::move(env),
      [this, object, nonce, h_opt, harvest](std::uint32_t idx,
                                            const rpc::Envelope& e) {
        if (e.type != rpc::MsgType::kReadTsPrepReply) return false;
        auto m = core::ReadTsPrepReply::decode(e.body);
        if (!m || m->object != object || m->nonce != nonce ||
            m->replica != idx) {
          return false;
        }
        if (m->pcert.validate(config_, keystore_).is_ok() &&
            m->pcert.ts() > harvest->pmax.ts()) {
          harvest->pmax = m->pcert;
        }
        if (m->prepared && m->hash == h_opt) {
          const Bytes stmt =
              quorum::prepare_reply_statement(object, m->predicted_t, h_opt);
          if (keystore_.verify_cached(quorum::replica_principal(idx), stmt,
                               m->prepare_sig)) {
            harvest->by_ts[{m->predicted_t.val, m->predicted_t.id}][idx] =
                m->prepare_sig;
          }
        }
        return true;
      },
      [finish] { finish(true); }, [finish] { finish(false); }, opts);
}

// --------------------------------------------------------- Colluder

void Colluder::unleash(int repetitions) {
  for (int rep = 0; rep < repetitions; ++rep) {
    for (const rpc::Envelope& env : stash_) {
      for (sim::NodeId n : replica_nodes_) transport_.send(n, env);
    }
  }
}

}  // namespace bftbc::faults
