#include "faults/byzantine_replica.h"

namespace bftbc::faults {

// -------------------------------------------------------- GarbageSig

void GarbageSigReplica::reply(sim::NodeId to, rpc::MsgType type,
                              std::uint64_t rpc_id, Bytes body,
                              sim::Time processing_cost) {
  if (corrupting_ && !body.empty()) {
    // Flip a byte near the end, where signatures live in every reply
    // encoding; the statement content stays plausible but verification
    // fails.
    body[body.size() - 1] ^= 0x5a;
    if (body.size() > 8) body[body.size() - 8] ^= 0xa5;
    metrics_.inc("byz_corrupted_reply");
  }
  Replica::reply(to, type, rpc_id, std::move(body), processing_cost);
}

void GarbageSigReplica::on_envelope(sim::NodeId from,
                                    const rpc::Envelope& env) {
  corrupting_ = true;
  Replica::on_envelope(from, env);
  corrupting_ = false;
}

// -------------------------------------------------------- EquivocSign

void EquivocSignReplica::on_envelope(sim::NodeId from,
                                     const rpc::Envelope& env) {
  if (env.type == rpc::MsgType::kPrepare) {
    // Sign whatever the client asks, ignoring the prepare list — the
    // accomplice a Byzantine client needs to equivocate. Skips every
    // Figure 2 check.
    auto req = core::PrepareRequest::decode(env.body);
    if (!req.has_value()) return;
    sim::Time cost = 0;
    core::PrepareReply rep;
    rep.object = req->object;
    rep.t = req->t;
    rep.hash = req->hash;
    rep.replica = id_;
    rep.sig = sign_statement_foreground(
        quorum::prepare_reply_statement(req->object, req->t, req->hash), cost);
    metrics_.inc("byz_equivoc_sign");
    reply(from, rpc::MsgType::kPrepareReply, env.rpc_id, rep.encode(), cost);
    return;
  }
  Replica::on_envelope(from, env);
}

// -------------------------------------------------------- FlipValue

void FlipValueReplica::on_envelope(sim::NodeId from, const rpc::Envelope& env) {
  if (env.type == rpc::MsgType::kRead) {
    auto req = core::ReadRequest::decode(env.body);
    if (!req.has_value()) return;
    core::ObjectState& state = object(req->object);
    sim::Time cost = 0;

    core::ReadReply rep;
    rep.object = req->object;
    // Lie about the value while presenting the genuine certificate; a
    // correct reader detects h(value) != cert.h and rejects the reply.
    rep.value = to_bytes("BYZANTINE-GARBAGE");
    rep.pcert = state.pcert();
    rep.nonce = req->nonce;
    rep.replica = id_;
    rep.auth = p2p_auth(env.sender, rep.signing_payload(), cost);
    metrics_.inc("byz_flipped_value");
    reply(from, rpc::MsgType::kReadReply, env.rpc_id, rep.encode(), cost);
    return;
  }
  Replica::on_envelope(from, env);
}

}  // namespace bftbc::faults
