// SBQ-L baseline — the Martin et al. "Minimal Byzantine Storage" style
// protocol the paper analyzes at length in §8:
//
//   "They require a quorum of 2f+1 identical replies for read operations
//    to succeed, which is difficult to ensure in an asynchronous system.
//    Their solution is to assume a reliable asynchronous network model,
//    where each message is delivered to all correct replicas. This means
//    that infinite retransmission buffers are needed ... the failure of a
//    single replica (which might just have crashed) causes all messages
//    from that point on to be remembered and retransmitted. In this
//    protocol concurrent writers can slow down readers."
//
// This implementation makes those costs measurable:
//   - replicas forward every accepted write to every peer over a
//     RELIABLE link (retransmit-until-ack); `outbox_bytes()` exposes the
//     buffer a crashed peer makes grow without bound
//   - reads demand 2f+1 IDENTICAL (ts, value) replies and RE-QUERY in
//     rounds until they get them; `read_rounds` shows concurrent writers
//     slowing readers (contrast: BFT-BC reads are 1–2 phases always)
//
// Like BFT-BC it uses only 3f+1 replicas; client writes are 2 phases.
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>

#include "crypto/nonce.h"
#include "crypto/sha256.h"
#include "quorum/config.h"
#include "quorum/statements.h"
#include "rpc/quorum_call.h"
#include "rpc/transport.h"
#include "sim/simulator.h"
#include "util/rng.h"
#include "util/stats.h"

namespace bftbc::baselines {

using quorum::ClientId;
using quorum::ObjectId;
using quorum::ReplicaId;
using quorum::Timestamp;

class SbqlReplica {
 public:
  SbqlReplica(const quorum::QuorumConfig& config, ReplicaId id,
              crypto::Keystore& keystore, rpc::Transport& transport,
              sim::Simulator& simulator, std::vector<sim::NodeId> peer_nodes,
              sim::Time retransmit_period = 20 * sim::kMillisecond);
  ~SbqlReplica();

  ReplicaId id() const { return id_; }
  const Counters& metrics() const { return metrics_; }

  struct Stored {
    Bytes value;
    Timestamp ts;
  };
  const Stored* stored(ObjectId object) const;

  // Total bytes waiting in reliable-delivery outboxes — the unbounded
  // buffer §8 criticizes. Grows forever while any peer is unreachable.
  std::size_t outbox_bytes() const;
  std::size_t outbox_messages() const;

 private:
  void on_envelope(sim::NodeId from, const rpc::Envelope& env);
  void apply(ObjectId object, const Timestamp& ts, const Bytes& value);
  // Reliable forward: enqueue for every peer; retransmit until acked.
  void forward_reliably(ObjectId object, const Timestamp& ts,
                        const Bytes& value);
  void flush_outboxes();

  quorum::QuorumConfig config_;
  ReplicaId id_;
  crypto::Keystore& keystore_;
  crypto::Signer signer_;
  rpc::Transport& transport_;
  sim::Simulator& sim_;
  std::vector<sim::NodeId> peer_nodes_;
  sim::Time retransmit_period_;
  sim::TimerId flush_timer_ = 0;

  struct PendingForward {
    std::uint64_t seq;
    Bytes payload;  // encoded envelope body
  };
  std::map<ObjectId, Stored> objects_;
  std::map<sim::NodeId, std::deque<PendingForward>> outbox_;
  std::uint64_t next_seq_ = 1;
  Counters metrics_;
};

struct SbqlClientOptions {
  rpc::QuorumCallOptions rpc;
  // Delay between read rounds when identical replies were not achieved.
  sim::Time reread_delay = 5 * sim::kMillisecond;
  int max_read_rounds = 100;
};

class SbqlClient {
 public:
  SbqlClient(const quorum::QuorumConfig& config, quorum::ClientId id,
             crypto::Keystore& keystore, rpc::Transport& transport,
             sim::Simulator& simulator, std::vector<sim::NodeId> replica_nodes,
             Rng rng, SbqlClientOptions options = SbqlClientOptions());
  ~SbqlClient();

  quorum::ClientId id() const { return id_; }

  struct WriteResult {
    Timestamp ts;
    int phases = 0;
  };
  using WriteCallback = std::function<void(Result<WriteResult>)>;
  void write(ObjectId object, Bytes value, WriteCallback cb);

  struct ReadResult {
    Bytes value;
    Timestamp ts;
    int rounds = 0;  // query rounds until 2f+1 identical replies
  };
  using ReadCallback = std::function<void(Result<ReadResult>)>;
  void read(ObjectId object, ReadCallback cb);

  const Counters& metrics() const { return metrics_; }

 private:
  struct Op;
  void start_read_round(std::uint64_t op_id);
  void on_envelope(sim::NodeId from, const rpc::Envelope& env);
  rpc::Envelope make_request(rpc::MsgType type, Bytes body);

  quorum::QuorumConfig config_;
  quorum::ClientId id_;
  crypto::Keystore& keystore_;
  crypto::Signer signer_;
  rpc::Transport& transport_;
  sim::Simulator& sim_;
  std::vector<sim::NodeId> replica_nodes_;
  crypto::NonceGenerator nonces_;
  SbqlClientOptions options_;

  std::map<std::uint64_t, std::unique_ptr<Op>> ops_;
  std::vector<std::unique_ptr<rpc::QuorumCall>> retired_;
  std::uint64_t next_op_id_ = 1;
  std::uint64_t next_rpc_id_ = 1;
  Counters metrics_;
};

}  // namespace bftbc::baselines
