// Classic BQS baseline: the original Malkhi–Reiter Byzantine quorum
// register (paper §3.1 / [9]), WITHOUT Byzantine-client defenses, plus
// the Phalanx write-back extension for read atomicity [10].
//
//   - 3f+1 replicas, quorums of 2f+1
//   - writes: 2 phases (READ-TS to learn the highest timestamp, then
//     WRITE carrying 〈value, ts〉 signed by the client)
//   - reads: 1 phase (+ optional write-back), returning the highest
//     correctly-signed 〈value, ts〉
//
// Known weaknesses this repo uses it to demonstrate (bench E10):
//   - a Byzantine client can sign two different values for one timestamp
//     and split the replicas (readers diverge)
//   - a Byzantine client can jump the timestamp space arbitrarily
//   - nothing bounds lurking writes
// Its virtue is cost: one fewer phase per write than BFT-BC.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>

#include "crypto/nonce.h"
#include "crypto/sha256.h"
#include "quorum/config.h"
#include "quorum/statements.h"
#include "rpc/quorum_call.h"
#include "rpc/transport.h"
#include "sim/simulator.h"
#include "util/rng.h"
#include "util/stats.h"

namespace bftbc::baselines {

using quorum::ClientId;
using quorum::ObjectId;
using quorum::ReplicaId;
using quorum::Timestamp;

// The signed unit of BQS state: 〈object, ts, h(value)〉σ_client.
Bytes bqs_value_statement(ObjectId object, const Timestamp& ts,
                          const crypto::Digest& value_hash);

struct BqsEntry {
  Bytes value;
  Timestamp ts;
  ClientId writer = 0;
  Bytes writer_sig;  // over bqs_value_statement

  [[nodiscard]] bool verify(ObjectId object, const crypto::Keystore& ks) const;
};

class BqsReplica {
 public:
  BqsReplica(const quorum::QuorumConfig& config, ReplicaId id,
             crypto::Keystore& keystore, rpc::Transport& transport);

  ReplicaId id() const { return id_; }
  const BqsEntry* find_object(ObjectId object) const;
  const Counters& metrics() const { return metrics_; }

 private:
  void on_envelope(sim::NodeId from, const rpc::Envelope& env);

  quorum::QuorumConfig config_;
  ReplicaId id_;
  crypto::Keystore& keystore_;
  crypto::Signer signer_;
  rpc::Transport& transport_;
  std::map<ObjectId, BqsEntry> objects_;
  Counters metrics_;
};

struct BqsClientOptions {
  bool write_back_reads = true;  // Phalanx-style atomicity extension
  rpc::QuorumCallOptions rpc;
  sim::Time op_deadline = 0;
};

class BqsClient {
 public:
  BqsClient(const quorum::QuorumConfig& config, ClientId id,
            crypto::Keystore& keystore, rpc::Transport& transport,
            sim::Simulator& simulator, std::vector<sim::NodeId> replica_nodes,
            Rng rng, BqsClientOptions options = BqsClientOptions());

  ~BqsClient();

  ClientId id() const { return id_; }

  struct WriteResult {
    Timestamp ts;
    int phases = 0;
  };
  using WriteCallback = std::function<void(Result<WriteResult>)>;
  void write(ObjectId object, Bytes value, WriteCallback cb);

  struct ReadResult {
    Bytes value;
    Timestamp ts;
    int phases = 0;
  };
  using ReadCallback = std::function<void(Result<ReadResult>)>;
  void read(ObjectId object, ReadCallback cb);

  const Counters& metrics() const { return metrics_; }

 private:
  struct Op;
  void on_envelope(sim::NodeId from, const rpc::Envelope& env);
  rpc::Envelope make_request(rpc::MsgType type, Bytes body);

  quorum::QuorumConfig config_;
  ClientId id_;
  crypto::Keystore& keystore_;
  crypto::Signer signer_;
  rpc::Transport& transport_;
  sim::Simulator& sim_;
  std::vector<sim::NodeId> replica_nodes_;
  crypto::NonceGenerator nonces_;
  BqsClientOptions options_;

  std::map<std::uint64_t, std::unique_ptr<Op>> ops_;
  std::vector<std::unique_ptr<rpc::QuorumCall>> retired_;
  std::uint64_t next_op_id_ = 1;
  std::uint64_t next_rpc_id_ = 1;
  Counters metrics_;
};

// A Byzantine BQS client demonstrating the equivocation hole: signs two
// different values with the SAME timestamp and sends each to half the
// replicas. Succeeds (splits the replica state) because BQS replicas
// cannot tell — there is no prepare round.
class BqsEquivocator {
 public:
  BqsEquivocator(const quorum::QuorumConfig& config, ClientId id,
                 crypto::Keystore& keystore, rpc::Transport& transport,
                 sim::Simulator& simulator,
                 std::vector<sim::NodeId> replica_nodes, Rng rng);

  // Fetch the max ts, then split-brain the replicas at ts+1.
  void attack(ObjectId object, Bytes v1, Bytes v2,
              std::function<void()> done);

 private:
  void on_envelope(sim::NodeId from, const rpc::Envelope& env);

  quorum::QuorumConfig config_;
  ClientId id_;
  crypto::Keystore& keystore_;
  crypto::Signer signer_;
  rpc::Transport& transport_;
  sim::Simulator& sim_;
  std::vector<sim::NodeId> replica_nodes_;
  crypto::NonceGenerator nonces_;
  std::unique_ptr<rpc::QuorumCall> call_;
  std::vector<std::unique_ptr<rpc::QuorumCall>> retired_;
  std::uint64_t next_rpc_id_ = 0xbad;
};

}  // namespace bftbc::baselines
