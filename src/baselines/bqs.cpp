#include "baselines/bqs.h"

#include "util/codec.h"

namespace bftbc::baselines {

Bytes bqs_value_statement(ObjectId object, const Timestamp& ts,
                          const crypto::Digest& value_hash) {
  Writer w;
  w.put_u8(0x20);  // domain tag distinct from BFT-BC statements
  w.put_u64(object);
  ts.encode(w);
  w.put_raw(crypto::digest_view(value_hash));
  return std::move(w).take();
}

bool BqsEntry::verify(ObjectId object, const crypto::Keystore& ks) const {
  if (ts.is_zero()) return value.empty() && writer_sig.empty();  // genesis
  const Bytes stmt = bqs_value_statement(object, ts, crypto::sha256(value));
  return ks.verify_cached(quorum::client_principal(writer), stmt, writer_sig);
}

namespace {

// Wire formats (local to the BQS baseline).

struct BqsReadTsReq {
  ObjectId object = 0;
  crypto::Nonce nonce;
  Bytes encode() const {
    Writer w;
    w.put_u64(object);
    nonce.encode(w);
    return std::move(w).take();
  }
  static std::optional<BqsReadTsReq> decode(BytesView b) {
    Reader r(b);
    BqsReadTsReq m;
    m.object = r.get_u64();
    m.nonce = crypto::Nonce::decode(r);
    if (!r.done()) return std::nullopt;
    return m;
  }
};

struct BqsReadTsRep {
  ObjectId object = 0;
  crypto::Nonce nonce;
  Timestamp ts;
  ReplicaId replica = 0;
  Bytes auth;
  Bytes signing_payload() const {
    Writer w;
    w.put_u8(0x21);
    w.put_u64(object);
    nonce.encode(w);
    ts.encode(w);
    return std::move(w).take();
  }
  Bytes encode() const {
    Writer w;
    w.put_u64(object);
    nonce.encode(w);
    ts.encode(w);
    w.put_u32(replica);
    w.put_bytes(auth);
    return std::move(w).take();
  }
  static std::optional<BqsReadTsRep> decode(BytesView b) {
    Reader r(b);
    BqsReadTsRep m;
    m.object = r.get_u64();
    m.nonce = crypto::Nonce::decode(r);
    m.ts = Timestamp::decode(r);
    m.replica = r.get_u32();
    m.auth = r.get_bytes();
    if (!r.done()) return std::nullopt;
    return m;
  }
};

struct BqsWriteReq {
  ObjectId object = 0;
  Bytes value;
  Timestamp ts;
  ClientId client = 0;
  Bytes sig;  // over bqs_value_statement
  Bytes encode() const {
    Writer w;
    w.put_u64(object);
    w.put_bytes(value);
    ts.encode(w);
    w.put_u32(client);
    w.put_bytes(sig);
    return std::move(w).take();
  }
  static std::optional<BqsWriteReq> decode(BytesView b) {
    Reader r(b);
    BqsWriteReq m;
    m.object = r.get_u64();
    m.value = r.get_bytes();
    m.ts = Timestamp::decode(r);
    m.client = r.get_u32();
    m.sig = r.get_bytes();
    if (!r.done()) return std::nullopt;
    return m;
  }
};

struct BqsWriteRep {
  ObjectId object = 0;
  Timestamp ts;
  ReplicaId replica = 0;
  Bytes auth;
  Bytes signing_payload() const {
    Writer w;
    w.put_u8(0x22);
    w.put_u64(object);
    ts.encode(w);
    return std::move(w).take();
  }
  Bytes encode() const {
    Writer w;
    w.put_u64(object);
    ts.encode(w);
    w.put_u32(replica);
    w.put_bytes(auth);
    return std::move(w).take();
  }
  static std::optional<BqsWriteRep> decode(BytesView b) {
    Reader r(b);
    BqsWriteRep m;
    m.object = r.get_u64();
    m.ts = Timestamp::decode(r);
    m.replica = r.get_u32();
    m.auth = r.get_bytes();
    if (!r.done()) return std::nullopt;
    return m;
  }
};

struct BqsReadReq {
  ObjectId object = 0;
  crypto::Nonce nonce;
  Bytes encode() const {
    Writer w;
    w.put_u64(object);
    nonce.encode(w);
    return std::move(w).take();
  }
  static std::optional<BqsReadReq> decode(BytesView b) {
    Reader r(b);
    BqsReadReq m;
    m.object = r.get_u64();
    m.nonce = crypto::Nonce::decode(r);
    if (!r.done()) return std::nullopt;
    return m;
  }
};

struct BqsReadRep {
  ObjectId object = 0;
  crypto::Nonce nonce;
  BqsEntry entry;
  ReplicaId replica = 0;
  Bytes auth;
  Bytes signing_payload() const {
    Writer w;
    w.put_u8(0x23);
    w.put_u64(object);
    nonce.encode(w);
    entry.ts.encode(w);
    w.put_raw(crypto::digest_view(crypto::sha256(entry.value)));
    return std::move(w).take();
  }
  Bytes encode() const {
    Writer w;
    w.put_u64(object);
    nonce.encode(w);
    w.put_bytes(entry.value);
    entry.ts.encode(w);
    w.put_u32(entry.writer);
    w.put_bytes(entry.writer_sig);
    w.put_u32(replica);
    w.put_bytes(auth);
    return std::move(w).take();
  }
  static std::optional<BqsReadRep> decode(BytesView b) {
    Reader r(b);
    BqsReadRep m;
    m.object = r.get_u64();
    m.nonce = crypto::Nonce::decode(r);
    m.entry.value = r.get_bytes();
    m.entry.ts = Timestamp::decode(r);
    m.entry.writer = r.get_u32();
    m.entry.writer_sig = r.get_bytes();
    m.replica = r.get_u32();
    m.auth = r.get_bytes();
    if (!r.done()) return std::nullopt;
    return m;
  }
};

}  // namespace

// ------------------------------------------------------------ replica

BqsReplica::BqsReplica(const quorum::QuorumConfig& config, ReplicaId id,
                       crypto::Keystore& keystore, rpc::Transport& transport)
    : config_(config),
      id_(id),
      keystore_(keystore),
      signer_(keystore.register_principal(quorum::replica_principal(id))),
      transport_(transport) {
  transport_.set_receiver([this](sim::NodeId from, const rpc::Envelope& env) {
    on_envelope(from, env);
  });
}

const BqsEntry* BqsReplica::find_object(ObjectId object) const {
  auto it = objects_.find(object);
  return it == objects_.end() ? nullptr : &it->second;
}

void BqsReplica::on_envelope(sim::NodeId from, const rpc::Envelope& env) {
  auto send = [&](rpc::MsgType type, Bytes body) {
    rpc::Envelope out;
    out.type = type;
    out.rpc_id = env.rpc_id;
    out.sender = quorum::replica_principal(id_);
    out.body = std::move(body);
    transport_.send(from, out);
  };

  switch (env.type) {
    case rpc::MsgType::kBqsReadTs: {
      auto req = BqsReadTsReq::decode(env.body);
      if (!req) return;
      BqsReadTsRep rep;
      rep.object = req->object;
      rep.nonce = req->nonce;
      rep.ts = objects_[req->object].ts;
      rep.replica = id_;
      auto sig = signer_.sign(rep.signing_payload());
      rep.auth = sig.is_ok() ? std::move(sig).take() : Bytes{};
      metrics_.inc("reply_read_ts");
      send(rpc::MsgType::kBqsReadTsReply, rep.encode());
      break;
    }
    case rpc::MsgType::kBqsWrite: {
      auto req = BqsWriteReq::decode(env.body);
      if (!req) return;
      // The ONLY write check in classic BQS: the client is authorized
      // (its signature over 〈value, ts〉 verifies) and ts is newer.
      const Bytes stmt = bqs_value_statement(req->object, req->ts,
                                             crypto::sha256(req->value));
      if (quorum::is_replica_principal(req->client) ||
          !keystore_.verify_cached(quorum::client_principal(req->client), stmt,
                            req->sig)) {
        metrics_.inc("drop_bad_auth");
        return;
      }
      BqsEntry& entry = objects_[req->object];
      if (req->ts > entry.ts) {
        entry.value = req->value;
        entry.ts = req->ts;
        entry.writer = req->client;
        entry.writer_sig = req->sig;
        metrics_.inc("state_overwritten");
      }
      BqsWriteRep rep;
      rep.object = req->object;
      rep.ts = req->ts;
      rep.replica = id_;
      auto sig = signer_.sign(rep.signing_payload());
      rep.auth = sig.is_ok() ? std::move(sig).take() : Bytes{};
      metrics_.inc("reply_write");
      send(rpc::MsgType::kBqsWriteReply, rep.encode());
      break;
    }
    case rpc::MsgType::kBqsRead: {
      auto req = BqsReadReq::decode(env.body);
      if (!req) return;
      BqsReadRep rep;
      rep.object = req->object;
      rep.nonce = req->nonce;
      rep.entry = objects_[req->object];
      rep.replica = id_;
      auto sig = signer_.sign(rep.signing_payload());
      rep.auth = sig.is_ok() ? std::move(sig).take() : Bytes{};
      metrics_.inc("reply_read");
      send(rpc::MsgType::kBqsReadReply, rep.encode());
      break;
    }
    default:
      // The shared MsgType enum spans every protocol family; a BQS
      // replica ignores the BFT-BC / SBQL / Phalanx types by design.
      break;
  }
}

// ------------------------------------------------------------ client

struct BqsClient::Op {
  std::uint64_t op_id = 0;
  ObjectId object = 0;
  int phases = 0;
  bool is_write = false;
  Bytes value;
  crypto::Nonce nonce;
  Timestamp max_ts;
  // read harvest
  bool any = false;
  BqsEntry best;
  std::set<std::pair<std::uint64_t, ClientId>> versions;
  WriteCallback wcb;
  ReadCallback rcb;
  std::unique_ptr<rpc::QuorumCall> call;
  sim::TimerId deadline_timer = 0;
};

BqsClient::BqsClient(const quorum::QuorumConfig& config, ClientId id,
                     crypto::Keystore& keystore, rpc::Transport& transport,
                     sim::Simulator& simulator,
                     std::vector<sim::NodeId> replica_nodes, Rng rng,
                     BqsClientOptions options)
    : config_(config),
      id_(id),
      keystore_(keystore),
      signer_(keystore.register_principal(quorum::client_principal(id))),
      transport_(transport),
      sim_(simulator),
      replica_nodes_(std::move(replica_nodes)),
      nonces_(id, rng),
      options_(options) {
  transport_.set_receiver([this](sim::NodeId from, const rpc::Envelope& env) {
    on_envelope(from, env);
  });
}

BqsClient::~BqsClient() = default;

rpc::Envelope BqsClient::make_request(rpc::MsgType type, Bytes body) {
  rpc::Envelope env;
  env.type = type;
  env.rpc_id = next_rpc_id_++;
  env.sender = quorum::client_principal(id_);
  env.body = std::move(body);
  return env;
}

void BqsClient::on_envelope(sim::NodeId from, const rpc::Envelope& env) {
  retired_.clear();
  for (auto& [op_id, op] : ops_) {
    if (op->call && op->call->on_reply(from, env)) return;
  }
}

void BqsClient::write(ObjectId object, Bytes value, WriteCallback cb) {
  auto owned = std::make_unique<Op>();
  Op& op = *owned;
  op.op_id = next_op_id_++;
  op.object = object;
  op.is_write = true;
  op.value = std::move(value);
  op.wcb = std::move(cb);
  op.nonce = nonces_.next();
  ops_[op.op_id] = std::move(owned);
  metrics_.inc("writes");

  BqsReadTsReq req;
  req.object = object;
  req.nonce = op.nonce;
  const std::uint64_t op_id = op.op_id;
  ++op.phases;
  op.call = std::make_unique<rpc::QuorumCall>(
      sim_, transport_, replica_nodes_, config_.q,
      make_request(rpc::MsgType::kBqsReadTs, req.encode()),
      [this, op_id](std::uint32_t idx, const rpc::Envelope& e) {
        auto it = ops_.find(op_id);
        if (it == ops_.end() || e.type != rpc::MsgType::kBqsReadTsReply)
          return false;
        Op& op = *it->second;
        auto m = BqsReadTsRep::decode(e.body);
        if (!m || m->object != op.object || m->nonce != op.nonce ||
            m->replica != idx) {
          return false;
        }
        if (!keystore_.verify_cached(quorum::replica_principal(idx),
                              m->signing_payload(), m->auth)) {
          return false;
        }
        if (m->ts > op.max_ts) op.max_ts = m->ts;
        return true;
      },
      [this, op_id] {
        auto it = ops_.find(op_id);
        if (it == ops_.end()) return;
        Op& op = *it->second;
        // Phase 2: write 〈value, succ(max_ts)〉 signed by us.
        const Timestamp t = op.max_ts.succ(id_);
        BqsWriteReq req;
        req.object = op.object;
        req.value = op.value;
        req.ts = t;
        req.client = id_;
        auto sig = signer_.sign(
            bqs_value_statement(op.object, t, crypto::sha256(op.value)));
        if (!sig.is_ok()) {
          WriteCallback cb = std::move(op.wcb);
          retired_.push_back(std::move(op.call));
          ops_.erase(op_id);
          if (cb) cb(Result<WriteResult>(sig.status()));
          return;
        }
        req.sig = std::move(sig).take();
        ++op.phases;
        retired_.push_back(std::move(op.call));
        op.call = std::make_unique<rpc::QuorumCall>(
            sim_, transport_, replica_nodes_, config_.q,
            make_request(rpc::MsgType::kBqsWrite, req.encode()),
            [this, op_id, t](std::uint32_t idx, const rpc::Envelope& e) {
              auto it = ops_.find(op_id);
              if (it == ops_.end() || e.type != rpc::MsgType::kBqsWriteReply)
                return false;
              Op& op = *it->second;
              auto m = BqsWriteRep::decode(e.body);
              if (!m || m->object != op.object || m->ts != t ||
                  m->replica != idx) {
                return false;
              }
              return keystore_.verify_cached(quorum::replica_principal(idx),
                                      m->signing_payload(), m->auth);
            },
            [this, op_id, t] {
              auto it = ops_.find(op_id);
              if (it == ops_.end()) return;
              Op& op = *it->second;
              metrics_.inc("write_phases",
                           static_cast<std::uint64_t>(op.phases));
              WriteResult result{t, op.phases};
              WriteCallback cb = std::move(op.wcb);
              retired_.push_back(std::move(op.call));
              ops_.erase(op_id);
              if (cb) cb(Result<WriteResult>(result));
            },
            nullptr, options_.rpc);
      },
      nullptr, options_.rpc);
}

void BqsClient::read(ObjectId object, ReadCallback cb) {
  auto owned = std::make_unique<Op>();
  Op& op = *owned;
  op.op_id = next_op_id_++;
  op.object = object;
  op.rcb = std::move(cb);
  op.nonce = nonces_.next();
  ops_[op.op_id] = std::move(owned);
  metrics_.inc("reads");

  BqsReadReq req;
  req.object = object;
  req.nonce = op.nonce;
  const std::uint64_t op_id = op.op_id;
  ++op.phases;
  op.call = std::make_unique<rpc::QuorumCall>(
      sim_, transport_, replica_nodes_, config_.q,
      make_request(rpc::MsgType::kBqsRead, req.encode()),
      [this, op_id](std::uint32_t idx, const rpc::Envelope& e) {
        auto it = ops_.find(op_id);
        if (it == ops_.end() || e.type != rpc::MsgType::kBqsReadReply)
          return false;
        Op& op = *it->second;
        auto m = BqsReadRep::decode(e.body);
        if (!m || m->object != op.object || m->nonce != op.nonce ||
            m->replica != idx) {
          return false;
        }
        if (!keystore_.verify_cached(quorum::replica_principal(idx),
                              m->signing_payload(), m->auth)) {
          return false;
        }
        // Value must carry a valid writer signature (or be genesis).
        if (!m->entry.verify(op.object, keystore_)) return false;
        op.versions.insert({m->entry.ts.val, m->entry.ts.id});
        if (!op.any || m->entry.ts > op.best.ts) {
          op.any = true;
          op.best = m->entry;
        }
        return true;
      },
      [this, op_id] {
        auto it = ops_.find(op_id);
        if (it == ops_.end()) return;
        Op& op = *it->second;
        if (!options_.write_back_reads || op.versions.size() <= 1) {
          metrics_.inc("read_phases", static_cast<std::uint64_t>(op.phases));
          ReadResult result{op.best.value, op.best.ts, op.phases};
          ReadCallback cb = std::move(op.rcb);
          retired_.push_back(std::move(op.call));
          ops_.erase(op_id);
          if (cb) cb(Result<ReadResult>(std::move(result)));
          return;
        }
        // Write-back phase (Phalanx extension): replay the winning entry
        // with its ORIGINAL writer signature.
        BqsWriteReq wreq;
        wreq.object = op.object;
        wreq.value = op.best.value;
        wreq.ts = op.best.ts;
        wreq.client = op.best.writer;
        wreq.sig = op.best.writer_sig;
        const Timestamp t = op.best.ts;
        ++op.phases;
        retired_.push_back(std::move(op.call));
        op.call = std::make_unique<rpc::QuorumCall>(
            sim_, transport_, replica_nodes_, config_.q,
            make_request(rpc::MsgType::kBqsWrite, wreq.encode()),
            [this, op_id, t](std::uint32_t idx, const rpc::Envelope& e) {
              auto it = ops_.find(op_id);
              if (it == ops_.end() || e.type != rpc::MsgType::kBqsWriteReply)
                return false;
              auto m = BqsWriteRep::decode(e.body);
              if (!m || m->ts != t || m->replica != idx) return false;
              return keystore_.verify_cached(quorum::replica_principal(idx),
                                      m->signing_payload(), m->auth);
            },
            [this, op_id] {
              auto it = ops_.find(op_id);
              if (it == ops_.end()) return;
              Op& op = *it->second;
              metrics_.inc("read_phases",
                           static_cast<std::uint64_t>(op.phases));
              ReadResult result{op.best.value, op.best.ts, op.phases};
              ReadCallback cb = std::move(op.rcb);
              retired_.push_back(std::move(op.call));
              ops_.erase(op_id);
              if (cb) cb(Result<ReadResult>(std::move(result)));
            },
            nullptr, options_.rpc);
      },
      nullptr, options_.rpc);
}

// ------------------------------------------------------------ attacker

BqsEquivocator::BqsEquivocator(const quorum::QuorumConfig& config, ClientId id,
                               crypto::Keystore& keystore,
                               rpc::Transport& transport,
                               sim::Simulator& simulator,
                               std::vector<sim::NodeId> replica_nodes, Rng rng)
    : config_(config),
      id_(id),
      keystore_(keystore),
      signer_(keystore.register_principal(quorum::client_principal(id))),
      transport_(transport),
      sim_(simulator),
      replica_nodes_(std::move(replica_nodes)),
      nonces_(id, rng) {
  transport_.set_receiver([this](sim::NodeId from, const rpc::Envelope& env) {
    on_envelope(from, env);
  });
}

void BqsEquivocator::on_envelope(sim::NodeId from, const rpc::Envelope& env) {
  retired_.clear();
  if (call_) call_->on_reply(from, env);
}

void BqsEquivocator::attack(ObjectId object, Bytes v1, Bytes v2,
                            std::function<void()> done) {
  BqsReadTsReq req;
  req.object = object;
  req.nonce = nonces_.next();
  const crypto::Nonce nonce = req.nonce;
  rpc::Envelope env;
  env.type = rpc::MsgType::kBqsReadTs;
  env.rpc_id = next_rpc_id_++;
  env.sender = quorum::client_principal(id_);
  env.body = req.encode();

  auto max_ts = std::make_shared<Timestamp>();
  call_ = std::make_unique<rpc::QuorumCall>(
      sim_, transport_, replica_nodes_, config_.q, std::move(env),
      [this, object, nonce, max_ts](std::uint32_t idx,
                                    const rpc::Envelope& e) {
        if (e.type != rpc::MsgType::kBqsReadTsReply) return false;
        auto m = BqsReadTsRep::decode(e.body);
        if (!m || m->object != object || m->nonce != nonce ||
            m->replica != idx)
          return false;
        if (m->ts > *max_ts) *max_ts = m->ts;
        return true;
      },
      [this, object, v1 = std::move(v1), v2 = std::move(v2), max_ts,
       done = std::move(done)] {
        retired_.push_back(std::move(call_));
        const Timestamp t = max_ts->succ(id_);
        // Sign BOTH values for the same timestamp — BQS replicas accept
        // whichever reaches them. Split the group in half.
        auto send_half = [&](const Bytes& v, std::size_t lo, std::size_t hi) {
          BqsWriteReq w;
          w.object = object;
          w.value = v;
          w.ts = t;
          w.client = id_;
          auto sig =
              signer_.sign(bqs_value_statement(object, t, crypto::sha256(v)));
          if (!sig.is_ok()) return;
          w.sig = std::move(sig).take();
          rpc::Envelope env;
          env.type = rpc::MsgType::kBqsWrite;
          env.rpc_id = next_rpc_id_++;
          env.sender = quorum::client_principal(id_);
          env.body = w.encode();
          for (std::size_t i = lo; i < hi; ++i)
            transport_.send(replica_nodes_[i], env);
        };
        const std::size_t half = replica_nodes_.size() / 2;
        send_half(v1, 0, half);
        send_half(v2, half, replica_nodes_.size());
        done();
      });
}

}  // namespace bftbc::baselines
