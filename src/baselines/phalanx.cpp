#include "baselines/phalanx.h"

#include "util/codec.h"

namespace bftbc::baselines {

namespace {

// Wire formats local to the Phalanx baseline. The echo round reuses the
// kPhalanxWrite envelope type with an is_echo flag.

struct PhxWriteMsg {
  ObjectId object = 0;
  Bytes value;
  Timestamp ts;
  bool is_echo = false;
  ReplicaId echoer = 0;  // meaningful when is_echo

  Bytes encode() const {
    Writer w;
    w.put_u64(object);
    w.put_bytes(value);
    ts.encode(w);
    w.put_bool(is_echo);
    w.put_u32(echoer);
    return std::move(w).take();
  }
  static std::optional<PhxWriteMsg> decode(BytesView b) {
    Reader r(b);
    PhxWriteMsg m;
    m.object = r.get_u64();
    m.value = r.get_bytes();
    m.ts = Timestamp::decode(r);
    m.is_echo = r.get_bool();
    m.echoer = r.get_u32();
    if (!r.done()) return std::nullopt;
    return m;
  }
};

struct PhxAck {
  ObjectId object = 0;
  Timestamp ts;
  ReplicaId replica = 0;
  Bytes encode() const {
    Writer w;
    w.put_u64(object);
    ts.encode(w);
    w.put_u32(replica);
    return std::move(w).take();
  }
  static std::optional<PhxAck> decode(BytesView b) {
    Reader r(b);
    PhxAck m;
    m.object = r.get_u64();
    m.ts = Timestamp::decode(r);
    m.replica = r.get_u32();
    if (!r.done()) return std::nullopt;
    return m;
  }
};

struct PhxReadTsReq {
  ObjectId object = 0;
  crypto::Nonce nonce;
  Bytes encode() const {
    Writer w;
    w.put_u64(object);
    nonce.encode(w);
    return std::move(w).take();
  }
  static std::optional<PhxReadTsReq> decode(BytesView b) {
    Reader r(b);
    PhxReadTsReq m;
    m.object = r.get_u64();
    m.nonce = crypto::Nonce::decode(r);
    if (!r.done()) return std::nullopt;
    return m;
  }
};

struct PhxReadTsRep {
  ObjectId object = 0;
  crypto::Nonce nonce;
  Timestamp ts;
  ReplicaId replica = 0;
  Bytes encode() const {
    Writer w;
    w.put_u64(object);
    nonce.encode(w);
    ts.encode(w);
    w.put_u32(replica);
    return std::move(w).take();
  }
  static std::optional<PhxReadTsRep> decode(BytesView b) {
    Reader r(b);
    PhxReadTsRep m;
    m.object = r.get_u64();
    m.nonce = crypto::Nonce::decode(r);
    m.ts = Timestamp::decode(r);
    m.replica = r.get_u32();
    if (!r.done()) return std::nullopt;
    return m;
  }
};

struct PhxReadRep {
  ObjectId object = 0;
  crypto::Nonce nonce;
  Bytes value;
  Timestamp ts;
  ReplicaId replica = 0;
  Bytes encode() const {
    Writer w;
    w.put_u64(object);
    nonce.encode(w);
    w.put_bytes(value);
    ts.encode(w);
    w.put_u32(replica);
    return std::move(w).take();
  }
  static std::optional<PhxReadRep> decode(BytesView b) {
    Reader r(b);
    PhxReadRep m;
    m.object = r.get_u64();
    m.nonce = crypto::Nonce::decode(r);
    m.value = r.get_bytes();
    m.ts = Timestamp::decode(r);
    m.replica = r.get_u32();
    if (!r.done()) return std::nullopt;
    return m;
  }
};

}  // namespace

// ------------------------------------------------------------ replica

PhalanxReplica::PhalanxReplica(const quorum::QuorumConfig& config,
                               ReplicaId id, crypto::Keystore& keystore,
                               rpc::Transport& transport,
                               std::vector<sim::NodeId> peer_nodes)
    : config_(config),
      id_(id),
      keystore_(keystore),
      signer_(keystore.register_principal(quorum::replica_principal(id))),
      transport_(transport),
      peer_nodes_(std::move(peer_nodes)) {
  transport_.set_receiver([this](sim::NodeId from, const rpc::Envelope& env) {
    on_envelope(from, env);
  });
}

const PhalanxReplica::Committed* PhalanxReplica::committed(
    ObjectId object) const {
  auto it = objects_.find(object);
  return it == objects_.end() ? nullptr : &it->second.committed;
}

void PhalanxReplica::start_echo(ObjectId object, const Timestamp& ts,
                                const Bytes& value) {
  PhxWriteMsg echo;
  echo.object = object;
  echo.value = value;
  echo.ts = ts;
  echo.is_echo = true;
  echo.echoer = id_;
  rpc::Envelope env;
  env.type = rpc::MsgType::kPhalanxWrite;
  env.rpc_id = 0;
  env.sender = quorum::replica_principal(id_);
  env.body = echo.encode();
  for (sim::NodeId peer : peer_nodes_) {
    if (peer != transport_.node_id()) transport_.send(peer, env);
  }
  metrics_.inc("echo_broadcast");
  absorb_echo(object, ts, value, id_);  // count ourselves
}

void PhalanxReplica::absorb_echo(ObjectId object, const Timestamp& ts,
                                 const Bytes& value, ReplicaId echoer) {
  ObjectData& data = objects_[object];
  if (!(ts > data.committed.ts)) return;  // already superseded
  const Bytes h = crypto::digest_bytes(crypto::sha256(value));
  EchoState& state = data.echoes[{{ts.val, ts.id}, h}];
  if (state.value.empty()) state.value = value;
  state.echoers.insert(echoer);
  if (state.echoers.size() >= config_.q) {
    // A masking quorum vouches for this (ts, value): commit.
    data.committed.value = state.value;
    data.committed.ts = ts;
    metrics_.inc("committed");
    // Drop superseded echo bookkeeping.
    for (auto it = data.echoes.begin(); it != data.echoes.end();) {
      const Timestamp ets{it->first.first.first, it->first.first.second};
      if (ets <= ts) {
        it = data.echoes.erase(it);
      } else {
        ++it;
      }
    }
  }
}

void PhalanxReplica::on_envelope(sim::NodeId from, const rpc::Envelope& env) {
  auto send = [&](rpc::MsgType type, Bytes body) {
    rpc::Envelope out;
    out.type = type;
    out.rpc_id = env.rpc_id;
    out.sender = quorum::replica_principal(id_);
    out.body = std::move(body);
    transport_.send(from, out);
  };

  switch (env.type) {
    case rpc::MsgType::kPhalanxReadTs: {
      auto req = PhxReadTsReq::decode(env.body);
      if (!req) return;
      PhxReadTsRep rep;
      rep.object = req->object;
      rep.nonce = req->nonce;
      rep.ts = objects_[req->object].committed.ts;
      rep.replica = id_;
      metrics_.inc("reply_read_ts");
      send(rpc::MsgType::kPhalanxReadTsReply, rep.encode());
      break;
    }
    case rpc::MsgType::kPhalanxWrite: {
      auto msg = PhxWriteMsg::decode(env.body);
      if (!msg) return;
      if (msg->is_echo) {
        // Echo from a peer replica (authenticated at the transport level
        // in a deployment; here the envelope sender is trusted as the
        // network delivers from-ids faithfully).
        if (quorum::is_replica_principal(env.sender) &&
            config_.valid_replica(msg->echoer)) {
          metrics_.inc("echo_received");
          absorb_echo(msg->object, msg->ts, msg->value, msg->echoer);
        }
        return;  // echoes are not acked
      }
      // Client write: ack immediately, then propagate via echo. The ack
      // means "received", not "committed" — commitment needs the quorum
      // of echoes (this is the three-message-delay write).
      metrics_.inc("reply_write");
      start_echo(msg->object, msg->ts, msg->value);
      PhxAck ack;
      ack.object = msg->object;
      ack.ts = msg->ts;
      ack.replica = id_;
      send(rpc::MsgType::kPhalanxWriteReply, ack.encode());
      break;
    }
    case rpc::MsgType::kPhalanxRead: {
      auto req = PhxReadTsReq::decode(env.body);  // same shape
      if (!req) return;
      const ObjectData& data = objects_[req->object];
      PhxReadRep rep;
      rep.object = req->object;
      rep.nonce = req->nonce;
      rep.value = data.committed.value;
      rep.ts = data.committed.ts;
      rep.replica = id_;
      metrics_.inc("reply_read");
      send(rpc::MsgType::kPhalanxReadReply, rep.encode());
      break;
    }
    default:
      // The shared MsgType enum spans every protocol family; a Phalanx
      // replica ignores the BFT-BC / BQS / SBQL types by design.
      break;
  }
}

// ------------------------------------------------------------ client

struct PhalanxClient::Op {
  std::uint64_t op_id = 0;
  ObjectId object = 0;
  int phases = 0;
  Bytes value;
  crypto::Nonce nonce;
  Timestamp max_ts;
  // read harvest: replica -> (ts, value)
  std::map<ReplicaId, std::pair<Timestamp, Bytes>> read_replies;
  WriteCallback wcb;
  ReadCallback rcb;
  std::unique_ptr<rpc::QuorumCall> call;
};

PhalanxClient::PhalanxClient(const quorum::QuorumConfig& config, ClientId id,
                             crypto::Keystore& keystore,
                             rpc::Transport& transport,
                             sim::Simulator& simulator,
                             std::vector<sim::NodeId> replica_nodes, Rng rng,
                             PhalanxClientOptions options)
    : config_(config),
      id_(id),
      keystore_(keystore),
      signer_(keystore.register_principal(quorum::client_principal(id))),
      transport_(transport),
      sim_(simulator),
      replica_nodes_(std::move(replica_nodes)),
      nonces_(id, rng),
      options_(options) {
  transport_.set_receiver([this](sim::NodeId from, const rpc::Envelope& env) {
    on_envelope(from, env);
  });
}

PhalanxClient::~PhalanxClient() = default;

rpc::Envelope PhalanxClient::make_request(rpc::MsgType type, Bytes body) {
  rpc::Envelope env;
  env.type = type;
  env.rpc_id = next_rpc_id_++;
  env.sender = quorum::client_principal(id_);
  env.body = std::move(body);
  return env;
}

void PhalanxClient::on_envelope(sim::NodeId from, const rpc::Envelope& env) {
  retired_.clear();
  for (auto& [op_id, op] : ops_) {
    if (op->call && op->call->on_reply(from, env)) return;
  }
}

void PhalanxClient::write(ObjectId object, Bytes value, WriteCallback cb) {
  auto owned = std::make_unique<Op>();
  Op& op = *owned;
  op.op_id = next_op_id_++;
  op.object = object;
  op.value = std::move(value);
  op.wcb = std::move(cb);
  op.nonce = nonces_.next();
  ops_[op.op_id] = std::move(owned);
  metrics_.inc("writes");

  PhxReadTsReq req;
  req.object = object;
  req.nonce = op.nonce;
  const std::uint64_t op_id = op.op_id;
  ++op.phases;
  op.call = std::make_unique<rpc::QuorumCall>(
      sim_, transport_, replica_nodes_, config_.q,
      make_request(rpc::MsgType::kPhalanxReadTs, req.encode()),
      [this, op_id](std::uint32_t idx, const rpc::Envelope& e) {
        auto it = ops_.find(op_id);
        if (it == ops_.end() || e.type != rpc::MsgType::kPhalanxReadTsReply)
          return false;
        Op& op = *it->second;
        auto m = PhxReadTsRep::decode(e.body);
        if (!m || m->object != op.object || m->nonce != op.nonce ||
            m->replica != idx)
          return false;
        if (m->ts > op.max_ts) op.max_ts = m->ts;
        return true;
      },
      [this, op_id] {
        auto it = ops_.find(op_id);
        if (it == ops_.end()) return;
        Op& op = *it->second;
        const Timestamp t = op.max_ts.succ(id_);
        PhxWriteMsg msg;
        msg.object = op.object;
        msg.value = op.value;
        msg.ts = t;
        ++op.phases;
        retired_.push_back(std::move(op.call));
        op.call = std::make_unique<rpc::QuorumCall>(
            sim_, transport_, replica_nodes_, config_.q,
            make_request(rpc::MsgType::kPhalanxWrite, msg.encode()),
            [this, op_id, t](std::uint32_t idx, const rpc::Envelope& e) {
              auto it = ops_.find(op_id);
              if (it == ops_.end() ||
                  e.type != rpc::MsgType::kPhalanxWriteReply)
                return false;
              auto m = PhxAck::decode(e.body);
              return m && m->ts == t && m->replica == idx;
            },
            [this, op_id, t] {
              auto it = ops_.find(op_id);
              if (it == ops_.end()) return;
              Op& op = *it->second;
              metrics_.inc("write_phases",
                           static_cast<std::uint64_t>(op.phases));
              WriteResult result{t, op.phases};
              WriteCallback cb = std::move(op.wcb);
              retired_.push_back(std::move(op.call));
              ops_.erase(op_id);
              if (cb) cb(Result<WriteResult>(result));
            },
            nullptr, options_.rpc);
      },
      nullptr, options_.rpc);
}

void PhalanxClient::read(ObjectId object, ReadCallback cb) {
  auto owned = std::make_unique<Op>();
  Op& op = *owned;
  op.op_id = next_op_id_++;
  op.object = object;
  op.rcb = std::move(cb);
  op.nonce = nonces_.next();
  ops_[op.op_id] = std::move(owned);
  metrics_.inc("reads");

  PhxReadTsReq req;
  req.object = object;
  req.nonce = op.nonce;
  const std::uint64_t op_id = op.op_id;
  ++op.phases;
  op.call = std::make_unique<rpc::QuorumCall>(
      sim_, transport_, replica_nodes_, config_.q,
      make_request(rpc::MsgType::kPhalanxRead, req.encode()),
      [this, op_id](std::uint32_t idx, const rpc::Envelope& e) {
        auto it = ops_.find(op_id);
        if (it == ops_.end() || e.type != rpc::MsgType::kPhalanxReadReply)
          return false;
        Op& op = *it->second;
        auto m = PhxReadRep::decode(e.body);
        if (!m || m->object != op.object || m->nonce != op.nonce ||
            m->replica != idx)
          return false;
        op.read_replies[idx] = {m->ts, m->value};
        return true;
      },
      [this, op_id] {
        auto it = ops_.find(op_id);
        if (it == ops_.end()) return;
        Op& op = *it->second;

        // Masking-quorum read rule: the highest timestamp among replies
        // is returned only if f+1 replicas vouch for the same
        // (ts, value); otherwise the read returns null.
        Timestamp top;
        for (const auto& [r, tv] : op.read_replies) {
          if (tv.first > top) top = tv.first;
        }
        std::map<Bytes, int> support;
        for (const auto& [r, tv] : op.read_replies) {
          if (tv.first == top) ++support[tv.second];
        }
        ReadResult result;
        result.ts = top;
        result.phases = op.phases;
        for (const auto& [value, count] : support) {
          if (static_cast<std::uint32_t>(count) >= config_.f + 1) {
            result.value = value;
            break;
          }
        }
        if (!result.value.has_value()) metrics_.inc("null_reads");
        metrics_.inc("read_phases", static_cast<std::uint64_t>(op.phases));

        ReadCallback cb = std::move(op.rcb);
        retired_.push_back(std::move(op.call));
        ops_.erase(op_id);
        if (cb) cb(Result<ReadResult>(std::move(result)));
      },
      nullptr, options_.rpc);
}

}  // namespace bftbc::baselines
