#include "baselines/sbql.h"

#include "util/codec.h"

namespace bftbc::baselines {

namespace {

// Wire formats local to the SBQ-L baseline.

struct SbqlTsMsg {  // READ-TS request/READ request (object + nonce)
  ObjectId object = 0;
  crypto::Nonce nonce;
  Bytes encode() const {
    Writer w;
    w.put_u64(object);
    nonce.encode(w);
    return std::move(w).take();
  }
  static std::optional<SbqlTsMsg> decode(BytesView b) {
    Reader r(b);
    SbqlTsMsg m;
    m.object = r.get_u64();
    m.nonce = crypto::Nonce::decode(r);
    if (!r.done()) return std::nullopt;
    return m;
  }
};

struct SbqlTsRep {
  ObjectId object = 0;
  crypto::Nonce nonce;
  Timestamp ts;
  ReplicaId replica = 0;
  Bytes encode() const {
    Writer w;
    w.put_u64(object);
    nonce.encode(w);
    ts.encode(w);
    w.put_u32(replica);
    return std::move(w).take();
  }
  static std::optional<SbqlTsRep> decode(BytesView b) {
    Reader r(b);
    SbqlTsRep m;
    m.object = r.get_u64();
    m.nonce = crypto::Nonce::decode(r);
    m.ts = Timestamp::decode(r);
    m.replica = r.get_u32();
    if (!r.done()) return std::nullopt;
    return m;
  }
};

struct SbqlWriteMsg {
  ObjectId object = 0;
  Bytes value;
  Timestamp ts;
  Bytes encode() const {
    Writer w;
    w.put_u64(object);
    w.put_bytes(value);
    ts.encode(w);
    return std::move(w).take();
  }
  static std::optional<SbqlWriteMsg> decode(BytesView b) {
    Reader r(b);
    SbqlWriteMsg m;
    m.object = r.get_u64();
    m.value = r.get_bytes();
    m.ts = Timestamp::decode(r);
    if (!r.done()) return std::nullopt;
    return m;
  }
};

struct SbqlAck {
  ObjectId object = 0;
  Timestamp ts;
  ReplicaId replica = 0;
  Bytes encode() const {
    Writer w;
    w.put_u64(object);
    ts.encode(w);
    w.put_u32(replica);
    return std::move(w).take();
  }
  static std::optional<SbqlAck> decode(BytesView b) {
    Reader r(b);
    SbqlAck m;
    m.object = r.get_u64();
    m.ts = Timestamp::decode(r);
    m.replica = r.get_u32();
    if (!r.done()) return std::nullopt;
    return m;
  }
};

struct SbqlForwardMsg {
  std::uint64_t seq = 0;  // per-sender sequence for acking
  ObjectId object = 0;
  Bytes value;
  Timestamp ts;
  Bytes encode() const {
    Writer w;
    w.put_u64(seq);
    w.put_u64(object);
    w.put_bytes(value);
    ts.encode(w);
    return std::move(w).take();
  }
  static std::optional<SbqlForwardMsg> decode(BytesView b) {
    Reader r(b);
    SbqlForwardMsg m;
    m.seq = r.get_u64();
    m.object = r.get_u64();
    m.value = r.get_bytes();
    m.ts = Timestamp::decode(r);
    if (!r.done()) return std::nullopt;
    return m;
  }
};

struct SbqlReadRep {
  ObjectId object = 0;
  crypto::Nonce nonce;
  Bytes value;
  Timestamp ts;
  ReplicaId replica = 0;
  Bytes encode() const {
    Writer w;
    w.put_u64(object);
    nonce.encode(w);
    w.put_bytes(value);
    ts.encode(w);
    w.put_u32(replica);
    return std::move(w).take();
  }
  static std::optional<SbqlReadRep> decode(BytesView b) {
    Reader r(b);
    SbqlReadRep m;
    m.object = r.get_u64();
    m.nonce = crypto::Nonce::decode(r);
    m.value = r.get_bytes();
    m.ts = Timestamp::decode(r);
    m.replica = r.get_u32();
    if (!r.done()) return std::nullopt;
    return m;
  }
};

}  // namespace

// ------------------------------------------------------------ replica

SbqlReplica::SbqlReplica(const quorum::QuorumConfig& config, ReplicaId id,
                         crypto::Keystore& keystore, rpc::Transport& transport,
                         sim::Simulator& simulator,
                         std::vector<sim::NodeId> peer_nodes,
                         sim::Time retransmit_period)
    : config_(config),
      id_(id),
      keystore_(keystore),
      signer_(keystore.register_principal(quorum::replica_principal(id))),
      transport_(transport),
      sim_(simulator),
      peer_nodes_(std::move(peer_nodes)),
      retransmit_period_(retransmit_period) {
  transport_.set_receiver([this](sim::NodeId from, const rpc::Envelope& env) {
    on_envelope(from, env);
  });
  flush_timer_ = sim_.schedule(retransmit_period_, [this] { flush_outboxes(); });
}

SbqlReplica::~SbqlReplica() { sim_.cancel(flush_timer_); }

const SbqlReplica::Stored* SbqlReplica::stored(ObjectId object) const {
  auto it = objects_.find(object);
  return it == objects_.end() ? nullptr : &it->second;
}

std::size_t SbqlReplica::outbox_bytes() const {
  std::size_t total = 0;
  for (const auto& [peer, queue] : outbox_) {
    for (const auto& pending : queue) total += pending.payload.size();
  }
  return total;
}

std::size_t SbqlReplica::outbox_messages() const {
  std::size_t total = 0;
  for (const auto& [peer, queue] : outbox_) total += queue.size();
  return total;
}

void SbqlReplica::apply(ObjectId object, const Timestamp& ts,
                        const Bytes& value) {
  Stored& entry = objects_[object];
  // §8: servers "keep the highest value for each timestamp" so that a
  // Byzantine client splitting values across replicas still converges.
  if (ts > entry.ts || (ts == entry.ts && value > entry.value)) {
    entry.ts = ts;
    entry.value = value;
    metrics_.inc("state_overwritten");
  }
}

void SbqlReplica::forward_reliably(ObjectId object, const Timestamp& ts,
                                   const Bytes& value) {
  SbqlForwardMsg msg;
  msg.object = object;
  msg.value = value;
  msg.ts = ts;
  for (sim::NodeId peer : peer_nodes_) {
    if (peer == transport_.node_id()) continue;
    msg.seq = next_seq_++;
    // The reliable-network assumption made concrete: remember the message
    // until the peer acknowledges it, however long that takes.
    outbox_[peer].push_back(PendingForward{msg.seq, msg.encode()});
    rpc::Envelope env;
    env.type = rpc::MsgType::kSbqlForward;
    env.rpc_id = msg.seq;
    env.sender = quorum::replica_principal(id_);
    env.body = outbox_[peer].back().payload;
    transport_.send(peer, env);
    metrics_.inc("forwards_sent");
  }
}

void SbqlReplica::flush_outboxes() {
  for (auto& [peer, queue] : outbox_) {
    for (const auto& pending : queue) {
      rpc::Envelope env;
      env.type = rpc::MsgType::kSbqlForward;
      env.rpc_id = pending.seq;
      env.sender = quorum::replica_principal(id_);
      env.body = pending.payload;
      transport_.send(peer, env);
      metrics_.inc("forwards_retransmitted");
    }
  }
  flush_timer_ = sim_.schedule(retransmit_period_, [this] { flush_outboxes(); });
}

void SbqlReplica::on_envelope(sim::NodeId from, const rpc::Envelope& env) {
  auto send = [&](rpc::MsgType type, Bytes body) {
    rpc::Envelope out;
    out.type = type;
    out.rpc_id = env.rpc_id;
    out.sender = quorum::replica_principal(id_);
    out.body = std::move(body);
    transport_.send(from, out);
  };

  switch (env.type) {
    case rpc::MsgType::kSbqlReadTs: {
      auto req = SbqlTsMsg::decode(env.body);
      if (!req) return;
      SbqlTsRep rep;
      rep.object = req->object;
      rep.nonce = req->nonce;
      rep.ts = objects_[req->object].ts;
      rep.replica = id_;
      send(rpc::MsgType::kSbqlReadTsReply, rep.encode());
      break;
    }
    case rpc::MsgType::kSbqlWrite: {
      auto req = SbqlWriteMsg::decode(env.body);
      if (!req) return;
      apply(req->object, req->ts, req->value);
      // The server-to-server propagation §8 describes.
      forward_reliably(req->object, req->ts, req->value);
      SbqlAck ack;
      ack.object = req->object;
      ack.ts = req->ts;
      ack.replica = id_;
      metrics_.inc("reply_write");
      send(rpc::MsgType::kSbqlWriteReply, ack.encode());
      break;
    }
    case rpc::MsgType::kSbqlForward: {
      auto msg = SbqlForwardMsg::decode(env.body);
      if (!msg || !quorum::is_replica_principal(env.sender)) return;
      apply(msg->object, msg->ts, msg->value);
      // Ack so the sender can drop its buffer entry.
      rpc::Envelope ack;
      ack.type = rpc::MsgType::kSbqlForwardAck;
      ack.rpc_id = msg->seq;
      ack.sender = quorum::replica_principal(id_);
      transport_.send(from, ack);
      break;
    }
    case rpc::MsgType::kSbqlForwardAck: {
      auto& queue = outbox_[from];
      for (auto it = queue.begin(); it != queue.end(); ++it) {
        if (it->seq == env.rpc_id) {
          queue.erase(it);
          break;
        }
      }
      break;
    }
    case rpc::MsgType::kSbqlRead: {
      auto req = SbqlTsMsg::decode(env.body);
      if (!req) return;
      const Stored& entry = objects_[req->object];
      SbqlReadRep rep;
      rep.object = req->object;
      rep.nonce = req->nonce;
      rep.value = entry.value;
      rep.ts = entry.ts;
      rep.replica = id_;
      metrics_.inc("reply_read");
      send(rpc::MsgType::kSbqlReadReply, rep.encode());
      break;
    }
    default:
      // The shared MsgType enum spans every protocol family; an SBQL
      // replica ignores the BFT-BC / BQS / Phalanx types by design.
      break;
  }
}

// ------------------------------------------------------------ client

struct SbqlClient::Op {
  std::uint64_t op_id = 0;
  ObjectId object = 0;
  bool is_write = false;
  int phases = 0;
  int rounds = 0;
  Bytes value;
  crypto::Nonce nonce;
  Timestamp max_ts;
  // read round harvest: replica -> (ts, value)
  std::map<ReplicaId, std::pair<Timestamp, Bytes>> replies;
  WriteCallback wcb;
  ReadCallback rcb;
  std::unique_ptr<rpc::QuorumCall> call;
  sim::TimerId reread_timer = 0;
};

SbqlClient::SbqlClient(const quorum::QuorumConfig& config, quorum::ClientId id,
                       crypto::Keystore& keystore, rpc::Transport& transport,
                       sim::Simulator& simulator,
                       std::vector<sim::NodeId> replica_nodes, Rng rng,
                       SbqlClientOptions options)
    : config_(config),
      id_(id),
      keystore_(keystore),
      signer_(keystore.register_principal(quorum::client_principal(id))),
      transport_(transport),
      sim_(simulator),
      replica_nodes_(std::move(replica_nodes)),
      nonces_(id, rng),
      options_(options) {
  transport_.set_receiver([this](sim::NodeId from, const rpc::Envelope& env) {
    on_envelope(from, env);
  });
}

SbqlClient::~SbqlClient() {
  for (auto& [op_id, op] : ops_) sim_.cancel(op->reread_timer);
}

rpc::Envelope SbqlClient::make_request(rpc::MsgType type, Bytes body) {
  rpc::Envelope env;
  env.type = type;
  env.rpc_id = next_rpc_id_++;
  env.sender = quorum::client_principal(id_);
  env.body = std::move(body);
  return env;
}

void SbqlClient::on_envelope(sim::NodeId from, const rpc::Envelope& env) {
  retired_.clear();
  for (auto& [op_id, op] : ops_) {
    if (op->call && op->call->on_reply(from, env)) return;
  }
}

void SbqlClient::write(ObjectId object, Bytes value, WriteCallback cb) {
  auto owned = std::make_unique<Op>();
  Op& op = *owned;
  op.op_id = next_op_id_++;
  op.object = object;
  op.is_write = true;
  op.value = std::move(value);
  op.wcb = std::move(cb);
  op.nonce = nonces_.next();
  ops_[op.op_id] = std::move(owned);
  metrics_.inc("writes");

  SbqlTsMsg req;
  req.object = object;
  req.nonce = op.nonce;
  const std::uint64_t op_id = op.op_id;
  ++op.phases;
  op.call = std::make_unique<rpc::QuorumCall>(
      sim_, transport_, replica_nodes_, config_.q,
      make_request(rpc::MsgType::kSbqlReadTs, req.encode()),
      [this, op_id](std::uint32_t idx, const rpc::Envelope& e) {
        auto it = ops_.find(op_id);
        if (it == ops_.end() || e.type != rpc::MsgType::kSbqlReadTsReply)
          return false;
        Op& op = *it->second;
        auto m = SbqlTsRep::decode(e.body);
        if (!m || m->object != op.object || m->nonce != op.nonce ||
            m->replica != idx)
          return false;
        if (m->ts > op.max_ts) op.max_ts = m->ts;
        return true;
      },
      [this, op_id] {
        auto it = ops_.find(op_id);
        if (it == ops_.end()) return;
        Op& op = *it->second;
        const Timestamp t = op.max_ts.succ(id_);
        SbqlWriteMsg msg;
        msg.object = op.object;
        msg.value = op.value;
        msg.ts = t;
        ++op.phases;
        retired_.push_back(std::move(op.call));
        op.call = std::make_unique<rpc::QuorumCall>(
            sim_, transport_, replica_nodes_, config_.q,
            make_request(rpc::MsgType::kSbqlWrite, msg.encode()),
            [this, op_id, t](std::uint32_t idx, const rpc::Envelope& e) {
              auto it = ops_.find(op_id);
              if (it == ops_.end() || e.type != rpc::MsgType::kSbqlWriteReply)
                return false;
              auto m = SbqlAck::decode(e.body);
              return m && m->ts == t && m->replica == idx;
            },
            [this, op_id, t] {
              auto it = ops_.find(op_id);
              if (it == ops_.end()) return;
              Op& op = *it->second;
              WriteResult result{t, op.phases};
              WriteCallback cb = std::move(op.wcb);
              retired_.push_back(std::move(op.call));
              ops_.erase(op_id);
              if (cb) cb(Result<WriteResult>(result));
            },
            nullptr, options_.rpc);
      },
      nullptr, options_.rpc);
}

void SbqlClient::read(ObjectId object, ReadCallback cb) {
  auto owned = std::make_unique<Op>();
  Op& op = *owned;
  op.op_id = next_op_id_++;
  op.object = object;
  op.rcb = std::move(cb);
  ops_[op.op_id] = std::move(owned);
  metrics_.inc("reads");
  start_read_round(op.op_id);
}

void SbqlClient::start_read_round(std::uint64_t op_id) {
  auto it = ops_.find(op_id);
  if (it == ops_.end()) return;
  Op& op = *it->second;
  ++op.rounds;
  op.nonce = nonces_.next();
  op.replies.clear();

  SbqlTsMsg req;
  req.object = op.object;
  req.nonce = op.nonce;
  if (op.call) retired_.push_back(std::move(op.call));
  op.call = std::make_unique<rpc::QuorumCall>(
      sim_, transport_, replica_nodes_, config_.q,
      make_request(rpc::MsgType::kSbqlRead, req.encode()),
      [this, op_id](std::uint32_t idx, const rpc::Envelope& e) {
        auto it = ops_.find(op_id);
        if (it == ops_.end() || e.type != rpc::MsgType::kSbqlReadReply)
          return false;
        Op& op = *it->second;
        auto m = SbqlReadRep::decode(e.body);
        if (!m || m->object != op.object || m->nonce != op.nonce ||
            m->replica != idx)
          return false;
        op.replies[idx] = {m->ts, m->value};
        return true;
      },
      [this, op_id] {
        auto it = ops_.find(op_id);
        if (it == ops_.end()) return;
        Op& op = *it->second;
        // The SBQ-L read rule: 2f+1 IDENTICAL replies or try again.
        std::map<std::pair<std::pair<std::uint64_t, quorum::ClientId>, Bytes>,
                 int>
            tally;
        for (const auto& [r, tv] : op.replies) {
          ++tally[{{tv.first.val, tv.first.id}, tv.second}];
        }
        for (const auto& [key, count] : tally) {
          if (static_cast<std::uint32_t>(count) >= config_.q) {
            metrics_.inc("read_rounds",
                         static_cast<std::uint64_t>(op.rounds));
            ReadResult result;
            result.value = key.second;
            result.ts = Timestamp{key.first.first, key.first.second};
            result.rounds = op.rounds;
            ReadCallback cb = std::move(op.rcb);
            retired_.push_back(std::move(op.call));
            sim_.cancel(op.reread_timer);
            ops_.erase(op_id);
            if (cb) cb(Result<ReadResult>(std::move(result)));
            return;
          }
        }
        if (op.rounds >= options_.max_read_rounds) {
          metrics_.inc("read_gave_up");
          ReadCallback cb = std::move(op.rcb);
          retired_.push_back(std::move(op.call));
          ops_.erase(op_id);
          if (cb) {
            cb(Result<ReadResult>(
                timeout_error("no 2f+1 identical replies after max rounds")));
          }
          return;
        }
        metrics_.inc("read_retry_rounds");
        op.reread_timer = sim_.schedule(options_.reread_delay, [this, op_id] {
          start_read_round(op_id);
        });
      },
      nullptr, options_.rpc);
}

}  // namespace bftbc::baselines
