// Phalanx-style masking-quorum baseline (paper §8's description of
// Malkhi–Reiter [9, 10]'s Byzantine-client handling):
//
//   - 4f+1 replicas, masking quorums of 3f+1 (two quorums intersect in
//     >= 2f+1 replicas, a majority of them correct)
//   - writes trigger a server-to-server ECHO round: each replica
//     re-broadcasts 〈value, ts〉 and COMMITS only once 3f+1 distinct
//     replicas vouch for the same (ts, h) — this is what stops a
//     Byzantine client from binding two values to one timestamp
//   - reads query a quorum and return the highest-timestamp value only
//     if at least f+1 replicas vouch for it; otherwise they return NULL
//     ("weak semantics for reads ... in case of concurrent writes")
//
// The null-read behavior and the extra f replicas are exactly what
// BFT-BC's certificates eliminate; bench E10 measures both.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>

#include "crypto/nonce.h"
#include "crypto/sha256.h"
#include "quorum/config.h"
#include "quorum/statements.h"
#include "rpc/quorum_call.h"
#include "rpc/transport.h"
#include "sim/simulator.h"
#include "util/rng.h"
#include "util/stats.h"

namespace bftbc::baselines {

using quorum::ClientId;
using quorum::ObjectId;
using quorum::ReplicaId;
using quorum::Timestamp;

class PhalanxReplica {
 public:
  // `peer_nodes` are the other replicas' addresses for the echo round.
  PhalanxReplica(const quorum::QuorumConfig& config, ReplicaId id,
                 crypto::Keystore& keystore, rpc::Transport& transport,
                 std::vector<sim::NodeId> peer_nodes);

  ReplicaId id() const { return id_; }
  const Counters& metrics() const { return metrics_; }

  struct Committed {
    Bytes value;
    Timestamp ts;
  };
  const Committed* committed(ObjectId object) const;

 private:
  void on_envelope(sim::NodeId from, const rpc::Envelope& env);
  void start_echo(ObjectId object, const Timestamp& ts, const Bytes& value);
  void absorb_echo(ObjectId object, const Timestamp& ts, const Bytes& value,
                   ReplicaId echoer);

  quorum::QuorumConfig config_;
  ReplicaId id_;
  crypto::Keystore& keystore_;
  crypto::Signer signer_;
  rpc::Transport& transport_;
  std::vector<sim::NodeId> peer_nodes_;

  struct EchoState {
    Bytes value;
    std::set<ReplicaId> echoers;
  };
  struct ObjectData {
    Committed committed;
    // (ts, hash) -> echo progress
    std::map<std::pair<std::pair<std::uint64_t, ClientId>, Bytes>, EchoState>
        echoes;
  };
  std::map<ObjectId, ObjectData> objects_;
  Counters metrics_;
};

struct PhalanxClientOptions {
  rpc::QuorumCallOptions rpc;
};

class PhalanxClient {
 public:
  PhalanxClient(const quorum::QuorumConfig& config, ClientId id,
                crypto::Keystore& keystore, rpc::Transport& transport,
                sim::Simulator& simulator,
                std::vector<sim::NodeId> replica_nodes, Rng rng,
                PhalanxClientOptions options = PhalanxClientOptions());

  ~PhalanxClient();

  ClientId id() const { return id_; }

  struct WriteResult {
    Timestamp ts;
    int phases = 0;
  };
  using WriteCallback = std::function<void(Result<WriteResult>)>;
  void write(ObjectId object, Bytes value, WriteCallback cb);

  struct ReadResult {
    // nullopt models the protocol's null read (insufficient vouching for
    // the highest timestamp — incomplete or concurrent write).
    std::optional<Bytes> value;
    Timestamp ts;
    int phases = 0;
  };
  using ReadCallback = std::function<void(Result<ReadResult>)>;
  void read(ObjectId object, ReadCallback cb);

  const Counters& metrics() const { return metrics_; }

 private:
  struct Op;
  void on_envelope(sim::NodeId from, const rpc::Envelope& env);
  rpc::Envelope make_request(rpc::MsgType type, Bytes body);

  quorum::QuorumConfig config_;
  ClientId id_;
  crypto::Keystore& keystore_;
  crypto::Signer signer_;
  rpc::Transport& transport_;
  sim::Simulator& sim_;
  std::vector<sim::NodeId> replica_nodes_;
  crypto::NonceGenerator nonces_;
  PhalanxClientOptions options_;

  std::map<std::uint64_t, std::unique_ptr<Op>> ops_;
  std::vector<std::unique_ptr<rpc::QuorumCall>> retired_;
  std::uint64_t next_op_id_ = 1;
  std::uint64_t next_rpc_id_ = 1;
  Counters metrics_;
};

}  // namespace bftbc::baselines
