#include "net/cluster_config.h"

#include <fstream>
#include <sstream>

#include "shard/shard_map.h"
#include "util/json_value.h"

namespace bftbc::net {

namespace {

// Parses one "replicas" endpoint array (shared by the legacy top-level
// spelling and each entry of the "shards" array).
Status parse_endpoint_array(
    const JsonValue& replicas, std::uint32_t n,
    std::vector<ClusterConfig::ReplicaEndpoint>& out) {
  if (!replicas.is_array()) {
    return Status(StatusCode::kInvalidArgument,
                  "cluster config: replicas is not an array");
  }
  for (const JsonValue& entry : replicas.items()) {
    if (!entry.is_object()) {
      return Status(StatusCode::kInvalidArgument,
                    "cluster config: replica entry is not an object");
    }
    ClusterConfig::ReplicaEndpoint ep;
    ep.host = entry.string("host", "");
    const std::uint64_t port = entry.u64("port", 0);
    if (port == 0 || port > 65535) {
      return Status(StatusCode::kInvalidArgument,
                    "cluster config: replica port out of range");
    }
    ep.port = static_cast<std::uint16_t>(port);
    if (!UdpEndpoint::parse(ep.host, ep.port).has_value()) {
      return Status(StatusCode::kInvalidArgument,
                    "cluster config: bad replica host '" + ep.host +
                        "' (dotted-quad IPv4 required)");
    }
    out.push_back(std::move(ep));
  }
  if (out.size() != n) {
    return Status(StatusCode::kInvalidArgument,
                  "cluster config: expected " + std::to_string(n) +
                      " replicas (3f+1) but found " +
                      std::to_string(out.size()));
  }
  return Status::ok();
}

}  // namespace

Result<ClusterConfig> ClusterConfig::parse(std::string_view json) {
  auto root = JsonValue::parse(json);
  if (!root.has_value() || !root->is_object()) {
    return Status(StatusCode::kInvalidArgument,
                  "cluster config: not a JSON object");
  }
  ClusterConfig cfg;
  cfg.f = static_cast<std::uint32_t>(root->u64("f", 1));
  if (cfg.f == 0) {
    return Status(StatusCode::kInvalidArgument,
                  "cluster config: f must be >= 1");
  }
  cfg.mode = root->string("mode", "base");
  if (cfg.mode != "base" && cfg.mode != "optimized" && cfg.mode != "strong") {
    return Status(StatusCode::kInvalidArgument,
                  "cluster config: unknown mode '" + cfg.mode + "'");
  }
  cfg.auth = root->string("auth", "sig");
  if (cfg.auth != "sig" && cfg.auth != "mac") {
    return Status(StatusCode::kInvalidArgument,
                  "cluster config: unknown auth '" + cfg.auth + "'");
  }
  cfg.scheme = root->string("scheme", "hmac");
  if (cfg.scheme != "hmac" && cfg.scheme != "rsa") {
    return Status(StatusCode::kInvalidArgument,
                  "cluster config: unknown scheme '" + cfg.scheme + "'");
  }
  cfg.rsa_bits = static_cast<std::size_t>(root->u64("rsa_bits", 512));
  cfg.key_seed = root->u64("key_seed", 1);
  cfg.max_clients = static_cast<std::uint32_t>(root->u64("max_clients", 64));
  if (cfg.max_clients == 0) {
    return Status(StatusCode::kInvalidArgument,
                  "cluster config: max_clients must be >= 1");
  }

  const std::uint32_t n = 3 * cfg.f + 1;
  const JsonValue* replicas = root->find("replicas");
  const JsonValue* shards = root->find("shards");
  if (replicas != nullptr && shards != nullptr) {
    return Status(StatusCode::kInvalidArgument,
                  "cluster config: 'replicas' and 'shards' are mutually "
                  "exclusive (a legacy 'replicas' IS a one-entry 'shards')");
  }
  if (shards != nullptr) {
    if (!shards->is_array()) {
      return Status(StatusCode::kInvalidArgument,
                    "cluster config: shards is not an array");
    }
    for (const JsonValue& group : shards->items()) {
      if (!group.is_object()) {
        return Status(StatusCode::kInvalidArgument,
                      "cluster config: shard entry is not an object");
      }
      const JsonValue* group_replicas = group.find("replicas");
      if (group_replicas == nullptr) {
        return Status(StatusCode::kInvalidArgument,
                      "cluster config: shard entry missing replicas array");
      }
      std::vector<ReplicaEndpoint> endpoints;
      const Status parsed = parse_endpoint_array(*group_replicas, n, endpoints);
      if (!parsed.is_ok()) return parsed;
      cfg.shard_groups.push_back(std::move(endpoints));
    }
    if (cfg.shard_groups.empty()) {
      return Status(StatusCode::kInvalidArgument,
                    "cluster config: shards array is empty");
    }
  } else {
    if (replicas == nullptr) {
      return Status(StatusCode::kInvalidArgument,
                    "cluster config: missing replicas (or shards) array");
    }
    std::vector<ReplicaEndpoint> endpoints;
    const Status parsed = parse_endpoint_array(*replicas, n, endpoints);
    if (!parsed.is_ok()) return parsed;
    cfg.shard_groups.push_back(std::move(endpoints));
  }
  cfg.replicas = cfg.shard_groups.front();
  return cfg;
}

std::uint64_t ClusterConfig::shard_seed(std::uint32_t shard) const {
  return bftbc::shard::shard_key_seed(key_seed, shard);
}

Result<ClusterConfig> ClusterConfig::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status(StatusCode::kNotFound,
                  "cluster config: cannot open " + path);
  }
  std::ostringstream text;
  text << in.rdbuf();
  return parse(text.str());
}

Result<std::map<sim::NodeId, UdpEndpoint>> replica_endpoints(
    const ClusterConfig& config, std::uint32_t shard) {
  if (shard >= config.shard_count()) {
    return Status(StatusCode::kInvalidArgument,
                  "cluster config: shard " + std::to_string(shard) +
                      " out of range (" +
                      std::to_string(config.shard_count()) + " shards)");
  }
  std::map<sim::NodeId, UdpEndpoint> peers;
  const auto& group = config.shard_groups[shard];
  for (std::size_t r = 0; r < group.size(); ++r) {
    const auto& ep = group[r];
    auto parsed = UdpEndpoint::parse(ep.host, ep.port);
    if (!parsed.has_value()) {
      return Status(StatusCode::kInvalidArgument,
                    "cluster config: bad replica host '" + ep.host + "'");
    }
    peers[static_cast<sim::NodeId>(r)] = *parsed;
  }
  return peers;
}

Result<std::map<sim::NodeId, UdpEndpoint>> replica_endpoints(
    const ClusterConfig& config) {
  return replica_endpoints(config, 0);
}

void register_cluster_principals(const ClusterConfig& config,
                                 crypto::Keystore& keystore) {
  // Canonical registration order — replicas then clients — so every
  // process's deterministic Keystore mints the same key for the same
  // principal (see file comment in the header).
  const std::uint32_t n = 3 * config.f + 1;
  for (std::uint32_t r = 0; r < n; ++r) {
    (void)keystore.register_principal(quorum::replica_principal(r));
  }
  for (std::uint32_t c = 0; c < config.max_clients; ++c) {
    (void)keystore.register_principal(quorum::client_principal(c));
  }
}

}  // namespace bftbc::net
