#include "net/event_loop.h"

#include <poll.h>
#include <unistd.h>

#include <algorithm>

#if defined(__linux__)
#include <sys/epoll.h>
#endif

namespace bftbc::net {

EventLoop::EventLoop(bool force_poll)
    : epoch_(std::chrono::steady_clock::now()) {
#if defined(__linux__)
  if (!force_poll) {
    epoll_fd_ = epoll_create1(0);  // -1 on failure => poll() fallback
  }
#else
  (void)force_poll;
#endif
}

EventLoop::~EventLoop() {
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

sim::Time EventLoop::now() const {
  const auto elapsed = std::chrono::steady_clock::now() - epoch_;
  return static_cast<sim::Time>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count());
}

sim::TimerId EventLoop::schedule(sim::Time delay, std::function<void()> fn) {
  const sim::TimerId id = next_timer_id_++;
  const sim::Time deadline = now() + delay;
  Slot& slot = wheel_[slot_of(deadline)];
  slot.push_back(Timer{id, deadline, std::move(fn)});
  timer_index_.emplace(id, std::make_pair(slot_of(deadline), --slot.end()));
  return id;
}

void EventLoop::cancel(sim::TimerId id) {
  auto it = timer_index_.find(id);
  if (it == timer_index_.end()) return;  // fired / cancelled / id 0
  wheel_[it->second.first].erase(it->second.second);
  timer_index_.erase(it);
}

bool EventLoop::timer_due(sim::Time at) const {
  // Wheel slots hold few entries, and only slots covering [oldest
  // pending, at] can contain a due timer; a full scan is still cheap at
  // 256 slots and keeps this obviously correct.
  for (const Slot& slot : wheel_) {
    for (const Timer& t : slot) {
      if (t.deadline <= at) return true;
    }
  }
  return false;
}

std::size_t EventLoop::fire_due_timers() {
  std::size_t fired = 0;
  // Re-collect after each batch: callbacks commonly schedule delay-0
  // followups (coalescing flushes, zero-cost processing charges) that
  // must run within this same wakeup, exactly as the simulator runs all
  // events of one instant before time advances. The pass bound keeps a
  // pathological self-rescheduling timer from wedging the loop; anything
  // left spills to the next iteration.
  for (int pass = 0; pass < 64; ++pass) {
    const sim::Time at = now();
    std::vector<Timer> due;
    for (Slot& slot : wheel_) {
      for (auto it = slot.begin(); it != slot.end();) {
        if (it->deadline <= at) {
          timer_index_.erase(it->id);
          due.push_back(std::move(*it));
          it = slot.erase(it);
        } else {
          ++it;
        }
      }
    }
    if (due.empty()) return fired;
    // Same-deadline FIFO by insertion id — the simulator's tie-break.
    std::sort(due.begin(), due.end(), [](const Timer& a, const Timer& b) {
      return a.deadline != b.deadline ? a.deadline < b.deadline : a.id < b.id;
    });
    for (Timer& t : due) {
      t.fn();
      ++fired;
    }
  }
  return fired;
}

std::size_t EventLoop::wait_and_dispatch_fds(sim::Time max_wait) {
  // Block only as long as the timer wheel allows: with timers pending we
  // wake at least every tick; with a timer already due we don't block.
  sim::Time wait = max_wait;
  if (!timer_index_.empty()) wait = std::min(wait, kTickNs);
  if (timer_due(now())) wait = 0;
  const int wait_ms = static_cast<int>(wait / sim::kMillisecond);

  // Snapshot ready fds before dispatching: handlers may unwatch fds
  // (checked again at call time) or watch new ones (picked up next
  // iteration), so iteration never walks a mutating container.
  std::vector<int> ready;

  if (epoll_fd_ >= 0) {
#if defined(__linux__)
    std::array<epoll_event, 64> events;
    const int n = epoll_wait(epoll_fd_, events.data(),
                             static_cast<int>(events.size()), wait_ms);
    for (int i = 0; i < n; ++i) ready.push_back(events[i].data.fd);
#endif
  } else {
    std::vector<pollfd> fds;
    fds.reserve(fd_handlers_.size());
    for (const auto& [fd, handler] : fd_handlers_) {
      fds.push_back(pollfd{fd, POLLIN, 0});
    }
    if (fds.empty()) {
      if (wait_ms > 0) ::poll(nullptr, 0, wait_ms);  // just sleep
      return 0;
    }
    const int n = ::poll(fds.data(), static_cast<nfds_t>(fds.size()), wait_ms);
    if (n > 0) {
      for (const pollfd& p : fds) {
        if (p.revents & (POLLIN | POLLERR | POLLHUP)) ready.push_back(p.fd);
      }
    }
  }

  std::size_t dispatched = 0;
  for (int fd : ready) {
    auto it = fd_handlers_.find(fd);
    if (it == fd_handlers_.end()) continue;  // unwatched by a prior handler
    it->second();
    ++dispatched;
  }
  return dispatched;
}

void EventLoop::watch_fd(int fd, FdHandler on_readable) {
  const bool replacing = fd_handlers_.count(fd) != 0;
  fd_handlers_[fd] = std::move(on_readable);
#if defined(__linux__)
  if (epoll_fd_ >= 0 && !replacing) {
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
  }
#else
  (void)replacing;
#endif
}

void EventLoop::unwatch_fd(int fd) {
  if (fd_handlers_.erase(fd) == 0) return;
#if defined(__linux__)
  if (epoll_fd_ >= 0) epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
#endif
}

std::size_t EventLoop::poll_once(sim::Time max_wait) {
  // fds first, then timers: datagrams drained in this wakeup are
  // processed before the delay-0 timers they scheduled, preserving the
  // simulator's same-instant ordering for coalescing and batch verify.
  const std::size_t fds = wait_and_dispatch_fds(max_wait);
  return fds + fire_due_timers();
}

void EventLoop::run() {
  stopped_ = false;
  while (!stopped_) poll_once();
}

bool EventLoop::run_until(const std::function<bool()>& pred,
                          sim::Time timeout) {
  const sim::Time deadline = now() + timeout;
  while (!pred()) {
    if (now() >= deadline) return false;
    poll_once(std::min<sim::Time>(deadline - now(), 10 * sim::kMillisecond));
  }
  return true;
}

}  // namespace bftbc::net
