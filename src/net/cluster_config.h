// Deployment cluster description, loaded from a JSON file.
//
// One file, shared verbatim by every bftbcd replica daemon and every
// bftbc_bench client process, pins everything the processes must agree
// on:
//
//   {
//     "f": 1,
//     "mode": "base" | "optimized" | "strong",
//     "auth": "sig" | "mac",
//     "scheme": "hmac" | "rsa",
//     "rsa_bits": 512,
//     "key_seed": 42,
//     "max_clients": 64,
//     "replicas": [ {"host": "127.0.0.1", "port": 5500}, ... ]   // 3f+1
//   }
//
// Sharded deployments replace "replicas" with a "shards" array — one
// independent 3f+1 replica group per entry, all sharing f/mode/auth:
//
//     "shards": [
//       {"replicas": [ {"host": ..., "port": ...}, ... ]},   // shard 0
//       {"replicas": [ ... ]}                                // shard 1
//     ]
//
// A legacy "replicas" config is exactly a one-entry "shards" (the two
// spellings are mutually exclusive). Objects are assigned to groups by
// shard::ShardMap's static hash; every process derives the same map from
// the group count alone. Each shard's keystore seed is derived from
// "key_seed" via shard::shard_key_seed (shard 0 == key_seed, so legacy
// single-group deployments keep byte-identical key material) — a
// certificate minted in one group can never validate in another.
//
// Key distribution: crypto::Keystore derives key material
// deterministically from (scheme, seed) in *registration order*, so
// separate processes that register the same principals in the same
// canonical order hold identical keys — a stand-in for real key
// provisioning that keeps daemons self-contained.
// register_cluster_principals() is that canonical order: replicas 0..n-1
// first, then clients 0..max_clients-1. A client id >= max_clients is a
// config error, not a protocol error.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "crypto/signature.h"
#include "net/udp_transport.h"
#include "quorum/config.h"
#include "util/status.h"

namespace bftbc::net {

// Node addressing mirrors harness/cluster.h: replica r is NodeId r,
// client c is NodeId kClientNodeBase + c (kept in sync by net_test).
inline constexpr sim::NodeId kClientNodeBase = 0x10000;

inline sim::NodeId client_node(quorum::ClientId c) {
  return kClientNodeBase + c;
}

struct ClusterConfig {
  std::uint32_t f = 1;
  std::string mode = "base";  // "base" | "optimized" | "strong"
  // Point-to-point authentication (§3.3.2): "sig" signs every message,
  // "mac" uses pairwise session-key MACs for requests and replies and
  // reserves signatures for certificate statements.
  std::string auth = "sig";  // "sig" | "mac"
  std::string scheme = "hmac";  // "hmac" | "rsa"
  std::size_t rsa_bits = 512;
  std::uint64_t key_seed = 1;
  std::uint32_t max_clients = 64;

  struct ReplicaEndpoint {
    std::string host;
    std::uint16_t port = 0;
  };
  // Shard 0's endpoints (== the whole cluster for legacy single-group
  // configs). Kept as a plain alias of shard_groups[0] so pre-sharding
  // call sites keep reading the natural field.
  std::vector<ReplicaEndpoint> replicas;  // exactly 3f+1 entries
  // One endpoint group per shard; [0] is identical to `replicas`.
  std::vector<std::vector<ReplicaEndpoint>> shard_groups;

  std::uint32_t shard_count() const {
    return static_cast<std::uint32_t>(shard_groups.size());
  }
  // Per-shard keystore seed (shard::shard_key_seed over key_seed; shard 0
  // returns key_seed itself).
  std::uint64_t shard_seed(std::uint32_t shard) const;

  bool optimized() const { return mode == "optimized" || mode == "strong"; }
  bool strong() const { return mode == "strong"; }
  bool mac_auth() const { return auth == "mac"; }
  crypto::SignatureScheme signature_scheme() const {
    return scheme == "rsa" ? crypto::SignatureScheme::kRsa
                           : crypto::SignatureScheme::kHmacSim;
  }
  quorum::QuorumConfig quorum() const {
    return quorum::QuorumConfig::bft_bc(f);
  }

  // Parse + validate (n == 3f+1, resolvable hosts, known mode/scheme).
  static Result<ClusterConfig> parse(std::string_view json);
  static Result<ClusterConfig> load(const std::string& path);
};

// The replica endpoint table for UdpTransport, keyed by NodeId 0..n-1.
// Every shard uses the same in-group node ids — a process talks to one
// group per transport (its own socket), so the maps never collide.
Result<std::map<sim::NodeId, UdpEndpoint>> replica_endpoints(
    const ClusterConfig& config, std::uint32_t shard);
// Legacy spelling: shard 0.
Result<std::map<sim::NodeId, UdpEndpoint>> replica_endpoints(
    const ClusterConfig& config);

// Registers every principal of the cluster in the canonical order that
// makes independently-seeded Keystores agree (see file comment). The
// keystore must be freshly constructed from (config.signature_scheme(),
// config.key_seed, config.rsa_bits).
void register_cluster_principals(const ClusterConfig& config,
                                 crypto::Keystore& keystore);

}  // namespace bftbc::net
